module clustersim

go 1.23
