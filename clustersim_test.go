package clustersim_test

import (
	"testing"

	"clustersim"
	"clustersim/internal/mpi"
)

// echoProgram is a small app used to exercise the public API end to end.
func echoProgram(rank, size int) clustersim.Program {
	return func(p *clustersim.Proc) error {
		comm := mpi.New(p)
		p.Compute(100 * clustersim.Microsecond)
		comm.Allreduce(64)
		p.Compute(100 * clustersim.Microsecond)
		comm.Barrier()
		if rank == 0 {
			p.Report("time_s", clustersim.Duration(p.Now()).Seconds())
		}
		return nil
	}
}

func TestPublicAPIGroundTruth(t *testing.T) {
	cfg := clustersim.NewConfig(4, echoProgram)
	res, err := clustersim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stragglers != 0 {
		t.Errorf("default config (ground truth) produced %d stragglers", res.Stats.Stragglers)
	}
	if v, ok := res.Metric("time_s"); !ok || v <= 0 {
		t.Errorf("bad metric: %v ok=%v", v, ok)
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	cfg := clustersim.NewConfig(4, echoProgram)
	cfg.Policy = clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02)
	res, err := clustersim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName == "" {
		t.Error("missing policy name")
	}
	truth, err := clustersim.Run(clustersim.NewConfig(4, echoProgram))
	if err != nil {
		t.Fatal(err)
	}
	if res.HostTime >= truth.HostTime {
		t.Errorf("adaptive host time %v not below ground truth %v", res.HostTime, truth.HostTime)
	}
}

func TestRecommendedDec(t *testing.T) {
	d := clustersim.RecommendedDec(1*clustersim.Microsecond, 1000*clustersim.Microsecond)
	if d <= 0 || d >= 1 {
		t.Errorf("RecommendedDec out of range: %v", d)
	}
}

func TestDefaults(t *testing.T) {
	if clustersim.PaperNetwork().MinLatency(2) < 1*clustersim.Microsecond {
		t.Error("paper network T below 1µs")
	}
	if clustersim.DefaultHost().Validate() != nil {
		t.Error("default host params invalid")
	}
	if clustersim.DefaultGuest().CPUHz <= 0 {
		t.Error("default guest config invalid")
	}
}
