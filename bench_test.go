// Macro-benchmarks: one per table and figure of the paper's evaluation.
// Each benchmark regenerates its artifact and reports the headline numbers
// as custom metrics (accuracy error in %, speedup in x), so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The workloads run at a reduced scale to
// keep benchmark time reasonable; `go run ./cmd/paperfigs` regenerates the
// full-scale artifacts (see EXPERIMENTS.md for the recorded full-scale
// numbers).
package clustersim_test

import (
	"testing"

	"clustersim"
	"clustersim/internal/cluster"
	"clustersim/internal/experiments"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

const benchScale = 0.1

func findAgg(rows []experiments.AggRow, nodes int, config string) experiments.AggRow {
	for _, r := range rows {
		if r.Nodes == nodes && r.Config == config {
			return r
		}
	}
	return experiments.AggRow{}
}

// BenchmarkFig6NAS regenerates Figure 6: the five NAS kernels at 2/4/8 nodes
// under fixed 10µs/100µs/1000µs and the two adaptive configurations.
func BenchmarkFig6NAS(b *testing.B) {
	env := experiments.DefaultEnv()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig6(env, benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		dyn := findAgg(rows, 8, "dyn 1k 1.03:0.02")
		fix := findAgg(rows, 8, "1k")
		b.ReportMetric(dyn.AccErr*100, "dyn8_err_%")
		b.ReportMetric(dyn.Speedup, "dyn8_speedup_x")
		b.ReportMetric(fix.AccErr*100, "fix1k8_err_%")
		b.ReportMetric(fix.Speedup, "fix1k8_speedup_x")
	}
}

// BenchmarkFig6Workers measures the experiment fan-out: the same reduced
// Figure 6 grid run fully sequentially versus with the worker pool sized to
// the host (Env.Workers = 0 → GOMAXPROCS). The grid's simulations are
// independent and deterministic, so the speedup is pure parallel efficiency —
// on an N-core host the pool run should approach N× (identical output either
// way; TestFig6WorkerCountInvariance pins that).
func BenchmarkFig6Workers(b *testing.B) {
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			env := experiments.DefaultEnv()
			env.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.Fig6(env, benchScale, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("pool", run(0))
}

// BenchmarkFig7NAMD regenerates Figure 7: NAMD at 2/4/8 nodes.
func BenchmarkFig7NAMD(b *testing.B) {
	env := experiments.DefaultEnv()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig7(env, benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		dyn := findAgg(rows, 8, "dyn 1k 1.03:0.02")
		fix := findAgg(rows, 8, "1k")
		b.ReportMetric(dyn.AccErr*100, "dyn8_err_%")
		b.ReportMetric(dyn.Speedup, "dyn8_speedup_x")
		b.ReportMetric(fix.AccErr*100, "fix1k8_err_%")
	}
}

// BenchmarkFig8Pareto regenerates Figure 8: the 8-node Pareto plane, and
// reports how far the adaptive configurations sit from the optimal front
// (0 = on the front, the paper's claim).
func BenchmarkFig8Pareto(b *testing.B) {
	env := experiments.DefaultEnv()
	for i := 0; i < b.N; i++ {
		nas, _, err := experiments.Fig6(env, benchScale, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		namd, _, err := experiments.Fig7(env, benchScale, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		out := experiments.Fig8(nas, namd, 8)
		worst := 0.0
		for _, d := range out.NearFront {
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(worst, "max_front_distance")
		b.ReportMetric(float64(len(out.Front)), "front_points")
	}
}

func benchFig9(b *testing.B, pick func([]*experiments.ScaleOut) *experiments.ScaleOut) {
	env := experiments.DefaultEnv()
	for i := 0; i < b.N; i++ {
		outs, err := experiments.Fig9(env, 0.5, 32, 60)
		if err != nil {
			b.Fatal(err)
		}
		out := pick(outs)
		for _, r := range out.Rows {
			switch r.Config {
			case "100":
				b.ReportMetric(r.Accel, "q100_accel_x")
				b.ReportMetric(r.AccErr*100, "q100_err_%")
				b.ReportMetric(r.ExecRatio, "q100_exec_ratio_x")
			case "10":
				b.ReportMetric(r.Accel, "q10_accel_x")
			default:
				b.ReportMetric(r.Accel, "dyn_accel_x")
				b.ReportMetric(r.AccErr*100, "dyn_err_%")
			}
		}
	}
}

// BenchmarkFig9EP regenerates the Section 6 EP scale-out table (Figure 9a).
func BenchmarkFig9EP(b *testing.B) {
	benchFig9(b, func(o []*experiments.ScaleOut) *experiments.ScaleOut { return o[0] })
}

// BenchmarkFig9IS regenerates the Section 6 IS scale-out table (Figure 9b):
// the simulated-execution-ratio pathology.
func BenchmarkFig9IS(b *testing.B) {
	benchFig9(b, func(o []*experiments.ScaleOut) *experiments.ScaleOut { return o[1] })
}

// BenchmarkFig9NAMD regenerates the Section 6 NAMD scale-out table (Figure
// 9c): continuous traffic capping the adaptive speedup near the best fixed
// quantum.
func BenchmarkFig9NAMD(b *testing.B) {
	benchFig9(b, func(o []*experiments.ScaleOut) *experiments.ScaleOut { return o[2] })
}

// BenchmarkAblationIncDec regenerates the inc/dec sensitivity sweep (DESIGN
// A1), validating the paper's "grow slowly, shrink fast" guidance.
func BenchmarkAblationIncDec(b *testing.B) {
	env := experiments.DefaultEnv()
	w := experiments.NASSuite(benchScale)[1] // IS
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationIncDec(env, w, 4,
			[]float64{1.03, 1.20}, []float64{0.02, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Label == "1.03:0.02" {
				b.ReportMetric(r.AccErr*100, "paper_schedule_err_%")
			}
			if r.Label == "1.2:0.9" {
				b.ReportMetric(r.AccErr*100, "greedy_schedule_err_%")
			}
		}
	}
}

// BenchmarkAblationHost regenerates the host-sensitivity sweep (DESIGN A3).
func BenchmarkAblationHost(b *testing.B) {
	env := experiments.DefaultEnv()
	w := experiments.NASSuite(benchScale)[0] // EP
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHost(env, w, 4,
			[]simtime.Duration{400 * simtime.Microsecond, 1300 * simtime.Microsecond},
			[]float64{0, 0.22})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.BarrierCost == 1300*simtime.Microsecond && r.Jitter == 0.22 {
				b.ReportMetric(r.Speedup1k, "default_host_speedup1k_x")
			}
		}
	}
}

// BenchmarkEngineThroughput measures raw co-simulation speed: quanta per
// second of the deterministic engine on an 8-node silent cluster at ground
// truth.
func BenchmarkEngineThroughput(b *testing.B) {
	w := workloads.Silent(2 * clustersim.Millisecond)
	cfg := clustersim.NewConfig(8, w.New)
	b.ResetTimer()
	totalQuanta := 0
	for i := 0; i < b.N; i++ {
		res, err := clustersim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalQuanta += res.Stats.Quanta
	}
	b.ReportMetric(float64(totalQuanta)/b.Elapsed().Seconds(), "quanta/s")
}

// BenchmarkEngineWithTraffic measures engine speed under heavy frame load.
func BenchmarkEngineWithTraffic(b *testing.B) {
	w := workloads.Phases(3, 100*clustersim.Microsecond, 64<<10)
	cfg := clustersim.NewConfig(8, w.New)
	cfg.Policy = clustersim.AdaptiveQuantum(1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02)
	b.ResetTimer()
	totalPackets := 0
	for i := 0; i < b.N; i++ {
		res, err := clustersim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalPackets += res.Stats.Packets
	}
	b.ReportMetric(float64(totalPackets)/b.Elapsed().Seconds(), "packets/s")
}

// BenchmarkObserverOverhead guards the cost of the observability hooks on
// the engine's hot path (routeFrame/stepNode, exercised by a packet-heavy
// phase workload):
//
//   - "nil" runs with no Observer — the default, and the configuration whose
//     throughput must stay within noise of the pre-instrumentation seed
//     (compare against BenchmarkEngineWithTraffic history): every hook site
//     is a single nil check and builds no records.
//   - "noop" attaches a do-nothing Observer, measuring the fixed price of
//     record construction and dynamic dispatch when hooks are enabled.
func BenchmarkObserverOverhead(b *testing.B) {
	mkCfg := func() clustersim.Config {
		w := workloads.Phases(3, 100*clustersim.Microsecond, 64<<10)
		cfg := clustersim.NewConfig(8, w.New)
		cfg.Policy = clustersim.AdaptiveQuantum(1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02)
		return cfg
	}
	run := func(b *testing.B, cfg clustersim.Config) {
		b.ResetTimer()
		totalPackets := 0
		for i := 0; i < b.N; i++ {
			res, err := clustersim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			totalPackets += res.Stats.Packets
		}
		b.ReportMetric(float64(totalPackets)/b.Elapsed().Seconds(), "packets/s")
	}
	b.Run("nil", func(b *testing.B) {
		run(b, mkCfg())
	})
	b.Run("noop", func(b *testing.B) {
		cfg := mkCfg()
		cfg.Observer = clustersim.ObserverBase{}
		run(b, cfg)
	})
}

// BenchmarkParallelRunner measures the real-goroutine runner: wall time to
// co-simulate an 8-node phase workload with true parallelism.
func BenchmarkParallelRunner(b *testing.B) {
	w := workloads.Phases(3, 200*clustersim.Microsecond, 32<<10)
	cfg := cluster.ParallelConfig{
		Nodes:    8,
		Guest:    clustersim.DefaultGuest(),
		Net:      clustersim.PaperNetwork(),
		Policy:   clustersim.AdaptiveQuantum(1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02),
		Program:  w.New,
		MaxGuest: clustersim.GuestTime(10 * clustersim.Second),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunParallel(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroundTruth64Nodes measures the engine at the paper's largest
// configuration: one quantum per simulated microsecond across 64 nodes.
func BenchmarkGroundTruth64Nodes(b *testing.B) {
	w := workloads.Silent(500 * clustersim.Microsecond)
	cfg := clustersim.NewConfig(64, w.New)
	b.ResetTimer()
	totalQuanta := 0
	for i := 0; i < b.N; i++ {
		res, err := clustersim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalQuanta += res.Stats.Quanta
	}
	b.ReportMetric(float64(totalQuanta)/b.Elapsed().Seconds(), "quanta/s")
}
