package msg_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/msg"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/quantum"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// run executes programs as a cluster under the given quantum and fails on
// error.
func run(t *testing.T, q simtime.Duration, progs ...guest.Program) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{
		Nodes:    len(progs),
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: q} },
		Program:  func(rank, size int) guest.Program { return progs[rank] },
		MaxGuest: simtime.Guest(30 * simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPayloadRoundTrip(t *testing.T) {
	payload := make([]byte, 25000) // 3 jumbo fragments
	r := rng.New(1)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	var got []byte
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			msg.New(p, pkt.DefaultMTU).SendPayload(1, 7, payload)
			return nil
		},
		func(p *guest.Proc) error {
			m := msg.New(p, pkt.DefaultMTU).Recv(0, 7)
			got = m.Payload
			return nil
		},
	)
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted in transit")
	}
}

func TestZeroSizeMessage(t *testing.T) {
	ok := false
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			msg.New(p, pkt.DefaultMTU).Send(1, 3, 0)
			return nil
		},
		func(p *guest.Proc) error {
			m := msg.New(p, pkt.DefaultMTU).Recv(0, 3)
			ok = m.Size == 0 && m.Src == 0 && m.Tag == 3
			return nil
		},
	)
	if !ok {
		t.Error("zero-size message mangled")
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	const n = 50
	var order []int
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			for i := 0; i < n; i++ {
				ep.SendPayload(1, 9, []byte{byte(i)})
			}
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			for i := 0; i < n; i++ {
				m := ep.Recv(0, 9)
				order = append(order, int(m.Payload[0]))
			}
			return nil
		},
	)
	for i, v := range order {
		if v != i {
			t.Fatalf("messages reordered: position %d got %d", i, v)
		}
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	var tagged, any int
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			ep.SendPayload(2, 1, []byte{11})
			ep.SendPayload(2, 2, []byte{22})
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			ep.SendPayload(2, 2, []byte{33})
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			// Tag 2 from rank 1 specifically, even though other traffic
			// arrives first.
			m := ep.Recv(1, 2)
			tagged = int(m.Payload[0])
			// Then anything.
			m2 := ep.Recv(msg.Any, msg.Any)
			any = int(m2.Payload[0])
			return nil
		},
	)
	if tagged != 33 {
		t.Errorf("matched wrong message: %d", tagged)
	}
	if any != 11 && any != 22 {
		t.Errorf("Any recv returned %d", any)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	// Above the eager threshold the transfer needs RTS/CTS; verify content
	// and that control frames flowed.
	payload := make([]byte, msg.DefaultEagerMax*2)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	var rts, cts int
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			ep.SendPayload(1, 5, payload)
			s, _, r, _ := ep.Stats()
			if s == 0 || r != 1 {
				return fmt.Errorf("sender stats: frames=%d rts=%d", s, r)
			}
			rts = r
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			m := ep.Recv(0, 5)
			got = m.Payload
			_, _, _, c := ep.Stats()
			cts = c
			return nil
		},
	)
	if !bytes.Equal(got, payload) {
		t.Error("rendezvous payload corrupted")
	}
	if rts != 1 || cts != 1 {
		t.Errorf("expected 1 RTS and 1 CTS, got %d/%d", rts, cts)
	}
}

func TestBidirectionalRendezvousNoDeadlock(t *testing.T) {
	// Both sides send a rendezvous-sized message before receiving — the
	// classic head-on exchange that must not deadlock.
	size := msg.DefaultEagerMax + 1
	mk := func(peer int) guest.Program {
		return func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			ep.Send(peer, 1, size)
			m := ep.Recv(peer, 1)
			if m.Size != size {
				return fmt.Errorf("got %d bytes, want %d", m.Size, size)
			}
			return nil
		}
	}
	run(t, simtime.Microsecond, mk(1), mk(0))
}

func TestLoopback(t *testing.T) {
	run(t, simtime.Microsecond, func(p *guest.Proc) error {
		ep := msg.New(p, pkt.DefaultMTU)
		ep.SendPayload(0, 4, []byte("self"))
		m := ep.Recv(0, 4)
		if string(m.Payload) != "self" {
			return fmt.Errorf("loopback payload %q", m.Payload)
		}
		return nil
	})
}

func TestRecvDeadlineTimeout(t *testing.T) {
	run(t, simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			if m, ok := ep.RecvDeadline(1, 1, p.Now().Add(50*simtime.Microsecond)); ok {
				return fmt.Errorf("unexpected message %v", m)
			}
			return nil
		},
		func(p *guest.Proc) error { return nil }, // silent peer
	)
}

// Property: any random sequence of message sizes arrives exactly once, in
// order, with correct sizes — independent of the quantum used. This is the
// paper's observation that functional behaviour is unaffected by time skew.
func TestPropertyDeliveryUnderAnyQuantum(t *testing.T) {
	f := func(sizes []uint16, bigQ bool) bool {
		if len(sizes) > 30 {
			sizes = sizes[:30]
		}
		if len(sizes) == 0 {
			return true
		}
		q := simtime.Microsecond
		if bigQ {
			q = 500 * simtime.Microsecond
		}
		var got []int
		run(t, q,
			func(p *guest.Proc) error {
				ep := msg.New(p, pkt.DefaultMTU)
				for _, s := range sizes {
					ep.Send(1, 2, int(s))
				}
				return nil
			},
			func(p *guest.Proc) error {
				ep := msg.New(p, pkt.DefaultMTU)
				for range sizes {
					got = append(got, ep.Recv(0, 2).Size)
				}
				if ep.Pending() != 0 || ep.Incomplete() != 0 {
					return fmt.Errorf("leftover state: %d ready, %d partial", ep.Pending(), ep.Incomplete())
				}
				return nil
			},
		)
		if len(got) != len(sizes) {
			return false
		}
		for i := range got {
			if got[i] != int(sizes[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMTUTooSmallPanics(t *testing.T) {
	// The panic fires on the workload goroutine, so catch it there.
	run(t, simtime.Microsecond, func(p *guest.Proc) error {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			msg.New(p, 10)
		}()
		if !panicked {
			return fmt.Errorf("MTU smaller than the header did not panic")
		}
		return nil
	})
}
