package msg_test

import (
	"testing"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/msg"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

const streamMsgs, streamSize = 32, 32 << 10

// streamConfig builds the message-stream fixture shared by the throughput
// benchmarks and the allocation-regression test: 1 MiB of 32 KiB messages
// from rank 0 to rank 1, size-only or carrying real payload bytes.
func streamConfig(payload bool) cluster.Config {
	return cluster.Config{
		Nodes: 2,
		Guest: guest.DefaultConfig(),
		Net:   netmodel.Paper(),
		Host:  host.DefaultParams(),
		Policy: func() quantum.Policy {
			return quantum.Fixed{Q: 100 * simtime.Microsecond}
		},
		Program: func(rank, clusterSize int) guest.Program {
			return func(p *guest.Proc) error {
				ep := msg.New(p, pkt.DefaultMTU)
				if rank == 0 {
					var buf []byte
					if payload {
						buf = make([]byte, streamSize)
						for i := range buf {
							buf[i] = byte(i)
						}
					}
					for i := 0; i < streamMsgs; i++ {
						if payload {
							ep.SendPayload(1, 1, buf)
						} else {
							ep.Send(1, 1, streamSize)
						}
					}
					return nil
				}
				for i := 0; i < streamMsgs; i++ {
					ep.Recv(0, 1)
				}
				return nil
			}
		},
		MaxGuest: simtime.Guest(10 * simtime.Second),
	}
}

func benchStream(b *testing.B, payload bool) {
	cfg := streamConfig(payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(streamMsgs * streamSize)
}

// BenchmarkMessageStream measures end-to-end message-layer throughput
// through the full simulator: 1 MiB of 32 KiB messages per run.
func BenchmarkMessageStream(b *testing.B) { benchStream(b, false) }

// BenchmarkMessageStreamPayload is the same stream carrying actual payload
// bytes, exercising the per-fragment wire-byte path end to end.
func BenchmarkMessageStreamPayload(b *testing.B) { benchStream(b, true) }
