package msg_test

import (
	"testing"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/msg"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

// BenchmarkMessageStream measures end-to-end message-layer throughput
// through the full simulator: 1 MiB of 32 KiB messages per run.
func BenchmarkMessageStream(b *testing.B) {
	const msgs, size = 32, 32 << 10
	cfg := cluster.Config{
		Nodes: 2,
		Guest: guest.DefaultConfig(),
		Net:   netmodel.Paper(),
		Host:  host.DefaultParams(),
		Policy: func() quantum.Policy {
			return quantum.Fixed{Q: 100 * simtime.Microsecond}
		},
		Program: func(rank, clusterSize int) guest.Program {
			return func(p *guest.Proc) error {
				ep := msg.New(p, pkt.DefaultMTU)
				if rank == 0 {
					for i := 0; i < msgs; i++ {
						ep.Send(1, 1, size)
					}
					return nil
				}
				for i := 0; i < msgs; i++ {
					ep.Recv(0, 1)
				}
				return nil
			}
		},
		MaxGuest: simtime.Guest(10 * simtime.Second),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(msgs * size)
}
