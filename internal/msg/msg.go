// Package msg implements the reliable message layer the simulated workloads
// communicate over — the simulator's stand-in for the paper's LAM/MPI over
// TCP/IP transport.
//
// A message of arbitrary size addressed to (dst, tag) is fragmented into
// link-layer frames no larger than the MTU, carried over the guest NIC, and
// reassembled at the destination, where messages are matched by (src, tag)
// with FIFO order per (src, tag) pair.
//
// Two transfer protocols are modelled, mirroring real MPI transports:
//
//   - eager: messages up to EagerMax are pushed immediately (the paper's
//     switch is perfect, so no acknowledgements are needed);
//   - rendezvous: larger messages first send a request-to-send (RTS)
//     control frame and transfer data only after the destination's protocol
//     engine answers clear-to-send (CTS). This creates the multi-trip
//     dependence chains that make alltoall-heavy workloads (NAS-IS) the
//     paper's accuracy worst case.
//
// As an extension beyond the paper's perfect switch, the endpoint also
// supports a Reliable mode — per-message acknowledgements, duplicate
// suppression and timeout-driven retransmission — used together with the
// engine's loss injection to demonstrate the stack survives frame loss.
//
// Everything here is guest code: fragmentation, control frames and matching
// consume guest CPU time through the per-frame send/receive overheads of the
// node model, exactly where a real guest protocol stack would burn cycles.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"clustersim/internal/guest"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// Any matches any source or any tag in Recv.
const Any = -1

// headerBytes is the wire size of the fragment/control header.
const headerBytes = 40

// DefaultEagerMax is the default eager/rendezvous threshold, matching the
// common TCP-transport defaults of 2000s-era MPI implementations.
const DefaultEagerMax = 64 << 10

// DefaultRetransmitTimeout is the reliable-mode retransmission timer.
const DefaultRetransmitTimeout = 200 * simtime.Microsecond

// DefaultMaxRetries is the reliable-mode retransmission cap. 30 retries at
// the capped 8x backoff spans tens of milliseconds of guest time and makes
// a spurious failure astronomically unlikely at any loss rate worth
// simulating (0.3^30 ≈ 2e-16), while still bounding the work a partitioned
// link can absorb.
const DefaultMaxRetries = 30

// DefaultFlushHorizon is the guest-time bound on one Flush call in
// retry-forever mode. At the default 200µs timer with the 8x backoff cap
// this spans hundreds of retransmission cycles — far beyond any recoverable
// outage worth simulating — while guaranteeing Flush terminates against a
// link that never comes back.
const DefaultFlushHorizon = simtime.Second

// ErrDeliveryFailed marks a reliable-mode message abandoned after
// exhausting its retransmission budget. Returned (wrapped) by Err and
// Flush.
var ErrDeliveryFailed = errors.New("msg: delivery failed")

// frame kinds.
const (
	kindData byte = iota
	kindRTS
	kindCTS
	kindAck
)

// Message is a fully reassembled message.
type Message struct {
	Src, Tag int
	// Size is the message payload size in bytes.
	Size int
	// Arrival is the guest time the final fragment became visible.
	Arrival simtime.Guest
	// Payload carries message bytes when the sender attached any
	// (size-only messages have a nil Payload).
	Payload []byte
}

type msgKey struct {
	src   int
	msgID uint64
}

type partial struct {
	// m is the message under reassembly; completion hands out &pa.m, so a
	// message costs one allocation, not a partial plus a Message.
	m        Message
	seq      uint32
	received int
	gotData  bool
	// gotOff marks byte offsets already folded in, so retransmitted
	// fragments are not double-counted.
	gotOff map[int]bool
}

// outMsg is a reliable-mode in-flight message on the sender.
type outMsg struct {
	id       uint64
	dst, tag int
	size     int
	payload  []byte
	seq      uint32
	// needCTS marks a rendezvous transfer whose handshake is incomplete:
	// timeouts resend the RTS instead of the data.
	needCTS  bool
	deadline simtime.Guest
	retries  int
}

// Config tunes an endpoint's protocol behaviour.
type Config struct {
	// MTU is the frame payload capacity in bytes (e.g. pkt.DefaultMTU).
	MTU int
	// EagerMax is the largest message sent eagerly; bigger messages use the
	// rendezvous protocol. Negative disables rendezvous entirely.
	EagerMax int
	// Reliable enables acknowledgements, duplicate suppression and
	// retransmission. All endpoints of a cluster must agree on this.
	Reliable bool
	// RetransmitTimeout is the guest-time retransmission timer (reliable
	// mode); zero means DefaultRetransmitTimeout.
	RetransmitTimeout simtime.Duration
	// MaxRetries caps reliable-mode retransmissions per message. A message
	// that exhausts the cap is abandoned: it leaves the in-flight set and
	// the endpoint records a permanent delivery failure surfaced by Err and
	// Flush. Zero means DefaultMaxRetries; negative retries forever (the
	// pre-cap behaviour), bounded only by FlushHorizon inside Flush.
	MaxRetries int
	// FlushHorizon bounds the guest time one Flush call may spend driving
	// retransmissions; anything still unacknowledged when the horizon
	// expires is abandoned with ErrDeliveryFailed. This is the termination
	// backstop for MaxRetries < 0, where a permanently-down link would
	// otherwise loop Flush forever (the "bounded by nextDeadline" argument
	// assumed the retry cap); with a positive MaxRetries the per-message
	// budget normally fires well before the horizon. Zero means
	// DefaultFlushHorizon; negative disables the bound.
	FlushHorizon simtime.Duration
}

// DefaultConfig returns jumbo frames with the standard eager threshold and
// no reliability (the paper's perfect network needs none).
func DefaultConfig() Config {
	return Config{MTU: pkt.DefaultMTU, EagerMax: DefaultEagerMax}
}

// Endpoint is one node's message-layer endpoint. It must be used only from
// the node's own workload goroutine.
//
//simlint:snapshotroot transport state captured with the node at quantum barriers
type Endpoint struct {
	p   *guest.Proc //simlint:snapshotsafe not state: the binding to the live Proc, re-pointed on restore
	cfg Config

	nextMsgID uint64
	// ready holds reassembled messages not yet matched, in completion
	// order.
	ready []*Message //simlint:snapshotsafe messages are immutable once reassembled; the lane deep-copies, payloads alias
	// partials holds in-flight reassembly state.
	partials map[msgKey]*partial //simlint:snapshotsafe deep-copied per checkpoint: flat keys, partials cloned with their gotOff sets
	// cts holds clear-to-send grants received for our pending rendezvous
	// sends.
	cts map[uint64]bool //simlint:snapshotsafe flat set, deep-copied per checkpoint

	// Reliable-mode state. unackedIDs preserves send order so timeout scans
	// are deterministic (never iterate a map).
	unacked   map[uint64]*outMsg //simlint:snapshotsafe deep-copied per checkpoint: outMsgs cloned, payload bytes immutable and alias
	unackedID []uint64
	// completed remembers fully received (src, msgID) pairs so duplicates
	// are re-acknowledged but not re-delivered.
	completed map[msgKey]bool //simlint:snapshotsafe flat set, deep-copied per checkpoint

	// Per-destination sequence numbers enforce MPI-style non-overtaking
	// delivery even when retransmissions or rendezvous/eager mixing let a
	// later message finish reassembly first. The cluster size is fixed, so
	// these are flat per-peer slices; the hold maps exist only for peers
	// that actually reorder (lazily allocated in deliverInOrder).
	txSeq  []uint32
	rxNext []uint32
	rxHold []map[uint32]*Message //simlint:snapshotsafe deep-copied per checkpoint: flat keys, messages immutable and alias

	// wireSlab is the tail of the current wire-byte slab (see sendData) and
	// msgBlk the tail of the current Message block (see newMessage); both
	// carve batch allocations into individually handed-out objects that the
	// GC reclaims block-wise once every holder has dropped theirs. slabLen
	// doubles from modest to maxSlab so light endpoints never pay for the
	// full slab.
	wireSlab []byte
	slabLen  int
	msgBlk   []Message

	// stats
	framesSent, framesRecv int
	rtsSent, ctsSent       int
	acksSent, retransmits  int
	duplicates             int
	timeouts, failures     int

	// err records the first delivery failure (permanent; see Err).
	err error //simlint:snapshotsafe error values are immutable; aliasing is safe
}

// New creates an endpoint over p with the given MTU and the default eager
// threshold.
func New(p *guest.Proc, mtu int) *Endpoint {
	return NewWithConfig(p, Config{MTU: mtu, EagerMax: DefaultEagerMax})
}

// NewWithConfig creates an endpoint with explicit protocol configuration.
// It panics if the MTU cannot fit the fragment header: that is a
// configuration bug.
func NewWithConfig(p *guest.Proc, cfg Config) *Endpoint {
	if cfg.MTU <= headerBytes {
		panic(fmt.Sprintf("msg: MTU %d cannot carry the %d-byte fragment header", cfg.MTU, headerBytes))
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = DefaultRetransmitTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.FlushHorizon == 0 {
		cfg.FlushHorizon = DefaultFlushHorizon
	}
	return &Endpoint{
		p:         p,
		cfg:       cfg,
		partials:  map[msgKey]*partial{},
		cts:       map[uint64]bool{},
		unacked:   map[uint64]*outMsg{},
		completed: map[msgKey]bool{},
		txSeq:     make([]uint32, p.Size()),
		rxNext:    make([]uint32, p.Size()),
		rxHold:    make([]map[uint32]*Message, p.Size()),
	}
}

// Proc returns the underlying guest process handle.
func (e *Endpoint) Proc() *guest.Proc { return e.p }

// MTU returns the endpoint's frame payload capacity.
func (e *Endpoint) MTU() int { return e.cfg.MTU }

// Send transmits a size-only message (no payload bytes) to (dst, tag).
func (e *Endpoint) Send(dst, tag, size int) {
	e.send(dst, tag, size, nil)
}

// SendPayload transmits a message carrying actual bytes.
func (e *Endpoint) SendPayload(dst, tag int, payload []byte) {
	e.send(dst, tag, len(payload), payload)
}

// headerInto encodes a fragment/control header into dst[:headerBytes].
func headerInto(dst []byte, kind byte, id uint64, tag, size, off, frag int, seq uint32) {
	dst[0] = kind
	binary.LittleEndian.PutUint64(dst[1:], id)
	binary.LittleEndian.PutUint32(dst[9:], uint32(tag))
	binary.LittleEndian.PutUint64(dst[13:], uint64(size))
	binary.LittleEndian.PutUint64(dst[21:], uint64(off))
	binary.LittleEndian.PutUint32(dst[29:], uint32(frag))
	binary.LittleEndian.PutUint32(dst[33:], seq)
}

// ctrl builds a control-frame header on wire bytes carved from the
// endpoint's slab.
func (e *Endpoint) ctrl(kind byte, id uint64, tag, size int) []byte {
	hdr := e.carve(headerBytes)
	headerInto(hdr, kind, id, tag, size, 0, 0, 0)
	return hdr
}

func (e *Endpoint) send(dst, tag, size int, payload []byte) {
	if size < 0 {
		panic(fmt.Sprintf("msg: negative message size %d", size))
	}
	if dst == e.p.Rank() {
		// Loopback: deliver without touching the network, as a kernel
		// would.
		m := e.newMessage()
		*m = Message{Src: dst, Tag: tag, Size: size, Arrival: e.p.Now(), Payload: payload}
		e.ready = append(e.ready, m)
		return
	}
	e.nextMsgID++
	id := e.nextMsgID
	var seq uint32
	if dst >= 0 && dst < len(e.txSeq) {
		// A message to a rank outside the cluster vanishes in the switch;
		// it never consumes a sequence number anyone waits on.
		seq = e.txSeq[dst]
		e.txSeq[dst] = seq + 1
	}

	rendezvous := e.cfg.EagerMax >= 0 && size > e.cfg.EagerMax
	if rendezvous {
		e.sendRTS(dst, id, tag, size)
		if e.cfg.Reliable {
			om := &outMsg{id: id, dst: dst, tag: tag, size: size, payload: payload, seq: seq,
				needCTS: true, deadline: e.p.Now().Add(e.cfg.RetransmitTimeout)}
			e.track(om)
			// Block until the destination grants CTS, retransmitting the
			// RTS as needed.
			for !e.cts[id] {
				e.pump(simtime.GuestInfinity)
			}
			om.needCTS = false
			om.deadline = e.p.Now().Add(e.cfg.RetransmitTimeout)
		} else {
			for !e.cts[id] {
				e.handleFrame(e.p.Recv())
			}
		}
		delete(e.cts, id)
	}

	e.sendData(dst, id, tag, size, payload, seq)
	if e.cfg.Reliable && !rendezvous {
		e.track(&outMsg{id: id, dst: dst, tag: tag, size: size, payload: payload, seq: seq,
			deadline: e.p.Now().Add(e.cfg.RetransmitTimeout)})
	}
}

func (e *Endpoint) sendRTS(dst int, id uint64, tag, size int) {
	e.p.Send(dst, pkt.ProtoCtrl, headerBytes, e.ctrl(kindRTS, id, tag, size))
	e.rtsSent++
	e.framesSent++
}

// maxSlab caps the endpoint's wire-byte slabs at the Go runtime's
// small-object limit: one slab a few bytes over 32 KiB would fall onto the
// page-granular large-object path and cost more than the allocations it
// replaces.
const maxSlab = 32 << 10

// carve slices n wire bytes off the endpoint's slab, with a full-capacity
// bound so no holder of a frame (receivers, the broadcast fan-out, traces)
// can grow one fragment into its neighbour's bytes. The slab persists
// across messages — header-only fragments are 40 bytes, so one slab serves
// hundreds of sends — and is reclaimed by the GC as a whole once every
// fragment carved from it has been dropped: exactly the lifetime individual
// allocations would have, minus the garbage.
func (e *Endpoint) carve(n int) []byte {
	if len(e.wireSlab) < n {
		if e.slabLen < maxSlab {
			e.slabLen = 2 * e.slabLen
			if e.slabLen < 2048 {
				e.slabLen = 2048
			}
			if e.slabLen > maxSlab {
				e.slabLen = maxSlab
			}
		}
		ln := e.slabLen
		if n > ln {
			ln = n
		}
		e.wireSlab = make([]byte, ln)
	}
	b := e.wireSlab[:n:n]
	e.wireSlab = e.wireSlab[n:]
	return b
}

// msgBlkLen is the Message block size (see newMessage).
const msgBlkLen = 64

// newMessage carves one zeroed Message from the endpoint's block. Messages
// escape to the application and are never recycled; the block is collected
// once every message carved from it has been dropped.
func (e *Endpoint) newMessage() *Message {
	if len(e.msgBlk) == 0 {
		e.msgBlk = make([]Message, msgBlkLen)
	}
	m := &e.msgBlk[0]
	e.msgBlk = e.msgBlk[1:]
	return m
}

// sendData pushes all data fragments of a message, their wire bytes carved
// from the endpoint's shared slab.
func (e *Endpoint) sendData(dst int, id uint64, tag, size int, payload []byte, seq uint32) {
	chunk := e.cfg.MTU - headerBytes
	off := 0
	for {
		frag := size - off
		if frag > chunk {
			frag = chunk
		}
		n := headerBytes
		if payload != nil {
			n += frag
		}
		data := e.carve(n)
		headerInto(data, kindData, id, tag, size, off, frag, seq)
		if payload != nil {
			copy(data[headerBytes:], payload[off:off+frag])
		}
		e.p.Send(dst, pkt.ProtoMsg, headerBytes+frag, data)
		e.framesSent++
		off += frag
		if off >= size {
			break
		}
	}
}

func (e *Endpoint) track(om *outMsg) {
	e.unacked[om.id] = om
	e.unackedID = append(e.unackedID, om.id)
}

// nextDeadline returns the earliest retransmission deadline among in-flight
// messages, or GuestInfinity.
func (e *Endpoint) nextDeadline() simtime.Guest {
	d := simtime.GuestInfinity
	for _, id := range e.unackedID {
		om := e.unacked[id]
		if om != nil && om.deadline < d {
			d = om.deadline
		}
	}
	return d
}

// retransmitDue resends everything whose timer expired, abandoning messages
// that have exhausted their retransmission budget.
func (e *Endpoint) retransmitDue() {
	now := e.p.Now()
	live := e.unackedID[:0]
	for _, id := range e.unackedID {
		om := e.unacked[id]
		if om == nil {
			continue // acked
		}
		if om.deadline <= now {
			e.timeouts++
			if e.cfg.MaxRetries > 0 && om.retries >= e.cfg.MaxRetries {
				// Out of budget: the message will never be delivered.
				e.failures++
				if e.err == nil {
					e.err = fmt.Errorf("msg: message %d to rank %d (tag %d, %d bytes) abandoned after %d retransmissions: %w",
						om.id, om.dst, om.tag, om.size, om.retries, ErrDeliveryFailed)
				}
				delete(e.unacked, id)
				continue
			}
		}
		live = append(live, id)
		if om.deadline > now {
			continue
		}
		om.retries++
		e.retransmits++
		// The backoff cap is deliberately low (8x): a retransmitting sender
		// must keep poking its peer's Drain window often enough that the
		// peer cannot plausibly see a full quiet period while traffic is
		// still owed (see Drain).
		backoff := om.retries
		if backoff > 3 {
			backoff = 3
		}
		om.deadline = now.Add(e.cfg.RetransmitTimeout << uint(backoff))
		if om.needCTS {
			e.sendRTS(om.dst, om.id, om.tag, om.size)
		} else {
			e.sendData(om.dst, om.id, om.tag, om.size, om.payload, om.seq)
		}
	}
	e.unackedID = live
}

// pump makes protocol progress until a frame has been handled or the guest
// clock reaches deadline; reliable-mode retransmission timers fire inside.
// It reports whether a frame was handled.
func (e *Endpoint) pump(deadline simtime.Guest) bool {
	for {
		e.retransmitDue()
		wait := deadline
		if e.cfg.Reliable {
			if d := e.nextDeadline(); d < wait {
				wait = d
			}
		}
		a, ok := e.p.RecvDeadline(wait)
		if ok {
			e.handleFrame(a)
			return true
		}
		if e.p.Now() >= deadline {
			return false
		}
		// A retransmission timer fired before the caller's deadline; loop.
	}
}

// handleFrame folds one received frame into protocol state, moving any
// completed message to the ready list and answering control traffic.
func (e *Endpoint) handleFrame(a guest.Arrival) {
	f := a.Frame
	if (f.Proto != pkt.ProtoMsg && f.Proto != pkt.ProtoCtrl) || len(f.Data) < headerBytes {
		// Foreign traffic (raw frames from synthetic workloads sharing the
		// node); drop it — the endpoint owns the NIC on msg-based nodes.
		return
	}
	e.framesRecv++
	src := f.Src.Node()
	kind := f.Data[0]
	id := binary.LittleEndian.Uint64(f.Data[1:])
	tag := int(int32(binary.LittleEndian.Uint32(f.Data[9:])))
	size := int(binary.LittleEndian.Uint64(f.Data[13:]))
	off := int(binary.LittleEndian.Uint64(f.Data[21:]))
	frag := int(binary.LittleEndian.Uint32(f.Data[29:]))
	seq := binary.LittleEndian.Uint32(f.Data[33:])

	switch kind {
	case kindRTS:
		// Grant immediately: the protocol engine (in a real stack, the
		// progress thread / TCP window) opens the transfer as soon as the
		// RTS is seen. Duplicate RTS (lost CTS) is granted again.
		e.p.Send(src, pkt.ProtoCtrl, headerBytes, e.ctrl(kindCTS, id, tag, size))
		e.ctsSent++
		e.framesSent++
		return
	case kindCTS:
		e.cts[id] = true
		return
	case kindAck:
		delete(e.unacked, id)
		return
	}

	key := msgKey{src: src, msgID: id}
	if e.completed[key] {
		// A duplicate of a message we already delivered: its ack was lost.
		e.duplicates++
		e.ack(src, id, tag, size)
		return
	}
	hasData := len(f.Data) >= headerBytes+frag && frag > 0 && len(f.Data) > headerBytes
	pa := e.partials[key]
	if pa == nil {
		if frag >= size && !e.cfg.Reliable {
			// Single-fragment message on an unreliable endpoint: complete on
			// arrival, so reassembly state (and its map round-trip) is
			// unnecessary. Reliable mode still tracks it for duplicate
			// suppression.
			m := e.newMessage()
			*m = Message{Src: src, Tag: tag, Size: size, Arrival: a.Time}
			if hasData {
				m.Payload = make([]byte, size)
				copy(m.Payload, f.Data[headerBytes:headerBytes+frag])
			}
			e.deliverInOrder(src, seq, m)
			return
		}
		pa = &partial{m: Message{Src: src, Tag: tag, Size: size}, seq: seq}
		if e.cfg.Reliable {
			pa.gotOff = map[int]bool{}
		}
		e.partials[key] = pa
	}
	if pa.gotOff != nil {
		if pa.gotOff[off] {
			e.duplicates++
			return
		}
		pa.gotOff[off] = true
	}
	if hasData {
		if pa.m.Payload == nil {
			pa.m.Payload = make([]byte, size)
		}
		copy(pa.m.Payload[off:off+frag], f.Data[headerBytes:headerBytes+frag])
		pa.gotData = true
	}
	pa.received += frag
	if pa.received >= pa.m.Size {
		m := &pa.m
		m.Arrival = a.Time
		if !pa.gotData {
			m.Payload = nil
		}
		delete(e.partials, key)
		e.deliverInOrder(src, pa.seq, m)
		if e.cfg.Reliable {
			e.completed[key] = true
			e.ack(src, id, m.Tag, m.Size)
		}
	}
}

// deliverInOrder releases completed messages to the ready list strictly in
// per-source send order (MPI non-overtaking), holding any message whose
// predecessors are still in flight.
func (e *Endpoint) deliverInOrder(src int, seq uint32, m *Message) {
	hold := e.rxHold[src]
	if seq == e.rxNext[src] && len(hold) == 0 {
		// The common case: the message is next in sequence and nothing is
		// held — release it without touching the hold map at all.
		e.rxNext[src] = seq + 1
		e.ready = append(e.ready, m)
		return
	}
	if hold == nil {
		hold = map[uint32]*Message{}
		e.rxHold[src] = hold
	}
	hold[seq] = m
	for {
		next, ok := hold[e.rxNext[src]]
		if !ok {
			return
		}
		delete(hold, e.rxNext[src])
		e.rxNext[src]++
		e.ready = append(e.ready, next)
	}
}

func (e *Endpoint) ack(dst int, id uint64, tag, size int) {
	if !e.cfg.Reliable {
		return
	}
	e.p.Send(dst, pkt.ProtoCtrl, headerBytes, e.ctrl(kindAck, id, tag, size))
	e.acksSent++
	e.framesSent++
}

func match(m *Message, src, tag int) bool {
	return (src == Any || m.Src == src) && (tag == Any || m.Tag == tag)
}

// take removes and returns the first ready message matching (src, tag).
func (e *Endpoint) take(src, tag int) *Message {
	for i, m := range e.ready {
		if match(m, src, tag) {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			return m
		}
	}
	return nil
}

// Recv blocks until a message matching (src, tag) — either may be Any — has
// fully arrived, and returns it. Messages from the same source and tag are
// returned in sending order.
func (e *Endpoint) Recv(src, tag int) *Message {
	for {
		if m := e.take(src, tag); m != nil {
			return m
		}
		e.pump(simtime.GuestInfinity)
	}
}

// RecvDeadline is Recv with an absolute guest-time deadline; ok reports
// whether a message was returned before the deadline.
func (e *Endpoint) RecvDeadline(src, tag int, deadline simtime.Guest) (m *Message, ok bool) {
	for {
		if m := e.take(src, tag); m != nil {
			return m, true
		}
		if !e.pump(deadline) {
			return nil, false
		}
	}
}

// TryRecv returns a matching message if one has already fully arrived,
// consuming any frames already visible to the guest.
func (e *Endpoint) TryRecv(src, tag int) (m *Message, ok bool) {
	return e.RecvDeadline(src, tag, e.p.Now())
}

// Flush blocks until every reliable-mode message has been acknowledged or
// abandoned, driving retransmissions as needed, and returns the endpoint's
// first recorded delivery failure (nil when everything was delivered). It
// is a no-op on unreliable endpoints.
//
// Flush terminates even against a link that never delivers: with a positive
// MaxRetries every message abandons itself after its budget, and in
// retry-forever mode (MaxRetries < 0) the FlushHorizon abandons whatever is
// still outstanding, surfacing ErrDeliveryFailed either way.
func (e *Endpoint) Flush() error {
	if !e.cfg.Reliable {
		return nil
	}
	horizon := simtime.GuestInfinity
	if e.cfg.FlushHorizon > 0 {
		horizon = e.p.Now().Add(e.cfg.FlushHorizon)
	}
	for e.Outstanding() > 0 {
		if e.p.Now() >= horizon {
			e.abandonOutstanding()
			break
		}
		// Bound each wait by the earliest retransmission deadline so the
		// loop re-checks Outstanding after every timer fire — including the
		// one that abandons the last in-flight message, after which no
		// frame may ever arrive to end an unbounded wait — and by the flush
		// horizon itself.
		wait := e.nextDeadline()
		if horizon < wait {
			wait = horizon
		}
		e.pump(wait)
	}
	return e.err
}

// abandonOutstanding fails every still-unacknowledged message, recording
// the first as the endpoint's permanent delivery failure.
func (e *Endpoint) abandonOutstanding() {
	for _, id := range e.unackedID {
		om := e.unacked[id]
		if om == nil {
			continue
		}
		e.failures++
		if e.err == nil {
			e.err = fmt.Errorf("msg: message %d to rank %d (tag %d, %d bytes) abandoned after %d retransmissions (flush horizon %v exhausted): %w",
				om.id, om.dst, om.tag, om.size, om.retries, e.cfg.FlushHorizon, ErrDeliveryFailed)
		}
		delete(e.unacked, id)
	}
	e.unackedID = e.unackedID[:0]
}

// Err returns the endpoint's first recorded delivery failure — a reliable
// message abandoned after MaxRetries retransmissions — wrapping
// ErrDeliveryFailed, or nil. Failures are permanent.
func (e *Endpoint) Err() error { return e.err }

// Drain keeps the protocol engine responsive (re-acknowledging duplicates,
// retransmitting) until the network has been quiet for the given guest
// duration — the TIME_WAIT of this protocol. Reliable peers should Drain
// before exiting so a sender whose acks were lost can still complete its
// Flush.
//
// Like TCP's TIME_WAIT, this is probabilistic: a peer still owed traffic
// retransmits at most every 8×RetransmitTimeout, so a quiet period of
// K×8×RetransmitTimeout is abandoned prematurely only if K consecutive
// retransmissions are all lost. Choose quiet ≥ ~20× RetransmitTimeout for
// loss rates worth running (e.g. the default 200µs timer → 4ms+; tests use
// tens of ms).
func (e *Endpoint) Drain(quiet simtime.Duration) {
	for e.pump(e.p.Now().Add(quiet)) {
	}
}

// Outstanding reports how many reliable-mode messages still await
// acknowledgement.
func (e *Endpoint) Outstanding() int {
	n := 0
	for _, id := range e.unackedID {
		if e.unacked[id] != nil {
			n++
		}
	}
	return n
}

// Pending reports how many fully arrived but unmatched messages the endpoint
// holds (useful for drain assertions in tests).
func (e *Endpoint) Pending() int { return len(e.ready) }

// Incomplete reports how many messages are mid-reassembly.
func (e *Endpoint) Incomplete() int { return len(e.partials) }

// Stats returns frame-level protocol counters: data/control frames sent and
// received, and RTS/CTS control frames sent.
func (e *Endpoint) Stats() (framesSent, framesRecv, rtsSent, ctsSent int) {
	return e.framesSent, e.framesRecv, e.rtsSent, e.ctsSent
}

// ReliabilityStats returns reliable-mode counters: acks sent, message
// retransmissions performed, and duplicate fragments suppressed.
func (e *Endpoint) ReliabilityStats() (acksSent, retransmits, duplicates int) {
	return e.acksSent, e.retransmits, e.duplicates
}

// TransportStats extends ReliabilityStats with the retry machinery's
// counters: retransmission-timer expiries and permanently failed messages.
func (e *Endpoint) TransportStats() (acksSent, retransmits, timeouts, duplicates, failures int) {
	return e.acksSent, e.retransmits, e.timeouts, e.duplicates, e.failures
}

// ReportMetrics publishes the endpoint's transport counters as node metrics
// (msg_retransmits, msg_timeouts, msg_acks, msg_duplicates, msg_failures)
// via Proc.Report, so runs can aggregate per-rank reliable-transport
// behaviour next to application metrics.
func (e *Endpoint) ReportMetrics() {
	e.p.Report("msg_retransmits", float64(e.retransmits))
	e.p.Report("msg_timeouts", float64(e.timeouts))
	e.p.Report("msg_acks", float64(e.acksSent))
	e.p.Report("msg_duplicates", float64(e.duplicates))
	e.p.Report("msg_failures", float64(e.failures))
}
