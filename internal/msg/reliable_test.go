package msg_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"clustersim/internal/cluster"
	"clustersim/internal/faults"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/mpi"
	"clustersim/internal/msg"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/quantum"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// runLossy executes programs under frame loss.
func runLossy(t *testing.T, lossRate float64, lossSeed uint64, q simtime.Duration, progs ...guest.Program) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{
		Nodes:    len(progs),
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: q} },
		Program:  func(rank, size int) guest.Program { return progs[rank] },
		MaxGuest: simtime.Guest(60 * simtime.Second),
		LossRate: lossRate,
		LossSeed: lossSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func reliableCfg() msg.Config {
	c := msg.DefaultConfig()
	c.Reliable = true
	return c
}

func TestReliableStreamSurvivesLoss(t *testing.T) {
	const n = 40
	payloads := make([][]byte, n)
	r := rng.New(99)
	for i := range payloads {
		payloads[i] = make([]byte, 1+r.Intn(20000))
		for j := range payloads[i] {
			payloads[i][j] = byte(r.Uint64())
		}
	}
	var got [][]byte
	res := runLossy(t, 0.15, 7, 50*simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			for _, pl := range payloads {
				ep.SendPayload(1, 5, pl)
			}
			if err := ep.Flush(); err != nil {
				return fmt.Errorf("Flush after a recoverable loss run: %w", err)
			}
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			for range payloads {
				m := ep.Recv(0, 5)
				got = append(got, m.Payload)
			}
			// Keep re-acking until the sender's Flush has surely finished.
			ep.Drain(30 * simtime.Millisecond)
			return nil
		},
	)
	if res.Stats.Dropped == 0 {
		t.Fatal("loss injection dropped nothing; the test proves nothing")
	}
	if len(got) != n {
		t.Fatalf("received %d of %d messages", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("message %d corrupted or reordered", i)
		}
	}
	t.Logf("dropped %d frames; stream intact", res.Stats.Dropped)
}

func TestReliableRendezvousSurvivesLoss(t *testing.T) {
	payload := make([]byte, msg.DefaultEagerMax*3)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var retr int
	res := runLossy(t, 0.2, 3, 100*simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			ep.SendPayload(1, 9, payload)
			ep.Flush()
			_, retransmits, _ := ep.ReliabilityStats()
			retr = retransmits
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			got = ep.Recv(0, 9).Payload
			ep.Drain(30 * simtime.Millisecond)
			return nil
		},
	)
	if !bytes.Equal(got, payload) {
		t.Fatal("rendezvous payload corrupted under loss")
	}
	if res.Stats.Dropped > 0 && retr == 0 {
		t.Error("frames were dropped but nothing was retransmitted")
	}
}

func TestUnreliableLosesUnderLoss(t *testing.T) {
	// Sanity check of the loss injector itself: without reliability, a
	// lossy stream must come up short.
	const n = 60
	received := 0
	runLossy(t, 0.3, 11, 50*simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			for i := 0; i < n; i++ {
				ep.Send(1, 1, 100)
			}
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.New(p, pkt.DefaultMTU)
			for {
				_, ok := ep.RecvDeadline(0, 1, p.Now().Add(2*simtime.Millisecond))
				if !ok {
					return nil
				}
				received++
			}
		},
	)
	if received >= n {
		t.Fatalf("all %d messages survived 30%% loss without reliability", n)
	}
}

func TestReliableNoLossNoRetransmits(t *testing.T) {
	// On the paper's perfect switch the reliable machinery must be silent
	// except for acks.
	runLossy(t, 0, 0, simtime.Microsecond,
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			for i := 0; i < 10; i++ {
				ep.Send(1, 2, 5000)
			}
			ep.Flush()
			_, retransmits, dups := ep.ReliabilityStats()
			if retransmits != 0 || dups != 0 {
				return fmt.Errorf("lossless run retransmitted %d / saw %d dups", retransmits, dups)
			}
			return nil
		},
		func(p *guest.Proc) error {
			ep := msg.NewWithConfig(p, reliableCfg())
			for i := 0; i < 10; i++ {
				ep.Recv(0, 2)
			}
			acks, _, _ := ep.ReliabilityStats()
			if acks != 10 {
				return fmt.Errorf("expected 10 acks, sent %d", acks)
			}
			return nil
		},
	)
}

// runBlackout executes programs over a link that is down for the whole run,
// via the fault-injection plan — no frame is ever delivered.
func runBlackout(t *testing.T, q simtime.Duration, progs ...guest.Program) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{
		Nodes:    len(progs),
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: q} },
		Program:  func(rank, size int) guest.Program { return progs[rank] },
		MaxGuest: simtime.Guest(60 * simtime.Second),
		Faults: &faults.Plan{Default: faults.Link{
			Down: []faults.Window{{Start: 0, End: simtime.GuestInfinity}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A link that never delivers must not hang Flush: after MaxRetries expiries
// the message is abandoned, Flush terminates, and the permanent failure
// surfaces through Flush and Err wrapping ErrDeliveryFailed, with the
// timeout/retransmit/failure counters recording exactly the capped attempts.
func TestReliableDeliveryFailureSurfaced(t *testing.T) {
	var flushErr, endpointErr error
	var retransmits, timeouts, failures int
	runBlackout(t, 50*simtime.Microsecond,
		func(p *guest.Proc) error {
			cfg := reliableCfg()
			cfg.MaxRetries = 4
			ep := msg.NewWithConfig(p, cfg)
			ep.Send(1, 3, 2000)
			flushErr = ep.Flush()
			endpointErr = ep.Err()
			_, retransmits, timeouts, _, failures = ep.TransportStats()
			ep.ReportMetrics()
			return nil
		},
		func(p *guest.Proc) error { return nil },
	)
	if !errors.Is(flushErr, msg.ErrDeliveryFailed) {
		t.Fatalf("Flush = %v, want ErrDeliveryFailed", flushErr)
	}
	if !errors.Is(endpointErr, msg.ErrDeliveryFailed) {
		t.Errorf("Err() = %v, want ErrDeliveryFailed", endpointErr)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
	if retransmits != 4 {
		t.Errorf("retransmits = %d, want exactly MaxRetries (4)", retransmits)
	}
	if timeouts != 5 {
		t.Errorf("timeouts = %d, want 5 (4 retransmissions + the abandoning expiry)", timeouts)
	}
}

// The same failure must surface through the mpi communicator layer.
func TestMPIFlushSurfacesDeliveryFailure(t *testing.T) {
	var flushErr error
	runBlackout(t, 50*simtime.Microsecond,
		func(p *guest.Proc) error {
			cfg := reliableCfg()
			cfg.MaxRetries = 2
			c := mpi.NewWithConfig(p, cfg)
			c.Send(1, 0, 500)
			flushErr = c.Flush()
			if !errors.Is(c.Err(), msg.ErrDeliveryFailed) {
				return fmt.Errorf("Comm.Err() = %v, want ErrDeliveryFailed", c.Err())
			}
			return nil
		},
		func(p *guest.Proc) error { return nil },
	)
	if !errors.Is(flushErr, msg.ErrDeliveryFailed) {
		t.Fatalf("Comm.Flush = %v, want ErrDeliveryFailed", flushErr)
	}
}

// Property: bidirectional reliable traffic under arbitrary loss rates and
// seeds delivers every message exactly once, in order, with intact sizes.
func TestPropertyReliableExactlyOnce(t *testing.T) {
	f := func(seed uint16, rate uint8, count uint8) bool {
		n := int(count)%15 + 3
		loss := float64(rate%40) / 100
		sizes := make([]int, n)
		r := rng.New(uint64(seed))
		for i := range sizes {
			sizes[i] = r.Intn(30000)
		}
		okA, okB := true, true
		mk := func(peer int, ok *bool) guest.Program {
			return func(p *guest.Proc) error {
				ep := msg.NewWithConfig(p, reliableCfg())
				for _, s := range sizes {
					ep.Send(peer, 4, s)
				}
				for i := 0; i < n; i++ {
					m := ep.Recv(peer, 4)
					if m.Size != sizes[i] {
						*ok = false
					}
				}
				ep.Flush()
				// Stay responsive until the peer's retransmissions (whose
				// acks may have been lost) have certainly ceased.
				ep.Drain(30 * simtime.Millisecond)
				return nil
			}
		}
		runLossy(t, loss, uint64(seed)+1, 80*simtime.Microsecond, mk(1, &okA), mk(0, &okB))
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Retry-forever mode (MaxRetries < 0) has no per-message budget, so against
// a permanently-down link Flush used to loop unbounded: nextDeadline always
// yields another finite retransmission deadline, and the "bounded by
// nextDeadline" termination argument silently assumed the retry cap. The
// FlushHorizon is the termination backstop: Flush must return right at the
// horizon, abandon the message, and surface ErrDeliveryFailed.
func TestFlushRetryForeverBoundedByHorizon(t *testing.T) {
	const horizon = 20 * simtime.Millisecond
	var flushErr, endpointErr error
	var start, end simtime.Guest
	var failures int
	runBlackout(t, 50*simtime.Microsecond,
		func(p *guest.Proc) error {
			cfg := reliableCfg()
			cfg.MaxRetries = -1
			cfg.FlushHorizon = horizon
			ep := msg.NewWithConfig(p, cfg)
			ep.Send(1, 3, 2000)
			start = p.Now()
			flushErr = ep.Flush()
			end = p.Now()
			endpointErr = ep.Err()
			_, _, _, _, failures = ep.TransportStats()
			return nil
		},
		func(p *guest.Proc) error { return nil },
	)
	if !errors.Is(flushErr, msg.ErrDeliveryFailed) {
		t.Fatalf("Flush = %v, want ErrDeliveryFailed", flushErr)
	}
	if !errors.Is(endpointErr, msg.ErrDeliveryFailed) {
		t.Errorf("Err() = %v, want ErrDeliveryFailed", endpointErr)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
	if end < start.Add(horizon) {
		t.Errorf("Flush returned at %v, before the horizon %v after %v", end, horizon, start)
	}
	if limit := start.Add(2 * horizon); end > limit {
		t.Errorf("Flush returned at %v, far past the horizon %v after %v", end, horizon, start)
	}
}

// The default horizon applies when the config leaves it zero, so no
// retry-forever configuration can hang Flush by omission.
func TestFlushRetryForeverDefaultHorizon(t *testing.T) {
	var flushErr error
	runBlackout(t, 500*simtime.Microsecond,
		func(p *guest.Proc) error {
			cfg := reliableCfg()
			cfg.MaxRetries = -1
			ep := msg.NewWithConfig(p, cfg)
			ep.Send(1, 1, 100)
			flushErr = ep.Flush()
			return nil
		},
		func(p *guest.Proc) error { return nil },
	)
	if !errors.Is(flushErr, msg.ErrDeliveryFailed) {
		t.Fatalf("Flush = %v, want ErrDeliveryFailed", flushErr)
	}
}
