package msg_test

import "testing"

// TestMessageStreamAllocs pins the allocation behaviour of the fragment
// send path. The bounds sit between what the slab-based sendData measures
// (681 / 746 allocs per run on go1.24) and what the old make-per-fragment
// path cost (777 / 810, with ~1.1 MB per run of header buffers that each
// reserved full-MTU capacity) — so a regression back to per-fragment
// allocations fails this test while leaving headroom for runtime noise.
func TestMessageStreamAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark is not short")
	}
	cases := []struct {
		name      string
		payload   bool
		maxAllocs int64
		maxBytes  int64
	}{
		// Size-only messages (what the paper workloads send): the old path
		// allocated header buffers with payload-sized capacity.
		{"size-only", false, 730, 600_000},
		// Payload-carrying messages: bytes are dominated by the payload
		// itself, so only the allocation count separates the two paths.
		{"payload", true, 780, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := testing.Benchmark(func(b *testing.B) { benchStream(b, c.payload) })
			if got := res.AllocsPerOp(); got > c.maxAllocs {
				t.Errorf("message stream: %d allocs/op, want <= %d", got, c.maxAllocs)
			}
			if got := res.AllocedBytesPerOp(); c.maxBytes > 0 && got > c.maxBytes {
				t.Errorf("message stream: %d B/op, want <= %d", got, c.maxBytes)
			}
		})
	}
}
