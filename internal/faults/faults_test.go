package faults

import (
	"math"
	"strings"
	"testing"

	"clustersim/internal/simtime"
)

func TestDecideDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Default: Link{Loss: 0.2, Dup: 0.1, Jitter: 5 * simtime.Microsecond}}
	for id := uint64(0); id < 2000; id++ {
		a := p.Decide(id, 1, 2, simtime.Guest(id))
		b := p.Decide(id, 1, 2, simtime.Guest(id))
		if a != b {
			t.Fatalf("frame %d: Decide not deterministic: %+v vs %+v", id, a, b)
		}
	}
}

func TestDecideRates(t *testing.T) {
	p := &Plan{Seed: 42, Default: Link{Loss: 0.3, Dup: 0.2, Jitter: 10 * simtime.Microsecond}}
	const n = 20000
	drops, dups := 0, 0
	for id := uint64(0); id < n; id++ {
		d := p.Decide(id, 0, 1, 0)
		if d.Drop {
			drops++
			if d.Dup || d.Delay != 0 || d.DupDelay != 0 {
				t.Fatalf("frame %d: dropped frame carries other outcomes: %+v", id, d)
			}
			continue
		}
		if d.Delay < 0 || d.Delay > p.Default.Jitter {
			t.Fatalf("frame %d: delay %v outside [0, %v]", id, d.Delay, p.Default.Jitter)
		}
		if d.Dup {
			dups++
			if d.DupDelay < 0 || d.DupDelay > p.Default.Jitter {
				t.Fatalf("frame %d: dup delay %v outside [0, %v]", id, d.DupDelay, p.Default.Jitter)
			}
		}
	}
	if got := float64(drops) / n; math.Abs(got-0.3) > 0.02 {
		t.Errorf("drop rate %.3f, want ~0.30", got)
	}
	// Dup draws happen only on surviving frames.
	if got := float64(dups) / float64(n-drops); math.Abs(got-0.2) > 0.02 {
		t.Errorf("dup rate %.3f, want ~0.20", got)
	}
}

func TestDecideSeedIndependence(t *testing.T) {
	a := &Plan{Seed: 1, Default: Link{Loss: 0.5}}
	b := &Plan{Seed: 2, Default: Link{Loss: 0.5}}
	same := 0
	const n = 4096
	for id := uint64(0); id < n; id++ {
		if a.Decide(id, 0, 1, 0).Drop == b.Decide(id, 0, 1, 0).Drop {
			same++
		}
	}
	if same == n {
		t.Fatal("two seeds produced identical drop sequences")
	}
}

func TestDownWindow(t *testing.T) {
	p := &Plan{Default: Link{Down: []Window{{Start: 100, End: 200}}}}
	cases := []struct {
		t    simtime.Guest
		drop bool
	}{{99, false}, {100, true}, {150, true}, {199, true}, {200, false}}
	for _, c := range cases {
		if got := p.Decide(1, 0, 1, c.t).Drop; got != c.drop {
			t.Errorf("tSend=%v: drop=%v, want %v", c.t, got, c.drop)
		}
	}
}

func TestPerLinkOverride(t *testing.T) {
	p := &Plan{
		Default: Link{},
		Links:   map[LinkKey]Link{{Src: 0, Dst: 1}: {Down: []Window{{0, simtime.GuestInfinity}}}},
	}
	if !p.Decide(1, 0, 1, 0).Drop {
		t.Error("overridden link 0->1 should drop")
	}
	if p.Decide(1, 1, 0, 0).Drop {
		t.Error("reverse link 1->0 uses the clean default and should deliver")
	}
}

func TestSlowdown(t *testing.T) {
	p := &Plan{NodeSlowdown: map[int]float64{3: 2.5}}
	if got := p.Slowdown(3); got != 2.5 {
		t.Errorf("Slowdown(3) = %v, want 2.5", got)
	}
	if got := p.Slowdown(0); got != 1 {
		t.Errorf("Slowdown(0) = %v, want 1", got)
	}
	if !p.HasSlowdown() {
		t.Error("HasSlowdown() = false with node 3 at 2.5")
	}
	if (&Plan{}).HasSlowdown() {
		t.Error("empty plan reports HasSlowdown")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("loss=0.02, dup=0.001, jitter=5us, down=10ms-12ms, slow=3:2.5", 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 {
		t.Errorf("seed %d, want 99", p.Seed)
	}
	if p.Default.Loss != 0.02 || p.Default.Dup != 0.001 {
		t.Errorf("loss/dup = %v/%v", p.Default.Loss, p.Default.Dup)
	}
	if p.Default.Jitter != 5*simtime.Microsecond {
		t.Errorf("jitter = %v", p.Default.Jitter)
	}
	want := Window{Start: simtime.Guest(10 * simtime.Millisecond), End: simtime.Guest(12 * simtime.Millisecond)}
	if len(p.Default.Down) != 1 || p.Default.Down[0] != want {
		t.Errorf("down = %+v", p.Default.Down)
	}
	if p.NodeSlowdown[3] != 2.5 {
		t.Errorf("slowdown = %+v", p.NodeSlowdown)
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	p, err := Parse("  ", 1)
	if err != nil || p != nil {
		t.Fatalf("Parse(empty) = %v, %v; want nil, nil", p, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"loss", "loss=x", "loss=1.5", "dup=-1", "jitter=bogus",
		"down=10ms", "down=x-y", "slow=3", "slow=a:2", "slow=3:0", "mystery=1",
	} {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan invalid: %v", err)
	}
	bad := &Plan{Links: map[LinkKey]Link{{0, 1}: {Loss: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("loss=1 link passed validation")
	}
	bad = &Plan{Default: Link{Down: []Window{{200, 100}}}}
	if err := bad.Validate(); err == nil {
		t.Error("inverted down window passed validation")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := &Plan{
		Seed:         5,
		Default:      Link{Loss: 0.1},
		Links:        map[LinkKey]Link{{1, 0}: {Dup: 0.2}, {0, 1}: {Loss: 0.3}},
		NodeSlowdown: map[int]float64{2: 1.5, 1: 2},
	}
	b := &Plan{
		Seed:         5,
		Default:      Link{Loss: 0.1},
		Links:        map[LinkKey]Link{{0, 1}: {Loss: 0.3}, {1, 0}: {Dup: 0.2}},
		NodeSlowdown: map[int]float64{1: 2, 2: 1.5},
	}
	if a.Key() != b.Key() {
		t.Errorf("map order changed the key:\n%s\n%s", a.Key(), b.Key())
	}
	if a.Key() == (&Plan{Seed: 6, Default: Link{Loss: 0.1}}).Key() {
		t.Error("different plans share a key")
	}
	var nilPlan *Plan
	if nilPlan.Key() != "" {
		t.Errorf("nil plan key %q, want empty", nilPlan.Key())
	}
}

// FuzzFaultPlan drives the fault-decision function with arbitrary inputs and
// checks its invariants: purity (same inputs, same outcome), delay bounds,
// drop exclusivity, and down-window containment.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), uint64(42), 0, 1, int64(0), 0.1, 0.1, int64(5000), int64(100), int64(200))
	f.Add(uint64(9), uint64(7), 3, 2, int64(150), 0.9, 0.0, int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, seed, frameID uint64, src, dst int, tSendNs int64,
		loss, dup float64, jitterNs, downStart, downEnd int64) {
		if math.IsNaN(loss) || loss < 0 || loss >= 1 || math.IsNaN(dup) || dup < 0 || dup > 1 {
			t.Skip()
		}
		if jitterNs < 0 || downEnd < downStart {
			t.Skip()
		}
		p := &Plan{
			Seed: seed,
			Default: Link{
				Loss: loss, Dup: dup, Jitter: simtime.Duration(jitterNs),
				Down: []Window{{Start: simtime.Guest(downStart), End: simtime.Guest(downEnd)}},
			},
		}
		if err := p.Validate(); err != nil {
			t.Skip()
		}
		tSend := simtime.Guest(tSendNs)
		d := p.Decide(frameID, src, dst, tSend)
		if d != p.Decide(frameID, src, dst, tSend) {
			t.Fatal("Decide is not pure")
		}
		if tSend >= simtime.Guest(downStart) && tSend < simtime.Guest(downEnd) && !d.Drop {
			t.Fatal("send inside a down window was not dropped")
		}
		if d.Drop && (d.Dup || d.Delay != 0 || d.DupDelay != 0) {
			t.Fatalf("dropped frame carries other outcomes: %+v", d)
		}
		if d.Delay < 0 || d.Delay > p.Default.Jitter {
			t.Fatalf("delay %v outside [0, %v]", d.Delay, p.Default.Jitter)
		}
		if d.DupDelay < 0 || d.DupDelay > p.Default.Jitter {
			t.Fatalf("dup delay %v outside [0, %v]", d.DupDelay, p.Default.Jitter)
		}
		if !d.Dup && d.DupDelay != 0 {
			t.Fatalf("non-duplicated frame carries dup delay: %+v", d)
		}
	})
}

// TestValidateErrorDeterministic pins the fix for the map-iteration-order
// bug: a plan with several invalid entries must report the same first error
// on every call. The invalid links are chosen so sorted (src, dst) order
// differs from any likely insertion or hash order.
func TestValidateErrorDeterministic(t *testing.T) {
	p := &Plan{
		Links: map[LinkKey]Link{
			{9, 0}: {Loss: 1.5},
			{3, 7}: {Loss: 2},
			{0, 2}: {Loss: -1},
			{5, 5}: {Dup: 3},
		},
		NodeSlowdown: map[int]float64{4: -1, 1: 0, 8: -2},
	}
	first := p.Validate()
	if first == nil {
		t.Fatal("plan with invalid entries passed validation")
	}
	// Sorted order puts link 0->2 ahead of every other invalid entry.
	if !strings.Contains(first.Error(), "link 0->2") {
		t.Fatalf("first error = %q, want the lowest-ordered link 0->2", first)
	}
	for i := 0; i < 100; i++ {
		if err := p.Validate(); err == nil || err.Error() != first.Error() {
			t.Fatalf("iteration %d: error %q differs from first %q", i, err, first)
		}
	}

	// Slowdown-only plans must be deterministic too.
	q := &Plan{NodeSlowdown: map[int]float64{4: -1, 1: 0, 8: -2}}
	sfirst := q.Validate()
	if sfirst == nil || !strings.Contains(sfirst.Error(), "node 1") {
		t.Fatalf("first slowdown error = %v, want node 1 (lowest id)", sfirst)
	}
	for i := 0; i < 100; i++ {
		if err := q.Validate(); err == nil || err.Error() != sfirst.Error() {
			t.Fatalf("iteration %d: slowdown error %q differs from %q", i, err, sfirst)
		}
	}
}
