// Package faults provides deterministic, seeded fault injection for the
// cluster engines: per-link packet loss, duplication, extra delay jitter,
// link-down windows, and per-node host slowdown factors.
//
// Every per-frame decision is a pure function of (Plan.Seed, Frame.ID, src,
// dst, tSend) computed with internal/rng's stateless hash. No fault decision
// reads or mutates shared state, so outcomes are bit-identical regardless of
// how many workers route frames or in which order, and a run is fully
// replayable from its Config. Injected delay only ever *increases* a frame's
// arrival time, preserving the engine's Q <= T fast-path safety argument.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// Hash-domain separators: the purpose constant is mixed into every draw so
// the loss, duplication and jitter decisions for one frame are independent
// streams even though they share (seed, frame, link) inputs.
const (
	purposeLoss uint64 = 0x10c5 + iota
	purposeDup
	purposeJitter
	purposeDupJitter
)

// Window is a half-open guest-time interval [Start, End).
type Window struct {
	Start simtime.Guest
	End   simtime.Guest
}

// contains reports whether t falls inside the window.
func (w Window) contains(t simtime.Guest) bool { return t >= w.Start && t < w.End }

// Link describes the fault behaviour of one directed link (or the plan-wide
// default). The zero value is a perfect link.
type Link struct {
	// Loss is the per-frame drop probability in [0, 1).
	Loss float64
	// Dup is the per-frame duplication probability in [0, 1]. A duplicated
	// frame is delivered twice; each copy is classified independently by
	// the engine. Unlike Loss, 1 is allowed: duplicating every frame is a
	// well-defined deterministic stress mode.
	Dup float64
	// Jitter is the maximum extra one-way delay. Each frame (and each
	// duplicate copy) independently draws a uniform extra delay in
	// [0, Jitter]. Extra delay is always non-negative.
	Jitter simtime.Duration
	// Down lists guest-time windows during which the link drops every
	// frame whose send time falls inside [Start, End).
	Down []Window
}

// zero reports whether the link injects no faults at all.
func (l Link) zero() bool {
	return l.Loss == 0 && l.Dup == 0 && l.Jitter == 0 && len(l.Down) == 0
}

// LinkKey names one directed link.
type LinkKey struct {
	Src, Dst int
}

// Decision is the fault outcome for one routed frame.
type Decision struct {
	// Drop discards the frame before delivery. When set, the remaining
	// fields are zero.
	Drop bool
	// Dup delivers a second copy of the frame.
	Dup bool
	// Delay is extra arrival delay for the (first) copy, in [0, Jitter].
	Delay simtime.Duration
	// DupDelay is extra arrival delay for the duplicate copy, drawn
	// independently from the same [0, Jitter] range. Only meaningful when
	// Dup is set.
	DupDelay simtime.Duration
}

// Plan is a complete fault-injection schedule. A nil *Plan means no faults
// and costs nothing; the engines nil-check it once per frame.
type Plan struct {
	// Seed keys every probabilistic decision. Two runs with equal plans
	// are bit-identical; changing the seed redraws every outcome.
	Seed uint64
	// Default applies to every directed link without an entry in Links.
	Default Link
	// Links overrides Default per directed (src, dst) link.
	Links map[LinkKey]Link
	// NodeSlowdown scales a node's host-time costs: factor 2 means the
	// node's simulator runs twice as slowly in host time. Absent nodes run
	// at factor 1. Factors must be positive.
	NodeSlowdown map[int]float64
}

// link resolves the effective Link for a directed pair.
func (p *Plan) link(src, dst int) Link {
	if l, ok := p.Links[LinkKey{src, dst}]; ok {
		return l
	}
	return p.Default
}

// Decide returns the fault outcome for one frame. It is a pure function of
// (p.Seed, frameID, src, dst, tSend): no state is read or written, so it is
// safe to call from any goroutine and yields the same answer at every call
// site — the property that keeps fault runs worker-count invariant.
func (p *Plan) Decide(frameID uint64, src, dst int, tSend simtime.Guest) Decision {
	l := p.link(src, dst)
	if l.zero() {
		return Decision{}
	}
	for _, w := range l.Down {
		if w.contains(tSend) {
			return Decision{Drop: true}
		}
	}
	s, d := uint64(src), uint64(dst)
	if l.Loss > 0 && rng.HashFloat01(p.Seed, purposeLoss, frameID, s, d) < l.Loss {
		return Decision{Drop: true}
	}
	var dec Decision
	if l.Jitter > 0 {
		dec.Delay = simtime.Duration(rng.HashFloat01(p.Seed, purposeJitter, frameID, s, d) * float64(l.Jitter))
	}
	// HashFloat01 draws from the open interval (0, 1), so Dup == 1
	// duplicates every frame.
	if l.Dup > 0 && rng.HashFloat01(p.Seed, purposeDup, frameID, s, d) < l.Dup {
		dec.Dup = true
		if l.Jitter > 0 {
			dec.DupDelay = simtime.Duration(rng.HashFloat01(p.Seed, purposeDupJitter, frameID, s, d) * float64(l.Jitter))
		}
	}
	return dec
}

// Slowdown returns the host slowdown factor for a node (1 when unset).
func (p *Plan) Slowdown(node int) float64 {
	if f, ok := p.NodeSlowdown[node]; ok {
		return f
	}
	return 1
}

// HasSlowdown reports whether any node runs at a factor other than 1.
func (p *Plan) HasSlowdown() bool {
	//simlint:maporder existence predicate: the result is the same whichever order the entries are visited
	for _, f := range p.NodeSlowdown {
		if f != 1 {
			return true
		}
	}
	return false
}

// validateLink checks one link's parameters.
func validateLink(name string, l Link) error {
	if l.Loss < 0 || l.Loss >= 1 {
		return fmt.Errorf("faults: %s loss %v outside [0, 1)", name, l.Loss)
	}
	if l.Dup < 0 || l.Dup > 1 {
		return fmt.Errorf("faults: %s dup %v outside [0, 1]", name, l.Dup)
	}
	if l.Jitter < 0 {
		return fmt.Errorf("faults: %s negative jitter %v", name, l.Jitter)
	}
	for _, w := range l.Down {
		if w.End < w.Start {
			return fmt.Errorf("faults: %s down window %v-%v ends before it starts", name, w.Start, w.End)
		}
	}
	return nil
}

// Validate checks the plan's parameters. A nil plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if err := validateLink("default link", p.Default); err != nil {
		return err
	}
	// Walk keys in sorted order so a plan with several invalid entries
	// reports the same (first) error on every run; ranging the maps
	// directly made the reported error depend on map iteration order.
	for _, k := range sortedLinkKeys(p.Links) {
		if err := validateLink(fmt.Sprintf("link %d->%d", k.Src, k.Dst), p.Links[k]); err != nil {
			return err
		}
	}
	for _, n := range sortedSlowdownNodes(p.NodeSlowdown) {
		if f := p.NodeSlowdown[n]; f <= 0 {
			return fmt.Errorf("faults: node %d slowdown %v must be positive", n, f)
		}
	}
	return nil
}

// sortedLinkKeys returns the plan's link keys in (src, dst) order.
func sortedLinkKeys(links map[LinkKey]Link) []LinkKey {
	lks := make([]LinkKey, 0, len(links))
	for k := range links {
		lks = append(lks, k)
	}
	sort.Slice(lks, func(i, j int) bool {
		if lks[i].Src != lks[j].Src {
			return lks[i].Src < lks[j].Src
		}
		return lks[i].Dst < lks[j].Dst
	})
	return lks
}

// sortedSlowdownNodes returns the slowdown map's node ids in ascending order.
func sortedSlowdownNodes(slow map[int]float64) []int {
	nodes := make([]int, 0, len(slow))
	for n := range slow {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// Key returns a canonical fingerprint of the plan, suitable for memoization
// keys (equal fingerprints imply identical fault behaviour). A nil plan's
// key is the empty string.
func (p *Plan) Key() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d;%s", p.Seed, linkKeyStr(p.Default))
	for _, k := range sortedLinkKeys(p.Links) {
		fmt.Fprintf(&b, ";%d->%d:%s", k.Src, k.Dst, linkKeyStr(p.Links[k]))
	}
	for _, n := range sortedSlowdownNodes(p.NodeSlowdown) {
		fmt.Fprintf(&b, ";slow%d=%g", n, p.NodeSlowdown[n])
	}
	return b.String()
}

func linkKeyStr(l Link) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loss=%g,dup=%g,jitter=%d", l.Loss, l.Dup, int64(l.Jitter))
	for _, w := range l.Down {
		fmt.Fprintf(&b, ",down=%d-%d", int64(w.Start), int64(w.End))
	}
	return b.String()
}

// Parse builds a Plan from a CLI spec string and seed. The spec is a
// comma-separated list of key=value fields applied to the default link,
// plus per-node slowdowns:
//
//	loss=0.01            per-frame drop probability
//	dup=0.001            per-frame duplication probability
//	jitter=5us           max extra one-way delay
//	down=10ms-12ms       link-down window (repeatable)
//	slow=3:2.5           node 3 runs at 2.5x host slowdown (repeatable)
//
// An empty spec returns a nil plan (no faults). The returned plan is
// validated.
func Parse(spec string, seed uint64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: seed}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: field %q is not key=value", field)
		}
		switch key {
		case "loss":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad loss %q: %v", val, err)
			}
			p.Default.Loss = v
		case "dup":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad dup %q: %v", val, err)
			}
			p.Default.Dup = v
		case "jitter":
			d, err := simtime.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bad jitter %q: %v", val, err)
			}
			p.Default.Jitter = d
		case "down":
			a, b, ok := strings.Cut(val, "-")
			if !ok {
				return nil, fmt.Errorf("faults: down window %q is not start-end", val)
			}
			start, err := simtime.ParseDuration(a)
			if err != nil {
				return nil, fmt.Errorf("faults: bad down start %q: %v", a, err)
			}
			end, err := simtime.ParseDuration(b)
			if err != nil {
				return nil, fmt.Errorf("faults: bad down end %q: %v", b, err)
			}
			p.Default.Down = append(p.Default.Down, Window{Start: simtime.Guest(start), End: simtime.Guest(end)})
		case "slow":
			n, f, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: slowdown %q is not node:factor", val)
			}
			node, err := strconv.Atoi(n)
			if err != nil {
				return nil, fmt.Errorf("faults: bad slowdown node %q: %v", n, err)
			}
			factor, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad slowdown factor %q: %v", f, err)
			}
			if p.NodeSlowdown == nil {
				p.NodeSlowdown = map[int]float64{}
			}
			p.NodeSlowdown[node] = factor
		default:
			return nil, fmt.Errorf("faults: unknown field %q (want loss, dup, jitter, down, slow)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
