// Package simtime provides the scalar time types used throughout the cluster
// simulator.
//
// Two clock domains exist and must never be confused:
//
//   - Guest time is the simulated time inside a node (the time the simulated
//     OS and applications observe).
//   - Host time is the (modelled or real) wall-clock time of the machine that
//     executes the simulators. Simulation speed and synchronization overhead
//     live in this domain.
//
// Both are represented as int64 nanosecond counts with distinct types so that
// the compiler rejects accidental cross-domain arithmetic.
package simtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Guest is an absolute point in simulated (guest) time, in nanoseconds since
// the start of the simulation.
type Guest int64

// Host is an absolute point in host time, in nanoseconds since the start of
// the simulation run.
type Host int64

// Duration is a length of time in nanoseconds, valid in either domain.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// GuestInfinity is a guest time later than any reachable simulation time.
const GuestInfinity Guest = 1<<63 - 1

// HostInfinity is a host time later than any reachable simulation time.
const HostInfinity Host = 1<<63 - 1

// Add returns the guest time d after t.
func (t Guest) Add(d Duration) Guest { return t + Guest(d) }

// Sub returns the duration t-u.
func (t Guest) Sub(u Guest) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Guest) Before(u Guest) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Guest) After(u Guest) bool { return t > u }

// Add returns the host time d after t.
func (t Host) Add(d Duration) Host { return t + Host(d) }

// Sub returns the duration t-u.
func (t Host) Sub(u Host) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Host) Before(u Host) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Host) After(u Host) bool { return t > u }

// Nanoseconds returns d as an integer nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Microseconds returns d as fractional microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// Seconds returns d as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Scale returns d multiplied by f, rounding to the nearest nanosecond.
// Negative results are clamped to zero: scaled durations model physical
// costs, which cannot be negative.
func (d Duration) Scale(f float64) Duration {
	s := float64(d) * f
	if s <= 0 {
		return 0
	}
	return Duration(s + 0.5)
}

// String formats d using the largest unit that keeps the value readable,
// e.g. "1.5ms", "250µs", "30ns".
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return strconv.FormatInt(int64(d/Second), 10) + "s"
	case d >= Second || d <= -Second:
		return trimZeros(fmt.Sprintf("%.3f", float64(d)/1e9)) + "s"
	case d%Millisecond == 0:
		return strconv.FormatInt(int64(d/Millisecond), 10) + "ms"
	case d >= Millisecond || d <= -Millisecond:
		return trimZeros(fmt.Sprintf("%.3f", float64(d)/1e6)) + "ms"
	case d%Microsecond == 0:
		return strconv.FormatInt(int64(d/Microsecond), 10) + "µs"
	case d >= Microsecond || d <= -Microsecond:
		return trimZeros(fmt.Sprintf("%.3f", float64(d)/1e3)) + "µs"
	default:
		return strconv.FormatInt(int64(d), 10) + "ns"
	}
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String formats the guest time as a duration since simulation start.
func (t Guest) String() string { return Duration(t).String() }

// String formats the host time as a duration since run start.
func (t Host) String() string { return Duration(t).String() }

// ParseDuration parses strings like "1us", "1µs", "10ms", "2s", "500ns",
// "1.5ms". It exists so command-line tools do not need time.ParseDuration's
// full generality (and so "us" is accepted as a spelling of µs).
func ParseDuration(s string) (Duration, error) {
	orig := s
	var unit Duration
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		unit, s = Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "µs"):
		unit, s = Microsecond, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, s = Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("simtime: missing unit in duration %q", orig)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("simtime: invalid duration %q", orig)
	}
	ns := v * float64(unit)
	if ns >= 0 {
		return Duration(ns + 0.5), nil
	}
	return Duration(ns - 0.5), nil
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the smaller of a and b.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxGuest returns the later of a and b.
func MaxGuest(a, b Guest) Guest {
	if a > b {
		return a
	}
	return b
}

// MinGuest returns the earlier of a and b.
func MinGuest(a, b Guest) Guest {
	if a < b {
		return a
	}
	return b
}

// MaxHost returns the later of a and b.
func MaxHost(a, b Host) Host {
	if a > b {
		return a
	}
	return b
}

// MinHost returns the earlier of a and b.
func MinHost(a, b Host) Host {
	if a < b {
		return a
	}
	return b
}
