package simtime

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{1, "1ns"},
		{999, "999ns"},
		{Microsecond, "1µs"},
		{1500, "1.5µs"},
		{10 * Microsecond, "10µs"},
		{Millisecond, "1ms"},
		{1300 * Microsecond, "1.3ms"},
		{Second, "1s"},
		{2500 * Millisecond, "2.5s"},
		{90 * Second, "90s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d ns).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"1ns", 1},
		{"1us", Microsecond},
		{"1µs", Microsecond},
		{"10us", 10 * Microsecond},
		{"1.5ms", 1500 * Microsecond},
		{"2s", 2 * Second},
		{"0.25us", 250},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "10", "xms", "s", "10m"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) did not fail", bad)
		}
	}
}

func TestParseFormatsRoundTrip(t *testing.T) {
	// Round-trippable durations (exact unit multiples) survive
	// String→Parse.
	f := func(us int32) bool {
		d := Duration(us%1_000_000) * Microsecond
		if d < 0 {
			d = -d
		}
		back, err := ParseDuration(d.String())
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	if got := (100 * Microsecond).Scale(0.5); got != 50*Microsecond {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := (100 * Microsecond).Scale(0); got != 0 {
		t.Errorf("Scale(0) = %v", got)
	}
	if got := Duration(-5).Scale(2); got != 0 {
		t.Errorf("negative scaled should clamp to 0, got %v", got)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if MaxDuration(1, 2) != 2 || MinDuration(1, 2) != 1 {
		t.Error("duration min/max broken")
	}
	if MaxGuest(3, 4) != 4 || MinGuest(3, 4) != 3 {
		t.Error("guest min/max broken")
	}
	if MaxHost(5, 6) != 6 || MinHost(5, 6) != 5 {
		t.Error("host min/max broken")
	}
}

func TestClockArithmetic(t *testing.T) {
	g := Guest(100)
	if g.Add(50) != Guest(150) {
		t.Error("Guest.Add broken")
	}
	if Guest(150).Sub(g) != 50 {
		t.Error("Guest.Sub broken")
	}
	if !g.Before(150) || !Guest(150).After(g) {
		t.Error("Guest ordering broken")
	}
	h := Host(10)
	if h.Add(5) != Host(15) || Host(15).Sub(h) != 5 {
		t.Error("Host arithmetic broken")
	}
	if !h.Before(20) || !Host(20).After(h) {
		t.Error("Host ordering broken")
	}
}

func TestNegativeDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{-1500 * Microsecond, "-1.5ms"},
		{-2 * Second, "-2s"},
		{-2500 * Millisecond, "-2.5s"},
		{-250, "-250ns"},
		{-1500, "-1.5µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d ns).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationAccessors(t *testing.T) {
	d := 1500 * Microsecond
	if d.Nanoseconds() != 1_500_000 {
		t.Error("Nanoseconds")
	}
	if d.Microseconds() != 1500 {
		t.Error("Microseconds")
	}
	if d.Seconds() != 0.0015 {
		t.Error("Seconds")
	}
}

func TestClockStrings(t *testing.T) {
	if Guest(1500).String() != "1.5µs" || Host(2*Second).String() != "2s" {
		t.Error("clock String broken")
	}
}

func TestNegativeParse(t *testing.T) {
	d, err := ParseDuration("-2.5ms")
	if err != nil || d != -2500*Microsecond {
		t.Errorf("ParseDuration(-2.5ms) = %v, %v", d, err)
	}
}
