package simtime

import "testing"

// FuzzParseDuration: the parser must never panic, and everything it accepts
// must re-parse from its own String rendering to a nearby value.
func FuzzParseDuration(f *testing.F) {
	for _, seed := range []string{"1us", "1.5ms", "2s", "500ns", "-3µs", "", "xx", "1e300s", "NaNms"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDuration(s)
		if err != nil {
			return
		}
		back, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("String rendering %q of parsed %q does not re-parse: %v", d.String(), s, err)
		}
		diff := int64(back - d)
		if diff < 0 {
			diff = -diff
		}
		// String rounds to three decimals of the displayed unit; allow that.
		if d != 0 && float64(diff) > 0.001*absF(float64(d))+1 {
			t.Fatalf("round trip of %q drifted: %v -> %v", s, d, back)
		}
	})
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
