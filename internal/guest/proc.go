package guest

import (
	"fmt"

	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// Proc is the API a workload program uses to interact with its node. All
// methods must be called only from the workload's own goroutine (the one the
// node started for its Program).
type Proc struct {
	n *Node
}

// Rank returns this node's ID within the cluster (0-based).
func (p *Proc) Rank() int { return p.n.id }

// Size returns the number of nodes in the cluster.
func (p *Proc) Size() int { return p.n.size }

// Now returns the node's current guest time.
func (p *Proc) Now() simtime.Guest { return p.n.clock.load() }

// Config returns the node's guest configuration.
func (p *Proc) Config() Config { return p.n.cfg }

// Compute executes d of guest CPU time.
func (p *Proc) Compute(d simtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("guest: Compute(%v) with negative duration", d))
	}
	if d == 0 {
		return
	}
	p.n.call(request{kind: opCompute, dur: d})
}

// ComputeCycles executes the given number of guest CPU cycles at the node's
// configured frequency.
func (p *Proc) ComputeCycles(cycles int64) {
	if cycles <= 0 {
		return
	}
	ns := float64(cycles) / p.n.cfg.CPUHz * 1e9
	d := simtime.Duration(ns)
	if d == 0 {
		d = 1
	}
	p.Compute(d)
}

// Send hands a frame of size payload bytes to the NIC, addressed to node
// dst. It costs the configured per-frame send overhead of guest CPU time and
// returns once the frame has been queued (the NIC transmits asynchronously).
func (p *Proc) Send(dst int, proto pkt.Proto, size int, data []byte) {
	if size < 0 {
		panic(fmt.Sprintf("guest: Send with negative size %d", size))
	}
	p.n.frameID++
	f := p.n.newFrame()
	*f = pkt.Frame{
		Src:   pkt.NodeMAC(p.n.id),
		Dst:   pkt.NodeMAC(dst),
		Proto: proto,
		Size:  size,
		Data:  data,
		ID:    uint64(p.n.id)<<40 | p.n.frameID,
	}
	p.n.call(request{kind: opSend, frame: f})
}

// Broadcast sends a frame to every other node via the link-layer broadcast
// address.
func (p *Proc) Broadcast(proto pkt.Proto, size int, data []byte) {
	p.n.frameID++
	f := p.n.newFrame()
	*f = pkt.Frame{
		Src:   pkt.NodeMAC(p.n.id),
		Dst:   pkt.Broadcast,
		Proto: proto,
		Size:  size,
		Data:  data,
		ID:    uint64(p.n.id)<<40 | p.n.frameID,
	}
	p.n.call(request{kind: opSend, frame: f})
}

// Recv blocks until the next frame is visible to the guest and returns it
// together with its guest arrival time. Frames are delivered in arrival
// order regardless of sender.
func (p *Proc) Recv() Arrival {
	r := p.n.call(request{kind: opRecv, deadline: simtime.GuestInfinity})
	if !r.hasArr {
		panic("guest: Recv returned without an arrival")
	}
	return r.arrival
}

// RecvDeadline blocks until a frame is visible or the guest clock reaches
// deadline, whichever comes first. ok reports whether a frame was received.
func (p *Proc) RecvDeadline(deadline simtime.Guest) (a Arrival, ok bool) {
	r := p.n.call(request{kind: opRecv, deadline: deadline})
	if !r.hasArr {
		return Arrival{}, false
	}
	return r.arrival, true
}

// TryRecv returns a frame if one is already visible, without blocking
// (beyond the receive CPU overhead when a frame is consumed).
func (p *Proc) TryRecv() (a Arrival, ok bool) {
	return p.RecvDeadline(p.n.clock.load())
}

// Sleep idles the guest for d.
func (p *Proc) Sleep(d simtime.Duration) {
	if d <= 0 {
		return
	}
	p.n.call(request{kind: opSleep, deadline: p.n.clock.load().Add(d)})
}

// SleepUntil idles the guest until the absolute time t (no-op if already
// past).
func (p *Proc) SleepUntil(t simtime.Guest) {
	if t <= p.n.clock.load() {
		return
	}
	p.n.call(request{kind: opSleep, deadline: t})
}

// Report records a named application metric (e.g. "mops", "walltime_s") on
// this node. The experiment harness reads metrics after the run; by
// convention rank 0 reports the application-level result, mirroring how the
// paper reads the benchmark's self-reported numbers.
func (p *Proc) Report(name string, value float64) {
	p.n.metrics[name] = value
}
