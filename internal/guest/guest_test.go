package guest

import (
	"errors"
	"testing"

	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

const us = simtime.Microsecond

// drive steps a node until the predicate returns true or the step budget is
// exhausted, failing the test in the latter case. Busy steps are accepted
// silently (the test harness is a zero-cost host).
func drive(t *testing.T, n *Node, budget int, stop func(Step) bool) Step {
	t.Helper()
	for i := 0; i < budget; i++ {
		st := n.Step()
		if stop(st) {
			return st
		}
		switch st.Kind {
		case StepBusy:
			// zero-cost host: continue immediately
		case StepLimit, StepBlocked, StepDone:
			t.Fatalf("unexpected %v step at %v", st.Kind, st.To)
		}
	}
	t.Fatal("step budget exhausted")
	return Step{}
}

func TestComputeAdvancesClockAcrossQuanta(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Compute(25 * us)
		return nil
	})
	defer n.Shutdown()
	// Quantum of 10µs: the compute must take three quanta.
	for q := 1; q <= 2; q++ {
		n.BeginQuantum(simtime.Guest(q) * simtime.Guest(10*us))
		st := n.Step() // busy to the limit
		if st.Kind != StepBusy || st.To != simtime.Guest(q*10)*simtime.Guest(us) {
			t.Fatalf("quantum %d: got %v to %v", q, st.Kind, st.To)
		}
		if st = n.Step(); st.Kind != StepLimit {
			t.Fatalf("quantum %d: expected limit, got %v", q, st.Kind)
		}
	}
	n.BeginQuantum(simtime.Guest(30 * us))
	st := n.Step()
	if st.Kind != StepBusy || st.To != simtime.Guest(25*us) {
		t.Fatalf("final chunk: %v to %v", st.Kind, st.To)
	}
	st = n.Step()
	if st.Kind != StepDone || st.Err != nil {
		t.Fatalf("expected done, got %v err=%v", st.Kind, st.Err)
	}
	if n.FinishedAt() != simtime.Guest(25*us) {
		t.Errorf("finished at %v", n.FinishedAt())
	}
}

func TestSendEmitsFrameAfterOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendOverhead = 2 * us
	n := NewNode(3, 8, cfg, func(p *Proc) error {
		p.Send(5, pkt.ProtoRaw, 100, nil)
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBusy || st.To.Sub(st.From) != 2*us {
		t.Fatalf("send overhead not charged: %v [%v,%v]", st.Kind, st.From, st.To)
	}
	st = n.Step()
	if st.Kind != StepSend {
		t.Fatalf("expected send, got %v", st.Kind)
	}
	if st.Frame.Src != pkt.NodeMAC(3) || st.Frame.Dst != pkt.NodeMAC(5) || st.Frame.Size != 100 {
		t.Errorf("bad frame %v", st.Frame)
	}
	if st.To != simtime.Guest(2*us) {
		t.Errorf("send at %v, want 2µs", st.To)
	}
}

func TestRecvBlocksAndWakes(t *testing.T) {
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		a := p.Recv()
		p.Report("arr_us", simtime.Duration(a.Time).Microseconds())
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked || st.NextArrival != simtime.GuestInfinity {
		t.Fatalf("expected blocked with no arrival, got %+v", st)
	}
	// A frame scheduled for guest t=40µs.
	n.Deliver(&pkt.Frame{Src: pkt.NodeMAC(1), Dst: pkt.NodeMAC(0)}, simtime.Guest(40*us))
	n.WakeAt(simtime.Guest(40 * us))
	st = drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["arr_us"] != 40 {
		t.Errorf("arrival at %vµs, want 40", n.Metrics()["arr_us"])
	}
}

func TestBlockedReportsQueuedFutureArrival(t *testing.T) {
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		p.Recv()
		return nil
	})
	defer n.Shutdown()
	n.Deliver(&pkt.Frame{}, simtime.Guest(30*us))
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked || st.NextArrival != simtime.Guest(30*us) {
		t.Fatalf("blocked step did not report the queued arrival: %+v", st)
	}
}

func TestRecvDeadlineTimesOut(t *testing.T) {
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		_, ok := p.RecvDeadline(simtime.Guest(20 * us))
		if ok {
			return errors.New("unexpected frame")
		}
		p.Report("timeout_at_us", simtime.Duration(p.Now()).Microseconds())
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked || st.Deadline != simtime.Guest(20*us) {
		t.Fatalf("expected blocked with deadline, got %+v", st)
	}
	n.WakeAt(simtime.Guest(20 * us))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["timeout_at_us"] != 20 {
		t.Errorf("timed out at %vµs", n.Metrics()["timeout_at_us"])
	}
}

func TestStragglerVisibleImmediately(t *testing.T) {
	// A frame delivered with an arrival time in the node's past must be
	// returned by the next Recv.
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		p.Compute(50 * us)
		a := p.Recv()
		p.Report("arr_us", simtime.Duration(a.Time).Microseconds())
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepBusy && s.To == simtime.Guest(50*us) })
	// Straggler stamped at guest 50µs (the node's "current position").
	n.Deliver(&pkt.Frame{}, simtime.Guest(50*us))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["arr_us"] != 50 {
		t.Errorf("straggler arrival %vµs, want 50", n.Metrics()["arr_us"])
	}
}

func TestArrivalOrderIsByTimestamp(t *testing.T) {
	n := NewNode(0, 3, DefaultConfig(), func(p *Proc) error {
		first := p.Recv()
		second := p.Recv()
		p.Report("first", float64(first.Frame.ID))
		p.Report("second", float64(second.Frame.ID))
		return nil
	})
	defer n.Shutdown()
	// Delivered out of order; must be received in timestamp order.
	n.Deliver(&pkt.Frame{ID: 2}, simtime.Guest(60*us))
	n.Deliver(&pkt.Frame{ID: 1}, simtime.Guest(40*us))
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked {
		t.Fatalf("expected blocked, got %v", st.Kind)
	}
	n.WakeAt(simtime.Guest(70 * us))
	drive(t, n, 20, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["first"] != 1 || n.Metrics()["second"] != 2 {
		t.Errorf("wrong order: first=%v second=%v", n.Metrics()["first"], n.Metrics()["second"])
	}
}

func TestSleep(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Sleep(30 * us)
		p.Report("woke_us", simtime.Duration(p.Now()).Microseconds())
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked || st.Deadline != simtime.Guest(30*us) {
		t.Fatalf("expected sleep-blocked until 30µs, got %+v", st)
	}
	n.WakeAt(simtime.Guest(30 * us))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["woke_us"] != 30 {
		t.Errorf("woke at %vµs", n.Metrics()["woke_us"])
	}
}

func TestWorkloadErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error { return boom })
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(10 * us))
	st := n.Step()
	if st.Kind != StepDone || !errors.Is(st.Err, boom) {
		t.Fatalf("got %v err=%v", st.Kind, st.Err)
	}
	if !errors.Is(n.Err(), boom) {
		t.Error("node did not record the error")
	}
}

func TestShutdownUnblocksWorkload(t *testing.T) {
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		p.Recv() // never satisfied
		return nil
	})
	n.BeginQuantum(simtime.Guest(10 * us))
	if st := n.Step(); st.Kind != StepBlocked {
		t.Fatalf("expected blocked, got %v", st.Kind)
	}
	n.Shutdown() // must not hang
	if !n.Done() {
		t.Error("node not done after shutdown")
	}
}

func TestShutdownMidCompute(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Compute(simtime.Second)
		return nil
	})
	n.BeginQuantum(simtime.Guest(10 * us))
	n.Step() // busy to the limit; compute pending
	n.Shutdown()
	if !n.Done() {
		t.Error("node not done after shutdown")
	}
}

func TestWakeAtRegressionPanics(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Compute(20 * us)
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(50 * us))
	n.Step() // clock at 20µs
	defer func() {
		if recover() == nil {
			t.Error("WakeAt into the past did not panic")
		}
	}()
	n.WakeAt(simtime.Guest(10 * us))
}

func TestComputeCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUHz = 1e9 // 1 cycle = 1ns
	n := NewNode(0, 1, cfg, func(p *Proc) error {
		p.ComputeCycles(5000)
		p.Report("ns", float64(p.Now()))
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(simtime.Millisecond))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["ns"] != 5000 {
		t.Errorf("5000 cycles at 1GHz took %vns", n.Metrics()["ns"])
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNode(0, 2, DefaultConfig(), func(p *Proc) error {
		if _, ok := p.TryRecv(); ok {
			return errors.New("TryRecv returned a frame on an empty queue")
		}
		p.Compute(10 * us)
		a, ok := p.TryRecv()
		if !ok {
			return errors.New("TryRecv missed a visible frame")
		}
		p.Report("got", float64(a.Frame.ID))
		return nil
	})
	defer n.Shutdown()
	n.Deliver(&pkt.Frame{ID: 9}, simtime.Guest(5*us))
	n.BeginQuantum(simtime.Guest(100 * us))
	drive(t, n, 20, func(s Step) bool { return s.Kind == StepDone })
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	if n.Metrics()["got"] != 9 {
		t.Error("wrong frame")
	}
}
