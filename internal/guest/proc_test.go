package guest

import (
	"errors"
	"testing"

	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

func TestBroadcastFrame(t *testing.T) {
	n := NewNode(2, 4, DefaultConfig(), func(p *Proc) error {
		p.Broadcast(pkt.ProtoRaw, 64, nil)
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := drive(t, n, 10, func(s Step) bool { return s.Kind == StepSend })
	if !st.Frame.Dst.IsBroadcast() {
		t.Error("broadcast frame has unicast destination")
	}
	if st.Frame.Src != pkt.NodeMAC(2) {
		t.Error("wrong source MAC")
	}
}

func TestSleepUntilAndNoOps(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Compute(0)        // no-op
		p.Sleep(0)          // no-op
		p.Sleep(-5)         // no-op
		p.SleepUntil(0)     // already past
		p.ComputeCycles(0)  // no-op
		p.ComputeCycles(-1) // no-op
		p.SleepUntil(simtime.Guest(25 * us))
		p.Report("at_us", simtime.Duration(p.Now()).Microseconds())
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := n.Step()
	if st.Kind != StepBlocked || st.Deadline != simtime.Guest(25*us) {
		t.Fatalf("expected sleep to 25µs, got %+v", st)
	}
	n.WakeAt(simtime.Guest(25 * us))
	drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if n.Metrics()["at_us"] != 25 {
		t.Errorf("woke at %vµs", n.Metrics()["at_us"])
	}
}

func TestNegativeComputePanicsInWorkload(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			p.Compute(-1)
		}()
		if !panicked {
			return errors.New("negative compute did not panic")
		}
		func() {
			defer func() { panicked = recover() != nil }()
			p.Send(0, pkt.ProtoRaw, -1, nil)
		}()
		if !panicked {
			return errors.New("negative send size did not panic")
		}
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(100 * us))
	st := drive(t, n, 10, func(s Step) bool { return s.Kind == StepDone })
	if st.Err != nil {
		t.Fatal(st.Err)
	}
}

func TestProcAccessors(t *testing.T) {
	n := NewNode(3, 8, DefaultConfig(), func(p *Proc) error {
		if p.Rank() != 3 || p.Size() != 8 {
			return errors.New("wrong rank/size")
		}
		if p.Config().CPUHz != DefaultConfig().CPUHz {
			return errors.New("wrong config")
		}
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(10 * us))
	st := n.Step()
	if st.Kind != StepDone || st.Err != nil {
		t.Fatalf("%v %v", st.Kind, st.Err)
	}
}

func TestStepKindStrings(t *testing.T) {
	kinds := map[StepKind]string{
		StepBusy: "busy", StepSend: "send", StepBlocked: "blocked",
		StepLimit: "limit", StepDone: "done", StepKind(99): "StepKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestBeginQuantumRegressionPanics(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error {
		p.Compute(50 * us)
		return nil
	})
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(50 * us))
	n.Step()
	defer func() {
		if recover() == nil {
			t.Error("shrinking quantum limit did not panic")
		}
	}()
	n.BeginQuantum(simtime.Guest(10 * us))
}

func TestStepAfterDoneStaysDone(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error { return nil })
	defer n.Shutdown()
	n.BeginQuantum(simtime.Guest(10 * us))
	if st := n.Step(); st.Kind != StepDone {
		t.Fatal("first step should be done")
	}
	if st := n.Step(); st.Kind != StepDone {
		t.Fatal("subsequent steps should stay done")
	}
	if !n.Done() {
		t.Error("Done() false after completion")
	}
}

func TestShutdownOnNeverStartedNode(t *testing.T) {
	n := NewNode(0, 1, DefaultConfig(), func(p *Proc) error { return nil })
	n.Shutdown() // must be a safe no-op
	if n.Done() {
		t.Error("never-started node marked done by Shutdown")
	}
}
