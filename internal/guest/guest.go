// Package guest models one simulated cluster node: a guest machine executing
// a workload program against a guest clock and a NIC.
//
// In the paper each node is a full x86 system under AMD SimNow; here a node
// executes a *workload program* — ordinary Go code written against the Proc
// API (Compute, Send, Recv, Sleep) — on its own coroutine (iter.Pull). The
// node and the workload run strictly hand-over-hand (exactly one of them is
// ever active; every switch is an explicit resume, never a scheduler
// round-trip), so execution is deterministic and the co-simulation engine
// observes the node as a sequential state machine:
//
//	Step() → "I computed [a,b)" | "I sent a frame" | "I am blocked" |
//	         "I reached the quantum limit" | "I finished"
//
// The engine owns all host-time accounting; this package is purely in the
// guest clock domain.
package guest

import (
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"clustersim/internal/eventq"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// atomicGuest is a guest clock readable from any goroutine.
type atomicGuest struct {
	v atomic.Int64 //simlint:snapshotsafe identity-free counter: restore is one store() of the checkpointed value
}

func (a *atomicGuest) load() simtime.Guest   { return simtime.Guest(a.v.Load()) }
func (a *atomicGuest) store(g simtime.Guest) { a.v.Store(int64(g)) }

// Config holds the per-node guest timing parameters.
type Config struct {
	// CPUHz is the guest CPU frequency, used by ComputeCycles.
	CPUHz float64
	// SendOverhead is the guest CPU time consumed to push one frame through
	// the guest network stack and NIC driver.
	SendOverhead simtime.Duration
	// RecvOverhead is the guest CPU time consumed to receive one frame.
	RecvOverhead simtime.Duration
}

// DefaultConfig resembles the paper's nodes: 2.6 GHz Opterons with a
// TCP-era per-frame software cost well under the 1 µs wire latency.
func DefaultConfig() Config {
	return Config{
		CPUHz:        2.6e9,
		SendOverhead: 700 * simtime.Nanosecond,
		RecvOverhead: 700 * simtime.Nanosecond,
	}
}

// Program is a workload executed on a node. It runs on its own goroutine and
// must use only the Proc API to interact with time and the network.
type Program func(p *Proc) error

// Arrival is a frame as observed by the guest: the frame plus the guest time
// at which the node's NIC made it visible.
type Arrival struct {
	Frame *pkt.Frame //simlint:snapshotsafe frames are immutable once the sending NIC stamps ID; aliasing is safe
	Time  simtime.Guest
}

// StepKind classifies what a node did during one Step call.
type StepKind int

// Step kinds returned by Node.Step.
const (
	// StepBusy: the node executed guest code for [From, To). Call Step
	// again once the engine has accounted the host time.
	StepBusy StepKind = iota
	// StepSend: the node handed Frame to its NIC at guest time To.
	StepSend
	// StepBlocked: the node is waiting for a frame (or sleeping) at guest
	// time To. NextArrival is the earliest queued-but-future arrival
	// (GuestInfinity if none); Deadline is the recv deadline or sleep
	// target (GuestInfinity if none). The engine must WakeAt the earliest
	// relevant guest time.
	StepBlocked
	// StepLimit: the node's clock reached the quantum limit.
	StepLimit
	// StepDone: the workload finished (possibly with Err).
	StepDone
)

func (k StepKind) String() string {
	switch k {
	case StepBusy:
		return "busy"
	case StepSend:
		return "send"
	case StepBlocked:
		return "blocked"
	case StepLimit:
		return "limit"
	case StepDone:
		return "done"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step describes one observable step of a node's execution.
type Step struct {
	Kind        StepKind
	From, To    simtime.Guest
	Frame       *pkt.Frame    // StepSend only
	NextArrival simtime.Guest // StepBlocked only
	Deadline    simtime.Guest // StepBlocked only
	Err         error         // StepDone only
}

type opKind int

const (
	opCompute opKind = iota
	opSend
	opRecv
	opSleep
	opDone
)

type request struct {
	kind     opKind
	dur      simtime.Duration // compute
	frame    *pkt.Frame       //simlint:snapshotsafe frames are immutable once stamped; aliasing is safe // send
	deadline simtime.Guest    // recv deadline / sleep target (absolute)
	err      error            //simlint:snapshotsafe error values are immutable; aliasing is safe // done
}

type reply struct {
	arrival Arrival // recv result (valid iff hasArr)
	hasArr  bool
}

// Node is one simulated cluster node.
//
// A node is driven by one engine goroutine (Step/WakeAt/BeginQuantum) while
// frames may be delivered from other goroutines: Deliver and Clock are safe
// for concurrent use, which the real-time parallel runner relies on. The
// deterministic engine is single-threaded and pays only uncontended locks.
//
// The workload runs as a coroutine (iter.Pull): next resumes it until its
// next request, yield suspends it until the engine resumes it with a staged
// reply. Both directions are direct coroutine switches — no goroutine
// parking, no scheduler — and all request/reply state lives in the Node by
// value, so the steady-state Step loop allocates nothing.
//
//simlint:snapshotroot per-node state the optimistic engine checkpoints at quantum barriers
type Node struct {
	id   int
	size int
	cfg  Config

	clock atomicGuest
	limit simtime.Guest

	rxMu    sync.Mutex               //simlint:snapshotsafe checkpoints quiesce at quantum barriers with rx unlocked; restore reinitializes the zero mutex
	rx      eventq.Queue[*pkt.Frame] //simlint:snapshotsafe queue lanes deep-copy; payloads are immutable frames, aliasing is safe
	frameID uint64
	// frameBlk is the tail of the current frame block: outgoing frames are
	// carved from batch-allocated arrays instead of allocated one by one.
	// Frames are never recycled — a block is garbage-collected as a whole
	// once every frame carved from it has been dropped — so pointer
	// identity and immutability are exactly as with individual allocations.
	// Touched only by the workload goroutine (like frameID).
	frameBlk []pkt.Frame

	// Coroutine handshake. next/stop drive the workload; yield (captured at
	// coroutine start) hands a request to the engine from inside call. reply
	// is staged by the engine before the resume that completes a call.
	next  func() (request, bool) //simlint:snapshotsafe coroutine handles are not copyable: restore re-creates the coroutine and replays the quantum deterministically
	stop  func()                 //simlint:snapshotsafe coroutine handle; see next
	yield func(request) bool     //simlint:snapshotsafe coroutine handle; see next
	reply reply

	pending     request
	havePending bool
	overhead    simtime.Duration // busy time still owed before pending completes
	recvArr     Arrival          // arrival being charged RecvOverhead
	haveRecv    bool
	started     bool
	done        bool
	doneErr     error //simlint:snapshotsafe error values are immutable; aliasing is safe
	finishedAt  simtime.Guest

	program Program            //simlint:snapshotsafe workload code, never mutated; re-bound on restore
	metrics map[string]float64 //simlint:snapshotsafe flat string->float64 map, deep-copied per checkpoint
}

// NewNode creates node id of a cluster with size nodes, running program.
func NewNode(id, size int, cfg Config, program Program) *Node {
	return &Node{
		id:      id,
		size:    size,
		cfg:     cfg,
		program: program,
		metrics: map[string]float64{},
	}
}

// ID returns the node's rank.
func (n *Node) ID() int { return n.id }

// Clock returns the node's guest clock.
func (n *Node) Clock() simtime.Guest { return n.clock.load() }

// Done reports whether the workload has finished.
func (n *Node) Done() bool { return n.done }

// FinishedAt returns the guest time at which the workload finished.
func (n *Node) FinishedAt() simtime.Guest { return n.finishedAt }

// Err returns the workload's error, if any.
func (n *Node) Err() error { return n.doneErr }

// Metrics returns the metrics the workload reported via Proc.Report.
func (n *Node) Metrics() map[string]float64 { return n.metrics }

// BeginQuantum sets the guest-time limit (absolute) for the next quantum.
func (n *Node) BeginQuantum(limit simtime.Guest) {
	if limit < n.clock.load() {
		panic(fmt.Sprintf("guest: node %d quantum limit %v before clock %v", n.id, limit, n.clock.load()))
	}
	n.limit = limit
}

// Deliver makes frame visible to the node at guest time arr. arr may be in
// the node's already-simulated past (a straggler delivered mid-segment); the
// frame then becomes visible at the next Recv, exactly as a late interrupt
// would in a real full-system simulator.
//
// Equal-arrival frames are consumed in Frame.ID order — an intrinsic,
// canonical tie-break (IDs encode (source, per-source sequence)) — rather
// than in delivery order. This keeps the receive order independent of
// *when* the controller routed the frames, which is what lets the engine's
// barrier-routed parallel fast path and the classic event-queue path feed
// identical frame sequences to the workload.
func (n *Node) Deliver(f *pkt.Frame, arr simtime.Guest) {
	n.rxMu.Lock()
	n.rx.PushPri(int64(arr), int(f.ID), f)
	n.rxMu.Unlock()
}

// DeliverBatch delivers a run of arrivals under one lock acquisition — the
// batched barrier router's per-destination tail. Ordering semantics are
// identical to repeated Deliver calls: the receive queue orders by
// (arrival time, Frame.ID, push sequence), so batch boundaries are
// invisible to the workload.
func (n *Node) DeliverBatch(batch []Arrival) {
	if len(batch) == 0 {
		return
	}
	n.rxMu.Lock()
	for _, a := range batch {
		n.rx.PushPri(int64(a.Time), int(a.Frame.ID), a.Frame)
	}
	n.rxMu.Unlock()
}

// WakeAt advances the node's clock to g (idle time passed while blocked or
// at a barrier). g must not be before the current clock or past the limit.
func (n *Node) WakeAt(g simtime.Guest) {
	if g < n.clock.load() {
		panic(fmt.Sprintf("guest: node %d woken at %v before clock %v", n.id, g, n.clock.load()))
	}
	if g > n.limit {
		panic(fmt.Sprintf("guest: node %d woken at %v past limit %v", n.id, g, n.limit))
	}
	n.clock.store(g)
}

// Step advances the node until its next externally visible event and reports
// it. The engine must call BeginQuantum before the first Step of each
// quantum, account host time for every StepBusy interval, and call Step
// again afterwards.
//
// Stepping is self-contained: Step, BeginQuantum, and WakeAt touch only
// this node's state (the private clock, limit, receive queue, and the
// handshake with this node's workload goroutine), never shared controller
// state. Different nodes may therefore be stepped by different goroutines
// concurrently. Calls on a single node must still be serialized, but may
// migrate between goroutines across quanta as long as a happens-before
// edge (e.g. the engine's barrier) separates the old stepper from the new
// one. Deliver and Clock remain safe to call from any goroutine.
func (n *Node) Step() Step {
	if n.done {
		return Step{Kind: StepDone, From: n.clock.load(), To: n.clock.load(), Err: n.doneErr}
	}
	if !n.started {
		n.started = true
		n.next, n.stop = iter.Pull(n.coroutine)
	}
	for {
		if !n.havePending {
			req, ok := n.next()
			if !ok {
				// The coroutine body always yields opDone last, so this is
				// unreachable short of a runtime defect.
				panic("guest: workload coroutine ended without opDone")
			}
			n.pending = req
			n.havePending = true
			switch req.kind {
			case opCompute:
				n.overhead = req.dur
			case opSend:
				n.overhead = n.cfg.SendOverhead
			case opRecv, opSleep, opDone:
				n.overhead = 0
			}
		}
		req := n.pending

		// A recv that already holds its arrival is just finishing its
		// receive-side CPU overhead.
		if n.haveRecv {
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			arr := n.recvArr
			n.haveRecv = false
			n.complete(reply{arrival: arr, hasArr: true})
			continue
		}

		switch req.kind {
		case opCompute:
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			n.complete(reply{})

		case opSend:
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			f := req.frame
			n.complete(reply{})
			return Step{Kind: StepSend, From: n.clock.load(), To: n.clock.load(), Frame: f}

		case opRecv:
			now := n.clock.load()
			n.rxMu.Lock()
			if it, ok := n.rx.Peek(); ok && simtime.Guest(it.Time) <= now {
				n.rx.Pop()
				n.rxMu.Unlock()
				n.recvArr = Arrival{Frame: it.Payload, Time: simtime.Guest(it.Time)}
				n.haveRecv = true
				n.overhead = n.cfg.RecvOverhead
				continue
			}
			next := simtime.GuestInfinity
			if it, ok := n.rx.Peek(); ok {
				next = simtime.Guest(it.Time)
			}
			n.rxMu.Unlock()
			if req.deadline <= now {
				// Deadline already passed with nothing deliverable.
				n.complete(reply{})
				continue
			}
			if next <= now {
				// Unreachable given the branch above, but keep the
				// invariant explicit.
				panic("guest: queued arrival not delivered")
			}
			return Step{Kind: StepBlocked, From: now, To: now, NextArrival: next, Deadline: req.deadline}

		case opSleep:
			now := n.clock.load()
			if req.deadline <= now {
				n.complete(reply{})
				continue
			}
			return Step{Kind: StepBlocked, From: now, To: now, NextArrival: simtime.GuestInfinity, Deadline: req.deadline}

		case opDone:
			n.done = true
			n.doneErr = req.err
			n.finishedAt = n.clock.load()
			n.havePending = false
			return Step{Kind: StepDone, From: n.finishedAt, To: n.finishedAt, Err: req.err}
		}
	}
}

// chargeBusy consumes the pending op's owed busy time up to the quantum
// limit. It reports (step, false) when the engine must take over (busy
// interval to account, or the limit was reached), or (_, true) when the owed
// time is fully consumed.
func (n *Node) chargeBusy() (Step, bool) {
	if n.overhead <= 0 {
		return Step{}, true
	}
	now := n.clock.load()
	if now >= n.limit {
		return Step{Kind: StepLimit, From: now, To: now}, false
	}
	adv := simtime.MinDuration(n.overhead, n.limit.Sub(now))
	n.clock.store(now.Add(adv))
	n.overhead -= adv
	return Step{Kind: StepBusy, From: now, To: now.Add(adv)}, false
}

// complete stages the reply the workload will read when the engine's next
// resume returns control to its suspended call.
func (n *Node) complete(r reply) {
	n.havePending = false
	n.reply = r
}

// frameBlkLen is the frame block size: big enough to amortize allocation,
// small enough that a retained frame pins only a few KB of block.
const frameBlkLen = 64

// newFrame carves one zeroed frame from the node's block. Workload-goroutine
// only (called via Proc.Send/Broadcast).
func (n *Node) newFrame() *pkt.Frame {
	if len(n.frameBlk) == 0 {
		n.frameBlk = make([]pkt.Frame, frameBlkLen)
	}
	f := &n.frameBlk[0]
	n.frameBlk = n.frameBlk[1:]
	return f
}

type poisonError struct{}

func (poisonError) Error() string { return "guest: node shut down" }

// Shutdown unwinds and terminates a still-running workload coroutine: the
// coroutine's pending yield returns false, call panics with the poison
// sentinel, and the coroutine body runs to completion before stop returns.
// Safe to call on finished or never-started nodes.
func (n *Node) Shutdown() {
	if !n.started || n.done {
		return
	}
	n.stop()
	// The coroutine body has run to completion under stop and recorded the
	// workload's error (the poison sentinel, unless the program had already
	// finished on its own) in doneErr before its final yield.
	n.done = true
	n.finishedAt = n.clock.load()
}

// coroutine is the workload side of the handshake; it runs inside the
// iter.Pull coroutine and always yields an opDone request last, whether the
// program returned, failed, or was poisoned by Shutdown.
func (n *Node) coroutine(yield func(request) bool) {
	n.yield = yield
	p := &Proc{n: n}
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(poisonError); ok {
					err = poisonError{}
					return
				}
				panic(r)
			}
		}()
		err = n.program(p)
	}()
	n.doneErr = err
	yield(request{kind: opDone, err: err})
}

// call issues one workload request and suspends until the engine's reply.
// Runs inside the coroutine; a false yield means the engine is tearing the
// node down via stop.
func (n *Node) call(req request) reply {
	if !n.yield(req) {
		panic(poisonError{})
	}
	return n.reply
}
