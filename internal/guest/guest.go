// Package guest models one simulated cluster node: a guest machine executing
// a workload program against a guest clock and a NIC.
//
// In the paper each node is a full x86 system under AMD SimNow; here a node
// executes a *workload program* — ordinary Go code written against the Proc
// API (Compute, Send, Recv, Sleep) — on its own goroutine. The node and the
// workload goroutine run strictly hand-over-hand (exactly one of them is
// ever active), so execution is deterministic and the co-simulation engine
// observes the node as a sequential state machine:
//
//	Step() → "I computed [a,b)" | "I sent a frame" | "I am blocked" |
//	         "I reached the quantum limit" | "I finished"
//
// The engine owns all host-time accounting; this package is purely in the
// guest clock domain.
package guest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"clustersim/internal/eventq"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// atomicGuest is a guest clock readable from any goroutine.
type atomicGuest struct{ v atomic.Int64 }

func (a *atomicGuest) load() simtime.Guest   { return simtime.Guest(a.v.Load()) }
func (a *atomicGuest) store(g simtime.Guest) { a.v.Store(int64(g)) }

// Config holds the per-node guest timing parameters.
type Config struct {
	// CPUHz is the guest CPU frequency, used by ComputeCycles.
	CPUHz float64
	// SendOverhead is the guest CPU time consumed to push one frame through
	// the guest network stack and NIC driver.
	SendOverhead simtime.Duration
	// RecvOverhead is the guest CPU time consumed to receive one frame.
	RecvOverhead simtime.Duration
}

// DefaultConfig resembles the paper's nodes: 2.6 GHz Opterons with a
// TCP-era per-frame software cost well under the 1 µs wire latency.
func DefaultConfig() Config {
	return Config{
		CPUHz:        2.6e9,
		SendOverhead: 700 * simtime.Nanosecond,
		RecvOverhead: 700 * simtime.Nanosecond,
	}
}

// Program is a workload executed on a node. It runs on its own goroutine and
// must use only the Proc API to interact with time and the network.
type Program func(p *Proc) error

// Arrival is a frame as observed by the guest: the frame plus the guest time
// at which the node's NIC made it visible.
type Arrival struct {
	Frame *pkt.Frame
	Time  simtime.Guest
}

// StepKind classifies what a node did during one Step call.
type StepKind int

// Step kinds returned by Node.Step.
const (
	// StepBusy: the node executed guest code for [From, To). Call Step
	// again once the engine has accounted the host time.
	StepBusy StepKind = iota
	// StepSend: the node handed Frame to its NIC at guest time To.
	StepSend
	// StepBlocked: the node is waiting for a frame (or sleeping) at guest
	// time To. NextArrival is the earliest queued-but-future arrival
	// (GuestInfinity if none); Deadline is the recv deadline or sleep
	// target (GuestInfinity if none). The engine must WakeAt the earliest
	// relevant guest time.
	StepBlocked
	// StepLimit: the node's clock reached the quantum limit.
	StepLimit
	// StepDone: the workload finished (possibly with Err).
	StepDone
)

func (k StepKind) String() string {
	switch k {
	case StepBusy:
		return "busy"
	case StepSend:
		return "send"
	case StepBlocked:
		return "blocked"
	case StepLimit:
		return "limit"
	case StepDone:
		return "done"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step describes one observable step of a node's execution.
type Step struct {
	Kind        StepKind
	From, To    simtime.Guest
	Frame       *pkt.Frame    // StepSend only
	NextArrival simtime.Guest // StepBlocked only
	Deadline    simtime.Guest // StepBlocked only
	Err         error         // StepDone only
}

type opKind int

const (
	opCompute opKind = iota
	opSend
	opRecv
	opSleep
	opDone
)

type request struct {
	kind     opKind
	dur      simtime.Duration // compute
	frame    *pkt.Frame       // send
	deadline simtime.Guest    // recv deadline / sleep target (absolute)
	err      error            // done
}

type reply struct {
	arrival *Arrival // recv result (nil on deadline expiry)
	poison  bool     // engine is shutting the node down
}

// Node is one simulated cluster node.
//
// A node is driven by one engine goroutine (Step/WakeAt/BeginQuantum) while
// frames may be delivered from other goroutines: Deliver and Clock are safe
// for concurrent use, which the real-time parallel runner relies on. The
// deterministic engine is single-threaded and pays only uncontended locks.
type Node struct {
	id   int
	size int
	cfg  Config

	clock atomicGuest
	limit simtime.Guest

	rxMu    sync.Mutex
	rx      eventq.Queue[*pkt.Frame]
	frameID uint64

	reqCh   chan request
	replyCh chan reply

	pending    *request
	overhead   simtime.Duration // busy time still owed before pending completes
	recvArr    *Arrival         // arrival being charged RecvOverhead
	started    bool
	done       bool
	doneErr    error
	finishedAt simtime.Guest

	program Program
	metrics map[string]float64
}

// NewNode creates node id of a cluster with size nodes, running program.
func NewNode(id, size int, cfg Config, program Program) *Node {
	return &Node{
		id:      id,
		size:    size,
		cfg:     cfg,
		program: program,
		reqCh:   make(chan request),
		replyCh: make(chan reply),
		metrics: map[string]float64{},
	}
}

// ID returns the node's rank.
func (n *Node) ID() int { return n.id }

// Clock returns the node's guest clock.
func (n *Node) Clock() simtime.Guest { return n.clock.load() }

// Done reports whether the workload has finished.
func (n *Node) Done() bool { return n.done }

// FinishedAt returns the guest time at which the workload finished.
func (n *Node) FinishedAt() simtime.Guest { return n.finishedAt }

// Err returns the workload's error, if any.
func (n *Node) Err() error { return n.doneErr }

// Metrics returns the metrics the workload reported via Proc.Report.
func (n *Node) Metrics() map[string]float64 { return n.metrics }

// BeginQuantum sets the guest-time limit (absolute) for the next quantum.
func (n *Node) BeginQuantum(limit simtime.Guest) {
	if limit < n.clock.load() {
		panic(fmt.Sprintf("guest: node %d quantum limit %v before clock %v", n.id, limit, n.clock.load()))
	}
	n.limit = limit
}

// Deliver makes frame visible to the node at guest time arr. arr may be in
// the node's already-simulated past (a straggler delivered mid-segment); the
// frame then becomes visible at the next Recv, exactly as a late interrupt
// would in a real full-system simulator.
//
// Equal-arrival frames are consumed in Frame.ID order — an intrinsic,
// canonical tie-break (IDs encode (source, per-source sequence)) — rather
// than in delivery order. This keeps the receive order independent of
// *when* the controller routed the frames, which is what lets the engine's
// barrier-routed parallel fast path and the classic event-queue path feed
// identical frame sequences to the workload.
func (n *Node) Deliver(f *pkt.Frame, arr simtime.Guest) {
	n.rxMu.Lock()
	n.rx.PushPri(int64(arr), int(f.ID), f)
	n.rxMu.Unlock()
}

// WakeAt advances the node's clock to g (idle time passed while blocked or
// at a barrier). g must not be before the current clock or past the limit.
func (n *Node) WakeAt(g simtime.Guest) {
	if g < n.clock.load() {
		panic(fmt.Sprintf("guest: node %d woken at %v before clock %v", n.id, g, n.clock.load()))
	}
	if g > n.limit {
		panic(fmt.Sprintf("guest: node %d woken at %v past limit %v", n.id, g, n.limit))
	}
	n.clock.store(g)
}

// Step advances the node until its next externally visible event and reports
// it. The engine must call BeginQuantum before the first Step of each
// quantum, account host time for every StepBusy interval, and call Step
// again afterwards.
//
// Stepping is self-contained: Step, BeginQuantum, and WakeAt touch only
// this node's state (the private clock, limit, receive queue, and the
// handshake with this node's workload goroutine), never shared controller
// state. Different nodes may therefore be stepped by different goroutines
// concurrently. Calls on a single node must still be serialized, but may
// migrate between goroutines across quanta as long as a happens-before
// edge (e.g. the engine's barrier) separates the old stepper from the new
// one. Deliver and Clock remain safe to call from any goroutine.
func (n *Node) Step() Step {
	if n.done {
		return Step{Kind: StepDone, From: n.clock.load(), To: n.clock.load(), Err: n.doneErr}
	}
	if !n.started {
		n.started = true
		go n.run()
	}
	for {
		if n.pending == nil {
			req := <-n.reqCh
			n.pending = &req
			switch req.kind {
			case opCompute:
				n.overhead = req.dur
			case opSend:
				n.overhead = n.cfg.SendOverhead
			case opRecv, opSleep, opDone:
				n.overhead = 0
			}
		}
		req := n.pending

		// A recv that already holds its arrival is just finishing its
		// receive-side CPU overhead.
		if n.recvArr != nil {
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			arr := n.recvArr
			n.recvArr = nil
			n.complete(reply{arrival: arr})
			continue
		}

		switch req.kind {
		case opCompute:
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			n.complete(reply{})

		case opSend:
			if step, ok := n.chargeBusy(); !ok {
				return step
			}
			f := req.frame
			n.complete(reply{})
			return Step{Kind: StepSend, From: n.clock.load(), To: n.clock.load(), Frame: f}

		case opRecv:
			now := n.clock.load()
			n.rxMu.Lock()
			if it, ok := n.rx.Peek(); ok && simtime.Guest(it.Time) <= now {
				n.rx.Pop()
				n.rxMu.Unlock()
				n.recvArr = &Arrival{Frame: it.Payload, Time: simtime.Guest(it.Time)}
				n.overhead = n.cfg.RecvOverhead
				continue
			}
			next := simtime.GuestInfinity
			if it, ok := n.rx.Peek(); ok {
				next = simtime.Guest(it.Time)
			}
			n.rxMu.Unlock()
			if req.deadline <= now {
				// Deadline already passed with nothing deliverable.
				n.complete(reply{})
				continue
			}
			if next <= now {
				// Unreachable given the branch above, but keep the
				// invariant explicit.
				panic("guest: queued arrival not delivered")
			}
			return Step{Kind: StepBlocked, From: now, To: now, NextArrival: next, Deadline: req.deadline}

		case opSleep:
			now := n.clock.load()
			if req.deadline <= now {
				n.complete(reply{})
				continue
			}
			return Step{Kind: StepBlocked, From: now, To: now, NextArrival: simtime.GuestInfinity, Deadline: req.deadline}

		case opDone:
			n.done = true
			n.doneErr = req.err
			n.finishedAt = n.clock.load()
			n.pending = nil
			return Step{Kind: StepDone, From: n.finishedAt, To: n.finishedAt, Err: req.err}
		}
	}
}

// chargeBusy consumes the pending op's owed busy time up to the quantum
// limit. It reports (step, false) when the engine must take over (busy
// interval to account, or the limit was reached), or (_, true) when the owed
// time is fully consumed.
func (n *Node) chargeBusy() (Step, bool) {
	if n.overhead <= 0 {
		return Step{}, true
	}
	now := n.clock.load()
	if now >= n.limit {
		return Step{Kind: StepLimit, From: now, To: now}, false
	}
	adv := simtime.MinDuration(n.overhead, n.limit.Sub(now))
	n.clock.store(now.Add(adv))
	n.overhead -= adv
	return Step{Kind: StepBusy, From: now, To: now.Add(adv)}, false
}

func (n *Node) complete(r reply) {
	n.pending = nil
	n.replyCh <- r
}

type poisonError struct{}

func (poisonError) Error() string { return "guest: node shut down" }

// Shutdown unblocks and terminates a still-running workload goroutine. Safe
// to call on finished or never-started nodes.
func (n *Node) Shutdown() {
	if !n.started || n.done {
		return
	}
	for {
		select {
		case req := <-n.reqCh:
			if req.kind == opDone {
				n.done = true
				n.doneErr = req.err
				n.finishedAt = n.clock.load()
				return
			}
			n.replyCh <- reply{poison: true}
		default:
			// The workload is mid-reply or has not issued an op yet; it
			// will hit the poison on its next interaction. If the node is
			// currently waiting for a reply, send it.
			select {
			case n.replyCh <- reply{poison: true}:
			case req := <-n.reqCh:
				if req.kind == opDone {
					n.done = true
					n.doneErr = req.err
					n.finishedAt = n.clock.load()
					return
				}
				n.replyCh <- reply{poison: true}
			}
		}
	}
}

func (n *Node) run() {
	p := &Proc{n: n}
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(poisonError); ok {
					err = poisonError{}
					return
				}
				panic(r)
			}
		}()
		err = n.program(p)
	}()
	if _, ok := err.(poisonError); ok {
		// The engine is tearing the node down; it is draining reqCh, so
		// report completion through it.
		n.reqCh <- request{kind: opDone, err: err}
		return
	}
	n.reqCh <- request{kind: opDone, err: err}
}

// call issues one workload request and waits for the engine's reply.
func (n *Node) call(req request) reply {
	n.reqCh <- req
	r := <-n.replyCh
	if r.poison {
		panic(poisonError{})
	}
	return r
}
