package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirective hammers the //simlint: comment grammar: malformed
// categories, missing justifications, embedded // markers, control bytes.
// parseDirective must never panic and its output must keep the invariants
// Suppressing and the bare-directive report rely on.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//simlint:maporder per-key merge, order cannot leak",
		"//simlint:maporder",                 // bare: suppresses but is itself reported
		"//simlint:",                         // no category: not a directive
		"//simlint: justification only",      // space before category: not a directive
		"//simlint:a//b",                     // nested // cuts the justification
		"//simlint:hotalloc why // want `x`", // analysistest marker stripped
		"// simlint:maporder nope",           // space after //: not a directive
		"//simlint:wallclock\treason",        // tab is not the name/reason separator
		"//simlint:one x //simlint:two y",    // second directive lost to the // cut
		"//simlint:snapshotsafe   padded reason   ",
		"//simlint:名前 理由",  // non-ASCII category and reason
		"//simlint:a\x00b", // control byte in the category
		"plain text",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d := parseDirective(&ast.Comment{Text: text})

		if d == nil {
			// nil only when the prefix is absent or the category is empty.
			if strings.HasPrefix(text, directivePrefix) {
				rest := strings.TrimPrefix(text, directivePrefix)
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				name, _, _ := strings.Cut(rest, " ")
				if strings.TrimSpace(name) != "" {
					t.Fatalf("parseDirective(%q) = nil for a well-prefixed nonempty category", text)
				}
			}
			return
		}

		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("parseDirective(%q) parsed a directive without the %s prefix", text, directivePrefix)
		}
		if d.Name == "" {
			t.Fatalf("parseDirective(%q) returned an empty category", text)
		}
		if d.Name != strings.TrimSpace(d.Name) || d.Reason != strings.TrimSpace(d.Reason) {
			t.Fatalf("parseDirective(%q) = {%q, %q}: fields not trimmed", text, d.Name, d.Reason)
		}
		if strings.Contains(d.Name, "//") || strings.Contains(d.Reason, "//") {
			t.Fatalf("parseDirective(%q) = {%q, %q}: nested // must cut the directive", text, d.Name, d.Reason)
		}
		if strings.Contains(d.Name, " ") {
			t.Fatalf("parseDirective(%q): category %q contains a space", text, d.Name)
		}

		// End-to-end through real source: a trailing comment on a statement
		// line must be collected and must suppress its own category there.
		if strings.ContainsAny(text, "\n\r") {
			return
		}
		src := "package p\n\nvar x int " + text + "\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return // the comment text does not survive re-parsing; fine
		}
		ds := CollectDirectives(fset, []*ast.File{file})
		varPos := file.Decls[len(file.Decls)-1].Pos()
		got := ds.Suppressing(d.Name, fset, varPos)
		if got == nil {
			t.Fatalf("directive %q not found suppressing %q on its own line", text, d.Name)
		}
		if got.Name != d.Name || got.Reason != d.Reason {
			t.Fatalf("collected directive {%q, %q} != parsed {%q, %q}", got.Name, got.Reason, d.Name, d.Reason)
		}
		if ds.Suppressing("not-"+d.Name, fset, varPos) != nil {
			t.Fatalf("directive %q suppressed a different category", text)
		}
	})
}
