package framework

import (
	"encoding/json"
	"fmt"
	"sort"
)

// A FactStore carries analyzer facts across package boundaries: small,
// JSON-serializable key→value records that a Pass exports while analyzing
// one package and a later Pass imports while analyzing a package that
// depends on it. This is the stdlib-only analogue of x/tools' fact
// mechanism, and the substrate of simlint's interprocedural analyzers —
// hotalloc's per-function allocation summaries flow dependency→dependent
// through it, so an analyzer looking at the engine's quantum loop can name
// allocation sites buried three packages down the call graph.
//
// Facts only ever flow in import order (Go forbids import cycles), which is
// why RunAnalyzersWithFacts processes packages in dependency order and why
// the go vet driver (cmd/simlint vettool mode) serializes the store into
// each package's vetx file: the go command visits dependencies first, so a
// package's vetx can carry the accumulated facts of its whole import
// closure.
//
// Values are namespaced by (package path, analyzer name, fact key), and the
// serialized form is canonical JSON (encoding/json emits map keys sorted),
// so fact files are deterministic byte-for-byte.
type FactStore struct {
	// pkgs: package path → analyzer name → fact key → encoded value.
	pkgs map[string]map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: map[string]map[string]map[string]json.RawMessage{}}
}

func (s *FactStore) set(pkgPath, analyzer, key string, raw json.RawMessage) {
	byAnalyzer := s.pkgs[pkgPath]
	if byAnalyzer == nil {
		byAnalyzer = map[string]map[string]json.RawMessage{}
		s.pkgs[pkgPath] = byAnalyzer
	}
	byKey := byAnalyzer[analyzer]
	if byKey == nil {
		byKey = map[string]json.RawMessage{}
		byAnalyzer[analyzer] = byKey
	}
	byKey[key] = raw
}

func (s *FactStore) get(pkgPath, analyzer, key string) (json.RawMessage, bool) {
	raw, ok := s.pkgs[pkgPath][analyzer][key]
	return raw, ok
}

// Keys returns every fact key one analyzer exported for one package, sorted.
func (s *FactStore) Keys(pkgPath, analyzer string) []string {
	byKey := s.pkgs[pkgPath][analyzer]
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FactsSchema versions the serialized fact-store format (the payload of
// simlint's vetx files under go vet).
const FactsSchema = "simlint-facts/1"

// factsFile is the serialized store.
type factsFile struct {
	Schema   string                                           `json:"schema"`
	Packages map[string]map[string]map[string]json.RawMessage `json:"packages"`
}

// EncodeJSON serializes the store canonically (map keys sorted by
// encoding/json), so equal stores produce equal bytes.
func (s *FactStore) EncodeJSON() []byte {
	data, err := json.Marshal(factsFile{Schema: FactsSchema, Packages: s.pkgs})
	if err != nil {
		// The store only ever holds RawMessage values that came from
		// json.Marshal, so this is unreachable short of a runtime defect.
		panic(fmt.Sprintf("framework: encoding fact store: %v", err))
	}
	return data
}

// MergeJSON decodes a serialized store and merges its facts in, later merges
// overwriting earlier ones key by key. Empty input is a valid empty store
// (the vetx files of packages analyzed before facts existed).
func (s *FactStore) MergeJSON(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("framework: decoding fact store: %v", err)
	}
	if f.Schema != FactsSchema {
		return fmt.Errorf("framework: fact store schema %q, want %q", f.Schema, FactsSchema)
	}
	for pkgPath, byAnalyzer := range f.Packages {
		for analyzer, byKey := range byAnalyzer {
			for key, raw := range byKey {
				s.set(pkgPath, analyzer, key, raw)
			}
		}
	}
	return nil
}
