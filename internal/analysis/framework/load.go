package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// FactsOnly marks a package loaded only because a named package depends
	// on it: analyzers run over it to compute cross-package facts, but its
	// diagnostics are discarded.
	FactsOnly bool
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go command, parses every
// matched package, and type-checks it against compiler export data.
//
// Export data comes from `go list -export -deps`, which (re)builds
// dependencies as needed and hands back the compiler's own export files, so
// type checking here is exactly as the compiler sees it and costs no
// source-level re-typechecking of the standard library.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		// Dependencies from this module are still analyzed — facts only —
		// so an interprocedural analyzer sees its whole in-module call
		// graph even when the patterns named just one package. Foreign
		// module deps (none today; the repo is zero-dependency) and the
		// standard library stay opaque.
		factsOnly := lp.DepOnly
		if factsOnly && (lp.Module == nil || !lp.Module.Main) {
			continue
		}
		// Golden corpora under testdata/ are analyzer *inputs*, never
		// product code: `go list ./...` skips testdata trees by
		// convention, but explicit directory patterns (or patterns
		// resolved from inside a testdata tree) can still name them, and
		// linting a corpus as product code would report its deliberate
		// findings. Skip them wherever they slipped in.
		if underTestdata(lp.Dir) {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var paths []string
		for _, gf := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, gf))
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = factsOnly
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// underTestdata reports whether dir has a path element named "testdata".
func underTestdata(dir string) bool {
	for _, seg := range strings.Split(filepath.ToSlash(dir), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// CheckSource parses and type-checks a free-standing set of Go files (the
// analysistest path: testdata trees are invisible to go list, so their
// import sets are discovered from the parsed files and resolved through one
// targeted `go list -export` call). pkgPath becomes the package's import
// path for critical-package matching.
func CheckSource(dir, pkgPath string, filenames []string) (*Package, error) {
	return CheckSourceDeps(token.NewFileSet(), dir, pkgPath, filenames, nil)
}

// CheckSourceDeps is CheckSource with two extensions multi-package corpora
// need: the caller owns the FileSet (so several corpus packages share one
// coordinate space), and deps supplies already-source-checked packages that
// imports resolve against before falling back to `go list` export data.
// That lets a testdata package import a sibling testdata package — the
// shape cross-package fact tests require — even though neither is visible
// to the go command.
func CheckSourceDeps(fset *token.FileSet, dir, pkgPath string, filenames []string, deps map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range filenames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "C" && deps[p] == nil {
				importSet[p] = true
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		_, exp, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		exports = exp
	}
	imp := types.Importer(exportImporter(fset, exports))
	if len(deps) > 0 {
		imp = depsImporter{deps: deps, fallback: imp}
	}
	return typeCheck(fset, imp, pkgPath, files)
}

// depsImporter resolves imports from a map of source-checked packages first,
// then from export data.
type depsImporter struct {
	deps     map[string]*types.Package
	fallback types.Importer
}

func (d depsImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := d.deps[path]; ok {
		return pkg, nil
	}
	return d.fallback.Import(path)
}

// checkFiles parses paths and type-checks them as one package.
func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheck(fset, imp, pkgPath, files)
}

// typeCheck runs go/types over already-parsed files.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// goList shells out to `go list -e -export -deps -json` and returns the
// matched packages plus an importPath→export-file map covering the whole
// dependency graph.
func goList(dir string, patterns []string) ([]*listedPackage, map[string]string, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Standard,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	exports := map[string]string{}
	var pkgs []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		p := lp
		pkgs = append(pkgs, &p)
	}
	return pkgs, exports, nil
}

// exportImporter returns a types.Importer that reads gc export data files
// named by exports (importPath → file).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}
