// Package framework is a small, stdlib-only re-implementation of the core of
// golang.org/x/tools/go/analysis, sufficient to host simlint's analyzers.
//
// The real x/tools module is deliberately not a dependency: the simulator is
// a zero-dependency codebase, and the subset an analyzer actually needs —
// parsed files, type information, a Report callback — is a few hundred lines
// on top of go/ast, go/types and `go list`. The API mirrors x/tools closely
// enough that the analyzers could be ported to the real framework by changing
// imports.
//
// On top of the x/tools shape it adds one simulator-specific facility:
// //simlint:NAME directives (see directives.go), the escape hatch through
// which code asserts that a flagged construct is intentional. A directive
// must carry a one-line justification; a bare directive is itself reported.
package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with the material for one package and
// collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	directives *DirectiveSet
	// facts carries cross-package analyzer facts; see FactStore.
	facts *FactStore
	// reportedDirectives dedupes the "directive needs a justification"
	// diagnostic when one bare directive suppresses several findings.
	reportedDirectives map[*Directive]bool
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Category is the directive name that can suppress the finding (for
	// most analyzers it equals Analyzer; lockcopy splits into
	// lockcopy/atomicmix, nodetsource into wallclock/nodetsource).
	Category string
	Message  string
}

// Directives returns the package's parsed //simlint: directives.
func (p *Pass) Directives() *DirectiveSet {
	if p.directives == nil {
		p.directives = CollectDirectives(p.Fset, p.Files)
	}
	return p.directives
}

// Report records a finding unless a //simlint:<category> directive on the
// finding's line (or the line above it) suppresses it. A suppressing
// directive with no justification text is itself reported, once.
func (p *Pass) Report(category string, pos token.Pos, format string, args ...any) {
	if d := p.Directives().Suppressing(category, p.Fset, pos); d != nil {
		if d.Reason == "" {
			if p.reportedDirectives == nil {
				p.reportedDirectives = map[*Directive]bool{}
			}
			if !p.reportedDirectives[d] {
				p.reportedDirectives[d] = true
				p.diags = append(p.diags, Diagnostic{
					Pos:      d.Pos,
					Analyzer: p.Analyzer.Name,
					Category: category,
					Message: fmt.Sprintf("//simlint:%s directive needs a one-line justification "+
						"(write //simlint:%s <why this is safe>)", category, category),
				})
			}
		}
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a fact under (this package, this analyzer, key) for
// passes analyzing downstream packages to import. v must marshal to JSON.
func (p *Pass) ExportFact(key string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		// An unmarshalable fact value is an analyzer bug, not an input
		// condition.
		panic(fmt.Sprintf("framework: %s: exporting fact %q: %v", p.Analyzer.Name, key, err))
	}
	if p.facts == nil {
		p.facts = NewFactStore()
	}
	p.facts.set(p.Pkg.Path(), p.Analyzer.Name, key, raw)
}

// ImportFact loads the fact this analyzer exported for another package into
// `into`, reporting whether it existed. Facts flow in import order only: a
// fact is visible iff its package was analyzed earlier in the dependency
// order (or, under go vet, its vetx file was handed to this invocation).
func (p *Pass) ImportFact(pkgPath, key string, into any) bool {
	return p.ImportAnalyzerFact(p.Analyzer.Name, pkgPath, key, into)
}

// ImportAnalyzerFact is ImportFact across analyzer namespaces: any analyzer
// may read the facts another analyzer exported, which is what lets e.g. a
// future analyzer reuse hotalloc's allocation summaries without recomputing
// them.
func (p *Pass) ImportAnalyzerFact(analyzer, pkgPath, key string, into any) bool {
	if p.facts == nil {
		return false
	}
	raw, ok := p.facts.get(pkgPath, analyzer, key)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, into) == nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings in deterministic (position, analyzer, message) order.
// Packages are processed in dependency order over a fresh fact store, so
// interprocedural analyzers see their upstream facts.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersWithFacts(pkgs, analyzers, NewFactStore())
}

// RunAnalyzersWithFacts is RunAnalyzers over a caller-owned fact store —
// the go vet driver seeds it from dependency vetx files and serializes it
// back out afterwards. Packages marked FactsOnly contribute facts but no
// diagnostics (they were loaded as dependencies, not named for analysis).
func RunAnalyzersWithFacts(pkgs []*Package, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	if store == nil {
		store = NewFactStore()
	}
	var out []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				facts:     store,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
			if !pkg.FactsOnly {
				out = append(out, pass.diags...)
			}
		}
	}
	SortDiagnostics(out, pkgs)
	return out, nil
}

// dependencyOrder sorts packages so every package follows all of its
// (loaded) dependencies — the order fact flow requires. Ties are broken by
// the incoming order, which Load already sorts by path, so the result is
// deterministic. Import cycles cannot occur in valid Go.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	order := make([]*Package, 0, len(pkgs))
	visited := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.Path] {
			return
		}
		visited[p.Path] = true
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, im := range imps {
			paths = append(paths, im.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// SortDiagnostics orders diags by file position, then analyzer, then message,
// so output never depends on map iteration order inside the analyzers.
func SortDiagnostics(diags []Diagnostic, pkgs []*Package) {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if fset != nil {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
		} else if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
