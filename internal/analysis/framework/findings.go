package framework

import (
	"encoding/json"
	"fmt"
	"go/token"
)

// This file defines simlint's machine-readable findings format: the JSON
// document cmd/simlint emits under -json and CI uploads as an artifact when
// the lint gate fails. The schema is versioned and position-resolved
// (file/line/column, not token.Pos) so consumers — CI annotation scripts,
// editors, humans with jq — need no FileSet.

// FindingsSchema versions the findings document format.
const FindingsSchema = "simlint-findings/1"

// A Finding is one resolved diagnostic.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

// Findings is the top-level findings document.
type Findings struct {
	Schema   string    `json:"schema"`
	Findings []Finding `json:"findings"`
}

// MakeFindings resolves diagnostics against fset into the serializable
// findings document, preserving order.
func MakeFindings(fset *token.FileSet, diags []Diagnostic) Findings {
	out := Findings{Schema: FindingsSchema, Findings: []Finding{}}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out.Findings = append(out.Findings, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Category: d.Category,
			Message:  d.Message,
		})
	}
	return out
}

// JSON serializes the document, indented for human inspection of CI
// artifacts. Marshaling cannot fail for this shape.
func (f Findings) JSON() []byte {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("framework: encoding findings: %v", err))
	}
	return append(data, '\n')
}
