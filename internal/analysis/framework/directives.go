package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one //simlint:NAME [justification] comment.
//
// A directive suppresses findings of category NAME on its own line (trailing
// form) and on the line immediately below it (standalone form):
//
//	r.startWall = time.Now() //simlint:wallclock real-time runner anchor
//
//	//simlint:maporder per-key merge into another map, order cannot leak
//	for k, v := range src { dst[k] = v }
//
// The justification is mandatory: a bare //simlint:NAME still suppresses the
// underlying finding but is reported itself, so annotations cannot silently
// accumulate without recorded reasons.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Pos
	// File and Line locate the directive comment itself.
	File string
	Line int
}

// DirectiveSet indexes a package's directives by (file, line).
type DirectiveSet struct {
	byLine map[string]map[int][]*Directive
	all    []*Directive
}

// directivePrefix is the comment marker shared by all simlint directives.
const directivePrefix = "//simlint:"

// CollectDirectives parses every //simlint: comment in files.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	s := &DirectiveSet{byLine: map[string]map[int][]*Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(c)
				if d == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d.Pos = c.Pos()
				d.File = pos.Filename
				d.Line = pos.Line
				if s.byLine[d.File] == nil {
					s.byLine[d.File] = map[int][]*Directive{}
				}
				s.byLine[d.File][d.Line] = append(s.byLine[d.File][d.Line], d)
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// parseDirective returns the directive carried by c, or nil.
func parseDirective(c *ast.Comment) *Directive {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	// A later "// want" marker (analysistest expectation) or any other
	// nested // comment text is not part of the justification.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	name, reason, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return nil
	}
	return &Directive{Name: name, Reason: strings.TrimSpace(reason)}
}

// Suppressing returns the directive that suppresses a finding of the given
// category at pos: a //simlint:<category> on the same line or the line above.
func (s *DirectiveSet) Suppressing(category string, fset *token.FileSet, pos token.Pos) *Directive {
	if s == nil || !pos.IsValid() {
		return nil
	}
	p := fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == category {
				return d
			}
		}
	}
	return nil
}

// All returns every directive in the set, in source order per file.
func (s *DirectiveSet) All() []*Directive { return s.all }
