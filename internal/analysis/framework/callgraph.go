package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the framework's interprocedural call-graph engine: a static
// call graph over one package's AST and type information, with forward
// reachability from named root functions. Cross-package edges carry the
// resolved *types.Func of the callee, so analyzers can chain packages
// together through facts keyed by FuncKey — the hotalloc analyzer's
// allocation summaries are the first client.
//
// Resolution policy, stated once so every client inherits it:
//
//   - Direct calls to package functions and methods on concrete receivers
//     are static edges.
//   - Calls through interfaces, func-typed values, fields and parameters
//     are *dynamic*: the graph records the call site with a nil Callee and
//     makes no guess about targets. Clients that need dynamic targets
//     covered (hotalloc's quantum-loop roots) name them as explicit roots
//     instead — unsound guessing would either miss real paths or drown the
//     report in impossible ones.
//   - Function literals are attributed to their enclosing declaration: a
//     closure's body executes with the enclosing function's dynamic extent
//     on every path this repo's hot loops use, and a closure that escapes
//     is visible as the allocation the hotalloc analyzer flags anyway.

// A CallSite is one call expression inside a function body.
type CallSite struct {
	// Pos is the call's opening parenthesis (the conventional anchor).
	Pos token.Pos
	// Callee is the statically resolved target, possibly from another
	// package; nil for dynamic calls (interface methods, func values).
	Callee *types.Func
}

// A CallNode is one function declared in the analyzed package together with
// every call its body (closures included) makes.
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// A CallGraph is the static call graph of one package.
type CallGraph struct {
	// Nodes lists the package's declared functions in file/declaration
	// order — the deterministic iteration order for clients.
	Nodes []*CallNode

	byObj map[*types.Func]*CallNode
}

// FuncKey returns the canonical cross-package identity of a function — the
// fact key under which interprocedural analyzers publish per-function
// summaries. Generic instantiations collapse onto their origin, so a
// summary computed for Queue[T].Push serves every instantiation.
func FuncKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// NodeOf returns the graph node declaring fn, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// BuildCallGraph constructs the package call graph from parsed files and
// their type information.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{byObj: map[*types.Func]*CallNode{}}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isTypeOrBuiltin(info, call) {
					return true
				}
				node.Calls = append(node.Calls, CallSite{
					Pos:    call.Lparen,
					Callee: StaticCallee(info, call),
				})
				return true
			})
			g.Nodes = append(g.Nodes, node)
			g.byObj[fn.Origin()] = node
		}
	}
	return g
}

// isTypeOrBuiltin reports whether call is a type conversion or a builtin
// invocation — syntactic CallExprs that are not function calls. Builtins
// that allocate (make, append, new) are the hotalloc analyzer's own
// business at the syntax level, not call-graph edges.
func isTypeOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.TypeName, *types.Builtin:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// StaticCallee resolves the target of a call expression, or nil when the
// target is dynamic (interface method, func value) or not a function call
// at all.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // dispatched through the interface: dynamic
			}
			return fn
		}
		// No selection: a package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// A Reached pairs a reachable function with the root whose closure first
// reached it (roots are explored in the order given).
type Reached struct {
	Node *CallNode
	Root *CallNode
}

// Reachable computes forward reachability from roots across the package's
// static intra-package edges, in deterministic breadth-first order. Roots
// themselves are included. Cross-package and dynamic edges terminate here —
// clients follow them through facts (or explicit roots) instead.
func (g *CallGraph) Reachable(roots ...*CallNode) []Reached {
	seen := map[*CallNode]bool{}
	var out []Reached
	for _, root := range roots {
		if root == nil || seen[root] {
			continue
		}
		queue := []*CallNode{root}
		seen[root] = true
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			out = append(out, Reached{Node: node, Root: root})
			for _, call := range node.Calls {
				if call.Callee == nil {
					continue
				}
				if next := g.NodeOf(call.Callee); next != nil && !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return out
}
