package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

import "time"

func a() {
	_ = time.Now() //simlint:wallclock trailing form with a reason
}

func b() {
	//simlint:maporder standalone form: suppresses the next line
	_ = time.Now()
}

func c() {
	_ = time.Now() //simlint:wallclock
}

func d() {
	_ = time.Now() //simlint:wallclock reason text // want "nested marker is cut"
}

func e() {
	// not a directive: simlint:wallclock must start the comment
	_ = time.Now()
}
`

func parseDirectives(t *testing.T) (*token.FileSet, *DirectiveSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, CollectDirectives(fset, []*ast.File{f})
}

func TestParseDirectives(t *testing.T) {
	_, set := parseDirectives(t)
	all := set.All()
	if len(all) != 4 {
		t.Fatalf("got %d directives, want 4: %+v", len(all), all)
	}
	want := []struct {
		name, reason string
		line         int
	}{
		{"wallclock", "trailing form with a reason", 6},
		{"maporder", "standalone form: suppresses the next line", 10},
		{"wallclock", "", 15},
		{"wallclock", "reason text", 19},
	}
	for i, w := range want {
		d := all[i]
		if d.Name != w.name || d.Reason != w.reason || d.Line != w.line {
			t.Errorf("directive %d = {%q %q line %d}, want {%q %q line %d}",
				i, d.Name, d.Reason, d.Line, w.name, w.reason, w.line)
		}
	}
}

func TestSuppressing(t *testing.T) {
	fset, set := parseDirectives(t)
	posOnLine := func(line int) token.Pos {
		tf := fset.File(set.All()[0].Pos)
		return tf.LineStart(line)
	}

	cases := []struct {
		category string
		line     int
		want     bool
	}{
		{"wallclock", 6, true},   // same line, trailing form
		{"wallclock", 7, true},   // line below a trailing directive is also covered
		{"maporder", 11, true},   // line below a standalone directive
		{"maporder", 10, true},   // the directive's own line
		{"maporder", 12, false},  // two lines below: out of range
		{"wallclock", 11, false}, // wrong category
		{"guestwall", 6, false},  // wrong category
		{"wallclock", 24, false}, // comment not starting with //simlint: is ignored
	}
	for _, c := range cases {
		got := set.Suppressing(c.category, fset, posOnLine(c.line))
		if (got != nil) != c.want {
			t.Errorf("Suppressing(%q, line %d) = %v, want match=%v", c.category, c.line, got, c.want)
		}
	}

	if set.Suppressing("wallclock", fset, token.NoPos) != nil {
		t.Error("Suppressing with NoPos should return nil")
	}
	var nilSet *DirectiveSet
	if nilSet.Suppressing("wallclock", fset, posOnLine(6)) != nil {
		t.Error("Suppressing on nil set should return nil")
	}
}
