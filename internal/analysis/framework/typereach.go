package framework

import (
	"go/types"
)

// This file is the framework's type-reachability engine: a transitive walk
// over the types a value of some root type *owns* — struct fields (embedded
// or not), slice/array elements, and the named types those resolve to. It
// answers the question the snapshotsafe analyzer asks of the engine's
// checkpoint roots: "if I shallow-copy a value of this type, what state do
// I actually capture, and through which field path did I reach it?"
//
// Ownership, not referability, is the walk's boundary. Maps, channels,
// funcs and pointers are *reported to the visitor* (they are part of the
// reachable shape and snapshotsafe's whole subject) but not traversed
// through by default: what a pointer refers to is aliasing, and whether the
// alias is snapshot-safe is precisely the judgment the //simlint directive
// records. A visitor that wants to descend anyway (e.g. through a pointer
// whose strategy is "deep copy") returns Descend.

// A TypeStep is one edge of the path from the root type to the type being
// visited.
type TypeStep struct {
	// Field is the struct field stepped through, nil for element steps.
	Field *types.Var
	// Kind describes the step: "field", "embed", "elem" (slice/array
	// element), "ptr" (pointer dereference, only when the visitor chose to
	// descend), "key"/"value" (map, likewise), "named" (resolving a named
	// type to its underlying type — carries no syntax, kept out of
	// rendered paths).
	Kind string
}

// A TypeAction is a visitor's verdict on the type it was shown.
type TypeAction int

const (
	// Descend continues the walk into the type's constituents — including
	// through maps, pointers and channels when returned for one of those.
	Descend TypeAction = iota
	// SkipType stops the walk below this type but continues siblings.
	SkipType
)

// WalkReachableTypes visits every type reachable from root by ownership,
// calling visit with the step path from the root (empty for the root
// itself). Named types are visited before their underlying types, with the
// same path, so a visitor can classify by name ("time.Time: opaque but
// value-copyable") before structure is considered. Cycles through named
// types terminate: a named type already on the current path is not
// re-entered.
func WalkReachableTypes(root types.Type, visit func(path []TypeStep, t types.Type) TypeAction) {
	w := &typeWalker{visit: visit, onPath: map[string]bool{}}
	w.walk(nil, root)
}

type typeWalker struct {
	visit func(path []TypeStep, t types.Type) TypeAction
	// onPath guards against cycles through named types, keyed by the
	// type's canonical string. Keying the *current path* rather than a
	// global visited set means the same type reached through two disjoint
	// field paths is reported on both — each path needs its own
	// justification or fix.
	onPath map[string]bool
}

func (w *typeWalker) walk(path []TypeStep, t types.Type) {
	if w.visit(path, t) == SkipType {
		return
	}
	switch t := t.(type) {
	case *types.Named:
		key := t.String()
		if w.onPath[key] {
			return
		}
		w.onPath[key] = true
		w.walk(append(path, TypeStep{Kind: "named"}), t.Underlying())
		delete(w.onPath, key)
	case *types.Alias:
		w.walk(path, types.Unalias(t))
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			kind := "field"
			if f.Embedded() {
				kind = "embed"
			}
			w.walk(append(path, TypeStep{Field: f, Kind: kind}), f.Type())
		}
	case *types.Slice:
		w.walk(append(path, TypeStep{Kind: "elem"}), t.Elem())
	case *types.Array:
		w.walk(append(path, TypeStep{Kind: "elem"}), t.Elem())
	case *types.Pointer:
		// Reached only when the visitor returned Descend for the pointer:
		// it accepted the aliasing and wants the pointee's shape checked.
		w.walk(append(path, TypeStep{Kind: "ptr"}), t.Elem())
	case *types.Map:
		w.walk(append(path, TypeStep{Kind: "key"}), t.Key())
		w.walk(append(path, TypeStep{Kind: "value"}), t.Elem())
	case *types.Chan:
		w.walk(append(path, TypeStep{Kind: "elem"}), t.Elem())
	}
	// Basic, func, interface, signature, tuple, type param: leaves.
}

// PathString renders a step path as a dotted field chain for diagnostics:
// "wakeEv[].slots" — field names joined by dots, element steps shown as
// "[]", named-resolution steps invisible. An empty path is the root itself
// and renders as the empty string.
func PathString(path []TypeStep) string {
	var out []byte
	for _, s := range path {
		switch s.Kind {
		case "field", "embed":
			if len(out) > 0 {
				out = append(out, '.')
			}
			out = append(out, s.Field.Name()...)
		case "elem":
			out = append(out, "[]"...)
		case "ptr":
			out = append(out, '*')
		case "key":
			out = append(out, "[key]"...)
		case "value":
			out = append(out, "[value]"...)
		}
		// "named" steps carry no syntax.
	}
	return string(out)
}
