package maporder_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer,
		"clustersim/internal/obs", // export path: findings expected
		"example.com/app",         // outside the set: must stay silent
	)
}
