// Package obs is simlint testdata standing in for an export-path package
// (snapshots, traces, CSV assembly) where map iteration order must never
// reach the output.
package obs

import "sort"

func sink(string) {}

// unsortedKeys feeds output without sorting: flagged.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		out = append(out, k)
	}
	return out
}

// renderInOrder writes during iteration: flagged.
func renderInOrder(m map[string]int) {
	for k := range m { // want `range over map m has nondeterministic iteration order`
		sink(k)
	}
}

// floatSum accumulates floats in visit order: flagged (float addition is
// not associative, so even a "commutative" reduction is order-sensitive).
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		s += v
	}
	return s
}

// sortedKeys is the canonical collect-then-sort idiom: allowed.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// merge stores pointwise into another map: allowed (order cannot leak).
func merge(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// prune deletes during iteration: allowed.
func prune(dst map[string]int, drop map[string]bool) {
	for k := range drop {
		delete(dst, k)
	}
}

// count binds neither key nor value: order is unobservable, allowed.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// hasTrue is order-sensitive by shape but annotated with a justification.
func hasTrue(m map[string]bool) bool {
	//simlint:maporder existence predicate: result is identical whichever order entries are visited
	for _, v := range m {
		if v {
			return true
		}
	}
	return false
}

// bareDirective still suppresses the finding but is itself reported.
func bareDirective(m map[string]bool) bool {
	//simlint:maporder // want `//simlint:maporder directive needs a one-line justification`
	for _, v := range m {
		if v {
			return true
		}
	}
	return false
}
