// Package app is simlint testdata for a package outside the export set:
// unsorted iteration is not this analyzer's business there.
package app

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
