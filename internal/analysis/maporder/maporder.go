// Package maporder defines a simlint analyzer that flags iteration over
// maps in packages whose output must be byte-stable across runs.
//
// Go randomizes map iteration order per range statement, so any map range
// whose per-iteration effect is order-sensitive — appending to a slice that
// is never sorted, building a string, accumulating floats, returning the
// first element that satisfies a predicate — silently injects run-to-run
// nondeterminism into results, traces, frame routes and hashes.
//
// Two loop shapes are recognized as order-insensitive and allowed without
// annotation:
//
//   - merge-only bodies: every statement stores through a map index (or
//     deletes a map key), so the final map content is independent of
//     visit order, e.g. `for k, v := range src { dst[k] = v }`;
//   - collect-then-sort: the body only appends to one slice and the
//     statement immediately following the loop sorts that same slice
//     (sort.Strings/Ints/Slice/... or slices.Sort*), the canonical
//     "sort the keys first" idiom;
//   - `for range m` with neither key nor value bound: the body cannot
//     observe order, only cardinality.
//
// Everything else needs either a rewrite or //simlint:maporder <why>.
package maporder

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"clustersim/internal/analysis/critpkg"
	"clustersim/internal/analysis/framework"
)

// Analyzer flags nondeterministically-ordered map iteration.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map in result/trace/export paths unless the loop is " +
		"order-insensitive (merge-only or collect-then-sort) or annotated //simlint:maporder",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if !critpkg.Export(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				if rangeIsOrderInsensitive(pass, rs, next) {
					continue
				}
				pass.Report("maporder", rs.For,
					"range over map %s has nondeterministic iteration order; "+
						"collect and sort the keys first, or annotate //simlint:maporder <why>",
					render(pass.Fset, rs.X))
			}
			return true
		})
	}
	return nil, nil
}

// stmtList returns the statement list held by n, if any. Working on lists
// (rather than visiting RangeStmt directly) lets the collect-then-sort check
// see the statement that follows the loop.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// isMapRange reports whether rs ranges over a value of map type.
func isMapRange(pass *framework.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rangeIsOrderInsensitive reports whether the loop is one of the recognized
// safe shapes.
func rangeIsOrderInsensitive(pass *framework.Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if rs.Key == nil && rs.Value == nil {
		return true // order is unobservable; only the iteration count matters
	}
	if mergeOnlyBody(pass, rs.Body) {
		return true
	}
	if target := collectOnlyBody(pass, rs.Body); target != nil && sortsSlice(pass, next, target) {
		return true
	}
	return false
}

// mergeOnlyBody reports whether every statement in body stores through a map
// index or deletes a map key — shapes whose cumulative effect cannot depend
// on iteration order (each key is written at most per-iteration, and
// distinct iterations touch the map pointwise).
func mergeOnlyBody(pass *framework.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return false // +=/-= into a shared cell is order-sensitive for floats/strings
			}
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				t := pass.TypesInfo.TypeOf(ix.X)
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectOnlyBody reports whether every statement in body is an append onto
// the same slice variable (`s = append(s, ...)`), returning that variable's
// object, or nil.
func collectOnlyBody(pass *framework.Pass, body *ast.BlockStmt) types.Object {
	if len(body.List) == 0 {
		return nil
	}
	var target types.Object
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
			return nil
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil || pass.TypesInfo.Uses[first] != obj {
			return nil
		}
		if target == nil {
			target = obj
		} else if target != obj {
			return nil
		}
	}
	return target
}

// sortFuncs are the qualified names accepted as a canonical sort of the
// collected keys.
var sortFuncs = map[string]bool{
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

// sortsSlice reports whether stmt is a recognized sort call whose first
// argument is the collected slice (or, for sort.Sort/Stable, wraps it).
func sortsSlice(pass *framework.Pass, stmt ast.Stmt, target types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if !sortFuncs[obj.Pkg().Name()+"."+obj.Name()] {
		return false
	}
	// Accept the slice appearing anywhere in the first argument (covers both
	// sort.Strings(keys) and sort.Sort(byName(keys))).
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *framework.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// render formats an expression compactly for a diagnostic.
func render(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil || b.Len() == 0 || b.Len() > 60 {
		return "value"
	}
	return b.String()
}
