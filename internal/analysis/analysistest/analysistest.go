// Package analysistest runs a framework.Analyzer over testdata packages and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name.
//
// Layout follows the x/tools convention: Run(t, TestData(), analyzer, "p")
// analyzes every .go file under testdata/src/p, with "p" (the path relative
// to testdata/src) becoming the package's import path — so a testdata
// directory named clustersim/internal/cluster exercises the
// critical-package matching exactly as the real package would.
//
// Expectations are written as trailing comments:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Each string after "// want" is a regular expression (Go-quoted or
// backquoted) that must match the message of a diagnostic reported on that
// line; diagnostics without a matching want, and wants without a matching
// diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clustersim/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes the named packages under dir/src — together, over a shared
// FileSet and fact store — and compares diagnostics with // want
// expectations across all of them.
//
// When one corpus package imports another (the shape cross-package fact
// tests need), list the dependency first: packages are type-checked in the
// order given, each seeing the previously checked ones as importable, and
// the analyzer then runs over the whole set in dependency order so facts
// flow exactly as they do in a real run.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	deps := map[string]*types.Package{}
	var pkgs []*framework.Package
	wants := &wantSet{byLine: map[posKey][]*want{}}
	for _, pkgPath := range pkgPaths {
		pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			t.Fatalf("%s: no .go files in %s", pkgPath, pkgDir)
		}
		pkg, err := framework.CheckSourceDeps(fset, pkgDir, pkgPath, names, deps)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		deps[pkgPath] = pkg.Types
		pkgs = append(pkgs, pkg)
		if err := collectWants(wants, pkgDir, names); err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
	}
	diags, err := framework.RunAnalyzers(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey{pos.Filename, pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants.byLine {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byLine map[posKey][]*want
}

// match consumes at most one unmatched want on key whose regexp matches msg.
func (ws *wantSet) match(key posKey, msg string) bool {
	for _, w := range ws.byLine[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants scans source lines for // want expectations, keying them by
// the same full filename the FileSet will report.
func collectWants(ws *wantSet, dir string, names []string) error {
	for _, name := range names {
		full := filepath.Join(dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			exprs, err := parseWantExprs(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: %v", name, i+1, err)
			}
			key := posKey{full, i + 1}
			for _, e := range exprs {
				re, err := regexp.Compile(e)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", name, i+1, err)
				}
				ws.byLine[key] = append(ws.byLine[key], &want{re: re})
			}
		}
	}
	return nil
}

// parseWantExprs splits the text after "// want" into quoted or backquoted
// regular expressions.
func parseWantExprs(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want string %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %q: %v", s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want raw string %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want expressions must be quoted or backquoted, got %q", s)
		}
	}
	return out, nil
}
