// Package nodetsource defines a simlint analyzer that forbids hidden
// nondeterministic inputs — wall-clock reads, the global math/rand source,
// and environment lookups — in determinism-critical packages.
//
// The engine's repeatability contract (same workload, config and seed ⇒
// bit-identical Result/Stats/traces, for every worker count) only holds if
// no simulation-affecting value ever comes from outside that triple. All
// sanctioned randomness flows through clustersim/internal/rng streams and
// hashes; simulated time flows through simtime. Anything else is a latent
// repeatability bug, even when today's call sites look harmless.
//
// Two escape hatches exist, both requiring a one-line justification:
//
//	//simlint:wallclock <why>   for legitimate wall-clock reads (progress
//	                            reporting, the real-time parallel runner's
//	                            spin calibration)
//	//simlint:nodetsource <why> for any other finding of this analyzer
package nodetsource

import (
	"go/ast"

	"clustersim/internal/analysis/critpkg"
	"clustersim/internal/analysis/framework"
)

// Analyzer flags nondeterministic input sources in determinism-critical
// packages.
var Analyzer = &framework.Analyzer{
	Name: "nodetsource",
	Doc: "forbid wall-clock, global math/rand and environment reads in " +
		"determinism-critical packages (escape: //simlint:wallclock or //simlint:nodetsource)",
	Run: run,
}

// wallClockFuncs are the package time functions that read the real clock.
// Constructors (time.Duration literals, time.Millisecond) and pure
// arithmetic helpers stay legal: only clock reads break repeatability.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
	"Sleep": true,
	// NewTicker/NewTimer schedule against the real clock.
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// envFuncs are the package os functions that read the process environment.
var envFuncs = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

func run(pass *framework.Pass) (any, error) {
	if !critpkg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Report("wallclock", id.Pos(),
						"time.%s reads the wall clock in determinism-critical package %s; "+
							"model time via simtime/the host-cost model, or annotate //simlint:wallclock <why>",
						obj.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				pass.Report("nodetsource", id.Pos(),
					"math/rand (%s) is not a sanctioned randomness source in determinism-critical package %s; "+
						"route all randomness through clustersim/internal/rng streams/hashes, "+
						"or annotate //simlint:nodetsource <why>",
					obj.Name(), pass.Pkg.Path())
			case "os":
				if envFuncs[obj.Name()] {
					pass.Report("nodetsource", id.Pos(),
						"os.%s reads the process environment in determinism-critical package %s; "+
							"thread configuration through Config/Env values, or annotate //simlint:nodetsource <why>",
						obj.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
