// Package app is simlint testdata for a package OUTSIDE the
// determinism-critical set: the same constructs produce no findings.
package app

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func globalRand() int { return rand.Intn(8) }

func environment() string { return os.Getenv("SIM_MODE") }
