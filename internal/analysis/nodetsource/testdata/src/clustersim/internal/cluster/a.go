// Package cluster is simlint testdata standing in for a
// determinism-critical engine package (the import path, not the contents,
// drives the critical-package matching).
package cluster

import (
	"math/rand"
	"os"
	"time"
)

// wallClock exercises every flagged clock primitive.
func wallClock() time.Duration {
	t0 := time.Now()                    // want `time\.Now reads the wall clock in determinism-critical package clustersim/internal/cluster`
	d := time.Since(t0)                 // want `time\.Since reads the wall clock`
	_ = time.Until(t0.Add(time.Second)) // want `time\.Until reads the wall clock`
	time.Sleep(d)                       // want `time\.Sleep reads the wall clock`
	return d
}

// okDurations shows that time constants and pure duration arithmetic stay
// legal: only clock reads break repeatability.
func okDurations() time.Duration {
	return 3*time.Millisecond + time.Microsecond
}

// globalRand exercises the math/rand findings.
func globalRand() int {
	return rand.Intn(8) // want `math/rand \(Intn\) is not a sanctioned randomness source`
}

// seededRand is still flagged: even a locally seeded math/rand stream is not
// routed through clustersim/internal/rng's splittable streams.
func seededRand() int64 {
	r := rand.New(rand.NewSource(1)) // want `math/rand \(New\) is not a sanctioned randomness source` `math/rand \(NewSource\) is not a sanctioned randomness source`
	return r.Int63()                 // want `math/rand \(Int63\) is not a sanctioned randomness source`
}

// environment exercises the env findings.
func environment() string {
	if v, ok := os.LookupEnv("SIM_DEBUG"); ok { // want `os\.LookupEnv reads the process environment`
		return v
	}
	return os.Getenv("SIM_MODE") // want `os\.Getenv reads the process environment`
}

// osConstOK shows that non-environment os identifiers stay legal.
const osConstOK = os.PathSeparator

// annotatedTrailing is suppressed by a justified trailing directive.
func annotatedTrailing() time.Time {
	return time.Now() //simlint:wallclock testdata justification: progress display only
}

// annotatedAbove is suppressed by a justified directive on the line above.
func annotatedAbove() time.Time {
	//simlint:wallclock testdata justification: covers the next line
	return time.Now()
}

// annotatedRand shows the generic nodetsource escape hatch.
func annotatedRand() int {
	return rand.Intn(3) //simlint:nodetsource testdata justification: tooling-only path
}

// bareDirective still suppresses the finding but is itself reported.
func bareDirective() time.Time {
	return time.Now() //simlint:wallclock // want `//simlint:wallclock directive needs a one-line justification`
}
