package nodetsource_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/nodetsource"
)

func TestNodetsource(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nodetsource.Analyzer,
		"clustersim/internal/cluster", // critical: findings expected
		"example.com/app",             // outside the set: must stay silent
	)
}
