// Package critpkg centralizes simlint's notion of which packages are
// determinism-critical: the packages whose behaviour must be a pure function
// of (workload, config, seed) for the paper's Q ≤ T ground-truth claim — and
// every determinism test built on it — to hold.
package critpkg

import "strings"

// exempt lists module-internal package path segments that are allowed
// nondeterministic inputs:
//
//   - rng IS the sanctioned randomness source; it has no forbidden inputs
//     itself.
//   - analysis is the lint tooling; it talks to the go command and the
//     filesystem by design.
var exempt = map[string]bool{
	"rng":      true,
	"analysis": true,
}

const module = "clustersim"

// inModule reports whether path names a package of this module, and returns
// its segments past the module root.
func inModule(path string) ([]string, bool) {
	if path == module {
		return nil, true
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return strings.Split(rest, "/"), true
	}
	return nil, false
}

// Deterministic reports whether the package at path must be free of hidden
// nondeterministic inputs (wall clock, global RNG, environment). This is the
// scope of the nodetsource analyzer: the root engine facade and every
// internal package except the exempt ones. Command mains and examples sit
// outside — they own the process boundary (flags, stderr timing output) and
// feed everything determinism-relevant through Config/Env values that the
// internal packages then guard.
func Deterministic(path string) bool {
	segs, ok := inModule(path)
	if !ok {
		return false
	}
	if len(segs) == 0 {
		return true // the root clustersim package
	}
	switch segs[0] {
	case "cmd", "examples":
		return false
	}
	for _, s := range segs {
		if exempt[s] {
			return false
		}
	}
	return true
}

// Export reports whether the package at path produces results, traces,
// frame routes, hashes or rendered output whose byte-level content must not
// depend on map iteration order. This is the scope of the maporder
// analyzer: every Deterministic package plus the command mains, whose CSV
// and chart assembly is exactly the "snapshot/export path" the paper's
// repeatability claim extends to.
func Export(path string) bool {
	if Deterministic(path) {
		return true
	}
	segs, ok := inModule(path)
	return ok && len(segs) > 0 && segs[0] == "cmd"
}
