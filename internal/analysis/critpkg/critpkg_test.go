package critpkg

import "testing"

// TestDeterministicScope pins which packages simlint's determinism
// analyzers cover. internal/prof and internal/obs are deliberately in
// scope: the profiler's report is part of the repeatability claim (byte-
// identical across worker counts), so it must be as free of hidden
// nondeterministic inputs as the engine it observes.
func TestDeterministicScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"clustersim", true},
		{"clustersim/internal/cluster", true},
		{"clustersim/internal/prof", true},
		{"clustersim/internal/obs", true},
		{"clustersim/internal/simtime", true},
		{"clustersim/internal/rng", false},
		{"clustersim/internal/analysis/maporder", false},
		{"clustersim/cmd/clustersim", false},
		{"clustersim/cmd/simprof", false},
		{"clustersim/examples/quickstart", false},
		{"github.com/other/module", false},
	}
	for _, c := range cases {
		if got := Deterministic(c.path); got != c.want {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestExportScope: the maporder analyzer additionally covers command mains
// — including the new simprof renderer, whose output ordering is part of
// the report contract.
func TestExportScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"clustersim/internal/prof", true},
		{"clustersim/cmd/simprof", true},
		{"clustersim/cmd/paperfigs", true},
		{"clustersim/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := Export(c.path); got != c.want {
			t.Errorf("Export(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
