// Package dep is the upstream half of the hotalloc cross-package corpus: it
// has no hot roots of its own, so nothing here is reported directly — its
// allocation summaries are exported as facts and surface at call sites in
// package root.
package dep

// Grow allocates; its summary must reach root's hot loop.
func Grow(xs []int, v int) []int {
	return append(xs, v)
}

// Fill allocates but is justified at the defining site, which must stop the
// summary from propagating upstream.
func Fill(n int) []byte {
	return make([]byte, n) //simlint:hotalloc corpus: slab refill amortized across quanta
}

// Pure allocates nothing; calls to it must stay silent.
func Pure(a, b int) int { return a + b }

// Deep allocates only through Grow: summaries are transitive.
func Deep(xs []int) []int {
	return Grow(xs, 1)
}
