// Package root is the downstream half of the hotalloc corpus: a marked hot
// loop exercising every local allocation kind plus cross-package attribution
// through dep's exported summaries.
package root

import (
	"fmt"

	"b/dep"
)

type engine struct {
	buf  []int
	sink any
}

// step is the quantum loop under test.
//
//simlint:hotpath corpus quantum loop
func (e *engine) step(n int) {
	e.buf = append(e.buf, n) // want `append \(may grow\) in hot path \(reachable from \(\*root\.engine\)\.step\)`
	e.helper(n)
	e.buf = dep.Grow(e.buf, n) // want `call to dep\.Grow in hot path \(reachable from \(\*root\.engine\)\.step\) allocates: dep\.Grow \(dep\.go:\d+\): append \(may grow\)`
	e.buf = dep.Deep(e.buf)    // want `call to dep\.Deep in hot path .* allocates: dep\.Grow \(dep\.go:\d+\): append \(may grow\)`
	_ = dep.Fill(n)            // justified at its defining site: silent here
	_ = dep.Pure(n, n)
	e.buf = append(e.buf, n) //simlint:hotalloc corpus: cap pre-grown at reset
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // panic args are cold: silent
	}
}

// helper is unmarked but reachable from step: every site reports.
func (e *engine) helper(n int) {
	m := make([]int, n) // want `make\(\[\]int\) in hot path \(reachable from \(\*root\.engine\)\.step\)`
	_ = m
	p := new(engine) // want `new → \*root\.engine in hot path`
	_ = p
	lit := []int{1, 2, 3} // want `slice literal \[\]int in hot path`
	_ = lit
	mp := map[string]int{} // want `map literal map\[string\]int in hot path`
	_ = mp
	q := &engine{} // want `&root\.engine\{…\} escapes to the heap when shared in hot path`
	_ = q
	f := func() int { return n } // want `function literal \(allocates a closure if it captures and escapes\) in hot path`
	_ = f
	box(n)      // want `interface boxing: int argument boxed into any parameter`
	box(any(n)) // want `interface boxing: int converted to any`
}

// box's parameter is the boxing sink; it allocates nothing itself.
func box(v any) { _ = v }

// cold is unreachable from any hot root: identical constructs, zero
// findings.
func cold() {
	_ = make([]int, 8)
	_ = map[string]int{}
}
