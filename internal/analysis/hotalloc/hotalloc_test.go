package hotalloc_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	// dep first: root imports it, and its summaries must already be in the
	// fact store when root is analyzed.
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "b/dep", "b/root")
}
