// Package hotalloc defines the simlint analyzer that turns the runtime
// 0-allocs/quantum CI gate into compile-time attribution: it statically
// flags allocation sites in any function reachable from a declared hot
// path, and names the call path when the allocation hides in another
// package.
//
// A hot path is a function marked //simlint:hotpath (on the declaration or
// its last doc line) — the engine's quantum loops. From each marked root
// the analyzer walks the package's static call graph; in every reachable
// function it flags the constructs that can allocate:
//
//   - make and new
//   - append (growth beyond capacity allocates; amortized-zero appends into
//     pre-grown slices are exactly what the justification records)
//   - composite literals that allocate: &T{…}, slice and map literals
//     (plain value struct literals are stack noise and stay silent)
//   - function literals (a capturing closure that escapes allocates)
//   - interface boxing at call sites and conversions (a concrete value
//     passed to an interface parameter is heap-boxed when it escapes)
//
// Arguments of panic calls are exempt: a panicking path has left the hot
// loop by definition.
//
// Cross-package reachability inverts the walk: for EVERY function of every
// analyzed package the analyzer computes a transitive allocation summary
// (its own unjustified sites plus those of its static callees, callees in
// other packages resolved through previously exported facts) and exports it
// under the function's FuncKey. A hot function calling into another package
// then reports at the call site, naming the buried sites — so the engine's
// quantum loop learns that a guest call allocates three packages down
// without simlint ever guessing at dynamic dispatch.
//
// Justification is //simlint:hotalloc <why> on the flagged line (or above).
// A justified site is also excluded from exported summaries, so annotating
// an allocation at its defining site (e.g. a slab refill that amortizes to
// zero) stops it from re-surfacing at every upstream call site.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"clustersim/internal/analysis/framework"
)

// Analyzer flags allocation sites reachable from //simlint:hotpath roots.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation sites (make/new/append/reference literals/closures/" +
		"interface boxing) in functions reachable from //simlint:hotpath roots, " +
		"following calls across packages via exported allocation summaries",
	Run: run,
}

// summary is the exported per-function fact: the distinct unjustified
// allocation sites a call to the function can reach.
type summary struct {
	// Sites lists up to maxSites rendered sites, sorted.
	Sites []string `json:"sites"`
	// Total counts the distinct sites found (Total > len(Sites) when the
	// list was capped).
	Total int `json:"total"`
}

const (
	// maxSites caps the per-function site list carried in facts.
	maxSites = 4
	// maxShown caps the sites quoted in one diagnostic message.
	maxShown = 3
)

// an allocSite is one allocation construct in a function body.
type allocSite struct {
	pos  token.Pos
	what string // e.g. "append", "make", "&composite literal"
	// justified sites stay reportable (Report handles the suppression) but
	// are excluded from exported summaries.
	justified bool
}

func run(pass *framework.Pass) (any, error) {
	graph := framework.BuildCallGraph(pass.Files, pass.TypesInfo)
	dirs := pass.Directives()

	// Pass 1: local allocation sites per function.
	sites := map[*framework.CallNode][]allocSite{}
	for _, node := range graph.Nodes {
		found := findAllocs(pass, node.Decl.Body)
		for i := range found {
			found[i].justified = dirs.Suppressing("hotalloc", pass.Fset, found[i].pos) != nil
		}
		sites[node] = found
	}

	// Pass 2: bottom-up transitive summaries, exported for downstream
	// packages. Cycles through recursion settle to the sites found so far.
	memo := map[*framework.CallNode]map[string]bool{}
	onStack := map[*framework.CallNode]bool{}
	var transitive func(n *framework.CallNode) map[string]bool
	transitive = func(n *framework.CallNode) map[string]bool {
		if got, ok := memo[n]; ok {
			return got
		}
		if onStack[n] {
			return nil
		}
		onStack[n] = true
		set := map[string]bool{}
		for _, s := range sites[n] {
			if !s.justified {
				set[renderSite(pass, n, s)] = true
			}
		}
		for _, call := range n.Calls {
			if call.Callee == nil {
				continue
			}
			if local := graph.NodeOf(call.Callee); local != nil {
				for site := range transitive(local) {
					set[site] = true
				}
				continue
			}
			var sum summary
			if pass.ImportFact(calleePkgPath(call.Callee), framework.FuncKey(call.Callee), &sum) {
				for _, site := range sum.Sites {
					set[site] = true
				}
			}
		}
		delete(onStack, n)
		memo[n] = set
		return set
	}
	for _, node := range graph.Nodes {
		set := transitive(node)
		if len(set) == 0 {
			continue
		}
		rendered := make([]string, 0, len(set))
		for site := range set {
			rendered = append(rendered, site)
		}
		sort.Strings(rendered)
		sum := summary{Sites: rendered, Total: len(rendered)}
		if len(sum.Sites) > maxSites {
			sum.Sites = sum.Sites[:maxSites]
		}
		pass.ExportFact(framework.FuncKey(node.Fn), sum)
	}

	// Pass 3: report inside functions reachable from hot roots — local
	// sites at their own position, foreign allocating calls at the call
	// site with the buried sites named.
	var roots []*framework.CallNode
	for _, node := range graph.Nodes {
		if dirs.Suppressing("hotpath", pass.Fset, node.Decl.Pos()) != nil {
			roots = append(roots, node)
		}
	}
	for _, r := range graph.Reachable(roots...) {
		rootName := shortFuncName(r.Root.Fn)
		for _, s := range sites[r.Node] {
			pass.Report("hotalloc", s.pos,
				"%s in hot path (reachable from %s); make it amortized-zero and "+
					"annotate //simlint:hotalloc <why>, or move it off the quantum loop",
				s.what, rootName)
		}
		for _, call := range r.Node.Calls {
			if call.Callee == nil || graph.NodeOf(call.Callee) != nil {
				continue
			}
			var sum summary
			if !pass.ImportFact(calleePkgPath(call.Callee), framework.FuncKey(call.Callee), &sum) || sum.Total == 0 {
				continue
			}
			shown := sum.Sites
			if len(shown) > maxShown {
				shown = shown[:maxShown]
			}
			more := ""
			if sum.Total > len(shown) {
				more = fmt.Sprintf(" (+%d more)", sum.Total-len(shown))
			}
			pass.Report("hotalloc", call.Pos,
				"call to %s in hot path (reachable from %s) allocates: %s%s; "+
					"justify the defining sites or annotate //simlint:hotalloc <why> here",
				shortFuncName(call.Callee), rootName, strings.Join(shown, "; "), more)
		}
	}
	return nil, nil
}

// calleePkgPath returns the package path of a resolved callee ("" for
// functions without a package).
func calleePkgPath(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Path()
	}
	return ""
}

// findAllocs collects the allocation sites in one function body, skipping
// the arguments of panic calls (cold by construction). Function literals
// are both sites themselves and scanned inside: a closure invoked on the
// hot path allocates on the hot path.
func findAllocs(pass *framework.Pass, body *ast.BlockStmt) []allocSite {
	var out []allocSite
	add := func(pos token.Pos, what string) {
		out = append(out, allocSite{pos: pos, what: what})
	}
	// addressed marks composite literals already attributed to an enclosing
	// &T{…} so they are not double-counted as value literals.
	addressed := map[*ast.CompositeLit]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPanic(pass, n) {
					return false // a panicking path is off the hot loop
				}
				switch builtinName(pass, n) {
				case "make":
					add(n.Pos(), fmt.Sprintf("make(%s)", typeOfExpr(pass, n)))
				case "new":
					add(n.Pos(), fmt.Sprintf("new → %s", typeOfExpr(pass, n)))
				case "append":
					add(n.Pos(), "append (may grow)")
				case "":
					if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
						if box := boxedConversion(pass, n); box != "" {
							add(n.Pos(), box)
						}
						return true
					}
					for _, box := range boxedArgs(pass, n) {
						add(n.Pos(), box)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						addressed[cl] = true
						add(n.Pos(), fmt.Sprintf("&%s{…} escapes to the heap when shared", typeOfExpr(pass, cl)))
					}
				}
			case *ast.CompositeLit:
				if addressed[n] {
					return true
				}
				switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), fmt.Sprintf("slice literal %s", typeOfExpr(pass, n)))
				case *types.Map:
					add(n.Pos(), fmt.Sprintf("map literal %s", typeOfExpr(pass, n)))
				}
			case *ast.FuncLit:
				add(n.Pos(), "function literal (allocates a closure if it captures and escapes)")
			}
			return true
		})
	}
	walk(body)
	return out
}

// isPanic reports whether call invokes the panic builtin.
func isPanic(pass *framework.Pass, call *ast.CallExpr) bool {
	return builtinName(pass, call) == "panic"
}

// builtinName returns the name of the builtin call invokes, or "".
func builtinName(pass *framework.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// boxedConversion describes an explicit conversion of a concrete value to
// an interface type, or "".
func boxedConversion(pass *framework.Pass, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	to := pass.TypesInfo.TypeOf(call.Fun)
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if boxes(from, to) {
		return fmt.Sprintf("interface boxing: %s converted to %s", typeString(from), typeString(to))
	}
	return ""
}

// boxedArgs describes every argument of call that is boxed into an
// interface parameter (variadic interface parameters included — the fmt
// shape, which also allocates the variadic slice).
func boxedArgs(pass *framework.Pass, call *ast.CallExpr) []string {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return nil // not a call, or a spread slice passed through unboxed
	}
	var out []string
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if boxes(at, pt) {
			out = append(out, fmt.Sprintf("interface boxing: %s argument boxed into %s parameter",
				typeString(at), typeString(pt)))
		}
	}
	return out
}

// boxes reports whether assigning a `from` value to a `to` location boxes a
// concrete value into an interface. Untyped nil never boxes.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if basic, ok := from.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return types.IsInterface(to) && !types.IsInterface(from)
}

// renderSite renders one allocation site for fact summaries and cross-
// package diagnostics: function, file:line, construct.
func renderSite(pass *framework.Pass, n *framework.CallNode, s allocSite) string {
	pos := pass.Fset.Position(s.pos)
	return fmt.Sprintf("%s (%s:%d): %s", shortFuncName(n.Fn), filepath.Base(pos.Filename), pos.Line, s.what)
}

// shortFuncName renders pkg.Func or pkg.(Recv).Method with bare package
// names, matching how humans name these functions in review.
func shortFuncName(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", typeString(sig.Recv().Type()), name)
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// typeOfExpr renders the type of e compactly.
func typeOfExpr(pass *framework.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "?"
	}
	return typeString(t)
}

// typeString renders a type compactly with package-name qualifiers.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
