package guestwall_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/guestwall"
)

func TestGuestwall(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guestwall.Analyzer, "a")
}
