// Package guestwall defines a simlint analyzer that flags conversions
// mixing guest/simulated-time quantities (clustersim/internal/simtime types)
// with wall-clock quantities (package time types).
//
// The two domains are both int64 nanosecond counts, so a conversion between
// them always type-checks and usually even produces plausible numbers —
// which is exactly why the unit-confusion bug class is dangerous: feeding a
// wall-clock measurement into Algorithm 1's inc/dec quantum dynamics (or a
// guest duration into a real sleep/spin) silently corrupts the adaptive
// policy rather than crashing.
//
// The analyzer reports any type conversion whose destination is in one
// domain while the converted expression contains a value from the other,
// including through intermediate int64/float64 laundering inside the same
// expression:
//
//	time.Duration(g)                      // g simtime.Guest      → flagged
//	simtime.Host(time.Since(t0).Nanoseconds()) //                 → flagged
//	time.Duration(float64(d) * scale)     // d simtime.Duration   → flagged
//	simtime.Duration(op.NS)               // op.NS plain int64    → fine
//
// The deliberate bridges — the real-time parallel runner anchoring host
// time to the wall, and its spin() busy-loop — carry
// //simlint:guestwall <why> annotations.
package guestwall

import (
	"go/ast"
	"go/types"

	"clustersim/internal/analysis/framework"
)

// Analyzer flags guest-time ↔ wall-clock unit-confusion conversions.
var Analyzer = &framework.Analyzer{
	Name: "guestwall",
	Doc: "flag conversions mixing simtime (guest/host simulated time) with " +
		"package time (wall clock) quantities (escape: //simlint:guestwall)",
	Run: run,
}

// domain classifies a type as simulated-time, wall-clock, or neither.
type domain int

const (
	domNone domain = iota
	domSim
	domWall
)

func (d domain) String() string {
	switch d {
	case domSim:
		return "simulated time (simtime)"
	case domWall:
		return "wall-clock time (package time)"
	}
	return "none"
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := typeDomain(tv.Type)
			if dst == domNone {
				return true
			}
			src := exprDomain(pass, call.Args[0])
			if src == domNone || src == dst {
				return true
			}
			pass.Report("guestwall", call.Pos(),
				"conversion to %s from an expression carrying %s mixes clock domains; "+
					"convert through an explicit unit bridge, or annotate //simlint:guestwall <why>",
				typeString(tv.Type), src)
			return true
		})
	}
	return nil, nil
}

// typeDomain classifies a single type.
func typeDomain(t types.Type) domain {
	named, ok := t.(*types.Named)
	if !ok {
		return domNone
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return domNone
	}
	switch obj.Pkg().Path() {
	case "time":
		return domWall
	case "clustersim/internal/simtime":
		return domSim
	}
	return domNone
}

// exprDomain scans every sub-expression of e and reports which clock domain
// values appear in it (domNone if none, or the single domain found; a mixed
// subtree reports domSim — the conversion around it will already have been
// or will be flagged at the inner conversion).
func exprDomain(pass *framework.Pass, e ast.Expr) domain {
	found := domNone
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[ex]
		if !ok {
			return true
		}
		// A nested conversion re-tags its operand; classify by the result
		// type and still descend (the operand's own domain matters too:
		// time.Duration(simtimeVal) inside a larger expression must not
		// hide the simtime origin).
		if d := typeDomain(tv.Type); d != domNone {
			if found == domNone {
				found = d
			}
		}
		return true
	})
	return found
}

// typeString renders a type compactly with package-name qualifiers.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
