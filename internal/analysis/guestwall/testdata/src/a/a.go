// Package a is simlint testdata for the guest-time / wall-clock
// unit-confusion analyzer. It imports the real simtime package so the type
// identities match production code exactly.
package a

import (
	"time"

	"clustersim/internal/simtime"
)

// mixed exercises the flagged cross-domain conversions.
func mixed(g simtime.Guest, sd simtime.Duration, d time.Duration, t0 time.Time) {
	_ = time.Duration(g)    // want `conversion to time\.Duration from an expression carrying simulated time \(simtime\)`
	_ = time.Duration(sd)   // want `conversion to time\.Duration from an expression carrying simulated time`
	_ = simtime.Duration(d) // want `conversion to simtime\.Duration from an expression carrying wall-clock time \(package time\)`

	// Laundering through float64/int64 inside the same expression does not
	// hide the origin domain.
	_ = time.Duration(float64(g.Sub(0)) * 1.5)     // want `conversion to time\.Duration from an expression carrying simulated time`
	_ = simtime.Host(time.Since(t0).Nanoseconds()) // want `conversion to simtime\.Host from an expression carrying wall-clock time`
}

// sameDomain shows conversions that stay inside one domain: allowed.
func sameDomain(ns int64, sd simtime.Duration, d time.Duration) {
	_ = simtime.Duration(ns)        // plain integer: no domain
	_ = time.Duration(ns)           // plain integer: no domain
	_ = int64(sd)                   // leaving a domain for untyped math
	_ = simtime.Guest(sd)           // sim → sim
	_ = simtime.Duration(int64(sd)) // sim → sim through int64
	_ = time.Duration(d / 2)        // wall → wall
}

// bridge is a sanctioned wall→host conversion with a justification.
func bridge(t0 time.Time) simtime.Host {
	//simlint:guestwall testdata justification: sanctioned real-time bridge
	return simtime.Host(time.Since(t0).Nanoseconds())
}

// bareDirective still suppresses the finding but is itself reported.
func bareDirective(t0 time.Time) simtime.Host {
	//simlint:guestwall // want `//simlint:guestwall directive needs a one-line justification`
	return simtime.Host(time.Since(t0).Nanoseconds())
}
