package lockcopy_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/lockcopy"
)

func TestLockcopyAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcopy.Analyzer, "a")
}
