// Package a is simlint testdata for the lockcopy/atomicmix analyzer.
package a

import (
	"sync"
	"sync/atomic"
)

// guarded is a lock-bearing struct; wrapper inherits the property through
// its embedded-by-value field.
type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ g guarded }

func use(interface{}) {}

// ---- lockcopy: by-value copies -----------------------------------------

func byValueParam(g guarded) { // want `parameter of type a\.guarded copies mu\.sync\.Mutex by value`
	use(&g)
}

func (g guarded) valueReceiver() int { // want `receiver of type a\.guarded copies mu\.sync\.Mutex by value`
	return g.n
}

func copyAssign(g *guarded) {
	snapshot := *g // want `assignment copies a\.guarded, which contains mu\.sync\.Mutex by value`
	use(&snapshot)
}

func copyNested(w *wrapper) {
	inner := w.g // want `assignment copies a\.guarded`
	use(&inner)
}

func copyArg(g *guarded) {
	use(*g) // want `call argument copies a\.guarded`
}

func copyReturn(g *guarded) guarded {
	return *g // want `return copies a\.guarded`
}

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want `range value copies a\.guarded`
		use(&g)
	}
}

// Pointers, fresh composite literals, and atomic value types used in place
// are all fine.
func okPointer(g *guarded) *guarded { return g }

func okFresh() guarded {
	return guarded{}
}

func okAnnotated(g *guarded) {
	snapshot := *g //simlint:lockcopy testdata justification: copied before any goroutine shares g
	use(&snapshot)
}

func bareDirective(g *guarded) {
	snapshot := *g //simlint:lockcopy // want `//simlint:lockcopy directive needs a one-line justification`
	use(&snapshot)
}

// gauge carries a new-style atomic value: copying it is also flagged.
type gauge struct{ v atomic.Int64 }

func copyGauge(g *gauge) {
	snap := *g // want `assignment copies a\.gauge, which contains v\.atomic\.Int64 by value`
	use(&snap)
}

// ---- atomicmix: mixed atomic/plain access ------------------------------

type counter struct {
	hits int64
	name string
}

var c counter

func bump() {
	atomic.AddInt64(&c.hits, 1)
}

func readPlain() int64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere in this package; this plain access races`
}

func readAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// okName: only hits is in the atomic set, not the whole struct.
func okName() string { return c.name }

var total int64 = 42 // package-level initializer: pre-publication, exempt

func addTotal() { atomic.AddInt64(&total, 1) }

func resetPlain() {
	total = 0 // want `total is accessed with sync/atomic elsewhere in this package`
}

func annotatedRead() int64 {
	return c.hits //simlint:atomicmix testdata justification: read after all writer goroutines are joined
}
