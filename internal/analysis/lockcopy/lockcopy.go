// Package lockcopy defines a simlint analyzer covering two concurrency bug
// classes in the hot barrier/registry paths:
//
//   - lockcopy: a value of a type that transitively contains a lock
//     (sync.Mutex and friends, sync/atomic value types) is copied — by
//     assignment, parameter passing, value receiver, range value or
//     return. A copied lock is a distinct lock: goroutines that think
//     they synchronize on the same mutex silently stop excluding each
//     other, which in this codebase means a torn Stats or registry update
//     rather than a crash.
//
//   - atomicmix: a variable or field that is accessed through sync/atomic
//     somewhere in the package is also read or written plainly. Mixed
//     access defeats the atomic protocol (the plain access races with the
//     atomic ones), and the race detector only catches it when a test
//     happens to interleave the two.
//
// Findings are suppressible per-category: //simlint:lockcopy <why> and
// //simlint:atomicmix <why> (e.g. for a plain read that is provably
// pre-publication, such as a var initializer already exempted below).
package lockcopy

import (
	"go/ast"
	"go/types"

	"clustersim/internal/analysis/framework"
)

// Analyzer flags by-value lock copies and mixed atomic/plain access.
var Analyzer = &framework.Analyzer{
	Name: "lockcopy",
	Doc: "flag by-value copies of lock-bearing structs (category lockcopy) and " +
		"variables accessed both atomically and plainly (category atomicmix)",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		checkCopies(pass, file)
	}
	checkAtomicMix(pass)
	return nil, nil
}

// ---------------------------------------------------------------- lockcopy

// lockTypes are the sync/sync-atomic types that must never be copied after
// first use. Types containing them (transitively, through struct fields and
// array elements) inherit the property.
var lockTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
	"sync.Map":       true,
	"sync.Pool":      true,
	"atomic.Bool":    true,
	"atomic.Int32":   true,
	"atomic.Int64":   true,
	"atomic.Uint32":  true,
	"atomic.Uint64":  true,
	"atomic.Uintptr": true,
	"atomic.Pointer": true,
	"atomic.Value":   true,
}

// lockPath returns a human-readable path to the first lock found inside t
// ("" if t carries no lock by value). Pointers, slices, maps and channels
// break the chain: sharing a lock through a pointer is the correct pattern.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			name := obj.Pkg().Name() + "." + obj.Name()
			if (obj.Pkg().Path() == "sync" || obj.Pkg().Path() == "sync/atomic") && lockTypes[name] {
				return name
			}
		}
		return lockPath(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				return f.Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(t.Elem(), seen); p != "" {
			return "[i]." + p
		}
	}
	return ""
}

// copyRead reports whether e reads an existing value (so using it as a
// non-pointer source or sink copies it). Fresh values — composite literals,
// conversions, function call results — are not copies of a shared lock.
func copyRead(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return copyRead(e.X)
	}
	return false
}

// checkCopies flags lock-bearing values copied by assignment, call argument,
// return, range value, parameter or receiver.
func checkCopies(pass *framework.Pass, file *ast.File) {
	reportIfLocked := func(e ast.Expr, pos ast.Node, what string) {
		if !copyRead(e) {
			return
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return
		}
		if p := lockPath(t, nil); p != "" {
			pass.Report("lockcopy", pos.Pos(),
				"%s copies %s, which contains %s by value; share it through a pointer "+
					"or annotate //simlint:lockcopy <why>",
				what, typeString(t), p)
		}
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if p := lockPath(t, nil); p != "" {
				pass.Report("lockcopy", f.Pos(),
					"%s of type %s copies %s by value at every call; take a pointer "+
						"or annotate //simlint:lockcopy <why>",
					what, typeString(t), p)
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				reportIfLocked(rhs, n, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				reportIfLocked(v, n, "assignment")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				reportIfLocked(r, n, "return")
			}
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range n.Args {
				reportIfLocked(arg, n, "call argument")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := pass.TypesInfo.TypeOf(n.Value)
				if t != nil {
					if p := lockPath(t, nil); p != "" {
						pass.Report("lockcopy", n.Value.Pos(),
							"range value copies %s, which contains %s by value; range over "+
								"indices or pointers, or annotate //simlint:lockcopy <why>",
							typeString(t), p)
					}
				}
			}
		}
		return true
	})
}

// --------------------------------------------------------------- atomicmix

// checkAtomicMix finds objects whose address is passed to sync/atomic
// functions, then flags plain (non-atomic) uses of the same objects.
func checkAtomicMix(pass *framework.Pass) {
	atomicObjs := map[types.Object]bool{} // objects atomically accessed
	atomicIdents := map[*ast.Ident]bool{} // idents appearing inside atomic call args
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						atomicIdents[id] = true
					}
					return true
				})
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if obj := addressedObject(pass, un.X); obj != nil {
					atomicObjs[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok || atomicIdents[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			if inExemptContext(stack) {
				return true
			}
			pass.Report("atomicmix", id.Pos(),
				"%s is accessed with sync/atomic elsewhere in this package; this plain "+
					"access races with the atomic ones (use sync/atomic here too, or "+
					"annotate //simlint:atomicmix <why>)",
				id.Name)
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressedObject resolves &e to the variable or field object being
// addressed (the leaf of a selector chain, or a plain identifier).
func addressedObject(pass *framework.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.ParenExpr:
		return addressedObject(pass, e.X)
	}
	return nil
}

// inExemptContext reports whether the innermost interesting ancestor makes
// a plain mention of an atomic object safe: its own declaration (package
// initialization happens-before everything) or a composite-literal field
// key (naming the field, not accessing it).
func inExemptContext(stack []ast.Node) bool {
	sawSpec := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.KeyValueExpr:
			// Only exempt when the ident IS the key (field name position).
			if i+1 < len(stack) {
				if id, ok := stack[i+1].(ast.Expr); ok && n.Key == id {
					return true
				}
			}
		case *ast.ValueSpec:
			sawSpec = true
		case *ast.FuncDecl, *ast.FuncLit:
			// A declaration inside a function runs concurrently with the
			// world; only package-level initialization is pre-publication.
			return false
		case *ast.File:
			return sawSpec
		}
	}
	return false
}

// typeString renders a type compactly with package-name qualifiers.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
