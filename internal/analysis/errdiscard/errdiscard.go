// Package errdiscard defines the simlint analyzer that closes the
// silently-dropped-error gap in determinism-critical and export packages:
// calls to Flush/Err/Validate-shaped APIs whose error result is discarded.
//
// The shape, not the package, is what marks these APIs load-bearing: a
// method named Flush, Err or Validate whose last result is error exists
// precisely to surface a deferred failure (buffered-writer flush, iterator
// terminal error, config validation). Discarding that error is how
// ErrDeliveryFailed went unchecked until the PR 9 horizon fix — the delivery
// error was produced, shaped exactly like this, and dropped on the floor.
//
// Flagged discard forms:
//
//   - the call as a bare statement:        w.Flush()
//   - under go or defer:                   defer w.Flush()
//   - the error position assigned to _:    _ = w.Flush()
//     (including its slot in a multi-assign: v, _ := p.Validate())
//
// Scope is critpkg.Export — the deterministic core plus the command mains
// whose output assembly the repeatability claim extends to. Justification is
// //simlint:errdiscard <why> on the call line (or above); "the deferred
// Flush error is re-checked by the explicit Flush below" is the classic
// legitimate case.
package errdiscard

import (
	"go/ast"
	"go/types"

	"clustersim/internal/analysis/critpkg"
	"clustersim/internal/analysis/framework"
)

// Analyzer flags discarded errors from Flush/Err/Validate-shaped calls.
var Analyzer = &framework.Analyzer{
	Name: "errdiscard",
	Doc: "flag discarded error results of Flush/Err/Validate-shaped calls in " +
		"determinism-critical and export packages (critpkg.Export scope)",
	Run: run,
}

// shapedNames are the method/function names whose error result is a
// deferred failure by convention.
var shapedNames = map[string]bool{
	"Flush":    true,
	"Err":      true,
	"Validate": true,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *framework.Pass) (any, error) {
	if !critpkg.Export(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call, "is dropped")
				}
			case *ast.GoStmt:
				report(pass, n.Call, "is dropped (goroutine result)")
			case *ast.DeferStmt:
				report(pass, n.Call, "is dropped (deferred call result)")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				// The shaped error is the last result; flag iff its slot
				// (the last LHS) is the blank identifier.
				if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					report(pass, call, "is assigned to _")
				}
			}
			return true
		})
	}
	return nil, nil
}

// report flags call if it is Flush/Err/Validate-shaped.
func report(pass *framework.Pass, call *ast.CallExpr, how string) {
	name, ok := shaped(pass, call)
	if !ok {
		return
	}
	pass.Report("errdiscard", call.Pos(),
		"error returned by %s %s; these APIs exist to surface deferred failures — "+
			"handle the error or annotate //simlint:errdiscard <why>",
		name, how)
}

// shaped reports whether call targets a function named Flush, Err or
// Validate whose last result is error, returning a display name. Interface
// methods count: the shape is the contract, concrete or not.
func shaped(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || !shapedNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !types.Identical(res.At(res.Len()-1).Type(), errorType) {
		return "", false
	}
	return displayName(fn), true
}

// displayName renders pkg.Func or (Recv).Method with bare package names.
func displayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
		return "(" + recv + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
