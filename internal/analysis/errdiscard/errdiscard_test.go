package errdiscard_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/errdiscard"
)

func TestErrdiscard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdiscard.Analyzer,
		"clustersim/internal/flushy", "example.com/outside")
}
