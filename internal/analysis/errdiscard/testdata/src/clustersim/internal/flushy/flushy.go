// Package flushy is the in-scope errdiscard corpus: its import path places
// it inside critpkg.Export, so every discard form reports.
package flushy

type writer struct{ err error }

func (w *writer) Flush() error    { return w.err }
func (w *writer) Err() error      { return w.err }
func (w *writer) Write(p []byte)  { _ = p }
func (w *writer) Close() error    { return w.err } // not a shaped name
func (w *writer) FlushHard()      {}               // shaped name needs an error result

type plan struct{}

func (p plan) Validate() (int, error) { return 0, nil }

// Flusher exercises the interface-method path: the shape is the contract.
type Flusher interface {
	Flush() error
}

func discards(w *writer, p plan, f Flusher) {
	w.Flush()         // want `error returned by \(\*flushy\.writer\)\.Flush is dropped`
	_ = w.Flush()     // want `error returned by \(\*flushy\.writer\)\.Flush is assigned to _`
	defer w.Flush()   // want `error returned by \(\*flushy\.writer\)\.Flush is dropped \(deferred call result\)`
	go w.Err()        // want `error returned by \(\*flushy\.writer\)\.Err is dropped \(goroutine result\)`
	_, _ = p.Validate() // want `error returned by \(flushy\.plan\)\.Validate is assigned to _`
	f.Flush()         // want `error returned by \(flushy\.Flusher\)\.Flush is dropped`

	w.Flush() //simlint:errdiscard corpus: re-checked by the explicit Flush below

	// Negatives: handled, wrong shape, or no error result.
	if err := w.Flush(); err != nil {
		_ = err
	}
	n, err := p.Validate()
	_, _ = n, err
	w.Close() // Close is not a shaped name
	w.FlushHard()
	w.Write(nil)

	// A blank error slot in a multi-assign still discards.
	v, _ := p.Validate() // want `error returned by \(flushy\.plan\)\.Validate is assigned to _`
	_ = v
}
