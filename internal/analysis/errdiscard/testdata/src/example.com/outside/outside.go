// Package outside sits outside critpkg.Export: identical discards, zero
// findings.
package outside

type writer struct{ err error }

func (w *writer) Flush() error { return w.err }

func discards(w *writer) {
	w.Flush()
	_ = w.Flush()
	defer w.Flush()
}
