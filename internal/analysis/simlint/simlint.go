// Package simlint assembles the full analyzer suite that machine-checks the
// simulator's determinism and concurrency invariants. cmd/simlint is the
// thin driver around it.
package simlint

import (
	"clustersim/internal/analysis/errdiscard"
	"clustersim/internal/analysis/framework"
	"clustersim/internal/analysis/guestwall"
	"clustersim/internal/analysis/hotalloc"
	"clustersim/internal/analysis/lockcopy"
	"clustersim/internal/analysis/maporder"
	"clustersim/internal/analysis/nodetsource"
	"clustersim/internal/analysis/snapshotsafe"
)

// Analyzers returns the suite in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		nodetsource.Analyzer,
		maporder.Analyzer,
		guestwall.Analyzer,
		lockcopy.Analyzer,
		snapshotsafe.Analyzer,
		hotalloc.Analyzer,
		errdiscard.Analyzer,
	}
}
