// Package a is the snapshotsafe golden corpus: one marked snapshot root per
// hazard class, plus negatives (unmarked types, justified fields, pure-value
// state) that must stay silent.
package a

import "sync"

// Arena is the checkpointed state under test.
//
//simlint:snapshotroot per-lane checkpoint target
type Arena struct {
	phase   []uint8  // value lanes: safe
	hostNow []int64  // safe
	names   [4]string // array of values: safe

	metrics map[string]int64 // want `snapshot root Arena: "metrics" holds map map\[string\]int64`
	wake    chan struct{}    // want `snapshot root Arena: "wake" holds channel chan struct\{\}`
	step    func() error     // want `snapshot root Arena: "step" holds function value func\(\) error`
	err     error            // want `snapshot root Arena: "err" holds interface value error`
	mu      sync.Mutex       // want `snapshot root Arena: "mu" holds sync primitive sync\.Mutex`
	nodes   []*node          // want `snapshot root Arena: "nodes\[\]" holds pointer \*a\.node`

	owner *node //simlint:snapshotsafe restored by re-binding after copy, never mutated mid-quantum

	inner laneSet
}

// laneSet is reached from Arena by value; its hazards are reported at its
// own fields (the innermost in-package position on the path).
type laneSet struct {
	free []int32
	held map[int32]bool // want `snapshot root Arena: "inner\.held" holds map map\[int32\]bool`
}

// node is reachable only through flagged pointers, so its own map is never
// walked from Arena (flag-and-stop), and it is not a root itself.
type node struct {
	links map[string]*node
}

// ring exercises the named-type cycle guard: the walk must terminate and
// still flag the pointer once per path.
//
//simlint:snapshotroot cycle-guard exercise
type ring struct {
	buf  []int64
	next *ring // want `snapshot root ring: "next" holds pointer \*a\.ring`
}

// plain is unmarked: identical hazards, zero findings.
type plain struct {
	m  map[string]int
	ch chan int
	p  *plain
}

// bare exercises the justification requirement: the directive suppresses
// the finding but is itself reported.
//
//simlint:snapshotroot bare-directive exercise
type bare struct {
	m map[string]int //simlint:snapshotsafe // want `//simlint:snapshotsafe directive needs a one-line justification`
}
