// Package snapshotsafe defines the simlint analyzer guarding the optimistic
// engine's checkpoint contract: every type reachable from a declared
// snapshot root must be safe to capture with a shallow copy, or carry an
// explicit, reviewed copy strategy.
//
// A snapshot root is a type declaration marked with a
// //simlint:snapshotroot directive (on the declaration or its last doc
// line) — the node arena, the guest node state, the transport endpoint
// state: whatever a one-copy()-per-lane checkpoint must capture. From each
// root the analyzer walks the ownership graph — struct fields, embedded
// fields, slice and array elements, across package boundaries for value
// types — and flags every construct a shallow copy does NOT duplicate:
//
//   - maps and channels (reference types; the copy shares the backing store)
//   - function values (captured state is invisible and shared)
//   - interface values (the dynamic value is aliased, whatever it is)
//   - sync primitives (copying one is itself a bug; see lockcopy)
//   - pointers (the pointee is shared between snapshot and live state)
//
// Each finding is reported at the innermost field of the analyzed package
// on the offending path, which is where the justification lives:
//
//	node []*guest.Node //simlint:snapshotsafe nodes checkpoint themselves; arena lanes only alias
//
// The directive's text is the copy strategy — the one-line answer to "what
// makes the rollback engine's restore of this field correct?". A flagged
// construct is not descended into: the strategy annotation owns everything
// behind the alias (and if the pointee is itself checkpointed state, it is
// marked as its own root and audited independently).
package snapshotsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"clustersim/internal/analysis/framework"
)

// Analyzer flags shallow-copy-unsafe state reachable from snapshot roots.
var Analyzer = &framework.Analyzer{
	Name: "snapshotsafe",
	Doc: "flag maps, channels, funcs, sync primitives, interfaces and pointers " +
		"reachable from //simlint:snapshotroot types without a //simlint:snapshotsafe " +
		"<copy-strategy> justification",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := pass.Directives()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if dirs.Suppressing("snapshotroot", pass.Fset, ts.Pos()) == nil &&
					dirs.Suppressing("snapshotroot", pass.Fset, gd.Pos()) == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				checkRoot(pass, obj.Name(), ts.Pos(), obj.Type())
			}
		}
	}
	return nil, nil
}

// checkRoot walks the ownership graph of one root type and reports every
// shallow-copy hazard at its innermost in-package field.
func checkRoot(pass *framework.Pass, rootName string, rootPos token.Pos, root types.Type) {
	reported := map[string]bool{}
	framework.WalkReachableTypes(root, func(path []framework.TypeStep, t types.Type) framework.TypeAction {
		if len(path) == 0 {
			return framework.Descend // the root type itself
		}
		hazard := classify(t)
		if hazard == "" {
			return framework.Descend
		}
		pos, pathStr := reportSite(pass, rootPos, path)
		key := fmt.Sprintf("%d|%s|%s", pos, pathStr, hazard)
		if !reported[key] {
			reported[key] = true
			pass.Report("snapshotsafe", pos,
				"snapshot root %s: %q holds %s, which a shallow checkpoint copy aliases "+
					"instead of duplicating; record the copy strategy with "+
					"//simlint:snapshotsafe <strategy> on the field, or restructure",
				rootName, pathStr, hazard)
		}
		return framework.SkipType
	})
}

// classify names the shallow-copy hazard t poses, or "" if a shallow copy
// captures it faithfully (so the walk should keep descending).
func classify(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		if name, ok := syncPrimitive(t); ok {
			return "sync primitive " + name
		}
		// A named reference/interface type is flagged here, under its name
		// (`error`, not `interface{Error() string}`); named structs and
		// value types descend to their underlying shape instead.
		switch t.Underlying().(type) {
		case *types.Map, *types.Chan, *types.Signature, *types.Interface, *types.Pointer:
			return classifyKind(t.Underlying()) + " " + typeString(t)
		}
		return ""
	case *types.Map, *types.Chan, *types.Signature, *types.Interface, *types.Pointer:
		return classifyKind(t) + " " + typeString(t)
	}
	return ""
}

// classifyKind names the hazard class of a reference/interface type.
func classifyKind(t types.Type) string {
	switch t.(type) {
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	case *types.Signature:
		return "function value"
	case *types.Interface:
		return "interface value"
	case *types.Pointer:
		return "pointer"
	}
	return "value"
}

// syncPrimitive reports whether t is a sync/sync-atomic type whose identity
// a copy would split (the same set lockcopy refuses to see copied).
func syncPrimitive(t *types.Named) (string, bool) {
	obj := t.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != "sync" && path != "sync/atomic" {
		return "", false
	}
	return obj.Pkg().Name() + "." + obj.Name(), true
}

// reportSite picks the diagnostic position for a hazard path: the innermost
// field on the path declared in the analyzed package (where a
// //simlint:snapshotsafe directive can sit), falling back to the root type
// declaration when the whole path runs through foreign value types. The
// returned string renders the full path for the message.
func reportSite(pass *framework.Pass, rootPos token.Pos, path []framework.TypeStep) (token.Pos, string) {
	pos := rootPos
	for _, step := range path {
		if step.Field != nil && step.Field.Pkg() == pass.Pkg {
			pos = step.Field.Pos()
		}
	}
	return pos, framework.PathString(path)
}

// typeString renders a type compactly with package-name qualifiers.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
