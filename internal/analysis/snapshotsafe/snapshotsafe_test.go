package snapshotsafe_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/snapshotsafe"
)

func TestSnapshotsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapshotsafe.Analyzer, "a")
}
