package host

import (
	"testing"

	"clustersim/internal/simtime"
)

func BenchmarkHostCostOneWindow(b *testing.B) {
	m := NewModel(DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := simtime.Guest(i%1000) * 10
		m.HostCost(i%8, g, g+5000, Busy)
	}
}

func BenchmarkHostCostLongQuantum(b *testing.B) {
	// A 1000µs quantum spans 100 jitter windows.
	m := NewModel(DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := simtime.Guest(i%16) * simtime.Guest(simtime.Millisecond)
		m.HostCost(i%8, g, g+simtime.Guest(simtime.Millisecond), Busy)
	}
}

func BenchmarkGuestAt(b *testing.B) {
	m := NewModel(DefaultParams())
	cost := m.HostCost(3, 0, simtime.Guest(100*simtime.Microsecond), Busy)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.GuestAt(3, 0, cost/2, Busy, simtime.Guest(100*simtime.Microsecond))
	}
}
