// Package host models the machine that executes the simulators.
//
// The paper's speedups and stragglers are phenomena of the *host*: each node
// simulator advances guest time at a fluctuating host-dependent speed, the
// barrier at each quantum boundary costs real time, and whether a packet is
// a straggler depends on how far the destination simulator has raced ahead
// in host time. The paper runs on real Opteron hosts; this package replaces
// the real host with a deterministic model so every experiment is exactly
// reproducible (the substitution is documented in DESIGN.md §2).
//
// The model: simulating one guest nanosecond costs BusySlowdown (or
// IdleSlowdown, when the guest idles) host nanoseconds, multiplied by a
// per-node speed multiplier that is redrawn every JitterPeriod of guest time
// from a lognormal distribution with mean 1. The multiplier depends only on
// (seed, node, window index), so host/guest conversions are stateless and
// replayable from any point.
package host

import (
	"fmt"
	"math"

	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// Params configures the host model.
type Params struct {
	// BusySlowdown is host nanoseconds needed to simulate one guest
	// nanosecond of active execution. Full-system simulators with timing
	// models typically run 10–100x slower than native.
	BusySlowdown float64
	// IdleSlowdown is host nanoseconds per guest nanosecond while the guest
	// idles (the emulator fast-paths the idle loop).
	IdleSlowdown float64
	// JitterSigma is the lognormal sigma of the per-window speed
	// multiplier. Zero disables jitter (a perfectly homogeneous host).
	JitterSigma float64
	// JitterPeriod is the guest-time length of one jitter window. Short
	// quanta see the full node-to-node spread ("the slowest node sets the
	// pace"); long quanta average it out.
	JitterPeriod simtime.Duration
	// BarrierCost is the host cost of one quantum barrier: controller
	// round-trip, process wake-up, scheduler latency.
	BarrierCost simtime.Duration
	// PacketTransit is the host latency for a packet to travel simulator →
	// controller → destination simulator.
	PacketTransit simtime.Duration
	// PacketHostCost is the controller CPU occupancy per routed packet; a
	// quantum's barrier cannot release before the controller has processed
	// the quantum's packets.
	PacketHostCost simtime.Duration
	// Seed drives the jitter streams.
	Seed uint64
	// Sampling, when non-nil, makes each node simulator alternate between
	// detailed timing simulation and fast functional emulation — the
	// "sampling" technique the paper's §7 proposes combining with adaptive
	// synchronization (Falcón et al., ISPASS 2007). Only the host speed
	// changes; guest-visible timing still comes from the workload model.
	Sampling *Sampling
}

// Sampling describes a periodic detail/fast-forward schedule shared by all
// nodes (as the ISPASS'07 sampled simulator does).
type Sampling struct {
	// Period is the guest-time length of one sampling cycle.
	Period simtime.Duration
	// DetailFraction is the fraction of each cycle simulated with the full
	// timing model (BusySlowdown); the rest runs at FastSlowdown.
	DetailFraction float64
	// FastSlowdown is the host cost per guest nanosecond during
	// fast-forward (functional emulation is typically ~10x faster).
	FastSlowdown float64
}

// Validate reports Sampling configuration errors.
func (s *Sampling) Validate() error {
	switch {
	case s.Period <= 0:
		return fmt.Errorf("host: sampling Period must be positive, got %v", s.Period)
	case s.DetailFraction < 0 || s.DetailFraction > 1:
		return fmt.Errorf("host: sampling DetailFraction must be in [0,1], got %v", s.DetailFraction)
	case s.FastSlowdown <= 0:
		return fmt.Errorf("host: sampling FastSlowdown must be positive, got %v", s.FastSlowdown)
	}
	return nil
}

// DefaultParams returns a host calibrated so that the paper's headline
// shapes hold: a ~65x speedup for Q=1000µs over Q=1µs on silent workloads,
// ~8x for Q=10µs, with jitter that penalizes short quanta more as the node
// count grows.
func DefaultParams() Params {
	return Params{
		BusySlowdown: 20,
		// Idle guest code (HLT / blocking-read loops) is fast-pathed by
		// full-system emulators, so blocked receivers race ahead to the
		// quantum boundary — the precondition for the paper's Figure 3(d)
		// "latency snaps to next quantum" behaviour on chained traffic.
		IdleSlowdown:   0.2,
		JitterSigma:    0.22,
		JitterPeriod:   10 * simtime.Microsecond,
		BarrierCost:    1300 * simtime.Microsecond,
		PacketTransit:  25 * simtime.Microsecond,
		PacketHostCost: 2 * simtime.Microsecond,
		Seed:           1,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.BusySlowdown <= 0:
		return fmt.Errorf("host: BusySlowdown must be positive, got %v", p.BusySlowdown)
	case p.IdleSlowdown <= 0:
		return fmt.Errorf("host: IdleSlowdown must be positive, got %v", p.IdleSlowdown)
	case p.JitterSigma < 0:
		return fmt.Errorf("host: JitterSigma must be non-negative, got %v", p.JitterSigma)
	case p.JitterPeriod <= 0:
		return fmt.Errorf("host: JitterPeriod must be positive, got %v", p.JitterPeriod)
	case p.BarrierCost < 0:
		return fmt.Errorf("host: BarrierCost must be non-negative, got %v", p.BarrierCost)
	}
	if p.Sampling != nil {
		return p.Sampling.Validate()
	}
	return nil
}

// Model converts between guest progress and host cost for every node.
type Model struct {
	p Params
	// memo caches each node's most recent speed draw. The draw is a pure
	// function of (seed, node, window), so the cache returns the exact
	// float64 the draw would produce — results are bit-identical with or
	// without it. Quanta are typically much shorter than JitterPeriod, so
	// consecutive conversions hit the same window almost every time and the
	// Box–Muller transcendentals drop out of the hot loop. Sized by
	// Reserve; nodes beyond the reservation fall through to the raw draw.
	memo []speedMemo
}

// speedMemo is one node's cached draw. window is -1 until the first hit.
type speedMemo struct {
	window int64
	mult   float64
}

// NewModel builds a Model; it panics on invalid Params (configuration is a
// programming error, validated up-front by the engine).
func NewModel(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{p: p}
}

// Reserve pre-sizes the per-node speed cache for nodes. Call once before a
// run; conversions for nodes outside the reservation stay correct but
// uncached. Each node's cache entry is only touched by conversions for that
// node, so the engine's discipline — one goroutine steps one node, with a
// happens-before edge at each barrier — makes concurrent per-node walks
// safe without locks.
func (m *Model) Reserve(nodes int) {
	if nodes <= len(m.memo) {
		return
	}
	memo := make([]speedMemo, nodes)
	for i := range memo {
		memo[i].window = -1
	}
	copy(memo, m.memo)
	m.memo = memo
}

// Params returns the model's configuration.
func (m *Model) Params() Params { return m.p }

// speed returns the speed multiplier for a node within one jitter window.
// Larger multiplier = slower simulation (more host ns per guest ns). The
// draw is a pure function of (seed, node, window) — no state, no allocation
// — so host/guest conversions can replay from any point; the per-node memo
// only short-circuits recomputation of the identical value.
func (m *Model) speed(node int, window int64) float64 {
	if m.p.JitterSigma == 0 {
		return 1
	}
	if node < len(m.memo) {
		if mo := &m.memo[node]; mo.window == window {
			return mo.mult
		}
		mult := m.draw(node, window)
		m.memo[node] = speedMemo{window: window, mult: mult}
		return mult
	}
	return m.draw(node, window)
}

// draw computes the lognormal speed multiplier from scratch.
func (m *Model) draw(node int, window int64) float64 {
	u := rng.HashFloat01(m.p.Seed, uint64(node), uint64(window), 1)
	v := rng.HashFloat01(m.p.Seed, uint64(node), uint64(window), 2)
	norm := math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	// mu = -sigma²/2 gives the lognormal mean 1, so jitter never biases the
	// average speed, only its spread.
	sig := m.p.JitterSigma
	return math.Exp(-sig*sig/2 + sig*norm)
}

// Mode distinguishes how the guest spends time, which determines the host
// cost rate.
type Mode int

// Guest execution modes.
const (
	Busy Mode = iota // executing workload / protocol code
	Idle             // guest OS idle loop (blocked in recv, sleeping)
)

func (mo Mode) String() string {
	if mo == Busy {
		return "busy"
	}
	return "idle"
}

// slowdownAt returns the host cost rate (before jitter) for mode at guest
// position g: busy time is simulated at full detail or fast-forwarded per
// the sampling schedule; idle simulation is always the fast path.
func (m *Model) slowdownAt(mode Mode, g simtime.Guest) float64 {
	if mode == Idle {
		return m.p.IdleSlowdown
	}
	if s := m.p.Sampling; s != nil {
		phase := simtime.Duration(int64(g) % int64(s.Period))
		if float64(phase) >= s.DetailFraction*float64(s.Period) {
			return s.FastSlowdown
		}
	}
	return m.p.BusySlowdown
}

// segEnd returns the next integration boundary after g: the end of g's
// jitter window or the next sampling phase change, whichever comes first.
func (m *Model) segEnd(g simtime.Guest) simtime.Guest {
	per := simtime.Guest(m.p.JitterPeriod)
	end := (g/per + 1) * per
	if s := m.p.Sampling; s != nil {
		period := simtime.Guest(s.Period)
		phase := g % period
		detail := simtime.Guest(s.DetailFraction * float64(s.Period))
		var next simtime.Guest
		if phase < detail {
			next = g - phase + detail
		} else {
			next = g - phase + period
		}
		if next > g {
			end = simtime.MinGuest(end, next)
		}
	}
	return end
}

// HostCost returns the host time needed for node to advance guest time from
// g0 to g1 in the given mode, integrating across jitter windows and sampling
// phases.
func (m *Model) HostCost(node int, g0, g1 simtime.Guest, mode Mode) simtime.Duration {
	if g1 <= g0 {
		return 0
	}
	per := simtime.Guest(m.p.JitterPeriod)
	// Single-window fast path: quanta are typically much shorter than
	// JitterPeriod, so most conversions never cross an integration boundary.
	// This is the loop below run for exactly one iteration — the same
	// float64 product, the same rounding — just without the loop and segEnd
	// overhead. Sampling schedules add boundaries segEnd knows about, so
	// they take the general loop.
	if m.p.Sampling == nil && g0/per == (g1-1)/per {
		total := float64(g1-g0) * m.slowdownAt(mode, g0) * m.speed(node, int64(g0/per))
		return simtime.Duration(total + 0.5)
	}
	var total float64
	g := g0
	for g < g1 {
		seg := simtime.MinGuest(m.segEnd(g), g1)
		total += float64(seg-g) * m.slowdownAt(mode, g) * m.speed(node, int64(g/per))
		g = seg
	}
	return simtime.Duration(total + 0.5)
}

// GuestAt returns how far node's guest clock has advanced from g0 after
// spending h host time in the given mode, capped at gLimit. It is the
// inverse of HostCost and is used to locate a simulator's guest position at
// a packet's host arrival instant.
func (m *Model) GuestAt(node int, g0 simtime.Guest, h simtime.Duration, mode Mode, gLimit simtime.Guest) simtime.Guest {
	if h <= 0 || g0 >= gLimit {
		return simtime.MinGuest(g0, gLimit)
	}
	per := simtime.Guest(m.p.JitterPeriod)
	budget := float64(h)
	g := g0
	for g < gLimit {
		segEnd := simtime.MinGuest(m.segEnd(g), gLimit)
		rate := m.slowdownAt(mode, g) * m.speed(node, int64(g/per)) // host ns per guest ns
		segCost := float64(segEnd-g) * rate
		if segCost >= budget {
			return g + simtime.Guest(budget/rate)
		}
		budget -= segCost
		g = segEnd
	}
	return gLimit
}
