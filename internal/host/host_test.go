package host

import (
	"math"
	"testing"
	"testing/quick"

	"clustersim/internal/simtime"
)

func testParams() Params {
	p := DefaultParams()
	return p
}

func TestHostCostNoJitter(t *testing.T) {
	p := testParams()
	p.JitterSigma = 0
	m := NewModel(p)
	got := m.HostCost(0, 0, simtime.Guest(100*simtime.Microsecond), Busy)
	want := simtime.Duration(float64(100*simtime.Microsecond) * p.BusySlowdown)
	if got != want {
		t.Errorf("busy cost %v, want %v", got, want)
	}
	gotIdle := m.HostCost(0, 0, simtime.Guest(100*simtime.Microsecond), Idle)
	wantIdle := simtime.Duration(float64(100*simtime.Microsecond) * p.IdleSlowdown)
	if gotIdle != wantIdle {
		t.Errorf("idle cost %v, want %v", gotIdle, wantIdle)
	}
}

func TestHostCostAdditive(t *testing.T) {
	m := NewModel(testParams())
	a := simtime.Guest(13 * simtime.Microsecond)
	b := simtime.Guest(47 * simtime.Microsecond)
	c := simtime.Guest(112 * simtime.Microsecond)
	whole := m.HostCost(3, a, c, Busy)
	split := m.HostCost(3, a, b, Busy) + m.HostCost(3, b, c, Busy)
	diff := int64(whole - split)
	if diff < -2 || diff > 2 {
		t.Errorf("cost not additive: whole %v vs split %v", whole, split)
	}
}

func TestGuestAtInvertsHostCost(t *testing.T) {
	m := NewModel(testParams())
	f := func(startUs, lenUs uint16, node uint8) bool {
		g0 := simtime.Guest(startUs) * 1000
		g1 := g0 + simtime.Guest(lenUs%2000+1)*1000
		cost := m.HostCost(int(node), g0, g1, Busy)
		back := m.GuestAt(int(node), g0, cost, Busy, simtime.GuestInfinity)
		d := int64(back - g1)
		if d < 0 {
			d = -d
		}
		return d <= 2 // rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGuestAtRespectsLimit(t *testing.T) {
	m := NewModel(testParams())
	limit := simtime.Guest(50 * simtime.Microsecond)
	got := m.GuestAt(0, 0, simtime.Duration(1<<50), Busy, limit)
	if got != limit {
		t.Errorf("GuestAt overflowed the limit: %v", got)
	}
	if m.GuestAt(0, limit, 1000, Busy, limit) != limit {
		t.Error("GuestAt from the limit should stay at the limit")
	}
	if m.GuestAt(0, 10, 0, Busy, limit) != 10 {
		t.Error("GuestAt with zero budget should not move")
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	m := NewModel(testParams())
	// Average cost across many windows should approach the slowdown.
	g1 := simtime.Guest(50 * simtime.Millisecond)
	cost := m.HostCost(1, 0, g1, Busy)
	ratio := float64(cost) / (float64(g1) * m.Params().BusySlowdown)
	if math.Abs(ratio-1) > 0.05 {
		t.Errorf("long-run jitter bias %.3f (want ≈1)", ratio)
	}
}

func TestJitterVariesAcrossNodesAndWindows(t *testing.T) {
	m := NewModel(testParams())
	g := simtime.Guest(10 * simtime.Microsecond) // one window
	c0 := m.HostCost(0, 0, g, Busy)
	c1 := m.HostCost(1, 0, g, Busy)
	if c0 == c1 {
		t.Error("two nodes drew identical jitter in the same window (astronomically unlikely)")
	}
	c0b := m.HostCost(0, simtime.Guest(10*simtime.Microsecond), simtime.Guest(20*simtime.Microsecond), Busy)
	if c0 == c0b {
		t.Error("two windows drew identical jitter (astronomically unlikely)")
	}
}

func TestJitterDeterministic(t *testing.T) {
	a := NewModel(testParams())
	b := NewModel(testParams())
	g := simtime.Guest(123456)
	if a.HostCost(5, 0, g, Busy) != b.HostCost(5, 0, g, Busy) {
		t.Error("same params produced different costs")
	}
	p2 := testParams()
	p2.Seed++
	c := NewModel(p2)
	if a.HostCost(5, 0, g, Busy) == c.HostCost(5, 0, g, Busy) {
		t.Error("different seeds produced identical costs (astronomically unlikely)")
	}
}

func TestValidation(t *testing.T) {
	bad := []func(p *Params){
		func(p *Params) { p.BusySlowdown = 0 },
		func(p *Params) { p.IdleSlowdown = -1 },
		func(p *Params) { p.JitterSigma = -0.1 },
		func(p *Params) { p.JitterPeriod = 0 },
		func(p *Params) { p.BarrierCost = -1 },
	}
	for i, mod := range bad {
		p := testParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if err := testParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Busy.String() != "busy" || Idle.String() != "idle" {
		t.Error("mode strings broken")
	}
}
