package host

import (
	"testing"

	"clustersim/internal/simtime"
)

func sampledParams(frac float64) Params {
	p := DefaultParams()
	p.JitterSigma = 0 // isolate the sampling arithmetic
	p.Sampling = &Sampling{
		Period:         1 * simtime.Millisecond,
		DetailFraction: frac,
		FastSlowdown:   2,
	}
	return p
}

func TestSamplingBlendsSlowdowns(t *testing.T) {
	m := NewModel(sampledParams(0.25))
	// One full period: 250µs detailed at 20x + 750µs fast at 2x.
	got := m.HostCost(0, 0, simtime.Guest(simtime.Millisecond), Busy)
	want := simtime.Duration(250*20+750*2) * simtime.Microsecond
	if got != want {
		t.Errorf("sampled cost %v, want %v", got, want)
	}
}

func TestSamplingPhaseBoundariesInsideWindow(t *testing.T) {
	// A segment straddling the detail/fast boundary must split exactly.
	m := NewModel(sampledParams(0.25))
	a := m.HostCost(0, simtime.Guest(200*simtime.Microsecond), simtime.Guest(300*simtime.Microsecond), Busy)
	want := simtime.Duration(50*20+50*2) * simtime.Microsecond
	if a != want {
		t.Errorf("straddling cost %v, want %v", a, want)
	}
}

func TestSamplingIdleUnaffected(t *testing.T) {
	m := NewModel(sampledParams(0.25))
	got := m.HostCost(0, 0, simtime.Guest(simtime.Millisecond), Idle)
	want := simtime.Duration(float64(simtime.Millisecond) * m.Params().IdleSlowdown)
	if got != want {
		t.Errorf("idle cost %v, want %v", got, want)
	}
}

func TestSamplingGuestAtInverts(t *testing.T) {
	p := sampledParams(0.3)
	p.JitterSigma = 0.22
	m := NewModel(p)
	for _, g0 := range []simtime.Guest{0, 123456, simtime.Guest(700 * simtime.Microsecond)} {
		g1 := g0 + simtime.Guest(1377*simtime.Microsecond)
		cost := m.HostCost(3, g0, g1, Busy)
		back := m.GuestAt(3, g0, cost, Busy, simtime.GuestInfinity)
		d := int64(back - g1)
		if d < -2 || d > 2 {
			t.Errorf("GuestAt did not invert HostCost with sampling: %v vs %v", back, g1)
		}
	}
}

func TestSamplingValidation(t *testing.T) {
	bad := []Sampling{
		{Period: 0, DetailFraction: 0.5, FastSlowdown: 2},
		{Period: simtime.Millisecond, DetailFraction: -0.1, FastSlowdown: 2},
		{Period: simtime.Millisecond, DetailFraction: 1.1, FastSlowdown: 2},
		{Period: simtime.Millisecond, DetailFraction: 0.5, FastSlowdown: 0},
	}
	for i, s := range bad {
		p := DefaultParams()
		p.Sampling = &s
		if p.Validate() == nil {
			t.Errorf("bad sampling %d accepted", i)
		}
	}
	good := sampledParams(0.5)
	if err := good.Validate(); err != nil {
		t.Errorf("valid sampling rejected: %v", err)
	}
}

func TestSamplingFullDetailMatchesPlain(t *testing.T) {
	plain := NewModel(DefaultParams())
	p := DefaultParams()
	p.Sampling = &Sampling{Period: simtime.Millisecond, DetailFraction: 1, FastSlowdown: 2}
	sampled := NewModel(p)
	g1 := simtime.Guest(3777 * simtime.Microsecond)
	if plain.HostCost(1, 0, g1, Busy) != sampled.HostCost(1, 0, g1, Busy) {
		t.Error("DetailFraction=1 should match the unsampled model")
	}
}
