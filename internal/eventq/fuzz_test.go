package eventq

import "testing"

// FuzzQueueOps interprets the fuzz input as a program of push/pop/remove
// operations and cross-checks the queue against a naive reference model:
// pops must return exactly the (time, priority, seq) minimum, lengths must
// track, and stale handles must never remove anything.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0x10, 0x21, 0x80, 0x32, 0xC0, 0x80})
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0x80, 0x80})
	f.Add([]byte{0x3F, 0x7F, 0xBF, 0xFF, 0x01, 0x81})
	f.Fuzz(func(t *testing.T, program []byte) {
		var q Queue[uint64]
		var ref []refEvent
		var handles []Handle // parallel to ref
		var seq uint64
		for _, op := range program {
			switch op >> 6 {
			case 0, 1: // push: low 6 bits pick (time, priority)
				tm := int64(op & 0x3F >> 2)
				pri := int(op & 0x03)
				seq++
				h := q.PushPri(tm, pri, seq)
				ref = append(ref, refEvent{time: tm, pri: pri, seq: seq, pay: int64(seq)})
				handles = append(handles, h)
			case 2: // pop
				if q.Len() != len(ref) {
					t.Fatalf("length mismatch: queue %d, reference %d", q.Len(), len(ref))
				}
				if len(ref) == 0 {
					continue
				}
				best := 0
				for i := 1; i < len(ref); i++ {
					if refLess(ref[i], ref[best]) {
						best = i
					}
				}
				want := ref[best]
				got := q.Pop()
				if got.Time != want.time || got.Priority != want.pri || got.Payload != uint64(want.pay) {
					t.Fatalf("pop mismatch: got (t=%d p=%d pay=%d), want (t=%d p=%d pay=%d)",
						got.Time, got.Priority, got.Payload, want.time, want.pri, want.pay)
				}
				stale := handles[best]
				ref = append(ref[:best], ref[best+1:]...)
				handles = append(handles[:best], handles[best+1:]...)
				if q.Remove(stale) {
					t.Fatal("Remove of a popped event's handle returned true")
				}
			case 3: // remove: low bits pick the victim
				if len(ref) == 0 {
					continue
				}
				i := int(op&0x3F) % len(ref)
				if !q.Remove(handles[i]) {
					t.Fatalf("Remove of live event (seq %d) returned false", ref[i].seq)
				}
				if q.Remove(handles[i]) {
					t.Fatal("double Remove returned true")
				}
				ref = append(ref[:i], ref[i+1:]...)
				handles = append(handles[:i], handles[i+1:]...)
			}
		}
		for len(ref) > 0 {
			best := 0
			for i := 1; i < len(ref); i++ {
				if refLess(ref[i], ref[best]) {
					best = i
				}
			}
			want := ref[best]
			got := q.Pop()
			if got.Time != want.time || got.Priority != want.pri || got.Payload != uint64(want.pay) {
				t.Fatalf("drain mismatch: got (t=%d p=%d pay=%d), want (t=%d p=%d pay=%d)",
					got.Time, got.Priority, got.Payload, want.time, want.pri, want.pay)
			}
			ref = append(ref[:best], ref[best+1:]...)
			handles = append(handles[:best], handles[best+1:]...)
		}
		if q.Len() != 0 {
			t.Fatalf("queue not empty after drain: %d left", q.Len())
		}
	})
}
