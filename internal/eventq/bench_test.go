package eventq

import "testing"

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A churning queue of ~64 events, the engine's typical depth.
		q.Push(int64(i*7919%1000), i)
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

func BenchmarkPushRemove(b *testing.B) {
	var q Queue[int]
	b.ReportAllocs()
	var last *Event[int]
	for i := 0; i < b.N; i++ {
		e := q.Push(int64(i%1000), i)
		if last != nil {
			q.Remove(last)
		}
		last = e
	}
}
