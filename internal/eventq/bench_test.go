package eventq

import "testing"

// BenchmarkPushPop measures the engine's typical churn: a queue holding a
// few dozen events with interleaved pushes and pops. Steady state must not
// allocate — the arena and free list recycle every slot.
func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	for i := 0; i < 128; i++ { // warm the arena so growth is off the clock
		q.Push(int64(i*7919%1000), i)
	}
	for q.Len() > 64 {
		q.Pop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A churning queue of ~64 events, the engine's typical depth.
		q.Push(int64(i*7919%1000), i)
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

func BenchmarkPushRemove(b *testing.B) {
	var q Queue[int]
	b.ReportAllocs()
	var last Handle
	for i := 0; i < b.N; i++ {
		e := q.Push(int64(i%1000), i)
		q.Remove(last)
		last = e
	}
}

// BenchmarkPopDeep exercises sift-down on a deep heap (the 4-ary layout's
// main win over the binary heap: half the levels, 3/4 fewer cache misses on
// the way down).
func BenchmarkPopDeep(b *testing.B) {
	var q Queue[int]
	const depth = 4096
	for i := 0; i < depth; i++ {
		q.Push(int64(i*2654435761%1000000), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := q.Pop()
		q.Push(it.Time+1000000, it.Payload)
	}
}
