package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("wrong order: %v", got)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(42, i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop().Payload; got != i {
			t.Fatalf("equal-time events reordered: got %d at position %d", got, i)
		}
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	var q Queue[string]
	q.PushPri(5, 2, "low")
	q.PushPri(5, 0, "high")
	q.PushPri(5, 1, "mid")
	if q.Pop().Payload != "high" || q.Pop().Payload != "mid" || q.Pop().Payload != "low" {
		t.Error("priority tiebreak broken")
	}
}

func TestRemove(t *testing.T) {
	var q Queue[int]
	e1 := q.Push(1, 1)
	e2 := q.Push(2, 2)
	e3 := q.Push(3, 3)
	if !q.Remove(e2) {
		t.Fatal("Remove returned false for a live event")
	}
	if q.Remove(e2) {
		t.Fatal("double Remove returned true")
	}
	if q.Pop().Payload != 1 || q.Pop().Payload != 3 {
		t.Error("wrong events after removal")
	}
	if q.Remove(e1) {
		t.Error("Remove of popped event returned true")
	}
	if q.Remove(Handle{}) {
		t.Error("Remove of the zero Handle returned true")
	}
	_ = e3
}

// A handle must stay dead even after its slot is recycled by later pushes.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	var q Queue[int]
	h := q.Push(1, 1)
	q.Pop()
	h2 := q.Push(2, 2) // reuses the freed slot
	if q.Remove(h) {
		t.Fatal("stale handle removed a recycled slot's event")
	}
	if !q.Remove(h2) {
		t.Fatal("live handle on a recycled slot not removable")
	}
}

func TestPeek(t *testing.T) {
	var q Queue[int]
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported an item")
	}
	q.Push(9, 1)
	q.Push(4, 2)
	if it, ok := q.Peek(); !ok || it.Time != 4 {
		t.Error("Peek returned wrong event")
	}
	if q.Len() != 2 {
		t.Error("Peek consumed an event")
	}
}

func TestClear(t *testing.T) {
	var q Queue[int]
	h := q.Push(1, 1)
	q.Push(2, 2)
	q.Clear()
	if q.Len() != 0 {
		t.Error("Clear left events behind")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek after Clear reported an item")
	}
	if q.Remove(h) {
		t.Error("Remove after Clear returned true")
	}
	q.Push(3, 3)
	if q.Pop().Payload != 3 {
		t.Error("queue unusable after Clear")
	}
}

// refEvent mirrors one pushed event in the naive reference model.
type refEvent struct {
	time int64
	pri  int
	seq  uint64
	pay  int64
}

func refLess(a, b refEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// checkAgainstReference drives the queue and a naive sorted-slice reference
// through the same random push/pop/remove interleaving and fails on the
// first divergence: every pop must return exactly the reference's minimum
// by (time, priority, seq).
func checkAgainstReference(t *testing.T, r *rand.Rand, ops int) {
	t.Helper()
	var q Queue[int64]
	var ref []refEvent             // live events, unsorted
	handles := map[uint64]Handle{} // seq -> handle for random removal
	var seq uint64
	popMin := func() refEvent {
		best := 0
		for i := 1; i < len(ref); i++ {
			if refLess(ref[i], ref[best]) {
				best = i
			}
		}
		ev := ref[best]
		ref = append(ref[:best], ref[best+1:]...)
		return ev
	}
	for op := 0; op < ops; op++ {
		switch r.Intn(5) {
		case 0, 1:
			tm := int64(r.Intn(60))
			pri := r.Intn(3)
			seq++
			pay := int64(seq)
			h := q.PushPri(tm, pri, pay)
			ref = append(ref, refEvent{time: tm, pri: pri, seq: seq, pay: pay})
			handles[seq] = h
		case 2, 3:
			if q.Len() != len(ref) {
				t.Fatalf("op %d: length mismatch: queue %d, reference %d", op, q.Len(), len(ref))
			}
			if len(ref) == 0 {
				continue
			}
			want := popMin()
			got := q.Pop()
			if got.Time != want.time || got.Priority != want.pri || got.Payload != want.pay {
				t.Fatalf("op %d: pop mismatch: got (t=%d p=%d pay=%d), want (t=%d p=%d pay=%d)",
					op, got.Time, got.Priority, got.Payload, want.time, want.pri, want.pay)
			}
			delete(handles, want.seq)
		case 4:
			if len(ref) == 0 {
				continue
			}
			victim := ref[r.Intn(len(ref))]
			if !q.Remove(handles[victim.seq]) {
				t.Fatalf("op %d: Remove of live event (seq %d) returned false", op, victim.seq)
			}
			for i := range ref {
				if ref[i].seq == victim.seq {
					ref = append(ref[:i], ref[i+1:]...)
					break
				}
			}
			delete(handles, victim.seq)
		}
	}
	for len(ref) > 0 {
		want := popMin()
		got := q.Pop()
		if got.Time != want.time || got.Priority != want.pri || got.Payload != want.pay {
			t.Fatalf("drain: pop mismatch: got (t=%d p=%d pay=%d), want (t=%d p=%d pay=%d)",
				got.Time, got.Priority, got.Payload, want.time, want.pri, want.pay)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d left", q.Len())
	}
}

// Property: under random push/pop/remove interleavings the queue pops in
// exactly (time, priority, seq) order, cross-checked against a naive
// reference.
func TestPropertyAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		checkAgainstReference(t, rand.New(rand.NewSource(seed)), 800)
	}
}

// Property: a pure push-then-drain cycle yields a sorted sequence.
func TestPropertySortedDrain(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue[int]
		for i, tm := range times {
			q.Push(int64(tm), i)
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, q.Pop().Time)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Steady-state operation must not allocate: once the arena has grown to the
// working depth, push/pop/remove churn recycles slots through the free list.
func TestZeroSteadyStateAllocs(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 256; i++ { // warm the arena past the churn depth
		q.Push(int64(i), i)
	}
	for q.Len() > 64 {
		q.Pop()
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		h := q.Push(int64(i%977), i)
		q.Pop()
		q.Push(int64(i%983), i)
		if !q.Remove(h) {
			// h may legitimately have been the event just popped.
			q.Pop()
		} else {
			q.Pop()
		}
		q.Push(int64(i%991), i)
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f times per op, want 0", allocs)
	}
}
