package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("wrong order: %v", got)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(42, i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop().Payload; got != i {
			t.Fatalf("equal-time events reordered: got %d at position %d", got, i)
		}
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	var q Queue[string]
	q.PushPri(5, 2, "low")
	q.PushPri(5, 0, "high")
	q.PushPri(5, 1, "mid")
	if q.Pop().Payload != "high" || q.Pop().Payload != "mid" || q.Pop().Payload != "low" {
		t.Error("priority tiebreak broken")
	}
}

func TestRemove(t *testing.T) {
	var q Queue[int]
	e1 := q.Push(1, 1)
	e2 := q.Push(2, 2)
	e3 := q.Push(3, 3)
	if !q.Remove(e2) {
		t.Fatal("Remove returned false for a live event")
	}
	if q.Remove(e2) {
		t.Fatal("double Remove returned true")
	}
	if q.Pop() != e1 || q.Pop() != e3 {
		t.Error("wrong events after removal")
	}
	if q.Remove(e1) {
		t.Error("Remove of popped event returned true")
	}
	if q.Remove(nil) {
		t.Error("Remove(nil) returned true")
	}
}

func TestPeek(t *testing.T) {
	var q Queue[int]
	if q.Peek() != nil {
		t.Error("Peek on empty queue not nil")
	}
	q.Push(9, 1)
	q.Push(4, 2)
	if q.Peek().Time != 4 {
		t.Error("Peek returned wrong event")
	}
	if q.Len() != 2 {
		t.Error("Peek consumed an event")
	}
}

func TestClear(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Clear()
	if q.Len() != 0 || q.Peek() != nil {
		t.Error("Clear left events behind")
	}
}

// Property: popping returns events in nondecreasing time order and exactly
// the pushed multiset, under random interleavings of pushes, pops and
// removals.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue[int64]
		var live []*Event[int64]
		var popped []int64
		pushed := map[int64]int{}
		removed := map[int64]int{}
		for op := 0; op < 500; op++ {
			switch r.Intn(4) {
			case 0, 1:
				tm := int64(r.Intn(50))
				e := q.Push(tm, tm)
				live = append(live, e)
				pushed[tm]++
			case 2:
				if q.Len() > 0 {
					popped = append(popped, q.Pop().Payload)
				}
			case 3:
				if len(live) > 0 {
					i := r.Intn(len(live))
					if q.Remove(live[i]) {
						removed[live[i].Payload]++
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.Pop().Payload)
		}
		// popped ∪ removed must equal pushed... but pops interleaved with
		// pushes need not be globally sorted; only each drain segment is.
		got := map[int64]int{}
		for _, v := range popped {
			got[v]++
		}
		for v, n := range removed {
			got[v] += n
		}
		for v, n := range pushed {
			if got[v] != n {
				return false
			}
			delete(got, v)
		}
		return len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a pure push-then-drain cycle yields a sorted sequence.
func TestPropertySortedDrain(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue[int]
		for i, tm := range times {
			q.Push(int64(tm), i)
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, q.Pop().Time)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
