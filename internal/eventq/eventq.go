// Package eventq provides the discrete-event priority queue used by the
// co-simulation engine.
//
// Events are ordered by (time, priority, insertion sequence); the sequence
// tiebreak makes the processing order fully deterministic, which the engine
// relies on for bit-identical replays of the same seed.
//
// The queue is a value-based 4-ary heap over an internal slot arena: the
// heap holds slot indices, slots are recycled through an intrusive free
// list, and callers address pending events through Handle values instead of
// pointers. After warm-up the engine's push/pop/remove churn therefore does
// zero allocations — nothing per event escapes to the garbage collector.
package eventq

// Handle identifies a pending event for Remove. The zero Handle is never
// live, so it doubles as the "no event" sentinel. A Handle stays uniquely
// bound to the push that created it: once the event is popped or removed,
// the handle is dead forever, even after its slot is recycled.
type Handle struct {
	idx int32
	seq uint64
}

// Item is a scheduled event as returned by Pop and Peek. Lower Time runs
// first; among equal times, lower Priority runs first; among equal
// priorities, earlier-scheduled runs first.
type Item[T any] struct {
	Time     int64
	Priority int
	Payload  T
}

// slot is the arena cell backing one pending event. A free slot has pos ==
// -1 and reuses its time field as the intrusive free-list link (index+1 of
// the next free slot, 0 terminated).
type slot[T any] struct {
	time    int64
	seq     uint64
	pri     int32
	pos     int32 // index into Queue.heap, or -1 when free
	payload T
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue[T any] struct {
	slots []slot[T]
	heap  []int32 // 4-ary heap of slot indices
	free  int32   // free-list head as index+1 (0 = empty)
	seq   uint64  // last sequence number issued (0 = none)
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.heap) }

// Push schedules payload at the given time with priority 0 and returns the
// event's handle (usable with Remove).
func (q *Queue[T]) Push(time int64, payload T) Handle {
	return q.PushPri(time, 0, payload)
}

// PushPri schedules payload at the given time and priority.
func (q *Queue[T]) PushPri(time int64, priority int, payload T) Handle {
	i := q.alloc()
	q.seq++
	s := &q.slots[i]
	s.time = time
	s.pri = int32(priority)
	s.seq = q.seq
	s.payload = payload
	s.pos = int32(len(q.heap))
	q.heap = append(q.heap, i) //simlint:hotalloc grows to the steady-state watermark once; reuse is allocation-free
	q.up(len(q.heap) - 1)
	return Handle{idx: i, seq: q.seq}
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// callers check Len first.
func (q *Queue[T]) Pop() Item[T] {
	i := q.heap[0]
	s := &q.slots[i]
	it := Item[T]{Time: s.time, Priority: int(s.pri), Payload: s.payload}
	q.deleteAt(0)
	return it
}

// Peek returns the earliest event without removing it; ok is false on an
// empty queue.
func (q *Queue[T]) Peek() (it Item[T], ok bool) {
	if len(q.heap) == 0 {
		return it, false
	}
	s := &q.slots[q.heap[0]]
	return Item[T]{Time: s.time, Priority: int(s.pri), Payload: s.payload}, true
}

// Remove cancels a previously pushed event. Removing an event twice, one
// already popped, or the zero Handle reports false.
func (q *Queue[T]) Remove(h Handle) bool {
	if h.seq == 0 || int(h.idx) >= len(q.slots) {
		return false
	}
	s := &q.slots[h.idx]
	if s.pos < 0 || s.seq != h.seq {
		return false
	}
	q.deleteAt(int(s.pos))
	return true
}

// Clear drops all pending events and invalidates all handles. Capacity is
// retained, so a cleared queue stays allocation-free.
func (q *Queue[T]) Clear() {
	clear(q.slots) // drop payload references
	q.slots = q.slots[:0]
	q.heap = q.heap[:0]
	q.free = 0
}

// alloc returns a free slot index, recycling before growing.
func (q *Queue[T]) alloc() int32 {
	if q.free != 0 {
		i := q.free - 1
		q.free = int32(q.slots[i].time)
		return i
	}
	q.slots = append(q.slots, slot[T]{}) //simlint:hotalloc slot arena grows to the high-water mark once, then recycles via the free list
	return int32(len(q.slots) - 1)
}

// release puts slot i on the free list and drops its payload reference so
// the queue never keeps popped payloads alive.
func (q *Queue[T]) release(i int32) {
	s := &q.slots[i]
	var zero T
	s.payload = zero
	s.pos = -1
	s.time = int64(q.free)
	q.free = i + 1
}

// deleteAt removes the event at heap position p and releases its slot.
func (q *Queue[T]) deleteAt(p int) {
	i := q.heap[p]
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap = q.heap[:n]
	if p < n {
		q.heap[p] = last
		q.slots[last].pos = int32(p)
		q.down(p)
		if int(q.slots[last].pos) == p {
			q.up(p)
		}
	}
	q.release(i)
}

// less orders slot a before slot b by (time, priority, seq).
func (q *Queue[T]) less(a, b int32) bool {
	sa, sb := &q.slots[a], &q.slots[b]
	if sa.time != sb.time {
		return sa.time < sb.time
	}
	if sa.pri != sb.pri {
		return sa.pri < sb.pri
	}
	return sa.seq < sb.seq
}

// up restores the heap property from position p toward the root.
func (q *Queue[T]) up(p int) {
	id := q.heap[p]
	for p > 0 {
		parent := (p - 1) / 4
		if !q.less(id, q.heap[parent]) {
			break
		}
		q.heap[p] = q.heap[parent]
		q.slots[q.heap[p]].pos = int32(p)
		p = parent
	}
	q.heap[p] = id
	q.slots[id].pos = int32(p)
}

// down restores the heap property from position p toward the leaves.
func (q *Queue[T]) down(p int) {
	id := q.heap[p]
	n := len(q.heap)
	for {
		first := 4*p + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(q.heap[c], q.heap[best]) {
				best = c
			}
		}
		if !q.less(q.heap[best], id) {
			break
		}
		q.heap[p] = q.heap[best]
		q.slots[q.heap[p]].pos = int32(p)
		p = best
	}
	q.heap[p] = id
	q.slots[id].pos = int32(p)
}
