// Package eventq provides the discrete-event priority queue used by the
// co-simulation engine.
//
// Events are ordered by (time, priority, insertion sequence); the sequence
// tiebreak makes the processing order fully deterministic, which the engine
// relies on for bit-identical replays of the same seed.
package eventq

import "container/heap"

// Event is a scheduled callback. Lower Time runs first; among equal times,
// lower Priority runs first; among equal priorities, earlier-scheduled runs
// first.
type Event[T any] struct {
	Time     int64
	Priority int
	Payload  T

	seq   uint64
	index int
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue[T any] struct {
	h   eventHeap[T]
	seq uint64
}

type eventHeap[T any] []*Event[T]

func (h eventHeap[T]) Len() int { return len(h) }

func (h eventHeap[T]) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (h eventHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap[T]) Push(x any) {
	e := x.(*Event[T])
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push schedules payload at the given time with priority 0 and returns the
// event handle (usable with Remove).
func (q *Queue[T]) Push(time int64, payload T) *Event[T] {
	return q.PushPri(time, 0, payload)
}

// PushPri schedules payload at the given time and priority.
func (q *Queue[T]) PushPri(time int64, priority int, payload T) *Event[T] {
	e := &Event[T]{Time: time, Priority: priority, Payload: payload, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Pop removes and returns the earliest event. It panics on an empty queue;
// callers check Len first.
func (q *Queue[T]) Pop() *Event[T] {
	return heap.Pop(&q.h).(*Event[T])
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *Queue[T]) Peek() *Event[T] {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Remove cancels a previously pushed event. Removing an event twice, or one
// already popped, reports false.
func (q *Queue[T]) Remove(e *Event[T]) bool {
	if e == nil || e.index < 0 || e.index >= len(q.h) || q.h[e.index] != e {
		return false
	}
	heap.Remove(&q.h, e.index)
	return true
}

// Clear drops all pending events.
func (q *Queue[T]) Clear() {
	q.h = q.h[:0]
}
