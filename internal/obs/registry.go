package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"clustersim/internal/simtime"
)

// Histogram accumulates int64 samples into power-of-two buckets — enough
// resolution to see the shape of quantum-size or straggler-delay
// distributions without pre-declaring ranges.
type Histogram struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [65]int64 // bucket i counts samples with bit length i (0 counts v<=0)
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.buckets[0]++
		return
	}
	h.buckets[bits.Len64(uint64(v))]++
}

// HistBucket is one occupied histogram bucket covering [Lo, Hi).
type HistBucket struct {
	Lo, Hi int64
	Count  int64
}

// HistSnapshot is a copyable view of a Histogram. P50/P95/P99 are quantile
// estimates interpolated within the power-of-two buckets (see Quantile).
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P95     int64        `json:"p95"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		var lo, hi int64
		if i > 0 {
			lo = int64(1) << (i - 1)
			hi = int64(1) << i
		}
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed samples by
// locating the bucket holding the ceil(q*count)-th smallest sample and
// interpolating linearly by rank inside it. Buckets are clamped to the
// observed [Min, Max] range first, so degenerate distributions (all samples
// equal) report the exact value and the extreme quantiles never escape the
// observed range. q <= 0 returns Min, q >= 1 returns Max, and an empty
// histogram returns 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		if cum+b.Count < target {
			cum += b.Count
			continue
		}
		lo, hi := b.Lo, b.Hi
		if lo == 0 && hi == 0 {
			// The v <= 0 bucket carries no range of its own; it spans from
			// the observed minimum up to (but excluding) 1.
			lo, hi = s.Min, 1
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max+1 {
			hi = s.Max + 1
		}
		if hi <= lo {
			return lo
		}
		frac := float64(target-cum) / float64(b.Count)
		v := int64(float64(lo) + frac*float64(hi-lo))
		if v >= hi {
			v = hi - 1
		}
		if v < lo {
			v = lo
		}
		return v
	}
	return s.Max
}

// MarshalJSON renders buckets as an ordered "[lo,hi)": count map.
func (b HistBucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]int64{fmt.Sprintf("[%d,%d)", b.Lo, b.Hi): b.Count})
}

// Registry is an Observer accumulating live counters, gauges and histograms:
// quantum-size and straggler-delay distributions, per-node send/receive
// counts, packets per quantum, and the host busy/idle split. It serves an
// expvar-style JSON snapshot over HTTP (ServeHTTP / Serve) and a plain-text
// snapshot (Text), both readable while a run is in flight.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
	nodeSent []int64
	nodeRecv []int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments a named counter; usable by sinks beyond the built-in hooks.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets a named gauge.
func (r *Registry) SetGauge(name string, v int64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// ObserveHist folds a sample into a named histogram.
func (r *Registry) ObserveHist(name string, v int64) {
	r.mu.Lock()
	r.hist(name).Observe(v)
	r.mu.Unlock()
}

// hist returns the named histogram, creating it if needed. Callers hold r.mu.
func (r *Registry) hist(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RunStart sizes the per-node tables and records run parameters.
func (r *Registry) RunStart(info RunInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters["runs_started"]++
	r.gauges["nodes"] = int64(info.Nodes)
	r.gauges["run_active"] = 1
	if len(r.nodeSent) < info.Nodes {
		r.nodeSent = append(r.nodeSent, make([]int64, info.Nodes-len(r.nodeSent))...)
		r.nodeRecv = append(r.nodeRecv, make([]int64, info.Nodes-len(r.nodeRecv))...)
	}
}

// RunEnd records the final guest time.
func (r *Registry) RunEnd(sum RunSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters["runs_finished"]++
	r.gauges["run_active"] = 0
	r.gauges["guest_ns"] = int64(sum.GuestTime)
	r.gauges["host_ns"] = int64(sum.HostEnd)
}

// QuantumStart publishes the live quantum size and guest progress.
func (r *Registry) QuantumStart(index int, start simtime.Guest, q simtime.Duration, hostStart simtime.Host) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges["current_quantum_ns"] = int64(q)
	r.gauges["guest_ns"] = int64(start)
	r.gauges["host_ns"] = int64(hostStart)
}

// QuantumEnd folds the quantum into the distribution metrics.
func (r *Registry) QuantumEnd(rec QuantumRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters["quanta"]++
	r.counters["packets"] += int64(rec.Packets)
	if rec.Packets == 0 {
		r.counters["silent_quanta"]++
	}
	if rec.FastEligible {
		r.counters["fastpath_eligible_quanta"]++
		r.gauges["fastpath_eligible"] = 1
	} else {
		r.gauges["fastpath_eligible"] = 0
	}
	r.hist("quantum_ns").Observe(int64(rec.Q))
	r.hist("packets_per_quantum").Observe(int64(rec.Packets))
	r.hist("barrier_ns").Observe(int64(rec.HostEnd.Sub(rec.BarrierStart)))
	r.gauges["guest_ns"] = int64(rec.Start.Add(rec.Q))
	r.gauges["host_ns"] = int64(rec.HostEnd)
}

// Packet folds one delivery into per-node traffic counts and the
// straggler-delay histogram.
func (r *Registry) Packet(rec PacketRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Dropped {
		r.counters["drops"]++
		return
	}
	r.counters["deliveries"]++
	if rec.Duplicate {
		r.counters["dups"]++
	}
	if rec.Src >= 0 && rec.Src < len(r.nodeSent) {
		r.nodeSent[rec.Src]++
	}
	if rec.Dst >= 0 && rec.Dst < len(r.nodeRecv) {
		r.nodeRecv[rec.Dst]++
	}
	if rec.Straggler {
		r.counters["stragglers"]++
		r.hist("straggler_delay_ns").Observe(int64(rec.Arrival.Sub(rec.Ideal)))
		if rec.Snapped {
			r.counters["quantum_snaps"]++
		}
	}
}

// NodePhase accumulates the host busy/idle split (the paper's Figure 5
// breakdown, live).
func (r *Registry) NodePhase(node int, phase Phase, gFrom, gTo simtime.Guest, hFrom, hTo simtime.Host) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch phase {
	case PhaseBusy:
		r.counters["host_busy_ns"] += int64(hTo.Sub(hFrom))
	case PhaseIdle:
		r.counters["host_idle_ns"] += int64(hTo.Sub(hFrom))
	case PhaseDone:
		r.counters["nodes_done"]++
	}
}

// Snapshot is a copyable view of the whole registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	NodeSent   []int64                 `json:"node_sent,omitempty"`
	NodeRecv   []int64                 `json:"node_recv,omitempty"`
}

// Snapshot returns a consistent copy of all metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		NodeSent:   append([]int64(nil), r.nodeSent...),
		NodeRecv:   append([]int64(nil), r.nodeRecv...),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Text renders a sorted human-readable snapshot, one metric per line.
func (r *Registry) Text() string {
	s := r.Snapshot()
	var b strings.Builder
	writeSorted := func(kind string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s %d\n", kind, k, m[k])
		}
	}
	writeSorted("counter", s.Counters)
	writeSorted("gauge", s.Gauges)
	hkeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s count=%d min=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
			k, h.Count, h.Min, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	for i := range s.NodeSent {
		fmt.Fprintf(&b, "node %d sent=%d recv=%d\n", i, s.NodeSent[i], s.NodeRecv[i])
	}
	return b.String()
}

// ServeHTTP serves the expvar-style JSON snapshot (any path, GET).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot())
}

// MetricsServer is a running HTTP endpoint serving a Registry.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0" listeners).
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// Serve exposes reg on addr (e.g. "localhost:6060" or ":0") in a background
// goroutine and returns the running server.
func Serve(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: reg}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
