package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"clustersim/internal/simtime"
)

// Progress is an Observer that periodically reports how far a long run has
// advanced: guest time (and percentage of the target, when one is known),
// quanta per wall-clock second, the current quantum size, and the straggler
// rate. Updates are rate-limited by wall time so the hook itself is cheap on
// runs with millions of quanta.
//
// Reports go to a single writer (conventionally stderr, so piped stdout
// output such as CSV or charts stays clean).
type Progress struct {
	mu sync.Mutex
	w  io.Writer
	// target is the guest time treated as 100%; zero reports absolute guest
	// time only.
	target simtime.Guest
	// interval is the minimum wall time between reports.
	interval time.Duration

	start      time.Time
	lastReport time.Time
	lastQuanta int64

	quanta     int64
	fastQuanta int64 // quanta eligible for the intra-quantum fast path
	packets    int64
	stragglers int64
	guest      simtime.Guest
	curQ       simtime.Duration
}

// NewProgress returns a reporter writing to w. target is the guest time
// treated as 100% (zero if unknown). Updates are emitted at most every
// interval; interval <= 0 uses a 500ms default.
func NewProgress(w io.Writer, target simtime.Guest, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Progress{w: w, target: target, interval: interval}
}

// RunStart starts the wall clock.
func (p *Progress) RunStart(info RunInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now() //simlint:wallclock progress reporting is rate-limited by real time; it renders to stderr and never feeds results
	p.lastReport = p.start
	if p.target == 0 {
		p.target = info.MaxGuest
	}
}

// RunEnd emits the final report.
func (p *Progress) RunEnd(sum RunSummary) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.guest = sum.GuestTime
	p.report(true)
}

// QuantumStart tracks the live quantum size.
func (p *Progress) QuantumStart(index int, start simtime.Guest, q simtime.Duration, hostStart simtime.Host) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.curQ = q
}

// QuantumEnd advances the counters and reports if enough wall time passed.
func (p *Progress) QuantumEnd(rec QuantumRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.quanta++
	if rec.FastEligible {
		p.fastQuanta++
	}
	p.packets += int64(rec.Packets)
	p.stragglers += int64(rec.Stragglers)
	p.guest = rec.Start.Add(rec.Q)
	if time.Since(p.lastReport) >= p.interval { //simlint:wallclock report rate limiting compares real elapsed time; results are unaffected
		p.report(false)
	}
}

// Packet implements Observer.
func (p *Progress) Packet(PacketRecord) {}

// NodePhase implements Observer.
func (p *Progress) NodePhase(int, Phase, simtime.Guest, simtime.Guest, simtime.Host, simtime.Host) {}

// report writes one status line. Callers hold p.mu.
func (p *Progress) report(final bool) {
	now := time.Now() //simlint:wallclock quanta/sec rate in the status line is measured against the real clock
	wall := now.Sub(p.lastReport)
	rate := 0.0
	if wall > 0 {
		rate = float64(p.quanta-p.lastQuanta) / wall.Seconds()
	}
	p.lastReport = now
	p.lastQuanta = p.quanta

	label := "progress"
	if final {
		label = "finished"
		elapsed := now.Sub(p.start)
		rate = 0
		if elapsed > 0 {
			rate = float64(p.quanta) / elapsed.Seconds()
		}
	}
	pct := ""
	if p.target > 0 {
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(p.guest)/float64(p.target))
	}
	strag := 0.0
	if p.packets > 0 {
		strag = 100 * float64(p.stragglers) / float64(p.packets)
	}
	fast := 0.0
	if p.quanta > 0 {
		fast = 100 * float64(p.fastQuanta) / float64(p.quanta)
	}
	fmt.Fprintf(p.w, "%s: guest %v%s | %d quanta (%.0f/s) | Q=%v | fast %.0f%% | stragglers %.1f%%\n",
		label, p.guest, pct, p.quanta, rate, p.curQ, fast, strag)
}
