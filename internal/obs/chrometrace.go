package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"clustersim/internal/simtime"
)

// Chrome trace-event constants: all tracks share one process; the controller
// (quanta, barriers, packet instants) is thread 0 and node i is thread i+1.
const (
	tracePID       = 1
	traceCtrl      = 0
	traceNodeBase  = 1
	tsPerMicro     = 1000.0 // trace timestamps are microseconds; ours are ns
	traceCatEngine = "engine"
)

// traceEvent is one Chrome trace-event object. The exported JSON is the
// "JSON array format" understood by chrome://tracing and Perfetto:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTracer is an Observer that streams a run as Chrome trace-event JSON
// — loadable in chrome://tracing or https://ui.perfetto.dev — rendering
// per-node busy/idle segments ("X" complete events), per-quantum "B"/"E"
// spans with nested barrier segments on the controller track, and packet
// deliveries as "i" instant events. Events are written as they happen, so a
// long run's trace can be inspected before (or without) the run finishing.
//
// The tracer is safe for concurrent use. Call Close (or let the engine call
// RunEnd) to terminate the JSON array; Close after RunEnd is a no-op, so
// `defer tracer.Close()` is always correct.
type ChromeTracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	n      int // events written
	closed bool
	err    error
}

// NewChromeTracer returns a tracer streaming to w. The caller remains
// responsible for closing w (if it is a file) after Close.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	return &ChromeTracer{w: bufio.NewWriter(w)}
}

// emit appends one event to the JSON array. Callers hold t.mu.
func (t *ChromeTracer) emit(ev traceEvent) {
	if t.closed || t.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if t.n == 0 {
		sep = "[\n"
	}
	if _, err := t.w.WriteString(sep); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Close terminates the JSON array and flushes buffered events. It returns
// the first write or encoding error encountered while streaming.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finalize()
}

// Err returns the first streaming error, if any, without closing.
func (t *ChromeTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *ChromeTracer) finalize() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if t.n == 0 {
		if _, err := t.w.WriteString("[]\n"); err != nil {
			t.err = err
			return t.err
		}
	} else if _, err := t.w.WriteString("\n]\n"); err != nil {
		t.err = err
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

func hostTS(h simtime.Host) float64       { return float64(h) / tsPerMicro }
func durTS(d simtime.Duration) float64    { return float64(d) / tsPerMicro }
func guestMicros(g simtime.Guest) float64 { return float64(g) / tsPerMicro }
func nodeTID(node int) int                { return traceNodeBase + node }

// RunStart emits process/thread naming metadata so tracks are labelled.
func (t *ChromeTracer) RunStart(info RunInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	mode := "deterministic"
	if info.Parallel {
		mode = "parallel"
	}
	t.emit(traceEvent{Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": fmt.Sprintf("clustersim (%s, policy %s)", mode, info.Policy)}})
	t.emit(traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: traceCtrl,
		Args: map[string]any{"name": "controller"}})
	for i := 0; i < info.Nodes; i++ {
		t.emit(traceEvent{Name: "thread_name", Ph: "M", PID: tracePID, TID: nodeTID(i),
			Args: map[string]any{"name": fmt.Sprintf("node %d", i)}})
	}
}

// RunEnd terminates the trace.
func (t *ChromeTracer) RunEnd(sum RunSummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emit(traceEvent{Name: "run end", Cat: traceCatEngine, Ph: "i", PID: tracePID,
		TID: traceCtrl, TS: hostTS(sum.HostEnd), Scope: "g",
		Args: map[string]any{"guest_time_us": guestMicros(sum.GuestTime)}})
	t.finalize()
}

// QuantumStart opens the quantum span on the controller track.
func (t *ChromeTracer) QuantumStart(index int, start simtime.Guest, q simtime.Duration, hostStart simtime.Host) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emit(traceEvent{Name: "quantum", Cat: traceCatEngine, Ph: "B", PID: tracePID,
		TID: traceCtrl, TS: hostTS(hostStart),
		Args: map[string]any{"index": index, "Q_us": durTS(q), "guest_start_us": guestMicros(start)}})
}

// QuantumEnd draws the barrier segment and closes the quantum span.
func (t *ChromeTracer) QuantumEnd(rec QuantumRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.BarrierStart >= rec.HostStart && rec.HostEnd >= rec.BarrierStart {
		t.emit(traceEvent{Name: "barrier", Cat: traceCatEngine, Ph: "X", PID: tracePID,
			TID: traceCtrl, TS: hostTS(rec.BarrierStart), Dur: durTS(rec.HostEnd.Sub(rec.BarrierStart)),
			Args: map[string]any{"packets": rec.Packets, "stragglers": rec.Stragglers}})
	}
	t.emit(traceEvent{Name: "quantum", Cat: traceCatEngine, Ph: "E", PID: tracePID,
		TID: traceCtrl, TS: hostTS(rec.HostEnd)})
	// Counter tracks: Perfetto renders each "C" name as a chart over time,
	// turning the per-quantum series (quantum size, traffic, fast-path
	// eligibility) into live diagnostics alongside the span tracks.
	ts := hostTS(rec.HostEnd)
	t.emit(traceEvent{Name: "quantum_size", Cat: traceCatEngine, Ph: "C", PID: tracePID,
		TID: traceCtrl, TS: ts, Args: map[string]any{"Q_us": durTS(rec.Q)}})
	t.emit(traceEvent{Name: "traffic", Cat: traceCatEngine, Ph: "C", PID: tracePID,
		TID: traceCtrl, TS: ts, Args: map[string]any{"packets": rec.Packets, "stragglers": rec.Stragglers}})
	elig := 0
	if rec.FastEligible {
		elig = 1
	}
	t.emit(traceEvent{Name: "fastpath_eligible", Cat: traceCatEngine, Ph: "C", PID: tracePID,
		TID: traceCtrl, TS: ts, Args: map[string]any{"eligible": elig}})
}

// Packet marks a delivery on the controller track. Timestamping uses the
// guest-domain ideal arrival so deliveries line up with the quantum that
// carried them; straggler deliveries are named separately so Perfetto can
// filter them.
func (t *ChromeTracer) Packet(rec PacketRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	name := "packet"
	switch {
	case rec.Dropped:
		name = "drop"
	case rec.Straggler:
		name = "straggler"
	}
	args := map[string]any{
		"src": rec.Src, "dst": rec.Dst, "size": rec.Size,
		"ideal_us": guestMicros(rec.Ideal), "arrival_us": guestMicros(rec.Arrival),
	}
	if rec.Straggler {
		args["late_us"] = durTS(rec.Arrival.Sub(rec.Ideal))
		args["snapped"] = rec.Snapped
	}
	if rec.Duplicate {
		args["duplicate"] = true
	}
	t.emit(traceEvent{Name: name, Cat: "net", Ph: "i", PID: tracePID,
		TID: traceCtrl, TS: guestMicros(rec.Ideal), Scope: "t", Args: args})
}

// NodePhase draws a busy/idle segment on the node's track; PhaseDone becomes
// an instant marker.
func (t *ChromeTracer) NodePhase(node int, phase Phase, gFrom, gTo simtime.Guest, hFrom, hTo simtime.Host) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if phase == PhaseDone {
		t.emit(traceEvent{Name: "done", Cat: traceCatEngine, Ph: "i", PID: tracePID,
			TID: nodeTID(node), TS: hostTS(hFrom), Scope: "t",
			Args: map[string]any{"guest_us": guestMicros(gFrom)}})
		return
	}
	t.emit(traceEvent{Name: phase.String(), Cat: traceCatEngine, Ph: "X", PID: tracePID,
		TID: nodeTID(node), TS: hostTS(hFrom), Dur: durTS(hTo.Sub(hFrom)),
		Args: map[string]any{"g_from_us": guestMicros(gFrom), "g_to_us": guestMicros(gTo)}})
}
