// Package obs is the streaming observability layer of the simulator: a set
// of lifecycle hooks (Observer) that both engines fire as a run unfolds,
// plus three bundled implementations — a Chrome trace-event exporter
// (chrometrace.go), a metrics registry with an HTTP endpoint (registry.go),
// and a live progress reporter for long runs (progress.go).
//
// Hooks stream *while the run executes*, unlike Result traces which are only
// available after Run returns. The deterministic engine fires them
// single-threaded in a replayable order; the wall-clock parallel runner fires
// them from multiple goroutines, so every Observer bundled here is
// safe for concurrent use.
package obs

import (
	"clustersim/internal/simtime"
)

// Phase classifies what a node segment spent its host time on.
type Phase int

const (
	// PhaseBusy is detailed execution of workload/protocol code.
	PhaseBusy Phase = iota
	// PhaseIdle is the fast-pathed simulation of a blocked guest.
	PhaseIdle
	// PhaseDone marks the instant a node's workload finished.
	PhaseDone
)

// String returns the phase name used in traces and metrics.
func (p Phase) String() string {
	switch p {
	case PhaseBusy:
		return "busy"
	case PhaseIdle:
		return "idle"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// RunInfo describes a run as it starts.
type RunInfo struct {
	// Nodes is the simulated cluster size.
	Nodes int
	// Policy names the quantum policy driving the run.
	Policy string
	// Parallel is true for the wall-clock goroutine runner, false for the
	// deterministic engine.
	Parallel bool
	// MaxGuest is the configured guest-time backstop (zero if unlimited).
	MaxGuest simtime.Guest
}

// RunSummary describes a run as it completes normally. Aborted runs (guest
// limit, workload error) never reach RunEnd; sinks that must finalize
// regardless (e.g. ChromeTracer) also finalize on Close.
type RunSummary struct {
	// GuestTime is the guest time at which the last workload finished.
	GuestTime simtime.Guest
	// HostEnd is the host clock at the end of the run.
	HostEnd simtime.Host
	// Quanta is the number of synchronization quanta the run executed.
	Quanta int
	// FastEligibleQuanta counts quanta eligible for the intra-quantum fast
	// path (Q at most the minimum network latency, no packet tap).
	// Eligibility is a property of the configuration and policy trajectory,
	// not of the Workers setting, so it is identical across engines.
	FastEligibleQuanta int
}

// QuantumRecord describes one completed synchronization quantum. It is also
// the element type of Result.Quanta (cluster.QuantumRecord aliases it).
type QuantumRecord struct {
	Index      int
	Start      simtime.Guest    // guest time at quantum start
	Q          simtime.Duration // quantum duration
	Packets    int              // frames routed during the quantum
	Stragglers int
	HostStart  simtime.Host // barrier release that started the quantum
	// BarrierStart is the host time the last node arrived at the barrier
	// (the span BarrierStart..HostEnd is pure synchronization overhead).
	BarrierStart simtime.Host
	HostEnd      simtime.Host // barrier release that ended the quantum
	// FastEligible reports whether this quantum was eligible for the
	// intra-quantum fast path (Q <= minimum network latency, no packet
	// tap). Deliberately independent of the Workers gate so records stay
	// bit-identical across worker counts and engine paths.
	FastEligible bool
}

// PacketRecord describes one frame delivery. It is also the element type of
// Result.Packets (cluster.PacketRecord aliases it).
type PacketRecord struct {
	SendGuest simtime.Guest // guest time the source handed it to the NIC
	Ideal     simtime.Guest // exact simulated arrival time
	Arrival   simtime.Guest // guest time actually delivered (zero if Dropped)
	Src, Dst  int
	Size      int
	Straggler bool
	Snapped   bool // queued to the next quantum boundary
	Dropped   bool // discarded by fault injection; never delivered
	Duplicate bool // fault-injected extra copy of an already-delivered frame
}

// Observer receives lifecycle hooks from a running engine. A nil Observer in
// a config disables all hooks at zero cost: the engines guard every call
// site with a nil check and build no records.
//
// The deterministic engine calls hooks from a single goroutine in a
// deterministic order; the parallel runner calls NodePhase concurrently from
// node goroutines, so implementations must be safe for concurrent use.
// Hooks run on the engine's critical path — expensive sinks should buffer.
type Observer interface {
	// RunStart fires once before the first quantum.
	RunStart(RunInfo)
	// RunEnd fires once after the last quantum of a successful run.
	RunEnd(RunSummary)
	// QuantumStart fires when the barrier releases quantum index, which
	// covers guest time [start, start+q).
	QuantumStart(index int, start simtime.Guest, q simtime.Duration, hostStart simtime.Host)
	// QuantumEnd fires when the quantum's closing barrier completes.
	QuantumEnd(QuantumRecord)
	// Packet fires for every frame delivery the controller routes.
	Packet(PacketRecord)
	// NodePhase fires when a node segment's extent is known: the node spent
	// host time [hFrom, hTo] advancing its guest clock from gFrom to gTo in
	// the given phase. PhaseDone is an instant (gFrom==gTo, hFrom==hTo).
	NodePhase(node int, phase Phase, gFrom, gTo simtime.Guest, hFrom, hTo simtime.Host)
}

// Base is a no-op Observer for embedding: override only the hooks you need.
type Base struct{}

// RunStart implements Observer.
func (Base) RunStart(RunInfo) {}

// RunEnd implements Observer.
func (Base) RunEnd(RunSummary) {}

// QuantumStart implements Observer.
func (Base) QuantumStart(int, simtime.Guest, simtime.Duration, simtime.Host) {}

// QuantumEnd implements Observer.
func (Base) QuantumEnd(QuantumRecord) {}

// Packet implements Observer.
func (Base) Packet(PacketRecord) {}

// NodePhase implements Observer.
func (Base) NodePhase(int, Phase, simtime.Guest, simtime.Guest, simtime.Host, simtime.Host) {}

// multi fans hooks out to several observers in order.
type multi []Observer

// Multi combines observers into one that invokes each in order. Nil entries
// are dropped; Multi() and Multi(nil...) return nil, so callers can always
// pass the result straight into a config.
func Multi(os ...Observer) Observer {
	var ms multi
	for _, o := range os {
		if o != nil {
			ms = append(ms, o)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	}
	return ms
}

func (m multi) RunStart(info RunInfo) {
	for _, o := range m {
		o.RunStart(info)
	}
}

func (m multi) RunEnd(sum RunSummary) {
	for _, o := range m {
		o.RunEnd(sum)
	}
}

func (m multi) QuantumStart(index int, start simtime.Guest, q simtime.Duration, hostStart simtime.Host) {
	for _, o := range m {
		o.QuantumStart(index, start, q, hostStart)
	}
}

func (m multi) QuantumEnd(rec QuantumRecord) {
	for _, o := range m {
		o.QuantumEnd(rec)
	}
}

func (m multi) Packet(rec PacketRecord) {
	for _, o := range m {
		o.Packet(rec)
	}
}

func (m multi) NodePhase(node int, phase Phase, gFrom, gTo simtime.Guest, hFrom, hTo simtime.Host) {
	for _, o := range m {
		o.NodePhase(node, phase, gFrom, gTo, hFrom, hTo)
	}
}
