package obs

import (
	"bytes"
	"strings"
	"testing"

	"clustersim/internal/simtime"
)

// TestQuantilePinsUniform pins the pow2-interpolation estimator on a uniform
// 1..1000 distribution. True quantiles are 500/950/990; the estimator's
// bucket interpolation lands within ~0.2% of them, and these exact values
// must not drift.
func TestQuantilePinsUniform(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.P50 != 501 {
		t.Errorf("p50 = %d, want 501", s.P50)
	}
	if s.P95 != 951 {
		t.Errorf("p95 = %d, want 951", s.P95)
	}
	if s.P99 != 991 {
		t.Errorf("p99 = %d, want 991", s.P99)
	}
}

// TestQuantileDegenerate: every sample identical must report that exact
// value at every quantile (the bucket is clamped to [min, max]).
func TestQuantileDegenerate(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	s := h.snapshot()
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
}

// TestQuantileTwoPoint: a bimodal 90/10 split must put p50 in the low mode
// and p95/p99 in the high mode.
func TestQuantileTwoPoint(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.snapshot()
	if s.P50 < 8 || s.P50 > 15 {
		t.Errorf("p50 = %d, want in the low mode around 10", s.P50)
	}
	if s.P95 < 512 || s.P95 > 1000 {
		t.Errorf("p95 = %d, want in the high mode's bucket", s.P95)
	}
	if s.P99 < 512 || s.P99 > 1000 {
		t.Errorf("p99 = %d, want in the high mode's bucket", s.P99)
	}
}

// TestQuantileNonPositive: samples at or below zero live in the sentinel
// bucket; quantiles must stay within the observed range.
func TestQuantileNonPositive(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-5, -5, -5, 0} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.P50 < -5 || s.P50 > 0 {
		t.Errorf("p50 = %d, want within [-5, 0]", s.P50)
	}
	if got := s.Quantile(0); got != -5 {
		t.Errorf("Quantile(0) = %d, want min", got)
	}
	if got := s.Quantile(1); got != 0 {
		t.Errorf("Quantile(1) = %d, want max", got)
	}
}

// TestQuantileEmpty: an empty histogram reports zeros without panicking.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty histogram quantiles: %+v", s)
	}
}

// TestTextAndHTTPCarryQuantiles: both snapshot surfaces expose the
// estimates.
func TestTextAndHTTPCarryQuantiles(t *testing.T) {
	reg := NewRegistry()
	sampleRun(reg)
	text := reg.Text()
	if !strings.Contains(text, "p50=") || !strings.Contains(text, "p95=") || !strings.Contains(text, "p99=") {
		t.Errorf("Text() missing quantile fields:\n%s", text)
	}
	snap := reg.Snapshot()
	q := snap.Histograms["quantum_ns"]
	if q.P50 != int64(10*simtime.Microsecond) {
		t.Errorf("quantum_ns p50 = %d, want %d", q.P50, int64(10*simtime.Microsecond))
	}
}

// TestRegistryFastpathCounter: eligibility flows from QuantumRecord into the
// live counter and gauge.
func TestRegistryFastpathCounter(t *testing.T) {
	reg := NewRegistry()
	sampleRun(reg)
	s := reg.Snapshot()
	if s.Counters["fastpath_eligible_quanta"] != 1 {
		t.Errorf("fastpath_eligible_quanta = %d, want 1", s.Counters["fastpath_eligible_quanta"])
	}
	if s.Gauges["fastpath_eligible"] != 1 {
		t.Errorf("fastpath_eligible gauge = %d, want 1", s.Gauges["fastpath_eligible"])
	}
}

// TestProgressFastFraction: the status line reports the engaged fraction.
func TestProgressFastFraction(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, simtime.Guest(20*simtime.Microsecond), -1)
	sampleRun(p)
	if out := buf.String(); !strings.Contains(out, "fast 100%") {
		t.Errorf("expected fast-path fraction in %q", out)
	}
}
