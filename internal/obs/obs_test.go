package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clustersim/internal/simtime"
)

func sampleRun(o Observer) {
	o.RunStart(RunInfo{Nodes: 2, Policy: "fixed 1µs", MaxGuest: simtime.Guest(simtime.Millisecond)})
	o.QuantumStart(0, 0, 10*simtime.Microsecond, 0)
	o.NodePhase(0, PhaseBusy, 0, simtime.Guest(5*simtime.Microsecond), 0, simtime.Host(100*simtime.Microsecond))
	o.NodePhase(1, PhaseIdle, 0, simtime.Guest(10*simtime.Microsecond), 0, simtime.Host(2*simtime.Microsecond))
	o.Packet(PacketRecord{
		SendGuest: simtime.Guest(simtime.Microsecond),
		Ideal:     simtime.Guest(2 * simtime.Microsecond),
		Arrival:   simtime.Guest(3 * simtime.Microsecond),
		Src:       0, Dst: 1, Size: 1500, Straggler: true,
	})
	o.QuantumEnd(QuantumRecord{
		Index: 0, Start: 0, Q: 10 * simtime.Microsecond,
		Packets: 1, Stragglers: 1,
		HostStart:    0,
		BarrierStart: simtime.Host(100 * simtime.Microsecond),
		HostEnd:      simtime.Host(110 * simtime.Microsecond),
		FastEligible: true,
	})
	o.NodePhase(0, PhaseDone, simtime.Guest(10*simtime.Microsecond), simtime.Guest(10*simtime.Microsecond),
		simtime.Host(110*simtime.Microsecond), simtime.Host(110*simtime.Microsecond))
	o.RunEnd(RunSummary{
		GuestTime:          simtime.Guest(10 * simtime.Microsecond),
		HostEnd:            simtime.Host(110 * simtime.Microsecond),
		Quanta:             1,
		FastEligibleQuanta: 1,
	})
}

// TestChromeTracerRoundTrip drives every hook and checks the emitted JSON is
// a well-formed Chrome trace-event array.
func TestChromeTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	sampleRun(tr)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	phases := map[string]int{}
	for i, ev := range events {
		phases[ev.Ph]++
		switch ev.Ph {
		case "M", "X", "B", "E", "i", "C":
		default:
			t.Errorf("event %d has unexpected phase %q", i, ev.Ph)
		}
		if ev.PID != tracePID {
			t.Errorf("event %d has pid %d", i, ev.PID)
		}
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
	}
	for _, ph := range []string{"M", "X", "B", "E", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace: %v", ph, phases)
		}
	}
	// The counter tracks must carry numeric values per quantum.
	counters := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "C" {
			continue
		}
		counters[ev.Name] = true
		if len(ev.Args) == 0 {
			t.Errorf("counter %q has no args", ev.Name)
		}
		//simlint:maporder per-entry type check; no ordered output
		for k, v := range ev.Args {
			if _, ok := v.(float64); !ok {
				t.Errorf("counter %q arg %q is %T, want number", ev.Name, k, v)
			}
		}
	}
	for _, want := range []string{"quantum_size", "traffic", "fastpath_eligible"} {
		if !counters[want] {
			t.Errorf("missing counter track %q (have %v)", want, counters)
		}
	}
	// The busy segment must carry its host-time extent in microseconds.
	for _, ev := range events {
		if ev.Ph == "X" && ev.Name == "busy" {
			if ev.Dur != 100 {
				t.Errorf("busy segment dur = %v µs, want 100", ev.Dur)
			}
			if ev.TID != nodeTID(0) {
				t.Errorf("busy segment on tid %d, want %d", ev.TID, nodeTID(0))
			}
		}
	}
}

// TestChromeTracerCloseIdempotent: Close after RunEnd must not corrupt the
// array, and an empty trace must still be valid JSON.
func TestChromeTracerCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	sampleRun(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("double Close corrupted the trace: %v", err)
	}

	var empty bytes.Buffer
	tr2 := NewChromeTracer(&empty)
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	var none []traceEvent
	if err := json.Unmarshal(empty.Bytes(), &none); err != nil {
		t.Fatalf("empty trace invalid: %v (%q)", err, empty.String())
	}
	if len(none) != 0 {
		t.Fatalf("empty trace has %d events", len(none))
	}
}

func TestRegistryAccumulates(t *testing.T) {
	reg := NewRegistry()
	sampleRun(reg)
	s := reg.Snapshot()
	if got := s.Counters["quanta"]; got != 1 {
		t.Errorf("quanta counter = %d, want 1", got)
	}
	if got := s.Counters["deliveries"]; got != 1 {
		t.Errorf("deliveries counter = %d, want 1", got)
	}
	if got := s.Counters["stragglers"]; got != 1 {
		t.Errorf("stragglers counter = %d, want 1", got)
	}
	if got := s.Counters["host_busy_ns"]; got != int64(100*simtime.Microsecond) {
		t.Errorf("host_busy_ns = %d, want %d", got, int64(100*simtime.Microsecond))
	}
	if got := s.NodeSent[0]; got != 1 {
		t.Errorf("node 0 sent = %d, want 1", got)
	}
	if got := s.NodeRecv[1]; got != 1 {
		t.Errorf("node 1 recv = %d, want 1", got)
	}
	h, ok := s.Histograms["quantum_ns"]
	if !ok || h.Count != 1 {
		t.Fatalf("quantum_ns histogram missing or empty: %+v", h)
	}
	if h.Min != int64(10*simtime.Microsecond) || h.Max != h.Min {
		t.Errorf("quantum_ns min/max = %d/%d", h.Min, h.Max)
	}
	d, ok := s.Histograms["straggler_delay_ns"]
	if !ok || d.Count != 1 || d.Sum != int64(simtime.Microsecond) {
		t.Errorf("straggler_delay_ns = %+v", d)
	}
	if s.Gauges["run_active"] != 0 {
		t.Error("run_active gauge not cleared by RunEnd")
	}

	text := reg.Text()
	for _, want := range []string{"counter quanta 1", "hist quantum_ns", "node 0 sent=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	reg := NewRegistry()
	sampleRun(reg)
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("endpoint body is not JSON: %v", err)
	}
	if snap.Counters["quanta"] != 1 {
		t.Errorf("served quanta = %d, want 1", snap.Counters["quanta"])
	}
}

func TestServeEndToEnd(t *testing.T) {
	reg := NewRegistry()
	sampleRun(reg)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["deliveries"] != 1 {
		t.Errorf("live endpoint deliveries = %d, want 1", snap.Counters["deliveries"])
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Min != 0 || s.Max != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Count <= 0 {
			t.Errorf("empty bucket emitted: %+v", b)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestProgressReports(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, simtime.Guest(20*simtime.Microsecond), -1)
	sampleRun(p)
	out := buf.String()
	if !strings.Contains(out, "finished") {
		t.Fatalf("no final report: %q", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("expected 50%% of target in %q", out)
	}
	if !strings.Contains(out, "stragglers 100.0%") {
		t.Errorf("expected straggler rate in %q", out)
	}
}

// countObs counts calls, for Multi fan-out tests.
type countObs struct {
	Base
	quanta int
}

func (c *countObs) QuantumEnd(QuantumRecord) { c.quanta++ }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a, b := &countObs{}, &countObs{}
	if got := Multi(a, nil); got != a {
		t.Error("Multi(a, nil) should unwrap to a")
	}
	m := Multi(a, b)
	sampleRun(m)
	if a.quanta != 1 || b.quanta != 1 {
		t.Errorf("fan-out missed: a=%d b=%d", a.quanta, b.quanta)
	}
}
