package pkt

import (
	"testing"
	"testing/quick"
)

func TestNodeMACRoundTrip(t *testing.T) {
	f := func(id uint32) bool {
		m := NodeMAC(int(id))
		return m.Node() == int(id) && !m.IsBroadcast()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcast(t *testing.T) {
	if Broadcast.Node() != -1 {
		t.Error("Broadcast.Node() should be -1")
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast not recognized")
	}
	if NodeMAC(5).IsBroadcast() {
		t.Error("node MAC misdetected as broadcast")
	}
}

func TestForeignMAC(t *testing.T) {
	if MAC(0xdeadbeef0000).Node() != -1 {
		t.Error("foreign MAC should map to node -1")
	}
}

func TestMACString(t *testing.T) {
	if got := NodeMAC(1).String(); got != "02:00:00:00:00:01" {
		t.Errorf("NodeMAC(1) = %q", got)
	}
	if got := Broadcast.String(); got != "ff:ff:ff:ff:ff:ff" {
		t.Errorf("Broadcast = %q", got)
	}
}

func TestWireBytes(t *testing.T) {
	f := Frame{Src: NodeMAC(0), Dst: NodeMAC(1), Size: 1000}
	if f.WireBytes() != 1000+HeaderBytes {
		t.Errorf("WireBytes = %d", f.WireBytes())
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: 7, Src: NodeMAC(0), Dst: NodeMAC(1), Proto: ProtoMsg, Size: 9000}
	s := f.String()
	if s == "" {
		t.Error("empty frame description")
	}
}
