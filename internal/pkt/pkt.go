// Package pkt defines the link-layer packet format exchanged between
// simulated nodes.
//
// The network controller of the paper behaves "like a perfect link-layer
// (MAC-to-MAC) network switch", so the unit of traffic is an Ethernet-style
// frame: source/destination MAC, an EtherType-like protocol tag, and a
// payload bounded by the (jumbo) MTU.
package pkt

import "fmt"

// MAC is a 48-bit link-layer address.
type MAC uint64

// Broadcast is the all-ones broadcast address.
const Broadcast MAC = 0xffffffffffff

// NodeMAC returns the deterministic MAC assigned to a simulated node.
// Node IDs map into a locally-administered OUI so they can never collide
// with Broadcast.
func NodeMAC(node int) MAC {
	return MAC(0x020000000000 | uint64(node)&0xffffffff)
}

// Node recovers the node ID from a MAC produced by NodeMAC, or -1 for
// broadcast/foreign addresses.
func (m MAC) Node() int {
	if m == Broadcast || m>>32 != 0x0200 {
		return -1
	}
	return int(m & 0xffffffff)
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// String formats m as colon-separated hex octets.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// Proto identifies the payload protocol carried by a frame (the simulator's
// analogue of EtherType).
type Proto uint16

// Protocols understood by the simulated stack.
const (
	ProtoRaw  Proto = 0x0000 // opaque payload (synthetic workloads)
	ProtoMsg  Proto = 0x88b5 // msg-layer data fragment
	ProtoCtrl Proto = 0x88b6 // msg-layer control (rendezvous/ack)
)

// HeaderBytes is the modelled per-frame link-layer overhead (Ethernet header
// + FCS + preamble/IPG rounded to a convenient constant).
const HeaderBytes = 42

// DefaultMTU is the payload capacity of a jumbo Ethernet frame, matching the
// paper's 9000-byte configuration.
const DefaultMTU = 9000

// Frame is one link-layer packet in flight.
type Frame struct {
	Src, Dst MAC
	Proto    Proto
	// Size is the payload size in bytes; the wire occupancy adds
	// HeaderBytes. Payload content is carried out-of-band in Data (may be
	// nil for modelled-only traffic).
	Size int
	Data []byte
	// ID is a unique, monotonically increasing frame identifier assigned by
	// the sending NIC; used for tracing and duplicate suppression.
	ID uint64
}

// WireBytes returns the number of bytes the frame occupies on the wire.
func (f *Frame) WireBytes() int { return f.Size + HeaderBytes }

// String summarizes the frame for traces and test failures.
func (f *Frame) String() string {
	return fmt.Sprintf("frame#%d %s->%s proto=%#04x size=%dB",
		f.ID, f.Src, f.Dst, uint16(f.Proto), f.Size)
}
