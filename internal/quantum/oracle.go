package quantum

import (
	"fmt"
	"sort"

	"clustersim/internal/simtime"
)

// Oracle is a perfect-lookahead policy: it knows every future packet send
// time in advance and stretches each quantum to end exactly at the next one
// (clamped to [Min, Max]), running at Min inside communication bursts.
//
// The paper explains why real systems cannot have this ("in full-system
// simulation there is no perfect way of correctly determining if there is
// not going to be another packet"): lookahead estimation needs well-defined
// topologies, which a star-topology cluster with broadcasts does not offer.
// The Oracle is therefore not a usable synchronization scheme but an upper
// bound — the ablation experiments compare Algorithm 1 against it to show
// how much of the theoretically available speedup the blind adaptive scheme
// captures.
//
// Send times are taken from a traced ground-truth run of the same seed;
// because the ground truth is deterministic and exact (Q <= T), those times
// are the true ones.
type Oracle struct {
	Min, Max simtime.Duration

	sends []simtime.Guest
	// next indexes the first send time not yet passed.
	next int
}

// NewOracle builds the policy from the guest-time send instants of a traced
// baseline run. It panics on non-positive bounds: configuration bug.
func NewOracle(min, max simtime.Duration, sendTimes []simtime.Guest) *Oracle {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("quantum: oracle bounds [%v, %v] invalid", min, max))
	}
	sends := append([]simtime.Guest(nil), sendTimes...)
	sort.Slice(sends, func(i, j int) bool { return sends[i] < sends[j] })
	return &Oracle{Min: min, Max: max, sends: sends}
}

// First implements Policy.
func (o *Oracle) First() simtime.Duration {
	o.next = 0
	return o.decide(0)
}

// Next implements Policy.
func (o *Oracle) Next(fb Feedback) simtime.Duration {
	return o.decide(fb.Now)
}

// decide picks the quantum starting at guest time now: up to the next known
// send, or Min when a send is imminent (the burst regime).
func (o *Oracle) decide(now simtime.Guest) simtime.Duration {
	for o.next < len(o.sends) && o.sends[o.next] <= now {
		o.next++
	}
	if o.next >= len(o.sends) {
		return o.Max // silence to the end of the run
	}
	gap := o.sends[o.next].Sub(now)
	if gap < o.Min {
		return o.Min
	}
	if gap > o.Max {
		return o.Max
	}
	return gap
}

// Name implements Policy.
func (o *Oracle) Name() string {
	return fmt.Sprintf("oracle %s:%s", o.Min, o.Max)
}
