package quantum

import (
	"math"
	"testing"
	"testing/quick"

	"clustersim/internal/simtime"
)

func TestFixedPolicy(t *testing.T) {
	f := Fixed{Q: 10 * simtime.Microsecond}
	if f.First() != 10*simtime.Microsecond {
		t.Error("Fixed.First wrong")
	}
	for np := 0; np < 100; np += 7 {
		if f.Next(Feedback{Packets: np}) != 10*simtime.Microsecond {
			t.Error("Fixed.Next varied")
		}
	}
	if f.Name() != "Q=10µs" {
		t.Errorf("Fixed.Name = %q", f.Name())
	}
}

func TestAdaptiveStartsAtMin(t *testing.T) {
	a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
	if a.First() != simtime.Microsecond {
		t.Error("adaptive does not start at minQ")
	}
}

func TestAdaptiveGrowsWhileSilent(t *testing.T) {
	a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
	q := a.First()
	for i := 0; i < 50; i++ {
		next := a.Next(Feedback{Packets: 0})
		if next < q {
			t.Fatalf("quantum shrank during silence: %v -> %v", q, next)
		}
		q = next
	}
	if q <= simtime.Microsecond {
		t.Error("quantum never grew")
	}
}

func TestAdaptiveCollapsesOnTraffic(t *testing.T) {
	a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
	a.First()
	var q simtime.Duration
	for i := 0; i < 10000; i++ {
		q = a.Next(Feedback{Packets: 0})
	}
	if q != simtime.Millisecond {
		t.Fatalf("quantum did not saturate at max: %v", q)
	}
	// The paper: dec ≈ 1/sqrt(max/min) collapses the quantum "in just two
	// or three quanta at most".
	q = a.Next(Feedback{Packets: 5})
	q2 := a.Next(Feedback{Packets: 5})
	if q2 != simtime.Microsecond {
		t.Errorf("quantum not back at min after two traffic quanta: %v then %v", q, q2)
	}
}

func TestAdaptiveBoundsProperty(t *testing.T) {
	f := func(traffic []bool) bool {
		a := NewAdaptive(2*simtime.Microsecond, 500*simtime.Microsecond, 1.05, 0.1)
		q := a.First()
		if q < a.Min || q > a.Max {
			return false
		}
		for _, hasTraffic := range traffic {
			np := 0
			if hasTraffic {
				np = 3
			}
			q = a.Next(Feedback{Packets: np})
			if q < a.Min || q > a.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveMonotoneSemanticsProperty(t *testing.T) {
	// Silence never shrinks the quantum; traffic never grows it.
	f := func(traffic []bool) bool {
		a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
		q := a.First()
		for _, hasTraffic := range traffic {
			np := 0
			if hasTraffic {
				np = 1
			}
			next := a.Next(Feedback{Packets: np})
			if hasTraffic && next > q {
				return false
			}
			if !hasTraffic && next < q {
				return false
			}
			q = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveInvalidConfigsPanic(t *testing.T) {
	cases := []func(){
		func() { NewAdaptive(0, simtime.Millisecond, 1.03, 0.02) },
		func() { NewAdaptive(simtime.Millisecond, simtime.Microsecond, 1.03, 0.02) },
		func() { NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.0, 0.02) },
		func() { NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0) },
		func() { NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 1) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

func TestRecommendedDec(t *testing.T) {
	// For the paper's 1µs..1000µs range: 1/sqrt(1000) ≈ 0.0316, "very close
	// to" the 0.02 the paper uses.
	got := RecommendedDec(simtime.Microsecond, simtime.Millisecond)
	if math.Abs(got-1/math.Sqrt(1000)) > 1e-9 {
		t.Errorf("RecommendedDec = %v", got)
	}
	if RecommendedDec(0, simtime.Millisecond) != 0.02 {
		t.Error("degenerate range should fall back to 0.02")
	}
}

func TestAdaptiveSubNanosecondGrowthAccumulates(t *testing.T) {
	// With minQ = 1µs and inc = 1.03 the first growth step is 30ns; with
	// integer truncation at each step tiny quanta would stall. Check growth
	// from a 10ns floor with 1% increments still escapes.
	a := NewAdaptive(10*simtime.Nanosecond, simtime.Microsecond, 1.01, 0.5)
	a.First()
	var q simtime.Duration
	for i := 0; i < 2000; i++ {
		q = a.Next(Feedback{Packets: 0})
	}
	if q != simtime.Microsecond {
		t.Errorf("quantum stalled at %v", q)
	}
}

func TestTrafficAdaptive(t *testing.T) {
	p := &TrafficAdaptive{
		Min: simtime.Microsecond, Max: simtime.Millisecond,
		Inc: 1.05, SilenceBoost: 2, Patience: 10, HalfLifePackets: 8,
	}
	q := p.First()
	if q != simtime.Microsecond {
		t.Error("TrafficAdaptive does not start at min")
	}
	for i := 0; i < 500; i++ {
		q = p.Next(Feedback{Packets: 0})
	}
	if q != simtime.Millisecond {
		t.Errorf("TrafficAdaptive did not saturate: %v", q)
	}
	// Heavier traffic shrinks more.
	light := p.Next(Feedback{Packets: 1})
	p.First()
	for i := 0; i < 500; i++ {
		p.Next(Feedback{Packets: 0})
	}
	heavy := p.Next(Feedback{Packets: 100})
	if heavy >= light {
		t.Errorf("100-packet shrink %v not below 1-packet shrink %v", heavy, light)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestAdaptiveName(t *testing.T) {
	a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
	if a.Name() != "dyn 1µs:1ms 1.03:0.02" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestAdaptiveCurrent(t *testing.T) {
	a := NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)
	if a.Current() != simtime.Microsecond {
		t.Error("Current before First should be Min")
	}
	a.First()
	a.Next(Feedback{Packets: 0})
	if a.Current() <= simtime.Microsecond {
		t.Error("Current did not reflect growth")
	}
}

func TestAdaptiveNameFormat(t *testing.T) {
	// Result and trace labels key off this exact format; the doc comment on
	// Name promises it.
	a := NewAdaptive(simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02)
	if got, want := a.Name(), "dyn 1µs:1ms 1.03:0.02"; got != want {
		t.Errorf("Adaptive.Name() = %q, want %q", got, want)
	}
}
