// Package quantum implements the synchronization-quantum policies of the
// paper.
//
// The network controller advances the cluster in lock-step quanta: all nodes
// simulate Q of guest time, synchronize at a barrier, and the controller
// picks the next Q. A policy decides that next Q. The paper's contribution
// is the Adaptive policy (Algorithm 1): grow Q slowly while the network is
// silent, collapse it as soon as packets appear — "driving over speed
// bumps".
package quantum

import (
	"fmt"
	"math"

	"clustersim/internal/simtime"
)

// Feedback is what the controller observed during the quantum that just
// completed; policies base their next decision on it.
type Feedback struct {
	// Packets is np in Algorithm 1: the number of network packets the
	// controller routed during the quantum.
	Packets int
	// Stragglers is how many of those packets could not be delivered at
	// their exact simulated arrival time.
	Stragglers int
	// Now is the guest time of the barrier (end of the completed quantum).
	Now simtime.Guest
}

// Policy chooses the duration of each synchronization quantum.
//
// Implementations must be deterministic: the engine replays runs from seeds
// and requires identical decisions on identical feedback sequences.
type Policy interface {
	// First returns the duration of the initial quantum.
	First() simtime.Duration
	// Next returns the duration of the following quantum given feedback
	// from the one that just finished.
	Next(fb Feedback) simtime.Duration
	// Name identifies the policy in results and traces, e.g. "Q=100µs" or
	// "dyn 1µs:1ms 1.03:0.02".
	Name() string
}

// Fixed is the classical lock-step policy: a constant quantum, as in the
// Wisconsin Wind Tunnel. With Q <= T (minimum network latency) it is the
// deterministic "ground truth"; with larger Q it trades accuracy for speed.
type Fixed struct {
	Q simtime.Duration
}

// First implements Policy.
func (f Fixed) First() simtime.Duration { return f.Q }

// Next implements Policy.
func (f Fixed) Next(Feedback) simtime.Duration { return f.Q }

// Name implements Policy.
func (f Fixed) Name() string { return "Q=" + f.Q.String() }

// Adaptive is Algorithm 1 of the paper: the dynamic quantum.
//
//	Q = minQ
//	repeat
//	    if np == 0 { Q *= Inc } else { Q *= Dec }
//	    clamp Q to [minQ, maxQ]
//	until end of simulation
//
// Inc is a small growth factor (the paper's best configurations use 1.03 and
// 1.05); Dec is a strong decay (0.02 ≈ 1/sqrt(maxQ/minQ) for the 1µs:1000µs
// range), so the quantum collapses to near minQ within one or two quanta of
// traffic and needs hundreds of silent quanta to grow back.
type Adaptive struct {
	Min, Max simtime.Duration
	Inc, Dec float64

	// q is the current quantum as a float so sub-nanosecond growth per step
	// is not lost to integer truncation.
	q float64
}

// NewAdaptive returns an Adaptive policy with the given bounds and factors.
// It panics on configurations that Algorithm 1 cannot execute (Inc <= 1
// would never grow; Dec >= 1 would never shrink; Min must be positive and
// not exceed Max): these are programming errors, not runtime conditions.
func NewAdaptive(min, max simtime.Duration, inc, dec float64) *Adaptive {
	a := &Adaptive{Min: min, Max: max, Inc: inc, Dec: dec}
	if err := a.validate(); err != nil {
		panic(err)
	}
	a.q = float64(min)
	return a
}

func (a *Adaptive) validate() error {
	switch {
	case a.Min <= 0:
		return fmt.Errorf("quantum: adaptive Min must be positive, got %v", a.Min)
	case a.Max < a.Min:
		return fmt.Errorf("quantum: adaptive Max %v < Min %v", a.Max, a.Min)
	case a.Inc <= 1:
		return fmt.Errorf("quantum: adaptive Inc must exceed 1, got %v", a.Inc)
	case a.Dec <= 0 || a.Dec >= 1:
		return fmt.Errorf("quantum: adaptive Dec must be in (0,1), got %v", a.Dec)
	}
	return nil
}

// RecommendedDec returns the paper's suggested decrease factor for a quantum
// range: a value near 1/sqrt(maxQ/minQ), which collapses the quantum from
// maxQ to minQ in about two quanta.
func RecommendedDec(min, max simtime.Duration) float64 {
	if min <= 0 || max <= min {
		return 0.02
	}
	return 1 / math.Sqrt(float64(max)/float64(min))
}

// First implements Policy. Algorithm 1 starts at the minimum quantum.
func (a *Adaptive) First() simtime.Duration {
	a.q = float64(a.Min)
	return a.Min
}

// Next implements Policy: one step of Algorithm 1.
func (a *Adaptive) Next(fb Feedback) simtime.Duration {
	if fb.Packets == 0 {
		a.q *= a.Inc
	} else {
		a.q *= a.Dec
	}
	if a.q < float64(a.Min) {
		a.q = float64(a.Min)
	}
	if a.q > float64(a.Max) {
		a.q = float64(a.Max)
	}
	return simtime.Duration(a.q)
}

// Name implements Policy. The label is "dyn <min>:<max> <inc>:<dec>" with
// durations in simtime.Duration notation — e.g. "dyn 1µs:1ms 1.03:0.02"
// for a 1µs..1000µs range (the paper's own labels abbreviate the same
// parameters as "dyn 1k 1.03:0.02"). Result and trace labels key off this
// exact format; TestAdaptiveNameFormat pins it.
func (a *Adaptive) Name() string {
	return fmt.Sprintf("dyn %s:%s %.2f:%.2f", a.Min, a.Max, a.Inc, a.Dec)
}

// Current returns the quantum the policy would issue now, without stepping.
func (a *Adaptive) Current() simtime.Duration {
	if a.q == 0 {
		return a.Min
	}
	return simtime.Duration(a.q)
}

// TrafficAdaptive is an extension beyond the paper (its "future work"
// direction of richer adaptivity): instead of the binary np==0 test it
// scales the decrease with traffic density and allows faster growth after
// long silences. It is used by the ablation experiments to show that the
// simple Algorithm 1 already captures most of the benefit.
type TrafficAdaptive struct {
	Min, Max simtime.Duration
	// Inc grows the quantum per silent quantum; SilenceBoost multiplies the
	// growth after Patience consecutive silent quanta.
	Inc          float64
	SilenceBoost float64
	Patience     int
	// HalfLifePackets is the packet count that halves the quantum; heavier
	// traffic shrinks it further.
	HalfLifePackets float64

	q      float64
	silent int
}

// First implements Policy.
func (t *TrafficAdaptive) First() simtime.Duration {
	t.q = float64(t.Min)
	t.silent = 0
	return t.Min
}

// Next implements Policy.
func (t *TrafficAdaptive) Next(fb Feedback) simtime.Duration {
	if fb.Packets == 0 {
		t.silent++
		g := t.Inc
		if t.Patience > 0 && t.silent > t.Patience {
			g *= t.SilenceBoost
		}
		t.q *= g
	} else {
		t.silent = 0
		hl := t.HalfLifePackets
		if hl <= 0 {
			hl = 8
		}
		t.q *= math.Pow(0.5, 1+float64(fb.Packets)/hl)
	}
	if t.q < float64(t.Min) {
		t.q = float64(t.Min)
	}
	if t.q > float64(t.Max) {
		t.q = float64(t.Max)
	}
	return simtime.Duration(t.q)
}

// Name implements Policy.
func (t *TrafficAdaptive) Name() string {
	return fmt.Sprintf("dyn-traffic %s:%s", t.Min, t.Max)
}
