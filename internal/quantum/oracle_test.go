package quantum

import (
	"testing"

	"clustersim/internal/simtime"
)

func TestOracleStretchesToNextSend(t *testing.T) {
	sends := []simtime.Guest{
		simtime.Guest(500 * simtime.Microsecond),
		simtime.Guest(502 * simtime.Microsecond),
		simtime.Guest(5 * simtime.Millisecond),
	}
	o := NewOracle(simtime.Microsecond, simtime.Millisecond, sends)
	if q := o.First(); q != 500*simtime.Microsecond {
		t.Errorf("first quantum %v, want exactly the gap to the first send", q)
	}
	// At the first send, the next send is 2µs away: burst regime.
	if q := o.Next(Feedback{Now: sends[0]}); q != 2*simtime.Microsecond {
		t.Errorf("burst quantum %v, want 2µs", q)
	}
	// Imminent send within Min clamps to Min.
	if q := o.Next(Feedback{Now: sends[1] - 1}); q < simtime.Microsecond {
		t.Errorf("quantum %v below Min", q)
	}
	// Long silence clamps to Max.
	if q := o.Next(Feedback{Now: sends[1]}); q != simtime.Millisecond {
		t.Errorf("silence quantum %v, want Max", q)
	}
	// Past the last send: free running at Max.
	if q := o.Next(Feedback{Now: simtime.Guest(10 * simtime.Millisecond)}); q != simtime.Millisecond {
		t.Errorf("post-traffic quantum %v, want Max", q)
	}
}

func TestOracleUnsortedInput(t *testing.T) {
	sends := []simtime.Guest{300, 100, 200}
	o := NewOracle(1, 1000, sends)
	if q := o.First(); q != 100 {
		t.Errorf("oracle did not sort its input: first quantum %v", q)
	}
}

func TestOracleEmptyTrace(t *testing.T) {
	o := NewOracle(simtime.Microsecond, simtime.Millisecond, nil)
	if o.First() != simtime.Millisecond {
		t.Error("silent oracle should free-run at Max")
	}
}

func TestOracleInvalidBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid oracle bounds did not panic")
		}
	}()
	NewOracle(0, simtime.Millisecond, nil)
}

func TestOracleName(t *testing.T) {
	o := NewOracle(simtime.Microsecond, simtime.Millisecond, nil)
	if o.Name() == "" {
		t.Error("empty name")
	}
}
