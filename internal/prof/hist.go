package prof

import "math/bits"

// Hist is a power-of-two histogram over signed int64 samples. Unlike the
// positive-only obs.Registry histogram it mirrors the bucket ladder across
// zero, because lookahead slack is naturally signed (negative slack = a
// frame that could arrive inside the quantum it was sent in).
//
// Bucket layout: sample v > 0 lands in positive bucket bits.Len64(v), i.e.
// [2^(i-1), 2^i); v == 0 lands in the zero bucket [0, 1); v < 0 lands in
// negative bucket bits.Len64(-v), i.e. (-2^i, -2^(i-1)].
type Hist struct {
	count int64
	sum   int64
	min   int64
	max   int64
	zero  int64
	pos   [65]int64
	neg   [65]int64
}

// Observe folds one sample into the histogram.
func (h *Hist) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	switch {
	case v > 0:
		h.pos[bits.Len64(uint64(v))]++
	case v < 0:
		h.neg[bits.Len64(uint64(-v))]++
	default:
		h.zero++
	}
}

// Bucket is one occupied histogram bucket covering the half-open interval
// [Lo, Hi).
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistData is the float-free snapshot of a Hist embedded in reports.
// Buckets are ordered ascending by Lo, so encoding is deterministic.
type HistData struct {
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a copyable, deterministically ordered view of h.
func (h *Hist) Snapshot() HistData {
	s := HistData{Count: h.count, SumNS: h.sum, Min: h.min, Max: h.max}
	for i := 64; i >= 1; i-- {
		if c := h.neg[i]; c != 0 {
			// negative bucket i covers (-2^i, -2^(i-1)] == [1-2^i, 1-2^(i-1))
			s.Buckets = append(s.Buckets, Bucket{
				Lo:    1 - (int64(1) << uint(i)),
				Hi:    1 - (int64(1) << uint(i-1)),
				Count: c,
			})
		}
	}
	if h.zero != 0 {
		s.Buckets = append(s.Buckets, Bucket{Lo: 0, Hi: 1, Count: h.zero})
	}
	for i := 1; i <= 64; i++ {
		if c := h.pos[i]; c != 0 {
			s.Buckets = append(s.Buckets, Bucket{
				Lo:    int64(1) << uint(i-1),
				Hi:    int64(1) << uint(i),
				Count: c,
			})
		}
	}
	return s
}
