package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Schema identifies the single-run report encoding.
const Schema = "clustersim-prof/1"

// CauseCount counts the quanta attributed to one fast-path (in)eligibility
// cause.
type CauseCount struct {
	Cause  string `json:"cause"`
	Quanta int64  `json:"quanta"`
}

// Engagement summarizes fast-path eligibility over the run. Engagement is
// graded: a quantum is fully eligible (Q at or below every link's
// lookahead), partially engaged (some lookahead partitions loose, some
// tight), or ineligible.
type Engagement struct {
	// EligibleQuanta counts quanta with Q <= lookahead and no tap.
	EligibleQuanta int64 `json:"eligible_quanta"`
	// EligibleHostNS is the host time those quanta spanned.
	EligibleHostNS int64 `json:"eligible_host_ns"`
	// PartialQuanta counts partially engaged quanta: Q above the global
	// minimum latency but with at least one loose node under the per-link
	// partitioning; PartialHostNS is the host time they spanned.
	PartialQuanta int64 `json:"partial_quanta"`
	PartialHostNS int64 `json:"partial_host_ns"`
	// FastNodeQuanta sums fast-walkable nodes over quanta and NodeQuanta
	// the cluster size over quanta, so FastNodeQuanta/NodeQuanta is the
	// node-level engagement fraction of the run.
	FastNodeQuanta int64 `json:"fast_node_quanta"`
	NodeQuanta     int64 `json:"node_quanta"`
	// Causes breaks every quantum down by cause, sorted by cause name.
	Causes []CauseCount `json:"causes,omitempty"`
}

// PartitionLevel is one row of the partition-structure table: the
// lookahead-closed partitioning the cluster falls into for every quantum
// whose Q lies in one band of the latency matrix's distinct values.
type PartitionLevel struct {
	// MaxTightLatNS is the level: the largest tight-link latency. The
	// tight-link set — and so the whole structure — is exactly the links
	// with latency at or below it. Zero means fully loose.
	MaxTightLatNS int64 `json:"max_tight_lat_ns"`
	// Partitions counts the partitions (tight components plus loose
	// singletons); TightPartitions the multi-node components among them.
	Partitions      int `json:"partitions"`
	TightPartitions int `json:"tight_partitions"`
	// FastNodes counts the loose singletons walked on the fast path.
	FastNodes int `json:"fast_nodes"`
	// Quanta counts the quanta run at this structure.
	Quanta int64 `json:"quanta"`
	// TightLinks ranks the links binding partitions together, ascending by
	// latency, truncated; TightLinkCount has the full count.
	TightLinks     []LinkRef `json:"tight_links,omitempty"`
	TightLinkCount int64     `json:"tight_link_count,omitempty"`
}

// Totals is the run-wide host-time decomposition. For the deterministic
// engine ComputeNS+IdleNS reconciles exactly with Stats.HostBusy+HostIdle
// and RoutingNS+BarrierNS with Stats.HostBarrier.
type Totals struct {
	ComputeNS int64 `json:"compute_ns"`
	IdleNS    int64 `json:"idle_ns"`
	WaitNS    int64 `json:"wait_ns"`
	RoutingNS int64 `json:"routing_ns"`
	BarrierNS int64 `json:"barrier_ns"`
}

// NodeProfile is one node's host-time decomposition.
type NodeProfile struct {
	Node      int   `json:"node"`
	ComputeNS int64 `json:"compute_ns"`
	IdleNS    int64 `json:"idle_ns"`
	WaitNS    int64 `json:"wait_ns"`
}

// LinkProfile is one directed link's observed latency/slack accounting.
// Slack is frame latency minus the quantum size at send time.
type LinkProfile struct {
	Src            int   `json:"src"`
	Dst            int   `json:"dst"`
	Frames         int64 `json:"frames"`
	StaticLatNS    int64 `json:"static_lat_ns,omitempty"`
	LatencyMinNS   int64 `json:"lat_min_ns"`
	LatencyMaxNS   int64 `json:"lat_max_ns"`
	LatencySumNS   int64 `json:"lat_sum_ns"`
	SlackMinNS     int64 `json:"slack_min_ns"`
	NegSlackFrames int64 `json:"neg_slack_frames"`
}

// LinkRef names a directed link in a ranking.
type LinkRef struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	LatencyNS int64 `json:"lat_ns,omitempty"`
	SlackNS   int64 `json:"slack_ns,omitempty"`
	Frames    int64 `json:"frames,omitempty"`
}

// NamedHist attaches a stable name to a histogram snapshot.
type NamedHist struct {
	Name string   `json:"name"`
	Hist HistData `json:"hist"`
}

// Report is the canonical end-of-run profile artifact. It contains no
// floating-point fields and no maps; every slice has a deterministic order,
// so the JSON encoding is byte-for-byte reproducible whenever the underlying
// run is.
type Report struct {
	Schema      string `json:"schema"`
	Engine      string `json:"engine"`
	Nodes       int    `json:"nodes"`
	Policy      string `json:"policy"`
	LookaheadNS int64  `json:"lookahead_ns"`
	OutputQueue bool   `json:"output_queue"`
	// Complete is false when the run aborted before RunEnd (guest-time
	// limit or workload error); the profile then covers a prefix.
	Complete   bool  `json:"complete"`
	GuestNS    int64 `json:"guest_ns"`
	HostNS     int64 `json:"host_ns"`
	Quanta     int64 `json:"quanta"`
	Packets    int64 `json:"packets"`
	Stragglers int64 `json:"stragglers"`

	Engagement Engagement `json:"engagement"`
	Totals     Totals     `json:"totals"`

	PerNode []NodeProfile `json:"per_node,omitempty"`
	// Links lists every directed link that carried at least one frame,
	// sorted by (src, dst).
	Links []LinkProfile `json:"links,omitempty"`
	// LimitingLinks ranks observed links by minimum slack, ascending: the
	// links with the least lookahead headroom come first.
	LimitingLinks []LinkRef `json:"limiting_links,omitempty"`
	// MinLatencyLinks lists the directed links whose static latency ties
	// the global minimum — the links that gate the global fast-path
	// lookahead. Truncated to a fixed cap; MinLatencyTied has the full
	// count (a uniform fabric ties every pair).
	MinLatencyLinks []LinkRef `json:"min_latency_links,omitempty"`
	MinLatencyTied  int64     `json:"min_latency_tied,omitempty"`
	// Partitions is the partition-structure table: one row per lookahead
	// level the run's quanta actually hit, ascending. Empty when the engine
	// ran with scalar lookahead (or no lookahead at all).
	Partitions []PartitionLevel `json:"partitions,omitempty"`

	Hists []NamedHist `json:"hists,omitempty"`
}

// JSON renders the report in its canonical encoding: two-space indented,
// trailing newline, fields in declaration order.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Report contains only marshalable field types; this is unreachable.
		panic(fmt.Sprintf("prof: marshal report: %v", err))
	}
	return append(b, '\n')
}

// NodesCSV renders the per-node decomposition as CSV.
func (r *Report) NodesCSV() []byte {
	var b bytes.Buffer
	b.WriteString("node,compute_ns,idle_ns,wait_ns\n")
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "%d,%d,%d,%d\n", n.Node, n.ComputeNS, n.IdleNS, n.WaitNS)
	}
	return b.Bytes()
}

// LinksCSV renders the per-link slack accounting as CSV.
func (r *Report) LinksCSV() []byte {
	var b bytes.Buffer
	b.WriteString("src,dst,frames,static_lat_ns,lat_min_ns,lat_max_ns,lat_sum_ns,slack_min_ns,neg_slack_frames\n")
	for _, l := range r.Links {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			l.Src, l.Dst, l.Frames, l.StaticLatNS, l.LatencyMinNS, l.LatencyMaxNS, l.LatencySumNS, l.SlackMinNS, l.NegSlackFrames)
	}
	return b.Bytes()
}

// WriteFiles writes the report's canonical JSON to path and its CSV
// companions next to it (<base>.nodes.csv and <base>.links.csv, where
// <base> is path minus a .json suffix if present).
func (r *Report) WriteFiles(path string) error {
	if err := os.WriteFile(path, r.JSON(), 0o644); err != nil {
		return err
	}
	base := strings.TrimSuffix(path, ".json")
	if err := os.WriteFile(base+".nodes.csv", r.NodesCSV(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(base+".links.csv", r.LinksCSV(), 0o644)
}

// Load reads a single-run report from path.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("prof: parse %s: %v", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("prof: %s: unexpected schema %q (want %q)", path, r.Schema, Schema)
	}
	return &r, nil
}

// LinkName formats a directed link for human-readable output.
func LinkName(src, dst int) string {
	return strconv.Itoa(src) + "->" + strconv.Itoa(dst)
}
