package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SweepSchema identifies the multi-run report encoding.
const SweepSchema = "clustersim-prof-sweep/1"

// Sweep collects profilers across the runs of an experiment sweep. The
// experiments package creates one labelled profiler per run; Report then
// assembles a deterministically ordered multi-run artifact regardless of the
// order concurrent workers registered their runs in.
type Sweep struct {
	mu   sync.Mutex
	runs []sweepEntry
}

type sweepEntry struct {
	label string
	p     *Profiler
}

// NewSweep returns an empty sweep collector.
func NewSweep() *Sweep { return &Sweep{} }

// New registers and returns a fresh profiler for one labelled run. Safe for
// concurrent use.
func (s *Sweep) New(label string) *Profiler {
	p := New()
	s.mu.Lock()
	s.runs = append(s.runs, sweepEntry{label: label, p: p})
	s.mu.Unlock()
	return p
}

// SweepRun is one labelled run inside a SweepReport.
type SweepRun struct {
	Label  string  `json:"label"`
	Report *Report `json:"report"`
}

// SweepReport is the canonical multi-run artifact.
type SweepReport struct {
	Schema string     `json:"schema"`
	Runs   []SweepRun `json:"runs"`
}

// Report assembles the sweep artifact. Runs are sorted by label and, within
// a label, by their canonical JSON encoding; byte-identical duplicates of
// the same label (e.g. a memoized baseline re-run) collapse to one entry.
// Registration order — which depends on worker scheduling — therefore never
// leaks into the output.
func (s *Sweep) Report() *SweepReport {
	s.mu.Lock()
	entries := append([]sweepEntry(nil), s.runs...)
	s.mu.Unlock()

	type keyed struct {
		label string
		js    []byte
		rep   *Report
	}
	ks := make([]keyed, 0, len(entries))
	for _, e := range entries {
		rep := e.p.Report()
		ks = append(ks, keyed{label: e.label, js: rep.JSON(), rep: rep})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].label != ks[j].label {
			return ks[i].label < ks[j].label
		}
		return bytes.Compare(ks[i].js, ks[j].js) < 0
	})
	out := &SweepReport{Schema: SweepSchema, Runs: []SweepRun{}}
	for i, k := range ks {
		if i > 0 && ks[i-1].label == k.label && bytes.Equal(ks[i-1].js, k.js) {
			continue
		}
		out.Runs = append(out.Runs, SweepRun{Label: k.label, Report: k.rep})
	}
	return out
}

// JSON renders the sweep report in its canonical encoding.
func (r *SweepReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("prof: marshal sweep report: %v", err))
	}
	return append(b, '\n')
}

// LinksCSV renders every run's per-link accounting as one CSV with a
// leading label column.
func (r *SweepReport) LinksCSV() []byte {
	var b bytes.Buffer
	b.WriteString("label,src,dst,frames,static_lat_ns,lat_min_ns,lat_max_ns,lat_sum_ns,slack_min_ns,neg_slack_frames\n")
	for _, run := range r.Runs {
		for _, l := range run.Report.Links {
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				run.Label, l.Src, l.Dst, l.Frames, l.StaticLatNS, l.LatencyMinNS, l.LatencyMaxNS, l.LatencySumNS, l.SlackMinNS, l.NegSlackFrames)
		}
	}
	return b.Bytes()
}

// WriteFiles writes the sweep's canonical JSON to path and the combined
// links CSV next to it (<base>.links.csv).
func (r *SweepReport) WriteFiles(path string) error {
	if err := os.WriteFile(path, r.JSON(), 0o644); err != nil {
		return err
	}
	base := path
	if n := len(path); n > 5 && path[n-5:] == ".json" {
		base = path[:n-5]
	}
	return os.WriteFile(base+".links.csv", r.LinksCSV(), 0o644)
}

// LoadSweep reads a sweep report from path.
func LoadSweep(path string) (*SweepReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SweepReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("prof: parse %s: %v", path, err)
	}
	if r.Schema != SweepSchema {
		return nil, fmt.Errorf("prof: %s: unexpected schema %q (want %q)", path, r.Schema, SweepSchema)
	}
	return &r, nil
}

// DetectSchema reports which schema the JSON file at path carries, without
// fully decoding it.
func DetectSchema(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return "", fmt.Errorf("prof: parse %s: %v", path, err)
	}
	return probe.Schema, nil
}
