// Package prof is the sync-overhead attribution layer of the simulator: an
// optional per-quantum profiler that decomposes host time into per-node
// compute / idle / barrier-wait segments, attributes the controller's routing
// and barrier costs, tracks fast-path eligibility with a per-quantum disable
// cause, and keeps per-link slack accounting (frame latency minus the
// quantum — the lookahead headroom a per-link fast path would exploit).
//
// A nil *Profiler disables everything at zero cost: the engines guard every
// call site with a nil check, exactly like the obs.Observer hooks.
//
// Determinism contract: for the deterministic engine (cluster.Run) every
// value the profiler records is derived from simulated host/guest time, so
// the end-of-run Report is byte-identical across Workers settings — the
// classic event-queue path and the intra-quantum fast path feed the profiler
// the same numbers. The wall-clock parallel runner (cluster.RunParallel)
// feeds real elapsed time instead; its reports are measurements, not
// replayable artifacts, and say so via the Engine field.
//
// The per-quantum disable cause records *eligibility*, which is deterministic
// config+policy state: the output-queue tap (Net.Output) suppresses the fast
// path, a topology without a positive minimum latency yields no lookahead,
// and otherwise a quantum is eligible iff Q <= lookahead. The remaining gate
// — Workers < 1 selects the classic engine — is engine selection, not a
// property of the run's dynamics, so it is deliberately excluded from the
// report (which must not vary across worker counts); it is visible live via
// obs.Registry instead. Fault injection does NOT disengage the fast path.
package prof

import (
	"sort"
	"sync"

	"clustersim/internal/simtime"
)

// Cause classifies why a quantum was (in)eligible for the intra-quantum fast
// path.
type Cause int

const (
	// CauseEngaged marks an eligible quantum: Q <= lookahead with no tap.
	CauseEngaged Cause = iota
	// CauseQExceedsLookahead marks Q > lookahead: the policy grew the
	// quantum past the minimum network latency, so frames could arrive
	// inside the quantum.
	CauseQExceedsLookahead
	// CauseOutputTap marks a run with Net.Output set: the packet tap
	// observes frames in routing order, which the fast path reorders.
	CauseOutputTap
	// CauseNoLookahead marks a topology with no positive minimum latency
	// (zero-latency links admit same-instant cross-node causality).
	CauseNoLookahead
	// CausePartial marks a quantum with Q above the global minimum latency
	// but below some per-link bounds: the lookahead-closed partitioning
	// (DESIGN.md §11) leaves at least one loose node on the fast path while
	// tight partitions fall back to the event queue.
	CausePartial

	numCauses
)

// String returns the stable cause label used in reports.
func (c Cause) String() string {
	switch c {
	case CauseEngaged:
		return "engaged"
	case CauseQExceedsLookahead:
		return "q-exceeds-lookahead"
	case CauseOutputTap:
		return "output-queue-tap"
	case CauseNoLookahead:
		return "no-lookahead"
	case CausePartial:
		return "partially-engaged"
	}
	return "unknown"
}

// Grade describes one quantum's lookahead partition structure, computed by
// the engine from the per-link lookahead matrix. The zero value means the
// structure is unknown (scalar lookahead mode, a no-lookahead topology, or
// the output-queue tap) and engagement stays the scalar boolean.
type Grade struct {
	// Known is true when the engine derived a partitioning for the quantum.
	Known bool
	// Partitions is the total partition count (tight components plus loose
	// singletons); TightPartitions the multi-node components among them.
	Partitions      int
	TightPartitions int
	// FastNodes counts the loose singletons — the nodes the graded fast
	// path walks without the event queue.
	FastNodes int
	// MaxTightLat is the largest tight-link latency (the partitioning's
	// level); zero when the quantum is fully loose. The tight-link set is
	// exactly the links with latency <= MaxTightLat, so the value uniquely
	// identifies the partition structure.
	MaxTightLat simtime.Duration
	// TightLinks ranks the directed links binding partitions together,
	// ascending by latency, truncated; TightLinkCount is the full count.
	TightLinks     []LinkRef
	TightLinkCount int64
}

// Seg classifies a per-node host-time segment.
type Seg int

const (
	// SegBusy is detailed execution of workload/protocol code.
	SegBusy Seg = iota
	// SegIdle is the fast-forwarded simulation of a blocked guest. Idle
	// charges may be negative: a straggler that truncates or re-aims an
	// in-progress idle segment refunds part of a previous charge.
	SegIdle
)

// Metrics is the subset of obs.Registry the profiler uses for live export.
// Optional; nil disables live export.
type Metrics interface {
	SetGauge(name string, v int64)
	Add(name string, delta int64)
}

// RunMeta describes the run being profiled. Engines fill it in RunStart.
type RunMeta struct {
	// Engine is "deterministic" for cluster.Run (both the classic and the
	// fast path) and "parallel" for the wall-clock runner.
	Engine string
	// Nodes is the simulated cluster size.
	Nodes int
	// Policy names the quantum policy driving the run.
	Policy string
	// Lookahead is the global fast-path lookahead: the minimum frame
	// latency over all node pairs, zero if none exists.
	Lookahead simtime.Duration
	// OutputQueue is true when the packet tap (Net.Output) is set, which
	// suppresses the fast path for every quantum.
	OutputQueue bool
	// LinkLat probes the static minimum frame latency of a directed link,
	// used to rank which links gate the global lookahead. May be nil.
	LinkLat func(src, dst int) simtime.Duration
}

// QuantumStats carries one completed quantum's controller-side attribution.
type QuantumStats struct {
	// Span is the quantum's full host extent: barrier release to barrier
	// release.
	Span simtime.Duration
	// Routing is the host time the controller spent routing frames
	// (Packets x PacketHostCost in the deterministic engine).
	Routing simtime.Duration
	// Barrier is the residual synchronization cost (BarrierCost in the
	// deterministic engine; first-arrival to release in the parallel
	// runner).
	Barrier simtime.Duration
	// Packets counts frames routed during the quantum.
	Packets int
	// Stragglers counts late frames among them.
	Stragglers int
}

// nodeAcc accumulates one node's host-time decomposition.
type nodeAcc struct {
	busy simtime.Duration
	idle simtime.Duration
	wait simtime.Duration
}

// linkAcc accumulates one directed link's latency/slack observations.
type linkAcc struct {
	frames    int64
	latSum    simtime.Duration
	latMin    simtime.Duration
	latMax    simtime.Duration
	slackMin  simtime.Duration
	negFrames int64 // frames with negative slack (latency < Q at send time)
}

// Profiler accumulates attribution for one run. Safe for concurrent use (the
// parallel runner feeds it from node goroutines); the deterministic engine
// pays one uncontended mutex per hook.
type Profiler struct {
	// LiveMetrics, when set before the run, receives coarse live values
	// (fast-path eligibility gauge, minimum observed slack) on top of what
	// obs.Registry already collects on its own.
	LiveMetrics Metrics

	mu   sync.Mutex
	meta RunMeta

	nodes []nodeAcc
	links map[[2]int]*linkAcc

	// current quantum state
	curQ     simtime.Duration
	curCause Cause
	curFast  int // fast-walkable nodes this quantum

	quanta      int64
	causes      [numCauses]int64
	engagedHost simtime.Duration // Span summed over fully eligible quanta
	partialHost simtime.Duration // Span summed over partially engaged quanta

	// Graded (node-level) engagement: fastNodeQuanta sums the fast-walkable
	// node count over quanta, nodeQuanta the cluster size over quanta.
	fastNodeQuanta int64
	nodeQuanta     int64

	// partLevels accumulates quanta per partition structure, keyed by the
	// structure's level (its largest tight-link latency).
	partLevels map[simtime.Duration]*partLevelAcc

	totCompute simtime.Duration
	totIdle    simtime.Duration
	totWait    simtime.Duration
	totRouting simtime.Duration
	totBarrier simtime.Duration

	packets    int64
	stragglers int64

	hQuantum  *Hist // Q per quantum (ns)
	hPackets  *Hist // frames per quantum
	hWait     *Hist // per-node barrier wait per quantum (ns)
	hLatency  *Hist // per-frame latency (ns)
	hSlack    *Hist // per-frame slack = latency - Q (ns, signed)
	hPartWait *Hist // per-partition barrier wait per quantum (ns)

	slackMin    simtime.Duration
	haveSlack   bool
	minLinks    []LinkRef // static links tied at the global minimum latency
	minLinksAll int64     // total ties before truncation

	guestEnd simtime.Guest
	hostEnd  simtime.Host
	ended    bool
}

// New returns an empty profiler. Pass it via cluster.Config.Profiler (or
// ParallelConfig.Profiler); the engine calls RunStart.
func New() *Profiler {
	return &Profiler{
		links:      make(map[[2]int]*linkAcc),
		partLevels: make(map[simtime.Duration]*partLevelAcc),
		hQuantum:   &Hist{},
		hPackets:   &Hist{},
		hWait:      &Hist{},
		hLatency:   &Hist{},
		hSlack:     &Hist{},
		hPartWait:  &Hist{},
	}
}

// partLevelAcc accumulates the quanta spent at one partition structure.
type partLevelAcc struct {
	grade  Grade
	quanta int64
}

// maxMinLatencyLinks bounds the MinLatencyLinks listing: a uniform fabric
// ties every pair at the minimum, and listing N*(N-1) identical links helps
// nobody. MinLatencyTied preserves the full count.
const maxMinLatencyLinks = 64

// RunStart records run metadata and probes the static per-link latency
// floor. Called once by the engine before the first quantum.
func (p *Profiler) RunStart(meta RunMeta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta = meta
	if len(p.nodes) < meta.Nodes {
		p.nodes = append(p.nodes, make([]nodeAcc, meta.Nodes-len(p.nodes))...)
	}
	p.probeMinLinksLocked()
	if p.LiveMetrics != nil {
		p.LiveMetrics.SetGauge("fastpath_lookahead_ns", int64(meta.Lookahead))
	}
}

// probeMinLinksLocked finds the directed links whose static latency ties the
// global minimum — the links that gate the global fast-path lookahead.
func (p *Profiler) probeMinLinksLocked() {
	p.minLinks = nil
	p.minLinksAll = 0
	if p.meta.LinkLat == nil || p.meta.Nodes < 2 {
		return
	}
	min := simtime.Duration(-1)
	for s := 0; s < p.meta.Nodes; s++ {
		for d := 0; d < p.meta.Nodes; d++ {
			if s == d {
				continue
			}
			lat := p.meta.LinkLat(s, d)
			if lat <= 0 {
				continue
			}
			switch {
			case min < 0 || lat < min:
				min = lat
				p.minLinks = p.minLinks[:0]
				p.minLinksAll = 1
				p.minLinks = append(p.minLinks, LinkRef{Src: s, Dst: d, LatencyNS: int64(lat)})
			case lat == min:
				p.minLinksAll++
				if len(p.minLinks) < maxMinLatencyLinks {
					p.minLinks = append(p.minLinks, LinkRef{Src: s, Dst: d, LatencyNS: int64(lat)})
				}
			}
		}
	}
}

// BeginQuantum opens quantum accounting: it classifies fast-path eligibility
// for a quantum of size q, folds the quantum's partition grade into the
// graded-engagement accounting, and remembers q for slack computation.
func (p *Profiler) BeginQuantum(index int, q simtime.Duration, g Grade) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.curQ = q
	p.curFast = 0
	switch {
	case p.meta.OutputQueue:
		p.curCause = CauseOutputTap
	case p.meta.Lookahead <= 0:
		p.curCause = CauseNoLookahead
	case q <= p.meta.Lookahead:
		p.curCause = CauseEngaged
		p.curFast = p.meta.Nodes
	case g.Known && g.FastNodes > 0:
		p.curCause = CausePartial
		p.curFast = g.FastNodes
	default:
		p.curCause = CauseQExceedsLookahead
	}
	p.nodeQuanta += int64(p.meta.Nodes)
	p.fastNodeQuanta += int64(p.curFast)
	if g.Known {
		lv := p.partLevels[g.MaxTightLat]
		if lv == nil {
			lv = &partLevelAcc{grade: g}
			p.partLevels[g.MaxTightLat] = lv
		}
		lv.quanta++
	}
	if p.LiveMetrics != nil {
		var v int64
		if p.curCause == CauseEngaged {
			v = 1
		}
		p.LiveMetrics.SetGauge("fastpath_eligible", v)
		p.LiveMetrics.SetGauge("fastpath_fast_nodes", int64(p.curFast))
	}
}

// Segment charges host time d to node's busy or idle account. Idle charges
// may be negative (straggler truncation / re-aim refunds).
func (p *Profiler) Segment(node int, seg Seg, d simtime.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if node < 0 || node >= len(p.nodes) {
		return
	}
	switch seg {
	case SegBusy:
		p.nodes[node].busy += d
		p.totCompute += d
	case SegIdle:
		p.nodes[node].idle += d
		p.totIdle += d
	}
}

// NodeWait charges node's barrier wait for the current quantum: the host
// time between the node finishing its quantum and the barrier releasing
// everyone (last arrival plus synchronization costs).
func (p *Profiler) NodeWait(node int, d simtime.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	if node >= 0 && node < len(p.nodes) {
		p.nodes[node].wait += d
		p.totWait += d
	}
	p.hWait.Observe(int64(d))
}

// PartitionWait records the barrier wait of one lookahead partition for the
// current quantum: the host time between the partition's last member
// finishing and the global barrier releasing everyone. In the deterministic
// engine the value is derived from simulated time for every engine path, so
// it stays byte-identical across Workers settings; the parallel runner feeds
// real wall-clock waits.
func (p *Profiler) PartitionWait(d simtime.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p.hPartWait.Observe(int64(d))
}

// Frame records one routed frame on the directed link src->dst with the
// given ideal (pre-fault) latency. Slack is latency minus the current Q;
// negative slack means the frame could arrive within the quantum it was
// sent in — the link limits fast-path lookahead at this quantum size.
func (p *Profiler) Frame(src, dst int, lat simtime.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slack := lat - p.curQ
	k := [2]int{src, dst}
	l := p.links[k]
	if l == nil {
		l = &linkAcc{latMin: lat, latMax: lat, slackMin: slack} //simlint:hotalloc once per link on first touch, and only when profiling is enabled
		p.links[k] = l
	}
	l.frames++
	l.latSum += lat
	if lat < l.latMin {
		l.latMin = lat
	}
	if lat > l.latMax {
		l.latMax = lat
	}
	if slack < l.slackMin {
		l.slackMin = slack
	}
	if slack < 0 {
		l.negFrames++
	}
	p.hLatency.Observe(int64(lat))
	p.hSlack.Observe(int64(slack))
	if !p.haveSlack || slack < p.slackMin {
		p.haveSlack = true
		p.slackMin = slack
		if p.LiveMetrics != nil {
			p.LiveMetrics.SetGauge("prof_min_slack_ns", int64(slack))
		}
	}
}

// EndQuantum closes the quantum opened by BeginQuantum with the controller's
// attribution for it.
func (p *Profiler) EndQuantum(qs QuantumStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.quanta++
	p.causes[p.curCause]++
	switch p.curCause {
	case CauseEngaged:
		p.engagedHost += qs.Span
	case CausePartial:
		p.partialHost += qs.Span
	}
	p.totRouting += qs.Routing
	p.totBarrier += qs.Barrier
	p.packets += int64(qs.Packets)
	p.stragglers += int64(qs.Stragglers)
	p.hQuantum.Observe(int64(p.curQ))
	p.hPackets.Observe(int64(qs.Packets))
}

// RunEnd records the final clocks. Aborted runs never reach it; Report
// still works on a partial profile.
func (p *Profiler) RunEnd(guest simtime.Guest, host simtime.Host) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.guestEnd = guest
	p.hostEnd = host
	p.ended = true
}

// limitingLinksK bounds the LimitingLinks ranking.
const limitingLinksK = 16

// Report assembles the canonical end-of-run report. Every field is integer
// nanoseconds or a count; slices are deterministically ordered, so for the
// deterministic engine the JSON encoding is byte-identical across worker
// counts and engine paths.
func (p *Profiler) Report() *Report {
	p.mu.Lock()
	defer p.mu.Unlock()

	r := &Report{
		Schema:      Schema,
		Engine:      p.meta.Engine,
		Nodes:       p.meta.Nodes,
		Policy:      p.meta.Policy,
		LookaheadNS: int64(p.meta.Lookahead),
		OutputQueue: p.meta.OutputQueue,
		Complete:    p.ended,
		GuestNS:     int64(p.guestEnd),
		HostNS:      int64(p.hostEnd),
		Quanta:      p.quanta,
		Packets:     p.packets,
		Stragglers:  p.stragglers,
	}

	r.Engagement.EligibleQuanta = p.causes[CauseEngaged]
	r.Engagement.EligibleHostNS = int64(p.engagedHost)
	r.Engagement.PartialQuanta = p.causes[CausePartial]
	r.Engagement.PartialHostNS = int64(p.partialHost)
	r.Engagement.FastNodeQuanta = p.fastNodeQuanta
	r.Engagement.NodeQuanta = p.nodeQuanta
	for c := Cause(0); c < numCauses; c++ {
		if p.causes[c] == 0 {
			continue
		}
		r.Engagement.Causes = append(r.Engagement.Causes, CauseCount{Cause: c.String(), Quanta: p.causes[c]})
	}
	sort.Slice(r.Engagement.Causes, func(i, j int) bool {
		return r.Engagement.Causes[i].Cause < r.Engagement.Causes[j].Cause
	})

	r.Totals = Totals{
		ComputeNS: int64(p.totCompute),
		IdleNS:    int64(p.totIdle),
		WaitNS:    int64(p.totWait),
		RoutingNS: int64(p.totRouting),
		BarrierNS: int64(p.totBarrier),
	}

	for i, n := range p.nodes {
		r.PerNode = append(r.PerNode, NodeProfile{
			Node:      i,
			ComputeNS: int64(n.busy),
			IdleNS:    int64(n.idle),
			WaitNS:    int64(n.wait),
		})
	}

	keys := make([][2]int, 0, len(p.links))
	for k := range p.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		l := p.links[k]
		lp := LinkProfile{
			Src:            k[0],
			Dst:            k[1],
			Frames:         l.frames,
			LatencyMinNS:   int64(l.latMin),
			LatencyMaxNS:   int64(l.latMax),
			LatencySumNS:   int64(l.latSum),
			SlackMinNS:     int64(l.slackMin),
			NegSlackFrames: l.negFrames,
		}
		if p.meta.LinkLat != nil {
			lp.StaticLatNS = int64(p.meta.LinkLat(k[0], k[1]))
		}
		r.Links = append(r.Links, lp)
	}

	// LimitingLinks: the observed links with the least slack headroom —
	// the ones a per-link fast path would have to treat most carefully.
	limit := append([]LinkProfile(nil), r.Links...)
	sort.Slice(limit, func(i, j int) bool {
		if limit[i].SlackMinNS != limit[j].SlackMinNS {
			return limit[i].SlackMinNS < limit[j].SlackMinNS
		}
		if limit[i].Src != limit[j].Src {
			return limit[i].Src < limit[j].Src
		}
		return limit[i].Dst < limit[j].Dst
	})
	if len(limit) > limitingLinksK {
		limit = limit[:limitingLinksK]
	}
	for _, l := range limit {
		r.LimitingLinks = append(r.LimitingLinks, LinkRef{
			Src:       l.Src,
			Dst:       l.Dst,
			LatencyNS: l.LatencyMinNS,
			SlackNS:   l.SlackMinNS,
			Frames:    l.Frames,
		})
	}

	r.MinLatencyLinks = append([]LinkRef(nil), p.minLinks...)
	r.MinLatencyTied = p.minLinksAll

	// Partition-structure table, one row per observed lookahead level,
	// ascending (fully loose first, whole-cluster-tight last).
	lvls := make([]simtime.Duration, 0, len(p.partLevels))
	for k := range p.partLevels {
		lvls = append(lvls, k)
	}
	sort.Slice(lvls, func(i, j int) bool { return lvls[i] < lvls[j] })
	for _, k := range lvls {
		lv := p.partLevels[k]
		r.Partitions = append(r.Partitions, PartitionLevel{
			MaxTightLatNS:   int64(k),
			Partitions:      lv.grade.Partitions,
			TightPartitions: lv.grade.TightPartitions,
			FastNodes:       lv.grade.FastNodes,
			Quanta:          lv.quanta,
			TightLinks:      append([]LinkRef(nil), lv.grade.TightLinks...),
			TightLinkCount:  lv.grade.TightLinkCount,
		})
	}

	r.Hists = []NamedHist{
		{Name: "quantum_ns", Hist: p.hQuantum.Snapshot()},
		{Name: "packets_per_quantum", Hist: p.hPackets.Snapshot()},
		{Name: "node_wait_ns", Hist: p.hWait.Snapshot()},
		{Name: "frame_latency_ns", Hist: p.hLatency.Snapshot()},
		{Name: "frame_slack_ns", Hist: p.hSlack.Snapshot()},
		{Name: "partition_wait_ns", Hist: p.hPartWait.Snapshot()},
	}
	return r
}
