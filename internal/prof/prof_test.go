package prof

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"clustersim/internal/simtime"
)

func TestHistSignedBuckets(t *testing.T) {
	h := &Hist{}
	for _, v := range []int64{-5, -4, -1, 0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Min != -5 || s.Max != 1000 || s.SumNS != 996 {
		t.Fatalf("summary: %+v", s)
	}
	want := []Bucket{
		{Lo: -7, Hi: -3, Count: 2}, // -5, -4 in (-8,-4]
		{Lo: -1, Hi: 0, Count: 1},  // -1 in (-2,-1]
		{Lo: 0, Hi: 1, Count: 1},   // 0
		{Lo: 1, Hi: 2, Count: 1},   // 1
		{Lo: 2, Hi: 4, Count: 2},   // 2, 3
		{Lo: 512, Hi: 1024, Count: 1},
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets:\n got %+v\nwant %+v", s.Buckets, want)
	}
}

func TestCauseClassification(t *testing.T) {
	cases := []struct {
		name string
		meta RunMeta
		q    simtime.Duration
		want Cause
	}{
		{"engaged", RunMeta{Lookahead: 1000}, 1000, CauseEngaged},
		{"q-exceeds", RunMeta{Lookahead: 1000}, 1001, CauseQExceedsLookahead},
		{"tap", RunMeta{Lookahead: 1000, OutputQueue: true}, 10, CauseOutputTap},
		{"no-lookahead", RunMeta{Lookahead: 0}, 10, CauseNoLookahead},
	}
	for _, c := range cases {
		p := New()
		p.RunStart(c.meta)
		p.BeginQuantum(0, c.q, Grade{})
		p.EndQuantum(QuantumStats{})
		rep := p.Report()
		if len(rep.Engagement.Causes) != 1 || rep.Engagement.Causes[0].Cause != c.want.String() {
			t.Errorf("%s: causes = %+v, want 1x %q", c.name, rep.Engagement.Causes, c.want)
		}
		wantElig := int64(0)
		if c.want == CauseEngaged {
			wantElig = 1
		}
		if rep.Engagement.EligibleQuanta != wantElig {
			t.Errorf("%s: eligible = %d, want %d", c.name, rep.Engagement.EligibleQuanta, wantElig)
		}
	}
}

func TestGradedEngagement(t *testing.T) {
	p := New()
	p.RunStart(RunMeta{Engine: "deterministic", Nodes: 4, Policy: "fixed", Lookahead: 1000})
	// Fully engaged: Q at the global minimum, all partitions loose.
	p.BeginQuantum(0, 1000, Grade{Known: true, Partitions: 4, FastNodes: 4})
	p.EndQuantum(QuantumStats{Span: 100})
	// Partially engaged: one tight pair, two loose singletons.
	partial := Grade{
		Known: true, Partitions: 3, TightPartitions: 1, FastNodes: 2,
		MaxTightLat: 1500,
		TightLinks: []LinkRef{
			{Src: 0, Dst: 1, LatencyNS: 1500},
			{Src: 1, Dst: 0, LatencyNS: 1500},
		},
		TightLinkCount: 2,
	}
	p.BeginQuantum(1, 2000, partial)
	p.EndQuantum(QuantumStats{Span: 200})
	p.BeginQuantum(2, 2000, partial)
	p.EndQuantum(QuantumStats{Span: 300})
	// Whole cluster tight: Q above every link.
	p.BeginQuantum(3, 9000, Grade{Known: true, Partitions: 1, TightPartitions: 1, MaxTightLat: 5000, TightLinkCount: 12})
	p.EndQuantum(QuantumStats{Span: 400})
	p.RunEnd(10000, 1000)
	rep := p.Report()

	e := rep.Engagement
	if e.EligibleQuanta != 1 || e.PartialQuanta != 2 || e.PartialHostNS != 500 {
		t.Fatalf("engagement: %+v", e)
	}
	if e.NodeQuanta != 16 || e.FastNodeQuanta != 4+2+2 {
		t.Fatalf("node quanta: %+v", e)
	}
	wantCauses := []CauseCount{
		{Cause: "engaged", Quanta: 1},
		{Cause: "partially-engaged", Quanta: 2},
		{Cause: "q-exceeds-lookahead", Quanta: 1},
	}
	if !reflect.DeepEqual(e.Causes, wantCauses) {
		t.Fatalf("causes: %+v", e.Causes)
	}
	if len(rep.Partitions) != 3 {
		t.Fatalf("partition levels: %+v", rep.Partitions)
	}
	if rep.Partitions[0].MaxTightLatNS != 0 || rep.Partitions[0].FastNodes != 4 || rep.Partitions[0].Quanta != 1 {
		t.Fatalf("level 0: %+v", rep.Partitions[0])
	}
	lv := rep.Partitions[1]
	if lv.MaxTightLatNS != 1500 || lv.Quanta != 2 || lv.TightPartitions != 1 ||
		len(lv.TightLinks) != 2 || lv.TightLinks[0].Src != 0 {
		t.Fatalf("level 1500: %+v", lv)
	}
	if rep.Partitions[2].Partitions != 1 || rep.Partitions[2].TightLinkCount != 12 {
		t.Fatalf("level 5000: %+v", rep.Partitions[2])
	}
}

// fakeProfile drives a profiler through a tiny deterministic run.
func fakeProfile() *Profiler {
	p := New()
	p.RunStart(RunMeta{
		Engine: "deterministic", Nodes: 2, Policy: "fixed", Lookahead: 1000,
		LinkLat: func(s, d int) simtime.Duration {
			if s == 0 && d == 1 {
				return 1000
			}
			return 2000
		},
	})
	p.BeginQuantum(0, 500, Grade{})
	p.Segment(0, SegBusy, 400)
	p.Segment(1, SegIdle, 300)
	p.Frame(0, 1, 1000) // slack +500
	p.Frame(1, 0, 2000) // slack +1500
	p.NodeWait(0, 0)
	p.NodeWait(1, 100)
	p.EndQuantum(QuantumStats{Span: 600, Routing: 40, Barrier: 20, Packets: 2})
	p.BeginQuantum(1, 4000, Grade{})
	p.Segment(0, SegBusy, 900)
	p.Segment(1, SegIdle, -50) // straggler refund
	p.Frame(0, 1, 1000)        // slack -3000: limiting link
	p.NodeWait(0, 10)
	p.NodeWait(1, 0)
	p.EndQuantum(QuantumStats{Span: 4100, Routing: 20, Barrier: 20, Packets: 1, Stragglers: 1})
	p.RunEnd(4500, 4700)
	return p
}

func TestReportAttribution(t *testing.T) {
	rep := fakeProfile().Report()
	if rep.Schema != Schema || !rep.Complete {
		t.Fatalf("header: %+v", rep)
	}
	if rep.Quanta != 2 || rep.Packets != 3 || rep.Stragglers != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Engagement.EligibleQuanta != 1 || rep.Engagement.EligibleHostNS != 600 {
		t.Fatalf("engagement: %+v", rep.Engagement)
	}
	want := Totals{ComputeNS: 1300, IdleNS: 250, WaitNS: 110, RoutingNS: 60, BarrierNS: 40}
	if rep.Totals != want {
		t.Fatalf("totals: got %+v want %+v", rep.Totals, want)
	}
	if len(rep.PerNode) != 2 || rep.PerNode[0].ComputeNS != 1300 || rep.PerNode[1].IdleNS != 250 || rep.PerNode[1].WaitNS != 100 {
		t.Fatalf("per-node: %+v", rep.PerNode)
	}
	if len(rep.Links) != 2 {
		t.Fatalf("links: %+v", rep.Links)
	}
	l01 := rep.Links[0]
	if l01.Src != 0 || l01.Dst != 1 || l01.Frames != 2 || l01.SlackMinNS != -3000 || l01.NegSlackFrames != 1 || l01.StaticLatNS != 1000 {
		t.Fatalf("link 0->1: %+v", l01)
	}
	// The limiting ranking must put the negative-slack link first.
	if len(rep.LimitingLinks) != 2 || rep.LimitingLinks[0].Src != 0 || rep.LimitingLinks[0].Dst != 1 || rep.LimitingLinks[0].SlackNS != -3000 {
		t.Fatalf("limiting: %+v", rep.LimitingLinks)
	}
	// Exactly one directed link (0->1) holds the static minimum latency.
	if rep.MinLatencyTied != 1 || len(rep.MinLatencyLinks) != 1 || rep.MinLatencyLinks[0].LatencyNS != 1000 {
		t.Fatalf("min-latency links: tied=%d %+v", rep.MinLatencyTied, rep.MinLatencyLinks)
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	a := fakeProfile().Report().JSON()
	b := fakeProfile().Report().JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical profiles produced different JSON:\n%s\nvs\n%s", a, b)
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("canonical JSON must end with a newline")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := fakeProfile().Report()
	path := t.TempDir() + "/r.json"
	if err := rep.WriteFiles(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.JSON(), rep.JSON()) {
		t.Fatal("report did not round-trip through JSON")
	}
	if sch, err := DetectSchema(path); err != nil || sch != Schema {
		t.Fatalf("DetectSchema = %q, %v", sch, err)
	}
}

func TestSweepOrderIndependent(t *testing.T) {
	mk := func(labels []string) []byte {
		s := NewSweep()
		for _, l := range labels {
			p := s.New(l)
			p.RunStart(RunMeta{Engine: "deterministic", Nodes: 1, Policy: l})
			p.BeginQuantum(0, 10, Grade{})
			p.EndQuantum(QuantumStats{Span: 10})
			p.RunEnd(10, 12)
		}
		return s.Report().JSON()
	}
	a := mk([]string{"b/run", "a/run", "c/run"})
	b := mk([]string{"c/run", "b/run", "a/run"})
	if !bytes.Equal(a, b) {
		t.Fatal("sweep report depends on registration order")
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, a, 0o644); err != nil {
		t.Fatal(err)
	}
	sr, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 3 || sr.Runs[0].Label != "a/run" {
		t.Fatalf("sweep runs: %+v", sr.Runs)
	}
}

func TestSweepCollapsesIdenticalDuplicates(t *testing.T) {
	s := NewSweep()
	for i := 0; i < 3; i++ {
		p := s.New("same/label")
		p.RunStart(RunMeta{Engine: "deterministic", Nodes: 1, Policy: "p"})
		p.BeginQuantum(0, 10, Grade{})
		p.EndQuantum(QuantumStats{Span: 10})
		p.RunEnd(10, 12)
	}
	if got := s.Report(); len(got.Runs) != 1 {
		t.Fatalf("want 1 collapsed run, got %d", len(got.Runs))
	}
}
