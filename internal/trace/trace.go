// Package trace renders run traces as terminal charts: the packet-traffic
// charts (nodes × time, one mark per exchanged packet) and the logarithmic
// speedup-over-time charts of the paper's Figure 9, plus a quantum-duration
// chart that visualizes the adaptive algorithm "driving over speed bumps".
package trace

import (
	"fmt"
	"math"
	"strings"

	"clustersim/internal/cluster"
	"clustersim/internal/simtime"
)

// density glyphs from sparse to dense.
var shades = []byte{' ', '.', ':', '+', '*', '#'}

// TrafficChart renders the paper's Figure 9 left-hand charts: node IDs on
// the y axis, guest time on the x axis, and a vertical stroke connecting the
// source and destination of every packet, with character density encoding
// traffic volume.
func TrafficChart(packets []cluster.PacketRecord, nodes int, end simtime.Guest, width int) string {
	if width < 10 {
		width = 10
	}
	if end <= 0 {
		end = 1
	}
	rows := nodes
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, width)
	}
	for _, p := range packets {
		x := int(int64(p.SendGuest) * int64(width) / int64(end))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		lo, hi := p.Src, p.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		for y := lo; y <= hi && y < rows; y++ {
			grid[y][x]++
		}
	}
	// Normalize densities to glyphs.
	max := 1
	for _, row := range grid {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traffic: %d nodes × %v (each column ≈ %v)\n", nodes, end, simtime.Duration(int64(end)/int64(width)))
	for y := 0; y < rows; y++ {
		fmt.Fprintf(&b, "%3d |", y)
		for x := 0; x < width; x++ {
			v := grid[y][x]
			var g byte
			switch {
			case v == 0:
				g = shades[0]
			case max <= len(shades)-1:
				g = shades[v]
			default:
				idx := 1 + int(float64(len(shades)-2)*math.Log1p(float64(v))/math.Log1p(float64(max)))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				g = shades[idx]
			}
			b.WriteByte(g)
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// SpeedupSeries computes the instantaneous simulation speed of a traced run
// relative to a baseline rate, binned over guest time: the data behind the
// paper's Figure 9 right-hand charts. baselineRate is guest-ns simulated per
// host-ns of the ground-truth run (its GuestTime/HostTime).
func SpeedupSeries(quanta []cluster.QuantumRecord, baselineRate float64, bins int, end simtime.Guest) []float64 {
	if bins < 1 {
		bins = 1
	}
	if end <= 0 {
		end = 1
	}
	guestPer := make([]float64, bins)
	hostPer := make([]float64, bins)
	for _, q := range quanta {
		if q.Start >= end {
			continue
		}
		i := int(int64(q.Start) * int64(bins) / int64(end))
		if i >= bins {
			i = bins - 1
		}
		guestPer[i] += float64(q.Q)
		hostPer[i] += float64(q.HostEnd - q.HostStart)
	}
	out := make([]float64, bins)
	for i := range out {
		if hostPer[i] > 0 {
			out[i] = guestPer[i] / hostPer[i] / baselineRate
		}
	}
	return out
}

// LogChart renders a series as an ASCII chart with a logarithmic y axis,
// like the paper's Figure 9 speedup plots. Zero values are left blank.
func LogChart(series []float64, yMin, yMax float64, height int, label string) string {
	if height < 4 {
		height = 4
	}
	if yMin <= 0 {
		yMin = 1
	}
	if yMax <= yMin {
		yMax = yMin * 10
	}
	lmin, lmax := math.Log10(yMin), math.Log10(yMax)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log scale %.3g..%.3g)\n", label, yMin, yMax)
	for row := height - 1; row >= 0; row-- {
		lo := lmin + (lmax-lmin)*float64(row)/float64(height)
		hi := lmin + (lmax-lmin)*float64(row+1)/float64(height)
		// Y tick at the left edge.
		fmt.Fprintf(&b, "%7.1f |", math.Pow(10, lo))
		for _, v := range series {
			if v <= 0 {
				b.WriteByte(' ')
				continue
			}
			lv := math.Log10(v)
			switch {
			case lv >= lo && lv < hi:
				b.WriteByte('*')
			case lv >= hi && row == height-1:
				b.WriteByte('^') // clipped above
			case lv < lmin && row == 0:
				b.WriteByte('v') // clipped below
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("        +" + strings.Repeat("-", len(series)) + "\n")
	return b.String()
}

// QuantumSeries bins the quantum duration over guest time (mean per bin, in
// microseconds) — a direct visualization of Algorithm 1's decisions.
func QuantumSeries(quanta []cluster.QuantumRecord, bins int, end simtime.Guest) []float64 {
	if bins < 1 {
		bins = 1
	}
	if end <= 0 {
		end = 1
	}
	sum := make([]float64, bins)
	n := make([]int, bins)
	for _, q := range quanta {
		if q.Start >= end {
			continue
		}
		i := int(int64(q.Start) * int64(bins) / int64(end))
		if i >= bins {
			i = bins - 1
		}
		sum[i] += q.Q.Microseconds()
		n[i]++
	}
	out := make([]float64, bins)
	for i := range out {
		if n[i] > 0 {
			out[i] = sum[i] / float64(n[i])
		}
	}
	return out
}
