package trace

import (
	"strings"
	"testing"

	"clustersim/internal/cluster"
	"clustersim/internal/metrics"
	"clustersim/internal/simtime"
)

func TestTrafficChartShape(t *testing.T) {
	packets := []cluster.PacketRecord{
		{SendGuest: 0, Src: 0, Dst: 3},
		{SendGuest: simtime.Guest(500 * simtime.Microsecond), Src: 2, Dst: 1},
		{SendGuest: simtime.Guest(999 * simtime.Microsecond), Src: 3, Dst: 0},
	}
	s := TrafficChart(packets, 4, simtime.Guest(simtime.Millisecond), 40)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header + 4 node rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), s)
	}
	// The first packet spans nodes 0..3 in the leftmost column.
	for row := 1; row <= 4; row++ {
		cells := lines[row][strings.Index(lines[row], "|")+1:]
		if cells[0] == ' ' {
			t.Errorf("row %d missing the t=0 packet stroke:\n%s", row, s)
		}
	}
}

func TestTrafficChartEmpty(t *testing.T) {
	s := TrafficChart(nil, 2, 0, 20)
	if s == "" {
		t.Error("empty chart should still render axes")
	}
}

func TestTrafficChartClipsOutOfRange(t *testing.T) {
	packets := []cluster.PacketRecord{
		{SendGuest: simtime.Guest(2 * simtime.Millisecond), Src: 0, Dst: 1}, // past end
	}
	s := TrafficChart(packets, 2, simtime.Guest(simtime.Millisecond), 20)
	if !strings.Contains(s, "*") && !strings.Contains(s, ".") {
		t.Log("clipped packet rendered at the right edge or dropped — acceptable")
	}
}

func quantaFixture() []cluster.QuantumRecord {
	// 10 quanta of 100µs each: first half fast (10ms host), second half
	// slow (100ms host).
	var qs []cluster.QuantumRecord
	h := simtime.Host(0)
	for i := 0; i < 10; i++ {
		cost := simtime.Duration(10 * simtime.Millisecond)
		if i >= 5 {
			cost = 100 * simtime.Millisecond
		}
		qs = append(qs, cluster.QuantumRecord{
			Index:     i,
			Start:     simtime.Guest(i) * simtime.Guest(100*simtime.Microsecond),
			Q:         100 * simtime.Microsecond,
			HostStart: h,
			HostEnd:   h.Add(cost),
		})
		h = h.Add(cost)
	}
	return qs
}

func TestSpeedupSeries(t *testing.T) {
	qs := quantaFixture()
	end := simtime.Guest(simtime.Millisecond)
	baseRate := 100e3 / 100e6 // pretend ground truth: 100µs guest per 100ms host
	series := SpeedupSeries(qs, baseRate, 10, end)
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	// First half should show ~10x, second half ~1x.
	if series[0] < 9 || series[0] > 11 {
		t.Errorf("fast half speedup %v, want ≈10", series[0])
	}
	if series[9] < 0.9 || series[9] > 1.1 {
		t.Errorf("slow half speedup %v, want ≈1", series[9])
	}
}

func TestLogChartRendersSeries(t *testing.T) {
	s := LogChart([]float64{1, 2, 5, 10, 50, 100}, 1, 100, 6, "test")
	if !strings.Contains(s, "test") {
		t.Error("label missing")
	}
	if !strings.Contains(s, "*") {
		t.Error("no data points rendered")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 8 { // label + 6 rows + axis
		t.Errorf("expected 8 lines, got %d", len(lines))
	}
}

func TestLogChartClipping(t *testing.T) {
	s := LogChart([]float64{1000, 0.001}, 1, 100, 4, "clip")
	if !strings.Contains(s, "^") {
		t.Error("above-range value not marked clipped")
	}
	if !strings.Contains(s, "v") {
		t.Error("below-range value not marked clipped")
	}
}

func TestQuantumSeries(t *testing.T) {
	qs := quantaFixture()
	series := QuantumSeries(qs, 5, simtime.Guest(simtime.Millisecond))
	for i, v := range series {
		if v != 100 {
			t.Errorf("bin %d mean quantum %vµs, want 100", i, v)
		}
	}
}

func TestSeriesDegenerateInputs(t *testing.T) {
	if got := SpeedupSeries(nil, 1, 0, 0); len(got) != 1 {
		t.Error("degenerate SpeedupSeries should clamp to one bin")
	}
	if got := QuantumSeries(nil, -3, -1); len(got) != 1 {
		t.Error("degenerate QuantumSeries should clamp to one bin")
	}
}

func TestParetoChart(t *testing.T) {
	pts := []metrics.Point{
		{Name: "fast-sloppy", Err: 0.8, Speedup: 60},
		{Name: "accurate-slow", Err: 0.01, Speedup: 8},
		{Name: "dominated", Err: 0.9, Speedup: 7},
	}
	s := ParetoChart(pts, 40, 8)
	for _, want := range []string{"fast-sloppy", "accurate-slow", "dominated", "pareto", "accuracy error"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "◆") != 2 {
		t.Errorf("expected 2 front markers:\n%s", s)
	}
}

func TestParetoChartEmpty(t *testing.T) {
	if ParetoChart(nil, 40, 8) == "" {
		t.Error("empty chart should still say something")
	}
}
