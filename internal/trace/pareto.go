package trace

import (
	"fmt"
	"math"
	"strings"

	"clustersim/internal/metrics"
)

// ParetoChart renders the paper's Figure 8 as an ASCII scatter plot:
// accuracy error on the x axis, simulation speedup on a logarithmic y axis,
// points labelled by a letter with a legend, and Pareto-front members
// marked.
func ParetoChart(points []metrics.Point, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	if len(points) == 0 {
		return "(no points)\n"
	}

	maxErr := 0.0
	minSp, maxSp := math.Inf(1), 0.0
	for _, p := range points {
		if p.Err > maxErr {
			maxErr = p.Err
		}
		if p.Speedup > maxSp {
			maxSp = p.Speedup
		}
		if p.Speedup < minSp {
			minSp = p.Speedup
		}
	}
	if maxErr == 0 {
		maxErr = 0.01
	}
	if minSp <= 0 {
		minSp = 1
	}
	loLog := math.Log10(minSp) - 0.05
	hiLog := math.Log10(maxSp) + 0.05

	front := map[string]bool{}
	for _, p := range metrics.ParetoFront(points) {
		front[p.Name] = true
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	legend := &strings.Builder{}
	for i, p := range points {
		x := int(p.Err / maxErr * float64(width-1))
		y := height - 1 - int((math.Log10(p.Speedup)-loLog)/(hiLog-loLog)*float64(height-1))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		label := byte('a' + i%26)
		grid[y][x] = label
		mark := ""
		if front[p.Name] {
			mark = "  ◆ pareto"
		}
		fmt.Fprintf(legend, "  %c = %-28s err %6.2f%%  speedup %6.1fx%s\n",
			label, p.Name, p.Err*100, p.Speedup, mark)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "speedup (log %.3g..%.3g)\n", minSp, maxSp)
	for i, row := range grid {
		edge := "|"
		if i == 0 {
			edge = "^"
		}
		fmt.Fprintf(&b, "  %s%s\n", edge, string(row))
	}
	fmt.Fprintf(&b, "  +%s> accuracy error (0..%.1f%%)\n", strings.Repeat("-", width), maxErr*100)
	b.WriteString(legend.String())
	return b.String()
}
