package cluster

import (
	"reflect"
	"testing"

	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// A nil plan and an empty (fault-free) plan must produce identical results:
// the fault branches are pure pass-throughs when nothing is configured.
func TestNilAndEmptyPlanIdentical(t *testing.T) {
	cfg := testConfig(3, workloads.PingPong(20, 1000), fixed(100*simtime.Microsecond))
	cfg.TracePackets = true
	cfg.TraceQuanta = true
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &faults.Plan{Seed: 99}
	withEmpty, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, withEmpty) {
		t.Errorf("empty plan changed the result:\n%+v\n%+v", base.Stats, withEmpty.Stats)
	}
}

// Straggler snap-to-boundary semantics under duplication: with Dup == 1 and
// no jitter, every frame is delivered twice at identical ideal arrival
// times, so each copy must be classified identically — Deliveries,
// Stragglers, QuantumSnaps, and StragglerDelay all exactly double while
// Packets (frames routed) stays put.
func TestSnapSemanticsUnderDuplication(t *testing.T) {
	cfg := testConfig(2, workloads.PingPong(30, 1000), fixed(200*simtime.Microsecond))
	cfg.TracePackets = true
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Stragglers == 0 || base.Stats.QuantumSnaps == 0 {
		t.Fatalf("premise: PingPong at Q=200µs should produce snapped stragglers, got %+v", base.Stats)
	}

	cfg.Faults = &faults.Plan{Seed: 1, Default: faults.Link{Dup: 1}}
	dup, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, b := dup.Stats, base.Stats
	if s.Packets != b.Packets {
		t.Errorf("Packets changed under duplication: %d vs %d", s.Packets, b.Packets)
	}
	if s.Duplicated != b.Packets {
		t.Errorf("Duplicated = %d, want one per routed frame (%d)", s.Duplicated, b.Packets)
	}
	if s.Deliveries != 2*b.Deliveries {
		t.Errorf("Deliveries = %d, want double %d", s.Deliveries, b.Deliveries)
	}
	if s.Stragglers != 2*b.Stragglers {
		t.Errorf("Stragglers = %d, want double %d: each duplicate copy must count", s.Stragglers, b.Stragglers)
	}
	if s.QuantumSnaps != 2*b.QuantumSnaps {
		t.Errorf("QuantumSnaps = %d, want double %d", s.QuantumSnaps, b.QuantumSnaps)
	}
	if s.StragglerDelay != 2*b.StragglerDelay {
		t.Errorf("StragglerDelay = %v, want double %v", s.StragglerDelay, b.StragglerDelay)
	}

	// The packet trace must corroborate the aggregates copy by copy.
	stragglers, dups, delay := 0, 0, simtime.Duration(0)
	for _, p := range dup.Packets {
		if p.Duplicate {
			dups++
		}
		if p.Straggler {
			stragglers++
			delay += p.Arrival.Sub(p.Ideal)
		}
	}
	if stragglers != s.Stragglers || delay != s.StragglerDelay {
		t.Errorf("trace says %d stragglers / %v delay, stats say %d / %v",
			stragglers, delay, s.Stragglers, s.StragglerDelay)
	}
	if dups != s.Duplicated {
		t.Errorf("trace says %d duplicate copies, stats say %d", dups, s.Duplicated)
	}
}

// Dropped frames must not count as stragglers or deliveries — but they must
// still count toward the quantum's packet count so Algorithm 1's np==0 test
// sees the (lost) traffic.
func TestDropsDontCountAsStragglers(t *testing.T) {
	cfg := testConfig(4, workloads.Uniform(60, 1500, 20*simtime.Microsecond, 23), fixed(100*simtime.Microsecond))
	cfg.TraceQuanta = true
	cfg.Faults = &faults.Plan{Default: faults.Link{
		Down: []faults.Window{{Start: 0, End: simtime.GuestInfinity}},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Packets == 0 {
		t.Fatal("premise: the workload should have routed frames")
	}
	if s.Dropped != s.Packets {
		t.Errorf("Dropped = %d, want every routed frame (%d)", s.Dropped, s.Packets)
	}
	if s.Deliveries != 0 || s.Stragglers != 0 || s.QuantumSnaps != 0 || s.StragglerDelay != 0 || s.Exact != 0 {
		t.Errorf("dropped frames leaked into delivery stats: %+v", s)
	}
	// Quanta that carried only dropped frames still report their traffic.
	sawDroppedTraffic := false
	for _, q := range res.Quanta {
		if q.Packets > 0 {
			sawDroppedTraffic = true
		}
	}
	if !sawDroppedTraffic {
		t.Error("no quantum reported the dropped frames in Packets: Algorithm 1 would see np==0")
	}
}

// Identical configs with identical fault seeds replay bit-identically;
// changing only the seed redraws the outcomes.
func TestFaultSeedReplay(t *testing.T) {
	mk := func(seed uint64) *Result {
		cfg := testConfig(4, workloads.Uniform(60, 1500, 20*simtime.Microsecond, 23), fixed(100*simtime.Microsecond))
		cfg.TracePackets = true
		cfg.Faults = &faults.Plan{Seed: seed, Default: faults.Link{Loss: 0.3, Dup: 0.1, Jitter: 2 * simtime.Microsecond}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(5), mk(5)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed did not replay bit-identically")
	}
	c := mk(6)
	if a.Stats.Dropped == c.Stats.Dropped && a.Stats.Duplicated == c.Stats.Duplicated {
		t.Errorf("different seeds produced identical fault counts: %+v vs %+v", a.Stats, c.Stats)
	}
}

// Per-node slowdown at ground truth (Q <= T: no stragglers, so guest
// behaviour is unchanged) scales host costs exactly: factor 2 on every node
// doubles HostBusy and HostIdle.
func TestSlowdownScalesHostCosts(t *testing.T) {
	for _, workers := range []int{0, 2} {
		cfg := testConfig(2, workloads.PingPong(20, 1000), fixed(simtime.Microsecond))
		cfg.Workers = workers
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &faults.Plan{NodeSlowdown: map[int]float64{0: 2, 1: 2}}
		slow, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if slow.GuestTime != base.GuestTime {
			t.Errorf("workers=%d: slowdown changed guest time: %v vs %v", workers, slow.GuestTime, base.GuestTime)
		}
		if slow.Stats.HostBusy != 2*base.Stats.HostBusy {
			t.Errorf("workers=%d: HostBusy = %v, want double %v", workers, slow.Stats.HostBusy, base.Stats.HostBusy)
		}
		if slow.Stats.HostIdle != 2*base.Stats.HostIdle {
			t.Errorf("workers=%d: HostIdle = %v, want double %v", workers, slow.Stats.HostIdle, base.Stats.HostIdle)
		}
	}
}

// The fast path's full-engagement bound must be exactly netmodel.MinLatency
// in both lookahead modes — scalar probes it directly, matrix derives it as
// the matrix minimum. Output-queue models are excluded from the fast path
// before the probe, so the exclusion is structural, not a bound disagreement.
func TestFastPathBoundMatchesMinLatency(t *testing.T) {
	models := map[string]*netmodel.Model{
		"paper": netmodel.Paper(),
		"serialization": {
			NIC:    &netmodel.SimpleNIC{BaseLatency: simtime.Microsecond, BytesPerSecond: 1e9},
			Switch: &netmodel.StoreAndForwardSwitch{BytesPerSecond: 1e9},
		},
	}
	for name, m := range models {
		for _, mode := range []LookaheadMode{LookaheadMatrix, LookaheadScalar} {
			cfg := testConfig(4, workloads.Silent(10*simtime.Microsecond), fixed(simtime.Microsecond))
			cfg.Net = m
			cfg.Workers = 1
			cfg.Lookahead = mode
			e := &engine{cfg: cfg}
			e.initFast()
			if want := m.MinLatency(cfg.Nodes); e.eligLat != want {
				t.Errorf("%s/mode=%d: fast-path bound %v != MinLatency %v", name, mode, e.eligLat, want)
			}
			if wantLA := mode == LookaheadMatrix; (e.la != nil) != wantLA {
				t.Errorf("%s/mode=%d: lookahead matrix present = %v, want %v", name, mode, e.la != nil, wantLA)
			}
		}
	}

	// With an OutputQueue the fast path stands down entirely.
	out := netmodel.Paper()
	out.Output = &netmodel.OutputQueue{}
	cfg := testConfig(4, workloads.Silent(10*simtime.Microsecond), fixed(simtime.Microsecond))
	cfg.Net = out
	cfg.Workers = 1
	e := &engine{cfg: cfg}
	e.initFast()
	if e.eligLat != 0 || e.la != nil {
		t.Errorf("OutputQueue model engaged the fast path with bound %v (la=%v)", e.eligLat, e.la != nil)
	}
}

// Zero-cost-when-disabled benchmark pair: the nil-plan run is the baseline
// every PR must hold; the active-plan run prices the fault machinery.
func benchFaultRun(b *testing.B, plan *faults.Plan) {
	cfg := testConfig(4, workloads.Phases(3, 150*simtime.Microsecond, 16<<10), fixed(100*simtime.Microsecond))
	cfg.Faults = plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultsNilPlan(b *testing.B) { benchFaultRun(b, nil) }

func BenchmarkFaultsActivePlan(b *testing.B) {
	// Duplication and jitter, not loss: the Phases workload's collectives
	// block forever on a dropped frame (lossy runs need the reliable
	// transport), and drop-free plans still price every Decide branch.
	benchFaultRun(b, &faults.Plan{Seed: 7, Default: faults.Link{Dup: 0.02, Jitter: simtime.Microsecond}})
}
