package cluster

import (
	"testing"

	"clustersim/internal/netmodel"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// randLatModel builds a MatrixSwitch model with deterministic pseudo-random
// pair latencies drawn from a handful of distinct levels, plus a zero-latency
// NIC so the matrix IS the lookahead. Asymmetric on purpose: the closure must
// join on a tight link in either direction.
func randLatModel(stream *rng.Stream, nodes int) *netmodel.Model {
	levels := []simtime.Duration{
		500 * simtime.Nanosecond,
		simtime.Microsecond,
		2 * simtime.Microsecond,
		5 * simtime.Microsecond,
		20 * simtime.Microsecond,
	}
	lat := make([][]simtime.Duration, nodes)
	for s := range lat {
		lat[s] = make([]simtime.Duration, nodes)
		for d := range lat[s] {
			if s != d {
				lat[s][d] = levels[stream.Intn(len(levels))]
			}
		}
	}
	return &netmodel.Model{
		NIC:    &netmodel.SimpleNIC{BaseLatency: 0},
		Switch: &netmodel.MatrixSwitch{Lat: lat},
	}
}

// TestPartitioningIsLookaheadClosed is the safety property behind the
// partitioned fast path: for random matrices and every quantum band, no
// directed link with latency below Q may cross partitions, every fast node is
// a loose singleton, and every multi-node partition is connected through
// tight links alone.
func TestPartitioningIsLookaheadClosed(t *testing.T) {
	stream := rng.New(0xA11CE)
	for trial := 0; trial < 50; trial++ {
		nodes := 2 + stream.Intn(15)
		m := randLatModel(stream.Split(uint64(trial)), nodes)
		la := newLookahead(m, nodes)
		if la == nil {
			t.Fatalf("trial %d: positive matrix produced nil lookahead", trial)
		}
		if want := m.MinLatency(nodes); la.min != want {
			t.Fatalf("trial %d: matrix min %v != MinLatency %v", trial, la.min, want)
		}
		// Probe one Q inside every band: at each level (tight set excludes
		// the level itself), just above it, and far beyond the top.
		qs := []simtime.Duration{la.levels[0] / 2}
		for _, lv := range la.levels {
			qs = append(qs, lv, lv+1)
		}
		qs = append(qs, la.levels[len(la.levels)-1]*4)
		for _, q := range qs {
			p := la.partitionFor(q)
			checkClosure(t, la, p, q)
			if t.Failed() {
				t.Fatalf("trial %d nodes=%d Q=%v", trial, nodes, q)
			}
		}
	}
}

// checkClosure verifies the structural invariants of one partitioning.
func checkClosure(t *testing.T, la *lookahead, p *partitioning, q simtime.Duration) {
	t.Helper()
	n := la.n
	tight := func(s, d int) bool { return la.lat[s*n+d] < q }

	// No tight directed link crosses partitions, and maxTightLat is exactly
	// the tight/loose threshold.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if tight(s, d) != (la.lat[s*n+d] <= p.maxTightLat) {
				t.Errorf("link %d->%d: lat %v vs maxTightLat %v disagrees with Q %v",
					s, d, la.lat[s*n+d], p.maxTightLat, q)
			}
			if tight(s, d) && p.part[s] != p.part[d] {
				t.Errorf("tight link %d->%d (lat %v < Q %v) crosses partitions %d/%d",
					s, d, la.lat[s*n+d], q, p.part[s], p.part[d])
			}
		}
	}

	// Fast nodes are exactly the singletons with no tight link either way.
	fast := 0
	for i := 0; i < n; i++ {
		loose := true
		for j := 0; j < n && loose; j++ {
			if j != i && (tight(i, j) || tight(j, i)) {
				loose = false
			}
		}
		if p.fastNode[i] != loose {
			t.Errorf("node %d: fastNode=%v but loose=%v", i, p.fastNode[i], loose)
		}
		if loose {
			fast++
		}
	}
	if fast != p.fastNodes || len(p.loose) != fast {
		t.Errorf("fastNodes=%d loose=%d, want %d", p.fastNodes, len(p.loose), fast)
	}

	// Every multi-node partition is connected through undirected tight links
	// alone (BFS from its first member), and partition ids are canonical.
	seen := 0
	for pid, members := range p.tight {
		reach := map[int32]bool{members[0]: true}
		frontier := []int32{members[0]}
		for len(frontier) > 0 {
			var next []int32
			for _, u := range frontier {
				for v := 0; v < n; v++ {
					w := int32(v)
					if !reach[w] && (tight(int(u), v) || tight(v, int(u))) {
						reach[w] = true
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		for _, mbr := range members {
			if !reach[mbr] {
				t.Errorf("partition %d member %d unreachable through tight links", pid, mbr)
			}
		}
		if len(reach) != len(members) {
			t.Errorf("partition %d: tight closure has %d nodes, member list %d", pid, len(reach), len(members))
		}
		seen += len(members)
	}
	if seen+fast != n || p.nparts != len(p.tight)+fast {
		t.Errorf("partition counts: tight members %d + fast %d != %d nodes (nparts=%d)",
			seen, fast, n, p.nparts)
	}
}

// TestPartitionForCachesPerBand: two quanta in the same latency band must
// share one partitioning object; crossing a level must change it.
func TestPartitionForCachesPerBand(t *testing.T) {
	la := newLookahead(rackNet(), 8)
	if la == nil {
		t.Fatal("nil lookahead for rack model")
	}
	if len(la.levels) != 2 {
		t.Fatalf("rack matrix levels = %v, want 2 distinct", la.levels)
	}
	intra, inter := la.levels[0], la.levels[1]
	mid1 := la.partitionFor(intra + 1)
	mid2 := la.partitionFor(inter) // lat == Q is loose: same band
	if mid1 != mid2 {
		t.Error("same-band quanta built distinct partitionings")
	}
	if mid1.maxTightLat != intra || len(mid1.tight) != 2 || mid1.fastNodes != 0 {
		t.Errorf("mid-band partitioning: %+v", mid1)
	}
	full := la.partitionFor(intra) // Q == min: fully loose
	if full.fastNodes != 8 || full.nparts != 8 || full.maxTightLat != 0 {
		t.Errorf("fully loose partitioning: %+v", full)
	}
	one := la.partitionFor(inter + 1)
	if one.nparts != 1 || one.fastNodes != 0 || one.maxTightLat != inter {
		t.Errorf("fully tight partitioning: %+v", one)
	}
}

// TestLookaheadDegenerate: sub-2-node clusters and zero-lookahead topologies
// must disable the matrix entirely.
func TestLookaheadDegenerate(t *testing.T) {
	if la := newLookahead(netmodel.Paper(), 1); la != nil {
		t.Error("1-node cluster built a lookahead")
	}
	zero := &netmodel.Model{
		NIC:    &netmodel.SimpleNIC{BaseLatency: 0},
		Switch: &netmodel.PerfectSwitch{},
	}
	if la := newLookahead(zero, 4); la != nil {
		t.Error("zero-latency topology built a lookahead")
	}
}
