package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// recorder captures the full observer stream for equality checks.
type recorder struct {
	events []string
}

func (r *recorder) RunStart(i obs.RunInfo)  { r.events = append(r.events, fmt.Sprintf("start %+v", i)) }
func (r *recorder) RunEnd(s obs.RunSummary) { r.events = append(r.events, fmt.Sprintf("end %+v", s)) }
func (r *recorder) QuantumStart(i int, start simtime.Guest, q simtime.Duration, h simtime.Host) {
	r.events = append(r.events, fmt.Sprintf("q%d %v %v %v", i, start, q, h))
}
func (r *recorder) QuantumEnd(rec obs.QuantumRecord) {
	r.events = append(r.events, fmt.Sprintf("qe %+v", rec))
}
func (r *recorder) Packet(rec obs.PacketRecord) {
	r.events = append(r.events, fmt.Sprintf("pkt %+v", rec))
}
func (r *recorder) NodePhase(node int, ph obs.Phase, g0, g1 simtime.Guest, h0, h1 simtime.Host) {
	r.events = append(r.events, fmt.Sprintf("ph n%d %v %v %v %v %v", node, ph, g0, g1, h0, h1))
}

// fastCases spans the behaviors the fast path must preserve: lockstep
// traffic with equal-arrival ties (PingPong at 2 and 4 nodes), bursty
// compute/communicate phases, seeded irregular traffic, silence, loss
// injection, and an adaptive policy that moves in and out of the safe
// window mid-run.
type fastCase struct {
	name   string
	nodes  int
	w      workloads.Workload
	pol    func() quantum.Policy
	loss   float64
	faults *faults.Plan
	// net overrides the default uniform paper fabric — non-uniform
	// topologies exercise the partitioned (graded) fast path whenever Q
	// falls between latency levels.
	net *netmodel.Model
}

func fastCases() []fastCase {
	return []fastCase{
		{name: "pingpong-2", nodes: 2, w: workloads.PingPong(30, 1000), pol: fixed(simtime.Microsecond)},
		{name: "pingpong-4", nodes: 4, w: workloads.PingPong(20, 4000), pol: fixed(simtime.Microsecond)},
		{name: "phases-4", nodes: 4, w: workloads.Phases(3, 150*simtime.Microsecond, 32<<10), pol: fixed(simtime.Microsecond)},
		{name: "phases-adaptive-5", nodes: 5, w: workloads.Phases(3, 150*simtime.Microsecond, 16<<10),
			pol: adaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)},
		{name: "uniform-3", nodes: 3, w: workloads.Uniform(60, 2000, 30*simtime.Microsecond, 11), pol: fixed(simtime.Microsecond)},
		{name: "uniform-lossy-4", nodes: 4, w: workloads.Uniform(60, 1500, 20*simtime.Microsecond, 23), pol: fixed(simtime.Microsecond), loss: 0.3},
		{name: "silent-4", nodes: 4, w: workloads.Silent(300 * simtime.Microsecond), pol: fixed(simtime.Microsecond)},
		// A fault plan exercising loss, duplication, and delay jitter through
		// both engines: fault decisions are pure per-frame functions, so they
		// must not break worker invariance or fast/classic agreement.
		{name: "faulty-4", nodes: 4, w: workloads.Uniform(60, 1500, 20*simtime.Microsecond, 23), pol: fixed(simtime.Microsecond),
			faults: &faults.Plan{Seed: 7, Default: faults.Link{Loss: 0.1, Dup: 0.15, Jitter: 3 * simtime.Microsecond}}},
		// Per-node host slowdown shifts every host-time cost; results must
		// stay identical across worker counts and engine paths.
		{name: "slowdown-3", nodes: 3, w: workloads.PingPong(20, 1000), pol: fixed(simtime.Microsecond),
			faults: &faults.Plan{Seed: 3, NodeSlowdown: map[int]float64{1: 2.5}}},
		// Partitioned (graded) fast path: rack topology at a quantum between
		// the intra- and inter-rack levels — both racks tight internally,
		// loose to each other.
		{name: "rack-mid-8", nodes: 8, w: workloads.Uniform(120, 2000, 30*simtime.Microsecond, 11),
			pol: fixed(2 * simtime.Microsecond), net: rackNet()},
		// Mixed rack + WAN: one tight rack plus distant loose singletons, the
		// motivating geometry for per-link lookahead; run it clean and with a
		// fault plan, and with an adaptive policy that slides across all
		// three bands (fully loose, partial, fully tight).
		{name: "mixed-wan-8", nodes: 8, w: workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17),
			pol: fixed(2 * simtime.Microsecond), net: mixedWANNet(8)},
		{name: "mixed-wan-faulty-8", nodes: 8, w: workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17),
			pol: fixed(2 * simtime.Microsecond), net: mixedWANNet(8),
			faults: &faults.Plan{Seed: 9, Default: faults.Link{Loss: 0.05, Dup: 0.1, Jitter: 3 * simtime.Microsecond}}},
		{name: "mixed-wan-adaptive-8", nodes: 8, w: workloads.Uniform(120, 2000, 30*simtime.Microsecond, 19),
			pol: adaptive(simtime.Microsecond, 200*simtime.Microsecond, 1.1, 0.02), net: mixedWANNet(8)},
	}
}

// mixedWANNet puts the first four nodes in one 500ns rack and every other
// node 50µs away from everything: a tight rack plus loose WAN singletons.
func mixedWANNet(nodes int) *netmodel.Model {
	lat := make([][]simtime.Duration, nodes)
	for s := range lat {
		lat[s] = make([]simtime.Duration, nodes)
		for d := range lat[s] {
			switch {
			case s == d:
			case s < 4 && d < 4:
				lat[s][d] = 500 * simtime.Nanosecond
			default:
				lat[s][d] = 50 * simtime.Microsecond
			}
		}
	}
	m := netmodel.Paper()
	m.Switch = &netmodel.MatrixSwitch{Lat: lat}
	return m
}

func runFast(t *testing.T, c fastCase, workers int) (*Result, *recorder) {
	t.Helper()
	rec := &recorder{}
	cfg := testConfig(c.nodes, c.w, c.pol)
	if c.net != nil {
		cfg.Net = c.net
	}
	cfg.Workers = workers
	cfg.TraceQuanta = true
	cfg.TracePackets = true
	cfg.LossRate = c.loss
	cfg.LossSeed = 42
	cfg.Faults = c.faults
	cfg.Observer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", c.name, workers, err)
	}
	return res, rec
}

// The parallel fast path must be invisible in every output: for any worker
// count >= 1 the Result, trace slices, and the byte-for-byte observer
// stream are identical — workers only decide who walks a node, never what
// is published or in which order. Run with -race, this is also the data-race
// proof for the concurrent node walks.
func TestFastPathWorkerInvariance(t *testing.T) {
	for _, c := range fastCases() {
		t.Run(c.name, func(t *testing.T) {
			res1, rec1 := runFast(t, c, 1)
			fp1 := Fingerprint(res1)
			for _, workers := range []int{2, 4, 9} {
				resN, recN := runFast(t, c, workers)
				if !reflect.DeepEqual(res1, resN) {
					t.Errorf("Result differs between workers=1 and workers=%d:\n%+v\n%+v", workers, res1, resN)
				}
				// The canonical fingerprint is the fleet's definition of
				// "same outcome"; it must agree with DeepEqual here.
				if fpN := Fingerprint(resN); fpN != fp1 {
					t.Errorf("fingerprint differs between workers=1 and workers=%d: %s vs %s", workers, fp1, fpN)
				}
				if !reflect.DeepEqual(rec1.events, recN.events) {
					t.Errorf("observer stream differs between workers=1 and workers=%d", workers)
					for i := range rec1.events {
						if i < len(recN.events) && rec1.events[i] != recN.events[i] {
							t.Errorf("first divergence at event %d:\n  %s\n  %s", i, rec1.events[i], recN.events[i])
							break
						}
					}
				}
			}
		})
	}
}

// sortPackets canonicalizes a packet trace for multiset comparison; the
// order is the shared canonical one the result fingerprint uses.
func sortPackets(ps []PacketRecord) []PacketRecord {
	return SortPacketsCanonical(ps)
}

// Against the classic sequential DES (Workers == 0), the fast path must
// reproduce every number: results, metrics, aggregate stats, and the
// per-quantum records. The packet trace is compared as a multiset — the
// classic engine interleaves deliveries in host-event order while the fast
// path routes at the barrier in canonical (node, seq) order, but the
// recorded deliveries themselves are identical.
func TestFastPathMatchesClassicSemantics(t *testing.T) {
	for _, c := range fastCases() {
		t.Run(c.name, func(t *testing.T) {
			seq, _ := runFast(t, c, 0)
			par, _ := runFast(t, c, 2)

			if seq.GuestTime != par.GuestTime || seq.HostTime != par.HostTime {
				t.Errorf("times differ: classic (%v,%v) fast (%v,%v)",
					seq.GuestTime, seq.HostTime, par.GuestTime, par.HostTime)
			}
			if !reflect.DeepEqual(seq.NodeFinish, par.NodeFinish) {
				t.Errorf("node finish times differ:\n%v\n%v", seq.NodeFinish, par.NodeFinish)
			}
			if !reflect.DeepEqual(seq.Metrics, par.Metrics) {
				t.Errorf("metrics differ:\n%v\n%v", seq.Metrics, par.Metrics)
			}
			if seq.Stats != par.Stats {
				t.Errorf("stats differ:\nclassic %+v\nfast    %+v", seq.Stats, par.Stats)
			}
			if !reflect.DeepEqual(seq.Quanta, par.Quanta) {
				t.Error("quantum records differ")
				for i := range seq.Quanta {
					if i < len(par.Quanta) && seq.Quanta[i] != par.Quanta[i] {
						t.Errorf("first divergence at quantum %d:\n%+v\n%+v", i, seq.Quanta[i], par.Quanta[i])
						break
					}
				}
			}
			if !reflect.DeepEqual(sortPackets(seq.Packets), sortPackets(par.Packets)) {
				t.Errorf("packet traces differ as multisets (%d vs %d records)",
					len(seq.Packets), len(par.Packets))
			}
			// Classic vs fast must collapse to one canonical fingerprint —
			// the invariant the scenario fleet's goldens rely on.
			if fs, fp := Fingerprint(seq), Fingerprint(par); fs != fp {
				t.Errorf("fingerprint differs between classic and fast path: %s vs %s", fs, fp)
			}
		})
	}
}

// The fast path must actually engage when it should and stand down when it
// must: every ground-truth quantum (Q = 1µs <= T) is safe, a quantum beyond
// the minimum latency never is, and an adaptive policy crosses the boundary
// both ways mid-run.
func TestFastPathEngages(t *testing.T) {
	count := func(pol func() quantum.Policy, workers int) (fast, slow int) {
		w := workloads.Phases(3, 150*simtime.Microsecond, 16<<10)
		cfg := testConfig(4, w, pol)
		cfg.Workers = workers
		cfg.onQuantumMode = func(isFast bool) {
			if isFast {
				fast++
			} else {
				slow++
			}
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return
	}

	if fast, slow := count(fixed(simtime.Microsecond), 2); fast == 0 || slow != 0 {
		t.Errorf("ground truth: want all quanta fast, got fast=%d slow=%d", fast, slow)
	}
	if fast, slow := count(fixed(simtime.Millisecond), 2); fast != 0 || slow == 0 {
		t.Errorf("Q=1ms: want all quanta slow, got fast=%d slow=%d", fast, slow)
	}
	if fast, slow := count(adaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02), 2); fast == 0 || slow == 0 {
		t.Errorf("adaptive: want a mix of fast and slow quanta, got fast=%d slow=%d", fast, slow)
	}
	// Workers == 0 keeps the classic engine even at ground truth.
	if fast, slow := count(fixed(simtime.Microsecond), 0); fast != 0 || slow == 0 {
		t.Errorf("workers=0: want no fast quanta, got fast=%d slow=%d", fast, slow)
	}
}

// The partitioned fast path must actually engage partially on the mixed
// topology — otherwise the bit-identity cases above are vacuously passing on
// the classic path — and the graded Stats accounting must be identical for
// every worker count, including the classic engine.
func TestPartitionedPathEngagesPartially(t *testing.T) {
	run := func(workers int, mode LookaheadMode) *Result {
		cfg := testConfig(8, workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17), fixed(2*simtime.Microsecond))
		cfg.Net = mixedWANNet(8)
		cfg.Workers = workers
		cfg.Lookahead = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0, LookaheadMatrix)
	s := base.Stats
	if s.FastPartialQuanta == 0 || s.FastFullQuanta != 0 {
		t.Fatalf("Q=2µs mixed topology: want only partial engagement, got %+v", s)
	}
	// One tight 4-node rack + 4 loose WAN singletons, every quantum.
	if want := 4 * s.FastPartialQuanta; s.FastNodeQuanta != want {
		t.Errorf("FastNodeQuanta = %d, want %d", s.FastNodeQuanta, want)
	}
	if want := 5 * s.FastPartialQuanta; s.PartialPartitions != want {
		t.Errorf("PartialPartitions = %d, want %d", s.PartialPartitions, want)
	}
	for _, workers := range []int{1, 3} {
		if got := run(workers, LookaheadMatrix); !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: result differs from classic engine", workers)
		}
	}
}

// LookaheadScalar must reproduce the matrix mode's simulation outputs
// exactly — the mode only moves engine paths and the graded accounting (all
// zero under scalar).
func TestScalarLookaheadBitIdentity(t *testing.T) {
	run := func(workers int, mode LookaheadMode) *Result {
		cfg := testConfig(8, workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17),
			adaptive(simtime.Microsecond, 200*simtime.Microsecond, 1.1, 0.02))
		cfg.Net = mixedWANNet(8)
		cfg.Workers = workers
		cfg.Lookahead = mode
		cfg.TraceQuanta = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	matrix := run(2, LookaheadMatrix)
	scalar := run(2, LookaheadScalar)
	if scalar.Stats.FastPartialQuanta != 0 || scalar.Stats.PartialPartitions != 0 {
		t.Errorf("scalar mode reported graded engagement: %+v", scalar.Stats)
	}
	if matrix.Stats.FastPartialQuanta == 0 {
		t.Fatalf("adaptive mixed run never partially engaged: %+v", matrix.Stats)
	}
	// Null out the accounting that is allowed to differ; everything else —
	// including every quantum record — must match bit for bit.
	m, s := *matrix, *scalar
	m.Stats.FastFullQuanta, s.Stats.FastFullQuanta = 0, 0
	m.Stats.FastPartialQuanta, s.Stats.FastPartialQuanta = 0, 0
	m.Stats.FastNodeQuanta, s.Stats.FastNodeQuanta = 0, 0
	m.Stats.PartialPartitions, s.Stats.PartialPartitions = 0, 0
	if !reflect.DeepEqual(&m, &s) {
		t.Errorf("scalar vs matrix results differ:\nmatrix %+v\nscalar %+v", m.Stats, s.Stats)
	}
}
