package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/obs"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// TestEngineChromeTraceRoundTrip runs a real workload with the streaming
// tracer attached and verifies the output is valid Chrome trace-event JSON
// (the acceptance criterion for -trace-out).
func TestEngineChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewChromeTracer(&buf)
	w := workloads.Phases(3, 150*simtime.Microsecond, 16<<10)
	cfg := testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02))
	cfg.Observer = tracer
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}

	counts := map[string]int{}
	quantumB, quantumE := 0, 0
	for i, ev := range events {
		counts[ev.Ph]++
		switch ev.Ph {
		case "M", "X", "B", "E", "i", "C":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.PID == 0 && ev.Ph != "M" {
			t.Fatalf("event %d: zero pid", i)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %d: negative ts/dur (%v/%v)", i, ev.TS, ev.Dur)
		}
		if ev.Name == "quantum" && ev.Ph == "B" {
			quantumB++
		}
		if ev.Name == "quantum" && ev.Ph == "E" {
			quantumE++
		}
	}
	for _, ph := range []string{"M", "X", "B", "E", "i"} {
		if counts[ph] == 0 {
			t.Errorf("trace contains no %q events (%v)", ph, counts)
		}
	}
	if quantumB != res.Stats.Quanta || quantumE != res.Stats.Quanta {
		t.Errorf("quantum spans B=%d E=%d, want %d each", quantumB, quantumE, res.Stats.Quanta)
	}

	// The busy/idle segments on node tracks must account for exactly the
	// host time the engine charged: the trace is the Figure 5 breakdown.
	var busyUS, idleUS float64
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "busy":
			busyUS += ev.Dur
		case "idle":
			idleUS += ev.Dur
		}
	}
	if want := res.Stats.HostBusy.Microseconds(); !closeTo(busyUS, want) {
		t.Errorf("trace busy segments sum to %vµs, Stats.HostBusy = %vµs", busyUS, want)
	}
	if want := res.Stats.HostIdle.Microseconds(); !closeTo(idleUS, want) {
		t.Errorf("trace idle segments sum to %vµs, Stats.HostIdle = %vµs", idleUS, want)
	}
}

// closeTo tolerates float rounding from the ns → µs conversion.
func closeTo(got, want float64) bool {
	d := got - want
	return d < 1e-3 && d > -1e-3
}

// TestRegistryMatchesStats: the live registry must agree with the post-hoc
// Stats on every shared quantity.
func TestRegistryMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	w := workloads.Phases(4, 120*simtime.Microsecond, 24<<10)
	cfg := testConfig(6, w, fixed(70*simtime.Microsecond))
	cfg.Observer = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"quanta", s.Counters["quanta"], int64(res.Stats.Quanta)},
		{"deliveries", s.Counters["deliveries"], int64(res.Stats.Deliveries)},
		{"stragglers", s.Counters["stragglers"], int64(res.Stats.Stragglers)},
		{"quantum_snaps", s.Counters["quantum_snaps"], int64(res.Stats.QuantumSnaps)},
		{"silent_quanta", s.Counters["silent_quanta"], int64(res.Stats.SilentQuanta)},
		{"packets", s.Counters["packets"], int64(res.Stats.Packets)},
		{"host_busy_ns", s.Counters["host_busy_ns"], int64(res.Stats.HostBusy)},
		{"nodes_done", s.Counters["nodes_done"], int64(cfg.Nodes)},
		{"guest_ns", s.Gauges["guest_ns"], int64(res.GuestTime)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("registry %s = %d, Stats say %d", c.name, c.got, c.want)
		}
	}
	if d := s.Histograms["straggler_delay_ns"]; d.Sum != int64(res.Stats.StragglerDelay) {
		t.Errorf("straggler delay histogram sum %d, Stats say %d", d.Sum, int64(res.Stats.StragglerDelay))
	}
	var sent int64
	for _, n := range s.NodeSent {
		sent += n
	}
	if sent != int64(res.Stats.Deliveries) {
		t.Errorf("per-node sent counts sum to %d, want %d deliveries", sent, res.Stats.Deliveries)
	}
}

// TestObserverDoesNotPerturbRun: attaching observers must not change any
// simulation outcome.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	w := workloads.Phases(3, 200*simtime.Microsecond, 32<<10)
	mk := func() Config {
		return testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.04, 0.05))
	}
	plain, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	observed := mk()
	var buf bytes.Buffer
	observed.Observer = obs.Multi(obs.NewChromeTracer(&buf), obs.NewRegistry())
	got, err := Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GuestTime != got.GuestTime || plain.HostTime != got.HostTime || plain.Stats != got.Stats {
		t.Errorf("observer changed the run:\nplain    %+v\nobserved %+v", plain.Stats, got.Stats)
	}
}

// TestStatsFinalize covers the MinQ sentinel fix: a Stats with no quanta
// must finalize to zeroes instead of leaking a sentinel, and MinQ must track
// the first observed quantum.
func TestStatsFinalize(t *testing.T) {
	var st Stats
	st.finalize(0)
	if st.MinQ != 0 || st.MeanQ != 0 {
		t.Errorf("empty Stats finalized to MinQ=%v MeanQ=%v, want zeroes", st.MinQ, st.MeanQ)
	}

	var st2 Stats
	st2.observeQuantum(50*simtime.Microsecond, 1)
	st2.observeQuantum(10*simtime.Microsecond, 0)
	st2.observeQuantum(80*simtime.Microsecond, 2)
	st2.finalize(float64(140 * simtime.Microsecond))
	if st2.MinQ != 10*simtime.Microsecond {
		t.Errorf("MinQ = %v, want 10µs", st2.MinQ)
	}
	if st2.MaxQ != 80*simtime.Microsecond {
		t.Errorf("MaxQ = %v, want 80µs", st2.MaxQ)
	}
	if st2.SilentQuanta != 1 {
		t.Errorf("SilentQuanta = %d, want 1", st2.SilentQuanta)
	}
	sum := float64(140 * simtime.Microsecond)
	if want := simtime.Duration(sum / 3); st2.MeanQ != want {
		t.Errorf("MeanQ = %v, want %v", st2.MeanQ, want)
	}
}
