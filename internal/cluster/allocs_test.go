package cluster

import (
	"testing"

	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// The arena refactor's headline allocation guarantee (DESIGN.md §12): after
// warm-up, advancing a quantum costs zero heap allocations in the classic
// walk, and the batched router's only per-quantum allocations are the
// unavoidable per-message guest buffers. One run's setup (nodes, arenas,
// queues) does allocate, so the steady-state rate is isolated by differencing
// two runs that are identical except for their length: setup cancels and the
// remainder is pure per-quantum cost.

// allocsForRun measures the average allocations of one full Run of cfg and
// returns it together with the run's quantum count.
func allocsForRun(t *testing.T, cfg Config) (allocs float64, quanta int) {
	t.Helper()
	run := func() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		quanta = res.Stats.Quanta
	}
	return testing.AllocsPerRun(5, run), quanta
}

// TestClassicWalkZeroAllocsPerQuantum pins the classic event-queue walk at
// zero steady-state allocations per quantum: a 10x longer silent run must
// allocate exactly as much as a short one.
func TestClassicWalkZeroAllocsPerQuantum(t *testing.T) {
	// Q well above the Paper model's minimum latency keeps walks==nil off
	// the fast path, so every quantum runs the event-queue engine.
	const q = 50 * simtime.Microsecond
	short := testConfig(4, workloads.Silent(1*simtime.Millisecond), fixed(q))
	long := testConfig(4, workloads.Silent(10*simtime.Millisecond), fixed(q))

	aShort, qShort := allocsForRun(t, short)
	aLong, qLong := allocsForRun(t, long)
	if qLong <= qShort {
		t.Fatalf("long run (%d quanta) not longer than short run (%d quanta)", qLong, qShort)
	}
	perQuantum := (aLong - aShort) / float64(qLong-qShort)
	t.Logf("classic walk: short %v allocs / %d quanta, long %v allocs / %d quanta, steady state %.4f allocs/quantum",
		aShort, qShort, aLong, qLong, perQuantum)
	if perQuantum != 0 {
		t.Errorf("classic walk steady state allocates: %.4f allocs/quantum (want exactly 0)", perQuantum)
	}
}

// TestBatchedRouterAllocsPerQuantum pins the fast path's batched router:
// per-quantum allocations must come only from the per-message guest buffers
// (payload copy plus block-amortized frame/message carves), never from the
// engine's routing structures. The workloads differ only in phase count, so
// the per-quantum difference is the cost of extra communicating quanta.
func TestBatchedRouterAllocsPerQuantum(t *testing.T) {
	// Q=1µs is below the Paper model's minimum latency: every quantum is
	// provably safe, runs runQuantumFast and routes through routeBatch.
	const q = 1 * simtime.Microsecond
	mk := func(phases int) Config {
		cfg := testConfig(4, workloads.Phases(phases, 150*simtime.Microsecond, 32<<10), fixed(q))
		cfg.Workers = 1
		return cfg
	}
	aShort, qShort := allocsForRun(t, mk(2))
	aLong, qLong := allocsForRun(t, mk(8))
	if qLong <= qShort {
		t.Fatalf("long run (%d quanta) not longer than short run (%d quanta)", qLong, qShort)
	}
	perQuantum := (aLong - aShort) / float64(qLong-qShort)
	t.Logf("batched router: short %v allocs / %d quanta, long %v allocs / %d quanta, steady state %.4f allocs/quantum",
		aShort, qShort, aLong, qLong, perQuantum)
	// Six extra alltoall phases are 72 extra 8KB messages; each costs one
	// payload buffer plus 3/64ths of a block carve. Everything else — the
	// flight slab, the batch and delivery buffers, the event arena — must
	// be reused, so the steady state stays far below one alloc per quantum.
	if perQuantum >= 0.5 {
		t.Errorf("batched router steady state allocates %.4f allocs/quantum (want < 0.5: only per-message guest buffers)", perQuantum)
	}
}
