package cluster

import (
	"fmt"
	"testing"

	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// BenchmarkGroundTruthQuanta measures ground-truth (Q = 1µs) throughput in
// quanta per second. Workers=0 is the classic event-queue engine; Workers=1
// is the fast path walked inline (its single-core win: safe quanta skip the
// event queue entirely); higher counts add true parallelism on multi-core
// hosts.
func BenchmarkGroundTruthQuanta(b *testing.B) {
	w := workloads.Phases(3, 150*simtime.Microsecond, 32<<10)
	for _, workers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var quanta int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := testConfig(4, w, fixed(simtime.Microsecond))
				cfg.Workers = workers
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				quanta += int64(res.Stats.Quanta)
			}
			b.ReportMetric(float64(quanta)/b.Elapsed().Seconds(), "quanta/s")
		})
	}
}
