package cluster

import (
	"fmt"
	"testing"

	"clustersim/internal/netmodel"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// BenchmarkGroundTruthQuanta measures ground-truth (Q = 1µs) throughput in
// quanta per second. Workers=0 is the classic event-queue engine; Workers=1
// is the fast path walked inline (its single-core win: safe quanta skip the
// event queue entirely); higher counts add true parallelism on multi-core
// hosts.
// BenchmarkFastPathRack measures the partitioned fast path at a quantum
// between the latency levels, where the scalar gate falls back to the event
// queue for every node but the matrix gate still fast-walks the loose ones.
// Three geometries: "rack8" is a uniform two-rack fat-tree (both racks tight
// at mid-Q — no loose nodes, so matrix == scalar by construction; the honest
// negative control), "mixed8" is one tight rack plus four loose WAN
// singletons, and "mixed64" is the paper-scale motivating geometry — one
// tight rack plus 60 loose WAN nodes in the sync-overhead-dominated regime,
// where skipping the event queue for the loose majority pays the most.
func BenchmarkFastPathRack(b *testing.B) {
	scenarios := []struct {
		name  string
		nodes int
		net   func(nodes int) *netmodel.Model
		w     workloads.Workload
	}{
		{"rack8", 8, func(int) *netmodel.Model { return rackNet() },
			workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17)},
		{"mixed8", 8, mixedWANNet,
			workloads.Uniform(120, 2000, 30*simtime.Microsecond, 17)},
		{"mixed64", 64, mixedWANNet,
			workloads.Silent(200 * simtime.Microsecond)},
	}
	for _, sc := range scenarios {
		for _, mode := range []struct {
			name string
			m    LookaheadMode
		}{{"scalar", LookaheadScalar}, {"matrix", LookaheadMatrix}} {
			for _, workers := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/workers=%d", sc.name, mode.name, workers), func(b *testing.B) {
					var quanta int64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						cfg := testConfig(sc.nodes, sc.w, fixed(2*simtime.Microsecond))
						cfg.Net = sc.net(sc.nodes)
						cfg.Workers = workers
						cfg.Lookahead = mode.m
						res, err := Run(cfg)
						if err != nil {
							b.Fatal(err)
						}
						quanta += int64(res.Stats.Quanta)
					}
					b.ReportMetric(float64(quanta)/b.Elapsed().Seconds(), "quanta/s")
				})
			}
		}
	}
}

func BenchmarkGroundTruthQuanta(b *testing.B) {
	w := workloads.Phases(3, 150*simtime.Microsecond, 32<<10)
	for _, workers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var quanta int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := testConfig(4, w, fixed(simtime.Microsecond))
				cfg.Workers = workers
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				quanta += int64(res.Stats.Quanta)
			}
			b.ReportMetric(float64(quanta)/b.Elapsed().Seconds(), "quanta/s")
		})
	}
}
