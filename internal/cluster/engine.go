package cluster

import (
	"errors"
	"fmt"

	"clustersim/internal/eventq"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/pkt"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
	"clustersim/internal/workerpool"
)

// ErrGuestLimit is returned when a run exceeds Config.MaxGuest without all
// workloads finishing — usually a deadlocked workload.
var ErrGuestLimit = errors.New("cluster: guest time limit exceeded before workloads finished")

// event kinds in the host-time queue.
type evKind int32

const (
	evFrame evKind = iota // a frame reaches the controller/destination
	evStep                // a node's current segment ends; resume stepping
	evWake                // an idle node reaches its wake guest time
)

// event priorities: at identical host times, frames are routed before nodes
// resume, so a delivery racing a segment end is observed by the resuming
// node. Any fixed rule would do; this one minimizes spurious blocking.
const (
	priFrame = 0
	priWake  = 1
	priStep  = 2
)

// event is a queue entry: 12 bytes, all indices. Frame events carry only the
// flight-arena index (DESIGN.md §12) — the frame pointer, endpoints and
// timestamps live in the flight record; wake events read their guest target
// from the node arena's wakeG lane. The previous layout carried all of that
// inline (a 72-byte payload copied through every heap operation).
type event struct {
	kind evKind
	node int32 // evStep/evWake: the node to act on
	fi   int32 // evFrame: index into the quantum's flight arena
}

type nodePhase int32

const (
	phRunning nodePhase = iota // executing; a segment/step event is pending
	phIdle                     // blocked; a wake event is pending
	phAtLimit                  // reached the quantum boundary
)

// nodeArena holds every per-node engine field as parallel slices indexed by
// node — structure-of-arrays instead of the previous []*nodeState pointer
// farm. The layout is flat and trivially copyable (a snapshot is one copy()
// per lane, no pointer graph to chase beyond the guest nodes themselves),
// which is the substrate the roadmap's optimistic checkpoint/rollback engine
// needs; see DESIGN.md §12.
//
// Concurrency: during fast-path walks, worker goroutines touch only their
// own node's index in each lane; the engine's barrier provides the
// happens-before edge between quanta, exactly as it did for the per-node
// structs.
//
//simlint:snapshotroot one copy() per lane is the whole checkpoint contract
type nodeArena struct {
	node  []*guest.Node //simlint:snapshotsafe guest nodes are their own snapshot root; the arena lane only re-binds pointers on restore
	phase []nodePhase

	// Execution cursor: the host time corresponding to the node's position
	// at the *end* of the current segment. While a segment is in flight,
	// interpolate with the segment lanes below.
	hostNow []simtime.Host

	// Current segment (busy execution or idle wait) for interpolating the
	// node's guest position at an arbitrary host instant.
	inSeg     []bool
	segMode   []host.Mode
	segStartG []simtime.Guest
	segStartH []simtime.Host
	segEndG   []simtime.Guest
	segEndH   []simtime.Host

	wakeEv     []eventq.Handle // cancellable pending wake (zero = none)
	wakeG      []simtime.Guest // pending wake's guest target
	doneIdling []bool          // workload finished; idling to each barrier

	txFree     []simtime.Guest // guest time the NIC's transmitter frees up
	finishHost []simtime.Host  // host time the node reached the current barrier
	doneHost   []simtime.Host  // host time the workload finished
}

func newNodeArena(n int) nodeArena {
	return nodeArena{
		node:       make([]*guest.Node, n),
		phase:      make([]nodePhase, n),
		hostNow:    make([]simtime.Host, n),
		inSeg:      make([]bool, n),
		segMode:    make([]host.Mode, n),
		segStartG:  make([]simtime.Guest, n),
		segStartH:  make([]simtime.Host, n),
		segEndG:    make([]simtime.Guest, n),
		segEndH:    make([]simtime.Host, n),
		wakeEv:     make([]eventq.Handle, n),
		wakeG:      make([]simtime.Guest, n),
		doneIdling: make([]bool, n),
		txFree:     make([]simtime.Guest, n),
		finishHost: make([]simtime.Host, n),
		doneHost:   make([]simtime.Host, n),
	}
}

// flight is one frame in flight through the controller: the interned record
// an evFrame event (or a barrier batch entry) points at. Flights live in a
// per-quantum slab — every frame sent in a quantum is also routed in it, so
// the slab resets to length zero at each quantum start and reaches a steady
// state with no allocation.
type flight struct {
	f        *pkt.Frame
	src, dst int32
	tSend    simtime.Guest // guest time the frame left the source workload
	tD       simtime.Guest // exact simulated arrival time
}

// routed is one barrier-batch entry: a flight and the controller-arrival
// host time the classic engine would have dispatched it at.
type routed struct {
	h  simtime.Host
	fi int32
}

// pendDeliv is one surviving frame copy awaiting the batched per-destination
// push: the route pass classifies and records every copy in canonical order,
// then the delivery pass hands contiguous per-destination runs to the guest.
type pendDeliv struct {
	dst int32
	f   *pkt.Frame
	arr simtime.Guest
}

// engine runs one configuration.
type engine struct {
	cfg    Config
	hm     *host.Model
	na     nodeArena
	q      eventq.Queue[event]
	policy quantum.Policy
	// obs mirrors cfg.Observer; every hook site is guarded by a nil check so
	// an unobserved run builds no records and pays only the branch.
	obs obs.Observer
	// prof mirrors cfg.Profiler with the same nil-guard discipline.
	prof *prof.Profiler
	// portFree tracks, per destination, when its switch output port frees
	// up (guest time); used only when the net model has an OutputQueue.
	portFree []simtime.Guest

	// flights is the quantum's flight slab; batch, pend, delivCnt, delivOff
	// and delivSorted are the batched barrier router's reusable buffers
	// (DESIGN.md §12).
	flights     []flight
	batch       []routed
	pend        []pendDeliv
	delivCnt    []int32
	delivOff    []int32
	delivSorted []guest.Arrival
	// assembling: sendFrame ships frames into the barrier batch instead of
	// routing or queueing them. batching: deliver records surviving copies
	// in pend instead of pushing them to the guest one at a time.
	assembling bool
	batching   bool

	limit     simtime.Guest // current quantum end
	qStartH   simtime.Host  // barrier release that started the quantum
	npQuantum int           // frames routed this quantum
	strQuant  int           // stragglers this quantum
	lastEvtH  simtime.Host  // latest frame event host time this quantum

	doneCount int
	res       Result
	sumQ      float64
	firstErr  error

	// slow holds the per-node host slowdown factor from the fault plan, or
	// nil when every node runs at factor 1 — the nil check keeps the
	// fault-free path byte-identical to an engine without the feature.
	slow []float64

	// Intra-quantum fast path (DESIGN.md §7, §11). la is the per-link
	// lookahead structure: the probed node-pair latency matrix and the
	// lookahead-closed partitionings it induces per quantum size. It is
	// built for every configuration that admits lookahead (matrix mode, no
	// output tap, positive bounds) — the classic engine included — so
	// eligibility accounting, partition grades and the graded Stats fields
	// never depend on the Workers gate. Nil in scalar mode or when the
	// topology rules lookahead out.
	la *lookahead
	// eligLat is the scalar eligibility lookahead (la.min in matrix mode,
	// Net.MinLatency in scalar mode): any quantum Q <= eligLat is provably
	// free of intra-quantum arrivals cluster-wide. Zero when the
	// output-queue tap or the topology rules the fast path out entirely.
	eligLat simtime.Duration
	qElig   bool // current quantum's full (cluster-wide) eligibility
	nElig   int  // eligible quanta so far
	pool    *workerpool.Pool
	// walks is non-nil iff Workers >= 1 selected the fast-path engine; its
	// per-node buffers serve both the fully-engaged walk and the graded
	// (partitioned) quantum.
	walks []nodeWalk
	// walkFn is the per-node walk closure, built once so the per-quantum
	// pool dispatch stays allocation-free (it reads e.qStartH, which run()
	// sets to the quantum's barrier-release host time). looseFn is its
	// graded-quantum sibling, indexing through the current partitioning's
	// loose-node list.
	walkFn  func(int)
	looseFn func(int)
	// curPartit is the current quantum's partitioning (nil when unknown);
	// curPart aliases its node->partition map during a graded quantum's
	// tight-partition walks — the signal for sendFrame to defer
	// cross-partition frames to the barrier — and is nil at all other
	// times.
	curPartit *partitioning
	curPart   []int32
	// partFin is the per-partition last-finish scratch for the profiler's
	// partition-wait attribution, reused across quanta.
	partFin []simtime.Host
}

// sendRec buffers one frame sent during a fast-path walk, with the host and
// guest instants the classic engine would have seen at the send.
type sendRec struct {
	f     *pkt.Frame
	tSend simtime.Guest
	h     simtime.Host
}

// phaseRec buffers one NodePhase observer hook emitted during a walk.
type phaseRec struct {
	phase  obs.Phase
	g0, g1 simtime.Guest
	h0, h1 simtime.Host
}

// defEvent buffers one fully-computed cross-partition flight that a graded
// quantum defers to the barrier, with the controller-arrival host time the
// classic engine would have dispatched it at.
type defEvent struct {
	h  simtime.Host
	fi int32
}

// nodeWalk collects everything a fast-path node walk must publish at the
// barrier: sends to route, observer hooks to replay, and the node's
// contributions to global counters. Node-local state (finishHost, doneHost,
// phase, ...) is written straight to the node arena, which the walking
// worker owns for the duration of the quantum. Buffers are reused across
// quanta. During graded quanta the defs buffer additionally holds a tight
// node's deferred cross-partition flights.
type nodeWalk struct {
	sends  []sendRec
	phases []phaseRec
	defs   []defEvent
	busy   simtime.Duration
	idle   simtime.Duration
	done   bool
	err    error
}

// Run executes the configuration and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:    cfg,
		hm:     host.NewModel(cfg.Host),
		policy: cfg.Policy(),
		obs:    cfg.Observer,
		prof:   cfg.Profiler,
	}
	e.hm.Reserve(cfg.Nodes)
	defer e.shutdown()
	e.na = newNodeArena(cfg.Nodes)
	e.portFree = make([]simtime.Guest, cfg.Nodes)
	e.delivCnt = make([]int32, cfg.Nodes)
	e.delivOff = make([]int32, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		prog := cfg.Program(i, cfg.Nodes)
		if prog == nil {
			return nil, fmt.Errorf("cluster: nil program for rank %d", i)
		}
		e.na.node[i] = guest.NewNode(i, cfg.Nodes, cfg.Guest, prog)
	}
	if fp := cfg.Faults; fp != nil && fp.HasSlowdown() {
		e.slow = make([]float64, cfg.Nodes)
		for i := range e.slow {
			e.slow[i] = fp.Slowdown(i)
		}
	}
	e.initFast()
	e.res.PolicyName = e.policy.Name()
	if err := e.run(); err != nil {
		return nil, err
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}
	return &e.res, nil
}

func (e *engine) shutdown() {
	for _, n := range e.na.node {
		if n != nil {
			n.Shutdown()
		}
	}
	if e.pool != nil {
		e.pool.Close()
	}
}

// initFast decides whether the configuration admits the intra-quantum
// parallel fast path and, if so, precomputes its safety bounds and pool.
//
// The bounds come from the per-link lookahead matrix — every pair probed
// with the cheapest possible frame (netmodel.MinProbe), generalizing the
// paper's scalar T — or, in scalar mode, from Net.MinLatency alone.
// Configurations with switch output-port contention (Net.Output) are
// excluded before the probe: the port-free state must be updated in the
// exact order the controller observes frames, which only the sequential
// event queue reproduces.
func (e *engine) initFast() {
	// The eligibility lookahead is probed for every configuration — the
	// classic engine included — so per-quantum eligibility accounting never
	// depends on the Workers gate.
	if e.cfg.Net.Output == nil {
		if e.cfg.Lookahead == LookaheadScalar {
			e.eligLat = e.cfg.Net.MinLatency(e.cfg.Nodes)
		} else if e.la = newLookahead(e.cfg.Net, e.cfg.Nodes); e.la != nil {
			e.eligLat = e.la.min
		}
	}
	if e.cfg.Workers < 1 || e.eligLat <= 0 {
		return
	}
	e.walks = make([]nodeWalk, e.cfg.Nodes)
	e.walkFn = func(i int) { e.walkNode(i, &e.walks[i], e.qStartH) }
	e.looseFn = func(k int) {
		i := int(e.curPartit.loose[k])
		e.walkNode(i, &e.walks[i], e.qStartH)
	}
	if w := e.cfg.Workers; w >= 2 {
		if w > e.cfg.Nodes {
			w = e.cfg.Nodes
		}
		e.pool = workerpool.New(w)
	}
}

func (e *engine) run() error {
	var start simtime.Guest
	var hostNow simtime.Host
	Q := e.policy.First()
	if Q <= 0 {
		return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", e.policy.Name(), Q)
	}
	if e.obs != nil {
		e.obs.RunStart(obs.RunInfo{
			Nodes:    e.cfg.Nodes,
			Policy:   e.policy.Name(),
			MaxGuest: e.cfg.MaxGuest,
		})
	}
	if e.prof != nil {
		e.prof.RunStart(prof.RunMeta{
			Engine:      "deterministic",
			Nodes:       e.cfg.Nodes,
			Policy:      e.policy.Name(),
			Lookahead:   e.eligLat,
			OutputQueue: e.cfg.Net.Output != nil,
			LinkLat: func(src, dst int) simtime.Duration {
				return e.cfg.Net.FrameLatency(netmodel.MinProbe(), src, dst)
			},
		})
	}

	nodes := e.cfg.Nodes
	for qi := 0; ; qi++ {
		e.limit = start.Add(Q)
		e.qStartH = hostNow
		e.npQuantum = 0
		e.strQuant = 0
		e.lastEvtH = hostNow
		e.flights = e.flights[:0]
		e.batch = e.batch[:0]
		if e.obs != nil {
			e.obs.QuantumStart(qi, start, Q, hostNow)
		}
		e.qElig = e.eligLat > 0 && Q <= e.eligLat
		if e.qElig {
			e.nElig++
		}
		// The quantum's lookahead partitioning (nil in scalar mode or
		// without lookahead). Both the accounting below and the execution
		// choice derive from it, but the accounting is pure (Q, lookahead)
		// state shared verbatim by every engine path, so Stats stay
		// bit-identical across Workers values.
		var part *partitioning
		if e.la != nil {
			part = e.la.partitionFor(Q)
		}
		e.curPartit = part
		switch {
		case e.qElig:
			e.res.Stats.FastFullQuanta++
			e.res.Stats.FastNodeQuanta += nodes
		case part != nil && part.fastNodes > 0:
			e.res.Stats.FastPartialQuanta++
			e.res.Stats.FastNodeQuanta += part.fastNodes
			e.res.Stats.PartialPartitions += part.nparts
		}
		if e.prof != nil {
			e.prof.BeginQuantum(qi, Q, part.grade())
		}

		// With Q at or below the minimum network latency, nothing sent in
		// this quantum can arrive inside it (the paper's ground-truth
		// argument), so the nodes are independent until the barrier and the
		// event queue is unnecessary: walk each node to the limit — in
		// parallel when Workers >= 2 — and route all frames at the barrier.
		// Above that bound, the per-link partitioning can still leave loose
		// nodes that are independent of everyone: they are walked the same
		// way while the tight partitions fall back to the event queue.
		full := e.walks != nil && e.qElig
		graded := e.walks != nil && !e.qElig && part != nil && part.fastNodes > 0
		if e.cfg.onQuantumMode != nil {
			e.cfg.onQuantumMode(full || graded)
		}
		switch {
		case full:
			e.runQuantumFast(hostNow)
		case graded:
			e.runQuantumGraded(hostNow, part)
		default:
			for i := 0; i < nodes; i++ {
				n := e.na.node[i]
				n.BeginQuantum(e.limit)
				e.na.phase[i] = phRunning
				e.na.hostNow[i] = hostNow
				e.na.inSeg[i] = false
				e.na.wakeEv[i] = eventq.Handle{}
				e.na.finishHost[i] = hostNow
				if n.Done() {
					// A finished workload's simulator idles through the
					// quantum (OS housekeeping only).
					e.idleTo(i, e.limit, hostNow)
					continue
				}
				e.q.PushPri(int64(hostNow), priStep, event{kind: evStep, node: int32(i)})
			}

			for e.q.Len() > 0 {
				ev := e.q.Pop()
				e.dispatch(simtime.Host(ev.Time), ev.Payload)
			}
		}

		// Barrier: wait for the slowest node and any late frames, pay the
		// barrier cost plus the controller's per-packet occupancy.
		maxH := e.lastEvtH
		for _, fh := range e.na.finishHost {
			maxH = simtime.MaxHost(maxH, fh)
		}
		barrierEnd := maxH.
			Add(e.cfg.Host.BarrierCost).
			Add(simtime.Duration(e.npQuantum) * e.cfg.Host.PacketHostCost)
		e.res.Stats.HostBarrier += barrierEnd.Sub(maxH)
		if e.prof != nil {
			// Per-node barrier wait: finishing the quantum until the last
			// arrival (the shared barrier+routing costs are attributed once,
			// below, not per node).
			for i := 0; i < nodes; i++ {
				e.prof.NodeWait(i, maxH.Sub(e.na.finishHost[i]))
			}
			e.profPartitionWaits(part, maxH)
			e.prof.EndQuantum(prof.QuantumStats{
				Span:       barrierEnd.Sub(hostNow),
				Routing:    simtime.Duration(e.npQuantum) * e.cfg.Host.PacketHostCost,
				Barrier:    e.cfg.Host.BarrierCost,
				Packets:    e.npQuantum,
				Stragglers: e.strQuant,
			})
		}

		e.recordQuantum(qi, start, Q, hostNow, maxH, barrierEnd)

		hostNow = barrierEnd
		start = e.limit

		if e.doneCount == nodes {
			break
		}
		if e.cfg.MaxGuest > 0 && start > e.cfg.MaxGuest {
			return fmt.Errorf("%w (reached %v)", ErrGuestLimit, start)
		}

		Q = e.policy.Next(quantum.Feedback{
			Packets:    e.npQuantum,
			Stragglers: e.strQuant,
			Now:        e.limit,
		})
		if Q <= 0 {
			return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", e.policy.Name(), Q)
		}
	}

	for i := 0; i < nodes; i++ {
		n := e.na.node[i]
		e.res.NodeFinish = append(e.res.NodeFinish, n.FinishedAt())
		e.res.Metrics = append(e.res.Metrics, n.Metrics())
		e.res.GuestTime = simtime.MaxGuest(e.res.GuestTime, n.FinishedAt())
		if d := e.na.doneHost[i]; simtime.Duration(d) > e.res.HostTime {
			e.res.HostTime = simtime.Duration(d)
		}
	}
	e.res.Stats.finalize(e.sumQ)
	if e.obs != nil {
		e.obs.RunEnd(obs.RunSummary{
			GuestTime:          e.res.GuestTime,
			HostEnd:            hostNow,
			Quanta:             e.res.Stats.Quanta,
			FastEligibleQuanta: e.nElig,
		})
	}
	if e.prof != nil {
		e.prof.RunEnd(e.res.GuestTime, hostNow)
	}
	return nil
}

func (e *engine) recordQuantum(qi int, start simtime.Guest, Q simtime.Duration, hStart, barrierStart, hEnd simtime.Host) {
	e.res.Stats.observeQuantum(Q, e.npQuantum)
	e.sumQ += float64(Q)
	if e.cfg.TraceQuanta || e.obs != nil {
		rec := QuantumRecord{
			Index:        qi,
			Start:        start,
			Q:            Q,
			Packets:      e.npQuantum,
			Stragglers:   e.strQuant,
			HostStart:    hStart,
			BarrierStart: barrierStart,
			HostEnd:      hEnd,
			FastEligible: e.qElig,
		}
		if e.cfg.TraceQuanta {
			e.res.Quanta = append(e.res.Quanta, rec)
		}
		if e.obs != nil {
			e.obs.QuantumEnd(rec)
		}
	}
}

//simlint:hotpath classic-walk quantum loop: every event of every quantum dispatches here
func (e *engine) dispatch(h simtime.Host, ev event) {
	switch ev.kind {
	case evStep:
		e.stepNode(int(ev.node), h)
	case evWake:
		i := int(ev.node)
		gTarget := e.na.wakeG[i]
		if e.obs != nil {
			// The idle segment's extent is only final here: deliveries may
			// have re-aimed it since idleTo, so it is reported at its end.
			e.obs.NodePhase(i, obs.PhaseIdle, e.na.segStartG[i], gTarget, e.na.segStartH[i], h)
		}
		e.na.wakeEv[i] = eventq.Handle{}
		e.na.inSeg[i] = false
		e.na.hostNow[i] = h
		e.na.node[i].WakeAt(gTarget)
		if e.na.doneIdling[i] {
			// The finished node reached the barrier.
			e.na.phase[i] = phAtLimit
			e.na.finishHost[i] = h
			return
		}
		e.na.phase[i] = phRunning
		e.stepNode(i, h)
	case evFrame:
		e.routeFlight(h, ev.fi)
	}
}

// stepNode drives a node's Step loop from host time h until the node blocks,
// starts a busy segment, reaches the limit, or finishes.
func (e *engine) stepNode(i int, h simtime.Host) {
	n := e.na.node[i]
	for {
		st := n.Step()
		switch st.Kind {
		case guest.StepBusy:
			cost := e.hostCost(i, st.From, st.To, host.Busy)
			e.res.Stats.HostBusy += cost
			if e.prof != nil {
				e.prof.Segment(i, prof.SegBusy, cost)
			}
			endH := h.Add(cost)
			e.na.inSeg[i] = true
			e.na.segMode[i] = host.Busy
			e.na.segStartG[i] = st.From
			e.na.segStartH[i] = h
			e.na.segEndG[i] = st.To
			e.na.segEndH[i] = endH
			e.na.hostNow[i] = endH
			if e.obs != nil {
				// Busy segments always run to completion, so the extent is
				// final at creation.
				e.obs.NodePhase(i, obs.PhaseBusy, st.From, st.To, h, endH)
			}
			e.q.PushPri(int64(endH), priStep, event{kind: evStep, node: int32(i)})
			return

		case guest.StepSend:
			e.sendFrame(i, h, st.To, st.Frame)
			// Sending costs no additional host time beyond the guest
			// overhead already charged; keep stepping.

		case guest.StepBlocked:
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, e.limit)
			if target <= st.To {
				// Blocked exactly at the quantum boundary.
				e.na.phase[i] = phAtLimit
				e.na.inSeg[i] = false
				e.na.finishHost[i] = h
				e.na.hostNow[i] = h
				return
			}
			e.idleTo(i, target, h)
			return

		case guest.StepLimit:
			e.na.phase[i] = phAtLimit
			e.na.inSeg[i] = false
			e.na.finishHost[i] = h
			e.na.hostNow[i] = h
			return

		case guest.StepDone:
			if st.Err != nil && e.firstErr == nil {
				e.firstErr = fmt.Errorf("cluster: rank %d: %w", i, st.Err) //simlint:hotalloc error path: fires at most once per node, at workload failure
			}
			e.doneCount++
			e.na.doneHost[i] = h
			if e.obs != nil {
				g := n.Clock()
				e.obs.NodePhase(i, obs.PhaseDone, g, g, h, h)
			}
			// The simulator keeps idling to the barrier.
			e.idleTo(i, e.limit, h)
			return
		}
	}
}

// idleTo puts the node into an idle segment from its current clock to guest
// time target, scheduling the wake event.
func (e *engine) idleTo(i int, target simtime.Guest, h simtime.Host) {
	n := e.na.node[i]
	from := n.Clock()
	if target < from {
		panic(fmt.Sprintf("cluster: node %d idling backwards %v -> %v", i, from, target))
	}
	cost := e.hostCost(i, from, target, host.Idle)
	e.res.Stats.HostIdle += cost
	if e.prof != nil {
		e.prof.Segment(i, prof.SegIdle, cost)
	}
	endH := h.Add(cost)
	e.na.phase[i] = phIdle
	e.na.inSeg[i] = true
	e.na.segMode[i] = host.Idle
	e.na.segStartG[i] = from
	e.na.segStartH[i] = h
	e.na.segEndG[i] = target
	e.na.segEndH[i] = endH
	e.na.hostNow[i] = endH
	e.na.doneIdling[i] = n.Done()
	e.na.wakeG[i] = target
	e.na.wakeEv[i] = e.q.PushPri(int64(endH), priWake, event{kind: evWake, node: int32(i)})
}

// sendFrame models the source NIC (transmit queueing + serialization),
// computes the exact simulated arrival time, and ships the frame to the
// controller in host time. In the classic engine the frame becomes an
// interned flight plus a queued 12-byte event dispatched at its
// controller-arrival host time. At the barrier (e.assembling) the flight
// joins the quantum's batch instead — every destination is already there,
// so dispatch order no longer matters and the queue round-trip is pure
// overhead. During a graded quantum's tight-partition walks
// (curPart != nil), frames crossing the current partition are deferred to
// the barrier: their destination lies across a loose link, so the arrival
// time is provably at or past the limit and routing them later is
// behavior-neutral (DESIGN.md §11).
func (e *engine) sendFrame(i int, h simtime.Host, tSend simtime.Guest, f *pkt.Frame) {
	src := i
	depart := simtime.MaxGuest(tSend, e.na.txFree[i])
	ser := e.cfg.Net.NIC.Serialization(f)
	depart = depart.Add(ser)
	e.na.txFree[i] = depart

	arrHost := h.Add(e.cfg.Host.PacketTransit)
	ship := func(dst int) { //simlint:hotalloc non-escaping closure: called and discarded inside sendFrame, stays on the stack
		fi := int32(len(e.flights))
		e.flights = append(e.flights, flight{ //simlint:hotalloc flight log grows to the per-quantum high-water mark once; length-reset each quantum
			f: f, src: int32(src), dst: int32(dst), tSend: tSend,
			tD: e.arrivalTime(f, src, dst, depart),
		})
		switch {
		case e.assembling:
			e.batch = append(e.batch, routed{h: arrHost, fi: fi}) //simlint:hotalloc assembly batch grows to its watermark once; length-reset each quantum
		case e.curPart != nil && e.curPart[dst] != e.curPart[src]:
			e.walks[src].defs = append(e.walks[src].defs, defEvent{h: arrHost, fi: fi}) //simlint:hotalloc deferred-event lane grows to its watermark once; length-reset each quantum
		default:
			e.q.PushPri(int64(arrHost), priFrame, event{kind: evFrame, fi: fi})
		}
	}
	if f.Dst.IsBroadcast() {
		for dst := 0; dst < e.cfg.Nodes; dst++ {
			if dst != src {
				ship(dst)
			}
		}
		return
	}
	dst := f.Dst.Node()
	if dst < 0 || dst >= e.cfg.Nodes {
		// A frame to an unknown MAC: the switch floods it nowhere (no
		// other ports in this cluster). Count it as routed traffic.
		e.npQuantum++
		e.res.Stats.Packets++
		return
	}
	ship(dst)
}

// arrivalTime computes the exact simulated arrival of a frame that left its
// source NIC at guest time depart, including switch output-port contention
// when the network models it. Contention state is updated in the order the
// controller observes the frames — exactly what the paper's centralized
// network timing module would do.
func (e *engine) arrivalTime(f *pkt.Frame, src, dst int, depart simtime.Guest) simtime.Guest {
	out := e.cfg.Net.Output
	if out == nil {
		return depart.Add(e.cfg.Net.PostTxLatency(f, src, dst))
	}
	atPort := depart.Add(e.cfg.Net.PreQueueLatency(f, src, dst))
	start := simtime.MaxGuest(atPort, e.portFree[dst])
	e.portFree[dst] = start.Add(out.Serialization(f))
	return e.portFree[dst].Add(e.cfg.Net.PostQueueLatency(f))
}

// hostCost is the host.Model cost scaled by the node's fault-plan slowdown
// factor; with no slowdowns (slow == nil) it is the model cost verbatim.
func (e *engine) hostCost(id int, from, to simtime.Guest, mode host.Mode) simtime.Duration {
	c := e.hm.HostCost(id, from, to, mode)
	if e.slow != nil {
		c = c.Scale(e.slow[id])
	}
	return c
}

// guestPos returns node i's guest position at host time h.
func (e *engine) guestPos(i int, h simtime.Host) simtime.Guest {
	if !e.na.inSeg[i] {
		return e.na.node[i].Clock()
	}
	if h >= e.na.segEndH[i] {
		return e.na.segEndG[i]
	}
	if h <= e.na.segStartH[i] {
		return e.na.segStartG[i]
	}
	elapsed := h.Sub(e.na.segStartH[i])
	if e.slow != nil {
		// A slowed node burns factor-times the host time per unit of guest
		// progress; interpolate with the unscaled elapsed time.
		elapsed = elapsed.Scale(1 / e.slow[i])
	}
	return e.hm.GuestAt(i, e.na.segStartG[i], elapsed, e.na.segMode[i], e.na.segEndG[i])
}

// routeFlight is the controller receiving one flight at host time h: it
// counts the frame toward the quantum's traffic (drops included, so
// Algorithm 1's np==0 test still sees lost traffic), applies
// loss/duplication/jitter faults, and delivers the surviving copies per the
// paper's three cases. Every path funnels through here — the classic event
// queue dispatches it at the flight's controller-arrival host time, the
// batched barrier router calls it in canonical order — so fault outcomes,
// which are pure per-frame functions, cannot differ between paths.
func (e *engine) routeFlight(h simtime.Host, fi int32) {
	fl := e.flights[fi]
	e.npQuantum++
	e.res.Stats.Packets++
	if h > e.lastEvtH {
		e.lastEvtH = h
	}
	if e.prof != nil {
		// Slack accounting uses the ideal (pre-fault) arrival: fl.tD is not
		// yet jittered here, and every engine path routes the same flights
		// with the same (tSend, tD), so the per-link accumulators — which
		// are order-independent — match across paths exactly.
		e.prof.Frame(int(fl.src), int(fl.dst), fl.tD.Sub(fl.tSend))
	}
	if e.cfg.LossRate > 0 &&
		rng.HashFloat01(e.cfg.LossSeed, fl.f.ID, uint64(fl.dst)) < e.cfg.LossRate {
		e.res.Stats.Dropped++
		return
	}
	if fp := e.cfg.Faults; fp != nil {
		d := fp.Decide(fl.f.ID, int(fl.src), int(fl.dst), fl.tSend)
		if d.Drop {
			e.res.Stats.Dropped++
			if e.cfg.TracePackets || e.obs != nil {
				e.emitPacket(PacketRecord{
					SendGuest: fl.tSend, Ideal: fl.tD,
					Src: int(fl.src), Dst: int(fl.dst), Size: fl.f.Size,
					Dropped: true,
				})
			}
			return
		}
		// Injected delay only ever increases the arrival time, so the fast
		// path's safety bound (tD >= limit under Q <= T) is preserved.
		base := fl.tD
		if d.Delay > 0 {
			fl.tD = base.Add(d.Delay)
		}
		if d.Dup {
			e.res.Stats.Duplicated++
			dup := fl
			dup.tD = base.Add(d.DupDelay)
			e.deliver(h, fl, false)
			e.deliver(h, dup, true)
			return
		}
	}
	e.deliver(h, fl, false)
}

// emitPacket routes one packet record to the trace slice and the observer.
func (e *engine) emitPacket(rec PacketRecord) {
	if e.cfg.TracePackets {
		e.res.Packets = append(e.res.Packets, rec) //simlint:hotalloc packet tracing is opt-in diagnostics; the trace slice is the product, not scratch
	}
	if e.obs != nil {
		e.obs.Packet(rec)
	}
}

// deliver classifies one frame copy against the destination's progress and
// hands it to the node — the tail of the paper's controller logic, shared by
// the original and any fault-injected duplicate so each copy counts
// independently in the straggler statistics. Under the batched barrier
// router (e.batching) the copy is recorded for the per-destination delivery
// pass instead of being pushed immediately; every destination is at the
// barrier then, so the idle-wake adjustments below are provably dead in
// that mode.
func (e *engine) deliver(h simtime.Host, fl flight, dupCopy bool) {
	e.res.Stats.Deliveries++

	dst := int(fl.dst)
	var arr simtime.Guest
	straggler, snapped := false, false

	if e.na.phase[dst] == phAtLimit {
		// Paper Figure 3(d): the destination already finished its quantum.
		if fl.tD < e.limit {
			arr = e.limit // snaps to the next quantum boundary
			straggler, snapped = true, true
		} else {
			arr = fl.tD // at or after the boundary: still exact
		}
	} else {
		g := e.guestPos(dst, h)
		if fl.tD >= g {
			arr = fl.tD // exact delivery (paper case 2)
		} else {
			arr = g // straggler: deliver immediately (paper case 3)
			straggler = true
		}
	}

	st := &e.res.Stats
	if straggler {
		st.Stragglers++
		e.strQuant++
		st.StragglerDelay += arr.Sub(fl.tD)
		if snapped {
			st.QuantumSnaps++
		}
	} else {
		st.Exact++
	}
	if e.cfg.TracePackets || e.obs != nil {
		e.emitPacket(PacketRecord{
			SendGuest: fl.tSend, Ideal: fl.tD, Arrival: arr,
			Src: int(fl.src), Dst: dst, Size: fl.f.Size,
			Straggler: straggler, Snapped: snapped, Duplicate: dupCopy,
		})
	}

	if e.batching {
		e.pend = append(e.pend, pendDeliv{dst: fl.dst, f: fl.f, arr: arr}) //simlint:hotalloc pending-delivery buffer grows to its watermark once; length-reset each quantum
		return
	}

	e.na.node[dst].Deliver(fl.f, arr)

	// If the destination is idling, the new arrival may change its wake
	// time: a straggler wakes it right now; an exact future arrival earlier
	// than its current target re-aims the wake.
	if e.na.phase[dst] != phIdle || e.na.doneIdling[dst] {
		return
	}
	if straggler {
		if !e.q.Remove(e.na.wakeEv[dst]) {
			panic("cluster: idle node without a cancellable wake event")
		}
		// The cancelled tail of the idle segment is never simulated.
		trunc := e.na.segEndH[dst].Sub(simtime.MaxHost(h, e.na.segStartH[dst]))
		e.res.Stats.HostIdle -= trunc
		if e.prof != nil {
			e.prof.Segment(dst, prof.SegIdle, -trunc)
		}
		if e.obs != nil {
			// Report the truncated idle segment: the straggler cut it short.
			e.obs.NodePhase(dst, obs.PhaseIdle, e.na.segStartG[dst], arr,
				e.na.segStartH[dst], simtime.MaxHost(h, e.na.segStartH[dst]))
		}
		e.na.wakeEv[dst] = eventq.Handle{}
		e.na.inSeg[dst] = false
		e.na.hostNow[dst] = h
		e.na.node[dst].WakeAt(arr)
		e.na.phase[dst] = phRunning
		e.stepNode(dst, h)
		return
	}
	if arr < e.na.segEndG[dst] {
		// Re-aim the idle segment at the earlier arrival.
		if !e.q.Remove(e.na.wakeEv[dst]) {
			panic("cluster: idle node without a cancellable wake event")
		}
		cost := e.hostCost(dst, e.na.segStartG[dst], arr, host.Idle)
		refund := e.na.segEndH[dst].Sub(e.na.segStartH[dst]) - cost
		e.res.Stats.HostIdle -= refund
		if e.prof != nil {
			e.prof.Segment(dst, prof.SegIdle, -refund)
		}
		endH := e.na.segStartH[dst].Add(cost)
		e.na.segEndG[dst] = arr
		e.na.segEndH[dst] = endH
		e.na.hostNow[dst] = endH
		e.na.wakeG[dst] = arr
		e.na.wakeEv[dst] = e.q.PushPri(int64(endH), priWake, event{kind: evWake, node: fl.dst})
	}
}

// routeBatch routes the quantum's assembled barrier batch: one pass through
// the flights in canonical (node, send-sequence) order — counters, fault
// decisions, traces and observer hooks fire here in exactly the order the
// one-at-a-time tail produced — then the surviving copies are delivered in
// per-destination contiguous runs via a stable counting sort. Delivery
// order within a destination is the batch order, and the guest receive
// queue orders by (arrival, Frame.ID, push sequence), so regrouping is
// invisible to the workload (DESIGN.md §12).
func (e *engine) routeBatch() {
	if len(e.batch) == 0 {
		return
	}
	e.pend = e.pend[:0]
	e.batching = true
	for _, b := range e.batch {
		e.routeFlight(b.h, b.fi)
	}
	e.batching = false

	cnt := e.delivCnt
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range e.pend {
		cnt[e.pend[i].dst]++
	}
	off := e.delivOff
	var sum int32
	for d := range cnt {
		off[d] = sum
		sum += cnt[d]
	}
	if cap(e.delivSorted) < len(e.pend) {
		e.delivSorted = make([]guest.Arrival, len(e.pend)) //simlint:hotalloc sort scratch grows to the high-water mark once, then reslices allocation-free
	}
	sorted := e.delivSorted[:len(e.pend)]
	for i := range e.pend {
		p := &e.pend[i]
		sorted[off[p.dst]] = guest.Arrival{Frame: p.f, Time: p.arr}
		off[p.dst]++
	}
	var start int32
	for d := range cnt {
		if cnt[d] == 0 {
			continue
		}
		e.na.node[d].DeliverBatch(sorted[start:off[d]])
		start = off[d]
	}
}

// runQuantumFast executes one provably-safe quantum (Q <= eligLat): every
// node is walked to the barrier independently — concurrently when a pool
// exists — then the buffered per-node effects are folded into the global
// state in node order, and all frames are routed by the batched barrier
// router in (node, send-sequence) order. That canonical order is what makes
// the run bit-identical for every Workers >= 1 value: workers only decide
// *who* walks a node, never the order anything is published.
//
//simlint:hotpath fast-path quantum loop
func (e *engine) runQuantumFast(hostNow simtime.Host) {
	if e.pool != nil {
		e.pool.Run(len(e.walks), e.walkFn)
	} else {
		for i := range e.walks {
			e.walkNode(i, &e.walks[i], hostNow)
		}
	}
	for i := range e.walks {
		e.foldWalk(i)
	}
	// Barrier routing. Every destination is phAtLimit and, by the safety
	// bound, every arrival time tD is at or past the limit, so routeFlight
	// classifies each delivery as exact — the same outcome the classic
	// engine reaches for these frames, just without the event queue.
	e.assembling = true
	for i := range e.walks {
		for _, s := range e.walks[i].sends {
			e.sendFrame(i, s.h, s.tSend, s.f)
		}
	}
	e.assembling = false
	e.routeBatch()
}

// foldWalk folds node i's completed walk buffers into the global state —
// stats, profiler charges, done accounting and observer replay. Single-
// threaded; called in ascending node order so the published order is
// canonical whatever worker walked the node.
func (e *engine) foldWalk(i int) {
	wk := &e.walks[i]
	e.res.Stats.HostBusy += wk.busy
	e.res.Stats.HostIdle += wk.idle
	if e.prof != nil {
		// Fold the walk's per-node charges at the barrier so the
		// profiler sees the same per-node totals as the classic path
		// without any cross-worker synchronization during the walk.
		e.prof.Segment(i, prof.SegBusy, wk.busy)
		e.prof.Segment(i, prof.SegIdle, wk.idle)
	}
	if wk.done {
		if wk.err != nil && e.firstErr == nil {
			e.firstErr = fmt.Errorf("cluster: rank %d: %w", i, wk.err) //simlint:hotalloc error path: fires at most once per node, at workload failure
		}
		e.doneCount++
	}
	if e.obs != nil {
		for _, ph := range wk.phases {
			e.obs.NodePhase(i, ph.phase, ph.g0, ph.g1, ph.h0, ph.h1)
		}
	}
}

// runQuantumGraded executes one partially-engaged quantum (DESIGN.md §11):
// Q exceeds the global minimum latency, but the per-link partitioning
// leaves loose nodes whose every link has latency >= Q. Tight partitions
// run the classic event-queue walk one partition at a time — the shared
// queue then only ever holds the current partition's events, and because
// restricting a deterministic total order to a subset preserves relative
// order, each partition's walk is bit-identical to its slice of the classic
// engine's. Frames crossing partitions are deferred by sendFrame (their
// arrival is provably at or past the limit, so mid-quantum routing is
// behavior-neutral); loose nodes are fast-walked exactly as in
// runQuantumFast — concurrently when a pool exists — and everything
// publishes at the barrier in canonical node order through the batched
// router.
//
//simlint:hotpath graded-path quantum loop
func (e *engine) runQuantumGraded(hostNow simtime.Host, p *partitioning) {
	e.curPart = p.part
	for _, members := range p.tight {
		for _, m := range members {
			i := int(m)
			e.walks[i].defs = e.walks[i].defs[:0]
			n := e.na.node[i]
			n.BeginQuantum(e.limit)
			e.na.phase[i] = phRunning
			e.na.hostNow[i] = hostNow
			e.na.inSeg[i] = false
			e.na.wakeEv[i] = eventq.Handle{}
			e.na.finishHost[i] = hostNow
			if n.Done() {
				e.idleTo(i, e.limit, hostNow)
				continue
			}
			e.q.PushPri(int64(hostNow), priStep, event{kind: evStep, node: int32(i)})
		}
		for e.q.Len() > 0 {
			ev := e.q.Pop()
			e.dispatch(simtime.Host(ev.Time), ev.Payload)
		}
	}
	e.curPart = nil

	// Loose nodes: the same independent walks as a fully-engaged quantum.
	if e.pool != nil {
		e.pool.Run(len(p.loose), e.looseFn)
	} else {
		for _, i := range p.loose {
			e.walkNode(int(i), &e.walks[i], hostNow)
		}
	}
	for _, i := range p.loose {
		e.foldWalk(int(i))
	}

	// Barrier publication in global node order: loose nodes assemble their
	// buffered sends, tight nodes enqueue their deferred cross-partition
	// flights at the controller-arrival host times the classic engine would
	// have dispatched them at; one batched route pass then handles both.
	// Every arrival time is at or past the limit and every destination is
	// at the barrier, so each delivery is exact.
	e.assembling = true
	for i := range e.walks {
		if p.fastNode[i] {
			for _, s := range e.walks[i].sends {
				e.sendFrame(i, s.h, s.tSend, s.f)
			}
		} else {
			for _, d := range e.walks[i].defs {
				e.batch = append(e.batch, routed{h: d.h, fi: d.fi}) //simlint:hotalloc assembly batch grows to its watermark once; length-reset each quantum
			}
		}
	}
	e.assembling = false
	e.routeBatch()
}

// profPartitionWaits charges each lookahead partition's barrier wait for
// the quantum: the release point minus the partition's last member finish.
// With an unknown partitioning the whole cluster is one partition. Derived
// purely from simulated time, so the attribution is identical for every
// Workers value and engine path.
func (e *engine) profPartitionWaits(p *partitioning, maxH simtime.Host) {
	if p == nil {
		last := e.na.finishHost[0]
		for _, fh := range e.na.finishHost[1:] {
			last = simtime.MaxHost(last, fh)
		}
		e.prof.PartitionWait(maxH.Sub(last))
		return
	}
	if cap(e.partFin) < p.nparts {
		e.partFin = make([]simtime.Host, p.nparts)
	}
	fin := e.partFin[:p.nparts]
	for i := range fin {
		fin[i] = 0
	}
	for i, fh := range e.na.finishHost {
		pid := p.part[i]
		fin[pid] = simtime.MaxHost(fin[pid], fh)
	}
	for _, f := range fin {
		e.prof.PartitionWait(maxH.Sub(f))
	}
}

// walkNode steps one node from the quantum start to the barrier without the
// event queue, mirroring stepNode/idleTo/the wake dispatch of the classic
// engine exactly. It touches only state the walking worker owns: the node,
// its index in every arena lane, and its nodeWalk buffers (host.Model
// lookups are pure, and each node's speed-memo entry is private to its
// walker). Globally visible effects are buffered in wk for the single-
// threaded barrier fold.
//
//simlint:hotpath per-node walk body, invoked through worker closures the call graph cannot follow
func (e *engine) walkNode(i int, wk *nodeWalk, hostNow simtime.Host) {
	wk.sends = wk.sends[:0]
	wk.phases = wk.phases[:0]
	wk.busy, wk.idle = 0, 0
	wk.done, wk.err = false, nil

	n := e.na.node[i]
	n.BeginQuantum(e.limit)
	e.na.inSeg[i] = false
	e.na.wakeEv[i] = eventq.Handle{}
	h := hostNow

	finish := func() { //simlint:hotalloc non-escaping closure: called and discarded inside walkNode, stays on the stack
		e.na.phase[i] = phAtLimit
		e.na.finishHost[i] = h
		e.na.hostNow[i] = h
	}
	// idle mirrors idleTo plus the evWake dispatch: charge the idle cost,
	// record the phase, advance the cursor, and wake the node at target.
	// Fast-path idle segments are never truncated or re-aimed — no delivery
	// can land before the limit — so the extent is final at creation.
	idle := func(target simtime.Guest) { //simlint:hotalloc non-escaping closure: called and discarded inside walkNode, stays on the stack
		from := n.Clock()
		if target < from {
			panic(fmt.Sprintf("cluster: node %d idling backwards %v -> %v", i, from, target))
		}
		cost := e.hostCost(i, from, target, host.Idle)
		wk.idle += cost
		end := h.Add(cost)
		wk.phases = append(wk.phases, phaseRec{obs.PhaseIdle, from, target, h, end}) //simlint:hotalloc per-worker phase log grows to its watermark once; length-reset each quantum
		h = end
		e.na.doneIdling[i] = n.Done()
		n.WakeAt(target)
	}

	if n.Done() {
		// A finished workload's simulator idles through the quantum.
		idle(e.limit)
		finish()
		return
	}
	for {
		st := n.Step()
		switch st.Kind {
		case guest.StepBusy:
			cost := e.hostCost(i, st.From, st.To, host.Busy)
			wk.busy += cost
			end := h.Add(cost)
			wk.phases = append(wk.phases, phaseRec{obs.PhaseBusy, st.From, st.To, h, end}) //simlint:hotalloc per-worker send log grows to its watermark once; length-reset each quantum
			h = end

		case guest.StepSend:
			wk.sends = append(wk.sends, sendRec{f: st.Frame, tSend: st.To, h: h}) //simlint:hotalloc per-worker phase log grows to its watermark once; length-reset each quantum

		case guest.StepBlocked:
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, e.limit)
			if target <= st.To {
				// Blocked exactly at the quantum boundary.
				finish()
				return
			}
			idle(target)
			// Loop to Step() again: arrivals already in the receive queue
			// (delivered at earlier barriers) become consumable at target.

		case guest.StepLimit:
			finish()
			return

		case guest.StepDone:
			wk.done = true
			wk.err = st.Err
			e.na.doneHost[i] = h
			g := n.Clock()
			wk.phases = append(wk.phases, phaseRec{obs.PhaseDone, g, g, h, h}) //simlint:hotalloc per-worker phase log grows to its watermark once; length-reset each quantum
			// The simulator keeps idling to the barrier.
			idle(e.limit)
			finish()
			return
		}
	}
}
