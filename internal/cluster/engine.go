package cluster

import (
	"errors"
	"fmt"

	"clustersim/internal/eventq"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/pkt"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
	"clustersim/internal/workerpool"
)

// ErrGuestLimit is returned when a run exceeds Config.MaxGuest without all
// workloads finishing — usually a deadlocked workload.
var ErrGuestLimit = errors.New("cluster: guest time limit exceeded before workloads finished")

// event kinds in the host-time queue.
type evKind int

const (
	evFrame evKind = iota // a frame reaches the controller/destination
	evStep                // a node's current segment ends; resume stepping
	evWake                // an idle node reaches its wake guest time
)

// event priorities: at identical host times, frames are routed before nodes
// resume, so a delivery racing a segment end is observed by the resuming
// node. Any fixed rule would do; this one minimizes spurious blocking.
const (
	priFrame = 0
	priWake  = 1
	priStep  = 2
)

type event struct {
	kind evKind
	node int
	// frame fields
	frame *pkt.Frame
	src   int
	dst   int
	tSend simtime.Guest // guest time the frame left the source workload
	tD    simtime.Guest // exact simulated arrival time
	// wake field
	gTarget simtime.Guest
}

type nodePhase int

const (
	phRunning nodePhase = iota // executing; a segment/step event is pending
	phIdle                     // blocked; a wake event is pending
	phAtLimit                  // reached the quantum boundary
)

type nodeState struct {
	n     *guest.Node
	phase nodePhase

	// Execution cursor: the host time corresponding to the node's position
	// at the *end* of the current segment. While a segment is in flight,
	// interpolate with the segment fields below.
	hostNow simtime.Host

	// Current segment (busy execution or idle wait) for interpolating the
	// node's guest position at an arbitrary host instant.
	inSeg      bool
	segMode    host.Mode
	segStartG  simtime.Guest
	segStartH  simtime.Host
	segEndG    simtime.Guest
	segEndH    simtime.Host
	wakeEv     eventq.Handle // cancellable pending wake (zero = none)
	doneIdling bool          // workload finished; idling to each barrier

	txFree     simtime.Guest // guest time the NIC's transmitter frees up
	finishHost simtime.Host  // host time the node reached the current barrier
	doneHost   simtime.Host  // host time the workload finished
}

// engine runs one configuration.
type engine struct {
	cfg    Config
	hm     *host.Model
	nodes  []*nodeState
	q      eventq.Queue[event]
	policy quantum.Policy
	// obs mirrors cfg.Observer; every hook site is guarded by a nil check so
	// an unobserved run builds no records and pays only the branch.
	obs obs.Observer
	// prof mirrors cfg.Profiler with the same nil-guard discipline.
	prof *prof.Profiler
	// portFree tracks, per destination, when its switch output port frees
	// up (guest time); used only when the net model has an OutputQueue.
	portFree []simtime.Guest

	limit     simtime.Guest // current quantum end
	qStartH   simtime.Host  // barrier release that started the quantum
	npQuantum int           // frames routed this quantum
	strQuant  int           // stragglers this quantum
	lastEvtH  simtime.Host  // latest frame event host time this quantum

	doneCount int
	res       Result
	sumQ      float64
	firstErr  error

	// slow holds the per-node host slowdown factor from the fault plan, or
	// nil when every node runs at factor 1 — the nil check keeps the
	// fault-free path byte-identical to an engine without the feature.
	slow []float64

	// Intra-quantum fast path (DESIGN.md §7, §11). la is the per-link
	// lookahead structure: the probed node-pair latency matrix and the
	// lookahead-closed partitionings it induces per quantum size. It is
	// built for every configuration that admits lookahead (matrix mode, no
	// output tap, positive bounds) — the classic engine included — so
	// eligibility accounting, partition grades and the graded Stats fields
	// never depend on the Workers gate. Nil in scalar mode or when the
	// topology rules lookahead out.
	la *lookahead
	// eligLat is the scalar eligibility lookahead (la.min in matrix mode,
	// Net.MinLatency in scalar mode): any quantum Q <= eligLat is provably
	// free of intra-quantum arrivals cluster-wide. Zero when the
	// output-queue tap or the topology rules the fast path out entirely.
	eligLat simtime.Duration
	qElig   bool // current quantum's full (cluster-wide) eligibility
	nElig   int  // eligible quanta so far
	pool    *workerpool.Pool
	// walks is non-nil iff Workers >= 1 selected the fast-path engine; its
	// per-node buffers serve both the fully-engaged walk and the graded
	// (partitioned) quantum.
	walks []nodeWalk
	// walkFn is the per-node walk closure, built once so the per-quantum
	// pool dispatch stays allocation-free (it reads e.qStartH, which run()
	// sets to the quantum's barrier-release host time). looseFn is its
	// graded-quantum sibling, indexing through the current partitioning's
	// loose-node list.
	walkFn  func(int)
	looseFn func(int)
	// curPartit is the current quantum's partitioning (nil when unknown);
	// curPart aliases its node->partition map during a graded quantum's
	// tight-partition walks — the signal for sendFrame to defer
	// cross-partition frames to the barrier — and is nil at all other
	// times.
	curPartit *partitioning
	curPart   []int32
	// partFin is the per-partition last-finish scratch for the profiler's
	// partition-wait attribution, reused across quanta.
	partFin []simtime.Host
}

// sendRec buffers one frame sent during a fast-path walk, with the host and
// guest instants the classic engine would have seen at the send.
type sendRec struct {
	f     *pkt.Frame
	tSend simtime.Guest
	h     simtime.Host
}

// phaseRec buffers one NodePhase observer hook emitted during a walk.
type phaseRec struct {
	phase  obs.Phase
	g0, g1 simtime.Guest
	h0, h1 simtime.Host
}

// defEvent buffers one fully-computed cross-partition frame event that a
// graded quantum defers to the barrier, with the controller-arrival host
// time the classic engine would have dispatched it at.
type defEvent struct {
	h  simtime.Host
	ev event
}

// nodeWalk collects everything a fast-path node walk must publish at the
// barrier: sends to route, observer hooks to replay, and the node's
// contributions to global counters. Node-local state (finishHost, doneHost,
// phase, ...) is written straight to the nodeState, which the walking worker
// owns for the duration of the quantum. Buffers are reused across quanta.
// During graded quanta the defs buffer additionally holds a tight node's
// deferred cross-partition frames.
type nodeWalk struct {
	sends  []sendRec
	phases []phaseRec
	defs   []defEvent
	busy   simtime.Duration
	idle   simtime.Duration
	done   bool
	err    error
}

// Run executes the configuration and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:    cfg,
		hm:     host.NewModel(cfg.Host),
		policy: cfg.Policy(),
		obs:    cfg.Observer,
		prof:   cfg.Profiler,
	}
	defer e.shutdown()
	e.nodes = make([]*nodeState, cfg.Nodes)
	e.portFree = make([]simtime.Guest, cfg.Nodes)
	for i := range e.nodes {
		prog := cfg.Program(i, cfg.Nodes)
		if prog == nil {
			return nil, fmt.Errorf("cluster: nil program for rank %d", i)
		}
		e.nodes[i] = &nodeState{n: guest.NewNode(i, cfg.Nodes, cfg.Guest, prog)}
	}
	if fp := cfg.Faults; fp != nil && fp.HasSlowdown() {
		e.slow = make([]float64, cfg.Nodes)
		for i := range e.slow {
			e.slow[i] = fp.Slowdown(i)
		}
	}
	e.initFast()
	e.res.PolicyName = e.policy.Name()
	if err := e.run(); err != nil {
		return nil, err
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}
	return &e.res, nil
}

func (e *engine) shutdown() {
	for _, ns := range e.nodes {
		if ns != nil {
			ns.n.Shutdown()
		}
	}
	if e.pool != nil {
		e.pool.Close()
	}
}

// initFast decides whether the configuration admits the intra-quantum
// parallel fast path and, if so, precomputes its safety bounds and pool.
//
// The bounds come from the per-link lookahead matrix — every pair probed
// with the cheapest possible frame (netmodel.MinProbe), generalizing the
// paper's scalar T — or, in scalar mode, from Net.MinLatency alone.
// Configurations with switch output-port contention (Net.Output) are
// excluded before the probe: the port-free state must be updated in the
// exact order the controller observes frames, which only the sequential
// event queue reproduces.
func (e *engine) initFast() {
	// The eligibility lookahead is probed for every configuration — the
	// classic engine included — so per-quantum eligibility accounting never
	// depends on the Workers gate.
	if e.cfg.Net.Output == nil {
		if e.cfg.Lookahead == LookaheadScalar {
			e.eligLat = e.cfg.Net.MinLatency(e.cfg.Nodes)
		} else if e.la = newLookahead(e.cfg.Net, e.cfg.Nodes); e.la != nil {
			e.eligLat = e.la.min
		}
	}
	if e.cfg.Workers < 1 || e.eligLat <= 0 {
		return
	}
	e.walks = make([]nodeWalk, e.cfg.Nodes)
	e.walkFn = func(i int) { e.walkNode(e.nodes[i], &e.walks[i], e.qStartH) }
	e.looseFn = func(k int) {
		i := e.curPartit.loose[k]
		e.walkNode(e.nodes[i], &e.walks[i], e.qStartH)
	}
	if w := e.cfg.Workers; w >= 2 {
		if w > e.cfg.Nodes {
			w = e.cfg.Nodes
		}
		e.pool = workerpool.New(w)
	}
}

func (e *engine) run() error {
	var start simtime.Guest
	var hostNow simtime.Host
	Q := e.policy.First()
	if Q <= 0 {
		return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", e.policy.Name(), Q)
	}
	if e.obs != nil {
		e.obs.RunStart(obs.RunInfo{
			Nodes:    e.cfg.Nodes,
			Policy:   e.policy.Name(),
			MaxGuest: e.cfg.MaxGuest,
		})
	}
	if e.prof != nil {
		e.prof.RunStart(prof.RunMeta{
			Engine:      "deterministic",
			Nodes:       e.cfg.Nodes,
			Policy:      e.policy.Name(),
			Lookahead:   e.eligLat,
			OutputQueue: e.cfg.Net.Output != nil,
			LinkLat: func(src, dst int) simtime.Duration {
				return e.cfg.Net.FrameLatency(netmodel.MinProbe(), src, dst)
			},
		})
	}

	for qi := 0; ; qi++ {
		e.limit = start.Add(Q)
		e.qStartH = hostNow
		e.npQuantum = 0
		e.strQuant = 0
		e.lastEvtH = hostNow
		if e.obs != nil {
			e.obs.QuantumStart(qi, start, Q, hostNow)
		}
		e.qElig = e.eligLat > 0 && Q <= e.eligLat
		if e.qElig {
			e.nElig++
		}
		// The quantum's lookahead partitioning (nil in scalar mode or
		// without lookahead). Both the accounting below and the execution
		// choice derive from it, but the accounting is pure (Q, lookahead)
		// state shared verbatim by every engine path, so Stats stay
		// bit-identical across Workers values.
		var part *partitioning
		if e.la != nil {
			part = e.la.partitionFor(Q)
		}
		e.curPartit = part
		switch {
		case e.qElig:
			e.res.Stats.FastFullQuanta++
			e.res.Stats.FastNodeQuanta += e.cfg.Nodes
		case part != nil && part.fastNodes > 0:
			e.res.Stats.FastPartialQuanta++
			e.res.Stats.FastNodeQuanta += part.fastNodes
			e.res.Stats.PartialPartitions += part.nparts
		}
		if e.prof != nil {
			e.prof.BeginQuantum(qi, Q, part.grade())
		}

		// With Q at or below the minimum network latency, nothing sent in
		// this quantum can arrive inside it (the paper's ground-truth
		// argument), so the nodes are independent until the barrier and the
		// event queue is unnecessary: walk each node to the limit — in
		// parallel when Workers >= 2 — and route all frames at the barrier.
		// Above that bound, the per-link partitioning can still leave loose
		// nodes that are independent of everyone: they are walked the same
		// way while the tight partitions fall back to the event queue.
		full := e.walks != nil && e.qElig
		graded := e.walks != nil && !e.qElig && part != nil && part.fastNodes > 0
		if e.cfg.onQuantumMode != nil {
			e.cfg.onQuantumMode(full || graded)
		}
		switch {
		case full:
			e.runQuantumFast(hostNow)
		case graded:
			e.runQuantumGraded(hostNow, part)
		default:
			for _, ns := range e.nodes {
				ns.n.BeginQuantum(e.limit)
				ns.phase = phRunning
				ns.hostNow = hostNow
				ns.inSeg = false
				ns.wakeEv = eventq.Handle{}
				ns.finishHost = hostNow
				if ns.n.Done() {
					// A finished workload's simulator idles through the
					// quantum (OS housekeeping only).
					e.idleTo(ns, e.limit, hostNow)
					continue
				}
				e.q.PushPri(int64(hostNow), priStep, event{kind: evStep, node: ns.n.ID()})
			}

			for e.q.Len() > 0 {
				ev := e.q.Pop()
				e.dispatch(simtime.Host(ev.Time), ev.Payload)
			}
		}

		// Barrier: wait for the slowest node and any late frames, pay the
		// barrier cost plus the controller's per-packet occupancy.
		maxH := e.lastEvtH
		for _, ns := range e.nodes {
			maxH = simtime.MaxHost(maxH, ns.finishHost)
		}
		barrierEnd := maxH.
			Add(e.cfg.Host.BarrierCost).
			Add(simtime.Duration(e.npQuantum) * e.cfg.Host.PacketHostCost)
		e.res.Stats.HostBarrier += barrierEnd.Sub(maxH)
		if e.prof != nil {
			// Per-node barrier wait: finishing the quantum until the last
			// arrival (the shared barrier+routing costs are attributed once,
			// below, not per node).
			for i, ns := range e.nodes {
				e.prof.NodeWait(i, maxH.Sub(ns.finishHost))
			}
			e.profPartitionWaits(part, maxH)
			e.prof.EndQuantum(prof.QuantumStats{
				Span:       barrierEnd.Sub(hostNow),
				Routing:    simtime.Duration(e.npQuantum) * e.cfg.Host.PacketHostCost,
				Barrier:    e.cfg.Host.BarrierCost,
				Packets:    e.npQuantum,
				Stragglers: e.strQuant,
			})
		}

		e.recordQuantum(qi, start, Q, hostNow, maxH, barrierEnd)

		hostNow = barrierEnd
		start = e.limit

		if e.doneCount == len(e.nodes) {
			break
		}
		if e.cfg.MaxGuest > 0 && start > e.cfg.MaxGuest {
			return fmt.Errorf("%w (reached %v)", ErrGuestLimit, start)
		}

		Q = e.policy.Next(quantum.Feedback{
			Packets:    e.npQuantum,
			Stragglers: e.strQuant,
			Now:        e.limit,
		})
		if Q <= 0 {
			return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", e.policy.Name(), Q)
		}
	}

	for _, ns := range e.nodes {
		e.res.NodeFinish = append(e.res.NodeFinish, ns.n.FinishedAt())
		e.res.Metrics = append(e.res.Metrics, ns.n.Metrics())
		e.res.GuestTime = simtime.MaxGuest(e.res.GuestTime, ns.n.FinishedAt())
		if d := ns.doneHost; simtime.Duration(d) > e.res.HostTime {
			e.res.HostTime = simtime.Duration(d)
		}
	}
	e.res.Stats.finalize(e.sumQ)
	if e.obs != nil {
		e.obs.RunEnd(obs.RunSummary{
			GuestTime:          e.res.GuestTime,
			HostEnd:            hostNow,
			Quanta:             e.res.Stats.Quanta,
			FastEligibleQuanta: e.nElig,
		})
	}
	if e.prof != nil {
		e.prof.RunEnd(e.res.GuestTime, hostNow)
	}
	return nil
}

func (e *engine) recordQuantum(qi int, start simtime.Guest, Q simtime.Duration, hStart, barrierStart, hEnd simtime.Host) {
	e.res.Stats.observeQuantum(Q, e.npQuantum)
	e.sumQ += float64(Q)
	if e.cfg.TraceQuanta || e.obs != nil {
		rec := QuantumRecord{
			Index:        qi,
			Start:        start,
			Q:            Q,
			Packets:      e.npQuantum,
			Stragglers:   e.strQuant,
			HostStart:    hStart,
			BarrierStart: barrierStart,
			HostEnd:      hEnd,
			FastEligible: e.qElig,
		}
		if e.cfg.TraceQuanta {
			e.res.Quanta = append(e.res.Quanta, rec)
		}
		if e.obs != nil {
			e.obs.QuantumEnd(rec)
		}
	}
}

func (e *engine) dispatch(h simtime.Host, ev event) {
	switch ev.kind {
	case evStep:
		e.stepNode(e.nodes[ev.node], h)
	case evWake:
		ns := e.nodes[ev.node]
		if e.obs != nil {
			// The idle segment's extent is only final here: deliveries may
			// have re-aimed it since idleTo, so it is reported at its end.
			e.obs.NodePhase(ev.node, obs.PhaseIdle, ns.segStartG, ev.gTarget, ns.segStartH, h)
		}
		ns.wakeEv = eventq.Handle{}
		ns.inSeg = false
		ns.hostNow = h
		ns.n.WakeAt(ev.gTarget)
		if ns.doneIdling {
			// The finished node reached the barrier.
			ns.phase = phAtLimit
			ns.finishHost = h
			return
		}
		ns.phase = phRunning
		e.stepNode(ns, h)
	case evFrame:
		e.routeFrame(h, ev)
	}
}

// stepNode drives a node's Step loop from host time h until the node blocks,
// starts a busy segment, reaches the limit, or finishes.
func (e *engine) stepNode(ns *nodeState, h simtime.Host) {
	for {
		st := ns.n.Step()
		switch st.Kind {
		case guest.StepBusy:
			cost := e.hostCost(ns.n.ID(), st.From, st.To, host.Busy)
			e.res.Stats.HostBusy += cost
			if e.prof != nil {
				e.prof.Segment(ns.n.ID(), prof.SegBusy, cost)
			}
			ns.inSeg = true
			ns.segMode = host.Busy
			ns.segStartG = st.From
			ns.segStartH = h
			ns.segEndG = st.To
			ns.segEndH = h.Add(cost)
			ns.hostNow = ns.segEndH
			if e.obs != nil {
				// Busy segments always run to completion, so the extent is
				// final at creation.
				e.obs.NodePhase(ns.n.ID(), obs.PhaseBusy, st.From, st.To, h, ns.segEndH)
			}
			e.q.PushPri(int64(ns.segEndH), priStep, event{kind: evStep, node: ns.n.ID()})
			return

		case guest.StepSend:
			e.sendFrame(ns, h, st.To, st.Frame, false)
			// Sending costs no additional host time beyond the guest
			// overhead already charged; keep stepping.

		case guest.StepBlocked:
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, e.limit)
			if target <= st.To {
				// Blocked exactly at the quantum boundary.
				ns.phase = phAtLimit
				ns.inSeg = false
				ns.finishHost = h
				ns.hostNow = h
				return
			}
			e.idleTo(ns, target, h)
			return

		case guest.StepLimit:
			ns.phase = phAtLimit
			ns.inSeg = false
			ns.finishHost = h
			ns.hostNow = h
			return

		case guest.StepDone:
			if st.Err != nil && e.firstErr == nil {
				e.firstErr = fmt.Errorf("cluster: rank %d: %w", ns.n.ID(), st.Err)
			}
			e.doneCount++
			ns.doneHost = h
			if e.obs != nil {
				g := ns.n.Clock()
				e.obs.NodePhase(ns.n.ID(), obs.PhaseDone, g, g, h, h)
			}
			// The simulator keeps idling to the barrier.
			e.idleTo(ns, e.limit, h)
			ns.doneIdling = true
			return
		}
	}
}

// idleTo puts the node into an idle segment from its current clock to guest
// time target, scheduling the wake event.
func (e *engine) idleTo(ns *nodeState, target simtime.Guest, h simtime.Host) {
	from := ns.n.Clock()
	if target < from {
		panic(fmt.Sprintf("cluster: node %d idling backwards %v -> %v", ns.n.ID(), from, target))
	}
	cost := e.hostCost(ns.n.ID(), from, target, host.Idle)
	e.res.Stats.HostIdle += cost
	if e.prof != nil {
		e.prof.Segment(ns.n.ID(), prof.SegIdle, cost)
	}
	ns.phase = phIdle
	ns.inSeg = true
	ns.segMode = host.Idle
	ns.segStartG = from
	ns.segStartH = h
	ns.segEndG = target
	ns.segEndH = h.Add(cost)
	ns.hostNow = ns.segEndH
	ns.doneIdling = ns.n.Done()
	ns.wakeEv = e.q.PushPri(int64(ns.segEndH), priWake, event{kind: evWake, node: ns.n.ID(), gTarget: target})
}

// sendFrame models the source NIC (transmit queueing + serialization),
// computes the exact simulated arrival time, and ships the frame to the
// controller in host time. In the classic engine (immediate == false) the
// frame becomes a queued event dispatched at its controller-arrival host
// time; the fast path (immediate == true) routes it on the spot — every
// destination is already at the barrier, so dispatch order no longer
// matters and the queue round-trip is pure overhead. During a graded
// quantum's tight-partition walks (curPart != nil), frames crossing the
// current partition are instead deferred to the barrier: their destination
// lies across a loose link, so the arrival time is provably at or past the
// limit and routing them later is behavior-neutral (DESIGN.md §11).
func (e *engine) sendFrame(ns *nodeState, h simtime.Host, tSend simtime.Guest, f *pkt.Frame, immediate bool) {
	src := ns.n.ID()
	depart := simtime.MaxGuest(tSend, ns.txFree)
	ser := e.cfg.Net.NIC.Serialization(f)
	depart = depart.Add(ser)
	ns.txFree = depart

	arrHost := h.Add(e.cfg.Host.PacketTransit)
	ship := func(dst int) {
		ev := event{
			kind: evFrame, frame: f, src: src, dst: dst, tSend: tSend,
			tD: e.arrivalTime(f, src, dst, depart),
		}
		switch {
		case immediate:
			e.routeFrame(arrHost, ev)
		case e.curPart != nil && e.curPart[dst] != e.curPart[src]:
			e.walks[src].defs = append(e.walks[src].defs, defEvent{h: arrHost, ev: ev})
		default:
			e.q.PushPri(int64(arrHost), priFrame, ev)
		}
	}
	if f.Dst.IsBroadcast() {
		for _, other := range e.nodes {
			if dst := other.n.ID(); dst != src {
				ship(dst)
			}
		}
		return
	}
	dst := f.Dst.Node()
	if dst < 0 || dst >= len(e.nodes) {
		// A frame to an unknown MAC: the switch floods it nowhere (no
		// other ports in this cluster). Count it as routed traffic.
		e.npQuantum++
		e.res.Stats.Packets++
		return
	}
	ship(dst)
}

// arrivalTime computes the exact simulated arrival of a frame that left its
// source NIC at guest time depart, including switch output-port contention
// when the network models it. Contention state is updated in the order the
// controller observes the frames — exactly what the paper's centralized
// network timing module would do.
func (e *engine) arrivalTime(f *pkt.Frame, src, dst int, depart simtime.Guest) simtime.Guest {
	out := e.cfg.Net.Output
	if out == nil {
		return depart.Add(e.cfg.Net.PostTxLatency(f, src, dst))
	}
	atPort := depart.Add(e.cfg.Net.PreQueueLatency(f, src, dst))
	start := simtime.MaxGuest(atPort, e.portFree[dst])
	e.portFree[dst] = start.Add(out.Serialization(f))
	return e.portFree[dst].Add(e.cfg.Net.PostQueueLatency(f))
}

// hostCost is the host.Model cost scaled by the node's fault-plan slowdown
// factor; with no slowdowns (slow == nil) it is the model cost verbatim.
func (e *engine) hostCost(id int, from, to simtime.Guest, mode host.Mode) simtime.Duration {
	c := e.hm.HostCost(id, from, to, mode)
	if e.slow != nil {
		c = c.Scale(e.slow[id])
	}
	return c
}

// guestPos returns node ns's guest position at host time h.
func (e *engine) guestPos(ns *nodeState, h simtime.Host) simtime.Guest {
	if !ns.inSeg {
		return ns.n.Clock()
	}
	if h >= ns.segEndH {
		return ns.segEndG
	}
	if h <= ns.segStartH {
		return ns.segStartG
	}
	elapsed := h.Sub(ns.segStartH)
	if e.slow != nil {
		// A slowed node burns factor-times the host time per unit of guest
		// progress; interpolate with the unscaled elapsed time.
		elapsed = elapsed.Scale(1 / e.slow[ns.n.ID()])
	}
	return e.hm.GuestAt(ns.n.ID(), ns.segStartG, elapsed, ns.segMode, ns.segEndG)
}

// routeFrame is the controller receiving one frame at host time h: it counts
// the frame toward the quantum's traffic (drops included, so Algorithm 1's
// np==0 test still sees lost traffic), applies loss/duplication/jitter
// faults, and delivers the surviving copies per the paper's three cases.
// Both engines funnel through here — the classic event queue dispatches it
// at the frame's controller-arrival host time, the fast path calls it at the
// barrier — so fault outcomes, which are pure per-frame functions, cannot
// differ between paths.
func (e *engine) routeFrame(h simtime.Host, ev event) {
	e.npQuantum++
	e.res.Stats.Packets++
	if h > e.lastEvtH {
		e.lastEvtH = h
	}
	if e.prof != nil {
		// Slack accounting uses the ideal (pre-fault) arrival: ev.tD is not
		// yet jittered here, and both engine paths route the same frames
		// with the same (tSend, tD), so the per-link accumulators — which
		// are order-independent — match across paths exactly.
		e.prof.Frame(ev.src, ev.dst, ev.tD.Sub(ev.tSend))
	}
	if e.cfg.LossRate > 0 &&
		rng.HashFloat01(e.cfg.LossSeed, ev.frame.ID, uint64(ev.dst)) < e.cfg.LossRate {
		e.res.Stats.Dropped++
		return
	}
	if fp := e.cfg.Faults; fp != nil {
		d := fp.Decide(ev.frame.ID, ev.src, ev.dst, ev.tSend)
		if d.Drop {
			e.res.Stats.Dropped++
			if e.cfg.TracePackets || e.obs != nil {
				e.emitPacket(PacketRecord{
					SendGuest: ev.tSend, Ideal: ev.tD,
					Src: ev.src, Dst: ev.dst, Size: ev.frame.Size,
					Dropped: true,
				})
			}
			return
		}
		// Injected delay only ever increases the arrival time, so the fast
		// path's safety bound (tD >= limit under Q <= T) is preserved.
		base := ev.tD
		if d.Delay > 0 {
			ev.tD = base.Add(d.Delay)
		}
		if d.Dup {
			e.res.Stats.Duplicated++
			dup := ev
			dup.tD = base.Add(d.DupDelay)
			e.deliver(h, ev, false)
			e.deliver(h, dup, true)
			return
		}
	}
	e.deliver(h, ev, false)
}

// emitPacket routes one packet record to the trace slice and the observer.
func (e *engine) emitPacket(rec PacketRecord) {
	if e.cfg.TracePackets {
		e.res.Packets = append(e.res.Packets, rec)
	}
	if e.obs != nil {
		e.obs.Packet(rec)
	}
}

// deliver classifies one frame copy against the destination's progress and
// hands it to the node — the tail of the paper's controller logic, shared by
// the original and any fault-injected duplicate so each copy counts
// independently in the straggler statistics.
func (e *engine) deliver(h simtime.Host, ev event, dupCopy bool) {
	e.res.Stats.Deliveries++

	ns := e.nodes[ev.dst]
	var arr simtime.Guest
	straggler, snapped := false, false

	if ns.phase == phAtLimit {
		// Paper Figure 3(d): the destination already finished its quantum.
		if ev.tD < e.limit {
			arr = e.limit // snaps to the next quantum boundary
			straggler, snapped = true, true
		} else {
			arr = ev.tD // at or after the boundary: still exact
		}
	} else {
		g := e.guestPos(ns, h)
		if ev.tD >= g {
			arr = ev.tD // exact delivery (paper case 2)
		} else {
			arr = g // straggler: deliver immediately (paper case 3)
			straggler = true
		}
	}

	st := &e.res.Stats
	if straggler {
		st.Stragglers++
		e.strQuant++
		st.StragglerDelay += arr.Sub(ev.tD)
		if snapped {
			st.QuantumSnaps++
		}
	} else {
		st.Exact++
	}
	if e.cfg.TracePackets || e.obs != nil {
		e.emitPacket(PacketRecord{
			SendGuest: ev.tSend, Ideal: ev.tD, Arrival: arr,
			Src: ev.src, Dst: ev.dst, Size: ev.frame.Size,
			Straggler: straggler, Snapped: snapped, Duplicate: dupCopy,
		})
	}

	ns.n.Deliver(ev.frame, arr)

	// If the destination is idling, the new arrival may change its wake
	// time: a straggler wakes it right now; an exact future arrival earlier
	// than its current target re-aims the wake.
	if ns.phase != phIdle || ns.doneIdling {
		return
	}
	if straggler {
		if !e.q.Remove(ns.wakeEv) {
			panic("cluster: idle node without a cancellable wake event")
		}
		// The cancelled tail of the idle segment is never simulated.
		trunc := ns.segEndH.Sub(simtime.MaxHost(h, ns.segStartH))
		e.res.Stats.HostIdle -= trunc
		if e.prof != nil {
			e.prof.Segment(ev.dst, prof.SegIdle, -trunc)
		}
		if e.obs != nil {
			// Report the truncated idle segment: the straggler cut it short.
			e.obs.NodePhase(ev.dst, obs.PhaseIdle, ns.segStartG, arr,
				ns.segStartH, simtime.MaxHost(h, ns.segStartH))
		}
		ns.wakeEv = eventq.Handle{}
		ns.inSeg = false
		ns.hostNow = h
		ns.n.WakeAt(arr)
		ns.phase = phRunning
		e.stepNode(ns, h)
		return
	}
	if arr < ns.segEndG {
		// Re-aim the idle segment at the earlier arrival.
		if !e.q.Remove(ns.wakeEv) {
			panic("cluster: idle node without a cancellable wake event")
		}
		cost := e.hostCost(ns.n.ID(), ns.segStartG, arr, host.Idle)
		refund := ns.segEndH.Sub(ns.segStartH) - cost
		e.res.Stats.HostIdle -= refund
		if e.prof != nil {
			e.prof.Segment(ns.n.ID(), prof.SegIdle, -refund)
		}
		ns.segEndG = arr
		ns.segEndH = ns.segStartH.Add(cost)
		ns.hostNow = ns.segEndH
		ns.wakeEv = e.q.PushPri(int64(ns.segEndH), priWake, event{kind: evWake, node: ns.n.ID(), gTarget: arr})
	}
}

// runQuantumFast executes one provably-safe quantum (Q <= eligLat): every
// node is walked to the barrier independently — concurrently when a pool
// exists — then the buffered per-node effects are folded into the global
// state in node order, and all frames are routed in (node, send-sequence)
// order. That canonical order is what makes the run bit-identical for every
// Workers >= 1 value: workers only decide *who* walks a node, never the
// order anything is published.
func (e *engine) runQuantumFast(hostNow simtime.Host) {
	if e.pool != nil {
		e.pool.Run(len(e.nodes), e.walkFn)
	} else {
		for i := range e.nodes {
			e.walkNode(e.nodes[i], &e.walks[i], hostNow)
		}
	}
	for i := range e.nodes {
		e.foldWalk(i)
	}
	// Barrier routing. Every destination is phAtLimit and, by the safety
	// bound, every arrival time tD is at or past the limit, so routeFrame
	// classifies each delivery as exact — the same outcome the classic
	// engine reaches for these frames, just without the event queue.
	for i, ns := range e.nodes {
		for _, s := range e.walks[i].sends {
			e.sendFrame(ns, s.h, s.tSend, s.f, true)
		}
	}
}

// foldWalk folds node i's completed walk buffers into the global state —
// stats, profiler charges, done accounting and observer replay. Single-
// threaded; called in ascending node order so the published order is
// canonical whatever worker walked the node.
func (e *engine) foldWalk(i int) {
	wk := &e.walks[i]
	e.res.Stats.HostBusy += wk.busy
	e.res.Stats.HostIdle += wk.idle
	if e.prof != nil {
		// Fold the walk's per-node charges at the barrier so the
		// profiler sees the same per-node totals as the classic path
		// without any cross-worker synchronization during the walk.
		e.prof.Segment(i, prof.SegBusy, wk.busy)
		e.prof.Segment(i, prof.SegIdle, wk.idle)
	}
	if wk.done {
		if wk.err != nil && e.firstErr == nil {
			e.firstErr = fmt.Errorf("cluster: rank %d: %w", e.nodes[i].n.ID(), wk.err)
		}
		e.doneCount++
	}
	if e.obs != nil {
		for _, ph := range wk.phases {
			e.obs.NodePhase(i, ph.phase, ph.g0, ph.g1, ph.h0, ph.h1)
		}
	}
}

// runQuantumGraded executes one partially-engaged quantum (DESIGN.md §11):
// Q exceeds the global minimum latency, but the per-link partitioning
// leaves loose nodes whose every link has latency >= Q. Tight partitions
// run the classic event-queue walk one partition at a time — the shared
// queue then only ever holds the current partition's events, and because
// restricting a deterministic total order to a subset preserves relative
// order, each partition's walk is bit-identical to its slice of the classic
// engine's. Frames crossing partitions are deferred by sendFrame (their
// arrival is provably at or past the limit, so mid-quantum routing is
// behavior-neutral); loose nodes are fast-walked exactly as in
// runQuantumFast — concurrently when a pool exists — and everything
// publishes at the barrier in canonical node order.
func (e *engine) runQuantumGraded(hostNow simtime.Host, p *partitioning) {
	e.curPart = p.part
	for _, members := range p.tight {
		for _, m := range members {
			i := int(m)
			ns := e.nodes[i]
			e.walks[i].defs = e.walks[i].defs[:0]
			ns.n.BeginQuantum(e.limit)
			ns.phase = phRunning
			ns.hostNow = hostNow
			ns.inSeg = false
			ns.wakeEv = eventq.Handle{}
			ns.finishHost = hostNow
			if ns.n.Done() {
				e.idleTo(ns, e.limit, hostNow)
				continue
			}
			e.q.PushPri(int64(hostNow), priStep, event{kind: evStep, node: i})
		}
		for e.q.Len() > 0 {
			ev := e.q.Pop()
			e.dispatch(simtime.Host(ev.Time), ev.Payload)
		}
	}
	e.curPart = nil

	// Loose nodes: the same independent walks as a fully-engaged quantum.
	if e.pool != nil {
		e.pool.Run(len(p.loose), e.looseFn)
	} else {
		for _, i := range p.loose {
			e.walkNode(e.nodes[i], &e.walks[i], hostNow)
		}
	}
	for _, i := range p.loose {
		e.foldWalk(int(i))
	}

	// Barrier publication in global node order: loose nodes replay their
	// buffered sends, tight nodes route their deferred cross-partition
	// frames at the controller-arrival host times the classic engine would
	// have dispatched them at. Every arrival time is at or past the limit
	// and every destination is at the barrier, so each delivery is exact.
	for i, ns := range e.nodes {
		if p.fastNode[i] {
			for _, s := range e.walks[i].sends {
				e.sendFrame(ns, s.h, s.tSend, s.f, true)
			}
		} else {
			for _, d := range e.walks[i].defs {
				e.routeFrame(d.h, d.ev)
			}
		}
	}
}

// profPartitionWaits charges each lookahead partition's barrier wait for
// the quantum: the release point minus the partition's last member finish.
// With an unknown partitioning the whole cluster is one partition. Derived
// purely from simulated time, so the attribution is identical for every
// Workers value and engine path.
func (e *engine) profPartitionWaits(p *partitioning, maxH simtime.Host) {
	if p == nil {
		last := e.nodes[0].finishHost
		for _, ns := range e.nodes[1:] {
			last = simtime.MaxHost(last, ns.finishHost)
		}
		e.prof.PartitionWait(maxH.Sub(last))
		return
	}
	if cap(e.partFin) < p.nparts {
		e.partFin = make([]simtime.Host, p.nparts)
	}
	fin := e.partFin[:p.nparts]
	for i := range fin {
		fin[i] = 0
	}
	for i, ns := range e.nodes {
		pid := p.part[i]
		fin[pid] = simtime.MaxHost(fin[pid], ns.finishHost)
	}
	for _, f := range fin {
		e.prof.PartitionWait(maxH.Sub(f))
	}
}

// walkNode steps one node from the quantum start to the barrier without the
// event queue, mirroring stepNode/idleTo/the wake dispatch of the classic
// engine exactly. It touches only state the walking worker owns: the node,
// its nodeState, and its nodeWalk buffers (host.Model lookups are pure).
// Globally visible effects are buffered in wk for the single-threaded
// barrier fold.
func (e *engine) walkNode(ns *nodeState, wk *nodeWalk, hostNow simtime.Host) {
	wk.sends = wk.sends[:0]
	wk.phases = wk.phases[:0]
	wk.busy, wk.idle = 0, 0
	wk.done, wk.err = false, nil

	n := ns.n
	n.BeginQuantum(e.limit)
	ns.inSeg = false
	ns.wakeEv = eventq.Handle{}
	h := hostNow

	finish := func() {
		ns.phase = phAtLimit
		ns.finishHost = h
		ns.hostNow = h
	}
	// idle mirrors idleTo plus the evWake dispatch: charge the idle cost,
	// record the phase, advance the cursor, and wake the node at target.
	// Fast-path idle segments are never truncated or re-aimed — no delivery
	// can land before the limit — so the extent is final at creation.
	idle := func(target simtime.Guest) {
		from := n.Clock()
		if target < from {
			panic(fmt.Sprintf("cluster: node %d idling backwards %v -> %v", n.ID(), from, target))
		}
		cost := e.hostCost(n.ID(), from, target, host.Idle)
		wk.idle += cost
		end := h.Add(cost)
		wk.phases = append(wk.phases, phaseRec{obs.PhaseIdle, from, target, h, end})
		h = end
		ns.doneIdling = n.Done()
		n.WakeAt(target)
	}

	if n.Done() {
		// A finished workload's simulator idles through the quantum.
		idle(e.limit)
		finish()
		return
	}
	for {
		st := n.Step()
		switch st.Kind {
		case guest.StepBusy:
			cost := e.hostCost(n.ID(), st.From, st.To, host.Busy)
			wk.busy += cost
			end := h.Add(cost)
			wk.phases = append(wk.phases, phaseRec{obs.PhaseBusy, st.From, st.To, h, end})
			h = end

		case guest.StepSend:
			wk.sends = append(wk.sends, sendRec{f: st.Frame, tSend: st.To, h: h})

		case guest.StepBlocked:
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, e.limit)
			if target <= st.To {
				// Blocked exactly at the quantum boundary.
				finish()
				return
			}
			idle(target)
			// Loop to Step() again: arrivals already in the receive queue
			// (delivered at earlier barriers) become consumable at target.

		case guest.StepLimit:
			finish()
			return

		case guest.StepDone:
			wk.done = true
			wk.err = st.Err
			ns.doneHost = h
			g := n.Clock()
			wk.phases = append(wk.phases, phaseRec{obs.PhaseDone, g, g, h, h})
			// The simulator keeps idling to the barrier.
			idle(e.limit)
			ns.doneIdling = true
			finish()
			return
		}
	}
}
