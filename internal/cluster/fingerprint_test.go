package cluster

import (
	"reflect"
	"strings"
	"testing"

	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// The fingerprint must be insensitive to packet stream order (the one
// engine-path difference the equivalence tests allow) and sensitive to
// everything else a Result asserts.
func TestFingerprintCanonicalization(t *testing.T) {
	base := func() *Result {
		cfg := testConfig(3, workloads.Uniform(40, 1500, 25*simtime.Microsecond, 5), fixed(simtime.Microsecond))
		cfg.TraceQuanta = true
		cfg.TracePackets = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a, b := base(), base()
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical runs produced different fingerprints")
	}
	if len(a.Packets) < 2 {
		t.Fatal("run routed too few packets to test order insensitivity")
	}

	// Reversing the packet stream must not change the fingerprint...
	rev := *a
	rev.Packets = append([]PacketRecord(nil), a.Packets...)
	for i, j := 0, len(rev.Packets)-1; i < j; i, j = i+1, j-1 {
		rev.Packets[i], rev.Packets[j] = rev.Packets[j], rev.Packets[i]
	}
	if Fingerprint(a) != Fingerprint(&rev) {
		t.Error("fingerprint depends on packet stream order")
	}

	// ...but any change to a packet, a stat, a metric, or a time must.
	mutations := []struct {
		name string
		mut  func(r *Result)
	}{
		{"guest time", func(r *Result) { r.GuestTime++ }},
		{"host time", func(r *Result) { r.HostTime++ }},
		{"policy name", func(r *Result) { r.PolicyName += "x" }},
		{"node finish", func(r *Result) { r.NodeFinish[1]++ }},
		{"stats quanta", func(r *Result) { r.Stats.Quanta++ }},
		{"stats stragglers", func(r *Result) { r.Stats.Stragglers++ }},
		{"stats graded", func(r *Result) { r.Stats.FastPartialQuanta++ }},
		{"quantum record", func(r *Result) { r.Quanta[0].Packets++ }},
		{"packet size", func(r *Result) { r.Packets[0].Size++ }},
		{"packet dropped bit", func(r *Result) { r.Packets[0].Dropped = !r.Packets[0].Dropped }},
		{"metric value", func(r *Result) {
			for k := range r.Metrics[0] {
				r.Metrics[0][k]++
				break
			}
		}},
	}
	want := Fingerprint(a)
	for _, m := range mutations {
		r := base()
		m.mut(r)
		if Fingerprint(r) == want {
			t.Errorf("mutation %q did not change the fingerprint", m.name)
		}
	}
}

// The canonical bytes are versioned and structured; spot-check the header so
// a schema bump cannot happen silently.
func TestCanonicalResultHeader(t *testing.T) {
	cfg := testConfig(2, workloads.PingPong(5, 500), fixed(simtime.Microsecond))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := string(CanonicalResult(res))
	if !strings.HasPrefix(enc, FingerprintSchema+"\n") {
		t.Errorf("canonical encoding does not start with the schema line:\n%s", enc[:80])
	}
	if !strings.Contains(enc, "\nstats ") {
		t.Error("canonical encoding lacks a stats line")
	}
}

// SortPacketsCanonical must be a pure reordering: same multiset, and a
// total order (sorting twice, or sorting a shuffled copy, is stable).
func TestSortPacketsCanonicalIsTotal(t *testing.T) {
	cfg := testConfig(4, workloads.Uniform(60, 1500, 20*simtime.Microsecond, 23), fixed(simtime.Microsecond))
	cfg.TracePackets = true
	cfg.LossRate = 0.3
	cfg.LossSeed = 42
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sorted := SortPacketsCanonical(res.Packets)
	if len(sorted) != len(res.Packets) {
		t.Fatalf("sort changed length: %d -> %d", len(res.Packets), len(sorted))
	}
	rev := append([]PacketRecord(nil), res.Packets...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if !reflect.DeepEqual(sorted, SortPacketsCanonical(rev)) {
		t.Error("canonical order depends on input order")
	}
}
