package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// TestNoStragglersWhenQLeqT verifies the paper's safety condition: with the
// quantum no larger than the minimum network latency T, no packet can ever
// become a straggler, for any workload and node count.
func TestNoStragglersWhenQLeqT(t *testing.T) {
	ws := []workloads.Workload{
		workloads.PingPong(30, 9000),
		workloads.Phases(3, 150*simtime.Microsecond, 32<<10),
		workloads.Uniform(15, 3000, 20*simtime.Microsecond, 7),
	}
	for _, w := range ws {
		for _, nodes := range []int{2, 5, 8} {
			cfg := testConfig(nodes, w, fixed(simtime.Microsecond))
			T := cfg.Net.MinLatency(nodes)
			if simtime.Duration(simtime.Microsecond) > T {
				t.Fatalf("test premise broken: Q=1µs > T=%v", T)
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s ×%d: %v", w.Name, nodes, err)
			}
			if res.Stats.Stragglers != 0 || res.Stats.QuantumSnaps != 0 {
				t.Errorf("%s ×%d: Q<=T produced %d stragglers (%d snaps)",
					w.Name, nodes, res.Stats.Stragglers, res.Stats.QuantumSnaps)
			}
			if res.Stats.Deliveries != res.Stats.Exact {
				t.Errorf("%s ×%d: %d deliveries but %d exact", w.Name, nodes, res.Stats.Deliveries, res.Stats.Exact)
			}
		}
	}
}

// TestGroundTruthInvariantToHostModel verifies the deeper version of the
// same theorem: with Q <= T the *guest-time results* cannot depend on host
// speeds at all — the race that creates stragglers has been synchronized
// away.
func TestGroundTruthInvariantToHostModel(t *testing.T) {
	w := workloads.Phases(3, 100*simtime.Microsecond, 16<<10)
	base := testConfig(4, w, fixed(simtime.Microsecond))
	res1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base
	perturbed.Host.Seed = 999
	perturbed.Host.BusySlowdown = 3
	perturbed.Host.IdleSlowdown = 2.5
	perturbed.Host.JitterSigma = 0.5
	res2, err := Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if res1.GuestTime != res2.GuestTime {
		t.Errorf("ground-truth guest time depends on the host model: %v vs %v", res1.GuestTime, res2.GuestTime)
	}
	m1, _ := res1.Metric("time_s")
	m2, _ := res2.Metric("time_s")
	if m1 != m2 {
		t.Errorf("ground-truth metric depends on the host model: %v vs %v", m1, m2)
	}
}

// TestDeliveryConservation: every frame sent is delivered exactly once
// (unicast) or size-1 times (broadcast), and deliveries partition into
// exact + stragglers.
func TestDeliveryConservation(t *testing.T) {
	for _, q := range []simtime.Duration{simtime.Microsecond, 70 * simtime.Microsecond, simtime.Millisecond} {
		w := workloads.Phases(4, 120*simtime.Microsecond, 24<<10)
		cfg := testConfig(6, w, fixed(q))
		cfg.TracePackets = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Deliveries != len(res.Packets) {
			t.Errorf("q=%v: %d deliveries but %d trace records", q, res.Stats.Deliveries, len(res.Packets))
		}
		if res.Stats.Exact+res.Stats.Stragglers != res.Stats.Deliveries {
			t.Errorf("q=%v: exact %d + stragglers %d != deliveries %d",
				q, res.Stats.Exact, res.Stats.Stragglers, res.Stats.Deliveries)
		}
		for i, p := range res.Packets {
			if p.Arrival < p.Ideal {
				t.Fatalf("q=%v: packet %d delivered before its ideal time (%v < %v)", q, i, p.Arrival, p.Ideal)
			}
			if !p.Straggler && p.Arrival != p.Ideal {
				t.Fatalf("q=%v: packet %d marked exact but delivered at %v vs ideal %v", q, i, p.Arrival, p.Ideal)
			}
			if p.Ideal < p.SendGuest {
				t.Fatalf("q=%v: packet %d ideal arrival precedes its send", q, i)
			}
		}
	}
}

// TestAccuracyMonotonicityCoarse: accuracy error at Q=1ms should not be
// better than at Q=1µs-ground-truth-equivalents, and host time should fall
// as Q grows, for a communication-bearing workload.
func TestAccuracyMonotonicityCoarse(t *testing.T) {
	w := workloads.Phases(5, 200*simtime.Microsecond, 48<<10)
	var hosts []simtime.Duration
	for _, q := range []simtime.Duration{simtime.Microsecond, 10 * simtime.Microsecond, 100 * simtime.Microsecond, simtime.Millisecond} {
		res, err := Run(testConfig(4, w, fixed(q)))
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, res.HostTime)
	}
	for i := 1; i < len(hosts); i++ {
		if hosts[i] >= hosts[i-1] {
			t.Errorf("host time did not fall from Q step %d: %v -> %v", i, hosts[i-1], hosts[i])
		}
	}
}

// TestQuantumTraceConsistency: quantum records tile guest time without gaps
// and host intervals are non-overlapping and increasing.
func TestQuantumTraceConsistency(t *testing.T) {
	w := workloads.Phases(3, 150*simtime.Microsecond, 16<<10)
	cfg := testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02))
	cfg.TraceQuanta = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quanta) != res.Stats.Quanta {
		t.Fatalf("trace has %d records for %d quanta", len(res.Quanta), res.Stats.Quanta)
	}
	for i, q := range res.Quanta {
		if q.Index != i {
			t.Errorf("record %d has index %d", i, q.Index)
		}
		if i == 0 {
			continue
		}
		prev := res.Quanta[i-1]
		if q.Start != prev.Start.Add(prev.Q) {
			t.Errorf("quantum %d starts at %v, expected %v", i, q.Start, prev.Start.Add(prev.Q))
		}
		if q.HostStart != prev.HostEnd {
			t.Errorf("quantum %d host start %v != previous end %v", i, q.HostStart, prev.HostEnd)
		}
		if q.HostEnd < q.HostStart {
			t.Errorf("quantum %d negative host interval", i)
		}
	}
}

// TestAdaptiveQuantumRespondsToTraffic: quanta carrying packets must be
// followed by smaller quanta; long silences by growth (Algorithm 1 observed
// end-to-end through the engine).
func TestAdaptiveQuantumRespondsToTraffic(t *testing.T) {
	w := workloads.Phases(3, 500*simtime.Microsecond, 16<<10)
	cfg := testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02))
	cfg.TraceQuanta = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 1; i < len(res.Quanta); i++ {
		prev, cur := res.Quanta[i-1], res.Quanta[i]
		if prev.Packets > 0 && cur.Q > prev.Q {
			violations++
		}
		if prev.Packets == 0 && cur.Q < prev.Q {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d Algorithm-1 violations in the quantum trace", violations)
	}
	if res.Stats.MaxQ <= res.Stats.MinQ {
		t.Error("adaptive quantum never moved")
	}
}

// TestDeterminismProperty: identical configs yield identical results across
// a range of random workload shapes.
func TestDeterminismProperty(t *testing.T) {
	f := func(phases, computeUs, burstKB uint8, seed uint16) bool {
		w := workloads.Uniform(int(phases%8)+2, int(burstKB)*100+100,
			simtime.Duration(computeUs%100+10)*simtime.Microsecond, uint64(seed))
		cfg := testConfig(3, w, adaptive(simtime.Microsecond, 500*simtime.Microsecond, 1.04, 0.05))
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		return a.GuestTime == b.GuestTime && a.HostTime == b.HostTime && a.Stats == b.Stats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// logObs records every observer callback as one formatted line, so two
// runs' hook streams can be compared verbatim.
type logObs struct {
	lines []string
}

func (l *logObs) logf(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logObs) RunStart(info obs.RunInfo) { l.logf("run start %+v", info) }
func (l *logObs) RunEnd(sum obs.RunSummary) { l.logf("run end %+v", sum) }
func (l *logObs) QuantumStart(i int, s simtime.Guest, q simtime.Duration, h simtime.Host) {
	l.logf("q start %d %v %v %v", i, s, q, h)
}
func (l *logObs) QuantumEnd(rec obs.QuantumRecord) { l.logf("q end %+v", rec) }
func (l *logObs) Packet(rec obs.PacketRecord)      { l.logf("packet %+v", rec) }
func (l *logObs) NodePhase(node int, ph obs.Phase, gF, gT simtime.Guest, hF, hT simtime.Host) {
	l.logf("node %d %v %v->%v %v->%v", node, ph, gF, gT, hF, hT)
}

// TestObservedStreamDeterminism: two runs of the same config must produce
// identical Stats, identical QuantumRecord/PacketRecord traces, and an
// identical sequence of observer callbacks — the streaming layer inherits
// the engine's replayability.
func TestObservedStreamDeterminism(t *testing.T) {
	w := workloads.Phases(4, 180*simtime.Microsecond, 24<<10)
	runOnce := func() (*Result, *logObs) {
		cfg := testConfig(5, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02))
		cfg.TraceQuanta = true
		cfg.TracePackets = true
		lo := &logObs{}
		cfg.Observer = lo
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, lo
	}
	res1, log1 := runOnce()
	res2, log2 := runOnce()

	if res1.Stats != res2.Stats {
		t.Errorf("Stats differ between identical runs:\n%+v\n%+v", res1.Stats, res2.Stats)
	}
	if !reflect.DeepEqual(res1.Quanta, res2.Quanta) {
		t.Error("QuantumRecord traces differ between identical runs")
	}
	if !reflect.DeepEqual(res1.Packets, res2.Packets) {
		t.Error("PacketRecord traces differ between identical runs")
	}
	if len(log1.lines) != len(log2.lines) {
		t.Fatalf("callback streams differ in length: %d vs %d", len(log1.lines), len(log2.lines))
	}
	for i := range log1.lines {
		if log1.lines[i] != log2.lines[i] {
			t.Fatalf("callback %d differs:\n%s\n%s", i, log1.lines[i], log2.lines[i])
		}
	}
	if len(log1.lines) == 0 {
		t.Fatal("observer saw no callbacks")
	}
	// Every trace record must have streamed through a QuantumEnd hook.
	qe := 0
	for _, line := range log1.lines {
		if len(line) > 5 && line[:5] == "q end" {
			qe++
		}
	}
	if qe != len(res1.Quanta) {
		t.Errorf("streamed %d QuantumEnd hooks, Result has %d records", qe, len(res1.Quanta))
	}
}

// TestErrorPaths exercises config validation.
func TestErrorPaths(t *testing.T) {
	w := workloads.Silent(simtime.Microsecond)
	bad := []func(c *Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Net = nil },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Program = nil },
		func(c *Config) { c.Guest.CPUHz = 0 },
		func(c *Config) { c.Host.BusySlowdown = -1 },
	}
	for i, mod := range bad {
		cfg := testConfig(2, w, fixed(simtime.Microsecond))
		mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGuestLimitAborts(t *testing.T) {
	// A workload far longer than MaxGuest must abort cleanly.
	cfg := testConfig(2, workloads.PingPong(1000000, 100), fixed(simtime.Microsecond))
	cfg.MaxGuest = simtime.Guest(500 * simtime.Microsecond)
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run past MaxGuest returned no error")
	}
}

func TestZeroQuantumPolicyRejected(t *testing.T) {
	w := workloads.Silent(simtime.Microsecond)
	cfg := testConfig(2, w, func() quantum.Policy { return quantum.Fixed{Q: 0} })
	if _, err := Run(cfg); err == nil {
		t.Error("zero-quantum policy accepted")
	}
}

// TestHostTimeBreakdown: the busy/idle/barrier accounting must be sane —
// non-negative, with barriers equal to quanta × barrier cost plus packet
// occupancy, and busy time close to total compute × slowdown.
func TestHostTimeBreakdown(t *testing.T) {
	w := workloads.Phases(3, 300*simtime.Microsecond, 16<<10)
	cfg := testConfig(4, w, fixed(20*simtime.Microsecond))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.HostBusy <= 0 || st.HostIdle < 0 || st.HostBarrier <= 0 {
		t.Fatalf("nonsense breakdown: busy=%v idle=%v barrier=%v", st.HostBusy, st.HostIdle, st.HostBarrier)
	}
	wantBarrier := simtime.Duration(st.Quanta)*cfg.Host.BarrierCost +
		simtime.Duration(st.Packets)*cfg.Host.PacketHostCost
	if st.HostBarrier != wantBarrier {
		t.Errorf("barrier accounting %v, want %v", st.HostBarrier, wantBarrier)
	}
	// 4 nodes × 3 phases × 300µs of compute at ~20x slowdown, plus protocol
	// overheads: busy must be within a factor of the nominal compute cost.
	nominal := simtime.Duration(float64(4*3*300*simtime.Microsecond) * cfg.Host.BusySlowdown)
	if st.HostBusy < nominal || st.HostBusy > nominal*2 {
		t.Errorf("busy accounting %v outside [%v, %v]", st.HostBusy, nominal, nominal*2)
	}
	t.Logf("breakdown: busy=%v idle=%v barrier=%v (host total %v)", st.HostBusy, st.HostIdle, st.HostBarrier, res.HostTime)
}

// packetOrderProbe records the observer stream like recorder and additionally
// groups packet records by quantum for delivery-order assertions.
type packetOrderProbe struct {
	recorder
	quanta [][]obs.PacketRecord
}

func (p *packetOrderProbe) QuantumStart(i int, start simtime.Guest, q simtime.Duration, h simtime.Host) {
	p.recorder.QuantumStart(i, start, q, h)
	p.quanta = append(p.quanta, nil)
}

func (p *packetOrderProbe) Packet(rec obs.PacketRecord) {
	p.recorder.Packet(rec)
	p.quanta[len(p.quanta)-1] = append(p.quanta[len(p.quanta)-1], rec)
}

// TestBatchedRoutingCanonicalOrder is the batched-router property test: for
// random fat-tree geometries, workloads, quanta and fault plans (loss,
// duplication, delay jitter), the barrier-time batched router must
//
//  1. leave the Result bit-identical to the classic one-frame-at-a-time
//     engine (Workers == 0),
//  2. produce an observer stream invariant to the worker count — routing
//     order is the canonical one, never a worker-schedule artifact, and
//  3. on fully-eligible quanta (Q <= T), emit each quantum's packet records
//     in canonical (node, seq) order: sources ascending, and each source's
//     frames in send order, with fault-injected duplicates adjacent to
//     their originals.
func TestBatchedRoutingCanonicalOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260807))
	ordered := 0
	for trial := 0; trial < 10; trial++ {
		nodes := 2 + rnd.Intn(7)
		net := &netmodel.Model{
			NIC: &netmodel.SimpleNIC{
				BaseLatency:    simtime.Duration(500+rnd.Intn(1500)) * simtime.Nanosecond,
				BytesPerSecond: 10e9,
			},
			Switch: &netmodel.FatTreeSwitch{
				Radix:       2 + rnd.Intn(3),
				EdgeLatency: simtime.Duration(500+rnd.Intn(1500)) * simtime.Nanosecond,
				CoreLatency: simtime.Duration(2+rnd.Intn(40)) * simtime.Microsecond,
			},
		}
		// Fault plans that drop frames pair only with the fire-and-forget
		// Uniform workload: a collective or request/reply protocol waits
		// forever for a lost message (the suite-wide convention, see
		// fastCases). Duplication and jitter alone are safe everywhere.
		var w workloads.Workload
		lossOK := false
		switch rnd.Intn(3) {
		case 0:
			w = workloads.Uniform(30+rnd.Intn(50), 500+rnd.Intn(3500),
				simtime.Duration(10+rnd.Intn(30))*simtime.Microsecond, rnd.Uint64())
			lossOK = true
		case 1:
			w = workloads.Phases(2+rnd.Intn(3),
				simtime.Duration(100+rnd.Intn(100))*simtime.Microsecond, 8<<10+rnd.Intn(24<<10))
		default:
			w = workloads.PingPong(10+rnd.Intn(20), 500+rnd.Intn(3500))
		}
		qs := []simtime.Duration{simtime.Microsecond, 2 * simtime.Microsecond,
			5 * simtime.Microsecond, 50 * simtime.Microsecond}
		q := qs[rnd.Intn(len(qs))]
		var plan *faults.Plan
		if rnd.Intn(2) == 0 {
			link := faults.Link{
				Dup:    rnd.Float64() * 0.25,
				Jitter: simtime.Duration(rnd.Intn(4000)) * simtime.Nanosecond,
			}
			if lossOK {
				link.Loss = rnd.Float64() * 0.25
			}
			plan = &faults.Plan{Seed: rnd.Uint64(), Default: link}
		}
		name := fmt.Sprintf("trial %d: %s ×%d Q=%v faults=%v", trial, w.Name, nodes, q, plan != nil)

		var results []*Result
		var streams [][]string
		var probe1 *packetOrderProbe
		for _, workers := range []int{0, 1, 3} {
			pr := &packetOrderProbe{}
			cfg := testConfig(nodes, w, fixed(q))
			cfg.Net = net
			cfg.Workers = workers
			cfg.Lookahead = LookaheadMatrix
			cfg.TraceQuanta = true
			cfg.TracePackets = true
			cfg.Faults = plan
			cfg.Observer = pr
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			results = append(results, res)
			streams = append(streams, pr.events)
			if workers == 1 {
				probe1 = pr
			}
		}
		// Workers >= 1 must agree on everything including stream order: the
		// batched route order is canonical, never a worker-schedule artifact.
		if !reflect.DeepEqual(results[1], results[2]) {
			t.Errorf("%s: Result differs between workers=1 and workers=3:\n%+v\nvs\n%+v",
				name, *results[1], *results[2])
		}
		if !reflect.DeepEqual(streams[1], streams[2]) {
			t.Errorf("%s: observer stream differs between workers=1 and workers=3", name)
		}
		// The classic engine interleaves its packet trace in host-event
		// order (the documented Workers == 0 exception), so against it the
		// trace compares as a multiset; every other field is bit-identical.
		sortedPkts := func(res *Result) []string {
			ps := make([]string, len(res.Packets))
			for i, p := range res.Packets {
				ps[i] = fmt.Sprintf("%+v", p)
			}
			sort.Strings(ps)
			return ps
		}
		if !reflect.DeepEqual(sortedPkts(results[0]), sortedPkts(results[1])) {
			t.Errorf("%s: packet multiset differs between workers=0 and workers=1", name)
		}
		r0, r1 := *results[0], *results[1]
		r0.Packets, r1.Packets = nil, nil
		if !reflect.DeepEqual(r0, r1) {
			t.Errorf("%s: Result (modulo packet-trace order) differs between workers=0 and workers=1:\n%+v\nvs\n%+v",
				name, r0, r1)
		}
		if q > net.MinLatency(nodes) {
			continue // partially or fully classic quanta: batched order not total
		}
		ordered++
		for qi, pkts := range probe1.quanta {
			for k := 1; k < len(pkts); k++ {
				prev, cur := pkts[k-1], pkts[k]
				if cur.Duplicate {
					if cur.Src != prev.Src || cur.SendGuest != prev.SendGuest {
						t.Errorf("%s: quantum %d packet %d: duplicate not adjacent to its original", name, qi, k)
					}
					continue
				}
				if cur.Src < prev.Src {
					t.Errorf("%s: quantum %d packet %d: source %d after %d — not canonical node order",
						name, qi, k, cur.Src, prev.Src)
				} else if cur.Src == prev.Src && cur.SendGuest < prev.SendGuest {
					t.Errorf("%s: quantum %d packet %d: send time %v after %v — not canonical send order",
						name, qi, k, cur.SendGuest, prev.SendGuest)
				}
			}
		}
	}
	if ordered == 0 {
		t.Fatal("no trial exercised the fully-eligible order check — widen the quantum choices")
	}
}
