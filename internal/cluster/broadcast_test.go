package cluster

import (
	"fmt"
	"testing"

	"clustersim/internal/guest"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// TestBroadcastReachesAllPeers: a link-layer broadcast must be delivered to
// every node except the sender, each with its own exact arrival time.
func TestBroadcastReachesAllPeers(t *testing.T) {
	const nodes = 6
	counts := make([]int, nodes)
	w := workloads.Workload{
		Name: "bcast",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				if rank == 0 {
					p.Broadcast(pkt.ProtoRaw, 500, nil)
					return nil
				}
				a := p.Recv()
				if !a.Frame.Dst.IsBroadcast() {
					return fmt.Errorf("rank %d got non-broadcast frame", rank)
				}
				counts[rank]++
				return nil
			}
		},
	}
	res, err := Run(testConfig(nodes, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < nodes; r++ {
		if counts[r] != 1 {
			t.Errorf("rank %d received %d broadcast copies", r, counts[r])
		}
	}
	if res.Stats.Deliveries != nodes-1 {
		t.Errorf("expected %d deliveries, got %d", nodes-1, res.Stats.Deliveries)
	}
	if res.Stats.Stragglers != 0 {
		t.Error("broadcast at ground truth produced stragglers")
	}
}

// TestSelfSendLoopsThroughSwitch: a frame addressed to the sender itself is
// routed like any other and arrives after the network latency.
func TestSelfSendLoopsThroughSwitch(t *testing.T) {
	var arrival simtime.Guest
	w := workloads.Workload{
		Name: "self",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				if rank != 0 {
					return nil
				}
				p.Send(0, pkt.ProtoRaw, 100, nil)
				a := p.Recv()
				arrival = a.Time
				return nil
			}
		},
	}
	res, err := Run(testConfig(2, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deliveries != 1 {
		t.Fatalf("expected 1 delivery, got %d", res.Stats.Deliveries)
	}
	if arrival < simtime.Guest(simtime.Microsecond) {
		t.Errorf("self-send arrived at %v, before the NIC latency", arrival)
	}
}

// TestUnknownMACIsCountedNotDelivered: traffic to a MAC outside the cluster
// is flooded nowhere but still loads the controller (counts as np).
func TestUnknownMACIsCountedNotDelivered(t *testing.T) {
	w := workloads.Workload{
		Name: "stray",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				if rank == 0 {
					p.Send(99, pkt.ProtoRaw, 100, nil) // node 99 does not exist
				}
				return nil
			}
		},
	}
	res, err := Run(testConfig(2, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets != 1 || res.Stats.Deliveries != 0 {
		t.Errorf("stray frame: packets=%d deliveries=%d", res.Stats.Packets, res.Stats.Deliveries)
	}
}

// TestBroadcastFeedsAdaptivePolicy: broadcast replicas count as traffic, so
// the quantum must collapse after one.
func TestBroadcastFeedsAdaptivePolicy(t *testing.T) {
	w := workloads.Workload{
		Name: "bcast-adaptive",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				p.Compute(2 * simtime.Millisecond)
				if rank == 0 {
					p.Broadcast(pkt.ProtoRaw, 100, nil)
				}
				p.Compute(500 * simtime.Microsecond)
				return nil
			}
		},
	}
	cfg := testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02))
	cfg.TraceQuanta = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	collapsed := false
	for i := 1; i < len(res.Quanta); i++ {
		if res.Quanta[i-1].Packets > 0 && res.Quanta[i].Q < res.Quanta[i-1].Q/10 {
			collapsed = true
		}
	}
	if !collapsed {
		t.Error("quantum never collapsed after the broadcast burst")
	}
}
