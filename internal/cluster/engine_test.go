package cluster

import (
	"testing"

	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// testConfig builds a baseline config for n nodes running w.
func testConfig(n int, w workloads.Workload, pol func() quantum.Policy) Config {
	return Config{
		Nodes:    n,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   pol,
		Program:  w.New,
		MaxGuest: simtime.Guest(100 * simtime.Second),
	}
}

func fixed(q simtime.Duration) func() quantum.Policy {
	return func() quantum.Policy { return quantum.Fixed{Q: q} }
}

func adaptive(min, max simtime.Duration, inc, dec float64) func() quantum.Policy {
	return func() quantum.Policy { return quantum.NewAdaptive(min, max, inc, dec) }
}

func TestSilentRun(t *testing.T) {
	w := workloads.Silent(500 * simtime.Microsecond)
	res, err := Run(testConfig(4, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestTime < simtime.Guest(500*simtime.Microsecond) {
		t.Errorf("guest time %v shorter than the workload's compute", res.GuestTime)
	}
	if res.Stats.Packets != 0 {
		t.Errorf("silent workload routed %d packets", res.Stats.Packets)
	}
	if res.Stats.Quanta < 500 {
		t.Errorf("expected ~500 quanta at Q=1µs, got %d", res.Stats.Quanta)
	}
}

func TestPingPongGroundTruthLatency(t *testing.T) {
	w := workloads.PingPong(50, 1000)
	res, err := Run(testConfig(2, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stragglers != 0 {
		t.Fatalf("ground truth (Q=1µs <= T) produced %d stragglers", res.Stats.Stragglers)
	}
	rtt, ok := res.Metric("rtt_us")
	if !ok {
		t.Fatal("rank 0 did not report rtt_us")
	}
	// Each leg: ~1µs wire latency + ~0.8µs serialization + guest overheads.
	if rtt < 2 || rtt > 20 {
		t.Errorf("ground-truth RTT %.2fµs outside the plausible [2,20]µs band", rtt)
	}
	t.Logf("ground-truth RTT: %.3fµs over %d quanta", rtt, res.Stats.Quanta)
}

func TestPingPongLargeQuantumInflatesLatency(t *testing.T) {
	w := workloads.PingPong(50, 1000)
	base, err := Run(testConfig(2, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(testConfig(2, w, fixed(100*simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	rttBase, _ := base.Metric("rtt_us")
	rttBig, _ := big.Metric("rtt_us")
	if rttBig <= rttBase {
		t.Errorf("Q=100µs RTT %.2fµs not above ground truth %.2fµs", rttBig, rttBase)
	}
	if big.Stats.Stragglers == 0 {
		t.Error("Q=100µs ping-pong produced no stragglers")
	}
	if big.HostTime >= base.HostTime {
		t.Errorf("Q=100µs host time %v not below ground truth %v", big.HostTime, base.HostTime)
	}
	t.Logf("RTT: base %.2fµs big %.2fµs; host: base %v big %v; stragglers %d snaps %d",
		rttBase, rttBig, base.HostTime, big.HostTime, big.Stats.Stragglers, big.Stats.QuantumSnaps)
}

func TestDeterminism(t *testing.T) {
	w := workloads.Phases(5, 200*simtime.Microsecond, 64<<10)
	run := func() *Result {
		res, err := Run(testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.GuestTime != b.GuestTime || a.HostTime != b.HostTime {
		t.Errorf("non-deterministic results: (%v,%v) vs (%v,%v)",
			a.GuestTime, a.HostTime, b.GuestTime, b.HostTime)
	}
	if a.Stats != b.Stats {
		t.Errorf("non-deterministic stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestAdaptiveFasterThanGroundTruthOnPhases(t *testing.T) {
	w := workloads.Phases(4, 2*simtime.Millisecond, 32<<10)
	base, err := Run(testConfig(4, w, fixed(simtime.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(testConfig(4, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.03, 0.02)))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.HostTime) / float64(dyn.HostTime)
	tBase, _ := base.Metric("time_s")
	tDyn, _ := dyn.Metric("time_s")
	errRel := (tDyn - tBase) / tBase
	if errRel < 0 {
		errRel = -errRel
	}
	t.Logf("adaptive speedup %.1fx, time error %.2f%%, quanta %d (mean Q %v)",
		speedup, errRel*100, dyn.Stats.Quanta, dyn.Stats.MeanQ)
	if speedup < 2 {
		t.Errorf("adaptive speedup %.2fx too small on a phase workload", speedup)
	}
	if errRel > 0.25 {
		t.Errorf("adaptive time error %.1f%% too large", errRel*100)
	}
}
