package cluster

import (
	"testing"

	"clustersim/internal/guest"
	"clustersim/internal/msg"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// contendedNet returns the paper network plus a 10 GB/s output-queued
// switch port per destination.
func contendedNet() *netmodel.Model {
	m := netmodel.Paper()
	m.Output = &netmodel.OutputQueue{BytesPerSecond: 10e9, Latency: 200 * simtime.Nanosecond}
	return m
}

// incast: every rank but 0 sends one jumbo message to rank 0 at t=0.
func incast(msgBytes int) workloads.Workload {
	return workloads.Workload{
		Name:   "incast",
		Metric: "last_us",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				ep := msg.New(p, pkt.DefaultMTU)
				if rank != 0 {
					ep.Send(0, 1, msgBytes)
					return nil
				}
				var last simtime.Guest
				for i := 0; i < size-1; i++ {
					m := ep.Recv(msg.Any, 1)
					last = m.Arrival
				}
				p.Report("last_us", simtime.Duration(last).Microseconds())
				return nil
			}
		},
	}
}

func TestOutputQueueDelaysIncast(t *testing.T) {
	w := incast(8 << 10)
	perfect := testConfig(8, w, fixed(simtime.Microsecond))
	res1, err := Run(perfect)
	if err != nil {
		t.Fatal(err)
	}
	contended := testConfig(8, w, fixed(simtime.Microsecond))
	contended.Net = contendedNet()
	res2, err := Run(contended)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := res1.Metric("last_us")
	l2, _ := res2.Metric("last_us")
	if l2 <= l1 {
		t.Errorf("incast under port contention finished at %vµs, not later than perfect switch %vµs", l2, l1)
	}
	// Seven 8KiB senders drain through one 10GB/s port: the last arrival
	// must be pushed back by roughly 6 × ~0.83µs of queueing.
	if l2-l1 < 2 {
		t.Errorf("contention delay %vµs implausibly small", l2-l1)
	}
	t.Logf("incast completion: perfect %vµs, contended %vµs", l1, l2)
}

func TestOutputQueueStillNoStragglersAtGroundTruth(t *testing.T) {
	// Port contention only increases latencies, so Q <= T remains safe.
	w := incast(8 << 10)
	cfg := testConfig(8, w, fixed(simtime.Microsecond))
	cfg.Net = contendedNet()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stragglers != 0 {
		t.Errorf("contended ground truth produced %d stragglers", res.Stats.Stragglers)
	}
}

func TestOutputQueueDeterministic(t *testing.T) {
	w := workloads.Phases(3, 150*simtime.Microsecond, 32<<10)
	cfg := testConfig(6, w, adaptive(simtime.Microsecond, simtime.Millisecond, 1.04, 0.05))
	cfg.Net = contendedNet()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GuestTime != b.GuestTime || a.Stats != b.Stats {
		t.Error("contended runs not deterministic")
	}
}

func TestLossValidation(t *testing.T) {
	w := workloads.Silent(simtime.Microsecond)
	cfg := testConfig(2, w, fixed(simtime.Microsecond))
	cfg.LossRate = 1.0
	if _, err := Run(cfg); err == nil {
		t.Error("LossRate=1 accepted")
	}
	cfg.LossRate = -0.1
	if _, err := Run(cfg); err == nil {
		t.Error("negative LossRate accepted")
	}
}
