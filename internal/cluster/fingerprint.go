package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// This file defines the canonical result fingerprint: a deterministic byte
// encoding of everything a Result asserts about a run, hashed to a short
// hex string. It is the single definition of "two runs produced the same
// outcome" shared by the fast-path equivalence tests and the scenario
// regression fleet (cmd/simfleet), which diffs fingerprints against
// committed goldens — so a PR that changes any simulated outcome, anywhere
// in the study surface, trips exactly one cheap check instead of a
// hand-rolled comparison matrix.
//
// Canonicalization rules:
//
//   - Metrics maps are encoded with sorted keys (map order is not part of a
//     run's outcome).
//   - The packet trace is encoded as a sorted multiset: the classic engine
//     interleaves deliveries in host-event order while the fast path routes
//     at the barrier in canonical (node, seq) order, but the recorded
//     deliveries themselves are proven identical (see fastpath_test.go), so
//     the fingerprint must not depend on stream order.
//   - Everything else — times, stats, per-quantum records, policy name — is
//     encoded field by field in declaration order. Integer-only: simtime
//     values print as int64 nanoseconds, float metrics with strconv's
//     shortest round-trip formatting via %v.
//
// The encoding is versioned so a golden mismatch caused by a fingerprint
// schema change is distinguishable from a simulation change.

// FingerprintSchema versions the canonical encoding produced by
// CanonicalResult. Bump it whenever the encoding (not the simulation)
// changes, and regenerate fleet goldens in the same commit.
const FingerprintSchema = "clustersim-fp/1"

// SortPacketsCanonical returns a copy of ps sorted into the canonical
// packet-multiset order: by send time, then source, destination, ideal and
// actual arrival, size, and the fault/straggler classification bits. Two
// engine paths that deliver the same multiset of packets in different
// stream orders canonicalize to the same slice.
func SortPacketsCanonical(ps []PacketRecord) []PacketRecord {
	out := append([]PacketRecord(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.SendGuest != b.SendGuest:
			return a.SendGuest < b.SendGuest
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Dst != b.Dst:
			return a.Dst < b.Dst
		case a.Ideal != b.Ideal:
			return a.Ideal < b.Ideal
		case a.Arrival != b.Arrival:
			return a.Arrival < b.Arrival
		case a.Size != b.Size:
			return a.Size < b.Size
		case a.Dropped != b.Dropped:
			return b.Dropped
		case a.Duplicate != b.Duplicate:
			return b.Duplicate
		case a.Straggler != b.Straggler:
			return b.Straggler
		default:
			return !a.Snapped && b.Snapped
		}
	})
	return out
}

// CanonicalResult encodes res into its canonical byte form. The encoding is
// identical for every engine path and worker count that produces the same
// simulated outcome: Workers {0, 1, N} runs of one configuration yield the
// same bytes, and any divergence in Result, Stats, quantum records, or the
// packet multiset changes them.
func CanonicalResult(res *Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", FingerprintSchema)
	fmt.Fprintf(&b, "policy %s\n", res.PolicyName)
	fmt.Fprintf(&b, "guest %d host %d\n", int64(res.GuestTime), int64(res.HostTime))
	fmt.Fprintf(&b, "finish")
	for _, f := range res.NodeFinish {
		fmt.Fprintf(&b, " %d", int64(f))
	}
	b.WriteByte('\n')
	for i, m := range res.Metrics {
		keys := make([]string, 0, len(m))
		//simlint:maporder keys are collected then sorted before encoding
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "metrics %d", i)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%v", k, m[k])
		}
		b.WriteByte('\n')
	}
	s := res.Stats
	fmt.Fprintf(&b, "stats q=%d pk=%d del=%d ex=%d str=%d snap=%d strd=%d drop=%d dup=%d busy=%d idle=%d barr=%d minq=%d maxq=%d meanq=%d silent=%d ffull=%d fpart=%d fnode=%d pparts=%d\n",
		s.Quanta, s.Packets, s.Deliveries, s.Exact, s.Stragglers, s.QuantumSnaps,
		int64(s.StragglerDelay), s.Dropped, s.Duplicated,
		int64(s.HostBusy), int64(s.HostIdle), int64(s.HostBarrier),
		int64(s.MinQ), int64(s.MaxQ), int64(s.MeanQ), s.SilentQuanta,
		s.FastFullQuanta, s.FastPartialQuanta, s.FastNodeQuanta, s.PartialPartitions)
	for _, q := range res.Quanta {
		fmt.Fprintf(&b, "quantum %d %d %d %d %d %d %d %d %t\n",
			q.Index, int64(q.Start), int64(q.Q), q.Packets, q.Stragglers,
			int64(q.HostStart), int64(q.BarrierStart), int64(q.HostEnd), q.FastEligible)
	}
	for _, p := range SortPacketsCanonical(res.Packets) {
		fmt.Fprintf(&b, "packet %d %d %d %d %d %d %t %t %t %t\n",
			int64(p.SendGuest), p.Src, p.Dst, int64(p.Ideal), int64(p.Arrival), p.Size,
			p.Straggler, p.Snapped, p.Dropped, p.Duplicate)
	}
	return b.Bytes()
}

// Fingerprint returns the canonical result fingerprint: the hex SHA-256 of
// CanonicalResult. Equal fingerprints mean equal outcomes (up to hash
// collision); the fleet goldens in testdata/fleet/ commit these strings.
func Fingerprint(res *Result) string {
	sum := sha256.Sum256(CanonicalResult(res))
	return hex.EncodeToString(sum[:])
}
