package cluster

import (
	"testing"

	"clustersim/internal/guest"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/simtime"
)

// quantumLog collects every QuantumEnd record. The parallel controller fires
// QuantumEnd from its own goroutine only (with the run mutex held), so no
// locking is needed here — -race confirms that claim.
type quantumLog struct {
	obs.Base
	recs []obs.QuantumRecord
}

func (q *quantumLog) QuantumEnd(rec obs.QuantumRecord) { q.recs = append(q.recs, rec) }

// TestParallelUnevenFinishBookkeeping drives a workload whose ranks finish at
// very different guest times — rank r computes (r+1) phases, so with a small
// fixed quantum the fast ranks stand done at the barrier for most of the run.
// It pins the HostBarrier accounting: Stats.HostBarrier must equal the sum of
// the per-quantum barrier spans exactly, every span must lie inside its
// quantum, and the quantum count must match the record stream however the
// finishes interleave. Run under -race this also stresses the arrival
// pre-counting of already-done nodes.
func TestParallelUnevenFinishBookkeeping(t *testing.T) {
	const nodes = 5
	uneven := func(rank, size int) guest.Program {
		return func(p *guest.Proc) error {
			for i := 0; i <= rank; i++ {
				p.Compute(60 * simtime.Microsecond)
				if rank != 0 {
					p.Send(0, 0, 256, nil)
				}
			}
			if rank == 0 {
				// Rank 0 drains every other rank's messages (rank r sends
				// r+1 of them), so it is the last to finish while the rest
				// sit done at the barrier.
				for got := 0; got < size*(size+1)/2-1; got++ {
					p.Recv()
				}
			}
			p.Report("rounds", float64(rank+1))
			return nil
		}
	}
	for iter := 0; iter < 4; iter++ {
		log := &quantumLog{}
		res, err := RunParallel(ParallelConfig{
			Nodes:            nodes,
			Guest:            guest.DefaultConfig(),
			Net:              netmodel.Paper(),
			Policy:           fixed(20 * simtime.Microsecond),
			Program:          uneven,
			SpinPerGuestBusy: 0.01,
			MaxGuest:         simtime.Guest(simtime.Second),
			Observer:         log,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Quanta != len(log.recs) {
			t.Fatalf("Stats.Quanta = %d but %d QuantumEnd records", res.Stats.Quanta, len(log.recs))
		}
		var barrier simtime.Duration
		for i, rec := range log.recs {
			if rec.Index != i {
				t.Fatalf("record %d has index %d", i, rec.Index)
			}
			if rec.BarrierStart < rec.HostStart || rec.HostEnd < rec.BarrierStart {
				t.Fatalf("quantum %d: barrier span [%v, %v] outside quantum [%v, %v]",
					i, rec.BarrierStart, rec.HostEnd, rec.HostStart, rec.HostEnd)
			}
			if i > 0 && rec.HostStart < log.recs[i-1].HostEnd {
				t.Fatalf("quantum %d starts at %v before quantum %d ended at %v",
					i, rec.HostStart, i-1, log.recs[i-1].HostEnd)
			}
			barrier += rec.HostEnd.Sub(rec.BarrierStart)
		}
		if res.Stats.HostBarrier != barrier {
			t.Fatalf("Stats.HostBarrier = %v, sum of record spans = %v", res.Stats.HostBarrier, barrier)
		}
		// The slowest rank runs nodes phases of 60µs; every earlier finisher
		// must not shorten the run.
		if min := simtime.Guest(nodes * 60 * simtime.Microsecond); res.GuestTime < min {
			t.Fatalf("guest time %v shorter than the slowest rank's compute %v", res.GuestTime, min)
		}
		for rank, m := range res.Metrics {
			if m["rounds"] != float64(rank+1) {
				t.Fatalf("rank %d reported rounds=%v, want %d", rank, m["rounds"], rank+1)
			}
		}
	}
}
