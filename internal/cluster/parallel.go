package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/faults"
	"clustersim/internal/guest"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/pkt"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

// ParallelConfig configures a real-time parallel run: one OS-scheduled
// goroutine per simulated node, synchronized by a real barrier, exchanging
// frames through a mutex-guarded controller — the shape of the paper's
// actual deployment (N SimNow processes + a network controller process).
//
// Unlike the deterministic engine, wall-clock time is real and straggler
// races come from the Go scheduler, so results vary run to run exactly as
// the paper's did. Guest idle is modelled as infinitely fast (a blocked
// simulator reaches its quantum boundary immediately), the limiting case of
// the deterministic engine's IdleSlowdown → 0.
type ParallelConfig struct {
	Nodes   int
	Guest   guest.Config
	Net     *netmodel.Model
	Policy  func() quantum.Policy
	Program func(rank, size int) guest.Program
	// SpinPerGuestBusy is real nanoseconds of host CPU burned per guest
	// nanosecond of busy execution — the real-time analogue of the host
	// model's BusySlowdown. Zero runs at full speed (no spinning).
	SpinPerGuestBusy float64
	// MaxGuest aborts a deadlocked run.
	MaxGuest simtime.Guest
	// Observer receives streaming lifecycle hooks; host times in the hooks
	// are real wall-clock nanoseconds since the run started. Node goroutines
	// fire NodePhase concurrently, so the observer must be safe for
	// concurrent use (all bundled obs implementations are). Nil disables
	// all hooks at zero cost.
	Observer obs.Observer
	// Faults injects per-link loss/duplication/jitter at the controller and
	// scales per-node spin by the plan's slowdown factors. Frame-level
	// decisions are the same pure functions the deterministic engine uses,
	// but wall-clock scheduling still varies run to run. Nil injects
	// nothing.
	Faults *faults.Plan
	// Profiler accumulates the sync-overhead attribution profile of the
	// run. Host-time values come from the real wall clock, so — unlike the
	// deterministic engine's — parallel reports are measurements that vary
	// run to run; the barrier decomposition is first-arrival→release and
	// per-node wait is arrival→release. Guest idle is free in real time, so
	// idle attribution is always zero here. Nil disables at zero cost.
	Profiler *prof.Profiler
	// Lookahead mirrors Config.Lookahead: the default matrix mode derives
	// the per-quantum lookahead partitioning so eligibility causes report
	// graded engagement and barrier participation is tracked per partition
	// (each partition's last arrival, under the existing global barrier);
	// LookaheadScalar restores the scalar accounting.
	Lookahead LookaheadMode
}

// ParallelResult is the outcome of a real-time parallel run.
type ParallelResult struct {
	GuestTime simtime.Guest
	// Wall is the real elapsed time of the run.
	Wall time.Duration
	// Metrics holds each node's reported application metrics.
	Metrics []map[string]float64
	Stats   Stats
	// PolicyName records the quantum policy used.
	PolicyName string
}

// Metric returns rank 0's reported value for name.
func (r *ParallelResult) Metric(name string) (float64, bool) {
	if len(r.Metrics) == 0 {
		return 0, false
	}
	v, ok := r.Metrics[0][name]
	return v, ok
}

// ErrParallelGuestLimit is returned when a parallel run exceeds MaxGuest.
var ErrParallelGuestLimit = errors.New("cluster: parallel run exceeded guest time limit")

type pnodeState int

const (
	pnRunning pnodeState = iota
	pnParked             // blocked at the quantum boundary, wakeable by delivery
	pnAtLimit            // reached the boundary executing; waits for the barrier
	pnDone               // workload finished
)

type pnode struct {
	n      *guest.Node
	state  pnodeState // guarded by prun.mu
	txFree simtime.Guest
	// wake is this node's private wakeup hint (buffered 1): delivery unpark
	// or stale-park flush at quantum end. All state decisions are re-checked
	// under prun.mu; the channel only bounds who gets woken. A delivery
	// therefore wakes exactly its destination goroutine — never the whole
	// cluster, as the previous cond.Broadcast barrier did.
	wake chan struct{}
	// start carries the controller's quantum-generation signal (a negative
	// value means shutdown). Strict alternation — the node consumes one
	// token per quantum before it can arrive at the barrier, and the
	// controller sends the next only after every node has arrived — keeps
	// the 1-buffer from ever blocking a send. The channel handoff is also
	// the happens-before edge under which the node reads its limit below,
	// so quantum entry costs no controller-mutex round-trip at all.
	start chan int
	// limit caches the current quantum's boundary: written by the
	// controller before it posts the start token, read by the owning
	// goroutine after consuming it.
	limit simtime.Guest
	// spinPerBusy is real nanoseconds of CPU burned per guest busy
	// nanosecond for this node: SpinPerGuestBusy times the fault plan's
	// slowdown factor. Immutable after construction.
	spinPerBusy float64
	// arrH is the host time this node last arrived at the current
	// quantum's barrier (reset to the quantum start on entry); guarded by
	// prun.mu and only maintained when a profiler is attached.
	arrH simtime.Host
}

// prun is the shared state of one parallel run. The controller mutex guards
// node states, routing and per-quantum counters — the centralized network
// controller of the paper. Synchronization around it is channel-based:
// barrier signals flow point-to-point instead of broadcast-waking all N
// goroutines on every delivery and arrival.
type prun struct {
	cfg  ParallelConfig
	obs  obs.Observer
	prof *prof.Profiler
	// eligLat mirrors the deterministic engine's fast-path eligibility
	// lookahead so parallel runs report the same per-quantum causes; la is
	// the per-link lookahead structure behind it (nil under LookaheadScalar
	// or an output-queued switch).
	eligLat simtime.Duration
	la      *lookahead
	qElig   bool
	nElig   int
	// startWall is the epoch for hook host times; set before any goroutine
	// can fire a hook.
	startWall time.Time

	mu sync.Mutex
	// barrier tells the controller the quantum may be over: the last arrival
	// (or a failing node) posts one token. Buffered 1, non-blocking sends;
	// the controller re-checks the arrival count under mu, so a stale token
	// costs one spurious re-check, never a missed release.
	barrier chan struct{}

	nodes    []*pnode
	portFree []simtime.Guest // per-destination switch port clocks (OutputQueue)
	gen      int             // quantum generation counter
	stop     bool            // shutdown flag
	limit    simtime.Guest
	atLimit  int // nodes parked, at-limit or done this quantum
	done     int
	np       int // frames routed this quantum
	str      int // stragglers this quantum
	// firstArr is the host time of this quantum's first barrier arrival;
	// haveArr gates it. The span from firstArr to the barrier release is the
	// real synchronization wait charged to Stats.HostBarrier.
	firstArr simtime.Host
	haveArr  bool
	// part is this quantum's lookahead partitioning (nil without a matrix);
	// partLeft counts each partition's nodes still running and partArrH
	// records the host time its last member reached the barrier, so the
	// profiler can attribute barrier wait per partition under the single
	// global barrier. lastArr is the whole-cluster fallback. Only maintained
	// when a profiler is attached; all guarded by mu.
	part     *partitioning
	partLeft []int
	partArrH []simtime.Host
	lastArr  simtime.Host
	stats    Stats
	sumQ     float64
	wErr     error
}

// RunParallel executes the configuration with real parallelism and returns
// wall-clock results.
func RunParallel(cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Net == nil || cfg.Policy == nil || cfg.Program == nil {
		return nil, fmt.Errorf("cluster: parallel config missing net/policy/program")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	r := &prun{cfg: cfg, obs: cfg.Observer, prof: cfg.Profiler, barrier: make(chan struct{}, 1)}
	r.portFree = make([]simtime.Guest, cfg.Nodes)
	if cfg.Net.Output == nil {
		if cfg.Lookahead == LookaheadScalar {
			r.eligLat = cfg.Net.MinLatency(cfg.Nodes)
		} else if r.la = newLookahead(cfg.Net, cfg.Nodes); r.la != nil {
			r.eligLat = r.la.min
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		spinPer := cfg.SpinPerGuestBusy
		if cfg.Faults != nil {
			// A slowed node burns proportionally more real CPU per guest
			// nanosecond — the wall-clock analogue of the deterministic
			// engine's scaled host costs.
			spinPer *= cfg.Faults.Slowdown(i)
		}
		r.nodes = append(r.nodes, &pnode{
			n:           guest.NewNode(i, cfg.Nodes, cfg.Guest, cfg.Program(i, cfg.Nodes)),
			wake:        make(chan struct{}, 1),
			start:       make(chan int, 1),
			spinPerBusy: spinPer,
		})
	}
	policy := cfg.Policy()
	r.startWall = time.Now() //simlint:wallclock the real-time runner measures actual wall time by design; the deterministic engine models it instead
	if r.obs != nil {
		r.obs.RunStart(obs.RunInfo{
			Nodes:    cfg.Nodes,
			Policy:   policy.Name(),
			Parallel: true,
			MaxGuest: cfg.MaxGuest,
		})
	}
	if r.prof != nil {
		r.prof.RunStart(prof.RunMeta{
			Engine:      "parallel",
			Nodes:       cfg.Nodes,
			Policy:      policy.Name(),
			Lookahead:   r.eligLat,
			OutputQueue: cfg.Net.Output != nil,
			LinkLat: func(src, dst int) simtime.Duration {
				return cfg.Net.FrameLatency(netmodel.MinProbe(), src, dst)
			},
		})
	}

	var wg sync.WaitGroup
	for _, pn := range r.nodes {
		wg.Add(1)
		go func(pn *pnode) {
			defer wg.Done()
			r.nodeLoop(pn)
		}(pn)
	}

	start := r.startWall
	var guestStart simtime.Guest
	Q := policy.First()
	// live and parked are the controller's per-quantum scratch: the nodes
	// to start, and the subset that ended the previous quantum parked (they
	// wait on their wake channel inside park, not on the start channel).
	live := make([]*pnode, 0, cfg.Nodes)
	parked := make([]*pnode, 0, cfg.Nodes)
	err := func() error {
		for qi := 0; ; qi++ {
			if Q <= 0 {
				return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", policy.Name(), Q)
			}
			r.mu.Lock()
			r.limit = guestStart.Add(Q)
			r.np, r.str = 0, 0
			// Nodes that finished in earlier quanta stand permanently at the
			// barrier; pre-counting them keeps the arrival count consistent
			// however unevenly the workloads drain.
			r.atLimit = r.done
			r.haveArr = false
			live, parked = live[:0], parked[:0]
			for _, pn := range r.nodes {
				if pn.state != pnDone {
					if pn.state == pnParked {
						parked = append(parked, pn)
					}
					pn.n.BeginQuantum(r.limit)
					pn.state = pnRunning
					pn.limit = r.limit
					live = append(live, pn)
				}
			}
			qStartH := r.hostNow()
			if r.obs != nil {
				r.obs.QuantumStart(qi, guestStart, Q, qStartH)
			}
			r.qElig = r.eligLat > 0 && Q <= r.eligLat
			if r.qElig {
				r.nElig++
			}
			r.part = nil
			if r.la != nil {
				r.part = r.la.partitionFor(Q)
			}
			// Graded-engagement accounting, identical to the deterministic
			// engine's: eligibility is a function of (Q, matrix) alone.
			switch {
			case r.qElig:
				r.stats.FastFullQuanta++
				r.stats.FastNodeQuanta += cfg.Nodes
			case r.part != nil && r.part.fastNodes > 0:
				r.stats.FastPartialQuanta++
				r.stats.FastNodeQuanta += r.part.fastNodes
				r.stats.PartialPartitions += r.part.nparts
			}
			if r.prof != nil {
				r.prof.BeginQuantum(qi, Q, r.part.grade())
				// Nodes already done stand at the barrier for the whole
				// quantum; everyone else overwrites this on arrival.
				for _, pn := range r.nodes {
					pn.arrH = qStartH
				}
				r.lastArr = qStartH
				if p := r.part; p != nil {
					if cap(r.partLeft) < p.nparts {
						r.partLeft = make([]int, p.nparts)
						r.partArrH = make([]simtime.Host, p.nparts)
					}
					r.partLeft = r.partLeft[:p.nparts]
					r.partArrH = r.partArrH[:p.nparts]
					for i := range r.partLeft {
						r.partLeft[i] = 0
						// A partition whose nodes all finished earlier stands
						// at the barrier from the quantum start, like a done
						// node in the per-node accounting.
						r.partArrH[i] = qStartH
					}
					for i, pn := range r.nodes {
						if pn.state != pnDone {
							r.partLeft[p.part[i]]++
						}
					}
				}
			}
			r.gen++
			gen := r.gen
			// Parked nodes wait inside park on their wake channel; flush
			// them now that the generation has advanced (park re-checks gen
			// under mu, sees the new one and falls through to nodeLoop).
			for _, pn := range parked {
				wakeNode(pn)
			}
			r.mu.Unlock()
			// Start the quantum outside the lock: each node begins stepping
			// the moment its token lands instead of the whole cluster piling
			// up on the controller mutex to read the new generation. Strict
			// alternation (every live node consumed its previous token before
			// arriving, and the controller only got here after all arrived)
			// keeps the buffered send from ever blocking.
			for _, pn := range live {
				pn.start <- gen
			}
			r.mu.Lock()
			for r.atLimit < len(r.nodes) && r.wErr == nil {
				r.mu.Unlock()
				<-r.barrier
				r.mu.Lock()
			}
			if r.wErr != nil {
				r.mu.Unlock()
				return r.wErr
			}
			r.recordQuantum(qi, guestStart, Q, qStartH)
			allDone := r.done == len(r.nodes)
			np, str := r.np, r.str
			r.mu.Unlock()
			guestStart = r.limit
			if allDone {
				return nil
			}
			if cfg.MaxGuest > 0 && guestStart > cfg.MaxGuest {
				return fmt.Errorf("%w (reached %v)", ErrParallelGuestLimit, guestStart)
			}
			Q = policy.Next(quantum.Feedback{Packets: np, Stragglers: str, Now: guestStart})
		}
	}()

	// Shut the node goroutines down (normal completion leaves them waiting
	// for the next generation). The wake flush unblocks anything parked
	// mid-quantum after an error; closing the start channels ends every
	// nodeLoop (each buffer is provably drained, see the start send above).
	r.mu.Lock()
	r.stop = true
	for _, pn := range r.nodes {
		wakeNode(pn)
	}
	r.mu.Unlock()
	for _, pn := range r.nodes {
		close(pn.start)
	}
	wg.Wait()
	for _, pn := range r.nodes {
		pn.n.Shutdown()
	}
	if err != nil {
		return nil, err
	}

	res := &ParallelResult{
		Wall:       time.Since(start), //simlint:wallclock reporting the measured wall duration of a real-time run
		Stats:      r.stats,
		PolicyName: policy.Name(),
	}
	res.Stats.finalize(r.sumQ)
	for _, pn := range r.nodes {
		res.Metrics = append(res.Metrics, pn.n.Metrics())
		res.GuestTime = simtime.MaxGuest(res.GuestTime, pn.n.FinishedAt())
	}
	if r.obs != nil {
		r.obs.RunEnd(obs.RunSummary{
			GuestTime:          res.GuestTime,
			HostEnd:            r.hostNow(),
			Quanta:             res.Stats.Quanta,
			FastEligibleQuanta: r.nElig,
		})
	}
	if r.prof != nil {
		r.prof.RunEnd(res.GuestTime, r.hostNow())
	}
	return res, nil
}

// wakeNode posts a wakeup hint to pn. Non-blocking: a token already in the
// buffer guarantees the node will re-check its state, so a second is
// redundant.
func wakeNode(pn *pnode) {
	select {
	case pn.wake <- struct{}{}:
	default:
	}
}

// arrive records pn at the barrier (parked, at-limit or done). Called with
// mu held. The last arrival releases the controller.
func (r *prun) arrive(pn *pnode) {
	r.atLimit++
	if !r.haveArr {
		r.haveArr = true
		r.firstArr = r.hostNow()
	}
	if r.prof != nil {
		pn.arrH = r.hostNow()
		r.lastArr = pn.arrH
		if p := r.part; p != nil {
			pid := p.part[pn.n.ID()]
			if r.partLeft[pid]--; r.partLeft[pid] == 0 {
				r.partArrH[pid] = pn.arrH
			}
		}
	}
	if r.atLimit == len(r.nodes) {
		r.signalController()
	}
}

// signalController posts the barrier token (non-blocking; buffered 1).
func (r *prun) signalController() {
	select {
	case r.barrier <- struct{}{}:
	default:
	}
}

// hostNow is the hook host clock: real nanoseconds since the run started.
func (r *prun) hostNow() simtime.Host {
	//simlint:guestwall hostNow is the sanctioned wall→host bridge: the real-time runner's host clock IS the wall clock
	return simtime.Host(time.Since(r.startWall).Nanoseconds()) //simlint:wallclock see above; observer host timestamps come from here
}

func (r *prun) recordQuantum(qi int, start simtime.Guest, Q simtime.Duration, qStartH simtime.Host) {
	r.stats.observeQuantum(Q, r.np)
	r.sumQ += float64(Q)
	end := r.hostNow()
	// The barrier span runs from the first arrival to the release that is
	// happening right now. A quantum whose nodes all arrived "at once" (or
	// where every node was already done) collapses to the end instant.
	bStart := end
	if r.haveArr && r.firstArr < end {
		bStart = r.firstArr
	}
	r.stats.HostBarrier += end.Sub(bStart)
	if r.prof != nil {
		// Per-node wait: the node's own barrier arrival to the release
		// happening now (a done node waits the whole quantum).
		for i, pn := range r.nodes {
			r.prof.NodeWait(i, end.Sub(pn.arrH))
		}
		// Per-partition wait: each partition's completion (its last member's
		// barrier arrival) to the release — barrier participation under the
		// single global barrier, graded by the lookahead partitioning. With
		// no partitioning the whole cluster is one partition.
		if r.part != nil {
			for pid := range r.partArrH {
				r.prof.PartitionWait(end.Sub(r.partArrH[pid]))
			}
		} else {
			r.prof.PartitionWait(end.Sub(r.lastArr))
		}
		r.prof.EndQuantum(prof.QuantumStats{
			Span:       end.Sub(qStartH),
			Barrier:    end.Sub(bStart),
			Packets:    r.np,
			Stragglers: r.str,
		})
	}
	if r.obs != nil {
		r.obs.QuantumEnd(obs.QuantumRecord{
			Index:        qi,
			Start:        start,
			Q:            Q,
			Packets:      r.np,
			Stragglers:   r.str,
			HostStart:    qStartH,
			BarrierStart: bStart,
			HostEnd:      end,
			FastEligible: r.qElig,
		})
	}
}

// nodeLoop drives one node across quanta. Quantum entry is a single channel
// receive: the start token carries the generation and publishes pn.limit
// (written by the controller before the send), so the node never touches the
// controller mutex until it has something to report.
func (r *prun) nodeLoop(pn *pnode) {
	for {
		gen, ok := <-pn.start
		if !ok {
			return // shutdown
		}
		if done := r.runQuantum(pn, gen); done {
			return
		}
	}
}

// runQuantum advances pn until it reaches the quantum boundary (possibly
// parking and being re-woken by deliveries) or its workload finishes. It
// reports whether the workload finished.
func (r *prun) runQuantum(pn *pnode, gen int) bool {
	for {
		st := pn.n.Step()
		switch st.Kind {
		case guest.StepBusy:
			if r.obs != nil || r.prof != nil {
				h0 := r.hostNow()
				//simlint:guestwall guest busy-time is deliberately exchanged for real CPU burn, scaled by spinPerBusy
				spin(time.Duration(float64(st.To.Sub(st.From)) * pn.spinPerBusy))
				h1 := r.hostNow()
				if r.obs != nil {
					r.obs.NodePhase(pn.n.ID(), obs.PhaseBusy, st.From, st.To, h0, h1)
				}
				if r.prof != nil {
					r.prof.Segment(pn.n.ID(), prof.SegBusy, h1.Sub(h0))
				}
			} else {
				//simlint:guestwall guest busy-time is deliberately exchanged for real CPU burn, scaled by spinPerBusy
				spin(time.Duration(float64(st.To.Sub(st.From)) * pn.spinPerBusy))
			}

		case guest.StepSend:
			r.route(pn, st.Frame, st.To)

		case guest.StepBlocked:
			// pn.limit is the node-local copy of this quantum's boundary —
			// no controller-mutex round-trip on the hot blocked path.
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, pn.limit)
			if target > st.To {
				// Idle simulation is effectively free in real time: jump.
				pn.n.WakeAt(target)
				continue
			}
			// Blocked at the boundary with nothing deliverable: park.
			if !r.park(pn, gen) {
				return false // quantum ended (or shutdown) while parked
			}
			// Re-woken by a delivery: keep stepping.

		case guest.StepLimit:
			r.mu.Lock()
			pn.state = pnAtLimit
			r.arrive(pn)
			r.mu.Unlock()
			return false

		case guest.StepDone:
			if r.obs != nil {
				h := r.hostNow()
				r.obs.NodePhase(pn.n.ID(), obs.PhaseDone, st.To, st.To, h, h)
			}
			r.mu.Lock()
			if st.Err != nil && r.wErr == nil {
				r.wErr = fmt.Errorf("cluster: rank %d: %w", pn.n.ID(), st.Err)
				r.signalController() // fail the run even with nodes still out
			}
			pn.state = pnDone
			r.done++
			r.arrive(pn)
			r.mu.Unlock()
			return true
		}
	}
}

// park blocks pn at the quantum boundary. It reports true if the node was
// re-woken by a delivery within the same quantum (continue stepping) and
// false if the quantum ended or the run is shutting down.
func (r *prun) park(pn *pnode, gen int) bool {
	r.mu.Lock()
	pn.state = pnParked
	r.arrive(pn)
	for pn.state == pnParked && r.gen == gen && !r.stop {
		r.mu.Unlock()
		<-pn.wake
		r.mu.Lock()
	}
	ok := pn.state == pnRunning && r.gen == gen && !r.stop
	r.mu.Unlock()
	return ok
}

// route is the controller: it computes the frame's exact arrival time and
// delivers per the paper's cases, with the destination's live clock deciding
// stragglerhood — the real race the deterministic engine models.
func (r *prun) route(pn *pnode, f *pkt.Frame, tSend simtime.Guest) {
	ser := r.cfg.Net.NIC.Serialization(f)
	depart := simtime.MaxGuest(tSend, pn.txFree).Add(ser)
	pn.txFree = depart

	r.mu.Lock()
	defer r.mu.Unlock()

	deliver := func(dst int) {
		dn := r.nodes[dst]
		var tD simtime.Guest
		if out := r.cfg.Net.Output; out != nil {
			atPort := depart.Add(r.cfg.Net.PreQueueLatency(f, pn.n.ID(), dst))
			start := simtime.MaxGuest(atPort, r.portFree[dst])
			r.portFree[dst] = start.Add(out.Serialization(f))
			tD = r.portFree[dst].Add(r.cfg.Net.PostQueueLatency(f))
		} else {
			tD = depart.Add(r.cfg.Net.PostTxLatency(f, pn.n.ID(), dst))
		}
		r.np++
		r.stats.Packets++
		if r.prof != nil {
			// tD is still the ideal (pre-fault) arrival here, matching the
			// deterministic engine's slack accounting.
			r.prof.Frame(pn.n.ID(), dst, tD.Sub(tSend))
		}
		if fp := r.cfg.Faults; fp != nil {
			d := fp.Decide(f.ID, pn.n.ID(), dst, tSend)
			if d.Drop {
				r.stats.Dropped++
				if r.obs != nil {
					r.obs.Packet(obs.PacketRecord{
						SendGuest: tSend, Ideal: tD,
						Src: pn.n.ID(), Dst: dst, Size: f.Size,
						Dropped: true,
					})
				}
				return
			}
			base := tD
			tD = base.Add(d.Delay)
			if d.Dup {
				r.stats.Duplicated++
				r.deliverCopy(pn.n.ID(), dn, f, tSend, tD, false)
				r.deliverCopy(pn.n.ID(), dn, f, tSend, base.Add(d.DupDelay), true)
				return
			}
		}
		r.deliverCopy(pn.n.ID(), dn, f, tSend, tD, false)
	}

	if f.Dst.IsBroadcast() {
		for dst := range r.nodes {
			if dst != pn.n.ID() {
				deliver(dst)
			}
		}
		return
	}
	dst := f.Dst.Node()
	if dst < 0 || dst >= len(r.nodes) {
		r.np++
		r.stats.Packets++
		return
	}
	deliver(dst)
}

// deliverCopy classifies one frame copy against the destination's live state
// and delivers it — shared by the normal path and fault-injected duplicates
// so each copy counts independently in the straggler statistics. The caller
// holds r.mu.
func (r *prun) deliverCopy(src int, dn *pnode, f *pkt.Frame, tSend, tD simtime.Guest, dupCopy bool) {
	r.stats.Deliveries++
	var arr simtime.Guest
	straggler, snapped := false, false
	switch dn.state {
	case pnAtLimit, pnDone, pnParked:
		if tD < r.limit {
			arr = r.limit
			straggler, snapped = true, true
		} else {
			arr = tD
		}
	default: // running
		g := dn.n.Clock()
		if tD >= g {
			arr = tD
		} else {
			arr = g
			straggler = true
		}
	}
	if straggler {
		r.stats.Stragglers++
		r.str++
		r.stats.StragglerDelay += arr.Sub(tD)
		if snapped {
			r.stats.QuantumSnaps++
		}
	} else {
		r.stats.Exact++
	}
	if r.obs != nil {
		r.obs.Packet(obs.PacketRecord{
			SendGuest: tSend, Ideal: tD, Arrival: arr,
			Src: src, Dst: dn.n.ID(), Size: f.Size,
			Straggler: straggler, Snapped: snapped, Duplicate: dupCopy,
		})
	}
	dn.n.Deliver(f, arr)
	// A parked destination that can now make progress is re-woken —
	// point-to-point, leaving every other node undisturbed.
	if dn.state == pnParked && arr <= r.limit {
		dn.state = pnRunning
		r.atLimit--
		if r.prof != nil && r.part != nil {
			// The destination's partition has a member running again; its
			// next full arrival re-stamps the completion time.
			r.partLeft[r.part.part[dn.n.ID()]]++
		}
		wakeNode(dn)
	}
}

// spin burns real CPU for d, the real-time analogue of simulation slowdown.
// The clock is read once per calibrated batch of loop iterations rather
// than every iteration, so short spins do not spend most of their budget in
// time.Now.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	spinOnce.Do(calibrateSpin)
	batch := int(atomic.LoadInt64(&spinBatch))
	var acc uint64
	start := time.Now() //simlint:wallclock spin burns real CPU time; the clock read is the loop's termination condition
	for time.Since(start) < d {
		acc = spinWork(acc, batch)
	}
	atomic.StoreUint64(&spinSink, acc) // keep the work observable (no DCE)
}

// spinBatchTarget is how much wall time one batch of spin work should take
// between clock reads: long enough that time.Now is a rounding error, short
// enough that spins only overshoot by a fraction of a microsecond.
const spinBatchTarget = 200 * time.Nanosecond

var (
	spinOnce  sync.Once
	spinBatch int64 = 1 << 10 // calibrated at first use
	spinSink  uint64
)

// calibrateSpin times a probe run of spinWork and sizes the batch so one
// batch costs roughly spinBatchTarget.
func calibrateSpin() {
	const probe = 1 << 18
	start := time.Now() //simlint:wallclock calibration times real spin work against the wall clock; affects pacing only, never results
	acc := spinWork(1, probe)
	elapsed := time.Since(start) //simlint:wallclock see calibration note above
	atomic.StoreUint64(&spinSink, acc)
	if elapsed <= 0 {
		return // keep the default batch
	}
	b := int64(float64(probe) * float64(spinBatchTarget) / float64(elapsed))
	if b < 16 {
		b = 16
	}
	atomic.StoreInt64(&spinBatch, b)
}

// spinWork is the unit of busy work between clock reads. It feeds its
// result back to the caller (and ultimately a package sink) so the compiler
// cannot eliminate the loop.
//
//go:noinline
func spinWork(acc uint64, n int) uint64 {
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}
