package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"clustersim/internal/guest"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/pkt"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

// ParallelConfig configures a real-time parallel run: one OS-scheduled
// goroutine per simulated node, synchronized by a real barrier, exchanging
// frames through a mutex-guarded controller — the shape of the paper's
// actual deployment (N SimNow processes + a network controller process).
//
// Unlike the deterministic engine, wall-clock time is real and straggler
// races come from the Go scheduler, so results vary run to run exactly as
// the paper's did. Guest idle is modelled as infinitely fast (a blocked
// simulator reaches its quantum boundary immediately), the limiting case of
// the deterministic engine's IdleSlowdown → 0.
type ParallelConfig struct {
	Nodes   int
	Guest   guest.Config
	Net     *netmodel.Model
	Policy  func() quantum.Policy
	Program func(rank, size int) guest.Program
	// SpinPerGuestBusy is real nanoseconds of host CPU burned per guest
	// nanosecond of busy execution — the real-time analogue of the host
	// model's BusySlowdown. Zero runs at full speed (no spinning).
	SpinPerGuestBusy float64
	// MaxGuest aborts a deadlocked run.
	MaxGuest simtime.Guest
	// Observer receives streaming lifecycle hooks; host times in the hooks
	// are real wall-clock nanoseconds since the run started. Node goroutines
	// fire NodePhase concurrently, so the observer must be safe for
	// concurrent use (all bundled obs implementations are). Nil disables
	// all hooks at zero cost.
	Observer obs.Observer
}

// ParallelResult is the outcome of a real-time parallel run.
type ParallelResult struct {
	GuestTime simtime.Guest
	// Wall is the real elapsed time of the run.
	Wall time.Duration
	// Metrics holds each node's reported application metrics.
	Metrics []map[string]float64
	Stats   Stats
	// PolicyName records the quantum policy used.
	PolicyName string
}

// Metric returns rank 0's reported value for name.
func (r *ParallelResult) Metric(name string) (float64, bool) {
	if len(r.Metrics) == 0 {
		return 0, false
	}
	v, ok := r.Metrics[0][name]
	return v, ok
}

// ErrParallelGuestLimit is returned when a parallel run exceeds MaxGuest.
var ErrParallelGuestLimit = errors.New("cluster: parallel run exceeded guest time limit")

type pnodeState int

const (
	pnRunning pnodeState = iota
	pnParked             // blocked at the quantum boundary, wakeable by delivery
	pnAtLimit            // reached the boundary executing; waits for the barrier
	pnDone               // workload finished
)

type pnode struct {
	n      *guest.Node
	state  pnodeState
	txFree simtime.Guest
}

type prun struct {
	cfg ParallelConfig
	obs obs.Observer
	// startWall is the epoch for hook host times; set before any goroutine
	// can fire a hook.
	startWall time.Time

	mu   sync.Mutex
	cond *sync.Cond

	nodes    []*pnode
	portFree []simtime.Guest // per-destination switch port clocks (OutputQueue)
	gen      int             // quantum generation counter
	stop     bool            // shutdown flag
	limit    simtime.Guest
	atLimit  int // nodes parked, at-limit or done this quantum
	done     int
	np       int // frames routed this quantum
	str      int // stragglers this quantum
	stats    Stats
	sumQ     float64
	wErr     error
}

// RunParallel executes the configuration with real parallelism and returns
// wall-clock results.
func RunParallel(cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Net == nil || cfg.Policy == nil || cfg.Program == nil {
		return nil, fmt.Errorf("cluster: parallel config missing net/policy/program")
	}
	r := &prun{cfg: cfg, obs: cfg.Observer}
	r.cond = sync.NewCond(&r.mu)
	r.portFree = make([]simtime.Guest, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		r.nodes = append(r.nodes, &pnode{n: guest.NewNode(i, cfg.Nodes, cfg.Guest, cfg.Program(i, cfg.Nodes))})
	}
	policy := cfg.Policy()
	r.startWall = time.Now()
	if r.obs != nil {
		r.obs.RunStart(obs.RunInfo{
			Nodes:    cfg.Nodes,
			Policy:   policy.Name(),
			Parallel: true,
			MaxGuest: cfg.MaxGuest,
		})
	}

	var wg sync.WaitGroup
	for _, pn := range r.nodes {
		wg.Add(1)
		go func(pn *pnode) {
			defer wg.Done()
			r.nodeLoop(pn)
		}(pn)
	}

	start := r.startWall
	var guestStart simtime.Guest
	Q := policy.First()
	err := func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		for qi := 0; ; qi++ {
			if Q <= 0 {
				return fmt.Errorf("cluster: policy %q issued non-positive quantum %v", policy.Name(), Q)
			}
			r.limit = guestStart.Add(Q)
			r.np, r.str = 0, 0
			r.atLimit = r.done
			for _, pn := range r.nodes {
				if pn.state != pnDone {
					pn.n.BeginQuantum(r.limit)
					pn.state = pnRunning
				}
			}
			qStartH := r.hostNow()
			if r.obs != nil {
				r.obs.QuantumStart(qi, guestStart, Q, qStartH)
			}
			r.gen++
			r.cond.Broadcast()
			for r.atLimit < len(r.nodes) && r.wErr == nil {
				r.cond.Wait()
			}
			if r.wErr != nil {
				return r.wErr
			}
			r.recordQuantum(qi, guestStart, Q, qStartH)
			guestStart = r.limit
			if r.done == len(r.nodes) {
				return nil
			}
			if cfg.MaxGuest > 0 && guestStart > cfg.MaxGuest {
				return fmt.Errorf("%w (reached %v)", ErrParallelGuestLimit, guestStart)
			}
			Q = policy.Next(quantum.Feedback{Packets: r.np, Stragglers: r.str, Now: r.limit})
		}
	}()

	// Shut the node goroutines down (normal completion leaves them waiting
	// for the next generation).
	r.mu.Lock()
	r.stop = true
	r.cond.Broadcast()
	r.mu.Unlock()
	wg.Wait()
	for _, pn := range r.nodes {
		pn.n.Shutdown()
	}
	if err != nil {
		return nil, err
	}

	res := &ParallelResult{
		Wall:       time.Since(start),
		Stats:      r.stats,
		PolicyName: policy.Name(),
	}
	res.Stats.finalize(r.sumQ)
	for _, pn := range r.nodes {
		res.Metrics = append(res.Metrics, pn.n.Metrics())
		res.GuestTime = simtime.MaxGuest(res.GuestTime, pn.n.FinishedAt())
	}
	if r.obs != nil {
		r.obs.RunEnd(obs.RunSummary{GuestTime: res.GuestTime, HostEnd: r.hostNow()})
	}
	return res, nil
}

// hostNow is the hook host clock: real nanoseconds since the run started.
func (r *prun) hostNow() simtime.Host {
	return simtime.Host(time.Since(r.startWall).Nanoseconds())
}

func (r *prun) recordQuantum(qi int, start simtime.Guest, Q simtime.Duration, qStartH simtime.Host) {
	r.stats.observeQuantum(Q, r.np)
	r.sumQ += float64(Q)
	if r.obs != nil {
		// The closing barrier is the condition-variable wait that just
		// completed; by the time it is observable all nodes have arrived, so
		// the barrier span collapses to the quantum's end instant.
		end := r.hostNow()
		r.obs.QuantumEnd(obs.QuantumRecord{
			Index:        qi,
			Start:        start,
			Q:            Q,
			Packets:      r.np,
			Stragglers:   r.str,
			HostStart:    qStartH,
			BarrierStart: end,
			HostEnd:      end,
		})
	}
}

// nodeLoop drives one node across quanta.
func (r *prun) nodeLoop(pn *pnode) {
	gen := 0
	r.mu.Lock()
	for {
		for r.gen == gen && !r.stop {
			r.cond.Wait()
		}
		if r.stop {
			r.mu.Unlock()
			return
		}
		gen = r.gen
		r.mu.Unlock()
		r.runQuantum(pn, gen)
		r.mu.Lock()
		if pn.state == pnDone {
			r.mu.Unlock()
			return
		}
	}
}

// runQuantum advances pn until it reaches the quantum boundary (possibly
// parking and being re-woken by deliveries) or its workload finishes.
func (r *prun) runQuantum(pn *pnode, gen int) {
	for {
		st := pn.n.Step()
		switch st.Kind {
		case guest.StepBusy:
			if r.obs != nil {
				h0 := r.hostNow()
				spin(time.Duration(float64(st.To.Sub(st.From)) * r.cfg.SpinPerGuestBusy))
				r.obs.NodePhase(pn.n.ID(), obs.PhaseBusy, st.From, st.To, h0, r.hostNow())
			} else {
				spin(time.Duration(float64(st.To.Sub(st.From)) * r.cfg.SpinPerGuestBusy))
			}

		case guest.StepSend:
			r.route(pn, st.Frame, st.To)

		case guest.StepBlocked:
			limit := r.quantumLimit()
			target := simtime.MinGuest(st.NextArrival, st.Deadline)
			target = simtime.MinGuest(target, limit)
			if target > st.To {
				// Idle simulation is effectively free in real time: jump.
				pn.n.WakeAt(target)
				continue
			}
			// Blocked at the boundary with nothing deliverable: park.
			if !r.park(pn, gen) {
				return // quantum ended while parked
			}
			// Re-woken by a delivery: keep stepping.

		case guest.StepLimit:
			r.mu.Lock()
			pn.state = pnAtLimit
			r.atLimit++
			r.cond.Broadcast()
			r.mu.Unlock()
			return

		case guest.StepDone:
			if r.obs != nil {
				h := r.hostNow()
				r.obs.NodePhase(pn.n.ID(), obs.PhaseDone, st.To, st.To, h, h)
			}
			r.mu.Lock()
			if st.Err != nil && r.wErr == nil {
				r.wErr = fmt.Errorf("cluster: rank %d: %w", pn.n.ID(), st.Err)
			}
			pn.state = pnDone
			r.done++
			r.atLimit++
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
	}
}

// park blocks pn at the quantum boundary. It reports true if the node was
// re-woken by a delivery within the same quantum (continue stepping) and
// false if the quantum ended.
func (r *prun) park(pn *pnode, gen int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	pn.state = pnParked
	r.atLimit++
	r.cond.Broadcast()
	for pn.state == pnParked && r.gen == gen && !r.stop {
		r.cond.Wait()
	}
	if pn.state == pnRunning && r.gen == gen && !r.stop {
		return true
	}
	return false
}

func (r *prun) quantumLimit() simtime.Guest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.limit
}

// route is the controller: it computes the frame's exact arrival time and
// delivers per the paper's cases, with the destination's live clock deciding
// stragglerhood — the real race the deterministic engine models.
func (r *prun) route(pn *pnode, f *pkt.Frame, tSend simtime.Guest) {
	ser := r.cfg.Net.NIC.Serialization(f)
	depart := simtime.MaxGuest(tSend, pn.txFree).Add(ser)
	pn.txFree = depart

	r.mu.Lock()
	defer r.mu.Unlock()

	deliver := func(dst int) {
		dn := r.nodes[dst]
		var tD simtime.Guest
		if out := r.cfg.Net.Output; out != nil {
			atPort := depart.Add(r.cfg.Net.PreQueueLatency(f, pn.n.ID(), dst))
			start := simtime.MaxGuest(atPort, r.portFree[dst])
			r.portFree[dst] = start.Add(out.Serialization(f))
			tD = r.portFree[dst].Add(r.cfg.Net.PostQueueLatency(f))
		} else {
			tD = depart.Add(r.cfg.Net.PostTxLatency(f, pn.n.ID(), dst))
		}
		r.np++
		r.stats.Packets++
		r.stats.Deliveries++
		var arr simtime.Guest
		straggler, snapped := false, false
		switch dn.state {
		case pnAtLimit, pnDone, pnParked:
			if tD < r.limit {
				arr = r.limit
				straggler, snapped = true, true
			} else {
				arr = tD
			}
		default: // running
			g := dn.n.Clock()
			if tD >= g {
				arr = tD
			} else {
				arr = g
				straggler = true
			}
		}
		if straggler {
			r.stats.Stragglers++
			r.str++
			r.stats.StragglerDelay += arr.Sub(tD)
			if snapped {
				r.stats.QuantumSnaps++
			}
		} else {
			r.stats.Exact++
		}
		if r.obs != nil {
			r.obs.Packet(obs.PacketRecord{
				SendGuest: tSend, Ideal: tD, Arrival: arr,
				Src: pn.n.ID(), Dst: dst, Size: f.Size,
				Straggler: straggler, Snapped: snapped,
			})
		}
		dn.n.Deliver(f, arr)
		// A parked destination that can now make progress is re-woken.
		if dn.state == pnParked && arr <= r.limit {
			dn.state = pnRunning
			r.atLimit--
			r.cond.Broadcast()
		}
	}

	if f.Dst.IsBroadcast() {
		for dst := range r.nodes {
			if dst != pn.n.ID() {
				deliver(dst)
			}
		}
		return
	}
	dst := f.Dst.Node()
	if dst < 0 || dst >= len(r.nodes) {
		r.np++
		r.stats.Packets++
		return
	}
	deliver(dst)
}

// spin burns real CPU for d, the real-time analogue of simulation slowdown.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
