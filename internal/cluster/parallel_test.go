package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"clustersim/internal/guest"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

func TestParallelPhasesCompletes(t *testing.T) {
	w := workloads.Phases(4, 200*simtime.Microsecond, 16<<10)
	res, err := RunParallel(ParallelConfig{
		Nodes:            4,
		Guest:            guest.DefaultConfig(),
		Net:              netmodel.Paper(),
		Policy:           adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02),
		Program:          w.New,
		SpinPerGuestBusy: 0.02,
		MaxGuest:         simtime.Guest(10 * simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Metric("time_s"); !ok {
		t.Error("rank 0 did not report time_s")
	}
	if res.Stats.Packets == 0 {
		t.Error("no packets routed")
	}
	if res.Wall <= 0 || res.Wall > 30*time.Second {
		t.Errorf("implausible wall time %v", res.Wall)
	}
	t.Logf("parallel run: guest %v in wall %v, %d quanta (mean Q %v), %d packets, %d stragglers",
		res.GuestTime, res.Wall, res.Stats.Quanta, res.Stats.MeanQ, res.Stats.Packets, res.Stats.Stragglers)
}

func TestParallelNASCompletesAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel NAS run is slow")
	}
	ep := workloads.DefaultEP()
	ep.SerialCompute = ep.SerialCompute.Scale(0.02)
	for _, w := range []workloads.Workload{workloads.EP(ep), workloads.PingPong(20, 4000)} {
		res, err := RunParallel(ParallelConfig{
			Nodes:            4,
			Guest:            guest.DefaultConfig(),
			Net:              netmodel.Paper(),
			Policy:           fixed(100 * simtime.Microsecond),
			Program:          w.New,
			SpinPerGuestBusy: 0.01,
			MaxGuest:         simtime.Guest(10 * simtime.Second),
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.GuestTime == 0 {
			t.Errorf("%s: zero guest time", w.Name)
		}
	}
}

func TestParallelDeadlockGuard(t *testing.T) {
	// A workload that waits forever must be cut off by MaxGuest, not hang.
	stuck := func(rank, size int) guest.Program {
		return func(p *guest.Proc) error {
			if rank == 0 {
				p.Recv() // nobody ever sends
			}
			return nil
		}
	}
	_, err := RunParallel(ParallelConfig{
		Nodes:    2,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Policy:   fixed(100 * simtime.Microsecond),
		Program:  stuck,
		MaxGuest: simtime.Guest(5 * simtime.Millisecond),
	})
	if err == nil {
		t.Fatal("deadlocked parallel run returned no error")
	}
	t.Logf("got expected error: %v", err)
}

func TestParallelBroadcastAndStray(t *testing.T) {
	w := workloads.Workload{
		Name: "pbcast",
		New: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				if rank == 0 {
					p.Broadcast(0, 256, nil)
					p.Send(77, 0, 64, nil) // stray MAC
					return nil
				}
				p.Recv()
				return nil
			}
		},
	}
	res, err := RunParallel(ParallelConfig{
		Nodes:    4,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Policy:   fixed(50 * simtime.Microsecond),
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deliveries != 3 {
		t.Errorf("expected 3 broadcast deliveries, got %d", res.Stats.Deliveries)
	}
	if res.Stats.Packets != 4 { // 3 replicas + 1 stray
		t.Errorf("expected 4 packets, got %d", res.Stats.Packets)
	}
}

func TestParallelWithOutputQueue(t *testing.T) {
	m := netmodel.Paper()
	m.Output = &netmodel.OutputQueue{BytesPerSecond: 10e9, Latency: 100 * simtime.Nanosecond}
	w := workloads.Phases(2, 100*simtime.Microsecond, 16<<10)
	res, err := RunParallel(ParallelConfig{
		Nodes:    4,
		Guest:    guest.DefaultConfig(),
		Net:      m,
		Policy:   fixed(20 * simtime.Microsecond),
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets == 0 {
		t.Error("no traffic")
	}
}

// TestParallelObserver attaches the full observer stack to the wall-clock
// runner: node goroutines fire NodePhase concurrently with the controller's
// Packet/Quantum hooks, so under -race this guards the concurrency contract
// of every bundled observer.
func TestParallelObserver(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tracer := obs.NewChromeTracer(&buf)
	w := workloads.Phases(3, 150*simtime.Microsecond, 16<<10)
	res, err := RunParallel(ParallelConfig{
		Nodes:            4,
		Guest:            guest.DefaultConfig(),
		Net:              netmodel.Paper(),
		Policy:           adaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02),
		Program:          w.New,
		SpinPerGuestBusy: 0.01,
		MaxGuest:         simtime.Guest(10 * simtime.Second),
		Observer:         obs.Multi(reg, tracer),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("parallel trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("parallel trace is empty")
	}
	s := reg.Snapshot()
	if got, want := s.Counters["quanta"], int64(res.Stats.Quanta); got != want {
		t.Errorf("registry quanta = %d, Stats say %d", got, want)
	}
	if got, want := s.Counters["deliveries"], int64(res.Stats.Deliveries); got != want {
		t.Errorf("registry deliveries = %d, Stats say %d", got, want)
	}
	if got, want := s.Counters["stragglers"], int64(res.Stats.Stragglers); got != want {
		t.Errorf("registry stragglers = %d, Stats say %d", got, want)
	}
	if s.Counters["nodes_done"] != 4 {
		t.Errorf("nodes_done = %d, want 4", s.Counters["nodes_done"])
	}
}

func TestParallelConfigValidation(t *testing.T) {
	if _, err := RunParallel(ParallelConfig{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := RunParallel(ParallelConfig{Nodes: 1}); err == nil {
		t.Error("missing net/policy/program accepted")
	}
}
