// Package cluster implements the cluster simulator of the paper: N guest
// nodes coupled through a central network controller, advancing in
// synchronization quanta chosen by a quantum policy.
//
// The engine is a deterministic discrete-event simulation over *host* time
// that simulates the parallel node simulators themselves (see DESIGN.md §4):
// it reproduces the races that create stragglers — which node simulator has
// raced ahead when a packet crosses the controller — without depending on
// real wall-clock scheduling, so every run is exactly replayable from its
// seed. A separate real-goroutine runner (parallel.go) executes the same
// models against actual wall-clock time.
package cluster

import (
	"fmt"

	"clustersim/internal/faults"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

// Config describes one cluster-simulation run.
type Config struct {
	// Nodes is the number of simulated nodes (the paper uses 2–64).
	Nodes int
	// Guest configures the guest CPU/NIC software costs, identical across
	// nodes.
	Guest guest.Config
	// Net is the network timing model (NIC + switch).
	Net *netmodel.Model
	// Host is the host-execution model.
	Host host.Params
	// Policy constructs the quantum policy for this run. A constructor
	// rather than a value because adaptive policies carry state.
	Policy func() quantum.Policy
	// Program builds the workload for each rank.
	Program func(rank, size int) guest.Program
	// MaxGuest aborts the run if the guest clock passes it without all
	// workloads finishing — a deadlock/livelock backstop. Zero disables it.
	MaxGuest simtime.Guest
	// TracePackets records every routed frame (memory-heavy; off by
	// default).
	TracePackets bool
	// TraceQuanta records one entry per synchronization quantum (needed for
	// the Figure 9 speedup-over-time series).
	TraceQuanta bool
	// LossRate drops each frame at the controller with this probability —
	// an extension beyond the paper's perfect switch, used to exercise the
	// msg layer's reliable mode. Drops are deterministic given LossSeed.
	LossRate float64
	// LossSeed seeds the loss draws.
	LossSeed uint64
	// Faults, when non-nil, injects deterministic per-link loss,
	// duplication, delay jitter, link-down windows, and per-node host
	// slowdowns (see internal/faults). Every decision is a pure function of
	// (Plan.Seed, Frame.ID, src, dst, send time), so faulty runs stay
	// bit-identical across Workers counts and are replayable from this
	// config. Nil injects nothing and costs one branch per frame.
	Faults *faults.Plan
	// Observer receives streaming lifecycle hooks (quantum boundaries,
	// packet deliveries, node busy/idle segments) while the run executes.
	// Nil disables all hooks at zero cost. See internal/obs.
	Observer obs.Observer
	// Profiler, when non-nil, accumulates the sync-overhead attribution
	// profile of the run (per-node compute/idle/barrier-wait decomposition,
	// fast-path eligibility causes, per-link lookahead slack — see
	// internal/prof and DESIGN.md §10). Nil disables all attribution at
	// zero cost, exactly like Observer. The resulting prof.Report is
	// byte-identical across Workers values for a fixed configuration.
	Profiler *prof.Profiler
	// Workers enables the intra-quantum parallel fast path (DESIGN.md §7):
	// whenever the current quantum Q is at most the minimum network latency,
	// no frame sent inside the quantum can arrive inside it, so nodes are
	// provably independent between barriers and are stepped concurrently on
	// a worker pool of this size, with frames routed at the barrier in
	// canonical (node, send-sequence) order.
	//
	// 0 (or negative) keeps the classic sequential event-queue engine.
	// Any value >= 1 selects the fast path; 1 walks nodes inline (no
	// goroutines) and >= 2 fans out. Result, Stats, and quantum records are
	// bit-identical for every Workers value; the packet/observer *stream
	// order* is identical across all Workers >= 1 values but differs from
	// Workers == 0, whose streams interleave in host-event order (the
	// per-record contents and all aggregates still match exactly).
	Workers int
	// Lookahead selects how the fast path's safety bound is computed. The
	// default (LookaheadMatrix) probes the per-link lookahead matrix and
	// partitions the cluster per quantum (DESIGN.md §11), so quanta above
	// the global minimum latency can still fast-walk the loose part of the
	// cluster; LookaheadScalar is the escape hatch restoring the original
	// all-or-nothing Q <= MinLatency gate. The choice never changes
	// simulation results — only which engine path runs a quantum and how
	// engagement is accounted (the graded Stats fields and profiler causes
	// are zero/boolean under LookaheadScalar).
	Lookahead LookaheadMode
	// onQuantumMode, when non-nil, is called at the start of each quantum
	// with whether the parallel-safe fast path ran it. Package-internal
	// test hook.
	onQuantumMode func(fast bool)
}

// LookaheadMode selects the fast-path safety-bound computation.
type LookaheadMode int

const (
	// LookaheadMatrix (the default) probes a per-link lookahead matrix and
	// derives a lookahead-closed partitioning per quantum.
	LookaheadMatrix LookaheadMode = iota
	// LookaheadScalar restores the scalar Q <= MinLatency gate.
	LookaheadScalar
)

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least 1 node, got %d", c.Nodes)
	case c.Net == nil:
		return fmt.Errorf("cluster: nil network model")
	case c.Policy == nil:
		return fmt.Errorf("cluster: nil quantum policy constructor")
	case c.Program == nil:
		return fmt.Errorf("cluster: nil workload program constructor")
	case c.Guest.CPUHz <= 0:
		return fmt.Errorf("cluster: guest CPUHz must be positive, got %v", c.Guest.CPUHz)
	case c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("cluster: LossRate must be in [0,1), got %v", c.LossRate)
	}
	if err := c.Net.Validate(c.Nodes); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return c.Host.Validate()
}

// Stats aggregates what the controller observed during a run.
type Stats struct {
	// Quanta is the number of synchronization quanta executed.
	Quanta int
	// Packets is the number of frames routed by the controller.
	Packets int
	// Deliveries counts frame deliveries to destination nodes (a broadcast
	// contributes Nodes-1).
	Deliveries int
	// Exact counts deliveries scheduled at their precise simulated arrival
	// time (paper case 2).
	Exact int
	// Stragglers counts deliveries whose correct arrival time had already
	// passed on the destination (paper case 3).
	Stragglers int
	// QuantumSnaps counts stragglers that additionally had to wait for the
	// next quantum boundary (paper Figure 3(d)).
	QuantumSnaps int
	// StragglerDelay is the total guest time by which straggler deliveries
	// were late versus their ideal arrival.
	StragglerDelay simtime.Duration
	// Dropped counts frames discarded by loss injection — Config.LossRate
	// draws, fault-plan loss, and link-down windows (zero on the paper's
	// perfect switch).
	Dropped int
	// Duplicated counts extra frame copies injected by a fault plan's
	// duplication probability. Each copy is delivered and classified
	// independently, so Deliveries = Packets - Dropped - unroutable
	// + Duplicated.
	Duplicated int
	// HostBusy/HostIdle sum the host time the node simulators spent in
	// detailed execution and in idle fast-path across all nodes;
	// HostBarrier sums the per-quantum barrier costs. Together they show
	// where the paper's "synchronization overhead" (Figure 5) lives.
	HostBusy    simtime.Duration
	HostIdle    simtime.Duration
	HostBarrier simtime.Duration
	// MinQ/MaxQ/MeanQ summarize the quantum durations used.
	MinQ, MaxQ simtime.Duration
	MeanQ      simtime.Duration
	// SilentQuanta is the number of quanta that carried no packets (the
	// np==0 branch of Algorithm 1).
	SilentQuanta int
	// FastFullQuanta counts quanta where the whole cluster was fast-path
	// eligible (Q at or below every link's lookahead) and FastPartialQuanta
	// those where only part of it was: at least one lookahead partition
	// loose, at least one tight (always zero under LookaheadScalar).
	// Eligibility state, not execution state: the counts are identical for
	// every Workers value including the classic engine.
	FastFullQuanta    int
	FastPartialQuanta int
	// FastNodeQuanta sums the fast-walkable node count over all quanta, so
	// FastNodeQuanta/(Nodes*Quanta) is the run's node-level engagement
	// fraction. PartialPartitions sums the partition counts over the
	// partially engaged quanta (the engaged partitions among them are the
	// loose singletons, one per fast node).
	FastNodeQuanta    int
	PartialPartitions int
}

// observeQuantum folds one quantum's duration and traffic into the
// aggregate. Shared by the deterministic engine and the parallel runner so
// the min/max/silent accounting cannot drift between them.
func (s *Stats) observeQuantum(q simtime.Duration, packets int) {
	s.Quanta++
	if q < s.MinQ || s.Quanta == 1 {
		s.MinQ = q
	}
	if q > s.MaxQ {
		s.MaxQ = q
	}
	if packets == 0 {
		s.SilentQuanta++
	}
}

// finalize closes out the aggregate after the last quantum: MeanQ is derived
// from the running sum, and a run with no quanta keeps MinQ at zero rather
// than leaking a sentinel.
func (s *Stats) finalize(sumQ float64) {
	if s.Quanta == 0 {
		s.MinQ = 0
		return
	}
	s.MeanQ = simtime.Duration(sumQ / float64(s.Quanta))
}

// QuantumRecord traces one synchronization quantum. It is defined in
// internal/obs (the streaming hooks deliver the same record) and aliased
// here for the trace slices of Result.
type QuantumRecord = obs.QuantumRecord

// PacketRecord traces one routed frame; aliased from internal/obs like
// QuantumRecord.
type PacketRecord = obs.PacketRecord

// Result is the outcome of a run.
type Result struct {
	// GuestTime is the guest time at which the last workload finished: the
	// cluster application's simulated wall-clock time.
	GuestTime simtime.Guest
	// HostTime is the modelled host time consumed to simulate the run —
	// the denominator of all the paper's speedups.
	HostTime simtime.Duration
	// NodeFinish holds each workload's guest finish time.
	NodeFinish []simtime.Guest
	// Metrics holds each node's reported application metrics.
	Metrics []map[string]float64
	// Stats aggregates controller observations.
	Stats Stats
	// Quanta is the per-quantum trace (nil unless Config.TraceQuanta).
	Quanta []QuantumRecord
	// Packets is the per-frame trace (nil unless Config.TracePackets).
	Packets []PacketRecord
	// PolicyName records the quantum policy used.
	PolicyName string
}

// Metric returns rank 0's reported value for name (the application-level
// result, by the convention described at Proc.Report), and whether it was
// reported.
func (r *Result) Metric(name string) (float64, bool) {
	if len(r.Metrics) == 0 {
		return 0, false
	}
	v, ok := r.Metrics[0][name]
	return v, ok
}
