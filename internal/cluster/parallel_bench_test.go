package cluster

import (
	"testing"

	"clustersim/internal/guest"
	"clustersim/internal/netmodel"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// BenchmarkParallelBarrier measures the parallel runner's synchronization
// throughput: an 8-node communicating workload under a small fixed quantum,
// reported as quanta per second. This is the barrier + routing hot path — the
// per-quantum cost of waking nodes, collecting arrivals and releasing the
// controller — so it is the headline number for the channel-based barrier.
func BenchmarkParallelBarrier(b *testing.B) {
	w := workloads.Phases(6, 200*simtime.Microsecond, 16<<10)
	b.ReportAllocs()
	var quanta int
	for i := 0; i < b.N; i++ {
		res, err := RunParallel(ParallelConfig{
			Nodes:    8,
			Guest:    guest.DefaultConfig(),
			Net:      netmodel.Paper(),
			Policy:   fixed(20 * simtime.Microsecond),
			Program:  w.New,
			MaxGuest: simtime.Guest(simtime.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
		quanta += res.Stats.Quanta
	}
	b.ReportMetric(float64(quanta)/b.Elapsed().Seconds(), "quanta/s")
}
