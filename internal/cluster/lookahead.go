package cluster

import (
	"sort"

	"clustersim/internal/netmodel"
	"clustersim/internal/prof"
	"clustersim/internal/simtime"
)

// lookahead is the per-link generalization of the paper's scalar safety
// bound T (DESIGN.md §11): a node-pair lower-bound latency matrix probed
// once per run, plus the lookahead-closed partitionings it induces at each
// quantum size.
//
// For a quantum Q, a directed link is "tight" when its lower-bound latency
// is below Q — a frame on it could arrive inside the quantum — and "loose"
// otherwise. Nodes joined (in either direction) by a tight link must
// synchronize through the event queue; nodes in different components of the
// tight-link graph are provably non-interacting before the barrier, because
// every frame between them arrives at or after the quantum limit. Components
// of that graph are the quantum's partitions: singletons run the
// intra-quantum fast path, multi-node (tight) partitions fall back to the
// event-queue walk.
//
// The partition structure only changes when Q crosses one of the matrix's
// distinct latency values, so partitionings are cached per level and shared
// by every quantum in the same band.
type lookahead struct {
	n   int
	lat []simtime.Duration // flat n×n row-major probe matrix; diagonal 0
	min simtime.Duration   // smallest off-diagonal entry (the scalar T)
	// levels holds the distinct positive off-diagonal latencies, ascending.
	// A quantum with Q <= levels[0] has no tight links (fully fast); one
	// with Q > levels[len-1] ties the whole cluster into one partition.
	levels []simtime.Duration
	// parts caches one partitioning per level band, indexed by the number
	// of levels strictly below Q. Entries are built lazily.
	parts []*partitioning
}

// partitioning is the lookahead closure of the cluster at one tight-link
// set: the connected components of the links with latency below Q.
type partitioning struct {
	// part maps node -> partition id. Ids are dense and canonical: they
	// number the partitions by their smallest member node.
	part   []int32
	nparts int
	// fastNode marks the loose singletons — nodes with no tight link in
	// either direction, walkable on the fast path.
	fastNode  []bool
	fastNodes int
	// loose lists the fast-walkable nodes, ascending.
	loose []int32
	// tight lists each multi-node partition's members (ascending), ordered
	// by partition id.
	tight [][]int32
	// maxTightLat is the largest tight-link latency (the level this
	// partitioning was built at); zero when there are no tight links. It
	// uniquely identifies the structure: the tight-link set is exactly the
	// links with latency <= maxTightLat.
	maxTightLat simtime.Duration
	// tightLinks ranks the directed tight links ascending by latency (the
	// links binding partitions together), truncated to tightLinksK;
	// tightLinkCount has the full count.
	tightLinks     []prof.LinkRef
	tightLinkCount int64
}

// tightLinksK bounds the per-partitioning tight-link ranking, mirroring the
// profiler's limiting-links cap.
const tightLinksK = 16

// newLookahead probes the matrix for the given model. It returns nil when
// the topology admits no lookahead at all (some pair has a non-positive
// lower bound, so same-instant cross-node causality is possible), matching
// the scalar gate's CauseNoLookahead semantics.
func newLookahead(m *netmodel.Model, nodes int) *lookahead {
	if nodes < 2 {
		return nil
	}
	la := &lookahead{n: nodes, lat: m.LookaheadMatrix(nodes)}
	seen := make(map[simtime.Duration]bool, 2)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			l := la.lat[s*nodes+d]
			if l <= 0 {
				return nil
			}
			if la.min == 0 || l < la.min {
				la.min = l
			}
			if !seen[l] {
				seen[l] = true
				la.levels = append(la.levels, l)
			}
		}
	}
	sort.Slice(la.levels, func(i, j int) bool { return la.levels[i] < la.levels[j] })
	la.parts = make([]*partitioning, len(la.levels)+1)
	return la
}

// partitionFor returns the (cached) partitioning for quantum size q.
func (la *lookahead) partitionFor(q simtime.Duration) *partitioning {
	// Index = number of distinct latencies strictly below q = first index
	// with levels[i] >= q.
	idx := sort.Search(len(la.levels), func(i int) bool { return la.levels[i] >= q })
	if p := la.parts[idx]; p != nil {
		return p
	}
	p := la.build(idx)
	la.parts[idx] = p
	return p
}

// build constructs the partitioning whose tight links are the idx smallest
// latency levels.
func (la *lookahead) build(idx int) *partitioning {
	n := la.n
	p := &partitioning{part: make([]int32, n), fastNode: make([]bool, n)}
	if idx > 0 {
		p.maxTightLat = la.levels[idx-1]
	}

	// Union-find over the undirected tight-link graph.
	root := make([]int32, n)
	for i := range root {
		root[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for root[x] != x {
			root[x] = root[root[x]] // path halving
			x = root[x]
		}
		return x
	}
	for s := 0; s < n; s++ {
		for d := s + 1; d < n; d++ {
			if la.lat[s*n+d] > p.maxTightLat && la.lat[d*n+s] > p.maxTightLat {
				continue
			}
			rs, rd := find(int32(s)), find(int32(d))
			if rs != rd {
				// Smaller root wins, so every root is its component's
				// smallest member.
				if rd < rs {
					rs, rd = rd, rs
				}
				root[rd] = rs
			}
		}
	}

	// Dense canonical partition ids by smallest member, plus member lists.
	id := make(map[int32]int32, n)
	members := make([][]int32, 0, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		pid, ok := id[r]
		if !ok {
			pid = int32(len(members))
			id[r] = pid
			members = append(members, nil)
		}
		p.part[i] = pid
		members[pid] = append(members[pid], int32(i))
	}
	p.nparts = len(members)
	for _, m := range members {
		if len(m) == 1 {
			i := m[0]
			p.fastNode[i] = true
			p.fastNodes++
			p.loose = append(p.loose, i)
		} else {
			p.tight = append(p.tight, m)
		}
	}

	// Rank the directed tight links, ascending by latency then (src, dst).
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || la.lat[s*n+d] > p.maxTightLat {
				continue
			}
			p.tightLinkCount++
			p.tightLinks = append(p.tightLinks, prof.LinkRef{
				Src: s, Dst: d, LatencyNS: int64(la.lat[s*n+d]),
			})
		}
	}
	sort.Slice(p.tightLinks, func(i, j int) bool {
		a, b := p.tightLinks[i], p.tightLinks[j]
		if a.LatencyNS != b.LatencyNS {
			return a.LatencyNS < b.LatencyNS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	if len(p.tightLinks) > tightLinksK {
		p.tightLinks = p.tightLinks[:tightLinksK]
	}
	return p
}

// grade summarizes the partitioning for the profiler's graded-engagement
// accounting. A nil receiver (scalar lookahead, no-lookahead topology, or
// output-queue tap) reports an unknown grade.
func (p *partitioning) grade() prof.Grade {
	if p == nil {
		return prof.Grade{}
	}
	return prof.Grade{
		Known:           true,
		Partitions:      p.nparts,
		TightPartitions: len(p.tight),
		FastNodes:       p.fastNodes,
		MaxTightLat:     p.maxTightLat,
		TightLinks:      p.tightLinks,
		TightLinkCount:  p.tightLinkCount,
	}
}
