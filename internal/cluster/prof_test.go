package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/prof"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// rackNet builds a two-level fat-tree: racks of 4 nodes behind edge
// switches (500ns) joined by a core layer (+2µs). Intra-rack links gate the
// fast-path lookahead; cross-rack links have 2µs more slack.
func rackNet() *netmodel.Model {
	m := netmodel.Paper()
	m.Switch = &netmodel.FatTreeSwitch{Radix: 4, EdgeLatency: 500 * simtime.Nanosecond, CoreLatency: 2 * simtime.Microsecond}
	return m
}

// profCases reuses the fast-path behavior matrix: the attribution must
// reconcile on every workload shape the engine supports, faults included.
func profCases() []fastCase {
	cases := fastCases()
	return append(cases, fastCase{
		name: "phases-100us-4", nodes: 4,
		w:   workloads.Phases(3, 150*simtime.Microsecond, 32<<10),
		pol: fixed(100 * simtime.Microsecond),
	})
}

// TestProfilerReconciliation: with a profiler attached, the per-node
// segment accounting must reconcile exactly with the engine's Stats on
// both engine paths — compute with HostBusy, idle with HostIdle, and
// routing+barrier with HostBarrier. This is the acceptance bar that makes
// the report trustworthy: nothing the profiler prints is a re-derivation,
// it is the same charge stream the engine used.
func TestProfilerReconciliation(t *testing.T) {
	for _, c := range profCases() {
		for _, workers := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				p := prof.New()
				cfg := testConfig(c.nodes, c.w, c.pol)
				cfg.Workers = workers
				cfg.LossRate = c.loss
				cfg.LossSeed = 42
				cfg.Faults = c.faults
				cfg.Profiler = p
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep := p.Report()

				if !rep.Complete {
					t.Error("report not marked complete after a finished run")
				}
				if rep.Quanta != int64(res.Stats.Quanta) {
					t.Errorf("report quanta %d, stats %d", rep.Quanta, res.Stats.Quanta)
				}
				if rep.Packets != int64(res.Stats.Packets) {
					t.Errorf("report packets %d, stats %d", rep.Packets, res.Stats.Packets)
				}
				if rep.Stragglers != int64(res.Stats.Stragglers) {
					t.Errorf("report stragglers %d, stats %d", rep.Stragglers, res.Stats.Stragglers)
				}
				if rep.Totals.ComputeNS != int64(res.Stats.HostBusy) {
					t.Errorf("compute %d != HostBusy %d", rep.Totals.ComputeNS, int64(res.Stats.HostBusy))
				}
				if rep.Totals.IdleNS != int64(res.Stats.HostIdle) {
					t.Errorf("idle %d != HostIdle %d", rep.Totals.IdleNS, int64(res.Stats.HostIdle))
				}
				if got := rep.Totals.RoutingNS + rep.Totals.BarrierNS; got != int64(res.Stats.HostBarrier) {
					t.Errorf("routing+barrier %d != HostBarrier %d", got, int64(res.Stats.HostBarrier))
				}

				var compute, idle, wait int64
				for _, n := range rep.PerNode {
					compute += n.ComputeNS
					idle += n.IdleNS
					wait += n.WaitNS
				}
				if compute != rep.Totals.ComputeNS || idle != rep.Totals.IdleNS || wait != rep.Totals.WaitNS {
					t.Errorf("per-node sums (%d,%d,%d) != totals (%d,%d,%d)",
						compute, idle, wait, rep.Totals.ComputeNS, rep.Totals.IdleNS, rep.Totals.WaitNS)
				}

				var causeSum int64
				for _, cc := range rep.Engagement.Causes {
					causeSum += cc.Quanta
				}
				if causeSum != rep.Quanta {
					t.Errorf("cause counts sum to %d, want %d", causeSum, rep.Quanta)
				}
			})
		}
	}
}

// TestProfilerReportWorkerInvariant: the canonical JSON must be
// byte-identical for any worker count, fast path or classic engine. The
// eligibility semantics (Q <= lookahead, tap) deliberately exclude the
// Workers gate so this holds.
func TestProfilerReportWorkerInvariant(t *testing.T) {
	run := func(workers int) []byte {
		p := prof.New()
		cfg := testConfig(8, workloads.Uniform(120, 2000, 30*simtime.Microsecond, 11),
			adaptive(simtime.Microsecond, 100*simtime.Microsecond, 1.05, 0.02))
		cfg.Net = rackNet()
		cfg.Workers = workers
		cfg.Profiler = p
		if _, err := Run(cfg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return p.Report().JSON()
	}
	base := run(0)
	for _, workers := range []int{1, 3} {
		if got := run(workers); !bytes.Equal(base, got) {
			t.Errorf("report bytes differ between workers=0 and workers=%d", workers)
		}
	}
}

// TestProfilerReportGolden pins the full report artifact for a fixed
// rack-topology run against a committed golden file (regenerate with
// -update). CI's report-smoke job checks the same bytes from the CLI.
func TestProfilerReportGolden(t *testing.T) {
	p := prof.New()
	cfg := testConfig(8, workloads.Uniform(120, 2000, 30*simtime.Microsecond, 11), fixed(10*simtime.Microsecond))
	cfg.Net = rackNet()
	cfg.Profiler = p
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	got := p.Report().JSON()

	path := filepath.Join("testdata", "profile_rack.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run Golden -update ./internal/cluster/)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from %s (regenerate with -update if intended)", path)
	}
}

// TestProfilerLimitingLinksRack: on a rack topology the static minimum-
// latency probe must name exactly the intra-rack links (they gate the
// global lookahead), and the observed limiting-links ranking must put an
// intra-rack link first — cross-rack frames carry 2µs more slack.
func TestProfilerLimitingLinksRack(t *testing.T) {
	p := prof.New()
	cfg := testConfig(8, workloads.Uniform(200, 2000, 20*simtime.Microsecond, 17), fixed(2*simtime.Microsecond))
	cfg.Net = rackNet()
	cfg.Profiler = p
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()

	if want := int64(cfg.Net.MinLatency(8)); rep.LookaheadNS != want {
		t.Errorf("lookahead %d, want MinLatency %d", rep.LookaheadNS, want)
	}
	// 2 racks × 4 nodes → 4×3 directed intra-rack pairs per rack.
	if rep.MinLatencyTied != 24 {
		t.Errorf("min-latency ties = %d, want 24", rep.MinLatencyTied)
	}
	if len(rep.MinLatencyLinks) != 24 {
		t.Fatalf("min-latency links listed = %d, want 24", len(rep.MinLatencyLinks))
	}
	for _, l := range rep.MinLatencyLinks {
		if l.Src/4 != l.Dst/4 {
			t.Errorf("min-latency link %s crosses racks", prof.LinkName(l.Src, l.Dst))
		}
		if l.LatencyNS != rep.LookaheadNS {
			t.Errorf("min-latency link %s latency %d != lookahead %d",
				prof.LinkName(l.Src, l.Dst), l.LatencyNS, rep.LookaheadNS)
		}
	}
	if len(rep.LimitingLinks) == 0 {
		t.Fatal("no limiting links observed")
	}
	first := rep.LimitingLinks[0]
	if first.Src/4 != first.Dst/4 {
		t.Errorf("tightest observed link %s crosses racks", prof.LinkName(first.Src, first.Dst))
	}
	for i := 1; i < len(rep.LimitingLinks); i++ {
		if rep.LimitingLinks[i].SlackNS < rep.LimitingLinks[i-1].SlackNS {
			t.Errorf("limiting links not sorted by slack at %d", i)
		}
	}
}

// TestProfilerFaultsUseIdealLatency: slack accounting must be computed from
// the pre-fault ideal latency — jitter shifts arrivals, not the lookahead
// bound — so a jittery run reports the same static link floor and its
// frame latency histogram floor equals the clean run's.
func TestProfilerFaultsUseIdealLatency(t *testing.T) {
	run := func(plan *faults.Plan) *prof.Report {
		p := prof.New()
		cfg := testConfig(4, workloads.Uniform(150, 1500, 20*simtime.Microsecond, 23), fixed(simtime.Microsecond))
		cfg.Faults = plan
		cfg.Profiler = p
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return p.Report()
	}
	clean := run(nil)
	jittery := run(&faults.Plan{Seed: 7, Default: faults.Link{Jitter: 5 * simtime.Microsecond}})
	var cleanHist, jitterHist *prof.HistData
	for i := range clean.Hists {
		if clean.Hists[i].Name == "frame_latency_ns" {
			cleanHist = &clean.Hists[i].Hist
		}
	}
	for i := range jittery.Hists {
		if jittery.Hists[i].Name == "frame_latency_ns" {
			jitterHist = &jittery.Hists[i].Hist
		}
	}
	if cleanHist == nil || jitterHist == nil {
		t.Fatal("frame_latency_ns histogram missing")
	}
	if cleanHist.Min != jitterHist.Min {
		t.Errorf("jitter leaked into ideal latency floor: clean min %d, jittery min %d",
			cleanHist.Min, jitterHist.Min)
	}
}

// TestParallelProfilerSmoke: the wall-clock runner feeds the same profiler
// interface; its report must be internally consistent (per-node wait sums
// to the total, idle is always zero — parallel nodes jump, they don't
// spin) even though the numbers are real time and not reproducible.
func TestParallelProfilerSmoke(t *testing.T) {
	p := prof.New()
	res, err := RunParallel(ParallelConfig{
		Nodes:    4,
		Guest:    testConfig(4, workloads.PingPong(20, 1000), fixed(simtime.Microsecond)).Guest,
		Net:      netmodel.Paper(),
		Policy:   fixed(simtime.Microsecond),
		Program:  workloads.PingPong(20, 1000).New,
		MaxGuest: simtime.Guest(simtime.Second),
		Profiler: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Engine != "parallel" {
		t.Errorf("engine %q, want parallel", rep.Engine)
	}
	if !rep.Complete {
		t.Error("report not marked complete")
	}
	if rep.Quanta != int64(res.Stats.Quanta) {
		t.Errorf("report quanta %d, stats %d", rep.Quanta, res.Stats.Quanta)
	}
	if rep.Totals.IdleNS != 0 {
		t.Errorf("parallel idle = %d, want 0 (idle is a free jump)", rep.Totals.IdleNS)
	}
	var wait int64
	for _, n := range rep.PerNode {
		wait += n.WaitNS
	}
	if wait != rep.Totals.WaitNS {
		t.Errorf("per-node wait sums to %d, total %d", wait, rep.Totals.WaitNS)
	}
	if rep.Engagement.EligibleQuanta != rep.Quanta {
		t.Errorf("Q=1µs run: eligible %d of %d quanta", rep.Engagement.EligibleQuanta, rep.Quanta)
	}
}

// TestProfilerNilIsNoop: a run without a profiler must behave identically
// to one with it — the profiler observes, never participates.
func TestProfilerNilIsNoop(t *testing.T) {
	cfg := testConfig(4, workloads.Phases(3, 150*simtime.Microsecond, 32<<10), fixed(simtime.Microsecond))
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profiler = prof.New()
	profiled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.GuestTime != profiled.GuestTime || bare.HostTime != profiled.HostTime || bare.Stats != profiled.Stats {
		t.Errorf("profiler changed the run:\nbare     %+v\nprofiled %+v", bare.Stats, profiled.Stats)
	}
}
