package experiments

import (
	"fmt"

	"clustersim/internal/cluster"
	"clustersim/internal/faults"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// FaultRow is one (loss rate, config) point of the fault sweep: how a
// synchronization policy behaves as the network degrades.
type FaultRow struct {
	// LossPct is the injected per-frame loss probability in percent.
	LossPct float64
	Config  string
	// MeanQ is the mean quantum the policy settled on. Retransmission
	// timers under loss add traffic, which holds an adaptive policy's
	// quantum down while a fixed policy is unaffected.
	MeanQ simtime.Duration
	// StragglerRate is stragglers per delivered frame.
	StragglerRate float64
	// Dropped/Duplicated echo the run's fault counters.
	Dropped    int
	Duplicated int
	// Retransmits/Timeouts sum the reliable transport's counters over all
	// ranks (zero unless the workload runs reliable endpoints and calls
	// ReportMetrics).
	Retransmits int
	Timeouts    int
	GuestTime   simtime.Guest
	HostTime    simtime.Duration
}

// sumMetric totals one reported metric over every rank of a run.
func sumMetric(res *cluster.Result, name string) int {
	total := 0.0
	for _, m := range res.Metrics {
		total += m[name]
	}
	return int(total)
}

// FaultSweep runs one workload × node count under each spec while the
// default link's loss probability sweeps through lossPcts (percent). Loss 0
// uses a nil plan — the engine's zero-cost fault-free path. The workload
// should run the reliable transport (e.g. workloads.ReliablePhases) so it
// completes under loss and reports retransmission counters; the sweep is the
// paper-style behavioural comparison of adaptive versus fixed quanta on a
// degrading network.
func FaultSweep(env Env, w workloads.Workload, nodes int, specs []Spec, lossPcts []float64, seed uint64) ([]FaultRow, error) {
	rows := make([]FaultRow, len(lossPcts)*len(specs))
	var jobs []job
	for li, pct := range lossPcts {
		fenv := env
		if pct > 0 {
			fenv.Faults = &faults.Plan{Seed: seed, Default: faults.Link{Loss: pct / 100}}
		} else {
			fenv.Faults = nil
		}
		for si, spec := range specs {
			slot, spec, fenv, pct := li*len(specs)+si, spec, fenv, pct
			jobs = append(jobs, job{name: fmt.Sprintf("%s/%d loss=%g%% %s", w.Name, nodes, pct, spec.Label), run: func() error {
				res, err := runOne(fenv, w, nodes, spec, false, false)
				if err != nil {
					return err
				}
				row := FaultRow{
					LossPct:     pct,
					Config:      spec.Label,
					MeanQ:       res.Stats.MeanQ,
					Dropped:     res.Stats.Dropped,
					Duplicated:  res.Stats.Duplicated,
					Retransmits: sumMetric(res, "msg_retransmits"),
					Timeouts:    sumMetric(res, "msg_timeouts"),
					GuestTime:   res.GuestTime,
					HostTime:    res.HostTime,
				}
				if res.Stats.Deliveries > 0 {
					row.StragglerRate = float64(res.Stats.Stragglers) / float64(res.Stats.Deliveries)
				}
				rows[slot] = row
				return nil
			}})
		}
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return rows, nil
}
