package experiments

import (
	"sync"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// baselineKey identifies one ground-truth run completely: the workload
// fingerprint, the cluster size, and every Env field that can change the
// simulation's outcome. Env.Workers and Env.IntraWorkers are deliberately
// absent — both are proven result-invariant (determinism tests pin it), so
// runs at different parallelism levels share baselines. The network model is
// keyed by pointer: experiments share one *netmodel.Model per Env, and two
// distinct models are conservatively treated as different even if their
// parameters happen to match.
type baselineKey struct {
	workload string
	nodes    int
	guest    guest.Config
	hostP    host.Params
	net      *netmodel.Model
	maxGuest simtime.Guest
	// faults is the canonical fingerprint of Env.Faults (empty for nil):
	// a fault plan changes every outcome, so plans never share baselines.
	faults string
}

// baselineEntry holds one memoized ground-truth run. The entry-level mutex
// serializes computation per key (single-flight): when Grid schedules the
// same baseline from several pool workers, one computes and the rest wait
// for the result instead of duplicating the most expensive run in the
// whole evaluation.
type baselineEntry struct {
	mu       sync.Mutex
	computed bool
	res      *cluster.Result
	err      error
	traceQ   bool // res carries per-quantum records
	traceP   bool // res carries per-packet records
}

// BaselineCacheStats reports what a cache did over its lifetime.
type BaselineCacheStats struct {
	// Hits is the number of baseline requests served from memory.
	Hits int
	// Misses is the number of baselines actually simulated.
	Misses int
	// Upgrades counts re-simulations because a later caller needed traces
	// the cached run was not recorded with (the rerun keeps the union of
	// trace flags, so each key upgrades at most twice).
	Upgrades int
	// Entries is the number of distinct baselines held.
	Entries int
}

// BaselineCache memoizes ground-truth (Q = 1µs) runs across experiment
// runners. Fig 6/7/8, the ablations, the scaling curve, and the Pareto
// studies all compare against the same per-(workload, nodes, env) baseline;
// with a shared cache each is simulated exactly once per figure *set*
// instead of once per figure. Safe for concurrent use from the experiment
// worker pool.
//
// Results returned from the cache are shared: callers must treat them as
// read-only (every experiment runner already does — they only read metrics,
// stats, and traces).
type BaselineCache struct {
	mu      sync.Mutex
	entries map[baselineKey]*baselineEntry

	statMu             sync.Mutex
	hits, misses, upgs int
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{entries: map[baselineKey]*baselineEntry{}}
}

// Stats snapshots the cache's hit/miss counters.
func (c *BaselineCache) Stats() BaselineCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return BaselineCacheStats{Hits: c.hits, Misses: c.misses, Upgrades: c.upgs, Entries: n}
}

func (c *BaselineCache) count(hit, miss, upg bool) {
	c.statMu.Lock()
	if hit {
		c.hits++
	}
	if miss {
		c.misses++
	}
	if upg {
		c.upgs++
	}
	c.statMu.Unlock()
}

// get returns the memoized ground-truth run for (env, w, nodes), computing
// it on first use. traceQ/traceP declare which trace slices the caller will
// read; a cached run recorded without them is re-simulated once with the
// union of all flags seen so far (the rerun is bit-identical — the engine is
// deterministic — just with tracing on).
func (c *BaselineCache) get(env Env, w workloads.Workload, nodes int, traceQ, traceP bool) (*cluster.Result, error) {
	key := baselineKey{
		workload: w.Key,
		nodes:    nodes,
		guest:    env.Guest,
		hostP:    env.Host,
		net:      env.Net,
		maxGuest: env.MaxGuest,
		faults:   env.Faults.Key(),
	}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &baselineEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.computed {
		if e.err != nil {
			c.count(true, false, false)
			return nil, e.err
		}
		if (e.traceQ || !traceQ) && (e.traceP || !traceP) {
			c.count(true, false, false)
			return e.res, nil
		}
		// Trace upgrade: keep the union so the entry only ever widens.
		c.count(false, false, true)
	} else {
		c.count(false, true, false)
	}
	e.traceQ = e.traceQ || traceQ
	e.traceP = e.traceP || traceP
	e.res, e.err = runOne(env, w, nodes, GroundTruth(), e.traceQ, e.traceP)
	e.computed = true
	return e.res, e.err
}

// runGroundTruth is how every experiment runner obtains its Q = 1µs
// baseline: through Env.Baselines when one is attached (and the workload
// carries a fingerprint), falling back to a direct run otherwise. The
// returned Result may be shared with other runners — treat it as read-only.
func runGroundTruth(env Env, w workloads.Workload, nodes int, traceQ, traceP bool) (*cluster.Result, error) {
	if env.Baselines == nil || w.Key == "" {
		return runOne(env, w, nodes, GroundTruth(), traceQ, traceP)
	}
	return env.Baselines.get(env, w, nodes, traceQ, traceP)
}
