package experiments

import (
	"clustersim/internal/metrics"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// ScalingRow is one node count of the scaling curve.
type ScalingRow struct {
	Nodes int
	// AccErr/Speedup are the adaptive configuration versus that node
	// count's own ground truth.
	AccErr  float64
	Speedup float64
	// MeanQ is the quantum the adaptive algorithm settled on.
	MeanQ simtime.Duration
	// PacketsPerGuestMS measures traffic density: frames routed per
	// simulated millisecond — the quantity that caps the quantum.
	PacketsPerGuestMS float64
}

// ScalingCurve extends the paper's conclusion ("in some experiments
// simulating larger clusters the effectiveness of the algorithm somewhat
// diminishes as we can expect due to the increase in overall traffic
// density") into a measured curve: the adaptive configuration's speedup,
// accuracy and settled quantum as the cluster grows.
func ScalingCurve(env Env, w workloads.Workload, nodeCounts []int, spec Spec) ([]ScalingRow, error) {
	rows := make([]ScalingRow, len(nodeCounts))
	var jobs []job
	for i, n := range nodeCounts {
		i, n := i, n
		jobs = append(jobs, job{name: w.Name, run: func() error {
			base, err := runGroundTruth(env, w, n, false, false)
			if err != nil {
				return err
			}
			res, err := runOne(env, w, n, spec, false, false)
			if err != nil {
				return err
			}
			baseMetric, _ := base.Metric(w.Metric)
			m, _ := res.Metric(w.Metric)
			rows[i] = ScalingRow{
				Nodes:   n,
				AccErr:  metrics.RelError(m, baseMetric),
				Speedup: metrics.Speedup(float64(res.HostTime), float64(base.HostTime)),
				MeanQ:   res.Stats.MeanQ,
				PacketsPerGuestMS: float64(res.Stats.Packets) /
					(float64(res.GuestTime) / float64(simtime.Millisecond)),
			}
			return nil
		}})
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return rows, nil
}
