package experiments

import (
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// OptimisticParams models the checkpoint/rollback machinery of an
// optimistic (Time-Warp-style) PDES alternative, using the paper's §3
// estimates: saving or restoring a full-system node image (machine memory
// plus disk journal) takes 30–40 seconds of host time.
type OptimisticParams struct {
	// CheckpointCost is the host time to save one node checkpoint.
	CheckpointCost simtime.Duration
	// RestoreCost is the host time to roll a node back to its last
	// checkpoint.
	RestoreCost simtime.Duration
	// CheckpointPeriod is the guest time between checkpoints; rolled-back
	// work averages half a period and must be re-simulated.
	CheckpointPeriod simtime.Duration
}

// PaperOptimistic returns the paper's stated costs ("a single
// checkpointing-rollback phase for a node can easily last in the order of
// 30-40 seconds").
func PaperOptimistic() OptimisticParams {
	return OptimisticParams{
		CheckpointCost:   30 * simtime.Second,
		RestoreCost:      35 * simtime.Second,
		CheckpointPeriod: 100 * simtime.Millisecond,
	}
}

// OptimisticRow compares one quantum configuration against a hypothetical
// optimistic simulator that lets nodes free-run and rolls back on every
// straggler.
type OptimisticRow struct {
	Config string
	// QuantumHost is the measured host time of the quantum-synchronized
	// run.
	QuantumHost simtime.Duration
	// Stragglers is the measured straggler count — each would have been a
	// rollback in an optimistic scheme running at this synchronization
	// slack.
	Stragglers int
	// OptimisticHost estimates the optimistic run: the free-running
	// simulation (the Q-max run's compute, barrier-free) plus checkpoint
	// and rollback costs.
	OptimisticHost simtime.Duration
	// Ratio is OptimisticHost / QuantumHost: above 1 means the paper's
	// conservative choice wins.
	Ratio float64
}

// OptimisticEstimate reproduces the paper's §3 argument quantitatively: it
// runs the workload under the given quantum configurations, counts the
// stragglers each experienced (the events an optimistic scheme would have
// had to roll back), and prices the optimistic alternative with op's
// checkpoint model.
func OptimisticEstimate(env Env, w workloads.Workload, nodes int, specs []Spec, op OptimisticParams) ([]OptimisticRow, error) {
	var rows []OptimisticRow
	for _, spec := range specs {
		res, err := runOne(env, w, nodes, spec, false, false)
		if err != nil {
			return nil, err
		}
		// The optimistic baseline execution: no barriers at all, every node
		// free-runs (the busy work is the same; the barrier overhead
		// disappears). Approximate it as the measured host time minus the
		// per-quantum barrier costs.
		barriers := simtime.Duration(res.Stats.Quanta) * env.Host.BarrierCost
		free := res.HostTime - barriers
		if free < 0 {
			free = 0
		}
		// Checkpointing: every node saves one image per CheckpointPeriod of
		// guest time (they proceed in parallel, so the run pays the cost
		// once per period, not per node).
		nCheckpoints := int64(res.GuestTime) / int64(op.CheckpointPeriod)
		checkpointing := simtime.Duration(nCheckpoints) * op.CheckpointCost
		// Rollbacks: each straggler forces a restore plus re-simulation of
		// on average half a checkpoint period of guest time.
		resim := op.CheckpointPeriod.Scale(0.5 * env.Host.BusySlowdown)
		rollbacks := simtime.Duration(res.Stats.Stragglers) * (simtime.Duration(op.RestoreCost) + resim)
		opt := free + checkpointing + rollbacks

		rows = append(rows, OptimisticRow{
			Config:         spec.Label,
			QuantumHost:    res.HostTime,
			Stragglers:     res.Stats.Stragglers,
			OptimisticHost: opt,
			Ratio:          float64(opt) / float64(res.HostTime),
		})
	}
	return rows, nil
}
