package experiments

import (
	"strconv"

	"clustersim/internal/metrics"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// AblationRow is one configuration of a sensitivity sweep.
type AblationRow struct {
	Label   string
	AccErr  float64
	Speedup float64
	MeanQ   simtime.Duration
}

// AblationIncDec sweeps Algorithm 1's increase and decrease factors on one
// workload, quantifying the paper's §3 guidance that "the best
// configurations are those that grow the quantum in very small increments
// (such as 2% to 5%) but decrease it very quickly".
func AblationIncDec(env Env, w workloads.Workload, nodes int, incs, decs []float64) ([]AblationRow, error) {
	base, err := runGroundTruth(env, w, nodes, false, false)
	if err != nil {
		return nil, err
	}
	baseMetric, _ := base.Metric(w.Metric)

	out := make([]AblationRow, len(incs)*len(decs))
	var jobs []job
	for i, inc := range incs {
		for d, dec := range decs {
			ri, inc, dec := i*len(decs)+d, inc, dec
			spec := DynSpec(
				// Label like "1.03:0.02".
				formatIncDec(inc, dec),
				1*simtime.Microsecond, 1000*simtime.Microsecond, inc, dec,
			)
			jobs = append(jobs, job{name: spec.Label, run: func() error {
				res, err := runOne(env, w, nodes, spec, false, false)
				if err != nil {
					return err
				}
				m, _ := res.Metric(w.Metric)
				out[ri] = AblationRow{
					Label:   spec.Label,
					AccErr:  metrics.RelError(m, baseMetric),
					Speedup: metrics.Speedup(float64(res.HostTime), float64(base.HostTime)),
					MeanQ:   res.Stats.MeanQ,
				}
				return nil
			}})
		}
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

func formatIncDec(inc, dec float64) string {
	return trim(inc) + ":" + trim(dec)
}

func trim(f float64) string {
	return strconv.FormatFloat(f, 'g', 3, 64)
}

// AblationHost sweeps the host model's barrier cost and jitter on one
// workload and reports the ground-truth-relative speedup of a large fixed
// quantum — showing which host property the synchronization overhead (the
// paper's Figure 5) actually comes from.
type HostAblationRow struct {
	Label       string
	BarrierCost simtime.Duration
	Jitter      float64
	// Speedup1k is the speedup of Q=1000µs over Q=1µs under this host.
	Speedup1k float64
}

// AblationOracle compares Algorithm 1 against the perfect-lookahead Oracle
// (DESIGN A4): the Oracle knows every future send instant (taken from a
// traced ground-truth run) and is the upper bound of any traffic-driven
// quantum scheme. The paper argues such lookahead is unobtainable in
// full-system simulation; this sweep quantifies how much of the oracle's
// speedup the blind adaptive algorithm recovers.
func AblationOracle(env Env, w workloads.Workload, nodes int, min, max simtime.Duration) ([]AblationRow, error) {
	// The traced baseline is the ground truth itself (Q = 1µs), so it comes
	// from the shared cache with packet tracing requested.
	base, err := runGroundTruth(env, w, nodes, false, true)
	if err != nil {
		return nil, err
	}
	baseMetric, _ := base.Metric(w.Metric)
	sendTimes := make([]simtime.Guest, 0, len(base.Packets))
	for _, p := range base.Packets {
		sendTimes = append(sendTimes, p.SendGuest)
	}

	specs := []Spec{
		DynSpec("dyn 1.03:0.02", min, max, 1.03, 0.02),
		DynSpec("dyn 1.05:0.02", min, max, 1.05, 0.02),
		{Label: "oracle", Policy: func() quantum.Policy { return quantum.NewOracle(min, max, sendTimes) }},
	}
	rows := make([]AblationRow, len(specs))
	var jobs []job
	for i, spec := range specs {
		i, spec := i, spec
		jobs = append(jobs, job{name: spec.Label, run: func() error {
			res, err := runOne(env, w, nodes, spec, false, false)
			if err != nil {
				return err
			}
			m, _ := res.Metric(w.Metric)
			rows[i] = AblationRow{
				Label:   spec.Label,
				AccErr:  metrics.RelError(m, baseMetric),
				Speedup: metrics.Speedup(float64(res.HostTime), float64(base.HostTime)),
				MeanQ:   res.Stats.MeanQ,
			}
			return nil
		}})
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationHost runs the host-parameter sensitivity sweep.
func AblationHost(env Env, w workloads.Workload, nodes int, barriers []simtime.Duration, jitters []float64) ([]HostAblationRow, error) {
	out := make([]HostAblationRow, len(barriers)*len(jitters))
	var jobs []job
	for bi, bc := range barriers {
		for ji, jit := range jitters {
			ri, bc, jit := bi*len(jitters)+ji, bc, jit
			jobs = append(jobs, job{name: bc.String(), run: func() error {
				e := env
				e.Host.BarrierCost = bc
				e.Host.JitterSigma = jit
				base, err := runGroundTruth(e, w, nodes, false, false)
				if err != nil {
					return err
				}
				big, err := runOne(e, w, nodes, FixedSpec("1k", 1000*simtime.Microsecond), false, false)
				if err != nil {
					return err
				}
				out[ri] = HostAblationRow{
					Label:       "barrier=" + bc.String() + " σ=" + trim(jit),
					BarrierCost: bc,
					Jitter:      jit,
					Speedup1k:   metrics.Speedup(float64(big.HostTime), float64(base.HostTime)),
				}
				return nil
			}})
		}
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return out, nil
}
