package experiments

import (
	"testing"

	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// TestCalibrationShapesSmall runs a reduced-scale Figure 6-like grid on one
// workload pair and checks the paper's qualitative orderings. The full-scale
// shape validation lives in the paperfigs command and EXPERIMENTS.md.
func TestCalibrationShapesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration grid is slow")
	}
	env := DefaultEnv()
	ws := []workloads.Workload{NASSuite(0.1)[0], NASSuite(0.1)[1]} // EP, IS
	cells, err := Grid(env, ws, []int{4}, []Spec{
		FixedSpec("10", 10*simtime.Microsecond),
		FixedSpec("1k", 1000*simtime.Microsecond),
		DynSpec("dyn", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		t.Logf("%-8s n=%d %-4s err=%6.2f%% speedup=%6.2fx stragglers=%d quanta=%d meanQ=%v",
			c.Workload, c.Nodes, c.Config, c.AccErr*100, c.Speedup, c.Stats.Stragglers, c.Stats.Quanta, c.Stats.MeanQ)
	}

	ep1k := Find(cells, "nas.ep", 4, "1k")
	is1k := Find(cells, "nas.is", 4, "1k")
	epDyn := Find(cells, "nas.ep", 4, "dyn")
	isDyn := Find(cells, "nas.is", 4, "dyn")
	if ep1k == nil || is1k == nil || epDyn == nil || isDyn == nil {
		t.Fatal("missing cells")
	}
	if is1k.AccErr <= ep1k.AccErr {
		t.Errorf("IS (alltoall) error %.2f%% not above EP error %.2f%% at Q=1000µs", is1k.AccErr*100, ep1k.AccErr*100)
	}
	if epDyn.AccErr >= ep1k.AccErr && ep1k.AccErr > 0.02 {
		t.Errorf("adaptive EP error %.2f%% not below fixed-1k %.2f%%", epDyn.AccErr*100, ep1k.AccErr*100)
	}
	if epDyn.Speedup < 2 {
		t.Errorf("adaptive EP speedup %.2fx too small", epDyn.Speedup)
	}
	if isDyn.AccErr > 0.30 {
		t.Errorf("adaptive IS error %.2f%% unexpectedly large", isDyn.AccErr*100)
	}
}
