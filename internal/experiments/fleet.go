package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"clustersim/internal/cluster"
	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/pkt"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workerpool"
	"clustersim/internal/workloads"
)

// This file implements the scenario regression fleet (DESIGN.md §13): a
// declarative manifest of simulation scenarios — topology × workload ×
// quantum policy × fault plan × lookahead mode — each executed at several
// intra-quantum worker counts, fingerprinted canonically, and diffed
// against committed goldens. cmd/simfleet is the CLI; the fleet-smoke CI
// job and `make fleet` gate on it.

// ManifestSchema identifies the fleet manifest encoding.
const ManifestSchema = "clustersim-fleet-manifest/1"

// GoldenSchema identifies the committed fingerprint file encoding.
const GoldenSchema = "clustersim-fleet/1"

// DefaultFleetWorkers is the worker-count matrix every scenario runs at
// unless it overrides it: the classic event-queue engine (0), the inline
// fast path (1), and a fanned-out pool (3). Fingerprints must be identical
// across all of them.
var DefaultFleetWorkers = []int{0, 1, 3}

// Scenario is one declarative fleet entry. String fields reuse the CLI
// flag syntaxes (simtime durations, faults.Parse specs, rack topologies) so
// a scenario is a clustersim invocation made data.
type Scenario struct {
	// Name uniquely identifies the scenario; goldens are keyed on it.
	Name string `json:"name"`
	// Workload names a workload known to ResolveWorkload (nas.ep, pingpong,
	// phases, reliable-phases, uniform, silent, ...).
	Workload string `json:"workload"`
	// Scale multiplies the workload's compute phases; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Nodes is the cluster size.
	Nodes int `json:"nodes"`
	// Quantum is a fixed quantum ("100us"); Dyn, when set, selects the
	// adaptive policy as min:max:inc:dec and overrides Quantum.
	Quantum string `json:"quantum,omitempty"`
	Dyn     string `json:"dyn,omitempty"`
	// Topo overrides the paper's perfect switch: "" keeps it,
	// "rack:<radix>:<edge>:<core>" builds a two-level fat-tree, and
	// "mixedwan:<rack>:<rackLat>:<wanLat>" builds one tight rack of the
	// given size with every other node a WAN singleton — the geometry that
	// exercises the partitioned (graded) fast path.
	Topo string `json:"topo,omitempty"`
	// Lookahead is "matrix" (default) or "scalar" (cluster.LookaheadMode).
	Lookahead string `json:"lookahead,omitempty"`
	// Faults is a faults.Parse spec (empty = no plan); FaultSeed keys its
	// decisions (0 means 1).
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Seed is the host-model seed (0 means 1).
	Seed uint64 `json:"seed,omitempty"`
	// MaxGuest caps guest time ("50ms"); empty keeps the environment
	// default. Fleet scenarios should set it low enough to stay cheap.
	MaxGuest string `json:"max_guest,omitempty"`
	// Workers overrides DefaultFleetWorkers for this scenario.
	Workers []int `json:"workers,omitempty"`
}

// Manifest is a parsed fleet manifest.
type Manifest struct {
	Schema    string     `json:"schema"`
	Scenarios []Scenario `json:"scenarios"`
}

// ParseManifest decodes and validates a manifest: schema match, at least
// one scenario, unique names, and every scenario's string fields parseable
// — a manifest error is a configuration bug and must fail loudly before
// any simulation runs.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("fleet manifest: %v", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("fleet manifest: schema %q, want %q", m.Schema, ManifestSchema)
	}
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet manifest: no scenarios")
	}
	seen := make(map[string]bool, len(m.Scenarios))
	for i := range m.Scenarios {
		sc := &m.Scenarios[i]
		if sc.Name == "" {
			return nil, fmt.Errorf("fleet manifest: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("fleet manifest: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if _, err := sc.config(); err != nil {
			return nil, fmt.Errorf("fleet manifest: scenario %q: %v", sc.Name, err)
		}
	}
	return &m, nil
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseManifest(f)
}

// scenarioConfig is everything a scenario resolves to before running.
type scenarioConfig struct {
	w         workloads.Workload
	env       Env
	policy    func() quantum.Policy
	plan      *faults.Plan
	lookahead cluster.LookaheadMode
	workers   []int
}

// config resolves every string field of the scenario. It is the single
// validation point: ParseManifest calls it for fail-fast checking and the
// runner calls it again per run (it is cheap and pure).
func (sc *Scenario) config() (*scenarioConfig, error) {
	scale := sc.Scale
	if scale == 0 {
		scale = 1.0
	}
	w, err := ResolveWorkload(sc.Workload, scale)
	if err != nil {
		return nil, err
	}
	if sc.Nodes < 1 {
		return nil, fmt.Errorf("nodes must be >= 1, got %d", sc.Nodes)
	}
	policy, err := ParsePolicy(sc.Quantum, sc.Dyn)
	if err != nil {
		return nil, err
	}
	env := DefaultEnv()
	if sc.Seed != 0 {
		env.Host.Seed = sc.Seed
	}
	if sc.Topo != "" {
		sw, err := ParseTopo(sc.Topo)
		if err != nil {
			return nil, err
		}
		env.Net.Switch = sw
	}
	if sc.MaxGuest != "" {
		d, err := simtime.ParseDuration(sc.MaxGuest)
		if err != nil {
			return nil, fmt.Errorf("max_guest: %v", err)
		}
		env.MaxGuest = simtime.Guest(d)
	}
	seed := sc.FaultSeed
	if seed == 0 {
		seed = 1
	}
	plan, err := faults.Parse(sc.Faults, seed)
	if err != nil {
		return nil, err
	}
	lookahead, err := ParseLookahead(sc.Lookahead)
	if err != nil {
		return nil, err
	}
	workers := sc.Workers
	if len(workers) == 0 {
		workers = DefaultFleetWorkers
	}
	for _, w := range workers {
		if w < 0 {
			return nil, fmt.Errorf("negative worker count %d", w)
		}
	}
	return &scenarioConfig{w: w, env: env, policy: policy, plan: plan, lookahead: lookahead, workers: workers}, nil
}

// ResolveWorkload maps a workload name to its runnable form with compute
// scaled by scale — the single name registry shared by clustersim's
// -workload flag and fleet manifests.
func ResolveWorkload(name string, scale float64) (workloads.Workload, error) {
	for _, w := range NASSuite(scale) {
		if w.Name == name {
			return w, nil
		}
	}
	switch name {
	case "namd":
		return NAMDWorkload(scale), nil
	case "nas.ft":
		p := workloads.DefaultFT()
		p.SerialComputePerIter = p.SerialComputePerIter.Scale(scale)
		return workloads.FT(p), nil
	case "nas.bt":
		p := workloads.DefaultBT()
		p.SerialComputePerStep = p.SerialComputePerStep.Scale(scale)
		return workloads.BT(p), nil
	case "pingpong":
		return workloads.PingPong(200, 9000), nil
	case "phases":
		return workloads.Phases(8, simtime.Duration(float64(2*simtime.Millisecond)*scale), 64<<10), nil
	case "reliable-phases":
		// Runs the reliable transport (ack/retransmit): the workload to pair
		// with loss faults — plain workloads block forever on lost frames.
		return workloads.ReliablePhases(8, simtime.Duration(float64(2*simtime.Millisecond)*scale), 64<<10), nil
	case "silent":
		return workloads.Silent(simtime.Duration(float64(20*simtime.Millisecond) * scale)), nil
	case "uniform":
		return workloads.Uniform(200, 4000, 100*simtime.Microsecond, 42), nil
	}
	return workloads.Workload{}, fmt.Errorf("unknown workload %q", name)
}

// ParsePolicy builds a quantum-policy constructor from the CLI/manifest
// representation: a fixed quantum string, overridden by a non-empty dyn
// spec min:max:inc:dec. An empty quantum means 1µs (ground truth).
func ParsePolicy(quantumSpec, dynSpec string) (func() quantum.Policy, error) {
	if dynSpec == "" {
		if quantumSpec == "" {
			quantumSpec = "1us"
		}
		q, err := simtime.ParseDuration(quantumSpec)
		if err != nil {
			return nil, fmt.Errorf("quantum: %v", err)
		}
		if q <= 0 {
			return nil, fmt.Errorf("quantum must be positive, got %v", q)
		}
		return func() quantum.Policy { return quantum.Fixed{Q: q} }, nil
	}
	parts := strings.Split(dynSpec, ":")
	if len(parts) != 4 {
		return nil, fmt.Errorf("dyn wants min:max:inc:dec, got %q", dynSpec)
	}
	min, err := simtime.ParseDuration(parts[0])
	if err != nil {
		return nil, fmt.Errorf("dyn min: %v", err)
	}
	max, err := simtime.ParseDuration(parts[1])
	if err != nil {
		return nil, fmt.Errorf("dyn max: %v", err)
	}
	inc, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return nil, fmt.Errorf("dyn inc: %v", err)
	}
	dec, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return nil, fmt.Errorf("dyn dec: %v", err)
	}
	return func() quantum.Policy { return quantum.NewAdaptive(min, max, inc, dec) }, nil
}

// ParseTopo parses a switch-topology override. The "rack" form models racks
// of radix nodes behind edge switches joined by a core layer; the
// "mixedwan" form models one tight rack plus distant WAN singletons — the
// motivating geometry for the per-link lookahead partitioning. Used by
// clustersim's -topo flag and fleet manifests.
func ParseTopo(spec string) (netmodel.SwitchModel, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return nil, fmt.Errorf("topo wants rack:<radix>:<edge>:<core> or mixedwan:<rack>:<rackLat>:<wanLat>, got %q", spec)
	}
	switch parts[0] {
	case "rack":
		radix, err := strconv.Atoi(parts[1])
		if err != nil || radix < 1 {
			return nil, fmt.Errorf("topo radix %q: want a positive integer", parts[1])
		}
		edge, err := simtime.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("topo edge latency: %v", err)
		}
		core, err := simtime.ParseDuration(parts[3])
		if err != nil {
			return nil, fmt.Errorf("topo core latency: %v", err)
		}
		return &netmodel.FatTreeSwitch{Radix: radix, EdgeLatency: edge, CoreLatency: core}, nil
	case "mixedwan":
		rack, err := strconv.Atoi(parts[1])
		if err != nil || rack < 1 {
			return nil, fmt.Errorf("topo rack size %q: want a positive integer", parts[1])
		}
		rackLat, err := simtime.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("topo rack latency: %v", err)
		}
		wanLat, err := simtime.ParseDuration(parts[3])
		if err != nil {
			return nil, fmt.Errorf("topo wan latency: %v", err)
		}
		return &mixedWANSwitch{rack: rack, rackLat: rackLat, wanLat: wanLat}, nil
	default:
		return nil, fmt.Errorf("unknown topology kind %q (want rack or mixedwan)", parts[0])
	}
}

// mixedWANSwitch puts the first rack nodes at rackLat from each other and
// every other pair at wanLat: a tight rack plus loose WAN singletons, the
// geometry where the per-link lookahead matrix beats the scalar bound.
type mixedWANSwitch struct {
	rack            int
	rackLat, wanLat simtime.Duration
}

// Latency implements netmodel.SwitchModel.
func (s *mixedWANSwitch) Latency(f *pkt.Frame, src, dst int) simtime.Duration {
	if src < s.rack && dst < s.rack {
		return s.rackLat
	}
	return s.wanLat
}

// ParseLookahead maps the CLI/manifest lookahead mode onto the engine mode.
// Empty selects the default (matrix).
func ParseLookahead(s string) (cluster.LookaheadMode, error) {
	switch s {
	case "matrix", "":
		return cluster.LookaheadMatrix, nil
	case "scalar":
		return cluster.LookaheadScalar, nil
	default:
		return 0, fmt.Errorf("lookahead wants matrix or scalar, got %q", s)
	}
}

// ScenarioOutcome is the result of running one scenario across its worker
// matrix.
type ScenarioOutcome struct {
	Name string
	// Fingerprint is the scenario's canonical fingerprint: the hex SHA-256
	// over the canonical result encoding plus the canonical profiler report
	// bytes, identical for every worker count when the engine is healthy.
	Fingerprint string
	// Workers echoes the worker counts run.
	Workers []int
	// Err is a run failure (any worker count); Mismatch describes a
	// cross-worker fingerprint divergence — the engine-bug signal that must
	// fail the fleet even when no golden exists yet.
	Err      error
	Mismatch string
	// Stats echoes the run's engine statistics (identical across worker
	// counts), letting callers assert manifest coverage: FastFullQuanta > 0
	// means the full fast path engaged, FastPartialQuanta > 0 the graded
	// partitioned path.
	Stats cluster.Stats
}

// runScenario executes the scenario once per worker count and cross-checks
// the fingerprints.
func runScenario(sc Scenario) ScenarioOutcome {
	out := ScenarioOutcome{Name: sc.Name}
	rc, err := sc.config()
	if err != nil {
		out.Err = err
		return out
	}
	out.Workers = rc.workers
	type runFP struct {
		workers int
		fp      string
	}
	var fps []runFP
	for _, workers := range rc.workers {
		profiler := prof.New()
		cfg := cluster.Config{
			Nodes:        sc.Nodes,
			Guest:        rc.env.Guest,
			Net:          rc.env.Net,
			Host:         rc.env.Host,
			Policy:       rc.policy,
			Program:      rc.w.New,
			MaxGuest:     rc.env.MaxGuest,
			TraceQuanta:  true,
			TracePackets: true,
			Workers:      workers,
			Faults:       rc.plan,
			Profiler:     profiler,
			Lookahead:    rc.lookahead,
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			out.Err = fmt.Errorf("workers=%d: %w", workers, err)
			return out
		}
		out.Stats = res.Stats
		h := sha256.New()
		h.Write(cluster.CanonicalResult(res))
		h.Write(profiler.Report().JSON())
		fps = append(fps, runFP{workers: workers, fp: hex.EncodeToString(h.Sum(nil))})
	}
	out.Fingerprint = fps[0].fp
	for _, r := range fps[1:] {
		if r.fp != fps[0].fp {
			out.Mismatch = fmt.Sprintf("fingerprint diverges across worker counts: workers=%d %s vs workers=%d %s",
				fps[0].workers, fps[0].fp, r.workers, r.fp)
			return out
		}
	}
	return out
}

// RunFleet executes every scenario of the manifest, fanning the scenarios
// out over a worker pool of the given size (<= 0 means GOMAXPROCS). Each
// scenario's own worker-count matrix runs sequentially inside its slot.
// Outcomes come back in manifest order regardless of pool scheduling.
// progress, when non-nil, is called once per finished scenario from pool
// goroutines (it must be safe for concurrent use).
func RunFleet(m *Manifest, poolWorkers int, progress func(ScenarioOutcome)) []ScenarioOutcome {
	outcomes := make([]ScenarioOutcome, len(m.Scenarios))
	pool := workerpool.New(poolWorkers)
	defer pool.Close()
	pool.Run(len(m.Scenarios), func(i int) {
		outcomes[i] = runScenario(m.Scenarios[i])
		if progress != nil {
			progress(outcomes[i])
		}
	})
	return outcomes
}

// GoldenEntry pins one scenario's committed fingerprint.
type GoldenEntry struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// Golden is the committed fingerprint file (testdata/fleet/golden.json).
type Golden struct {
	Schema string `json:"schema"`
	// FingerprintSchema records the cluster encoding version the
	// fingerprints were computed under, so an encoding bump is
	// distinguishable from a simulation change.
	FingerprintSchema string        `json:"fingerprint_schema"`
	Scenarios         []GoldenEntry `json:"scenarios"`
}

// BuildGolden assembles a golden file from fleet outcomes (which must all
// be healthy), sorted by scenario name for a stable diff-friendly encoding.
func BuildGolden(outcomes []ScenarioOutcome) (*Golden, error) {
	g := &Golden{Schema: GoldenSchema, FingerprintSchema: cluster.FingerprintSchema}
	for _, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("scenario %q failed: %v", o.Name, o.Err)
		}
		if o.Mismatch != "" {
			return nil, fmt.Errorf("scenario %q: %s", o.Name, o.Mismatch)
		}
		g.Scenarios = append(g.Scenarios, GoldenEntry{Name: o.Name, Fingerprint: o.Fingerprint})
	}
	sort.Slice(g.Scenarios, func(i, j int) bool { return g.Scenarios[i].Name < g.Scenarios[j].Name })
	return g, nil
}

// JSON renders the golden file canonically (two-space indent, trailing
// newline, scenarios sorted by name).
func (g *Golden) JSON() []byte {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("fleet: marshal golden: %v", err)) // only marshalable fields
	}
	return append(b, '\n')
}

// LoadGolden reads a committed golden file.
func LoadGolden(path string) (*Golden, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("fleet golden %s: %v", path, err)
	}
	if g.Schema != GoldenSchema {
		return nil, fmt.Errorf("fleet golden %s: schema %q, want %q", path, g.Schema, GoldenSchema)
	}
	return &g, nil
}

// FleetDiff is the structured comparison of a fleet run against a golden
// file — the artifact simfleet writes (and CI uploads) on failure.
type FleetDiff struct {
	// Changed lists scenarios whose fingerprint moved.
	Changed []FleetDelta `json:"changed,omitempty"`
	// Failed lists scenarios that errored or diverged across worker counts.
	Failed []FleetFailure `json:"failed,omitempty"`
	// Missing lists scenarios present in the manifest but absent from the
	// golden file (run simfleet -update); Extra the reverse.
	Missing []string `json:"missing,omitempty"`
	Extra   []string `json:"extra,omitempty"`
	// EncodingChanged is set when the golden was generated under a
	// different fingerprint-encoding version: every mismatch is then
	// expected and the goldens just need regenerating.
	EncodingChanged string `json:"encoding_changed,omitempty"`
}

// FleetDelta is one changed fingerprint.
type FleetDelta struct {
	Name string `json:"name"`
	Want string `json:"want"`
	Got  string `json:"got"`
}

// FleetFailure is one scenario that could not produce a fingerprint.
type FleetFailure struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
}

// Empty reports whether the diff found nothing.
func (d *FleetDiff) Empty() bool {
	return len(d.Changed) == 0 && len(d.Failed) == 0 && len(d.Missing) == 0 &&
		len(d.Extra) == 0 && d.EncodingChanged == ""
}

// JSON renders the diff artifact.
func (d *FleetDiff) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("fleet: marshal diff: %v", err)) // only marshalable fields
	}
	return append(b, '\n')
}

// DiffGolden compares fleet outcomes against the committed golden file.
// Outcomes and golden entries are matched by name; every list in the diff
// is sorted by name so the artifact is deterministic.
func DiffGolden(outcomes []ScenarioOutcome, g *Golden) *FleetDiff {
	d := &FleetDiff{}
	if g.FingerprintSchema != cluster.FingerprintSchema {
		d.EncodingChanged = fmt.Sprintf("golden fingerprints use encoding %q but this binary produces %q; regenerate with -update",
			g.FingerprintSchema, cluster.FingerprintSchema)
	}
	want := make(map[string]string, len(g.Scenarios))
	for _, e := range g.Scenarios {
		want[e.Name] = e.Fingerprint
	}
	ran := make(map[string]bool, len(outcomes))
	for _, o := range outcomes {
		ran[o.Name] = true
		switch {
		case o.Err != nil:
			d.Failed = append(d.Failed, FleetFailure{Name: o.Name, Reason: o.Err.Error()})
		case o.Mismatch != "":
			d.Failed = append(d.Failed, FleetFailure{Name: o.Name, Reason: o.Mismatch})
		default:
			w, ok := want[o.Name]
			if !ok {
				d.Missing = append(d.Missing, o.Name)
			} else if w != o.Fingerprint {
				d.Changed = append(d.Changed, FleetDelta{Name: o.Name, Want: w, Got: o.Fingerprint})
			}
		}
	}
	for _, e := range g.Scenarios {
		if !ran[e.Name] {
			d.Extra = append(d.Extra, e.Name)
		}
	}
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Name < d.Changed[j].Name })
	sort.Slice(d.Failed, func(i, j int) bool { return d.Failed[i].Name < d.Failed[j].Name })
	sort.Strings(d.Missing)
	sort.Strings(d.Extra)
	return d
}
