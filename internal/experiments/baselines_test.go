package experiments

import (
	"reflect"
	"testing"
)

// A shared baseline cache must change how often ground truths are computed
// — exactly once per distinct (workload, nodes, env) — and nothing else:
// every runner's output is identical with and without it.
func TestBaselineCacheSharing(t *testing.T) {
	env := DefaultEnv()
	env.Workers = 4
	ws := NASSuite(0.02)[:2] // nas.ep, nas.is
	nc := []int{2, 4}
	specs := StandardSpecs()[:2]

	plain, err := Grid(env, ws, nc, specs)
	if err != nil {
		t.Fatal(err)
	}

	env.Baselines = NewBaselineCache()
	cached, err := Grid(env, ws, nc, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Error("cells differ between cached and uncached grids")
	}
	st := env.Baselines.Stats()
	if want := len(ws) * len(nc); st.Misses != want || st.Entries != want {
		t.Errorf("first grid: want %d misses/entries, got %+v", want, st)
	}

	// A second grid over the same matrix must be all hits, no new runs.
	cached2, err := Grid(env, ws, nc, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached2) {
		t.Error("cells differ between first and second cached grid")
	}
	st2 := env.Baselines.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("second grid recomputed baselines: %+v -> %+v", st, st2)
	}
	if st2.Hits != st.Hits+len(ws)*len(nc) {
		t.Errorf("second grid: want %d more hits, got %+v -> %+v", len(ws)*len(nc), st, st2)
	}

	// A different runner on a cell the grid already measured also hits.
	abl, err := AblationIncDec(env, ws[1], 2, []float64{1.03}, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	env2 := env
	env2.Baselines = nil
	ablPlain, err := AblationIncDec(env2, ws[1], 2, []float64{1.03}, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(abl, ablPlain) {
		t.Errorf("ablation rows differ with cache:\n%+v\n%+v", abl, ablPlain)
	}
	st3 := env.Baselines.Stats()
	if st3.Misses != st2.Misses || st3.Hits != st2.Hits+1 {
		t.Errorf("ablation base not served from cache: %+v -> %+v", st2, st3)
	}

	// A caller needing traces the cached run lacks upgrades it once; the
	// wider entry then serves both traced and untraced callers.
	if _, err := runGroundTruth(env, ws[1], 2, false, true); err != nil {
		t.Fatal(err)
	}
	st4 := env.Baselines.Stats()
	if st4.Upgrades != 1 || st4.Misses != st3.Misses {
		t.Errorf("want exactly one trace upgrade, got %+v -> %+v", st3, st4)
	}
	if _, err := runGroundTruth(env, ws[1], 2, false, true); err != nil {
		t.Fatal(err)
	}
	if _, err := runGroundTruth(env, ws[1], 2, false, false); err != nil {
		t.Fatal(err)
	}
	st5 := env.Baselines.Stats()
	if st5.Upgrades != 1 || st5.Hits != st4.Hits+2 {
		t.Errorf("upgraded entry should serve both callers from cache: %+v -> %+v", st4, st5)
	}
}

// The intra-quantum fast path must be invisible through the experiment
// layer too: a grid run with IntraWorkers set matches the classic engine
// cell for cell.
func TestGridIntraWorkerInvariance(t *testing.T) {
	env := DefaultEnv()
	env.Workers = 2
	ws := NASSuite(0.02)[1:2] // nas.is: traffic-heavy
	nc := []int{2, 4}
	specs := StandardSpecs()[3:4] // one adaptive spec

	classic, err := Grid(env, ws, nc, specs)
	if err != nil {
		t.Fatal(err)
	}
	env.IntraWorkers = 2
	fast, err := Grid(env, ws, nc, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(classic, fast) {
		t.Errorf("cells differ between IntraWorkers=0 and 2:\n%+v\n%+v", classic, fast)
	}
}

// CellIndex must agree with the linear Find on hits and misses, and point
// into the indexed slice (not at copies).
func TestCellIndexFind(t *testing.T) {
	var cells []Cell
	for _, w := range []string{"nas.ep", "nas.is", "namd"} {
		for _, n := range []int{2, 4, 8} {
			for _, cfg := range []string{"10", "100", "1k"} {
				cells = append(cells, Cell{Workload: w, Nodes: n, Config: cfg, Metric: float64(len(cells))})
			}
		}
	}
	idx := IndexCells(cells)
	for i := range cells {
		c := &cells[i]
		got := idx.Find(c.Workload, c.Nodes, c.Config)
		if got != c {
			t.Fatalf("Find(%q,%d,%q) = %p, want &cells[%d]", c.Workload, c.Nodes, c.Config, got, i)
		}
		if lin := Find(cells, c.Workload, c.Nodes, c.Config); lin != c {
			t.Fatalf("linear Find(%q,%d,%q) = %p, want &cells[%d]", c.Workload, c.Nodes, c.Config, lin, i)
		}
	}
	if got := idx.Find("nas.cg", 2, "10"); got != nil {
		t.Errorf("Find on absent workload = %+v, want nil", got)
	}
	if got := idx.Find("nas.ep", 16, "10"); got != nil {
		t.Errorf("Find on absent node count = %+v, want nil", got)
	}
}
