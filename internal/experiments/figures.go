package experiments

import (
	"fmt"
	"sort"
	"strings"

	"clustersim/internal/cluster"
	"clustersim/internal/metrics"
	"clustersim/internal/simtime"
	"clustersim/internal/trace"
	"clustersim/internal/workloads"
)

// AggRow is one bar of Figures 6 and 7: a configuration at a node count with
// suite-level accuracy error and speedup.
type AggRow struct {
	Config string
	Nodes  int
	// AccErr is the relative error of the harmonic-mean metric (NAS) or of
	// the wall-clock time (NAMD) versus ground truth.
	AccErr float64
	// Speedup is the whole-suite host-time ratio versus ground truth.
	Speedup float64
}

// Fig6 reproduces Figure 6: the five NAS kernels at 2, 4 and 8 nodes under
// the standard configurations; accuracy is the harmonic mean over the suite
// (the NAS aggregation rule), speedup is the suite's total host time ratio.
func Fig6(env Env, scale float64, nodeCounts []int) ([]AggRow, []Cell, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 4, 8}
	}
	cells, err := Grid(env, NASSuite(scale), nodeCounts, StandardSpecs())
	if err != nil {
		return nil, nil, err
	}
	rows := aggregateNAS(cells, nodeCounts, StandardSpecs())
	return rows, cells, nil
}

func aggregateNAS(cells []Cell, nodeCounts []int, specs []Spec) []AggRow {
	// One pass over the cells into (nodes, config) buckets, then emit in
	// the fixed nodeCounts × specs order. Cells arrive workload-major, so
	// each bucket accumulates in the same cell order the per-bucket scans
	// used to — the float sums are bit-identical to the old O(buckets ×
	// cells) aggregation.
	type bucket struct {
		mops, baseMops    []float64
		hostCfg, hostBase float64
	}
	type bkey struct {
		nodes  int
		config string
	}
	buckets := make(map[bkey]*bucket, len(nodeCounts)*len(specs))
	for i := range cells {
		c := &cells[i]
		k := bkey{c.Nodes, c.Config}
		b := buckets[k]
		if b == nil {
			b = &bucket{}
			buckets[k] = b
		}
		b.mops = append(b.mops, c.Metric)
		b.baseMops = append(b.baseMops, c.BaseMetric)
		b.hostCfg += float64(c.HostTime)
		b.hostBase += c.Speedup * float64(c.HostTime)
	}
	var rows []AggRow
	for _, n := range nodeCounts {
		for _, spec := range specs {
			b := buckets[bkey{n, spec.Label}]
			if b == nil || len(b.mops) == 0 {
				continue
			}
			rows = append(rows, AggRow{
				Config:  spec.Label,
				Nodes:   n,
				AccErr:  metrics.RelError(metrics.HarmonicMean(b.mops), metrics.HarmonicMean(b.baseMops)),
				Speedup: b.hostBase / b.hostCfg,
			})
		}
	}
	return rows
}

// Fig7 reproduces Figure 7: NAMD at 2, 4 and 8 nodes under the standard
// configurations. Accuracy is the relative wall-clock deviation.
func Fig7(env Env, scale float64, nodeCounts []int) ([]AggRow, []Cell, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 4, 8}
	}
	cells, err := Grid(env, []workloads.Workload{NAMDWorkload(scale)}, nodeCounts, StandardSpecs())
	if err != nil {
		return nil, nil, err
	}
	var rows []AggRow
	for _, c := range cells {
		rows = append(rows, AggRow{Config: c.Config, Nodes: c.Nodes, AccErr: c.AccErr, Speedup: c.Speedup})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes < rows[j].Nodes
		}
		return rows[i].Config < rows[j].Config
	})
	return rows, cells, nil
}

// Fig8 reproduces Figure 8: the 8-node NAS and NAMD configurations plotted
// in the (accuracy error, speedup) plane, with the Pareto front marked.
type Fig8Out struct {
	Points []metrics.Point
	Front  []metrics.Point
	// NearFront maps each adaptive point to its distance from the front
	// (the paper's claim: all adaptive configurations lie on or very near
	// it).
	NearFront map[string]float64
}

// Fig8 derives the Pareto plot from already-computed Figure 6/7 cells (so
// the expensive grid runs once); pass the nodes count the paper uses (8).
func Fig8(nasRows, namdRows []AggRow, nodes int) Fig8Out {
	var pts []metrics.Point
	add := func(prefix string, rows []AggRow) {
		for _, r := range rows {
			if r.Nodes != nodes {
				continue
			}
			pts = append(pts, metrics.Point{
				Name:    prefix + " " + r.Config,
				Err:     r.AccErr,
				Speedup: r.Speedup,
			})
		}
	}
	add("NAS", nasRows)
	add("NAMD", namdRows)
	out := Fig8Out{Points: pts, Front: metrics.ParetoFront(pts), NearFront: map[string]float64{}}
	for _, p := range pts {
		if strings.Contains(p.Name, "dyn") {
			out.NearFront[p.Name] = metrics.DistanceToFront(p, pts)
		}
	}
	return out
}

// ScaleOutRow is one row of the Section 6 tables: a configuration of a
// 64-node benchmark.
type ScaleOutRow struct {
	Config string
	// Accel is "Acceleration vs. 1µs": the host-time speedup.
	Accel float64
	// AccErr is "Accuracy Error vs. 1µs" (EP, NAMD tables).
	AccErr float64
	// ExecRatio is "Simulated Exec. Ratio vs. 1µs" (IS table): how many
	// times longer the simulated execution claimed to take.
	ExecRatio float64
}

// ScaleOut is the outcome of one Figure 9 case study.
type ScaleOut struct {
	Benchmark string
	Nodes     int
	Rows      []ScaleOutRow
	// TrafficChart is the Figure 9 left chart (from the ground-truth run).
	TrafficChart string
	// SpeedupCharts maps config label → Figure 9 right chart.
	SpeedupCharts map[string]string
	// AdaptiveMeanQ is the mean quantum the adaptive run settled on — the
	// paper's observation that it "automatically adjusts to approximate the
	// best quantum".
	AdaptiveMeanQ simtime.Duration
}

// Fig9Case runs one Section 6 scale-out case study: benchmark w on nodes
// nodes under the given specs (the first spec must be the adaptive one so
// its mean quantum can be reported).
func Fig9Case(env Env, w workloads.Workload, nodes int, dyn Spec, fixed []Spec, chartWidth int) (*ScaleOut, error) {
	out := &ScaleOut{
		Benchmark:     w.Name,
		Nodes:         nodes,
		SpeedupCharts: map[string]string{},
	}

	baseRes, err := runGroundTruth(env, w, nodes, true, true)
	if err != nil {
		return nil, err
	}
	baseMetric, ok := baseRes.Metric(w.Metric)
	if !ok {
		return nil, fmt.Errorf("experiments: %s did not report %q", w.Name, w.Metric)
	}
	end := baseRes.GuestTime
	out.TrafficChart = trace.TrafficChart(baseRes.Packets, nodes, end, chartWidth)
	baseRate := float64(baseRes.GuestTime) / float64(baseRes.HostTime)

	specs := append([]Spec{dyn}, fixed...)
	type outcome struct {
		row   ScaleOutRow
		chart string
		meanQ simtime.Duration
	}
	results := make([]outcome, len(specs))
	var jobs []job
	for i, spec := range specs {
		i, spec := i, spec
		jobs = append(jobs, job{name: spec.Label, run: func() error {
			res, err := runOne(env, w, nodes, spec, true, false)
			if err != nil {
				return err
			}
			m, _ := res.Metric(w.Metric)
			row := ScaleOutRow{
				Config: spec.Label,
				Accel:  metrics.Speedup(float64(res.HostTime), float64(baseRes.HostTime)),
				AccErr: metrics.RelError(m, baseMetric),
			}
			// The IS table reports the simulated-time blow-up directly.
			row.ExecRatio = float64(res.GuestTime) / float64(baseRes.GuestTime)
			series := trace.SpeedupSeries(res.Quanta, baseRate, chartWidth, res.GuestTime)
			results[i] = outcome{
				row:   row,
				chart: trace.LogChart(series, 1, 100, 8, fmt.Sprintf("%s %s speedup vs 1µs over time", w.Name, spec.Label)),
				meanQ: res.Stats.MeanQ,
			}
			return nil
		}})
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	for i, r := range results {
		out.Rows = append(out.Rows, r.row)
		out.SpeedupCharts[specs[i].Label] = r.chart
		if i == 0 {
			out.AdaptiveMeanQ = r.meanQ
		}
	}
	return out, nil
}

// Fig9 runs all three Section 6 case studies (EP, IS, NAMD at 64 nodes)
// with the table configurations of the paper.
func Fig9(env Env, scale float64, nodes, chartWidth int) ([]*ScaleOut, error) {
	if nodes == 0 {
		nodes = 64
	}
	nas := NASSuite(scale)
	var ep, is workloads.Workload
	for _, w := range nas {
		switch w.Name {
		case "nas.ep":
			ep = w
		case "nas.is":
			is = w
		}
	}
	fixed := []Spec{
		FixedSpec("100", 100*simtime.Microsecond),
		FixedSpec("10", 10*simtime.Microsecond),
	}
	var outs []*ScaleOut
	epOut, err := Fig9Case(env, ep, nodes, DynSpec("dyn 1:100", 1*simtime.Microsecond, 100*simtime.Microsecond, 1.03, 0.1), fixed, chartWidth)
	if err != nil {
		return nil, err
	}
	outs = append(outs, epOut)
	// IS uses the paper's "very conservative adaptation schedule (slow
	// acceleration and fast deceleration)".
	isOut, err := Fig9Case(env, is, nodes, DynSpec("dyn 1:100 conservative", 1*simtime.Microsecond, 100*simtime.Microsecond, 1.02, 0.05), fixed, chartWidth)
	if err != nil {
		return nil, err
	}
	outs = append(outs, isOut)
	namdOut, err := Fig9Case(env, NAMDWorkload(scale), nodes, DynSpec("dyn 2:100", 2*simtime.Microsecond, 100*simtime.Microsecond, 1.03, 0.14), fixed, chartWidth)
	if err != nil {
		return nil, err
	}
	outs = append(outs, namdOut)
	return outs, nil
}

// quantumChart renders the adaptive quantum decisions of a run (used by the
// examples; exported via RunQuantumTrace).
func quantumChart(res *cluster.Result, width int) string {
	series := trace.QuantumSeries(res.Quanta, width, res.GuestTime)
	return trace.LogChart(series, 1, 1100, 8, "quantum duration (µs) over guest time")
}

// RunQuantumTrace runs one configuration with quantum tracing and returns
// the result together with an ASCII chart of the quantum over time.
func RunQuantumTrace(env Env, w workloads.Workload, nodes int, spec Spec, width int) (*cluster.Result, string, error) {
	res, err := runOne(env, w, nodes, spec, true, false)
	if err != nil {
		return nil, "", err
	}
	return res, quantumChart(res, width), nil
}
