package experiments

import (
	"bytes"
	"strings"
	"testing"

	"clustersim/internal/prof"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

func TestNASSuiteScaling(t *testing.T) {
	full := NASSuite(1.0)
	half := NASSuite(0.5)
	if len(full) != 5 || len(half) != 5 {
		t.Fatalf("suite sizes %d/%d", len(full), len(half))
	}
	names := map[string]bool{}
	for _, w := range full {
		names[w.Name] = true
	}
	for _, want := range []string{"nas.ep", "nas.is", "nas.cg", "nas.mg", "nas.lu"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestSpecLabels(t *testing.T) {
	specs := StandardSpecs()
	if len(specs) != 5 {
		t.Fatalf("expected 5 standard specs, got %d", len(specs))
	}
	want := []string{"10", "100", "1k", "dyn 1k 1.03:0.02", "dyn 1k 1.05:0.02"}
	for i, s := range specs {
		if s.Label != want[i] {
			t.Errorf("spec %d label %q, want %q", i, s.Label, want[i])
		}
		if s.Policy == nil || s.Policy() == nil {
			t.Errorf("spec %q has no policy", s.Label)
		}
	}
	if GroundTruth().Label != "1" {
		t.Error("ground truth label")
	}
}

func TestGridComputesBaselinesAndCells(t *testing.T) {
	env := DefaultEnv()
	w := workloads.Phases(3, 200*simtime.Microsecond, 16<<10)
	cells, err := Grid(env, []workloads.Workload{w}, []int{2, 4},
		[]Spec{FixedSpec("100", 100*simtime.Microsecond)})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.Speedup <= 1 {
			t.Errorf("n=%d speedup %v not above 1", c.Nodes, c.Speedup)
		}
		if c.BaseMetric <= 0 || c.Metric <= 0 {
			t.Errorf("n=%d missing metrics", c.Nodes)
		}
	}
	if Find(cells, w.Name, 2, "100") == nil {
		t.Error("Find failed")
	}
	if Find(cells, w.Name, 3, "100") != nil {
		t.Error("Find invented a cell")
	}
}

func TestFig8ParetoFromRows(t *testing.T) {
	nas := []AggRow{
		{Config: "1k", Nodes: 8, AccErr: 0.8, Speedup: 60},
		{Config: "dyn 1k 1.03:0.02", Nodes: 8, AccErr: 0.01, Speedup: 25},
		{Config: "10", Nodes: 8, AccErr: 0.02, Speedup: 8},
	}
	namd := []AggRow{
		{Config: "dyn 1k 1.03:0.02", Nodes: 8, AccErr: 0.02, Speedup: 30},
		{Config: "other", Nodes: 4, AccErr: 0.5, Speedup: 2}, // wrong node count: excluded
	}
	out := Fig8(nas, namd, 8)
	if len(out.Points) != 4 {
		t.Fatalf("expected 4 points, got %d", len(out.Points))
	}
	if len(out.Front) == 0 {
		t.Fatal("empty front")
	}
	foundDyn := false
	for name, d := range out.NearFront {
		if !strings.Contains(name, "dyn") {
			t.Errorf("non-adaptive point %q in NearFront", name)
		}
		if d == 0 {
			foundDyn = true
		}
	}
	if !foundDyn {
		t.Error("no adaptive point on the front in this synthetic setup")
	}
}

func TestFig9CaseSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out case is slow")
	}
	env := DefaultEnv()
	w := NASSuite(0.05)[0] // EP, tiny
	out, err := Fig9Case(env, w, 8,
		DynSpec("dyn", simtime.Microsecond, 100*simtime.Microsecond, 1.03, 0.1),
		[]Spec{FixedSpec("10", 10*simtime.Microsecond)}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(out.Rows))
	}
	if out.Rows[0].Config != "dyn" {
		t.Errorf("first row %q, want the adaptive one", out.Rows[0].Config)
	}
	if out.TrafficChart == "" || len(out.SpeedupCharts) != 2 {
		t.Error("missing charts")
	}
	if out.AdaptiveMeanQ <= 0 {
		t.Error("missing adaptive mean quantum")
	}
	for _, r := range out.Rows {
		if r.Accel <= 0 || r.ExecRatio <= 0 {
			t.Errorf("row %q has nonsense values: %+v", r.Config, r)
		}
	}
}

func TestAblationIncDecSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	env := DefaultEnv()
	w := workloads.Phases(3, 300*simtime.Microsecond, 16<<10)
	rows, err := AblationIncDec(env, w, 4, []float64{1.03, 1.2}, []float64{0.02, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.MeanQ <= 0 {
			t.Errorf("row %q broken: %+v", r.Label, r)
		}
	}
}

func TestAblationHostBarrierDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	env := DefaultEnv()
	w := workloads.Silent(2 * simtime.Millisecond)
	rows, err := AblationHost(env, w, 4,
		[]simtime.Duration{100 * simtime.Microsecond, 1300 * simtime.Microsecond},
		[]float64{0.22})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for _, r := range rows {
		if r.BarrierCost == 100*simtime.Microsecond {
			lo = r.Speedup1k
		} else {
			hi = r.Speedup1k
		}
	}
	if hi <= lo {
		t.Errorf("Q=1000µs speedup should grow with barrier cost: %v vs %v", lo, hi)
	}
}

func TestRunQuantumTrace(t *testing.T) {
	env := DefaultEnv()
	w := workloads.Phases(2, 200*simtime.Microsecond, 8<<10)
	res, chart, err := RunQuantumTrace(env, w, 4,
		DynSpec("dyn", simtime.Microsecond, simtime.Millisecond, 1.05, 0.02), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quanta) == 0 || chart == "" {
		t.Error("missing trace or chart")
	}
}

func TestOptimisticEstimateFavorsConservative(t *testing.T) {
	if testing.Short() {
		t.Skip("optimistic estimate is slow")
	}
	env := DefaultEnv()
	w := workloads.Phases(4, 300*simtime.Microsecond, 32<<10)
	rows, err := OptimisticEstimate(env, w, 4,
		[]Spec{FixedSpec("100", 100*simtime.Microsecond)}, PaperOptimistic())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.Stragglers == 0 {
		t.Fatal("no stragglers; the estimate degenerates")
	}
	if r.Ratio <= 1 {
		t.Errorf("with 30s checkpoints the optimistic scheme should lose; ratio %.2f", r.Ratio)
	}
}

func TestAblationOracleBeatsBlindAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle ablation is slow")
	}
	env := DefaultEnv()
	w := workloads.Phases(5, 500*simtime.Microsecond, 32<<10)
	rows, err := AblationOracle(env, w, 4, simtime.Microsecond, simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var dyn, oracle AblationRow
	for _, r := range rows {
		switch r.Label {
		case "dyn 1.03:0.02":
			dyn = r
		case "oracle":
			oracle = r
		}
	}
	if oracle.Speedup <= dyn.Speedup {
		t.Errorf("oracle %.1fx not above blind adaptive %.1fx", oracle.Speedup, dyn.Speedup)
	}
	if oracle.AccErr > 0.05 {
		t.Errorf("oracle accuracy error %.2f%% unexpectedly large", oracle.AccErr*100)
	}
}

func TestSamplingStudyMultipliesOnComputeBound(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling study is slow")
	}
	env := DefaultEnv()
	w := NASSuite(0.05)[0] // EP
	rows, err := SamplingStudy(env, w, 4, DefaultSampling())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]SamplingRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["adaptive + sampling"].Speedup <= byLabel["adaptive"].Speedup {
		t.Errorf("sampling did not add speedup on a compute-bound workload: %.1fx vs %.1fx",
			byLabel["adaptive + sampling"].Speedup, byLabel["adaptive"].Speedup)
	}
	// Sampling must not hurt accuracy in this framework (timing comes from
	// the workload model, not from the sampled detail).
	for _, r := range rows {
		if r.AccErr > 0.05 {
			t.Errorf("%s accuracy error %.2f%%", r.Label, r.AccErr*100)
		}
	}
}

func TestFiguresEndToEndTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure integration is slow")
	}
	env := DefaultEnv()
	nas, nasCells, err := Fig6(env, 0.04, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nas) != 5 {
		t.Fatalf("Fig6 rows: %d", len(nas))
	}
	if len(nasCells) != 25 { // 5 kernels × 5 configs
		t.Fatalf("Fig6 cells: %d", len(nasCells))
	}
	namd, namdCells, err := Fig7(env, 0.04, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(namd) != 5 || len(namdCells) != 5 {
		t.Fatalf("Fig7 rows/cells: %d/%d", len(namd), len(namdCells))
	}
	out := Fig8(nas, namd, 2)
	if len(out.Points) != 10 {
		t.Fatalf("Fig8 points: %d", len(out.Points))
	}
	if len(out.Front) == 0 {
		t.Fatal("Fig8 empty front")
	}
	// Sanity on the aggregate rows: every config present, speedups positive.
	for _, r := range append(nas, namd...) {
		if r.Speedup <= 0 {
			t.Errorf("row %q nodes %d has speedup %v", r.Config, r.Nodes, r.Speedup)
		}
	}
}

func TestFig9EndToEndTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig9 integration is slow")
	}
	env := DefaultEnv()
	outs, err := Fig9(env, 0.04, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("Fig9 cases: %d", len(outs))
	}
	names := []string{"nas.ep", "nas.is", "namd"}
	for i, o := range outs {
		if o.Benchmark != names[i] {
			t.Errorf("case %d is %q, want %q", i, o.Benchmark, names[i])
		}
		if len(o.Rows) != 3 {
			t.Errorf("%s: %d rows", o.Benchmark, len(o.Rows))
		}
		if o.TrafficChart == "" {
			t.Errorf("%s: missing traffic chart", o.Benchmark)
		}
	}
}

func TestScalingCurveMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling curve is slow")
	}
	env := DefaultEnv()
	rows, err := ScalingCurve(env, NAMDWorkload(0.1), []int{2, 8},
		DynSpec("dyn", simtime.Microsecond, simtime.Millisecond, 1.03, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[1].Speedup >= rows[0].Speedup {
		t.Errorf("speedup should erode with scale: %v -> %v", rows[0].Speedup, rows[1].Speedup)
	}
	if rows[1].PacketsPerGuestMS <= rows[0].PacketsPerGuestMS {
		t.Errorf("traffic density should grow with scale: %v -> %v",
			rows[0].PacketsPerGuestMS, rows[1].PacketsPerGuestMS)
	}
	if rows[1].MeanQ >= rows[0].MeanQ {
		t.Errorf("settled quantum should shrink with scale: %v -> %v", rows[0].MeanQ, rows[1].MeanQ)
	}
}

// TestGridProfileSweep: with Env.Profiles attached, every run of the grid
// (ground truths included) lands in the sweep under its canonical label,
// and the sweep's JSON is byte-identical whatever the worker count —
// registration order is erased by sorting, and the memoized baseline's
// duplicate profiles collapse.
func TestGridProfileSweep(t *testing.T) {
	run := func(workers int) ([]byte, *prof.SweepReport) {
		env := DefaultEnv()
		env.Workers = workers
		env.Profiles = &prof.Sweep{}
		w := workloads.Phases(3, 200*simtime.Microsecond, 16<<10)
		if _, err := Grid(env, []workloads.Workload{w}, []int{2, 4},
			[]Spec{FixedSpec("100", 100*simtime.Microsecond)}); err != nil {
			t.Fatal(err)
		}
		rep := env.Profiles.Report()
		return rep.JSON(), rep
	}
	seqJSON, rep := run(1)
	labels := map[string]bool{}
	for _, r := range rep.Runs {
		labels[r.Label] = true
	}
	for _, want := range []string{"synthetic.phases/2/1", "synthetic.phases/2/100", "synthetic.phases/4/1", "synthetic.phases/4/100"} {
		if !labels[want] {
			t.Errorf("sweep missing run %q (have %v)", want, labels)
		}
	}
	parJSON, _ := run(4)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("sweep report bytes differ between Workers=1 and Workers=4")
	}
}
