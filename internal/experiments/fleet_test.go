package experiments

import (
	"strings"
	"testing"
)

// tinyManifest is a fast three-scenario fleet touching all three engine
// paths: classic-only (workers pinned to 0), the full fast path, and the
// graded mixedwan geometry.
const tinyManifest = `{
  "schema": "clustersim-fleet-manifest/1",
  "scenarios": [
    {"name": "classic", "workload": "pingpong", "nodes": 2, "quantum": "2us",
     "max_guest": "5ms", "workers": [0]},
    {"name": "fast", "workload": "pingpong", "nodes": 4, "quantum": "1us",
     "max_guest": "5ms"},
    {"name": "graded", "workload": "uniform", "nodes": 6, "quantum": "5us",
     "topo": "mixedwan:4:500ns:50us", "max_guest": "50ms"}
  ]
}`

func parseTiny(t *testing.T) *Manifest {
	t.Helper()
	m, err := ParseManifest(strings.NewReader(tinyManifest))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseManifestValidation(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"bad schema", `{"schema": "nope/9", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2}]}`, "schema"},
		{"no scenarios", `{"schema": "clustersim-fleet-manifest/1", "scenarios": []}`, "no scenarios"},
		{"missing name", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"workload": "pingpong", "nodes": 2}]}`, "no name"},
		{"duplicate name", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [
			{"name": "a", "workload": "pingpong", "nodes": 2},
			{"name": "a", "workload": "pingpong", "nodes": 2}]}`, "duplicate"},
		{"unknown workload", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "wat", "nodes": 2}]}`, "unknown workload"},
		{"zero nodes", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong"}]}`, "nodes"},
		{"bad quantum", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "quantum": "fast"}]}`, "quantum"},
		{"negative quantum", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "quantum": "-1us"}]}`, "positive"},
		{"bad dyn", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "dyn": "1us:1ms"}]}`, "dyn"},
		{"bad topo", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "topo": "ring:4"}]}`, "topo"},
		{"bad lookahead", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "lookahead": "psychic"}]}`, "lookahead"},
		{"bad faults", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "faults": "chaos=1"}]}`, "chaos"},
		{"negative workers", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "workers": [-1]}]}`, "worker"},
		{"unknown field", `{"schema": "clustersim-fleet-manifest/1", "scenarios": [{"name": "a", "workload": "pingpong", "nodes": 2, "qantum": "1us"}]}`, "qantum"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseManifest(strings.NewReader(c.json))
			if err == nil {
				t.Fatal("manifest accepted, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	if m := parseTiny(t); len(m.Scenarios) != 3 {
		t.Errorf("tiny manifest parsed %d scenarios, want 3", len(m.Scenarios))
	}
}

// The fleet must be deterministic end to end: outcomes in manifest order,
// every worker count bit-identical, and two full fleet runs byte-equal.
func TestRunFleetDeterministic(t *testing.T) {
	m := parseTiny(t)
	run := func() []ScenarioOutcome { return RunFleet(m, 2, nil) }
	a, b := run(), run()
	if len(a) != len(m.Scenarios) {
		t.Fatalf("got %d outcomes, want %d", len(a), len(m.Scenarios))
	}
	for i, o := range a {
		if o.Name != m.Scenarios[i].Name {
			t.Errorf("outcome %d is %q, want manifest order %q", i, o.Name, m.Scenarios[i].Name)
		}
		if o.Err != nil {
			t.Errorf("%s: %v", o.Name, o.Err)
		}
		if o.Mismatch != "" {
			t.Errorf("%s: %s", o.Name, o.Mismatch)
		}
		if len(o.Fingerprint) != 64 {
			t.Errorf("%s: fingerprint %q is not a sha256 hex", o.Name, o.Fingerprint)
		}
		if o.Fingerprint != b[i].Fingerprint {
			t.Errorf("%s: fingerprint differs across fleet runs", o.Name)
		}
	}
	// Distinct scenarios must not collide.
	if a[0].Fingerprint == a[1].Fingerprint || a[1].Fingerprint == a[2].Fingerprint {
		t.Error("distinct scenarios produced equal fingerprints")
	}
}

func TestGoldenRoundTripAndDiff(t *testing.T) {
	m := parseTiny(t)
	outcomes := RunFleet(m, 0, nil)
	g, err := BuildGolden(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffGolden(outcomes, g); !d.Empty() {
		t.Fatalf("self-diff not empty:\n%s", d.JSON())
	}

	// A changed fingerprint is reported by name.
	bent := *g
	bent.Scenarios = append([]GoldenEntry(nil), g.Scenarios...)
	for i := range bent.Scenarios {
		if bent.Scenarios[i].Name == "fast" {
			bent.Scenarios[i].Fingerprint = strings.Repeat("0", 64)
		}
	}
	d := DiffGolden(outcomes, &bent)
	if len(d.Changed) != 1 || d.Changed[0].Name != "fast" {
		t.Errorf("changed = %+v, want exactly scenario fast", d.Changed)
	}

	// A scenario absent from the golden is missing; a golden entry no
	// longer in the manifest is extra.
	short := *g
	short.Scenarios = g.Scenarios[1:]
	d = DiffGolden(outcomes, &short)
	if len(d.Missing) != 1 || d.Missing[0] != g.Scenarios[0].Name {
		t.Errorf("missing = %v, want [%s]", d.Missing, g.Scenarios[0].Name)
	}
	d = DiffGolden(outcomes[1:], g)
	if len(d.Extra) != 1 || d.Extra[0] != outcomes[0].Name {
		t.Errorf("extra = %v, want [%s]", d.Extra, outcomes[0].Name)
	}

	// An encoding bump is called out explicitly.
	old := *g
	old.FingerprintSchema = "clustersim-fp/0"
	if d := DiffGolden(outcomes, &old); d.EncodingChanged == "" {
		t.Error("fingerprint-schema mismatch not reported")
	}

	// A failed scenario lands in Failed, never silently in Changed.
	broken := append([]ScenarioOutcome(nil), outcomes...)
	broken[2].Mismatch = "synthetic divergence"
	d = DiffGolden(broken, g)
	if len(d.Failed) != 1 || d.Failed[0].Name != broken[2].Name {
		t.Errorf("failed = %+v, want scenario %s", d.Failed, broken[2].Name)
	}
	if _, err := BuildGolden(broken); err == nil {
		t.Error("BuildGolden accepted a diverged outcome")
	}
}
