package experiments

import (
	"testing"

	"clustersim/internal/faults"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

func TestFaultSweep(t *testing.T) {
	env := DefaultEnv()
	w := workloads.ReliablePhases(2, 150*simtime.Microsecond, 8<<10)
	specs := []Spec{
		FixedSpec("100", 100*simtime.Microsecond),
		DynSpec("dyn 1k 1.03:0.02", simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02),
	}
	rows, err := FaultSweep(env, w, 4, specs, []float64{0, 10}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for i, r := range rows {
		wantPct, wantCfg := []float64{0, 0, 10, 10}[i], specs[i%2].Label
		if r.LossPct != wantPct || r.Config != wantCfg {
			t.Fatalf("row %d is (%g%%, %q), want (%g%%, %q)", i, r.LossPct, r.Config, wantPct, wantCfg)
		}
		if r.MeanQ <= 0 || r.GuestTime <= 0 {
			t.Errorf("row %d missing run outcomes: %+v", i, r)
		}
	}
	// Lossless rows must run the nil-plan path: no drops, no duplicates.
	// (They may still retransmit — at coarse quanta, straggler delay can
	// exceed the retransmission timer without any loss.)
	for _, r := range rows[:2] {
		if r.Dropped != 0 || r.Duplicated != 0 {
			t.Errorf("lossless row reports fault counters: %+v", r)
		}
	}
	for _, r := range rows[2:] {
		if r.Dropped == 0 {
			t.Errorf("10%% loss dropped nothing: %+v", r)
		}
		if r.Retransmits == 0 {
			t.Errorf("reliable workload under loss reports no retransmits: %+v", r)
		}
	}
}

// A fault plan must key the baseline cache: the same workload under two
// different plans (or under none) may not share a ground truth.
func TestBaselineCacheKeysOnFaults(t *testing.T) {
	cache := NewBaselineCache()
	env := DefaultEnv()
	env.Baselines = cache
	w := workloads.Phases(2, 100*simtime.Microsecond, 4<<10)

	run := func(plan *faults.Plan) {
		t.Helper()
		fenv := env
		fenv.Faults = plan
		if _, err := runGroundTruth(fenv, w, 2, false, false); err != nil {
			t.Fatal(err)
		}
	}
	run(nil)
	run(&faults.Plan{Seed: 1, Default: faults.Link{Dup: 0.1}})
	run(&faults.Plan{Seed: 2, Default: faults.Link{Dup: 0.1}})
	run(&faults.Plan{Seed: 1, Default: faults.Link{Dup: 0.1}}) // same fingerprint: cached

	s := cache.Stats()
	if s.Entries != 3 || s.Misses != 3 || s.Hits != 1 {
		t.Errorf("cache saw %+v, want 3 entries / 3 misses / 1 hit", s)
	}
}
