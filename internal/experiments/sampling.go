package experiments

import (
	"clustersim/internal/cluster"
	"clustersim/internal/host"
	"clustersim/internal/metrics"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// SamplingRow is one configuration of the sampling-combination study.
type SamplingRow struct {
	Label string
	// Sampled reports whether the node simulators fast-forwarded between
	// detail samples.
	Sampled bool
	// AccErr and Speedup are versus the unsampled ground truth.
	AccErr  float64
	Speedup float64
}

// SamplingStudy demonstrates the paper's §7 future-work proposal: "combine
// this technique with 'sampling' of the individual node simulators to take
// further advantage of another accuracy/speed tradeoff. We believe that the
// combination of these techniques will open up a much wider application
// space". It runs the workload under ground truth and the adaptive quantum,
// each with and without a sampled host (10% detail, fast functional
// emulation otherwise), all compared against the unsampled ground truth.
func SamplingStudy(env Env, w workloads.Workload, nodes int, s host.Sampling) ([]SamplingRow, error) {
	base, err := runGroundTruth(env, w, nodes, false, false)
	if err != nil {
		return nil, err
	}
	baseMetric, _ := base.Metric(w.Metric)

	adaptive := DynSpec("dyn 1k 1.03:0.02", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02)
	type cfg struct {
		label   string
		spec    Spec
		sampled bool
	}
	cfgs := []cfg{
		{"Q=1µs", GroundTruth(), false},
		{"Q=1µs + sampling", GroundTruth(), true},
		{"adaptive", adaptive, false},
		{"adaptive + sampling", adaptive, true},
	}
	var rows []SamplingRow
	for _, c := range cfgs {
		e := env
		if c.sampled {
			samp := s
			e.Host.Sampling = &samp
		}
		var res *cluster.Result
		if !c.sampled && c.label == "Q=1µs" {
			// The unsampled ground-truth row is the baseline itself; rerunning
			// it would only reproduce the same deterministic result.
			res = base
		} else {
			var err error
			res, err = runOne(e, w, nodes, c.spec, false, false)
			if err != nil {
				return nil, err
			}
		}
		m, _ := res.Metric(w.Metric)
		rows = append(rows, SamplingRow{
			Label:   c.label,
			Sampled: c.sampled,
			AccErr:  metrics.RelError(m, baseMetric),
			Speedup: metrics.Speedup(float64(res.HostTime), float64(base.HostTime)),
		})
	}
	return rows, nil
}

// DefaultSampling returns a 10%-detail schedule typical of sampled
// simulators (SMARTS-style detail intervals at the millisecond scale).
func DefaultSampling() host.Sampling {
	return host.Sampling{
		Period:         2 * simtime.Millisecond,
		DetailFraction: 0.1,
		FastSlowdown:   2,
	}
}
