// Package experiments defines the paper's evaluation matrix — one runner per
// table and figure — on top of the cluster engine (see DESIGN.md §5 for the
// experiment index).
//
// The methodology follows §4–5 of the paper exactly: every configuration is
// compared against the Q = 1µs run of the same seed (the deterministic
// "ground truth"); accuracy error is the relative deviation of the
// application's self-reported metric; speedup is the ratio of host execution
// times.
package experiments

import (
	"fmt"

	"clustersim/internal/cluster"
	"clustersim/internal/faults"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/metrics"
	"clustersim/internal/netmodel"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// Env is the shared simulation environment of an experiment: everything
// except the workload, node count and quantum policy.
type Env struct {
	Guest    guest.Config
	Net      *netmodel.Model
	Host     host.Params
	MaxGuest simtime.Guest
	// Workers bounds how many independent simulations of an experiment grid
	// run concurrently (each simulation is single-threaded and
	// deterministic). 0 means GOMAXPROCS; 1 forces fully sequential
	// execution. Whatever the value, results are assembled in the same
	// fixed order, so every experiment output is worker-count independent.
	Workers int
	// IntraWorkers enables the engine's intra-quantum parallel fast path
	// inside each simulation (cluster.Config.Workers): ground-truth quanta
	// (Q <= minimum network latency) step their nodes concurrently on this
	// many workers. 0 keeps every simulation on the classic sequential
	// engine. Results are bit-identical either way.
	IntraWorkers int
	// Baselines, when non-nil, memoizes ground-truth (Q = 1µs) runs across
	// experiment runners, so regenerating every figure pays for each
	// distinct (workload, nodes, env) baseline exactly once. Nil recomputes
	// baselines per runner, as before.
	Baselines *BaselineCache
	// Faults, when non-nil, applies deterministic fault injection (loss,
	// duplication, jitter, down windows, node slowdown) to every run of the
	// experiment — including the ground truth, which under faults is the
	// Q = 1µs run of the *same* fault plan. Part of the baseline memoization
	// key via its canonical fingerprint.
	Faults *faults.Plan
	// Profiles, when non-nil, attaches a sync-overhead profiler to every run
	// of the experiment, labelled "workload/nodes/config" (with the fault
	// fingerprint appended when faults are active). The sweep's report is
	// canonical regardless of Workers/IntraWorkers: registration order is
	// erased by sorting and byte-identical duplicates (e.g. a baseline run
	// shared across runners) collapse.
	Profiles *prof.Sweep
}

// DefaultEnv returns the paper's evaluation environment: 2.6 GHz guests,
// 10 GB/s NICs with 1µs latency and jumbo frames, a perfect switch, and the
// calibrated host model.
func DefaultEnv() Env {
	return Env{
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		MaxGuest: simtime.Guest(200 * simtime.Second),
	}
}

// Spec names a quantum policy configuration.
type Spec struct {
	Label  string
	Policy func() quantum.Policy
}

// FixedSpec builds a fixed-quantum configuration labelled like the paper
// ("10", "100", "1k").
func FixedSpec(label string, q simtime.Duration) Spec {
	return Spec{Label: label, Policy: func() quantum.Policy { return quantum.Fixed{Q: q} }}
}

// DynSpec builds an adaptive configuration.
func DynSpec(label string, min, max simtime.Duration, inc, dec float64) Spec {
	return Spec{Label: label, Policy: func() quantum.Policy {
		return quantum.NewAdaptive(min, max, inc, dec)
	}}
}

// GroundTruth is the paper's baseline: Q = 1µs, the only deterministically
// correct execution.
func GroundTruth() Spec { return FixedSpec("1", 1*simtime.Microsecond) }

// StandardSpecs returns the five non-baseline configurations of Figures 6–8:
// fixed 10µs/100µs/1000µs and the two best adaptive schedules.
func StandardSpecs() []Spec {
	return []Spec{
		FixedSpec("10", 10*simtime.Microsecond),
		FixedSpec("100", 100*simtime.Microsecond),
		FixedSpec("1k", 1000*simtime.Microsecond),
		DynSpec("dyn 1k 1.03:0.02", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02),
		DynSpec("dyn 1k 1.05:0.02", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.05, 0.02),
	}
}

// NASSuite returns the five NAS kernels of the paper with all compute
// phases scaled by scale (1.0 = the calibrated defaults).
func NASSuite(scale float64) []workloads.Workload {
	ep := workloads.DefaultEP()
	ep.SerialCompute = ep.SerialCompute.Scale(scale)
	is := workloads.DefaultIS()
	is.SerialComputePerIter = is.SerialComputePerIter.Scale(scale)
	cg := workloads.DefaultCG()
	cg.SerialComputePerInner = cg.SerialComputePerInner.Scale(scale)
	mg := workloads.DefaultMG()
	mg.SerialComputeFinest = mg.SerialComputeFinest.Scale(scale)
	lu := workloads.DefaultLU()
	lu.SerialComputePerStep = lu.SerialComputePerStep.Scale(scale)
	return []workloads.Workload{
		workloads.EP(ep), workloads.IS(is), workloads.CG(cg),
		workloads.MG(mg), workloads.LU(lu),
	}
}

// NAMDWorkload returns the NAMD skeleton with compute scaled by scale.
func NAMDWorkload(scale float64) workloads.Workload {
	p := workloads.DefaultNAMD()
	p.SerialComputePerStep = p.SerialComputePerStep.Scale(scale)
	return workloads.NAMD(p)
}

// Cell is one (workload, nodes, config) measurement of the evaluation grid.
type Cell struct {
	Workload string
	Nodes    int
	Config   string
	// Metric is the application's self-reported result (MOPS or seconds).
	Metric float64
	// BaseMetric is the ground truth's value of the same metric.
	BaseMetric float64
	// AccErr is the relative accuracy error versus ground truth.
	AccErr float64
	// Speedup is hostTime(ground truth) / hostTime(this config).
	Speedup float64
	// GuestTime/HostTime echo the run's raw outcome.
	GuestTime simtime.Guest
	HostTime  simtime.Duration
	Stats     cluster.Stats
}

// runOne executes one configuration.
func runOne(env Env, w workloads.Workload, nodes int, spec Spec, traceQ, traceP bool) (*cluster.Result, error) {
	cfg := cluster.Config{
		Nodes:        nodes,
		Guest:        env.Guest,
		Net:          env.Net,
		Host:         env.Host,
		Policy:       spec.Policy,
		Program:      w.New,
		MaxGuest:     env.MaxGuest,
		TraceQuanta:  traceQ,
		TracePackets: traceP,
		Workers:      env.IntraWorkers,
		Faults:       env.Faults,
	}
	if env.Profiles != nil {
		label := fmt.Sprintf("%s/%d/%s", w.Name, nodes, spec.Label)
		if env.Faults != nil {
			label += "/faults:" + env.Faults.Key()
		}
		cfg.Profiler = env.Profiles.New(label)
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s ×%d %q: %w", w.Name, nodes, spec.Label, err)
	}
	return res, nil
}

// Grid runs every workload × node count × config (plus the ground truth for
// each workload × node count) and returns one Cell per non-baseline run.
// Cells come back in construction order — workload-major, then node count,
// then spec — regardless of Env.Workers.
func Grid(env Env, ws []workloads.Workload, nodeCounts []int, specs []Spec) ([]Cell, error) {
	type base struct {
		metric float64
		host   simtime.Duration
	}
	// Ground truths first (they dominate runtime; schedule them all). Each
	// job writes its own slot, so no lock and no completion-order effects.
	bases := make([]base, len(ws)*len(nodeCounts))
	baseIdx := func(wi, ni int) int { return wi*len(nodeCounts) + ni }
	var jobs []job
	for wi, w := range ws {
		for ni, n := range nodeCounts {
			wi, ni, w, n := wi, ni, w, n
			jobs = append(jobs, job{name: fmt.Sprintf("%s/%d", w.Name, n), run: func() error {
				res, err := runGroundTruth(env, w, n, false, false)
				if err != nil {
					return err
				}
				m, ok := res.Metric(w.Metric)
				if !ok {
					return fmt.Errorf("experiments: %s did not report %q", w.Name, w.Metric)
				}
				bases[baseIdx(wi, ni)] = base{metric: m, host: res.HostTime}
				return nil
			}})
		}
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}

	cells := make([]Cell, len(ws)*len(nodeCounts)*len(specs))
	jobs = jobs[:0]
	ci := 0
	for wi, w := range ws {
		for ni, n := range nodeCounts {
			for _, spec := range specs {
				slot, w, n, spec := ci, w, n, spec
				b := bases[baseIdx(wi, ni)]
				jobs = append(jobs, job{name: fmt.Sprintf("%s/%d %s", w.Name, n, spec.Label), run: func() error {
					res, err := runOne(env, w, n, spec, false, false)
					if err != nil {
						return err
					}
					m, _ := res.Metric(w.Metric)
					cells[slot] = Cell{
						Workload:   w.Name,
						Nodes:      n,
						Config:     spec.Label,
						Metric:     m,
						BaseMetric: b.metric,
						AccErr:     metrics.RelError(m, b.metric),
						Speedup:    metrics.Speedup(float64(res.HostTime), float64(b.host)),
						GuestTime:  res.GuestTime,
						HostTime:   res.HostTime,
						Stats:      res.Stats,
					}
					return nil
				}})
				ci++
			}
		}
	}
	if err := runAll(env.Workers, jobs); err != nil {
		return nil, err
	}
	return cells, nil
}

// CellKey addresses one cell of an evaluation grid.
type CellKey struct {
	Workload string
	Nodes    int
	Config   string
}

// CellIndex is a constant-time lookup over a grid's cells, for the figure
// formatters that repeatedly pick individual cells out of a large grid.
type CellIndex map[CellKey]*Cell

// IndexCells builds a CellIndex over cells. The index points into the
// slice, so it stays valid as long as the slice is not reallocated.
func IndexCells(cells []Cell) CellIndex {
	idx := make(CellIndex, len(cells))
	for i := range cells {
		c := &cells[i]
		idx[CellKey{c.Workload, c.Nodes, c.Config}] = c
	}
	return idx
}

// Find returns the cell for (workload, nodes, config), or nil.
func (idx CellIndex) Find(workload string, nodes int, config string) *Cell {
	return idx[CellKey{workload, nodes, config}]
}

// GridIndexed runs Grid and returns its cells together with a CellIndex
// over them.
func GridIndexed(env Env, ws []workloads.Workload, nodeCounts []int, specs []Spec) ([]Cell, CellIndex, error) {
	cells, err := Grid(env, ws, nodeCounts, specs)
	if err != nil {
		return nil, nil, err
	}
	return cells, IndexCells(cells), nil
}

// Find returns the cell for (workload, nodes, config), or nil. It scans
// linearly; callers doing repeated lookups should build a CellIndex once
// instead.
func Find(cells []Cell, workload string, nodes int, config string) *Cell {
	for i := range cells {
		c := &cells[i]
		if c.Workload == workload && c.Nodes == nodes && c.Config == config {
			return c
		}
	}
	return nil
}
