package experiments

import (
	"reflect"
	"testing"
)

// The experiment fan-out must be invisible in the results: the same grid
// run sequentially and with an oversubscribed worker pool has to produce
// identical aggregated rows and identical per-cell values, in the same
// order. (Each simulation is deterministic; this pins the assembly.)
func TestFig6WorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]AggRow, []Cell) {
		env := DefaultEnv()
		env.Workers = workers
		rows, cells, err := Fig6(env, 0.02, []int{2, 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, cells
	}
	rows1, cells1 := run(1)
	rows8, cells8 := run(8)
	if len(rows1) == 0 || len(cells1) == 0 {
		t.Fatal("empty Fig6 output")
	}
	if !reflect.DeepEqual(rows1, rows8) {
		t.Errorf("aggregated rows differ between workers=1 and workers=8:\n%+v\n%+v", rows1, rows8)
	}
	if !reflect.DeepEqual(cells1, cells8) {
		t.Error("cells differ between workers=1 and workers=8")
	}
}

// Same invariance for the sweep runners that assemble by index.
func TestAblationWorkerCountInvariance(t *testing.T) {
	w := NASSuite(0.02)[1] // nas.is, traffic-heavy and quick at tiny scale
	run := func(workers int) []AblationRow {
		env := DefaultEnv()
		env.Workers = workers
		rows, err := AblationIncDec(env, w, 2, []float64{1.03, 1.1}, []float64{0.02, 0.5})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	r1 := run(1)
	r4 := run(4)
	if len(r1) != 4 {
		t.Fatalf("want 4 rows, got %d", len(r1))
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Errorf("ablation rows differ between workers=1 and workers=4:\n%+v\n%+v", r1, r4)
	}
}
