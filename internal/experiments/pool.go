package experiments

import (
	"runtime"

	"clustersim/internal/workerpool"
)

// job is one independent deterministic simulation of an experiment grid.
// Each job writes its result into a caller-owned slot keyed by the job's
// index, so the assembled output order never depends on scheduling.
type job struct {
	run  func() error
	name string
}

// runAll executes jobs on a bounded worker pool (internal/workerpool, shared
// with the engine's intra-quantum fast path). workers <= 0 uses GOMAXPROCS —
// each simulation is single-threaded unless Env.IntraWorkers splits it
// further, so one worker per host core saturates the machine.
//
// Error reporting is deterministic regardless of completion order: the
// error of the lowest-indexed failing job is returned (later jobs still run
// to completion, as they would sequentially with errors collected).
func runAll(workers int, jobs []job) error {
	if len(jobs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		// The sequential path keeps -workers=1 runs free of goroutine
		// scheduling entirely (and is the reference order for determinism
		// tests).
		var first error
		for _, j := range jobs {
			if err := j.run(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(jobs))
	pool := workerpool.New(workers)
	defer pool.Close()
	pool.Run(len(jobs), func(i int) {
		errs[i] = jobs[i].run()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
