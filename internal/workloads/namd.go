package workloads

import (
	"fmt"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/msg"
	"clustersim/internal/simtime"
)

// NAMDParams configures the molecular-dynamics skeleton modelled on NAMD's
// apoa1 benchmark: a timestep loop in which every rank exchanges coordinate
// and force messages with a fixed neighbour set each step, reduces energies
// every step, and performs a PME transpose (alltoall) periodically. The
// defining property for the paper is the *density* of traffic: at scale
// there is "no visible interval where the application is not exchanging
// data over the network" (Figure 9(c)), which caps the achievable quantum.
type NAMDParams struct {
	// Steps is the number of MD timesteps.
	Steps int
	// SerialComputePerStep is the single-rank force-evaluation time per
	// step; each rank computes 1/size of it.
	SerialComputePerStep simtime.Duration
	// Neighbors is the number of ranks each rank exchanges patch data with
	// per step (capped at size-1).
	Neighbors int
	// CoordBytes is the per-neighbour coordinate/force message size.
	CoordBytes int
	// PMEEvery is the period (in steps) of the PME transpose; 0 disables.
	PMEEvery int
	// PMEBytes is the total PME grid volume; each pair exchanges
	// PMEBytes/size².
	PMEBytes int
	// Imbalance is per-step per-rank compute jitter (MD patches are never
	// balanced).
	Imbalance float64
	Seed      uint64
}

// DefaultNAMD returns the NAMD configuration used by the paper-reproduction
// experiments.
func DefaultNAMD() NAMDParams {
	return NAMDParams{
		Steps:                48,
		SerialComputePerStep: 96 * simtime.Millisecond,
		Neighbors:            8,
		CoordBytes:           24 << 10,
		PMEEvery:             4,
		PMEBytes:             4 << 20,
		Imbalance:            0.08,
		Seed:                 29,
	}
}

// NAMD builds the molecular-dynamics benchmark. The reported metric is the
// wall-clock time of the run, which is what NAMD prints and what the paper
// uses for its accuracy comparison.
func NAMD(p NAMDParams) Workload {
	return Workload{
		Name:           "namd",
		Key:            fmt.Sprintf("namd|%+v", p),
		Metric:         "walltime_s",
		HigherIsBetter: false,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				start := pr.Now()

				nb := p.Neighbors
				if nb > size-1 {
					nb = size - 1
				}
				// A fixed neighbour set around the rank ring: the spatial
				// decomposition's patch neighbours.
				neighbors := make([]int, 0, nb)
				for i := 1; i <= nb; i++ {
					var d int
					if i%2 == 1 {
						d = (i + 1) / 2
					} else {
						d = -i / 2
					}
					neighbors = append(neighbors, ((rank+d)%size+size)%size)
				}

				for s := 0; s < p.Steps; s++ {
					// Ship coordinates to the neighbour patches, then wait
					// for theirs.
					for _, n := range neighbors {
						c.Send(n, 400, p.CoordBytes)
					}
					for range neighbors {
						c.Recv(msg.Any, 400)
					}
					// Force evaluation.
					pr.Compute(j.dur(perRank(p.SerialComputePerStep, size)))
					// PME long-range electrostatics: grid transpose.
					if p.PMEEvery > 0 && s%p.PMEEvery == p.PMEEvery-1 {
						c.Alltoall(p.PMEBytes / (size * size))
					}
					// Reduce energies for the integrator.
					c.Allreduce(48)
				}
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("walltime_s", seconds(elapsed))
					pr.Report("days_per_ns", seconds(elapsed)/86400*1e6)
				}
				return nil
			}
		},
	}
}
