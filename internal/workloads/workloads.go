// Package workloads provides the benchmark programs the paper evaluates:
// communication-skeleton models of five NAS Parallel Benchmarks (EP, IS, CG,
// MG, LU) and of NAMD, plus synthetic workloads for unit testing and
// ablations.
//
// Each skeleton reproduces the benchmark's documented compute/communication
// structure (the property the adaptive synchronization algorithm reacts to)
// at a guest-time scale small enough to ground-truth-simulate in seconds.
// The Scale parameter stretches all compute phases proportionally; the
// communication volumes divide across ranks the way the real benchmark's
// data decomposition does. Rank 0 reports the application metric exactly
// like the real benchmarks print MOPS or wall-clock time, and the accuracy
// methodology of the paper compares that self-reported number across
// synchronization configurations.
package workloads

import (
	"clustersim/internal/guest"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// Factory builds the per-rank workload program of a benchmark.
type Factory func(rank, size int) guest.Program

// Workload names a runnable benchmark.
type Workload struct {
	// Name is the benchmark's short name, e.g. "nas.is".
	Name string
	// Key is a complete fingerprint of the workload's behavior: the name
	// plus every parameter that can change a run's outcome. Two Workloads
	// with the same Key produce identical deterministic simulations, which
	// is what lets the experiment layer memoize ground-truth baselines
	// across figures (experiments.BaselineCache). Empty means "no
	// fingerprint" and disables memoization for this workload.
	Key string
	// Metric is the metric key rank 0 reports ("mops" or "walltime_s").
	Metric string
	// HigherIsBetter tells the accuracy computation which direction the
	// metric improves.
	HigherIsBetter bool
	// New builds the program factory.
	New Factory
}

// jitter spreads a nominal compute duration by a small multiplicative
// lognormal factor so ranks never finish phases in perfect lockstep (real
// applications are never perfectly balanced).
type jitter struct {
	r     *rng.Stream
	sigma float64
}

func newJitter(seed uint64, rank int, sigma float64) *jitter {
	return &jitter{r: rng.New(seed).Split(uint64(rank) + 0x9e37), sigma: sigma}
}

func (j *jitter) dur(d simtime.Duration) simtime.Duration {
	if j.sigma <= 0 || d <= 0 {
		return d
	}
	return d.Scale(j.r.LogNormal(-j.sigma*j.sigma/2, j.sigma))
}

// perRank divides a serial duration across size ranks.
func perRank(serial simtime.Duration, size int) simtime.Duration {
	return simtime.Duration(int64(serial) / int64(size))
}

// seconds converts a guest duration to float seconds for metric reporting.
func seconds(d simtime.Duration) float64 { return d.Seconds() }
