package workloads_test

import (
	"fmt"
	"testing"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

func run(t *testing.T, w workloads.Workload, nodes int, q simtime.Duration) *cluster.Result {
	t.Helper()
	res, err := cluster.Run(cluster.Config{
		Nodes:    nodes,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: q} },
		Program:  w.New,
		MaxGuest: simtime.Guest(120 * simtime.Second),
	})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

// small returns the NAS suite at 5% scale plus a small NAMD, fast enough
// for unit testing.
func small() []workloads.Workload {
	ep := workloads.DefaultEP()
	ep.SerialCompute = ep.SerialCompute.Scale(0.05)
	is := workloads.DefaultIS()
	is.SerialComputePerIter = is.SerialComputePerIter.Scale(0.05)
	is.Iterations = 3
	cg := workloads.DefaultCG()
	cg.SerialComputePerInner = cg.SerialComputePerInner.Scale(0.05)
	cg.OuterIters = 2
	mg := workloads.DefaultMG()
	mg.SerialComputeFinest = mg.SerialComputeFinest.Scale(0.05)
	mg.Iterations = 1
	lu := workloads.DefaultLU()
	lu.SerialComputePerStep = lu.SerialComputePerStep.Scale(0.05)
	lu.Steps = 5
	md := workloads.DefaultNAMD()
	md.SerialComputePerStep = md.SerialComputePerStep.Scale(0.05)
	md.Steps = 10
	ft := workloads.DefaultFT()
	ft.SerialComputePerIter = ft.SerialComputePerIter.Scale(0.05)
	ft.Iterations = 2
	return []workloads.Workload{
		workloads.EP(ep), workloads.IS(is), workloads.CG(cg),
		workloads.MG(mg), workloads.LU(lu), workloads.NAMD(md),
		workloads.FT(ft),
	}
}

func TestAllWorkloadsCompleteAndReport(t *testing.T) {
	for _, w := range small() {
		for _, nodes := range []int{2, 4} {
			w, nodes := w, nodes
			t.Run(fmt.Sprintf("%s_%d", w.Name, nodes), func(t *testing.T) {
				t.Parallel()
				res := run(t, w, nodes, 20*simtime.Microsecond)
				v, ok := res.Metric(w.Metric)
				if !ok {
					t.Fatalf("rank 0 did not report %q", w.Metric)
				}
				if v <= 0 {
					t.Errorf("metric %q = %v, want positive", w.Metric, v)
				}
				if res.GuestTime <= 0 {
					t.Error("zero guest time")
				}
			})
		}
	}
}

func TestCommunicationPatternsDiffer(t *testing.T) {
	// EP must be by far the least communication-intensive of the suite
	// (packets per guest second), and NAMD/IS among the densest — the
	// property the whole paper turns on.
	density := map[string]float64{}
	for _, w := range small() {
		res := run(t, w, 4, 20*simtime.Microsecond)
		density[w.Name] = float64(res.Stats.Packets) / simtime.Duration(res.GuestTime).Seconds()
	}
	t.Logf("packet density per guest second: %v", density)
	for name, d := range density {
		if name == "nas.ep" {
			continue
		}
		if density["nas.ep"] >= d {
			t.Errorf("EP density %.0f not below %s density %.0f", density["nas.ep"], name, d)
		}
	}
}

func TestComputeScalesWithNodes(t *testing.T) {
	// EP at 4 nodes must finish in roughly half the guest time of 2 nodes.
	w := small()[0]
	t2 := run(t, w, 2, simtime.Microsecond).GuestTime
	t4 := run(t, w, 4, simtime.Microsecond).GuestTime
	ratio := float64(t2) / float64(t4)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("EP 2→4 node guest-time ratio %.2f, want ≈2", ratio)
	}
}

func TestPingPongRTT(t *testing.T) {
	res := run(t, workloads.PingPong(10, 100), 2, simtime.Microsecond)
	rtt, ok := res.Metric("rtt_us")
	if !ok || rtt <= 0 {
		t.Fatalf("bad rtt %v ok=%v", rtt, ok)
	}
}

func TestPingPongNeedsTwoNodes(t *testing.T) {
	w := workloads.PingPong(1, 100)
	_, err := cluster.Run(cluster.Config{
		Nodes:    1,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: simtime.Microsecond} },
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
	if err == nil {
		t.Error("single-node ping-pong should fail")
	}
}

func TestUniformTrafficDrains(t *testing.T) {
	res := run(t, workloads.Uniform(20, 2000, 50*simtime.Microsecond, 3), 4, 10*simtime.Microsecond)
	if res.Stats.Packets < 4*20 {
		t.Errorf("expected at least 80 frames, got %d", res.Stats.Packets)
	}
}

func TestSilentSendsNothing(t *testing.T) {
	res := run(t, workloads.Silent(200*simtime.Microsecond), 4, 10*simtime.Microsecond)
	if res.Stats.Packets != 0 {
		t.Errorf("silent workload sent %d packets", res.Stats.Packets)
	}
}

func TestPhasesAlternates(t *testing.T) {
	res := run(t, workloads.Phases(3, 100*simtime.Microsecond, 8<<10), 4, 10*simtime.Microsecond)
	if res.Stats.Packets == 0 {
		t.Error("phases workload sent nothing")
	}
	if res.GuestTime < simtime.Guest(300*simtime.Microsecond) {
		t.Errorf("guest time %v shorter than the compute phases alone", res.GuestTime)
	}
}

func TestBTRunsOnSquareGrids(t *testing.T) {
	p := workloads.DefaultBT()
	p.SerialComputePerStep = p.SerialComputePerStep.Scale(0.05)
	p.Steps = 3
	w := workloads.BT(p)
	for _, nodes := range []int{1, 4, 9} {
		res := run(t, w, nodes, 20*simtime.Microsecond)
		if v, ok := res.Metric("mops"); !ok || v <= 0 {
			t.Errorf("bt at %d nodes: mops=%v ok=%v", nodes, v, ok)
		}
	}
}

func TestBTRejectsNonSquareGrids(t *testing.T) {
	p := workloads.DefaultBT()
	p.Steps = 1
	w := workloads.BT(p)
	_, err := cluster.Run(cluster.Config{
		Nodes:    6,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: simtime.Microsecond} },
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
	if err == nil {
		t.Error("bt accepted a non-square grid")
	}
}

// runErr is run without the test fatal, for expected-failure cases.
func runErr(w workloads.Workload, nodes int) (*cluster.Result, error) {
	return cluster.Run(cluster.Config{
		Nodes:    nodes,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: simtime.Microsecond} },
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
}
