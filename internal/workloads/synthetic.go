package workloads

import (
	"fmt"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/msg"
	"clustersim/internal/rng"
	"clustersim/internal/simtime"
)

// PingPong bounces a message of the given size between ranks 0 and 1 the
// given number of rounds and reports the mean roundtrip latency in
// microseconds from rank 0 — the microbenchmark behind the paper's Figure 3
// roundtrip discussion.
func PingPong(rounds, size int) Workload {
	return Workload{
		Name:           "synthetic.pingpong",
		Key:            fmt.Sprintf("synthetic.pingpong|%d|%d", rounds, size),
		Metric:         "rtt_us",
		HigherIsBetter: false,
		New: func(rank, clusterSize int) guest.Program {
			return func(pr *guest.Proc) error {
				if clusterSize < 2 {
					return fmt.Errorf("pingpong needs at least 2 nodes, got %d", clusterSize)
				}
				c := mpi.New(pr)
				switch rank {
				case 0:
					start := pr.Now()
					for r := 0; r < rounds; r++ {
						c.Send(1, 1, size)
						c.Recv(1, 2)
					}
					total := pr.Now().Sub(start)
					pr.Report("rtt_us", total.Microseconds()/float64(rounds))
				case 1:
					for r := 0; r < rounds; r++ {
						c.Recv(0, 1)
						c.Send(0, 2, size)
					}
				}
				return nil
			}
		},
	}
}

// Silent computes for the given duration per rank and never communicates:
// the best case for quantum growth (and the pure-overhead calibration
// workload).
func Silent(compute simtime.Duration) Workload {
	return Workload{
		Name:           "synthetic.silent",
		Key:            fmt.Sprintf("synthetic.silent|%v", compute),
		Metric:         "time_s",
		HigherIsBetter: false,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				start := pr.Now()
				pr.Compute(compute)
				if rank == 0 {
					pr.Report("time_s", seconds(pr.Now().Sub(start)))
				}
				return nil
			}
		},
	}
}

// Phases alternates silent compute phases with alltoall communication
// bursts: the canonical compute/communicate cycle of distributed
// applications the adaptive algorithm is designed around ("driving over
// speed bumps").
func Phases(phases int, compute simtime.Duration, burstBytes int) Workload {
	return Workload{
		Name:           "synthetic.phases",
		Key:            fmt.Sprintf("synthetic.phases|%d|%v|%d", phases, compute, burstBytes),
		Metric:         "time_s",
		HigherIsBetter: false,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				start := pr.Now()
				for ph := 0; ph < phases; ph++ {
					pr.Compute(compute)
					c.Alltoall(burstBytes / size)
				}
				c.Barrier()
				if rank == 0 {
					pr.Report("time_s", seconds(pr.Now().Sub(start)))
				}
				return nil
			}
		},
	}
}

// ReliablePhases is Phases run over the reliable transport: the same
// compute/alltoall cycle, but every message is acknowledged and retransmitted
// on loss, so the workload completes (rather than stalls) under fault
// injection. Each rank flushes its in-flight messages, stays responsive
// through a drain window so peers' final retransmissions find an acker, and
// publishes the transport counters (msg_retransmits, msg_timeouts, ...) as
// node metrics. A delivery failure (a message abandoned after the transport's
// retry cap) fails the rank's program and thus the run.
func ReliablePhases(phases int, compute simtime.Duration, burstBytes int) Workload {
	return Workload{
		Name:           "synthetic.reliable-phases",
		Key:            fmt.Sprintf("synthetic.reliable-phases|%d|%v|%d", phases, compute, burstBytes),
		Metric:         "time_s",
		HigherIsBetter: false,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				cfg := msg.DefaultConfig()
				cfg.Reliable = true
				c := mpi.NewWithConfig(pr, cfg)
				start := pr.Now()
				for ph := 0; ph < phases; ph++ {
					pr.Compute(compute)
					c.Alltoall(burstBytes / size)
				}
				c.Barrier()
				if err := c.Flush(); err != nil {
					return err
				}
				c.Drain(30 * simtime.Millisecond)
				c.Endpoint().ReportMetrics()
				if rank == 0 {
					pr.Report("time_s", seconds(pr.Now().Sub(start)))
				}
				return nil
			}
		},
	}
}

// Uniform sends messages of the given size to random destinations at random
// exponential intervals with the given mean, for the given count per rank —
// unstructured background traffic for ablations.
func Uniform(count, size int, meanGap simtime.Duration, seed uint64) Workload {
	return Workload{
		Name:           "synthetic.uniform",
		Key:            fmt.Sprintf("synthetic.uniform|%d|%d|%v|%d", count, size, meanGap, seed),
		Metric:         "time_s",
		HigherIsBetter: false,
		New: func(rank, clusterSize int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				r := rng.New(seed).Split(uint64(rank))
				sent := 0
				recvd := 0
				// Each rank both produces its own traffic and consumes
				// whatever arrives; termination is by message count.
				for sent < count {
					gap := simtime.Duration(r.Exp(float64(meanGap)))
					deadline := pr.Now().Add(gap)
					for {
						m, ok := c.Endpoint().RecvDeadline(-1, -1, deadline)
						if !ok {
							break
						}
						_ = m
						recvd++
					}
					dst := r.Intn(clusterSize - 1)
					if dst >= rank {
						dst++
					}
					c.Send(dst, 7, size)
					sent++
				}
				// Drain: every rank sends exactly count messages, but the
				// recipients are random, so just wait out a quiet period.
				for {
					m, ok := c.Endpoint().RecvDeadline(-1, -1, pr.Now().Add(5*simtime.Millisecond))
					if !ok {
						break
					}
					_ = m
					recvd++
				}
				if rank == 0 {
					pr.Report("time_s", seconds(simtime.Duration(pr.Now())))
					pr.Report("received", float64(recvd))
				}
				return nil
			}
		},
	}
}
