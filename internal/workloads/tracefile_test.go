package workloads_test

import (
	"strings"
	"testing"

	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

const pingTrace = `{
  "name": "trace.ping",
  "ranks": 2,
  "ops": [
    [{"op":"compute","ns":50000},
     {"op":"send","dst":1,"tag":7,"bytes":4000},
     {"op":"recv","src":1,"tag":8},
     {"op":"barrier"},
     {"op":"allreduce","bytes":16}],
    [{"op":"recv","src":0,"tag":7},
     {"op":"compute","ns":20000},
     {"op":"send","dst":0,"tag":8,"bytes":4000},
     {"op":"barrier"},
     {"op":"allreduce","bytes":16}]
  ]
}`

func TestTraceFileRuns(t *testing.T) {
	tf, err := workloads.ParseTrace(strings.NewReader(pingTrace))
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, tf.Workload(), 2, simtime.Microsecond)
	v, ok := res.Metric("time_s")
	if !ok || v <= 0 {
		t.Fatalf("trace metric %v ok=%v", v, ok)
	}
	// compute 50µs + roundtrip + barrier: at least 70µs.
	if res.GuestTime < simtime.Guest(70*simtime.Microsecond) {
		t.Errorf("trace guest time %v implausibly short", res.GuestTime)
	}
	if res.Stats.Packets == 0 {
		t.Error("trace sent no packets")
	}
}

func TestTraceFileCollectivesAndWildcards(t *testing.T) {
	src := `{
	  "name": "trace.coll",
	  "ranks": 3,
	  "ops": [
	    [{"op":"alltoall","bytes":1000},{"op":"bcast","src":1,"bytes":2048},{"op":"send","dst":2,"tag":5,"bytes":10}],
	    [{"op":"alltoall","bytes":1000},{"op":"bcast","src":1,"bytes":2048}],
	    [{"op":"alltoall","bytes":1000},{"op":"bcast","src":1,"bytes":2048},{"op":"recv","src":-1,"tag":-1}]
	  ]
	}`
	tf, err := workloads.ParseTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	run(t, tf.Workload(), 3, 50*simtime.Microsecond)
}

func TestTraceFileValidation(t *testing.T) {
	bad := []string{
		`{"ranks":0,"ops":[]}`,
		`{"ranks":2,"ops":[[]]}`,
		`{"ranks":1,"ops":[[{"op":"warp"}]]}`,
		`{"ranks":1,"ops":[[{"op":"send","dst":5}]]}`,
		`{"ranks":1,"ops":[[{"op":"compute","ns":-1}]]}`,
		`{"ranks":1,"ops":[[{"op":"bcast","src":-1}]]}`,
		`{"ranks":1,"ops":[[{"op":"send","dst":0,"bytes":-2}]]}`,
		`{"ranks":1,"unknown_field":1,"ops":[[]]}`,
		`not json`,
	}
	for i, src := range bad {
		if _, err := workloads.ParseTrace(strings.NewReader(src)); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestTraceFileWrongClusterSize(t *testing.T) {
	tf, err := workloads.ParseTrace(strings.NewReader(pingTrace))
	if err != nil {
		t.Fatal(err)
	}
	w := tf.Workload()
	if _, err := runErr(w, 3); err == nil {
		t.Error("trace ran on the wrong cluster size")
	}
}
