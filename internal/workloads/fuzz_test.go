package workloads_test

import (
	"strings"
	"testing"

	"clustersim/internal/workloads"
)

// FuzzParseTrace: arbitrary input must never panic the parser, and anything
// accepted must pass its own Validate.
func FuzzParseTrace(f *testing.F) {
	f.Add(pingTrace)
	f.Add(`{"ranks":1,"ops":[[]]}`)
	f.Add(`{"ranks":2,"ops":[[{"op":"send","dst":1}],[{"op":"recv","src":-1,"tag":-1}]]}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, src string) {
		tf, err := workloads.ParseTrace(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := tf.Validate(); err != nil {
			t.Fatalf("ParseTrace accepted a trace its own Validate rejects: %v", err)
		}
	})
}
