package workloads

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/simtime"
)

// TraceOp is one operation of a recorded communication trace. Op selects
// the action; the other fields apply per the table:
//
//	op          fields
//	compute     ns
//	send        dst, bytes, tag
//	recv        src (-1 = any source), tag (-1 = any tag)
//	sendrecv    dst (peer), bytes, tag
//	barrier     —
//	allreduce   bytes
//	alltoall    bytes (per pair)
//	bcast       src (root), bytes
//	sleep       ns
type TraceOp struct {
	Op    string `json:"op"`
	NS    int64  `json:"ns,omitempty"`
	Src   int    `json:"src,omitempty"`
	Dst   int    `json:"dst,omitempty"`
	Tag   int    `json:"tag,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
}

// TraceFile is a JSON-serializable communication trace: one op list per
// rank. It lets recorded applications (e.g. from MPI profiling tools) run
// through the simulator without writing Go code.
type TraceFile struct {
	// Name labels the workload in results.
	Name string `json:"name"`
	// Ranks must match the cluster size at run time.
	Ranks int `json:"ranks"`
	// Ops holds each rank's operation sequence.
	Ops [][]TraceOp `json:"ops"`
}

// ParseTrace reads a JSON trace.
func ParseTrace(r io.Reader) (*TraceFile, error) {
	var t TraceFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workloads: parsing trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate reports structural errors in the trace.
func (t *TraceFile) Validate() error {
	if t.Ranks < 1 {
		return fmt.Errorf("workloads: trace needs at least 1 rank, got %d", t.Ranks)
	}
	if len(t.Ops) != t.Ranks {
		return fmt.Errorf("workloads: trace has op lists for %d ranks, declared %d", len(t.Ops), t.Ranks)
	}
	for rank, ops := range t.Ops {
		for i, op := range ops {
			if err := op.validate(t.Ranks); err != nil {
				return fmt.Errorf("workloads: trace rank %d op %d: %w", rank, i, err)
			}
		}
	}
	return nil
}

func (op *TraceOp) validate(ranks int) error {
	checkPeer := func(p int, allowAny bool) error {
		if allowAny && p == -1 {
			return nil
		}
		if p < 0 || p >= ranks {
			return fmt.Errorf("peer %d out of range [0,%d)", p, ranks)
		}
		return nil
	}
	switch op.Op {
	case "compute", "sleep":
		if op.NS < 0 {
			return fmt.Errorf("negative duration %d", op.NS)
		}
	case "send", "sendrecv":
		if op.Bytes < 0 {
			return fmt.Errorf("negative size %d", op.Bytes)
		}
		return checkPeer(op.Dst, false)
	case "recv":
		return checkPeer(op.Src, true)
	case "barrier", "allreduce", "alltoall":
		if op.Bytes < 0 {
			return fmt.Errorf("negative size %d", op.Bytes)
		}
	case "bcast":
		if op.Bytes < 0 {
			return fmt.Errorf("negative size %d", op.Bytes)
		}
		return checkPeer(op.Src, false)
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
	return nil
}

// Workload builds the runnable workload. Rank 0 reports "time_s", the guest
// duration of its op list.
func (t *TraceFile) Workload() Workload {
	name := t.Name
	if name == "" {
		name = "trace"
	}
	// Fingerprint the full op stream (hashed — op lists can be large) so
	// identical traces share memoized baselines.
	fp := fnv.New64a()
	fmt.Fprintf(fp, "%+v", *t)
	return Workload{
		Name:   name,
		Key:    fmt.Sprintf("trace|%s|%d|%016x", name, t.Ranks, fp.Sum64()),
		Metric: "time_s",
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				if size != t.Ranks {
					return fmt.Errorf("trace %q has %d ranks but the cluster has %d nodes", name, t.Ranks, size)
				}
				c := mpi.New(pr)
				start := pr.Now()
				for _, op := range t.Ops[rank] {
					switch op.Op {
					case "compute":
						pr.Compute(simtime.Duration(op.NS))
					case "sleep":
						pr.Sleep(simtime.Duration(op.NS))
					case "send":
						c.Send(op.Dst, op.Tag, op.Bytes)
					case "recv":
						c.Recv(op.Src, op.Tag)
					case "sendrecv":
						c.Sendrecv(op.Dst, op.Tag, op.Bytes)
					case "barrier":
						c.Barrier()
					case "allreduce":
						c.Allreduce(op.Bytes)
					case "alltoall":
						c.Alltoall(op.Bytes)
					case "bcast":
						c.Bcast(op.Src, op.Bytes)
					}
				}
				if rank == 0 {
					pr.Report("time_s", seconds(pr.Now().Sub(start)))
				}
				return nil
			}
		},
	}
}
