package workloads

import (
	"fmt"
	"math"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/simtime"
)

// BTParams configures the BT kernel (block-tridiagonal solver), an addition
// beyond the paper's five selected kernels — the paper notes it selected
// only the benchmarks that "could run for 2, 4 and 8-node clusters", and BT
// requires a square process grid. It exercises the sub-communicator API:
// each timestep runs line solves pipelined along the rows and then the
// columns of a √N×√N grid.
type BTParams struct {
	// Steps is the number of ADI timesteps.
	Steps int
	// SerialComputePerStep is the single-rank compute per step across the
	// three directional sweeps.
	SerialComputePerStep simtime.Duration
	// FaceBytes is the per-hop boundary message of a sweep.
	FaceBytes int
	// MOps is the nominal operation count in millions.
	MOps      float64
	Imbalance float64
	Seed      uint64
}

// DefaultBT returns the BT configuration used by the extension experiments.
func DefaultBT() BTParams {
	return BTParams{
		Steps:                10,
		SerialComputePerStep: 60 * simtime.Millisecond,
		FaceBytes:            20 << 10,
		MOps:                 168000,
		Imbalance:            0.04,
		Seed:                 37,
	}
}

// BT builds the block-tridiagonal benchmark. The cluster size must be a
// perfect square (1, 4, 9, 16, …); the run fails otherwise, mirroring the
// real benchmark's constraint.
func BT(p BTParams) Workload {
	return Workload{
		Name:           "nas.bt",
		Key:            fmt.Sprintf("nas.bt|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				side := int(math.Round(math.Sqrt(float64(size))))
				if side*side != size {
					return fmt.Errorf("nas.bt needs a square process grid, got %d ranks", size)
				}
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				row, col := rank/side, rank%side

				rowRanks := make([]int, side)
				colRanks := make([]int, side)
				for i := 0; i < side; i++ {
					rowRanks[i] = row*side + i
					colRanks[i] = i*side + col
				}
				rowG := c.Sub(rowRanks)
				colG := c.Sub(colRanks)

				// sweep runs a forward+backward line solve pipelined along
				// a group, charging compute per cell.
				sweep := func(g *mpi.Group, tag int, cell simtime.Duration) {
					me, n := g.Rank(), g.Size()
					// Forward substitution.
					if me > 0 {
						g.Sendrecv(me-1, tag, 0) // handshake stands in for Recv-only
					}
					pr.Compute(j.dur(cell))
					if me < n-1 {
						g.Sendrecv(me+1, tag, p.FaceBytes)
					}
					// Backward substitution.
					if me < n-1 {
						g.Sendrecv(me+1, tag+1, 0)
					}
					pr.Compute(j.dur(cell))
					if me > 0 {
						g.Sendrecv(me-1, tag+1, p.FaceBytes)
					}
				}

				c.Barrier()
				start := pr.Now()
				cell := perRank(p.SerialComputePerStep, size) / 6
				for s := 0; s < p.Steps; s++ {
					sweep(rowG, 500, cell) // x direction
					sweep(colG, 502, cell) // y direction
					// z direction is within-rank.
					pr.Compute(j.dur(cell * 2))
					if s%5 == 4 {
						c.Allreduce(40)
					}
				}
				c.Barrier()
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}
