package workloads

import (
	"fmt"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/simtime"
)

// FTParams configures the FT kernel (3-D FFT), an addition beyond the
// paper's five selected kernels: like IS it is built around MPI_alltoall,
// but with bulk transposes of the whole grid rather than fine-grained key
// exchanges — large rendezvous transfers separated by substantial local FFT
// compute. It stresses the synchronization layer's bandwidth path where IS
// stresses its latency path.
type FTParams struct {
	// Iterations is the number of FFT evolve/checksum iterations.
	Iterations int
	// SerialComputePerIter is the single-rank FFT time per iteration.
	SerialComputePerIter simtime.Duration
	// GridBytes is the total grid volume transposed per iteration; each
	// rank pair exchanges GridBytes/size².
	GridBytes int
	// MOps is the nominal operation count in millions.
	MOps      float64
	Imbalance float64
	Seed      uint64
}

// DefaultFT returns the FT configuration used by the extension experiments.
func DefaultFT() FTParams {
	return FTParams{
		Iterations:           6,
		SerialComputePerIter: 200 * simtime.Millisecond,
		GridBytes:            128 << 20,
		MOps:                 7100,
		Imbalance:            0.03,
		Seed:                 31,
	}
}

// FT builds the 3-D FFT benchmark.
func FT(p FTParams) Workload {
	return Workload{
		Name:           "nas.ft",
		Key:            fmt.Sprintf("nas.ft|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				c.Barrier()
				start := pr.Now()
				pair := p.GridBytes / (size * size)
				for it := 0; it < p.Iterations; it++ {
					// Local 1-D FFTs along the in-memory dimensions.
					pr.Compute(j.dur(perRank(p.SerialComputePerIter, size) / 2))
					// Global transpose: the defining alltoall.
					c.Alltoall(pair)
					// FFT along the redistributed dimension + evolve.
					pr.Compute(j.dur(perRank(p.SerialComputePerIter, size) / 2))
					// Checksum reduction.
					c.Allreduce(16)
				}
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}
