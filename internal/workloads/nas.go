package workloads

import (
	"fmt"
	"math/bits"

	"clustersim/internal/guest"
	"clustersim/internal/mpi"
	"clustersim/internal/simtime"
)

// EPParams configures the Embarrassingly Parallel kernel: long independent
// compute with a few small reductions at the very end ("requires little
// interprocessor communication").
type EPParams struct {
	// SerialCompute is the total single-rank compute time; each rank
	// executes SerialCompute/size.
	SerialCompute simtime.Duration
	// Blocks is how many chunks each rank's compute is split into.
	Blocks int
	// MOps is the nominal operation count, in millions, for the MOPS
	// metric.
	MOps float64
	// Imbalance is the per-block lognormal sigma of compute jitter.
	Imbalance float64
	// Seed drives the compute jitter.
	Seed uint64
}

// DefaultEP returns the EP configuration used by the paper-reproduction
// experiments.
func DefaultEP() EPParams {
	return EPParams{
		SerialCompute: 2 * simtime.Second,
		Blocks:        128,
		MOps:          2416, // 2^28 pairs × ~9 ops, in millions
		Imbalance:     0.03,
		Seed:          11,
	}
}

// EP builds the Embarrassingly Parallel benchmark.
func EP(p EPParams) Workload {
	return Workload{
		Name:           "nas.ep",
		Key:            fmt.Sprintf("nas.ep|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				// Startup handshake (MPI_Init + timer synchronization).
				c.Barrier()
				start := pr.Now()
				per := perRank(p.SerialCompute, size) / simtime.Duration(p.Blocks)
				for b := 0; b < p.Blocks; b++ {
					pr.Compute(j.dur(per))
				}
				// Three small reductions: sums sx/sy and the ten Gaussian
				// deviate counts.
				c.Allreduce(16)
				c.Allreduce(16)
				c.Allreduce(80)
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}

// ISParams configures the Integer Sort kernel: a bucketed counting sort
// whose every iteration performs an all-to-all key exchange — the paper's
// accuracy worst case ("fine-grain synchronization nature ... MPI_alltoall
// causes long chains of packet dependences").
type ISParams struct {
	// Iterations is the number of ranking iterations.
	Iterations int
	// SerialComputePerIter is the single-rank local ranking time per
	// iteration; each rank does 1/size of it.
	SerialComputePerIter simtime.Duration
	// TotalKeyBytes is the total key volume redistributed per iteration;
	// each rank pair exchanges TotalKeyBytes/size².
	TotalKeyBytes int
	// MOps is the nominal operation count in millions.
	MOps      float64
	Imbalance float64
	Seed      uint64
}

// DefaultIS returns the IS configuration used by the paper-reproduction
// experiments.
func DefaultIS() ISParams {
	return ISParams{
		Iterations:           10,
		SerialComputePerIter: 120 * simtime.Millisecond,
		TotalKeyBytes:        32 << 20, // 2^23 4-byte keys, counted and sized
		MOps:                 84,
		Imbalance:            0.04,
		Seed:                 13,
	}
}

// IS builds the Integer Sort benchmark.
func IS(p ISParams) Workload {
	return Workload{
		Name:           "nas.is",
		Key:            fmt.Sprintf("nas.is|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				start := pr.Now()
				pair := p.TotalKeyBytes / (size * size)
				for it := 0; it < p.Iterations; it++ {
					// Local bucket counting.
					pr.Compute(j.dur(perRank(p.SerialComputePerIter, size)))
					// Bucket-size exchange then the key redistribution.
					c.Allreduce(8 * size)
					c.Alltoall(pair)
					// Partial verification.
					c.Allreduce(40)
				}
				c.Barrier()
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}

// CGParams configures the Conjugate Gradient kernel: repeated sparse
// matrix-vector products with "irregular long distance communication" —
// partner exchanges across log2(size) hypercube dimensions plus two dot
// product reductions per inner iteration.
type CGParams struct {
	// OuterIters and InnerIters shape the solver loop (NAS CG runs 15 outer
	// iterations of a 25-step CG solve).
	OuterIters, InnerIters int
	// SerialComputePerInner is the single-rank matvec time per inner step.
	SerialComputePerInner simtime.Duration
	// VectorBytes is the full exchanged vector; each partner exchange
	// carries VectorBytes/size.
	VectorBytes int
	MOps        float64
	Imbalance   float64
	Seed        uint64
}

// DefaultCG returns the CG configuration used by the paper-reproduction
// experiments.
func DefaultCG() CGParams {
	return CGParams{
		OuterIters:            4,
		InnerIters:            10,
		SerialComputePerInner: 96 * simtime.Millisecond,
		VectorBytes:           1200 << 10,
		MOps:                  1500,
		Imbalance:             0.04,
		Seed:                  17,
	}
}

// CG builds the Conjugate Gradient benchmark.
func CG(p CGParams) Workload {
	return Workload{
		Name:           "nas.cg",
		Key:            fmt.Sprintf("nas.cg|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				start := pr.Now()
				dims := bits.Len(uint(size)) - 1
				exch := p.VectorBytes / size
				for o := 0; o < p.OuterIters; o++ {
					for i := 0; i < p.InnerIters; i++ {
						pr.Compute(j.dur(perRank(p.SerialComputePerInner, size)))
						// Hypercube transpose exchanges (irregular, long
						// distance in rank space).
						for d := 0; d < dims; d++ {
							partner := rank ^ (1 << d)
							if partner < size {
								c.Sendrecv(partner, 100+d, exch)
							}
						}
						// Two dot products.
						c.Allreduce(8)
						c.Allreduce(8)
					}
				}
				c.Barrier()
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}

// MGParams configures the Multi-Grid kernel: V-cycles over a level
// hierarchy, each level exchanging halo faces with neighbours ("both short
// and long distance highly structured communication").
type MGParams struct {
	// Iterations is the number of V-cycles.
	Iterations int
	// Levels is the depth of the grid hierarchy.
	Levels int
	// SerialComputeFinest is the single-rank compute on the finest level;
	// each coarser level costs 1/8 of the previous (3-D halving).
	SerialComputeFinest simtime.Duration
	// HaloBytesFinest is the per-neighbour halo size on the finest level,
	// halving per level. It divides by size^(2/3)-ish via the face rule
	// below.
	HaloBytesFinest int
	MOps            float64
	Imbalance       float64
	Seed            uint64
}

// DefaultMG returns the MG configuration used by the paper-reproduction
// experiments.
func DefaultMG() MGParams {
	return MGParams{
		Iterations:          4,
		Levels:              6,
		SerialComputeFinest: 120 * simtime.Millisecond,
		HaloBytesFinest:     1 << 20,
		MOps:                3900,
		Imbalance:           0.04,
		Seed:                19,
	}
}

// MG builds the Multi-Grid benchmark.
func MG(p MGParams) Workload {
	return Workload{
		Name:           "nas.mg",
		Key:            fmt.Sprintf("nas.mg|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				start := pr.Now()
				dims := bits.Len(uint(size)) - 1

				level := func(l int) {
					comp := perRank(p.SerialComputeFinest, size) >> uint(3*l)
					if comp < simtime.Microsecond {
						comp = simtime.Microsecond
					}
					pr.Compute(j.dur(comp))
					halo := p.HaloBytesFinest >> uint(l)
					halo /= size
					if halo < 64 {
						halo = 64
					}
					// Exchange faces with the hypercube neighbours: the
					// 3-D decomposition's short- and long-distance pattern.
					for d := 0; d < dims; d++ {
						partner := rank ^ (1 << d)
						if partner < size {
							c.Sendrecv(partner, 200+d, halo)
						}
					}
				}

				for it := 0; it < p.Iterations; it++ {
					// Down-sweep to the coarsest level and back up.
					for l := 0; l < p.Levels; l++ {
						level(l)
					}
					for l := p.Levels - 2; l >= 0; l-- {
						level(l)
					}
					// Residual norm.
					c.Allreduce(8)
				}
				c.Barrier()
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}

// LUParams configures the LU kernel: an SSOR solver whose wavefront pipeline
// sends many small messages between neighbouring ranks ("a limited amount of
// parallelism ... a good indicator of network latency").
type LUParams struct {
	// Steps is the number of SSOR time steps.
	Steps int
	// BlocksPerStep is the pipeline depth per step (k-planes per sweep).
	BlocksPerStep int
	// SerialComputePerStep is the single-rank compute per step; it divides
	// across ranks and across blocks.
	SerialComputePerStep simtime.Duration
	// FaceBytes is the per-block boundary message; LU's messages are small.
	FaceBytes int
	MOps      float64
	Imbalance float64
	Seed      uint64
}

// DefaultLU returns the LU configuration used by the paper-reproduction
// experiments.
func DefaultLU() LUParams {
	return LUParams{
		Steps:                12,
		BlocksPerStep:        6,
		SerialComputePerStep: 24 * simtime.Millisecond,
		FaceBytes:            3 << 10,
		MOps:                 64000,
		Imbalance:            0.03,
		Seed:                 23,
	}
}

// LU builds the LU benchmark: each step runs a forward wavefront down the
// rank pipeline and a backward wavefront up it, block by block.
func LU(p LUParams) Workload {
	return Workload{
		Name:           "nas.lu",
		Key:            fmt.Sprintf("nas.lu|%+v", p),
		Metric:         "mops",
		HigherIsBetter: true,
		New: func(rank, size int) guest.Program {
			return func(pr *guest.Proc) error {
				c := mpi.New(pr)
				j := newJitter(p.Seed, rank, p.Imbalance)
				start := pr.Now()
				block := perRank(p.SerialComputePerStep, size) / simtime.Duration(p.BlocksPerStep)

				for s := 0; s < p.Steps; s++ {
					// Forward sweep: the wavefront flows rank 0 → size-1.
					for b := 0; b < p.BlocksPerStep; b++ {
						if rank > 0 {
							c.Recv(rank-1, 300)
						}
						pr.Compute(j.dur(block))
						if rank < size-1 {
							c.Send(rank+1, 300, p.FaceBytes)
						}
					}
					// Backward sweep: size-1 → 0.
					for b := 0; b < p.BlocksPerStep; b++ {
						if rank < size-1 {
							c.Recv(rank+1, 301)
						}
						pr.Compute(j.dur(block))
						if rank > 0 {
							c.Send(rank-1, 301, p.FaceBytes)
						}
					}
					// Residual every few steps.
					if s%5 == 4 {
						c.Allreduce(40)
					}
				}
				c.Barrier()
				elapsed := pr.Now().Sub(start)
				if rank == 0 {
					pr.Report("mops", p.MOps/seconds(elapsed))
					pr.Report("time_s", seconds(elapsed))
				}
				return nil
			}
		},
	}
}
