package netmodel

import (
	"testing"

	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

func TestPaperModelLatency(t *testing.T) {
	m := Paper()
	// A jumbo frame at 10 GB/s: 9042 wire bytes ≈ 0.904µs serialization
	// plus the 1µs base latency.
	f := &pkt.Frame{Size: 9000}
	lat := m.FrameLatency(f, 0, 1)
	if lat < 1800*simtime.Nanosecond || lat > 2000*simtime.Nanosecond {
		t.Errorf("jumbo frame latency %v outside [1.8µs, 2µs]", lat)
	}
	// A tiny frame is dominated by the base latency.
	tiny := m.FrameLatency(&pkt.Frame{Size: 1}, 0, 1)
	if tiny < 1000*simtime.Nanosecond || tiny > 1100*simtime.Nanosecond {
		t.Errorf("tiny frame latency %v outside [1µs, 1.1µs]", tiny)
	}
}

func TestMinLatencyIsSafetyBound(t *testing.T) {
	m := Paper()
	got := m.MinLatency(8)
	if got < 1000*simtime.Nanosecond {
		t.Errorf("minimum latency %v below the NIC base latency", got)
	}
	f := &pkt.Frame{Size: 1}
	if lat := m.FrameLatency(f, 3, 5); lat < got {
		t.Errorf("frame latency %v below MinLatency %v", lat, got)
	}
	if m.MinLatency(1) != 0 {
		t.Error("single-node cluster should have zero MinLatency")
	}
}

func TestStoreAndForwardSwitch(t *testing.T) {
	m := &Model{
		NIC:    &SimpleNIC{BaseLatency: simtime.Microsecond, BytesPerSecond: 10e9},
		Switch: &StoreAndForwardSwitch{PortLatency: 2 * simtime.Microsecond, BytesPerSecond: 1e9},
	}
	f := &pkt.Frame{Size: 1000}
	perfect := Paper().FrameLatency(f, 0, 1)
	got := m.FrameLatency(f, 0, 1)
	if got <= perfect {
		t.Errorf("store-and-forward %v not above perfect switch %v", got, perfect)
	}
}

func TestMatrixSwitch(t *testing.T) {
	lat := [][]simtime.Duration{
		{0, 5 * simtime.Microsecond},
		{7 * simtime.Microsecond, 0},
	}
	m := &Model{NIC: &SimpleNIC{}, Switch: &MatrixSwitch{Lat: lat}}
	f := &pkt.Frame{Size: 100}
	if m.FrameLatency(f, 0, 1) != 5*simtime.Microsecond {
		t.Error("matrix 0→1 latency wrong")
	}
	if m.FrameLatency(f, 1, 0) != 7*simtime.Microsecond {
		t.Error("matrix 1→0 latency wrong")
	}
	if err := m.Validate(2); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	if err := m.Validate(3); err == nil {
		t.Error("undersized matrix accepted")
	}
}

func TestFatTreeSwitch(t *testing.T) {
	m := &Model{NIC: &SimpleNIC{}, Switch: &FatTreeSwitch{
		Radix:       4,
		EdgeLatency: 1 * simtime.Microsecond,
		CoreLatency: 3 * simtime.Microsecond,
	}}
	f := &pkt.Frame{Size: 100}
	sameEdge := m.FrameLatency(f, 0, 3)
	crossEdge := m.FrameLatency(f, 0, 4)
	if sameEdge >= crossEdge {
		t.Errorf("same-edge latency %v not below cross-edge %v", sameEdge, crossEdge)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Model{}).Validate(2); err == nil {
		t.Error("nil NIC accepted")
	}
	if err := (&Model{NIC: &SimpleNIC{}}).Validate(2); err == nil {
		t.Error("nil switch accepted")
	}
	if err := Paper().Validate(64); err != nil {
		t.Errorf("paper model rejected: %v", err)
	}
}

func TestInfiniteBandwidthSerialization(t *testing.T) {
	n := &SimpleNIC{BaseLatency: simtime.Microsecond}
	if n.Serialization(&pkt.Frame{Size: 1 << 20}) != 0 {
		t.Error("zero-bandwidth NIC should serialize instantly")
	}
}

func TestOutputQueueModel(t *testing.T) {
	o := &OutputQueue{BytesPerSecond: 10e9, Latency: 100 * simtime.Nanosecond}
	f := &pkt.Frame{Size: 9000}
	ser := o.Serialization(f)
	if ser < 900*simtime.Nanosecond || ser > 910*simtime.Nanosecond {
		t.Errorf("port serialization %v", ser)
	}
	if (&OutputQueue{}).Serialization(f) != 0 {
		t.Error("infinite-bandwidth port should serialize instantly")
	}
	m := Paper()
	base := m.PostTxLatency(f, 0, 1)
	m.Output = o
	withPort := m.PostTxLatency(f, 0, 1)
	if withPort != base+ser+o.Latency {
		t.Errorf("uncontended port latency %v, want %v", withPort, base+ser+o.Latency)
	}
	if m.PreQueueLatency(f, 0, 1)+o.Serialization(f)+m.PostQueueLatency(f) != withPort {
		t.Error("pre/post queue decomposition inconsistent with PostTxLatency")
	}
}

func TestMinLatencyFewNodes(t *testing.T) {
	// Regression: nodes < 2 must short-circuit before the probe loop — a
	// reordered early-return used to risk leaking the loop's sentinel.
	for _, m := range []*Model{Paper(), {
		NIC:    &SimpleNIC{BaseLatency: simtime.Microsecond, BytesPerSecond: 1e9},
		Switch: &StoreAndForwardSwitch{BytesPerSecond: 1e9},
	}} {
		for _, nodes := range []int{0, 1} {
			if got := m.MinLatency(nodes); got != 0 {
				t.Errorf("MinLatency(%d) = %v, want 0", nodes, got)
			}
		}
	}
}

func TestMinProbeDoesNotAllocate(t *testing.T) {
	// MinProbe hands out a shared read-only frame, so probing — MinLatency,
	// LookaheadMatrix's per-pair loop, the profiler's LinkLat closure —
	// costs zero heap frames. The engine's initFast probe used to be +1
	// allocation per run; this pins the fix.
	m := Paper()
	if n := testing.AllocsPerRun(100, func() {
		_ = m.FrameLatency(MinProbe(), 0, 1)
	}); n != 0 {
		t.Errorf("MinProbe+FrameLatency allocates %v times per probe, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = m.MinLatency(8)
	}); n != 0 {
		t.Errorf("MinLatency allocates %v times per call, want 0", n)
	}
}

func TestLookaheadMatrix(t *testing.T) {
	ft := &Model{NIC: &SimpleNIC{BaseLatency: simtime.Microsecond, BytesPerSecond: 10e9}, Switch: &FatTreeSwitch{
		Radix:       4,
		EdgeLatency: 500 * simtime.Nanosecond,
		CoreLatency: 2 * simtime.Microsecond,
	}}
	const nodes = 8
	lat := ft.LookaheadMatrix(nodes)
	if len(lat) != nodes*nodes {
		t.Fatalf("matrix length %d, want %d", len(lat), nodes*nodes)
	}
	probe := MinProbe()
	min := simtime.Duration(-1)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			got := lat[s*nodes+d]
			if s == d {
				if got != 0 {
					t.Errorf("diagonal [%d][%d] = %v, want 0", s, d, got)
				}
				continue
			}
			if want := ft.FrameLatency(probe, s, d); got != want {
				t.Errorf("[%d][%d] = %v, want probe latency %v", s, d, got, want)
			}
			if min < 0 || got < min {
				min = got
			}
		}
	}
	if want := ft.MinLatency(nodes); min != want {
		t.Errorf("matrix minimum %v, want MinLatency %v", min, want)
	}
	// The fat-tree has exactly two latency classes: intra-rack and
	// inter-rack.
	intra, inter := lat[0*nodes+1], lat[0*nodes+4]
	if intra >= inter {
		t.Errorf("intra-rack %v not below inter-rack %v", intra, inter)
	}
	if LookaheadMatrixOK := (&Model{NIC: &SimpleNIC{}, Switch: PerfectSwitch{}}).LookaheadMatrix(0); LookaheadMatrixOK != nil {
		t.Errorf("LookaheadMatrix(0) = %v, want nil", LookaheadMatrixOK)
	}
}

func TestMinLatencyUsesMinProbe(t *testing.T) {
	// Under a serialization model the bound must come from the cheapest
	// possible frame (Size 0), so it lower-bounds even a 1-byte frame.
	m := &Model{
		NIC:    &SimpleNIC{BaseLatency: simtime.Microsecond, BytesPerSecond: 1e9},
		Switch: &StoreAndForwardSwitch{BytesPerSecond: 1e9},
	}
	want := m.FrameLatency(MinProbe(), 0, 1)
	if got := m.MinLatency(4); got != want {
		t.Errorf("MinLatency = %v, want the size-0 probe latency %v", got, want)
	}
	if oneByte := m.FrameLatency(&pkt.Frame{Size: 1}, 0, 1); oneByte <= m.MinLatency(4) {
		t.Errorf("1-byte frame latency %v not above the size-0 bound %v", oneByte, m.MinLatency(4))
	}
}
