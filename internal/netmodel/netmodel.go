// Package netmodel contains the timing models for the simulated network:
// the per-node NIC and the switch interconnecting the nodes.
//
// The paper splits network timing into exactly these two parts: "the timing
// of the NICs in each node, and the timing of the network switch connecting
// the nodes". The evaluation uses a deliberately aggressive configuration —
// a 10 GB/s NIC with 1 µs minimum latency, jumbo 9000-byte frames and a
// perfect (zero latency, infinite bandwidth) switch — chosen to maximize
// straggler pressure. That configuration is this package's default.
package netmodel

import (
	"fmt"

	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// NICModel computes the latency contributed by the sending and receiving
// network interfaces for one frame.
//
// Serialization is separated from the fixed latencies because back-to-back
// frames from one node queue behind each other on the wire: the engine keeps
// a per-node transmit-complete time and charges each frame's serialization
// starting from it.
type NICModel interface {
	// Serialization is the wire occupancy of the frame at the link
	// bandwidth (zero for an infinitely fast link).
	Serialization(f *pkt.Frame) simtime.Duration
	// SendLatency is the fixed latency from the moment the last bit leaves
	// the node until the frame enters the switch (propagation + NIC
	// processing; the paper's "minimum latency of 1µs").
	SendLatency(f *pkt.Frame) simtime.Duration
	// RecvLatency is the fixed latency from the moment the frame leaves the
	// switch until the destination guest observes it.
	RecvLatency(f *pkt.Frame) simtime.Duration
}

// SwitchModel computes the latency contributed by the interconnect between
// the source and destination nodes.
type SwitchModel interface {
	// Latency is the interconnect traversal time for a frame from node src
	// to node dst. src and dst are node IDs.
	Latency(f *pkt.Frame, src, dst int) simtime.Duration
}

// OutputQueue models per-destination-port contention at the switch: each
// output port serializes the frames addressed to it at its own bandwidth,
// so simultaneous senders to one destination (incast) queue behind each
// other. Nil means the paper's contention-free perfect switch.
type OutputQueue struct {
	// BytesPerSecond is the output-port drain rate; zero means infinite.
	BytesPerSecond float64
	// Latency is a fixed per-frame port traversal cost.
	Latency simtime.Duration
}

// Serialization returns the port occupancy of one frame.
func (o *OutputQueue) Serialization(f *pkt.Frame) simtime.Duration {
	if o.BytesPerSecond <= 0 {
		return 0
	}
	return simtime.Duration(float64(f.WireBytes()) / o.BytesPerSecond * 1e9)
}

// Model bundles NIC and switch timing and answers the one question the
// synchronization layer needs: the end-to-end latency of a frame, and the
// minimum possible latency T of the network (the safety bound Q <= T).
type Model struct {
	NIC    NICModel
	Switch SwitchModel
	// Output, when non-nil, adds stateful per-destination port contention;
	// the engine keeps the port clocks.
	Output *OutputQueue
}

// FrameLatency returns the total guest-time latency of frame f from the send
// call on node src to delivery visibility on node dst, assuming an idle
// transmit queue (the engine adds queueing on top).
func (m *Model) FrameLatency(f *pkt.Frame, src, dst int) simtime.Duration {
	return m.NIC.Serialization(f) + m.PostTxLatency(f, src, dst)
}

// PostTxLatency returns the latency a frame experiences after its last bit
// has left the sending node: NIC fixed latency, switch traversal, the
// uncontended output-port cost (if modelled) and receive processing.
func (m *Model) PostTxLatency(f *pkt.Frame, src, dst int) simtime.Duration {
	l := m.PreQueueLatency(f, src, dst) + m.NIC.RecvLatency(f)
	if m.Output != nil {
		l += m.Output.Serialization(f) + m.Output.Latency
	}
	return l
}

// PreQueueLatency is the latency from the sender's last bit to the frame's
// arrival at the destination output port: NIC fixed latency plus switch
// traversal. Engines with an OutputQueue use it to compute when a frame
// starts competing for the port.
func (m *Model) PreQueueLatency(f *pkt.Frame, src, dst int) simtime.Duration {
	return m.NIC.SendLatency(f) + m.Switch.Latency(f, src, dst)
}

// PostQueueLatency is the latency from the moment a frame finishes draining
// through the output port to guest visibility at the destination.
func (m *Model) PostQueueLatency(f *pkt.Frame) simtime.Duration {
	l := m.NIC.RecvLatency(f)
	if m.Output != nil {
		l += m.Output.Latency
	}
	return l
}

// minProbe is the shared size-0 probe frame. Latency models only ever read
// a frame, so one immutable instance serves every probe without allocating
// (the per-run probe in the engine's initFast used to cost one heap frame).
var minProbe pkt.Frame

// MinProbe returns the cheapest possible frame: Size 0. Serialization
// models are monotonic in wire size, so a size-0 probe lower-bounds every
// real frame. Both MinLatency and the engine's fast-path safety bound probe
// with it, so the two T estimates cannot diverge.
//
// The returned frame is shared; callers must treat it as read-only.
func MinProbe() *pkt.Frame { return &minProbe }

// MinLatency returns a lower bound on the latency of any frame between any
// pair of distinct nodes among the given count. This is the paper's T: a
// quantum Q <= T guarantees that no straggler can occur. With fewer than
// two nodes no frame can cross the network and the bound is 0.
//
// The bound includes the uncontended Output port cost when an OutputQueue
// is modelled; under contention real frames can only be slower, so the
// value stays a true lower bound.
func (m *Model) MinLatency(nodes int) simtime.Duration {
	if nodes < 2 {
		return 0
	}
	probe := MinProbe()
	min := simtime.Duration(-1)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			l := m.FrameLatency(probe, s, d)
			if min < 0 || l < min {
				min = l
			}
		}
	}
	return min
}

// LookaheadMatrix returns the per-pair lower-bound latency matrix for the
// given node count, probed with MinProbe: entry [src*nodes+dst] (row-major)
// is a latency no frame from src to dst can beat. Diagonal entries are zero.
// The matrix generalizes MinLatency: its smallest off-diagonal entry equals
// MinLatency(nodes), but per-pair values let the engine treat a quantum as
// safe for a node pair whose mutual latency is at least Q even when some
// other pair's is not (the per-link lookahead of DESIGN.md §11).
func (m *Model) LookaheadMatrix(nodes int) []simtime.Duration {
	if nodes < 1 {
		return nil
	}
	probe := MinProbe()
	lat := make([]simtime.Duration, nodes*nodes)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			lat[s*nodes+d] = m.FrameLatency(probe, s, d)
		}
	}
	return lat
}

// SimpleNIC is the paper's NIC model: a fixed base latency plus wire
// serialization at the link bandwidth.
type SimpleNIC struct {
	// BaseLatency is the fixed processing latency applied on the send side
	// (the paper's "minimum latency of 1µs").
	BaseLatency simtime.Duration
	// BytesPerSecond is the link bandwidth used for serialization delay.
	// Zero means infinite bandwidth.
	BytesPerSecond float64
	// RecvOverhead is the fixed receive-side processing latency.
	RecvOverhead simtime.Duration
}

// Serialization implements NICModel.
func (n *SimpleNIC) Serialization(f *pkt.Frame) simtime.Duration {
	if n.BytesPerSecond <= 0 {
		return 0
	}
	return simtime.Duration(float64(f.WireBytes()) / n.BytesPerSecond * 1e9)
}

// SendLatency implements NICModel.
func (n *SimpleNIC) SendLatency(f *pkt.Frame) simtime.Duration { return n.BaseLatency }

// RecvLatency implements NICModel.
func (n *SimpleNIC) RecvLatency(f *pkt.Frame) simtime.Duration { return n.RecvOverhead }

// PerfectSwitch is the paper's switch: infinite bandwidth, zero latency.
type PerfectSwitch struct{}

// Latency implements SwitchModel.
func (PerfectSwitch) Latency(f *pkt.Frame, src, dst int) simtime.Duration { return 0 }

// StoreAndForwardSwitch models a single switch that must receive the full
// frame before forwarding it, plus a fixed port-to-port latency.
type StoreAndForwardSwitch struct {
	PortLatency    simtime.Duration
	BytesPerSecond float64
}

// Latency implements SwitchModel.
func (s *StoreAndForwardSwitch) Latency(f *pkt.Frame, src, dst int) simtime.Duration {
	l := s.PortLatency
	if s.BytesPerSecond > 0 {
		l += simtime.Duration(float64(f.WireBytes()) / s.BytesPerSecond * 1e9)
	}
	return l
}

// MatrixSwitch models an arbitrary topology via a per-pair latency matrix,
// e.g. a multi-stage fabric where distant nodes pay more hops.
type MatrixSwitch struct {
	// Lat[src][dst] is the interconnect latency between the pair. The
	// matrix must be square and cover every node ID in use.
	Lat [][]simtime.Duration
}

// Latency implements SwitchModel.
func (s *MatrixSwitch) Latency(f *pkt.Frame, src, dst int) simtime.Duration {
	return s.Lat[src][dst]
}

// FatTreeSwitch approximates a two-level fat-tree: nodes within the same
// edge switch of Radix ports pay EdgeLatency, others pay EdgeLatency +
// CoreLatency for the extra hops.
type FatTreeSwitch struct {
	Radix       int
	EdgeLatency simtime.Duration
	CoreLatency simtime.Duration
}

// Latency implements SwitchModel.
func (s *FatTreeSwitch) Latency(f *pkt.Frame, src, dst int) simtime.Duration {
	if s.Radix > 0 && src/s.Radix == dst/s.Radix {
		return s.EdgeLatency
	}
	return s.EdgeLatency + s.CoreLatency
}

// Paper returns the evaluation configuration of the paper: 10 GB/s NIC,
// 1 µs minimum latency, perfect switch.
func Paper() *Model {
	return &Model{
		NIC: &SimpleNIC{
			BaseLatency:    1 * simtime.Microsecond,
			BytesPerSecond: 10e9, // the paper's "10GB/s" NIC
		},
		Switch: PerfectSwitch{},
	}
}

// Validate reports configuration errors that would silently corrupt timing.
func (m *Model) Validate(nodes int) error {
	if m.NIC == nil {
		return fmt.Errorf("netmodel: nil NIC model")
	}
	if m.Switch == nil {
		return fmt.Errorf("netmodel: nil switch model")
	}
	if ms, ok := m.Switch.(*MatrixSwitch); ok {
		if len(ms.Lat) < nodes {
			return fmt.Errorf("netmodel: latency matrix covers %d nodes, need %d", len(ms.Lat), nodes)
		}
		for i, row := range ms.Lat[:nodes] {
			if len(row) < nodes {
				return fmt.Errorf("netmodel: latency matrix row %d covers %d nodes, need %d", i, len(row), nodes)
			}
		}
	}
	return nil
}
