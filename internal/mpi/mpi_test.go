package mpi_test

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/mpi"
	"clustersim/internal/netmodel"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
)

// run executes the same program on n ranks under quantum q.
func run(t *testing.T, n int, q simtime.Duration, prog func(c *mpi.Comm) error) {
	t.Helper()
	res, err := cluster.Run(cluster.Config{
		Nodes: n,
		Guest: guest.DefaultConfig(),
		Net:   netmodel.Paper(),
		Host:  host.DefaultParams(),
		Policy: func() quantum.Policy {
			return quantum.Fixed{Q: q}
		},
		Program: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				return prog(mpi.New(p))
			}
		},
		MaxGuest: simtime.Guest(60 * simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

// quanta to exercise: ground truth and a deliberately sloppy large quantum —
// collectives must compute identical results under both (the paper's
// functional-correctness-despite-skew property).
var testQuanta = []simtime.Duration{simtime.Microsecond, 700 * simtime.Microsecond}

func TestAllreduceSumCorrectAllSizesAllQuanta(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, q := range testQuanta {
			n, q := n, q
			t.Run(fmt.Sprintf("n%d_q%v", n, q), func(t *testing.T) {
				var mu sync.Mutex
				results := map[int][]float64{}
				run(t, n, q, func(c *mpi.Comm) error {
					in := []float64{float64(c.Rank() + 1), float64(c.Rank() * c.Rank()), 1}
					out := c.AllreduceSum(in)
					mu.Lock()
					results[c.Rank()] = out
					mu.Unlock()
					return nil
				})
				wantA, wantB, wantC := 0.0, 0.0, float64(n)
				for r := 0; r < n; r++ {
					wantA += float64(r + 1)
					wantB += float64(r * r)
				}
				for r := 0; r < n; r++ {
					got := results[r]
					if len(got) != 3 || got[0] != wantA || got[1] != wantB || got[2] != wantC {
						t.Fatalf("rank %d got %v, want [%v %v %v]", r, got, wantA, wantB, wantC)
					}
				}
			})
		}
	}
}

func TestBcastPayloadAllRanksReceive(t *testing.T) {
	for _, n := range []int{2, 3, 6, 8} {
		for root := 0; root < n; root += n/2 + 1 {
			var mu sync.Mutex
			got := map[int]string{}
			n, root := n, root
			run(t, n, simtime.Microsecond, func(c *mpi.Comm) error {
				var payload []byte
				if c.Rank() == root {
					payload = []byte(fmt.Sprintf("hello from %d", root))
				}
				out := c.BcastPayload(root, payload)
				mu.Lock()
				got[c.Rank()] = string(out)
				mu.Unlock()
				return nil
			})
			want := fmt.Sprintf("hello from %d", root)
			for r := 0; r < n; r++ {
				if got[r] != want {
					t.Fatalf("n=%d root=%d rank=%d got %q", n, root, r, got[r])
				}
			}
		}
	}
}

func TestBarrierSeparatesPhases(t *testing.T) {
	// Every rank records its guest time before and after the barrier; no
	// rank's "after" may precede any rank's "before" — the defining barrier
	// property, and it must hold even under a huge quantum.
	for _, q := range testQuanta {
		var mu sync.Mutex
		before := map[int]simtime.Guest{}
		after := map[int]simtime.Guest{}
		run(t, 6, q, func(c *mpi.Comm) error {
			// Stagger the ranks so the barrier has work to do.
			c.Proc().Compute(simtime.Duration(c.Rank()) * 50 * simtime.Microsecond)
			mu.Lock()
			before[c.Rank()] = c.Proc().Now()
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			after[c.Rank()] = c.Proc().Now()
			mu.Unlock()
			return nil
		})
		maxBefore := simtime.Guest(0)
		for _, b := range before {
			maxBefore = simtime.MaxGuest(maxBefore, b)
		}
		for r, a := range after {
			if a < maxBefore {
				t.Errorf("q=%v: rank %d left the barrier at %v before rank entered at %v", q, r, a, maxBefore)
			}
		}
	}
}

func TestAlltoallCompletesAllPairs(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		run(t, n, simtime.Microsecond, func(c *mpi.Comm) error {
			c.Alltoall(1000)
			// A second one immediately after must not cross-talk with the
			// first (tag isolation).
			c.Alltoall(500)
			return nil
		})
	}
}

func TestAlltoallFuncPerPeerSizes(t *testing.T) {
	run(t, 4, simtime.Microsecond, func(c *mpi.Comm) error {
		c.AlltoallFunc(func(peer int) int { return 100 * (peer + 1) })
		return nil
	})
}

func TestGatherScatterReduceAllgather(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		n := n
		run(t, n, simtime.Microsecond, func(c *mpi.Comm) error {
			c.Gather(0, 512)
			c.Scatter(0, 512)
			c.Reduce(0, 256)
			c.Reduce(n-1, 256)
			c.Allgather(128)
			return nil
		})
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	run(t, 2, simtime.Microsecond, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 42, 1234)
			m := c.Recv(1, 43)
			if m.Size != 4321 {
				return fmt.Errorf("got %d bytes", m.Size)
			}
		} else {
			m := c.Recv(0, 42)
			if m.Size != 1234 {
				return fmt.Errorf("got %d bytes", m.Size)
			}
			c.Send(0, 43, 4321)
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, 2, simtime.Microsecond, func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		m := c.Sendrecv(peer, 9, 2048)
		if m.Size != 2048 || m.Src != peer {
			return fmt.Errorf("sendrecv got %d bytes from %d", m.Size, m.Src)
		}
		return nil
	})
}

func TestInvalidPeerPanics(t *testing.T) {
	run(t, 2, simtime.Microsecond, func(c *mpi.Comm) error {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			c.Send(5, 1, 10)
		}()
		if !panicked {
			return fmt.Errorf("out-of-range peer did not panic")
		}
		return nil
	})
}

// Property: AllreduceSum is correct for arbitrary vectors and cluster sizes.
func TestPropertyAllreduceSum(t *testing.T) {
	f := func(vals []float64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		if len(vals) > 16 {
			vals = vals[:16]
		}
		if len(vals) == 0 {
			vals = []float64{1}
		}
		for i, v := range vals {
			// Keep values exactly representable across additions.
			vals[i] = float64(int64(v) % 1000)
		}
		var mu sync.Mutex
		bad := false
		run(t, n, simtime.Microsecond, func(c *mpi.Comm) error {
			in := make([]float64, len(vals))
			for i, v := range vals {
				in[i] = v + float64(c.Rank())
			}
			out := c.AllreduceSum(in)
			for i := range out {
				want := vals[i]*float64(n) + float64(n*(n-1)/2)
				if out[i] != want {
					mu.Lock()
					bad = true
					mu.Unlock()
				}
			}
			return nil
		})
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCollectivesUnderAdaptivePolicy(t *testing.T) {
	// The adaptive policy must not affect functional results either.
	res, err := cluster.Run(cluster.Config{
		Nodes: 5,
		Guest: guest.DefaultConfig(),
		Net:   netmodel.Paper(),
		Host:  host.DefaultParams(),
		Policy: func() quantum.Policy {
			return quantum.NewAdaptive(simtime.Microsecond, simtime.Millisecond, 1.05, 0.02)
		},
		Program: func(rank, size int) guest.Program {
			return func(p *guest.Proc) error {
				c := mpi.New(p)
				out := c.AllreduceSum([]float64{float64(rank)})
				if out[0] != 10 { // 0+1+2+3+4
					return fmt.Errorf("rank %d got %v", rank, out[0])
				}
				p.Compute(300 * simtime.Microsecond)
				out = c.AllreduceSum([]float64{1})
				if out[0] != 5 {
					return fmt.Errorf("rank %d second allreduce got %v", rank, out[0])
				}
				return nil
			}
		},
		MaxGuest: simtime.Guest(10 * simtime.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets == 0 {
		t.Error("no traffic observed")
	}
}
