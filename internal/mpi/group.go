package mpi

import (
	"fmt"

	"clustersim/internal/msg"
	"clustersim/internal/rng"
)

// Group is a sub-communicator: the collectives of Comm restricted to an
// ordered subset of the world's ranks (the analogue of an MPI communicator
// created with MPI_Comm_split — e.g. the row and column communicators of
// 2-D decomposed solvers).
//
// Every member must construct the Group with the identical rank list; the
// group's tag space is salted with a hash of that list, so collectives on
// different groups (and on the world communicator) can progress unmatched
// through the same endpoints without cross-talk.
type Group struct {
	world *Comm
	ranks []int // world ranks, in group order
	rank  int   // this process's rank within the group
	salt  int
	seq   int
}

// Sub returns the sub-communicator for the given ordered world ranks. The
// calling process must be listed. All members must pass the same list.
func (c *Comm) Sub(ranks []int) *Group {
	g := &Group{world: c, ranks: append([]int(nil), ranks...), rank: -1}
	h := uint64(14695981039346656037)
	for i, r := range g.ranks {
		c.checkPeer(r)
		if r == c.rank {
			g.rank = i
		}
		h = rng.Hash(h, uint64(i), uint64(r))
	}
	if g.rank < 0 {
		panic(fmt.Sprintf("mpi: rank %d not a member of sub-communicator %v", c.rank, ranks))
	}
	// Keep the salted tags inside the collective range but away from the
	// world communicator's own sequence space.
	g.salt = int(h % (collTagMod / 2))
	return g
}

// Rank returns this process's rank within the group.
func (g *Group) Rank() int { return g.rank }

// Size returns the group size.
func (g *Group) Size() int { return len(g.ranks) }

// WorldRank translates a group rank to the world rank.
func (g *Group) WorldRank(r int) int { return g.ranks[r] }

func (g *Group) nextTag() int {
	t := collTagBase + collTagMod/2 + (g.salt+g.seq)%(collTagMod/2)
	g.seq++
	return t
}

func (g *Group) send(to, tag, size int) {
	g.world.ep.Send(g.ranks[to], tag, size)
}

func (g *Group) sendPayload(to, tag int, payload []byte) {
	g.world.ep.SendPayload(g.ranks[to], tag, payload)
}

func (g *Group) recv(from, tag int) *msg.Message {
	return g.world.ep.Recv(g.ranks[from], tag)
}

// Barrier executes a dissemination barrier within the group.
func (g *Group) Barrier() {
	tag := g.nextTag()
	n := len(g.ranks)
	for k := 1; k < n; k <<= 1 {
		g.send((g.rank+k)%n, tag, 0)
		g.recv((g.rank-k+n)%n, tag)
	}
}

// Allreduce models an allreduce of size bytes within the group (recursive
// doubling with pre/post folding, as on the world communicator).
func (g *Group) Allreduce(size int) {
	g.allreduce(size, nil)
}

// AllreduceSum performs a real float64 sum-allreduce within the group.
func (g *Group) AllreduceSum(vals []float64) []float64 {
	acc := make([]float64, len(vals))
	copy(acc, vals)
	g.allreduce(8*len(vals), acc)
	return acc
}

func (g *Group) allreduce(size int, acc []float64) {
	tag := g.nextTag()
	n := len(g.ranks)
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	sendTo := func(peer int) {
		if acc != nil {
			g.sendPayload(peer, tag, encodeF64(acc))
		} else {
			g.send(peer, tag, size)
		}
	}
	recvFold := func(peer int) {
		m := g.recv(peer, tag)
		if acc != nil {
			sumInto(acc, decodeF64(m.Payload))
		}
	}
	recvCopy := func(peer int) {
		m := g.recv(peer, tag)
		if acc != nil {
			copy(acc, decodeF64(m.Payload))
		}
	}

	if g.rank >= pof2 {
		sendTo(g.rank - pof2)
		recvCopy(g.rank - pof2)
		return
	}
	if g.rank < rem {
		recvFold(g.rank + pof2)
	}
	for mask := 1; mask < pof2; mask <<= 1 {
		peer := g.rank ^ mask
		sendTo(peer)
		recvFold(peer)
	}
	if g.rank < rem {
		sendTo(g.rank + pof2)
	}
}

// Bcast broadcasts size bytes from the group-rank root via a binomial tree.
func (g *Group) Bcast(root, size int) {
	if root < 0 || root >= len(g.ranks) {
		panic(fmt.Sprintf("mpi: group root %d out of range [0,%d)", root, len(g.ranks)))
	}
	tag := g.nextTag()
	n := len(g.ranks)
	vrank := (g.rank - root + n) % n
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % n
		g.recv(parent, tag)
	}
	lsb := vrank & (-vrank)
	if vrank == 0 {
		lsb = nextPow2(n)
	}
	for k := lsb >> 1; k >= 1; k >>= 1 {
		child := vrank + k
		if child < n {
			g.send((child+root)%n, tag, size)
		}
	}
}

// Alltoall exchanges size bytes between every pair of group members using
// the pairwise-exchange schedule.
func (g *Group) Alltoall(size int) {
	tag := g.nextTag()
	n := len(g.ranks)
	if n == 1 {
		return
	}
	isPow2 := n&(n-1) == 0
	for i := 1; i < n; i++ {
		var sendPeer, recvPeer int
		if isPow2 {
			sendPeer = g.rank ^ i
			recvPeer = sendPeer
		} else {
			sendPeer = (g.rank + i) % n
			recvPeer = (g.rank - i + n) % n
		}
		g.send(sendPeer, tag, size)
		g.recv(recvPeer, tag)
	}
}

// Sendrecv exchanges size-only messages with a group peer.
func (g *Group) Sendrecv(peer, tag, size int) *msg.Message {
	g.send(peer, tag, size)
	return g.recv(peer, tag)
}
