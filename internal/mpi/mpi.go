// Package mpi provides the message-passing collectives the benchmark
// workloads are written against, mirroring the paper's use of LAM/MPI.
//
// The collectives are implemented with the classical algorithms (binomial
// trees, recursive doubling / dissemination, pairwise exchange, rings) over
// the msg layer, so a collective generates the same kind of frame bursts and
// dependence chains as a real MPI library — which is what the adaptive
// synchronization algorithm reacts to. All operations are blocking and must
// be invoked by all ranks of the communicator in the same order.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"clustersim/internal/guest"
	"clustersim/internal/msg"
	"clustersim/internal/pkt"
	"clustersim/internal/simtime"
)

// Tag ranges: user point-to-point tags must stay below collTagBase.
const (
	collTagBase = 1 << 24
	collTagMod  = 1 << 20
)

// Comm is a communicator spanning all nodes of the cluster.
type Comm struct {
	ep   *msg.Endpoint
	rank int
	size int
	seq  int // per-collective sequence for tag isolation
}

// New creates the world communicator for this rank over a fresh msg
// endpoint with the default (jumbo) MTU.
func New(p *guest.Proc) *Comm {
	return NewWithMTU(p, pkt.DefaultMTU)
}

// NewWithMTU creates the world communicator with an explicit MTU.
func NewWithMTU(p *guest.Proc, mtu int) *Comm {
	return &Comm{ep: msg.New(p, mtu), rank: p.Rank(), size: p.Size()}
}

// NewWithConfig creates the world communicator over an endpoint with
// explicit transport configuration — the entry point for reliable mode.
// All ranks of a cluster must use the same configuration.
func NewWithConfig(p *guest.Proc, cfg msg.Config) *Comm {
	return &Comm{ep: msg.NewWithConfig(p, cfg), rank: p.Rank(), size: p.Size()}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Proc returns the underlying guest process.
func (c *Comm) Proc() *guest.Proc { return c.ep.Proc() }

// Endpoint returns the underlying message endpoint.
func (c *Comm) Endpoint() *msg.Endpoint { return c.ep }

// Flush blocks until every reliable-mode message this rank sent has been
// acknowledged or abandoned, and returns the first recorded delivery
// failure (wrapping msg.ErrDeliveryFailed) or nil. A no-op returning nil
// on unreliable communicators.
func (c *Comm) Flush() error { return c.ep.Flush() }

// Err returns the communicator's first recorded delivery failure, or nil.
func (c *Comm) Err() error { return c.ep.Err() }

// Drain pumps inbound traffic (acking reliable-mode peers) until the link
// has been quiet for the given guest-time span. Reliable workloads should
// Drain after their last receive so peers' final retransmissions find an
// acker — the transport's TIME_WAIT.
func (c *Comm) Drain(quiet simtime.Duration) { c.ep.Drain(quiet) }

func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", peer, c.size))
	}
}

// Send transmits a size-only message to (dst, tag).
func (c *Comm) Send(dst, tag, size int) {
	c.checkPeer(dst)
	c.ep.Send(dst, tag, size)
}

// SendPayload transmits a data-carrying message.
func (c *Comm) SendPayload(dst, tag int, payload []byte) {
	c.checkPeer(dst)
	c.ep.SendPayload(dst, tag, payload)
}

// Recv blocks for a message matching (src, tag); either may be msg.Any.
func (c *Comm) Recv(src, tag int) *msg.Message {
	if src != msg.Any {
		c.checkPeer(src)
	}
	return c.ep.Recv(src, tag)
}

// Sendrecv exchanges size-only messages with peer, posting the send first
// (sends never block the transport) and then waiting for the inbound side.
func (c *Comm) Sendrecv(peer, tag, size int) *msg.Message {
	c.checkPeer(peer)
	c.ep.Send(peer, tag, size)
	return c.ep.Recv(peer, tag)
}

// nextTag reserves a fresh collective tag.
func (c *Comm) nextTag() int {
	t := collTagBase + c.seq%collTagMod
	c.seq++
	return t
}

// Barrier executes a dissemination barrier: ceil(log2(size)) rounds; round k
// sends to (rank+2^k) mod size and waits from (rank-2^k) mod size.
func (c *Comm) Barrier() {
	tag := c.nextTag()
	for k := 1; k < c.size; k <<= 1 {
		to := (c.rank + k) % c.size
		from := (c.rank - k + c.size) % c.size
		c.ep.Send(to, tag, 0)
		c.ep.Recv(from, tag)
	}
}

// Bcast broadcasts size bytes from root via a binomial tree and returns the
// payload carried (nil for size-only trees).
func (c *Comm) Bcast(root, size int) *msg.Message {
	return c.bcast(root, size, nil)
}

// BcastPayload broadcasts actual bytes from root; non-root ranks receive
// them.
func (c *Comm) BcastPayload(root int, payload []byte) []byte {
	m := c.bcast(root, len(payload), payload)
	if c.rank == root {
		return payload
	}
	return m.Payload
}

func (c *Comm) bcast(root, size int, payload []byte) *msg.Message {
	c.checkPeer(root)
	tag := c.nextTag()
	// Work in a rotated space where root is rank 0.
	vrank := (c.rank - root + c.size) % c.size
	var got *msg.Message
	if vrank != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := (vrank&(vrank-1) + root) % c.size
		got = c.ep.Recv(parent, tag)
		if got.Payload != nil {
			// Adopt the data so it can be forwarded down the tree.
			payload = got.Payload
		}
	}
	// Forward to children: set each bit above the lowest set bit while in
	// range.
	lsb := vrank & (-vrank)
	if vrank == 0 {
		lsb = nextPow2(c.size)
	}
	for k := lsb >> 1; k >= 1; k >>= 1 {
		child := vrank + k
		if child < c.size {
			dst := (child + root) % c.size
			if payload != nil {
				c.ep.SendPayload(dst, tag, payload)
			} else {
				c.ep.Send(dst, tag, size)
			}
		}
	}
	return got
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Reduce models a binomial-tree reduction of size bytes to root (size-only;
// use AllreduceSum for value-carrying reductions in tests).
func (c *Comm) Reduce(root, size int) {
	c.checkPeer(root)
	tag := c.nextTag()
	vrank := (c.rank - root + c.size) % c.size
	// Children send up in reverse binomial order.
	for k := 1; k < nextPow2(c.size); k <<= 1 {
		if vrank&k != 0 {
			parent := ((vrank &^ k) + root) % c.size
			c.ep.Send(parent, tag, size)
			return
		}
		child := vrank | k
		if child < c.size && child != vrank {
			c.ep.Recv((child+root)%c.size, tag)
		}
	}
}

// Allreduce models an allreduce of size bytes via recursive doubling (the
// power-of-two part) with pre/post folding for leftover ranks.
func (c *Comm) Allreduce(size int) {
	c.allreduce(size, nil, nil)
}

// AllreduceSum performs a real element-wise float64 sum allreduce, carrying
// values on the wire. Every rank returns the identical reduced vector. Used
// by tests to prove the collectives are correct under arbitrary timing.
func (c *Comm) AllreduceSum(vals []float64) []float64 {
	acc := make([]float64, len(vals))
	copy(acc, vals)
	c.allreduce(8*len(vals), acc, sumInto)
	return acc
}

func sumInto(acc []float64, other []float64) {
	for i := range acc {
		acc[i] += other[i]
	}
}

func encodeF64(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decodeF64(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

// allreduce runs recursive doubling. When acc is non-nil, payloads carry the
// partial vectors and fold combines them; otherwise messages are size-only.
func (c *Comm) allreduce(size int, acc []float64, fold func(acc, other []float64)) {
	tag := c.nextTag()
	pof2 := 1
	for pof2*2 <= c.size {
		pof2 *= 2
	}
	rem := c.size - pof2

	exchange := func(peer int) {
		if acc != nil {
			c.ep.SendPayload(peer, tag, encodeF64(acc))
			m := c.ep.Recv(peer, tag)
			fold(acc, decodeF64(m.Payload))
		} else {
			c.ep.Send(peer, tag, size)
			c.ep.Recv(peer, tag)
		}
	}
	sendTo := func(peer int) {
		if acc != nil {
			c.ep.SendPayload(peer, tag, encodeF64(acc))
		} else {
			c.ep.Send(peer, tag, size)
		}
	}
	recvFold := func(peer int) {
		m := c.ep.Recv(peer, tag)
		if acc != nil {
			fold(acc, decodeF64(m.Payload))
		}
	}
	recvCopy := func(peer int) {
		m := c.ep.Recv(peer, tag)
		if acc != nil {
			copy(acc, decodeF64(m.Payload))
		}
	}

	// Fold the leftover high ranks into the low power-of-two block.
	if c.rank >= pof2 {
		sendTo(c.rank - pof2)
		recvCopy(c.rank - pof2) // final result comes back at the end
		return
	}
	if c.rank < rem {
		recvFold(c.rank + pof2)
	}
	// Recursive doubling within [0, pof2).
	for mask := 1; mask < pof2; mask <<= 1 {
		exchange(c.rank ^ mask)
	}
	if c.rank < rem {
		sendTo(c.rank + pof2)
	}
}

// Alltoall models an all-to-all exchange of size bytes per pair using the
// pairwise-exchange schedule: size-1 rounds, in round i exchanging with
// (rank XOR i) for power-of-two sizes and (rank+i)/(rank-i) otherwise.
// This is the MPI_alltoall pattern that makes NAS-IS the paper's worst-case
// accuracy benchmark.
func (c *Comm) Alltoall(size int) {
	c.AlltoallFunc(func(int) int { return size })
}

// AlltoallFunc is Alltoall with a per-destination size (MPI_alltoallv).
func (c *Comm) AlltoallFunc(size func(peer int) int) {
	tag := c.nextTag()
	if c.size == 1 {
		return
	}
	isPow2 := c.size&(c.size-1) == 0
	for i := 1; i < c.size; i++ {
		var sendPeer, recvPeer int
		if isPow2 {
			sendPeer = c.rank ^ i
			recvPeer = sendPeer
		} else {
			sendPeer = (c.rank + i) % c.size
			recvPeer = (c.rank - i + c.size) % c.size
		}
		c.ep.Send(sendPeer, tag, size(sendPeer))
		c.ep.Recv(recvPeer, tag)
	}
}

// Allgather models an allgather of size bytes contributed per rank, using
// the ring algorithm: size-1 steps, each passing the next block to the right
// neighbour.
func (c *Comm) Allgather(size int) {
	tag := c.nextTag()
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	for i := 0; i < c.size-1; i++ {
		c.ep.Send(right, tag, size)
		c.ep.Recv(left, tag)
	}
}

// Gather models a gather of size bytes per rank to root (flat tree, like
// most MPI implementations for small rank counts).
func (c *Comm) Gather(root, size int) {
	c.checkPeer(root)
	tag := c.nextTag()
	if c.rank == root {
		for i := 0; i < c.size-1; i++ {
			c.ep.Recv(msg.Any, tag)
		}
		return
	}
	c.ep.Send(root, tag, size)
}

// Scatter models a scatter of size bytes per rank from root (flat tree).
func (c *Comm) Scatter(root, size int) {
	c.checkPeer(root)
	tag := c.nextTag()
	if c.rank == root {
		for i := 0; i < c.size; i++ {
			if i != c.rank {
				c.ep.Send(i, tag, size)
			}
		}
		return
	}
	c.ep.Recv(root, tag)
}
