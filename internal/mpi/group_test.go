package mpi_test

import (
	"fmt"
	"sync"
	"testing"

	"clustersim/internal/mpi"
	"clustersim/internal/simtime"
)

func TestGroupAllreduceSumPerRow(t *testing.T) {
	// A 2-D 2×3 decomposition: row groups {0,1,2} and {3,4,5}; each row
	// sums its own ranks.
	var mu sync.Mutex
	got := map[int]float64{}
	run(t, 6, simtime.Microsecond, func(c *mpi.Comm) error {
		row := c.Rank() / 3
		ranks := []int{row * 3, row*3 + 1, row*3 + 2}
		g := c.Sub(ranks)
		out := g.AllreduceSum([]float64{float64(c.Rank())})
		mu.Lock()
		got[c.Rank()] = out[0]
		mu.Unlock()
		return nil
	})
	for r := 0; r < 6; r++ {
		want := 3.0 // 0+1+2
		if r >= 3 {
			want = 12 // 3+4+5
		}
		if got[r] != want {
			t.Errorf("rank %d row sum %v, want %v", r, got[r], want)
		}
	}
}

func TestGroupColumnAndRowCoexist(t *testing.T) {
	// Every rank participates in a row group and a column group of a 2×2
	// grid, running collectives on both plus the world — no cross-talk.
	var mu sync.Mutex
	rows := map[int]float64{}
	cols := map[int]float64{}
	run(t, 4, 300*simtime.Microsecond, func(c *mpi.Comm) error {
		r, cl := c.Rank()/2, c.Rank()%2
		rowG := c.Sub([]int{r * 2, r*2 + 1})
		colG := c.Sub([]int{cl, cl + 2})
		rowSum := rowG.AllreduceSum([]float64{float64(c.Rank())})
		c.Barrier()
		colSum := colG.AllreduceSum([]float64{float64(c.Rank())})
		c.AllreduceSum([]float64{1})
		mu.Lock()
		rows[c.Rank()] = rowSum[0]
		cols[c.Rank()] = colSum[0]
		mu.Unlock()
		return nil
	})
	wantRow := map[int]float64{0: 1, 1: 1, 2: 5, 3: 5}
	wantCol := map[int]float64{0: 2, 1: 4, 2: 2, 3: 4}
	for r := 0; r < 4; r++ {
		if rows[r] != wantRow[r] || cols[r] != wantCol[r] {
			t.Errorf("rank %d row=%v col=%v want %v/%v", r, rows[r], cols[r], wantRow[r], wantCol[r])
		}
	}
}

func TestGroupBarrierBcastAlltoall(t *testing.T) {
	for _, n := range []int{3, 5} {
		n := n
		run(t, 2*n, simtime.Microsecond, func(c *mpi.Comm) error {
			half := c.Rank() / n
			ranks := make([]int, n)
			for i := range ranks {
				ranks[i] = half*n + i
			}
			g := c.Sub(ranks)
			if g.Size() != n {
				return fmt.Errorf("group size %d", g.Size())
			}
			if g.WorldRank(g.Rank()) != c.Rank() {
				return fmt.Errorf("world rank translation broken")
			}
			g.Barrier()
			g.Bcast(0, 4096)
			g.Bcast(n-1, 512)
			g.Alltoall(1024)
			g.Allreduce(64)
			if g.Rank() == 0 {
				g.Sendrecv(n-1, 77, 256)
			} else if g.Rank() == n-1 {
				g.Sendrecv(0, 77, 256)
			}
			return nil
		})
	}
}

func TestGroupNonMemberPanics(t *testing.T) {
	run(t, 3, simtime.Microsecond, func(c *mpi.Comm) error {
		if c.Rank() != 2 {
			return nil
		}
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			c.Sub([]int{0, 1}) // rank 2 is not a member
		}()
		if !panicked {
			return fmt.Errorf("non-member Sub did not panic")
		}
		return nil
	})
}

func TestGroupSingleton(t *testing.T) {
	run(t, 2, simtime.Microsecond, func(c *mpi.Comm) error {
		g := c.Sub([]int{c.Rank()})
		g.Barrier()
		g.Alltoall(100)
		g.Bcast(0, 100)
		out := g.AllreduceSum([]float64{7})
		if out[0] != 7 {
			return fmt.Errorf("singleton allreduce %v", out[0])
		}
		return nil
	})
}
