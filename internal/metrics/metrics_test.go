package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{4, 4, 4}); got != 4 {
		t.Errorf("HM of equal values = %v", got)
	}
	got := HarmonicMean([]float64{1, 2, 4})
	want := 3.0 / (1 + 0.5 + 0.25)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("HM = %v, want %v", got, want)
	}
	// The harmonic mean is dominated by small values — why one bad NAS
	// kernel drags the paper's suite accuracy down.
	if HarmonicMean([]float64{0.001, 100, 100}) > 0.01 {
		t.Error("HM not dominated by the small value")
	}
}

func TestHarmonicMeanPanics(t *testing.T) {
	for _, vs := range [][]float64{nil, {}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HarmonicMean(%v) did not panic", vs)
				}
			}()
			HarmonicMean(vs)
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	got := GeometricMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GM(2,8) = %v", got)
	}
}

func TestRelError(t *testing.T) {
	if RelError(110, 100) != 0.1 {
		t.Error("RelError high")
	}
	if RelError(90, 100) != 0.1 {
		t.Error("RelError low")
	}
	if RelError(100, 100) != 0 {
		t.Error("RelError equal")
	}
	if RelError(0, 0) != 0 {
		t.Error("RelError zero/zero")
	}
	if !math.IsInf(RelError(1, 0), 1) {
		t.Error("RelError x/0 should be +Inf")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(50, 100) != 2 {
		t.Error("Speedup broken")
	}
	if !math.IsInf(Speedup(0, 100), 1) {
		t.Error("Speedup 0-host should be +Inf")
	}
}

func TestDominates(t *testing.T) {
	a := Point{Err: 0.01, Speedup: 50}
	b := Point{Err: 0.05, Speedup: 40}
	c := Point{Err: 0.005, Speedup: 60}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if a.Dominates(c) || !c.Dominates(a) {
		t.Error("c should dominate a")
	}
	if a.Dominates(a) {
		t.Error("a point must not dominate itself")
	}
	// Incomparable points.
	d := Point{Err: 0.001, Speedup: 10}
	if a.Dominates(d) || d.Dominates(a) {
		t.Error("incomparable points should not dominate each other")
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Name: "A", Err: 0.01, Speedup: 10},
		{Name: "B", Err: 0.05, Speedup: 40},
		{Name: "C", Err: 0.80, Speedup: 65}, // fast but awful
		{Name: "D", Err: 0.06, Speedup: 30}, // dominated by B
		{Name: "E", Err: 0.02, Speedup: 5},  // dominated by A
	}
	front := ParetoFront(pts)
	names := map[string]bool{}
	for _, p := range front {
		names[p.Name] = true
	}
	if !names["A"] || !names["B"] || !names["C"] || names["D"] || names["E"] {
		t.Errorf("wrong front: %v", front)
	}
	// Front must be sorted by increasing error.
	for i := 1; i < len(front); i++ {
		if front[i].Err < front[i-1].Err {
			t.Error("front not sorted")
		}
	}
	if !OnFront(pts[0], pts) || OnFront(pts[3], pts) {
		t.Error("OnFront disagrees with ParetoFront")
	}
	if DistanceToFront(pts[0], pts) != 0 {
		t.Error("front point should have zero distance")
	}
	if DistanceToFront(pts[3], pts) <= 0 {
		t.Error("dominated point should have positive distance")
	}
}

// Property: no point on the front is dominated by any input point, and every
// input point is either on the front or dominated by someone.
func TestPropertyParetoSoundAndComplete(t *testing.T) {
	f := func(errs []uint8, sps []uint8) bool {
		n := len(errs)
		if len(sps) < n {
			n = len(sps)
		}
		if n == 0 {
			return true
		}
		var pts []Point
		for i := 0; i < n; i++ {
			pts = append(pts, Point{
				Err:     float64(errs[i]) / 255,
				Speedup: 1 + float64(sps[i]),
			})
		}
		front := ParetoFront(pts)
		onFront := func(p Point) bool {
			for _, q := range front {
				if q == p {
					return true
				}
			}
			return false
		}
		for _, p := range front {
			for _, q := range pts {
				if q.Dominates(p) {
					return false // unsound
				}
			}
		}
		for _, p := range pts {
			if onFront(p) {
				continue
			}
			dominated := false
			for _, q := range pts {
				if q.Dominates(p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false // incomplete
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
