// Package metrics implements the paper's evaluation arithmetic: relative
// accuracy error against the ground truth, harmonic-mean aggregation of the
// NAS results, speedup ratios, and Pareto-frontier extraction for Figure 8.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// HarmonicMean returns the harmonic mean of vs (the NAS suite's aggregation
// rule for MOPS). It panics on empty input or non-positive values, which
// have no harmonic mean.
func HarmonicMean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("metrics: harmonic mean of no values")
	}
	var inv float64
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("metrics: harmonic mean of non-positive value %v", v))
		}
		inv += 1 / v
	}
	return float64(len(vs)) / inv
}

// GeometricMean returns the geometric mean of vs.
func GeometricMean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("metrics: geometric mean of no values")
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("metrics: geometric mean of non-positive value %v", v))
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// RelError returns |v-base|/base: the paper's accuracy error of a metric
// against the ground-truth run.
func RelError(v, base float64) float64 {
	if base == 0 {
		if v == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(v-base) / math.Abs(base)
}

// Speedup returns baseHost/host: how many times faster a configuration
// simulated than the ground truth.
func Speedup(host, baseHost float64) float64 {
	if host == 0 {
		return math.Inf(1)
	}
	return baseHost / host
}

// Point is one configuration's position in the accuracy/speed plane of
// Figure 8.
type Point struct {
	// Name labels the configuration (e.g. "NAS Q=100µs").
	Name string
	// Err is the relative accuracy error (smaller is better).
	Err float64
	// Speedup is the simulation speedup over ground truth (larger is
	// better).
	Speedup float64
}

// Dominates reports whether p is at least as good as q on both criteria and
// strictly better on at least one — the Pareto dominance rule of the paper's
// Figure 8.
func (p Point) Dominates(q Point) bool {
	if p.Err > q.Err || p.Speedup < q.Speedup {
		return false
	}
	return p.Err < q.Err || p.Speedup > q.Speedup
}

// ParetoFront returns the subset of pts not dominated by any other point,
// sorted by increasing error. Ties (identical points) are all kept.
func ParetoFront(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Err != front[j].Err {
			return front[i].Err < front[j].Err
		}
		return front[i].Speedup > front[j].Speedup
	})
	return front
}

// OnFront reports whether p belongs to the Pareto front of pts (p must be an
// element of pts by value).
func OnFront(p Point, pts []Point) bool {
	for _, q := range pts {
		if q.Dominates(p) {
			return false
		}
	}
	return true
}

// DistanceToFront returns how far p is from the Pareto front of pts in the
// (log-speedup, error) plane — 0 for points on the front. The paper claims
// adaptive configurations lie "in or very near" the front; this quantifies
// "near".
func DistanceToFront(p Point, pts []Point) float64 {
	if OnFront(p, pts) {
		return 0
	}
	front := ParetoFront(pts)
	best := math.Inf(1)
	for _, q := range front {
		dx := q.Err - p.Err
		dy := math.Log10(q.Speedup) - math.Log10(p.Speedup)
		d := math.Hypot(dx, dy)
		if d < best {
			best = d
		}
	}
	return best
}
