package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds collided on %d of 100 draws", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	childBefore := a.Split(3)
	for i := 0; i < 57; i++ {
		a.Uint64()
	}
	childAfter := a.Split(3)
	for i := 0; i < 100; i++ {
		if childBefore.Uint64() != childAfter.Uint64() {
			t.Fatal("Split depends on parent consumption")
		}
	}
}

func TestSplitKeysDiffer(t *testing.T) {
	a := New(7)
	x, y := a.Split(1), a.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different split keys collided on %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %v too far from 1", variance)
	}
}

func TestLogNormalMeanOne(t *testing.T) {
	r := New(11)
	sigma := 0.25
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(-sigma*sigma/2, sigma)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("LogNormal(-σ²/2, σ) mean %v too far from 1", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.5) > 0.1 {
		t.Errorf("Exp(3.5) mean %v too far from 3.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Error("Hash not deterministic")
	}
	if Hash(1, 2, 3) == Hash(1, 2, 4) || Hash(1, 2, 3) == Hash(3, 2, 1) {
		t.Error("Hash collisions on trivially different keys (astronomically unlikely)")
	}
	// Uniform-ish spread: bucket 10k hashes into 16 bins.
	bins := make([]int, 16)
	for i := uint64(0); i < 10000; i++ {
		bins[Hash(42, i)%16]++
	}
	for b, n := range bins {
		if n < 400 || n > 900 {
			t.Errorf("bin %d has %d of 10000 hashes", b, n)
		}
	}
}

func TestHashFloat01Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		v := HashFloat01(7, i)
		if v <= 0 || v >= 1 {
			t.Fatalf("HashFloat01 out of (0,1): %v", v)
		}
	}
}

func TestInt63n(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	r.Int63n(0)
}
