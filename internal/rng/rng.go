// Package rng implements a small, fast, splittable pseudo-random number
// generator (splitmix64 seeding an xoshiro256** state).
//
// The cluster simulator needs many independent random streams — one per
// (node, purpose) pair — that are stable across runs and independent of the
// order in which other streams are consumed. math/rand's global source does
// not offer cheap, deterministic splitting, so we implement our own.
package rng

import "math"

// Stream is a deterministic random stream. The zero value is not usable;
// obtain Streams with New or Split.
type Stream struct {
	s [4]uint64
	// id is the stream's immutable identity; Split derives children from it
	// so the child set never depends on how much the parent was consumed.
	id uint64
}

// New returns a stream seeded from seed via splitmix64, so nearby seeds yield
// unrelated streams.
func New(seed uint64) *Stream {
	r := &Stream{id: seed}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent stream from r, keyed by key. Splitting
// does not consume or observe the parent's draw state, so the set of child
// streams is stable no matter how much the parent has been used.
func (r *Stream) Split(key uint64) *Stream {
	return New(mix(r.id*0x9e3779b97f4a7c15+1) ^ mix(key))
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// Hash folds the given words into one well-mixed 64-bit value. It is the
// allocation-free path for code that needs a single deterministic random
// value per key (e.g. one jitter draw per (node, window)).
func Hash(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = mix(h ^ v*0xbf58476d1ce4e5b9)
	}
	return h
}

// HashFloat01 maps a hashed key to a uniform float64 in (0, 1).
func HashFloat01(vals ...uint64) float64 {
	h := Hash(vals...)
	return (float64(h>>11) + 0.5) / (1 << 53)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box–Muller, one branch).
func (r *Stream) Norm() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns exp(mu + sigma*N(0,1)). With mu = -sigma²/2 the mean is
// 1, which is convenient for multiplicative speed jitter.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential variate with the given mean.
func (r *Stream) Exp(mean float64) float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -mean * math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
