// Package workerpool provides the bounded work-stealing pool shared by the
// experiment fan-out (parallelism *across* independent simulations) and the
// cluster engine's intra-quantum fast path (parallelism *within* one
// simulation when the quantum is provably safe, DESIGN.md §7).
//
// The pool executes index-addressed batches: Run(n, fn) calls fn(0..n-1)
// exactly once each, in an unspecified order, and returns only after every
// call has finished. Callers obtain determinism by writing results into
// per-index slots — never by relying on completion order.
package workerpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines executing batches of indexed
// calls. The submitting goroutine always participates in the batch, so a
// 1-worker pool runs everything inline with no goroutines, no channels and
// no atomics — the reference sequential order.
type Pool struct {
	workers int
	work    chan batch
	// next and wg are reused across Run calls (Run is never concurrent with
	// itself), keeping the per-batch steady state allocation-free — the
	// engine's fast path issues one batch per simulated quantum.
	next atomic.Int64
	wg   sync.WaitGroup
}

// batch is one Run invocation: a shared claim counter over [0, n).
type batch struct {
	n    int
	fn   func(int)
	next *atomic.Int64
	wg   *sync.WaitGroup
}

// New creates a pool of the given size; workers <= 0 means GOMAXPROCS.
// The pool keeps workers-1 goroutines parked on a channel (the submitter is
// the remaining worker). Close releases them.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.work = make(chan batch)
		for i := 0; i < workers-1; i++ {
			go func() {
				for b := range p.work {
					b.run()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool size (including the submitter).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(i) for every i in [0, n) and returns when all calls have
// completed. Calls are claimed one at a time from a shared atomic counter,
// so uneven per-index cost balances automatically. Run must not be called
// concurrently with itself or after Close.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	if p.work == nil || helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.next.Store(0)
	p.wg.Add(helpers)
	b := batch{n: n, fn: fn, next: &p.next, wg: &p.wg}
	for i := 0; i < helpers; i++ {
		p.work <- b
	}
	// The submitter steals alongside the helpers.
	for {
		i := int(p.next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	p.wg.Wait()
}

func (b batch) run() {
	defer b.wg.Done()
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// Close releases the parked worker goroutines. The pool must not be used
// afterwards. Close is safe on a 1-worker pool.
func (p *Pool) Close() {
	if p.work != nil {
		close(p.work)
	}
}
