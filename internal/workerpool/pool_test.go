package workerpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// Every index in [0, n) must be executed exactly once, for any combination
// of pool size and batch size (n smaller than, equal to, and larger than
// the worker count), across repeated batches on the same pool.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, workers - 1, workers, workers + 1, 97} {
			if n < 0 {
				continue
			}
			counts := make([]atomic.Int32, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: fn(%d) ran %d times, want 1", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	if p1 := New(1); p1.Workers() != 1 {
		t.Errorf("New(1).Workers() = %d, want 1", p1.Workers())
	}
}

// A 1-worker pool must run inline on the submitting goroutine in index
// order — the reference sequential schedule the engine's fast path
// documents for Workers=1.
func TestSingleWorkerRunsInlineInOrder(t *testing.T) {
	p := New(1)
	defer p.Close()
	var order []int
	p.Run(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("inline order %v, want 0..4 ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d calls, want 5", len(order))
	}
}

// Uneven per-index cost must not deadlock or drop work when batches are
// reissued back to back (the engine issues one batch per quantum).
func TestRepeatedBatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	const rounds, n = 200, 9
	for r := 0; r < rounds; r++ {
		p.Run(n, func(i int) {
			if i%3 == 0 {
				runtime.Gosched()
			}
			total.Add(1)
		})
	}
	if got := total.Load(); got != rounds*n {
		t.Errorf("ran %d calls across %d batches, want %d", got, rounds, rounds*n)
	}
}

func TestCloseOnSingleWorkerPool(t *testing.T) {
	p := New(1)
	p.Close() // must not panic (no channel exists)
}
