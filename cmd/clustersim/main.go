// Command clustersim runs one cluster simulation and prints its outcome:
// application metric, simulated (guest) time, modelled host time, quantum
// statistics and straggler counts.
//
// Examples:
//
//	clustersim -workload nas.is -nodes 8 -quantum 100us
//	clustersim -workload namd -nodes 8 -dyn 1us:1000us:1.03:0.02 -chart
//	clustersim -workload nas.ep -nodes 4 -quantum 10us -parallel -spin 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"clustersim/internal/cluster"
	"clustersim/internal/experiments"
	"clustersim/internal/faults"
	"clustersim/internal/netmodel"
	"clustersim/internal/obs"
	"clustersim/internal/prof"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/trace"
	"clustersim/internal/workloads"
)

var (
	workloadFlag = flag.String("workload", "nas.ep", "workload: nas.ep, nas.is, nas.cg, nas.mg, nas.lu, nas.ft, namd, pingpong, phases, reliable-phases, silent, uniform")
	nodesFlag    = flag.Int("nodes", 8, "number of simulated cluster nodes")
	quantumFlag  = flag.String("quantum", "1us", "fixed synchronization quantum (e.g. 1us, 100us, 1ms)")
	dynFlag      = flag.String("dyn", "", "adaptive quantum as min:max:inc:dec (e.g. 1us:1000us:1.03:0.02); overrides -quantum")
	scaleFlag    = flag.Float64("scale", 1.0, "workload compute scale factor")
	seedFlag     = flag.Uint64("seed", 1, "host model seed")
	chartFlag    = flag.Bool("chart", false, "print the quantum-over-time chart")
	packetsFlag  = flag.Bool("traffic", false, "print the packet traffic chart")
	widthFlag    = flag.Int("width", 100, "chart width in columns")
	parallelFlag = flag.Bool("parallel", false, "run with real goroutine parallelism and wall-clock timing")
	spinFlag     = flag.Float64("spin", 0.02, "real ns of CPU burned per guest busy ns (parallel mode)")
	workersFlag  = flag.Int("workers", 0, "cap on host cores used, 0 = all (sets GOMAXPROCS; mainly for taming -parallel runs)")
	traceFlag    = flag.String("tracefile", "", "run a JSON communication trace (workloads.TraceFile schema) instead of -workload; -nodes must match its rank count")
	intraFlag    = flag.Int("intra-workers", 0, "intra-quantum engine workers: fast-path-safe nodes are stepped on this many goroutines; 0 = classic sequential engine; results are identical for any value")
	lookFlag     = flag.String("lookahead", "matrix", "fast-path lookahead mode: matrix probes per-link lookahead and fast-walks loose partitions even when Q exceeds the global minimum latency; scalar restores the all-or-nothing Q ≤ min gate; results are identical either way")
	cpuProfFlag  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag  = flag.String("memprofile", "", "write a heap profile to this file at exit")

	faultsFlag    = flag.String("faults", "", "deterministic fault injection spec, e.g. \"loss=0.01,dup=0.001,jitter=5us,down=10ms-12ms,slow=3:2.5\" (see internal/faults.Parse)")
	faultSeedFlag = flag.Uint64("fault-seed", 1, "seed keying every fault decision; same spec + seed replays bit-identically")

	traceOutFlag    = flag.String("trace-out", "", "stream a Chrome trace-event JSON file here (open in chrome://tracing or ui.perfetto.dev)")
	metricsAddrFlag = flag.String("metrics-addr", "", "serve live JSON metrics on this HTTP address (e.g. localhost:6060) and print a text snapshot at exit")
	progressFlag    = flag.Bool("progress", false, "report live progress (guest %, quanta/s, current Q, straggler rate) on stderr")
	reportFlag      = flag.String("report", "", "write a sync-overhead attribution report here (JSON, plus .nodes.csv/.links.csv sidecars); inspect with simprof")
	topoFlag        = flag.String("topo", "", "switch topology override: rack:<radix>:<edge>:<core> builds a two-level fat-tree (e.g. rack:4:500ns:2us), mixedwan:<rack>:<rackLat>:<wanLat> one tight rack plus WAN singletons; default keeps the paper's perfect switch")
	contentionFlag  = flag.String("contention", "", "switch output-port contention model as <bytes/s>:<latency> (e.g. 10e9:500ns); incast senders queue behind each other; disables the fast path")
)

// parseContention parses the -contention flag into an output-queue model:
// <bytes/s>:<latency>, e.g. 10e9:500ns. The tap models per-destination port
// contention — and, because delivery times then depend on cross-node send
// interleaving, it disables the fast/graded path entirely (the engine falls
// back to the classic walk and run() prints an explicit diagnostic).
func parseContention(spec string) (*netmodel.OutputQueue, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 {
		return nil, fmt.Errorf("-contention wants <bytes/s>:<latency>, got %q", spec)
	}
	bps, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || bps < 0 {
		return nil, fmt.Errorf("-contention bytes/s %q: want a non-negative number", parts[0])
	}
	lat, err := simtime.ParseDuration(parts[1])
	if err != nil {
		return nil, fmt.Errorf("-contention latency: %w", err)
	}
	return &netmodel.OutputQueue{BytesPerSecond: bps, Latency: lat}, nil
}

func main() {
	flag.Parse()
	if err := withProfiles(*cpuProfFlag, *memProfFlag, run); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

// withProfiles brackets f with the optional pprof captures: CPU samples over
// f's whole run, and a post-GC heap snapshot at exit.
func withProfiles(cpu, mem string, f func() error) error {
	if cpu != "" {
		pf, err := os.Create(cpu)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := f()
	if mem != "" {
		mf, merr := os.Create(mem)
		if merr != nil {
			if err == nil {
				err = merr
			}
			return err
		}
		defer mf.Close()
		runtime.GC()
		if perr := pprof.WriteHeapProfile(mf); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// observability assembles the observer stack requested by the -trace-out,
// -metrics-addr and -progress flags. The returned cleanup finalizes the
// trace file, prints the metrics snapshot, and stops the HTTP endpoint; it
// runs even when the simulation fails so a partial trace stays loadable.
func observability(target simtime.Guest) (obs.Observer, *obs.Registry, func() error, error) {
	var observers []obs.Observer
	var registry *obs.Registry
	var cleanups []func() error
	cleanup := func() error {
		var first error
		for i := len(cleanups) - 1; i >= 0; i-- {
			if err := cleanups[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if *traceOutFlag != "" {
		f, err := os.Create(*traceOutFlag)
		if err != nil {
			return nil, nil, nil, err
		}
		t := obs.NewChromeTracer(f)
		observers = append(observers, t)
		cleanups = append(cleanups, func() error {
			err := t.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}
	if *metricsAddrFlag != "" {
		reg := obs.NewRegistry()
		srv, err := obs.Serve(*metricsAddrFlag, reg)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "clustersim: metrics at http://%s/\n", srv.Addr())
		registry = reg
		observers = append(observers, reg)
		cleanups = append(cleanups, func() error {
			fmt.Fprint(os.Stderr, reg.Text())
			return srv.Close()
		})
	}
	if *progressFlag {
		observers = append(observers, obs.NewProgress(os.Stderr, target, 0))
	}
	return obs.Multi(observers...), registry, cleanup, nil
}

func run() (err error) {
	var w workloads.Workload
	if *traceFlag != "" {
		f, ferr := os.Open(*traceFlag)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		tf, perr := workloads.ParseTrace(f)
		if perr != nil {
			return perr
		}
		w = tf.Workload()
	} else {
		w, err = experiments.ResolveWorkload(*workloadFlag, *scaleFlag)
		if err != nil {
			return err
		}
	}
	policy, err := experiments.ParsePolicy(*quantumFlag, *dynFlag)
	if err != nil {
		return err
	}
	if *workersFlag > 0 {
		runtime.GOMAXPROCS(*workersFlag)
	}
	env := experiments.DefaultEnv()
	env.Host.Seed = *seedFlag
	if *topoFlag != "" {
		sw, terr := experiments.ParseTopo(*topoFlag)
		if terr != nil {
			return terr
		}
		env.Net.Switch = sw
	}
	if *contentionFlag != "" {
		oq, cerr := parseContention(*contentionFlag)
		if cerr != nil {
			return cerr
		}
		env.Net.Output = oq
	}
	plan, err := faults.Parse(*faultsFlag, *faultSeedFlag)
	if err != nil {
		return err
	}
	lookahead, err := experiments.ParseLookahead(*lookFlag)
	if err != nil {
		return err
	}

	observer, registry, obsCleanup, err := observability(env.MaxGuest)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var profiler *prof.Profiler
	if *reportFlag != "" {
		profiler = prof.New()
		if registry != nil {
			profiler.LiveMetrics = registry
		}
		defer func() {
			if err != nil {
				return
			}
			if werr := profiler.Report().WriteFiles(*reportFlag); werr != nil {
				err = werr
				return
			}
			fmt.Fprintf(os.Stderr, "clustersim: report written to %s\n", *reportFlag)
		}()
	}

	if *parallelFlag {
		return runParallel(w, policy, env, observer, profiler, plan, lookahead)
	}

	cfg := cluster.Config{
		Nodes:        *nodesFlag,
		Guest:        env.Guest,
		Net:          env.Net,
		Host:         env.Host,
		Policy:       policy,
		Program:      w.New,
		MaxGuest:     env.MaxGuest,
		TraceQuanta:  *chartFlag,
		TracePackets: *packetsFlag,
		Observer:     observer,
		Workers:      *intraFlag,
		Faults:       plan,
		Profiler:     profiler,
		Lookahead:    lookahead,
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		return err
	}
	printResult(w, res)
	// The output tap makes delivery times depend on cross-node send
	// interleaving, so the engine silently falls back to the classic walk
	// even when -intra-workers asked for the fast path. Without this line a
	// run showing 0 engaged quanta reads like a lookahead problem and perf
	// numbers get misattributed.
	if *intraFlag >= 1 && env.Net.Output != nil {
		fmt.Println("fast path    disabled: output tap (-contention models per-port queueing, so delivery order depends on cross-node interleaving; the classic walk was used)")
	}
	if *chartFlag {
		series := trace.QuantumSeries(res.Quanta, *widthFlag, res.GuestTime)
		fmt.Println()
		fmt.Print(trace.LogChart(series, 1, 1100, 10, "quantum duration (µs) over guest time"))
	}
	if *packetsFlag {
		fmt.Println()
		fmt.Print(trace.TrafficChart(res.Packets, cfg.Nodes, res.GuestTime, *widthFlag))
	}
	return nil
}

func runParallel(w workloads.Workload, policy func() quantum.Policy, env experiments.Env, observer obs.Observer, profiler *prof.Profiler, plan *faults.Plan, lookahead cluster.LookaheadMode) error {
	res, err := cluster.RunParallel(cluster.ParallelConfig{
		Nodes:            *nodesFlag,
		Guest:            env.Guest,
		Net:              env.Net,
		Policy:           policy,
		Program:          w.New,
		SpinPerGuestBusy: *spinFlag,
		MaxGuest:         env.MaxGuest,
		Observer:         observer,
		Faults:           plan,
		Profiler:         profiler,
		Lookahead:        lookahead,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workload     %s ×%d (parallel, policy %s)\n", w.Name, *nodesFlag, res.PolicyName)
	fmt.Printf("guest time   %v\n", res.GuestTime)
	fmt.Printf("wall clock   %v (real, %d goroutines)\n", res.Wall, *nodesFlag)
	printMetrics(res.Metrics)
	printStats(res.Stats)
	return nil
}

func printResult(w workloads.Workload, res *cluster.Result) {
	fmt.Printf("workload     %s ×%d (policy %s)\n", w.Name, *nodesFlag, res.PolicyName)
	fmt.Printf("guest time   %v\n", res.GuestTime)
	fmt.Printf("host time    %v (modelled)\n", res.HostTime)
	printMetrics(res.Metrics)
	printStats(res.Stats)
}

func printMetrics(ms []map[string]float64) {
	if len(ms) == 0 {
		return
	}
	var keys []string
	for k := range ms[0] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("metric       %s = %.4g\n", k, ms[0][k])
	}
}

func printStats(st cluster.Stats) {
	fmt.Printf("quanta       %d (min %v, mean %v, max %v; %d silent)\n",
		st.Quanta, st.MinQ, st.MeanQ, st.MaxQ, st.SilentQuanta)
	fmt.Printf("packets      %d routed, %d deliveries\n", st.Packets, st.Deliveries)
	if st.Dropped > 0 || st.Duplicated > 0 {
		fmt.Printf("faults       %d dropped, %d duplicated\n", st.Dropped, st.Duplicated)
	}
	fmt.Printf("stragglers   %d (%d snapped to the next quantum), total delay %v\n",
		st.Stragglers, st.QuantumSnaps, st.StragglerDelay)
	if st.FastFullQuanta > 0 || st.FastPartialQuanta > 0 {
		line := fmt.Sprintf("fast path    %d/%d quanta fully engaged", st.FastFullQuanta, st.Quanta)
		if st.FastPartialQuanta > 0 {
			// Among partially engaged quanta the engaged partitions are the
			// loose singletons: average k fast of n total partitions.
			kSum := st.FastNodeQuanta - *nodesFlag*st.FastFullQuanta
			line += fmt.Sprintf(", %d partially engaged (avg %.1f of %.1f partitions fast)",
				st.FastPartialQuanta,
				float64(kSum)/float64(st.FastPartialQuanta),
				float64(st.PartialPartitions)/float64(st.FastPartialQuanta))
		}
		fmt.Println(line)
	}
	if st.HostBusy > 0 || st.HostBarrier > 0 {
		fmt.Printf("host split   busy %v, idle %v, barriers %v (summed across nodes)\n",
			st.HostBusy, st.HostIdle, st.HostBarrier)
	}
}
