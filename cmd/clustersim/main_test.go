package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the test is independent of the package's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func buildClustersim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "clustersim")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/clustersim")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/clustersim: %v\n%s", err, out)
	}
	return bin
}

// Every malformed flag must die with exit 1 and a one-line "clustersim: ..."
// error that names the offending input — never a panic, a usage dump, or a
// silent success.
func TestCLIFlagErrors(t *testing.T) {
	bin := buildClustersim(t)
	trace := filepath.Join(t.TempDir(), "two-rank.json")
	if err := os.WriteFile(trace, []byte(`{"name": "t", "ranks": 2, "ops": [
		[{"op": "send", "dst": 1, "bytes": 8}],
		[{"op": "recv", "src": 0}]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown workload", []string{"-workload", "wat"}, `unknown workload "wat"`},
		{"zero quantum", []string{"-quantum", "0us"}, "quantum must be positive"},
		{"unparsable quantum", []string{"-quantum", "fast"}, "quantum:"},
		{"dyn missing fields", []string{"-dyn", "1us:1ms"}, "dyn wants min:max:inc:dec"},
		{"dyn bad min", []string{"-dyn", "x:1ms:1.03:0.02"}, "dyn min:"},
		{"unknown topo kind", []string{"-topo", "ring:4:1us:2us"}, "unknown topology kind"},
		{"topo missing fields", []string{"-topo", "ring:4"}, "topo wants rack:"},
		{"topo bad radix", []string{"-topo", "rack:x:1us:2us"}, "topo radix"},
		{"bad lookahead", []string{"-lookahead", "psychic"}, "lookahead wants matrix or scalar"},
		{"faults unknown field", []string{"-faults", "chaos=1"}, `unknown field "chaos"`},
		{"faults bad window", []string{"-faults", "down=5ms"}, "is not start-end"},
		{"contention missing latency", []string{"-contention", "10e9"}, "-contention wants <bytes/s>:<latency>"},
		{"contention negative rate", []string{"-contention", "-1:500ns"}, "non-negative"},
		{"zero nodes", []string{"-nodes", "0", "-workload", "pingpong"}, "need at least 1 node"},
		{"trace rank mismatch", []string{"-tracefile", trace, "-nodes", "4"}, "has 2 ranks but the cluster has 4 nodes"},
		{"trace file missing", []string{"-tracefile", filepath.Join(t.TempDir(), "nope.json")}, "no such file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("clustersim %v succeeded, want error:\n%s", c.args, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 1 {
				t.Errorf("want exit code 1, got %v", err)
			}
			text := strings.TrimSpace(string(out))
			if !strings.Contains(text, c.want) {
				t.Errorf("output %q does not mention %q", text, c.want)
			}
			if !strings.HasPrefix(text, "clustersim:") {
				t.Errorf("error line %q lacks the clustersim: prefix", text)
			}
			if strings.Count(text, "\n") > 0 {
				t.Errorf("error output is multi-line, want one usable line:\n%s", text)
			}
		})
	}
}

// -contention disables the fast path, so a run that also asks for
// -intra-workers must say so explicitly instead of reporting 0 engaged
// quanta with no explanation (and must stay quiet when the combination is
// absent).
func TestContentionFastPathDiagnostic(t *testing.T) {
	bin := buildClustersim(t)
	base := []string{"-workload", "pingpong", "-nodes", "2", "-quantum", "1us"}
	const diag = "fast path    disabled: output tap"

	args := append(append([]string{}, base...), "-intra-workers", "2", "-contention", "10e9:500ns")
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("contention run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), diag) {
		t.Errorf("-intra-workers with -contention did not print the output-tap diagnostic:\n%s", out)
	}

	quiet := []struct {
		name  string
		extra []string
	}{
		{"no contention", []string{"-intra-workers", "2"}},
		{"no intra-workers", []string{"-contention", "10e9:500ns"}},
	}
	for _, c := range quiet {
		args := append(append([]string{}, base...), c.extra...)
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s run failed: %v\n%s", c.name, err, out)
		}
		if strings.Contains(string(out), diag) {
			t.Errorf("%s run printed the output-tap diagnostic spuriously:\n%s", c.name, out)
		}
	}
}
