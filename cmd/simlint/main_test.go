package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the test is independent of the package's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// buildSimlint compiles the simlint binary once per test run.
func buildSimlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/simlint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/simlint: %v\n%s", err, out)
	}
	return bin
}

func TestVersionAndFlagsProbe(t *testing.T) {
	bin := buildSimlint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "simlint version devel buildID=") {
		t.Errorf("-V=full output %q lacks the go vet version line shape", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Name] = true
	}
	for _, want := range []string{
		"nodetsource", "maporder", "guestwall", "lockcopy",
		"snapshotsafe", "hotalloc", "errdiscard",
		"json", "json-out", "V",
	} {
		if !names[want] {
			t.Errorf("-flags output missing flag %q; got %s", want, out)
		}
	}
}

// TestStandaloneCleanRepo is the acceptance gate: the repository itself must
// be simlint-clean (findings either fixed or carrying justified directives).
func TestStandaloneCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	bin := buildSimlint(t)
	cmd := exec.Command(bin, "-C", moduleRoot(t), "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("simlint ./... reported findings or failed: %v\n%s", err, out)
	}
}

// TestStandaloneSkipsTestdata pins the corpus-exclusion rule: naming a
// golden-corpus package directly (the trees `go list ./...` skips by
// convention but explicit patterns can reach) must analyze nothing and exit
// clean, never lint the corpus's deliberate findings as product code.
func TestStandaloneSkipsTestdata(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	bin := buildSimlint(t)
	cmd := exec.Command(bin, "-C", moduleRoot(t),
		"./internal/analysis/maporder/testdata/src/example.com/app")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("simlint over a testdata corpus must exit clean, got: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("simlint over a testdata corpus must report nothing, got:\n%s", out)
	}
}

// TestJSONFindingsDocument checks the -json-out artifact: a versioned
// findings document is written even on a clean run (CI uploads it on
// failure, but the file must exist either way).
func TestJSONFindingsDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	bin := buildSimlint(t)
	outPath := filepath.Join(t.TempDir(), "findings.json")
	cmd := exec.Command(bin, "-C", moduleRoot(t), "-json-out", outPath, "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("simlint -json-out ./...: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("findings document not written: %v", err)
	}
	var doc struct {
		Schema   string            `json:"schema"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("findings document is not JSON: %v\n%s", err, data)
	}
	if doc.Schema != "simlint-findings/1" {
		t.Errorf("findings schema = %q, want simlint-findings/1", doc.Schema)
	}
	if doc.Findings == nil {
		t.Errorf("findings list must be present (empty, not null) on a clean run:\n%s", data)
	}
}

// TestVettoolCleanPackage drives the binary through the real go vet
// unitchecker protocol against packages that carry //simlint: annotations,
// confirming directive handling works under vet's file/.cfg calling
// convention too.
func TestVettoolCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go vet")
	}
	bin := buildSimlint(t)
	// cluster/guest/msg carry the snapshotroot/hotpath markers, so this also
	// proves fact flow (hotalloc summaries riding vetx files) under vet's
	// dependency-first visit order.
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/faults", "./internal/obs", "./internal/simtime",
		"./internal/cluster", "./internal/guest", "./internal/msg")
	cmd.Dir = moduleRoot(t)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool=simlint: %v\n%s", err, buf.String())
	}
}
