// Simlint is the simulator's determinism linter: a multichecker over the
// custom analyzers in internal/analysis (nodetsource, maporder, guestwall,
// lockcopy/atomicmix, snapshotsafe, hotalloc, errdiscard).
//
// Standalone use, from the module root:
//
//	go run ./cmd/simlint ./...
//
// As a go vet tool (the unitchecker protocol; see vettool.go):
//
//	go build -o /tmp/simlint ./cmd/simlint
//	go vet -vettool=/tmp/simlint ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings — matching go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"clustersim/internal/analysis/framework"
	"clustersim/internal/analysis/simlint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit findings as JSON (the simlint-findings/1 schema) on stdout")
	jsonOutFlag := fs.String("json-out", "", "also write the findings JSON document to this file (written even when clean)")
	dirFlag := fs.String("C", ".", "change to this directory before resolving patterns")
	enabled := map[string]*bool{}
	for _, a := range simlint.Analyzers() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}

	// `go vet` probes its tool with -flags to learn which flags it may
	// pass; answer before normal flag parsing.
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		printFlagsJSON(fs)
		return 0
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}
	if *versionFlag != "" {
		// The go command hashes this line into its build cache key.
		fmt.Printf("simlint version devel buildID=%s\n", selfID())
		return 0
	}

	var analyzers []*framework.Analyzer
	for _, a := range simlint.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], analyzers)
	}

	pkgs, err := framework.Load(*dirFlag, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	findings := framework.MakeFindings(fsetOf(pkgs), diags)
	if *jsonOutFlag != "" {
		if err := os.WriteFile(*jsonOutFlag, findings.JSON(), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
	}
	if *jsonFlag {
		os.Stdout.Write(findings.JSON())
	}
	if len(diags) == 0 {
		return 0
	}
	if !*jsonFlag {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", position(pkgs, d), d.Analyzer, d.Message)
		}
	}
	return 2
}

// fsetOf returns the FileSet shared by the loaded packages (Load hands every
// package the same one), or an empty set when nothing matched.
func fsetOf(pkgs []*framework.Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}

// position renders a diagnostic's file:line:col using the shared fileset.
func position(pkgs []*framework.Package, d framework.Diagnostic) string {
	if len(pkgs) == 0 {
		return "-"
	}
	return pkgs[0].Fset.Position(d.Pos).String()
}

// printFlagsJSON answers `simlint -flags` with the JSON the go command
// expects: a list of {Name, Bool, Usage} records.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlagDef
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		defs = append(defs, jsonFlagDef{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, _ := json.Marshal(defs)
	os.Stdout.Write(data)
	fmt.Println()
}

// selfID hashes the running binary so the go command's cache invalidates
// whenever simlint itself changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
