package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"clustersim/internal/analysis/framework"
)

// vetConfig mirrors the JSON configuration the go command writes for a vet
// tool (the unitchecker protocol of golang.org/x/tools, re-implemented here
// on the stdlib so simlint works as `go vet -vettool=` without that
// dependency). Fields we do not consume are still listed so the decoder is
// documentation of the wire format.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet executes one unitchecker invocation: parse the package the go
// command described in cfgPath, type-check it against the compiler's export
// data, run the analyzers, and report.
//
// Facts ride the vetx files. The go command visits dependencies first
// (VetxOnly invocations) and hands each later invocation its direct
// dependencies' vetx paths in PackageVetx; simlint writes each package's
// vetx as the merge of everything it was handed plus the facts its own
// analysis exported, so a package's vetx transitively carries the facts of
// its whole in-module import closure — the same flow RunAnalyzers gets from
// dependency ordering in standalone mode. Packages outside this module
// export no facts, so their vetx files just forward what they merged
// (usually nothing) and skip the analysis entirely.
func runVet(cfgPath string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Merge the dependency fact stores (sorted for a deterministic merge
	// order; key sets are disjoint per package, so order only matters for
	// reproducibility of the bytes we write back out).
	store := framework.NewFactStore()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		raw, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: reading facts of %s: %v\n", p, err)
			return 1
		}
		if err := store.MergeJSON(raw); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: facts of %s: %v\n", p, err)
			return 1
		}
	}
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		if err := os.WriteFile(cfg.VetxOutput, store.EncodeJSON(), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		return 0
	}

	// Packages outside the module contribute no facts and get no
	// diagnostics; forward the merged store and stop. This also keeps
	// VetxOnly visits of the standard library free of parse/typecheck work.
	if !inModule(cfg.ImportPath) {
		return writeVetx()
	}

	// Simlint's contract covers non-test code only: tests legitimately read
	// wall time (benchmarks) and exercise nondeterminism on purpose. go vet
	// also visits the test variants of each package; strip their files so
	// the same policy holds under -vettool as standalone.
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor(compiler, runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	pkg := &framework.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info,
		// A VetxOnly visit exists to produce facts; its diagnostics belong
		// to the invocation that names the package directly.
		FactsOnly: cfg.VetxOnly,
	}
	diags, err := framework.RunAnalyzersWithFacts([]*framework.Package{pkg}, analyzers, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

// inModule reports whether importPath names a package of this module,
// including the synthesized test variants ("pkg [pkg.test]").
func inModule(importPath string) bool {
	const module = "clustersim"
	return importPath == module || strings.HasPrefix(importPath, module+"/") ||
		strings.HasPrefix(importPath, module+".") || strings.HasPrefix(importPath, module+" ")
}
