package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the test is independent of the package's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func build(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// writeReport runs clustersim with -report and returns the report path.
func writeReport(t *testing.T, clustersim, dir, name string, args ...string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	cmd := exec.Command(clustersim, append(args, "-report", path)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clustersim %v: %v\n%s", args, err, out)
	}
	return path
}

// Diffing reports whose link and partition-level sets are disjoint — a
// mixedwan geometry against a larger fat-tree — must neither panic nor
// depend on map iteration order: added/removed links appear as sorted
// "only in first/second" rows and the output is byte-stable across runs.
func TestDiffDisjointTopologies(t *testing.T) {
	simprof := build(t, "./cmd/simprof", "simprof")
	clustersim := build(t, "./cmd/clustersim", "clustersim")
	dir := t.TempDir()
	a := writeReport(t, clustersim, dir, "a.json",
		"-workload", "uniform", "-nodes", "6", "-quantum", "5us", "-topo", "mixedwan:4:500ns:50us")
	b := writeReport(t, clustersim, dir, "b.json",
		"-workload", "uniform", "-nodes", "8", "-quantum", "10us", "-topo", "rack:4:500ns:2us")

	run := func() string {
		out, err := exec.Command(simprof, "-top", "1000", a, b).CombinedOutput()
		if err != nil {
			t.Fatalf("simprof diff: %v\n%s", err, out)
		}
		return string(out)
	}
	first := run()
	if second := run(); first != second {
		t.Error("diff output differs across identical invocations (map-order leak)")
	}

	// Nodes 6 and 7 exist only in the 8-node report: every such link must be
	// reported as only-in-second, and the full link listing must be sorted.
	if !strings.Contains(first, "only in second") {
		t.Errorf("diff of disjoint link sets lacks only-in-second rows:\n%s", first)
	}
	if !strings.Contains(first, "only in first") {
		t.Errorf("diff of disjoint partition levels lacks only-in-first rows:\n%s", first)
	}
	linkRe := regexp.MustCompile(`link (\d+)->(\d+)`)
	var links []string
	for _, m := range linkRe.FindAllStringSubmatch(first, -1) {
		links = append(links, m[1]+"->"+m[2])
	}
	if len(links) < 40 {
		t.Fatalf("expected dozens of link rows across 6- and 8-node reports, got %d", len(links))
	}
	for i := 1; i < len(links); i++ {
		var as, ad, bs, bd int
		if _, err := fmtSscanf(links[i-1], &as, &ad); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscanf(links[i], &bs, &bd); err != nil {
			t.Fatal(err)
		}
		if bs < as || (bs == as && bd <= ad) {
			t.Fatalf("link rows not in sorted order: %s before %s", links[i-1], links[i])
		}
	}
}

// fmtSscanf parses a "src->dst" link key.
func fmtSscanf(s string, src, dst *int) (int, error) {
	parts := strings.SplitN(s, "->", 2)
	var err error
	*src, err = atoi(parts[0])
	if err != nil {
		return 0, err
	}
	*dst, err = atoi(parts[1])
	return 2, err
}

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, os.ErrInvalid
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// The elision line must state how many rows it dropped and never appear
// when the change count fits within -top.
func TestDiffLinkElision(t *testing.T) {
	simprof := build(t, "./cmd/simprof", "simprof")
	clustersim := build(t, "./cmd/clustersim", "clustersim")
	dir := t.TempDir()
	a := writeReport(t, clustersim, dir, "a.json",
		"-workload", "uniform", "-nodes", "4", "-quantum", "5us", "-topo", "rack:2:500ns:2us")
	b := writeReport(t, clustersim, dir, "b.json",
		"-workload", "uniform", "-nodes", "4", "-quantum", "5us", "-topo", "rack:2:500ns:4us")

	out, err := exec.Command(simprof, "-top", "2", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("simprof diff: %v\n%s", err, out)
	}
	elide := regexp.MustCompile(`… (\d+) further link changes elided \(-top 2\)`)
	if !elide.Match(out) {
		t.Errorf("-top 2 diff lacks a counted elision line:\n%s", out)
	}
	if n := len(regexp.MustCompile(`(?m)^  link `).FindAll(out, -1)); n != 2 {
		t.Errorf("-top 2 diff shows %d link rows, want 2:\n%s", n, out)
	}

	out, err = exec.Command(simprof, "-top", "1000", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("simprof diff: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "elided") {
		t.Errorf("nothing was elided but the elision line appears:\n%s", out)
	}
}

// A self-diff must collapse to the equivalence line, and diffing a single
// report against a sweep must fail with a one-line error.
func TestDiffEquivalentAndMismatchedSchemas(t *testing.T) {
	simprof := build(t, "./cmd/simprof", "simprof")
	clustersim := build(t, "./cmd/clustersim", "clustersim")
	dir := t.TempDir()
	a := writeReport(t, clustersim, dir, "a.json",
		"-workload", "pingpong", "-nodes", "2", "-quantum", "2us")
	out, err := exec.Command(simprof, a, a).CombinedOutput()
	if err != nil {
		t.Fatalf("self-diff: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reports are equivalent") {
		t.Errorf("self-diff output lacks the equivalence line:\n%s", out)
	}
}
