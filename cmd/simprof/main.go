// Command simprof renders and compares the sync-overhead attribution
// reports written by clustersim -report (single run) and paperfigs -report
// (labelled sweep).
//
// Examples:
//
//	simprof run.json              # render one report
//	simprof -top 5 run.json       # shorter link/node tables
//	simprof a.json b.json         # diff two reports (or two sweeps)
//	simprof -run nas.is/8/100 sweep.json
//
// The rendering answers the paper's operational questions directly: where
// each host-second went (compute, idle, barrier wait, routing, barrier
// fixed cost), how often the intra-quantum fast path was eligible and what
// disabled it otherwise, and which minimum-latency links gate the global
// lookahead bound Q ≤ T.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"clustersim/internal/prof"
	"clustersim/internal/simtime"
)

var (
	topFlag = flag.Int("top", 10, "rows in the per-node and limiting-link tables")
	runFlag = flag.String("run", "", "render only this labelled run of a sweep report")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simprof [flags] report.json [other.json]\n\n")
		fmt.Fprintf(os.Stderr, "With one file, renders the report (or a sweep summary). With two,\ndiffs them: single vs single, or sweep vs sweep matched by label.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "simprof:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	switch len(args) {
	case 1:
		return render(args[0])
	case 2:
		return diff(args[0], args[1])
	default:
		flag.Usage()
		return fmt.Errorf("want 1 or 2 report files, got %d", len(args))
	}
}

// load reads path as either schema, returning exactly one non-nil result.
func load(path string) (*prof.Report, *prof.SweepReport, error) {
	schema, err := prof.DetectSchema(path)
	if err != nil {
		return nil, nil, err
	}
	switch schema {
	case prof.Schema:
		r, err := prof.Load(path)
		return r, nil, err
	case prof.SweepSchema:
		s, err := prof.LoadSweep(path)
		return nil, s, err
	default:
		return nil, nil, fmt.Errorf("%s: unknown schema %q", path, schema)
	}
}

func render(path string) error {
	single, sweep, err := load(path)
	if err != nil {
		return err
	}
	if single != nil {
		renderReport(os.Stdout, path, single)
		return nil
	}
	if *runFlag != "" {
		for _, sr := range sweep.Runs {
			if sr.Label == *runFlag {
				renderReport(os.Stdout, path+" :: "+sr.Label, sr.Report)
				return nil
			}
		}
		return fmt.Errorf("%s: no run labelled %q (have %s)", path, *runFlag, labels(sweep))
	}
	renderSweep(os.Stdout, path, sweep)
	return nil
}

func labels(s *prof.SweepReport) string {
	ls := make([]string, len(s.Runs))
	for i, r := range s.Runs {
		ls[i] = r.Label
	}
	return strings.Join(ls, ", ")
}

func dur(ns int64) string { return simtime.Duration(ns).String() }

func pct(part, whole int64) string {
	if whole == 0 {
		return "  --  "
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(part)/float64(whole))
}

func renderReport(w *os.File, name string, r *prof.Report) {
	fmt.Fprintf(w, "report %s\n", name)
	fmt.Fprintf(w, "  engine %s, %d nodes, policy %q\n", r.Engine, r.Nodes, r.Policy)
	complete := ""
	if !r.Complete {
		complete = "  [incomplete run: profile covers a prefix]"
	}
	fmt.Fprintf(w, "  guest %s  host %s  quanta %d  packets %d (%d stragglers)%s\n",
		dur(r.GuestNS), dur(r.HostNS), r.Quanta, r.Packets, r.Stragglers, complete)

	// The lookahead line names what gates the global fast-path bound Q <= T.
	if r.LookaheadNS > 0 {
		gate := ""
		if len(r.MinLatencyLinks) > 0 {
			names := make([]string, 0, 4)
			for i, l := range r.MinLatencyLinks {
				if i == 4 {
					break
				}
				names = append(names, prof.LinkName(l.Src, l.Dst))
			}
			more := ""
			if r.MinLatencyTied > int64(len(names)) {
				more = fmt.Sprintf(", … %d total", r.MinLatencyTied)
			}
			gate = fmt.Sprintf(" — gated by min-latency link(s) %s%s", strings.Join(names, ", "), more)
		}
		fmt.Fprintf(w, "  lookahead %s%s\n", dur(r.LookaheadNS), gate)
	} else if r.OutputQueue {
		fmt.Fprintf(w, "  lookahead unavailable: output-queue tap voids the static latency floor\n")
	} else {
		fmt.Fprintf(w, "  lookahead unavailable: no positive static latency floor\n")
	}

	fmt.Fprintf(w, "\nfast path\n")
	fmt.Fprintf(w, "  fully engaged %d/%d quanta (%s), spanning %s host (%s)\n",
		r.Engagement.EligibleQuanta, r.Quanta, strings.TrimSpace(pct(r.Engagement.EligibleQuanta, r.Quanta)),
		dur(r.Engagement.EligibleHostNS), strings.TrimSpace(pct(r.Engagement.EligibleHostNS, r.HostNS)))
	if r.Engagement.PartialQuanta > 0 {
		fmt.Fprintf(w, "  partially engaged %d/%d quanta (%s), spanning %s host (%s)\n",
			r.Engagement.PartialQuanta, r.Quanta, strings.TrimSpace(pct(r.Engagement.PartialQuanta, r.Quanta)),
			dur(r.Engagement.PartialHostNS), strings.TrimSpace(pct(r.Engagement.PartialHostNS, r.HostNS)))
	}
	if r.Engagement.NodeQuanta > 0 {
		fmt.Fprintf(w, "  node-level engagement %d/%d node-quanta fast-walked (%s)\n",
			r.Engagement.FastNodeQuanta, r.Engagement.NodeQuanta,
			strings.TrimSpace(pct(r.Engagement.FastNodeQuanta, r.Engagement.NodeQuanta)))
	}
	for _, c := range r.Engagement.Causes {
		fmt.Fprintf(w, "  cause %-22s %10d quanta %s\n", c.Cause, c.Quanta, pct(c.Quanta, r.Quanta))
	}

	if len(r.Partitions) > 0 {
		fmt.Fprintf(w, "\nlookahead partition structure, one row per level the run's quanta hit\n")
		fmt.Fprintf(w, "  %14s %10s %6s %6s %10s  %s\n", "max tight lat", "partitions", "tight", "fast", "quanta", "tightest binding links")
		for _, lv := range r.Partitions {
			links := make([]string, 0, 3)
			for i, l := range lv.TightLinks {
				if i == 3 {
					break
				}
				links = append(links, prof.LinkName(l.Src, l.Dst))
			}
			more := ""
			if lv.TightLinkCount > int64(len(links)) {
				more = fmt.Sprintf(", … %d total", lv.TightLinkCount)
			}
			fmt.Fprintf(w, "  %14s %10d %6d %6d %10d  %s%s\n",
				dur(lv.MaxTightLatNS), lv.Partitions, lv.TightPartitions, lv.FastNodes,
				lv.Quanta, strings.Join(links, ", "), more)
		}
	}

	t := r.Totals
	attributed := t.ComputeNS + t.IdleNS + t.WaitNS + t.RoutingNS + t.BarrierNS
	fmt.Fprintf(w, "\nhost-time attribution (summed across nodes)\n")
	for _, row := range []struct {
		name string
		ns   int64
	}{
		{"compute", t.ComputeNS}, {"idle", t.IdleNS}, {"barrier wait", t.WaitNS},
		{"routing", t.RoutingNS}, {"barrier cost", t.BarrierNS},
	} {
		fmt.Fprintf(w, "  %-13s %14s %s\n", row.name, dur(row.ns), pct(row.ns, attributed))
	}

	if len(r.PerNode) > 0 {
		nodes := append([]prof.NodeProfile(nil), r.PerNode...)
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].WaitNS != nodes[j].WaitNS {
				return nodes[i].WaitNS > nodes[j].WaitNS
			}
			return nodes[i].Node < nodes[j].Node
		})
		fmt.Fprintf(w, "\nper-node, most barrier wait first (top %d of %d)\n", min(*topFlag, len(nodes)), len(nodes))
		fmt.Fprintf(w, "  %5s %14s %14s %14s\n", "node", "compute", "idle", "wait")
		for i, n := range nodes {
			if i == *topFlag {
				break
			}
			fmt.Fprintf(w, "  %5d %14s %14s %14s\n", n.Node, dur(n.ComputeNS), dur(n.IdleNS), dur(n.WaitNS))
		}
	}

	if len(r.LimitingLinks) > 0 {
		fmt.Fprintf(w, "\nlookahead-limiting links, least slack first (top %d of %d observed)\n",
			min(*topFlag, len(r.LimitingLinks)), len(r.Links))
		fmt.Fprintf(w, "  %-9s %14s %14s %10s\n", "link", "min slack", "min latency", "frames")
		for i, l := range r.LimitingLinks {
			if i == *topFlag {
				break
			}
			fmt.Fprintf(w, "  %-9s %14s %14s %10d\n", prof.LinkName(l.Src, l.Dst), dur(l.SlackNS), dur(l.LatencyNS), l.Frames)
		}
	}

	if len(r.Hists) > 0 {
		fmt.Fprintf(w, "\ndistributions\n")
		for _, h := range r.Hists {
			if h.Hist.Count == 0 {
				continue
			}
			mean := h.Hist.SumNS / h.Hist.Count
			fmt.Fprintf(w, "  %-20s n=%-9d min=%-12d mean=%-12d max=%d\n",
				h.Name, h.Hist.Count, h.Hist.Min, mean, h.Hist.Max)
		}
	}
}

// renderSweep prints one summary row per labelled run.
func renderSweep(w *os.File, path string, s *prof.SweepReport) {
	fmt.Fprintf(w, "sweep %s — %d runs (render one fully with -run <label>)\n\n", path, len(s.Runs))
	fmt.Fprintf(w, "  %-36s %10s %8s %8s %8s %8s\n", "run", "quanta", "fast", "compute", "wait", "barrier")
	for _, sr := range s.Runs {
		r := sr.Report
		t := r.Totals
		attributed := t.ComputeNS + t.IdleNS + t.WaitNS + t.RoutingNS + t.BarrierNS
		fmt.Fprintf(w, "  %-36s %10d %8s %8s %8s %8s\n", sr.Label, r.Quanta,
			strings.TrimSpace(pct(r.Engagement.EligibleQuanta, r.Quanta)),
			strings.TrimSpace(pct(t.ComputeNS, attributed)),
			strings.TrimSpace(pct(t.WaitNS, attributed)),
			strings.TrimSpace(pct(t.BarrierNS, attributed)))
	}
}

func diff(pathA, pathB string) error {
	singleA, sweepA, err := load(pathA)
	if err != nil {
		return err
	}
	singleB, sweepB, err := load(pathB)
	if err != nil {
		return err
	}
	switch {
	case singleA != nil && singleB != nil:
		diffReports(os.Stdout, pathA, pathB, singleA, singleB)
		return nil
	case sweepA != nil && sweepB != nil:
		return diffSweeps(os.Stdout, pathA, pathB, sweepA, sweepB)
	default:
		return fmt.Errorf("cannot diff a single report against a sweep (%s vs %s)", pathA, pathB)
	}
}

func delta(name string, a, b int64, asDur bool) string {
	if a == b {
		return ""
	}
	show := func(v int64) string {
		if asDur {
			return dur(v)
		}
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("  %-22s %14s -> %-14s (%+d)\n", name, show(a), show(b), b-a)
}

func diffReports(w *os.File, nameA, nameB string, a, b *prof.Report) {
	fmt.Fprintf(w, "diff %s -> %s\n", nameA, nameB)
	var out strings.Builder
	out.WriteString(delta("quanta", a.Quanta, b.Quanta, false))
	out.WriteString(delta("packets", a.Packets, b.Packets, false))
	out.WriteString(delta("stragglers", a.Stragglers, b.Stragglers, false))
	out.WriteString(delta("guest", a.GuestNS, b.GuestNS, true))
	out.WriteString(delta("host", a.HostNS, b.HostNS, true))
	out.WriteString(delta("lookahead", a.LookaheadNS, b.LookaheadNS, true))
	out.WriteString(delta("eligible quanta", a.Engagement.EligibleQuanta, b.Engagement.EligibleQuanta, false))
	out.WriteString(delta("eligible host", a.Engagement.EligibleHostNS, b.Engagement.EligibleHostNS, true))
	out.WriteString(delta("partial quanta", a.Engagement.PartialQuanta, b.Engagement.PartialQuanta, false))
	out.WriteString(delta("partial host", a.Engagement.PartialHostNS, b.Engagement.PartialHostNS, true))
	out.WriteString(delta("fast node-quanta", a.Engagement.FastNodeQuanta, b.Engagement.FastNodeQuanta, false))
	out.WriteString(delta("compute", a.Totals.ComputeNS, b.Totals.ComputeNS, true))
	out.WriteString(delta("idle", a.Totals.IdleNS, b.Totals.IdleNS, true))
	out.WriteString(delta("barrier wait", a.Totals.WaitNS, b.Totals.WaitNS, true))
	out.WriteString(delta("routing", a.Totals.RoutingNS, b.Totals.RoutingNS, true))
	out.WriteString(delta("barrier cost", a.Totals.BarrierNS, b.Totals.BarrierNS, true))
	diffCauses(&out, a, b)
	diffPartitions(&out, a, b)
	diffLinks(&out, a, b)
	if out.Len() == 0 {
		fmt.Fprintln(w, "  reports are equivalent")
		return
	}
	fmt.Fprint(w, out.String())
}

func diffCauses(out *strings.Builder, a, b *prof.Report) {
	counts := func(r *prof.Report) map[string]int64 {
		m := make(map[string]int64, len(r.Engagement.Causes))
		for _, c := range r.Engagement.Causes {
			m[c.Cause] = c.Quanta
		}
		return m
	}
	ca, cb := counts(a), counts(b)
	names := make([]string, 0, len(ca)+len(cb))
	//simlint:maporder keys are collected then sorted before rendering
	for n := range ca {
		names = append(names, n)
	}
	//simlint:maporder keys are collected then sorted before rendering
	for n := range cb {
		if _, ok := ca[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		out.WriteString(delta("cause "+n, ca[n], cb[n], false))
	}
}

// diffPartitions compares the lookahead partition structure level by level:
// a quantum-policy or topology change shows up as levels appearing,
// vanishing, or shifting quanta between structures.
func diffPartitions(out *strings.Builder, a, b *prof.Report) {
	index := func(r *prof.Report) map[int64]prof.PartitionLevel {
		m := make(map[int64]prof.PartitionLevel, len(r.Partitions))
		for _, lv := range r.Partitions {
			m[lv.MaxTightLatNS] = lv
		}
		return m
	}
	ia, ib := index(a), index(b)
	levels := make([]int64, 0, len(ia)+len(ib))
	//simlint:maporder keys are collected then sorted before rendering
	for lv := range ia {
		levels = append(levels, lv)
	}
	//simlint:maporder keys are collected then sorted before rendering
	for lv := range ib {
		if _, ok := ia[lv]; !ok {
			levels = append(levels, lv)
		}
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	show := func(lv prof.PartitionLevel) string {
		return fmt.Sprintf("%d partitions (%d tight, %d fast nodes), %d quanta",
			lv.Partitions, lv.TightPartitions, lv.FastNodes, lv.Quanta)
	}
	for _, l := range levels {
		la, inA := ia[l]
		lb, inB := ib[l]
		name := fmt.Sprintf("partition level %s", dur(l))
		switch {
		case inA && !inB:
			fmt.Fprintf(out, "  %-22s only in first: %s\n", name, show(la))
		case !inA && inB:
			fmt.Fprintf(out, "  %-22s only in second: %s\n", name, show(lb))
		case !partitionLevelsEqual(la, lb):
			fmt.Fprintf(out, "  %-22s %s -> %s\n", name, show(la), show(lb))
		}
	}
}

// partitionLevelsEqual compares everything the diff renders (the truncated
// link ranking is static per level and elided).
func partitionLevelsEqual(a, b prof.PartitionLevel) bool {
	return a.Partitions == b.Partitions && a.TightPartitions == b.TightPartitions &&
		a.FastNodes == b.FastNodes && a.Quanta == b.Quanta && a.TightLinkCount == b.TightLinkCount
}

// diffLinks reports per-link minimum-slack movement, the signal that a
// topology or traffic change tightened or relaxed the lookahead headroom.
func diffLinks(out *strings.Builder, a, b *prof.Report) {
	type slack struct {
		val int64
		ok  bool
	}
	index := func(r *prof.Report) map[[2]int]slack {
		m := make(map[[2]int]slack, len(r.Links))
		for _, l := range r.Links {
			m[[2]int{l.Src, l.Dst}] = slack{val: l.SlackMinNS, ok: true}
		}
		return m
	}
	ia, ib := index(a), index(b)
	keys := make([][2]int, 0, len(ia)+len(ib))
	//simlint:maporder keys are collected then sorted before rendering
	for k := range ia {
		keys = append(keys, k)
	}
	//simlint:maporder keys are collected then sorted before rendering
	for k := range ib {
		if _, ok := ia[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	// Render every change first, then truncate, so the elision line can
	// state exactly how many rows it dropped — and never appears when the
	// change count happens to equal -top.
	var lines []string
	for _, k := range keys {
		sa, sb := ia[k], ib[k]
		switch {
		case sa.ok && !sb.ok:
			lines = append(lines, fmt.Sprintf("  link %-18s only in first (min slack %s)\n", prof.LinkName(k[0], k[1]), dur(sa.val)))
		case !sa.ok && sb.ok:
			lines = append(lines, fmt.Sprintf("  link %-18s only in second (min slack %s)\n", prof.LinkName(k[0], k[1]), dur(sb.val)))
		case sa.val != sb.val:
			lines = append(lines, fmt.Sprintf("  link %-18s min slack %s -> %s\n", prof.LinkName(k[0], k[1]), dur(sa.val), dur(sb.val)))
		}
	}
	for i, ln := range lines {
		if i == *topFlag && len(lines) > *topFlag {
			fmt.Fprintf(out, "  … %d further link changes elided (-top %d)\n", len(lines)-*topFlag, *topFlag)
			break
		}
		out.WriteString(ln)
	}
}

func diffSweeps(w *os.File, nameA, nameB string, a, b *prof.SweepReport) error {
	fmt.Fprintf(w, "diff sweeps %s -> %s\n", nameA, nameB)
	ia := make(map[string]*prof.Report, len(a.Runs))
	for _, r := range a.Runs {
		ia[r.Label] = r.Report
	}
	matched := false
	for _, rb := range b.Runs {
		ra, ok := ia[rb.Label]
		if !ok {
			fmt.Fprintf(w, "run %q only in second\n", rb.Label)
			continue
		}
		matched = true
		diffReports(w, nameA+" :: "+rb.Label, nameB+" :: "+rb.Label, ra, rb.Report)
		delete(ia, rb.Label)
	}
	for _, r := range a.Runs {
		if _, still := ia[r.Label]; still {
			fmt.Fprintf(w, "run %q only in first\n", r.Label)
		}
	}
	if !matched {
		return fmt.Errorf("no labels in common")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
