// Command paperfigs regenerates every table and figure of the paper's
// evaluation (Figures 6–9 and the three Section 6 scale-out tables), plus
// the ablation sweeps listed in DESIGN.md.
//
//	paperfigs -fig all            # everything at full scale (minutes)
//	paperfigs -fig 6 -scale 0.25  # a quick quarter-scale Figure 6
//	paperfigs -fig 9a -nodes 64   # the EP scale-out case study
//
// Absolute numbers depend on the calibrated host model (see EXPERIMENTS.md);
// the paper-validated properties are the orderings and crossovers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"clustersim/internal/experiments"
	"clustersim/internal/prof"
	"clustersim/internal/simtime"
	"clustersim/internal/trace"
	"clustersim/internal/workloads"
)

// workloadsAlias keeps the sampling table loop tidy.
type workloadsAlias = workloads.Workload

var (
	figFlag     = flag.String("fig", "all", "which artifact: 6, 7, 8, 9, 9a, 9b, 9c, ablation, host, oracle, optimistic, sampling, extras, scaling, faults, all")
	scaleFlag   = flag.Float64("scale", 1.0, "workload compute scale factor (0.25 for a quick look)")
	nodesFlag   = flag.Int("nodes", 64, "node count for the Figure 9 scale-out studies")
	widthFlag   = flag.Int("width", 100, "chart width in columns")
	csvFlag     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
	workersFlag = flag.Int("workers", 0, "concurrent simulations per experiment grid (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
	intraFlag   = flag.Int("intra-workers", 0, "intra-quantum engine workers: ground-truth quanta (Q ≤ min network latency) step their nodes on this many goroutines; 0 = classic sequential engine; results are identical for any value")
	cacheFlag   = flag.Bool("baseline-cache", true, "memoize ground-truth (Q=1µs) runs across figures and tables so each distinct baseline is simulated once")
	cpuProfFlag = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfFlag = flag.String("memprofile", "", "write a heap profile to this file at exit")
	seedFlag    = flag.Uint64("fault-seed", 1, "seed for the fault-injection plans of the faults study")
	reportFlag  = flag.String("report", "", "write a sync-overhead attribution sweep (one labelled report per run) here as JSON, plus a .links.csv sidecar; inspect with simprof")
)

func main() {
	flag.Parse()
	if err := withProfiles(*cpuProfFlag, *memProfFlag, run); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

// withProfiles brackets f with the optional pprof captures: CPU samples over
// f's whole run, and a post-GC heap snapshot at exit.
func withProfiles(cpu, mem string, f func() error) error {
	if cpu != "" {
		pf, err := os.Create(cpu)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := f()
	if mem != "" {
		mf, merr := os.Create(mem)
		if merr != nil {
			if err == nil {
				err = merr
			}
			return err
		}
		defer mf.Close()
		runtime.GC()
		if perr := pprof.WriteHeapProfile(mf); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

func run() error {
	which := strings.ToLower(*figFlag)
	// A typoed -fig used to match none of the dispatch arms and exit 0 having
	// printed nothing, which reads like a hang or an empty study. Reject it
	// (and nonsense scale factors) up front with the valid vocabulary, before
	// the cache-stats and report-writer defers attach.
	switch which {
	case "6", "7", "8", "9", "9a", "9b", "9c", "ablation", "host", "oracle",
		"optimistic", "sampling", "extras", "scaling", "faults", "all":
	default:
		return fmt.Errorf("unknown -fig %q (want 6, 7, 8, 9, 9a, 9b, 9c, ablation, host, oracle, optimistic, sampling, extras, scaling, faults, or all)", *figFlag)
	}
	if *scaleFlag <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", *scaleFlag)
	}
	if *nodesFlag < 1 {
		return fmt.Errorf("-nodes must be >= 1, got %d", *nodesFlag)
	}
	env := experiments.DefaultEnv()
	env.Workers = *workersFlag
	env.IntraWorkers = *intraFlag
	if *cacheFlag {
		env.Baselines = experiments.NewBaselineCache()
		defer func() {
			st := env.Baselines.Stats()
			fmt.Fprintf(os.Stderr, "paperfigs: baseline cache: %d baselines simulated, %d reused, %d trace upgrades\n",
				st.Misses, st.Hits, st.Upgrades)
		}()
	}
	if *reportFlag != "" {
		env.Profiles = &prof.Sweep{}
		defer func() {
			if err := env.Profiles.Report().WriteFiles(*reportFlag); err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: writing %s: %v\n", *reportFlag, err)
				return
			}
			fmt.Fprintf(os.Stderr, "paperfigs: profile sweep written to %s\n", *reportFlag)
		}()
	}
	all := which == "all"

	var nasRows, namdRows []experiments.AggRow

	if all || which == "6" || which == "8" {
		rows, _, err := experiments.Fig6(env, *scaleFlag, nil)
		if err != nil {
			return err
		}
		nasRows = rows
		printAgg("Figure 6 — NAS kernels (harmonic mean over EP,IS,CG,MG,LU)", rows)
		if *csvFlag != "" {
			if err := writeCSV(*csvFlag, "fig6_nas.csv", aggCSV(rows)); err != nil {
				return err
			}
		}
	}
	if all || which == "7" || which == "8" {
		rows, _, err := experiments.Fig7(env, *scaleFlag, nil)
		if err != nil {
			return err
		}
		namdRows = rows
		printAgg("Figure 7 — NAMD", rows)
		if *csvFlag != "" {
			if err := writeCSV(*csvFlag, "fig7_namd.csv", aggCSV(rows)); err != nil {
				return err
			}
		}
	}
	if all || which == "8" {
		out := experiments.Fig8(nasRows, namdRows, 8)
		printFig8(out)
		if *csvFlag != "" {
			if err := writeCSV(*csvFlag, "fig8_pareto.csv", fig8CSV(out)); err != nil {
				return err
			}
		}
	}
	if all || which == "9" || which == "9a" || which == "9b" || which == "9c" {
		outs, err := fig9Selection(env, which)
		if err != nil {
			return err
		}
		for _, out := range outs {
			printScaleOut(out)
			if *csvFlag != "" {
				name := fmt.Sprintf("fig9_%s.csv", strings.ReplaceAll(out.Benchmark, ".", "_"))
				if err := writeCSV(*csvFlag, name, scaleOutCSV(out)); err != nil {
					return err
				}
			}
		}
	}
	if all || which == "ablation" {
		if err := printIncDecAblation(env); err != nil {
			return err
		}
	}
	if all || which == "host" {
		if err := printHostAblation(env); err != nil {
			return err
		}
	}
	if all || which == "oracle" {
		if err := printOracleAblation(env); err != nil {
			return err
		}
	}
	if all || which == "optimistic" {
		if err := printOptimistic(env); err != nil {
			return err
		}
	}
	if all || which == "sampling" {
		if err := printSampling(env); err != nil {
			return err
		}
	}
	if all || which == "extras" {
		if err := printExtras(env); err != nil {
			return err
		}
	}
	if all || which == "scaling" {
		if err := printScaling(env); err != nil {
			return err
		}
	}
	if all || which == "faults" {
		if err := printFaultSweep(env); err != nil {
			return err
		}
	}
	return nil
}

// printFaultSweep compares adaptive and fixed quanta on a degrading network:
// a reliable-transport workload under deterministic loss injection sweeping
// 0% → 5%. Retransmission timers under loss add traffic that holds the
// adaptive quantum down, while a fixed quantum just accumulates stragglers.
func printFaultSweep(env experiments.Env) error {
	title := "Study A9 — adaptive vs fixed quanta under frame loss (reliable transport, 8 nodes)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	w := workloads.ReliablePhases(4, simtime.Duration(float64(300*simtime.Microsecond)**scaleFlag), 64<<10)
	specs := []experiments.Spec{
		experiments.FixedSpec("100", 100*simtime.Microsecond),
		experiments.FixedSpec("1k", 1000*simtime.Microsecond),
		experiments.DynSpec("dyn 1k 1.03:0.02", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02),
	}
	rows, err := experiments.FaultSweep(env, w, 8, specs, []float64{0, 0.5, 1, 2, 3, 5}, *seedFlag)
	if err != nil {
		return err
	}
	if *csvFlag != "" {
		if err := writeCSV(*csvFlag, "faults_sweep.csv", faultCSV(rows)); err != nil {
			return err
		}
	}
	fmt.Printf("  %-8s %-20s %12s %16s %8s %12s %10s\n",
		"loss", "config", "mean Q", "stragglers/del", "drops", "retransmits", "timeouts")
	last := -1.0
	for _, r := range rows {
		if r.LossPct != last {
			last = r.LossPct
			fmt.Println()
		}
		fmt.Printf("  %-7s%% %-20s %12v %16.3f %8d %12d %10d\n",
			strconv.FormatFloat(r.LossPct, 'g', 3, 64), r.Config, r.MeanQ,
			r.StragglerRate, r.Dropped, r.Retransmits, r.Timeouts)
	}
	fmt.Println("\n  (every decision is a pure function of the fault seed — rerun with the same")
	fmt.Println("  -fault-seed to replay a sweep bit-identically)")
	return nil
}

// printScaling extends the paper's closing observation into a measured
// curve: adaptive effectiveness versus cluster size.
func printScaling(env experiments.Env) error {
	title := "Study A8 — adaptive effectiveness vs cluster size (NAMD, dyn 1k 1.03:0.02)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	rows, err := experiments.ScalingCurve(env, experiments.NAMDWorkload(*scaleFlag),
		[]int{2, 4, 8, 16, 32, 64},
		experiments.DynSpec("dyn 1k 1.03:0.02", 1*simtime.Microsecond, 1000*simtime.Microsecond, 1.03, 0.02))
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %14s %10s %12s %16s\n", "nodes", "accuracy error", "speedup", "mean Q", "packets/guest-ms")
	for _, r := range rows {
		fmt.Printf("  %-6d %13.2f%% %9.1fx %12v %16.0f\n", r.Nodes, r.AccErr*100, r.Speedup, r.MeanQ, r.PacketsPerGuestMS)
	}
	fmt.Println("  (traffic density grows with scale, pinning the quantum and eroding the speedup)")
	return nil
}

// printExtras evaluates the two NAS kernels the paper had to leave out
// (§4: only benchmarks that "could run for 2, 4 and 8-node clusters" were
// selected) under the standard configurations, on the node counts their
// decompositions allow.
func printExtras(env experiments.Env) error {
	title := "Extension — NAS FT and BT (kernels the paper could not run)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))

	ft := workloads.DefaultFT()
	ft.SerialComputePerIter = ft.SerialComputePerIter.Scale(*scaleFlag)
	bt := workloads.DefaultBT()
	bt.SerialComputePerStep = bt.SerialComputePerStep.Scale(*scaleFlag)

	ftCells, err := experiments.Grid(env, []workloads.Workload{workloads.FT(ft)}, []int{2, 4, 8}, experiments.StandardSpecs())
	if err != nil {
		return err
	}
	btCells, err := experiments.Grid(env, []workloads.Workload{workloads.BT(bt)}, []int{4, 16}, experiments.StandardSpecs())
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %-6s %-20s %14s %10s\n", "kernel", "nodes", "config", "accuracy error", "speedup")
	for _, c := range append(ftCells, btCells...) {
		fmt.Printf("  %-8s %-6d %-20s %13.2f%% %9.1fx\n", c.Workload, c.Nodes, c.Config, c.AccErr*100, c.Speedup)
	}
	return nil
}

func printSampling(env experiments.Env) error {
	title := "Study A7 — combining adaptive quanta with node sampling (§7 future work; 8 nodes)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	for _, w := range []struct {
		name string
		wl   workloadsAlias
	}{
		{"NAS-EP (compute-bound)", experiments.NASSuite(*scaleFlag)[0]},
		{"NAMD (traffic-bound)", experiments.NAMDWorkload(*scaleFlag)},
	} {
		rows, err := experiments.SamplingStudy(env, w.wl, 8, experiments.DefaultSampling())
		if err != nil {
			return err
		}
		fmt.Printf("\n  %s:\n", w.name)
		fmt.Printf("  %-22s %14s %10s\n", "config", "accuracy error", "speedup")
		for _, r := range rows {
			fmt.Printf("  %-22s %13.2f%% %9.1fx\n", r.Label, r.AccErr*100, r.Speedup)
		}
	}
	fmt.Println("\n  (speedups versus the unsampled Q=1µs ground truth. Sampling alone is useless")
	fmt.Println("  — at Q=1µs the barrier dominates — but multiplies once the adaptive quantum")
	fmt.Println("  has removed the synchronization overhead, confirming the paper's §7 intuition.)")
	return nil
}

func printOracleAblation(env experiments.Env) error {
	title := "Ablation A4 — Algorithm 1 vs perfect-lookahead oracle (NAMD, 8 nodes)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	rows, err := experiments.AblationOracle(env, experiments.NAMDWorkload(*scaleFlag), 8,
		1*simtime.Microsecond, 1000*simtime.Microsecond)
	if err != nil {
		return err
	}
	fmt.Printf("  %-16s %14s %10s %12s\n", "policy", "accuracy error", "speedup", "mean Q")
	for _, r := range rows {
		fmt.Printf("  %-16s %13.2f%% %9.1fx %12v\n", r.Label, r.AccErr*100, r.Speedup, r.MeanQ)
	}
	fmt.Println("  (the oracle knows every future send — unobtainable in practice, per §3)")
	return nil
}

func printOptimistic(env experiments.Env) error {
	title := "Analysis A6 — conservative quanta vs optimistic checkpoint/rollback (§3)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	rows, err := experiments.OptimisticEstimate(env, experiments.NASSuite(*scaleFlag)[1], 8,
		[]experiments.Spec{
			experiments.FixedSpec("10", 10*simtime.Microsecond),
			experiments.FixedSpec("100", 100*simtime.Microsecond),
			experiments.FixedSpec("1k", 1000*simtime.Microsecond),
		}, experiments.PaperOptimistic())
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %14s %12s %18s %10s\n", "quantum", "quantum host", "stragglers", "optimistic host", "ratio")
	for _, r := range rows {
		fmt.Printf("  %-8s %14v %12d %18v %9.0fx\n",
			r.Config, r.QuantumHost, r.Stragglers, r.OptimisticHost, r.Ratio)
	}
	fmt.Println("  (ratio > 1: the paper's choice of conservative synchronization wins)")
	return nil
}

func fig9Selection(env experiments.Env, which string) ([]*experiments.ScaleOut, error) {
	outs, err := experiments.Fig9(env, *scaleFlag, *nodesFlag, *widthFlag)
	if err != nil {
		return nil, err
	}
	switch which {
	case "9a":
		return outs[:1], nil
	case "9b":
		return outs[1:2], nil
	case "9c":
		return outs[2:], nil
	default:
		return outs, nil
	}
}

func printAgg(title string, rows []experiments.AggRow) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Nodes < rows[j].Nodes })
	nodes := -1
	for _, r := range rows {
		if r.Nodes != nodes {
			nodes = r.Nodes
			fmt.Printf("\n  %d processors:\n", nodes)
			fmt.Printf("  %-22s %14s %10s\n", "config", "accuracy error", "speedup")
		}
		fmt.Printf("  %-22s %13.2f%% %9.1fx\n", r.Config, r.AccErr*100, r.Speedup)
	}
}

func printFig8(out experiments.Fig8Out) {
	title := "Figure 8 — Pareto optimality (8 nodes)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	onFront := map[string]bool{}
	for _, p := range out.Front {
		onFront[p.Name] = true
	}
	sorted := out.Points
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Err < sorted[j].Err })
	fmt.Printf("  %-28s %14s %10s %s\n", "point", "accuracy error", "speedup", "pareto")
	for _, p := range sorted {
		mark := ""
		if onFront[p.Name] {
			mark = "◆ on front"
		} else if d, ok := out.NearFront[p.Name]; ok {
			mark = fmt.Sprintf("near front (distance %.3f)", d)
		}
		fmt.Printf("  %-28s %13.2f%% %9.1fx %s\n", p.Name, p.Err*100, p.Speedup, mark)
	}
	fmt.Println()
	fmt.Print(trace.ParetoChart(sorted, *widthFlag-20, 14))
}

func printScaleOut(out *experiments.ScaleOut) {
	title := fmt.Sprintf("Figure 9 / Section 6 — %s at %d nodes", out.Benchmark, out.Nodes)
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println()
	fmt.Print(out.TrafficChart)
	fmt.Println()
	fmt.Printf("  %-24s %18s %16s %16s\n", "quantum", "acceleration vs 1µs", "accuracy error", "sim. exec ratio")
	for _, r := range out.Rows {
		fmt.Printf("  %-24s %17.1fx %15.2f%% %15.2fx\n", r.Config, r.Accel, r.AccErr*100, r.ExecRatio)
	}
	fmt.Printf("\n  adaptive run settled at mean quantum %v\n\n", out.AdaptiveMeanQ)
	var labels []string
	for l := range out.SpeedupCharts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Print(out.SpeedupCharts[l])
		fmt.Println()
	}
}

func printIncDecAblation(env experiments.Env) error {
	title := "Ablation A1 — Algorithm 1 inc/dec sensitivity (NAS-IS, 8 nodes)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	rows, err := experiments.AblationIncDec(env, experiments.NASSuite(*scaleFlag)[1], 8,
		[]float64{1.01, 1.03, 1.05, 1.10, 1.20},
		[]float64{0.02, 0.1, 0.5, 0.9})
	if err != nil {
		return err
	}
	if *csvFlag != "" {
		if err := writeCSV(*csvFlag, "ablation_incdec.csv", ablationCSV(rows)); err != nil {
			return err
		}
	}
	fmt.Printf("  %-14s %14s %10s %12s\n", "inc:dec", "accuracy error", "speedup", "mean Q")
	for _, r := range rows {
		fmt.Printf("  %-14s %13.2f%% %9.1fx %12v\n", r.Label, r.AccErr*100, r.Speedup, r.MeanQ)
	}
	return nil
}

func printHostAblation(env experiments.Env) error {
	title := "Ablation A3 — host-model sensitivity (NAS-EP, 8 nodes, speedup of Q=1000µs)"
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
	rows, err := experiments.AblationHost(env, experiments.NASSuite(*scaleFlag)[0], 8,
		[]simtime.Duration{100 * simtime.Microsecond, 400 * simtime.Microsecond, 1300 * simtime.Microsecond, 4 * simtime.Millisecond},
		[]float64{0, 0.22, 0.5})
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].BarrierCost != rows[j].BarrierCost {
			return rows[i].BarrierCost < rows[j].BarrierCost
		}
		return rows[i].Jitter < rows[j].Jitter
	})
	fmt.Printf("  %-28s %14s\n", "host", "Q=1000µs speedup")
	for _, r := range rows {
		fmt.Printf("  %-28s %13.1fx\n", r.Label, r.Speedup1k)
	}
	return nil
}
