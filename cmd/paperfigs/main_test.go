package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the test is independent of the package's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// A typoed -fig used to fall through every dispatch arm and exit 0 with no
// output at all; these flags must instead die with a one-line "paperfigs: ..."
// error before any simulation (or cache/report bookkeeping) starts.
func TestCLIFlagErrors(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "paperfigs")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/paperfigs")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/paperfigs: %v\n%s", err, out)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown fig", []string{"-fig", "10"}, `unknown -fig "10"`},
		{"unknown fig word", []string{"-fig", "everything"}, "want 6, 7, 8, 9"},
		{"zero scale", []string{"-fig", "6", "-scale", "0"}, "-scale must be positive"},
		{"negative scale", []string{"-fig", "7", "-scale", "-0.5"}, "-scale must be positive"},
		{"zero nodes", []string{"-fig", "9a", "-nodes", "0"}, "-nodes must be >= 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("paperfigs %v succeeded, want error:\n%s", c.args, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 1 {
				t.Errorf("want exit code 1, got %v", err)
			}
			text := strings.TrimSpace(string(out))
			if !strings.Contains(text, c.want) {
				t.Errorf("output %q does not mention %q", text, c.want)
			}
			if !strings.HasPrefix(text, "paperfigs:") {
				t.Errorf("error line %q lacks the paperfigs: prefix", text)
			}
			if strings.Count(text, "\n") > 0 {
				t.Errorf("error output is multi-line, want one usable line:\n%s", text)
			}
		})
	}
}
