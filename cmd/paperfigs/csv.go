package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"clustersim/internal/experiments"
)

// writeCSV writes rows (first row = header) to dir/name, creating dir.
func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// aggCSV renders Figure 6/7 rows.
func aggCSV(rows []experiments.AggRow) [][]string {
	out := [][]string{{"config", "nodes", "accuracy_error", "speedup"}}
	for _, r := range rows {
		out = append(out, []string{r.Config, strconv.Itoa(r.Nodes), f64(r.AccErr), f64(r.Speedup)})
	}
	return out
}

// fig8CSV renders the Pareto points.
func fig8CSV(out experiments.Fig8Out) [][]string {
	front := map[string]bool{}
	for _, p := range out.Front {
		front[p.Name] = true
	}
	rows := [][]string{{"point", "accuracy_error", "speedup", "on_front", "front_distance"}}
	for _, p := range out.Points {
		dist := ""
		if d, ok := out.NearFront[p.Name]; ok {
			dist = f64(d)
		}
		rows = append(rows, []string{p.Name, f64(p.Err), f64(p.Speedup),
			strconv.FormatBool(front[p.Name]), dist})
	}
	return rows
}

// scaleOutCSV renders one Figure 9 table.
func scaleOutCSV(so *experiments.ScaleOut) [][]string {
	rows := [][]string{{"config", "acceleration", "accuracy_error", "exec_ratio"}}
	for _, r := range so.Rows {
		rows = append(rows, []string{r.Config, f64(r.Accel), f64(r.AccErr), f64(r.ExecRatio)})
	}
	return rows
}

// faultCSV renders the loss-sweep study.
func faultCSV(rows []experiments.FaultRow) [][]string {
	out := [][]string{{"loss_pct", "config", "mean_q_us", "straggler_rate", "dropped", "duplicated", "retransmits", "timeouts"}}
	for _, r := range rows {
		out = append(out, []string{f64(r.LossPct), r.Config,
			fmt.Sprintf("%.3f", r.MeanQ.Microseconds()), f64(r.StragglerRate),
			strconv.Itoa(r.Dropped), strconv.Itoa(r.Duplicated),
			strconv.Itoa(r.Retransmits), strconv.Itoa(r.Timeouts)})
	}
	return out
}

// ablationCSV renders a sensitivity sweep.
func ablationCSV(rows []experiments.AblationRow) [][]string {
	out := [][]string{{"config", "accuracy_error", "speedup", "mean_q_us"}}
	for _, r := range rows {
		out = append(out, []string{r.Label, f64(r.AccErr), f64(r.Speedup),
			fmt.Sprintf("%.3f", r.MeanQ.Microseconds())})
	}
	return out
}
