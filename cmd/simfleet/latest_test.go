package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLatestBench(t *testing.T) {
	cases := []struct {
		name  string
		names []string
		want  string
		ok    bool
	}{
		{
			name:  "numeric not lexicographic",
			names: []string{"BENCH_PR9.json", "BENCH_PR10.json", "BENCH_PR2.json"},
			want:  "BENCH_PR10.json",
			ok:    true,
		},
		{
			name:  "repo-shaped set",
			names: []string{"BENCH_PR2.json", "BENCH_PR3.json", "BENCH_PR7.json", "BENCH_PR8.json"},
			want:  "BENCH_PR8.json",
			ok:    true,
		},
		{
			name: "non-matching names ignored",
			names: []string{
				"BENCH_PR3.json",
				"BENCH_PR4.json.bak",    // wrong suffix
				"BENCH_PRX.json",        // no number
				"bench_pr9.json",        // wrong case
				"BENCH_PR10.json.patch", // trailing junk
				"README.md",
			},
			want: "BENCH_PR3.json",
			ok:   true,
		},
		{
			name:  "no candidates",
			names: []string{"golden.json", "manifest.json"},
			ok:    false,
		},
		{
			name:  "empty set",
			names: nil,
			ok:    false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := latestBench(tc.names)
			if ok != tc.ok || got != tc.want {
				t.Errorf("latestBench(%v) = %q, %v; want %q, %v", tc.names, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestResolveBenchArg(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR9.json", "BENCH_PR11.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, err := resolveBenchArg("latest", dir)
	if err != nil {
		t.Fatalf("resolveBenchArg(latest): %v", err)
	}
	if got != filepath.Join(dir, "BENCH_PR11.json") {
		t.Errorf("resolveBenchArg(latest) = %q, want %s", got, filepath.Join(dir, "BENCH_PR11.json"))
	}

	// Explicit paths pass through untouched, even ones that don't exist.
	if got, err := resolveBenchArg("custom/path.json", dir); err != nil || got != "custom/path.json" {
		t.Errorf("resolveBenchArg(custom/path.json) = %q, %v; want pass-through", got, err)
	}

	if _, err := resolveBenchArg("latest", t.TempDir()); err == nil {
		t.Error("resolveBenchArg(latest) over an empty dir must fail, got nil error")
	}
}
