// Benchmark-trajectory selection: `-bench latest` resolves to the newest
// BENCH_PR<n>.json in the working directory, so CI stops hard-coding a file
// name that goes stale every time a PR records a new trajectory.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// benchNameRE matches the committed trajectory files. The PR number is the
// only variable part; everything else is fixed by convention.
var benchNameRE = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBench picks the BENCH_PR<n>.json with the highest PR number from
// names, comparing n numerically so BENCH_PR10.json beats BENCH_PR9.json
// (lexicographic order would not). Non-matching names are ignored. Returns
// false when no name matches.
func latestBench(names []string) (string, bool) {
	best, bestN := "", -1
	for _, name := range names {
		m := benchNameRE.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = name, n
	}
	return best, bestN >= 0
}

// resolveBenchArg maps the -bench flag value onto a trajectory path. The
// sentinel "latest" scans dir (the repo root in CI) for the newest
// BENCH_PR<n>.json; any other value is used verbatim.
func resolveBenchArg(arg, dir string) (string, error) {
	if arg != "latest" {
		return arg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("scanning for BENCH_PR<n>.json: %v", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	name, ok := latestBench(names)
	if !ok {
		return "", fmt.Errorf("-bench latest: no BENCH_PR<n>.json found in %s", dir)
	}
	return filepath.Join(dir, name), nil
}
