package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"clustersim/internal/experiments"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod, so the test is independent of the package's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// buildSimfleet compiles the simfleet binary once per test.
func buildSimfleet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simfleet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/simfleet")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/simfleet: %v\n%s", err, out)
	}
	return bin
}

const testManifest = `{
  "schema": "clustersim-fleet-manifest/1",
  "scenarios": [
    {"name": "pp", "workload": "pingpong", "nodes": 2, "quantum": "2us", "max_guest": "5ms"},
    {"name": "ph", "workload": "phases", "nodes": 4, "scale": 0.02, "quantum": "20us", "max_guest": "10ms"}
  ]
}`

// The end-to-end loop: -update writes goldens, a re-run passes, a tampered
// golden fails with exit 1 and writes the -diff-out artifact naming the
// changed scenario.
func TestUpdateCheckTamperCycle(t *testing.T) {
	bin := buildSimfleet(t)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manifest, []byte(testManifest), 0o644); err != nil {
		t.Fatal(err)
	}

	if out, err := exec.Command(bin, "-manifest", manifest, "-update").CombinedOutput(); err != nil {
		t.Fatalf("-update: %v\n%s", err, out)
	}
	golden := filepath.Join(dir, "golden.json")
	if _, err := os.Stat(golden); err != nil {
		t.Fatalf("golden not written next to the manifest: %v", err)
	}

	out, err := exec.Command(bin, "-manifest", manifest).CombinedOutput()
	if err != nil {
		t.Fatalf("check after update failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fleet ok: 2 scenarios") {
		t.Errorf("check output %q lacks the ok summary", out)
	}

	// Tamper with one fingerprint: the check must fail, name the scenario,
	// and write the diff artifact.
	g, err := experiments.LoadGolden(golden)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Scenarios {
		if g.Scenarios[i].Name == "ph" {
			g.Scenarios[i].Fingerprint = strings.Repeat("0", 64)
		}
	}
	if err := os.WriteFile(golden, g.JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	diffPath := filepath.Join(dir, "diff.json")
	out, err = exec.Command(bin, "-manifest", manifest, "-diff-out", diffPath).CombinedOutput()
	if err == nil {
		t.Fatalf("check passed against a tampered golden:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("want exit code 1, got %v", err)
	}
	if !strings.Contains(string(out), "changed ph") {
		t.Errorf("failure output does not name the changed scenario:\n%s", out)
	}
	raw, rerr := os.ReadFile(diffPath)
	if rerr != nil {
		t.Fatalf("diff artifact not written: %v", rerr)
	}
	var d experiments.FleetDiff
	if jerr := json.Unmarshal(raw, &d); jerr != nil {
		t.Fatalf("diff artifact is not JSON: %v\n%s", jerr, raw)
	}
	if len(d.Changed) != 1 || d.Changed[0].Name != "ph" {
		t.Errorf("diff artifact changed = %+v, want exactly ph", d.Changed)
	}
}

// Error paths must be one-line and actionable, never panics.
func TestCLIErrors(t *testing.T) {
	bin := buildSimfleet(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": "clustersim-fleet-manifest/1", "scenarios": [
		{"name": "x", "workload": "wat", "nodes": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(ok, []byte(testManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no inputs", nil, "nothing to do"},
		{"missing manifest", []string{"-manifest", filepath.Join(dir, "nope.json")}, "no such file"},
		{"invalid manifest", []string{"-manifest", bad}, "unknown workload"},
		{"missing golden", []string{"-manifest", ok}, "-update"},
		{"bad tolerance", []string{"-bench", "x.json", "-bench-tolerance", "2"}, "tolerance"},
		{"missing bench file", []string{"-bench", filepath.Join(dir, "nope.json")}, "no such file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("command succeeded, want error:\n%s", out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("output %q does not mention %q", out, c.want)
			}
			if lines := strings.Count(strings.TrimSpace(string(out)), "\n"); lines > 2 {
				t.Errorf("error output is %d lines, want a short actionable message:\n%s", lines+1, out)
			}
		})
	}
}

// The committed fleet manifest must keep covering the claim surface: all
// three execution paths (classic is implicit — every scenario's worker
// matrix includes 0), both lookahead modes, and at least one fault plan.
func TestCommittedManifestCoverage(t *testing.T) {
	m, err := experiments.LoadManifest(filepath.Join(moduleRoot(t), "testdata", "fleet", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Scenarios) < 20 {
		t.Errorf("committed manifest has %d scenarios, the fleet promises >= 20", len(m.Scenarios))
	}
	var scalar, faulted int
	for _, sc := range m.Scenarios {
		if sc.Lookahead == "scalar" {
			scalar++
		}
		if sc.Faults != "" {
			faulted++
		}
		if len(sc.Workers) > 0 {
			t.Errorf("scenario %q overrides the worker matrix; committed scenarios must keep the {0,1,3} cross-check", sc.Name)
		}
	}
	if scalar == 0 {
		t.Error("no scenario pins lookahead=scalar")
	}
	if faulted == 0 {
		t.Error("no scenario carries a fault plan")
	}
}

// Running two hand-picked scenarios of the committed manifest must engage
// the paths their names promise: the ground-truth quantum engages the full
// fast path and the mixedwan geometry the graded partitioned path.
func TestCommittedManifestEngagesFastPaths(t *testing.T) {
	m, err := experiments.LoadManifest(filepath.Join(moduleRoot(t), "testdata", "fleet", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	pick := func(name string) *experiments.Manifest {
		for _, sc := range m.Scenarios {
			if sc.Name == name {
				return &experiments.Manifest{Schema: experiments.ManifestSchema, Scenarios: []experiments.Scenario{sc}}
			}
		}
		t.Fatalf("scenario %q missing from the committed manifest", name)
		return nil
	}
	full := experiments.RunFleet(pick("pingpong-ground-truth"), 1, nil)[0]
	if full.Err != nil {
		t.Fatal(full.Err)
	}
	if full.Stats.FastFullQuanta == 0 {
		t.Error("pingpong-ground-truth did not engage the full fast path")
	}
	graded := experiments.RunFleet(pick("uniform-graded-wan"), 1, nil)[0]
	if graded.Err != nil {
		t.Fatal(graded.Err)
	}
	if graded.Stats.FastPartialQuanta == 0 {
		t.Error("uniform-graded-wan did not engage the graded partitioned path")
	}
}

// The committed goldens must match what the committed manifest produces —
// the in-process version of the CI fleet-smoke gate, so `go test ./...`
// alone catches a stale golden.
func TestCommittedGoldensMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 26-scenario fleet")
	}
	root := moduleRoot(t)
	m, err := experiments.LoadManifest(filepath.Join(root, "testdata", "fleet", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := experiments.LoadGolden(filepath.Join(root, "testdata", "fleet", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	outcomes := experiments.RunFleet(m, 0, nil)
	if d := experiments.DiffGolden(outcomes, g); !d.Empty() {
		t.Errorf("fleet diverges from committed goldens (simfleet -update if intentional):\n%s", d.JSON())
	}
}
