// Command simfleet is the scenario regression fleet: it executes the
// declarative manifest of simulation scenarios in testdata/fleet/, computes
// a canonical fingerprint per scenario (Result/Stats/Quanta plus the prof
// report bytes, proven identical across Workers {0,1,3}), and diffs the
// fingerprints against the committed goldens. One command answers "did this
// PR change any simulated outcome it didn't mean to?" — the check the
// equivalence matrices of earlier PRs hand-rolled per change.
//
//	simfleet -manifest testdata/fleet/manifest.json            # check
//	simfleet -manifest testdata/fleet/manifest.json -update    # regenerate goldens
//	simfleet -bench latest -bench-tolerance 0.6                # perf gate
//
// `-bench latest` resolves to the newest committed BENCH_PR<n>.json
// (numeric PR order, so BENCH_PR10.json beats BENCH_PR9.json); an explicit
// path is used verbatim.
//
// A fingerprint mismatch exits 1 and, with -diff-out, writes a JSON diff
// artifact naming every changed/failed/missing scenario (CI uploads it).
// Intentional simulation changes regenerate goldens with -update and commit
// the diff alongside the change that caused it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"clustersim/internal/experiments"
)

var (
	manifestFlag = flag.String("manifest", "", "fleet manifest JSON (see internal/experiments.ParseManifest)")
	goldenFlag   = flag.String("golden", "", "golden fingerprint file; default golden.json next to the manifest")
	updateFlag   = flag.Bool("update", false, "rewrite the golden file from this run instead of diffing")
	poolFlag     = flag.Int("pool", 0, "scenarios run concurrently on this many goroutines; 0 = GOMAXPROCS")
	diffOutFlag  = flag.String("diff-out", "", "write the JSON fingerprint diff here when the fleet fails")
	verboseFlag  = flag.Bool("v", false, "print one line per finished scenario")

	benchFlag     = flag.String("bench", "", "benchmark trajectory JSON (BENCH_*.json), or \"latest\" for the newest BENCH_PR<n>.json in the working directory; re-runs the headline benchmarks and gates on regression")
	benchTolFlag  = flag.Float64("bench-tolerance", 0.6, "allowed fractional throughput regression vs the trajectory baseline (0.6 = fail below 40% of baseline; generous because shared hosts are noisy)")
	benchRepsFlag = flag.Int("bench-reps", 3, "measurement repetitions per benchmark; the best rep is compared")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	if *manifestFlag == "" && *benchFlag == "" {
		return fmt.Errorf("nothing to do: pass -manifest and/or -bench")
	}
	if *manifestFlag != "" {
		if err := runFleet(); err != nil {
			return err
		}
	}
	if *benchFlag != "" {
		path, err := resolveBenchArg(*benchFlag, ".")
		if err != nil {
			return err
		}
		if err := runBenchGate(path, *benchTolFlag, *benchRepsFlag); err != nil {
			return err
		}
	}
	return nil
}

func goldenPath() string {
	if *goldenFlag != "" {
		return *goldenFlag
	}
	return filepath.Join(filepath.Dir(*manifestFlag), "golden.json")
}

func runFleet() error {
	m, err := experiments.LoadManifest(*manifestFlag)
	if err != nil {
		return err
	}
	var progress func(experiments.ScenarioOutcome)
	if *verboseFlag {
		progress = func(o experiments.ScenarioOutcome) {
			switch {
			case o.Err != nil:
				fmt.Fprintf(os.Stderr, "fail %-28s %v\n", o.Name, o.Err)
			case o.Mismatch != "":
				fmt.Fprintf(os.Stderr, "fail %-28s %s\n", o.Name, o.Mismatch)
			default:
				fmt.Fprintf(os.Stderr, "ran  %-28s %s workers=%v\n", o.Name, o.Fingerprint[:12], o.Workers)
			}
		}
	}
	outcomes := experiments.RunFleet(m, *poolFlag, progress)

	if *updateFlag {
		g, err := experiments.BuildGolden(outcomes)
		if err != nil {
			return fmt.Errorf("refusing to write goldens: %v", err)
		}
		if err := os.WriteFile(goldenPath(), g.JSON(), 0o644); err != nil {
			return err
		}
		fmt.Printf("fleet: wrote %d fingerprints to %s\n", len(g.Scenarios), goldenPath())
		return nil
	}

	g, err := experiments.LoadGolden(goldenPath())
	if err != nil {
		return fmt.Errorf("%v (run with -update to create the golden file)", err)
	}
	d := experiments.DiffGolden(outcomes, g)
	if d.Empty() {
		fmt.Printf("fleet ok: %d scenarios match %s\n", len(outcomes), goldenPath())
		return nil
	}
	if *diffOutFlag != "" {
		if werr := os.WriteFile(*diffOutFlag, d.JSON(), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "simfleet: writing diff artifact: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "simfleet: diff artifact written to %s\n", *diffOutFlag)
		}
	}
	if d.EncodingChanged != "" {
		fmt.Fprintf(os.Stderr, "note %s\n", d.EncodingChanged)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(os.Stderr, "changed %-28s want %s got %s\n", c.Name, c.Want[:12], c.Got[:12])
	}
	for _, f := range d.Failed {
		fmt.Fprintf(os.Stderr, "failed  %-28s %s\n", f.Name, f.Reason)
	}
	for _, n := range d.Missing {
		fmt.Fprintf(os.Stderr, "missing %-28s not in golden (run -update)\n", n)
	}
	for _, n := range d.Extra {
		fmt.Fprintf(os.Stderr, "extra   %-28s in golden but not in manifest\n", n)
	}
	return fmt.Errorf("fleet: %d changed, %d failed, %d missing, %d extra (golden %s)",
		len(d.Changed), len(d.Failed), len(d.Missing), len(d.Extra), goldenPath())
}
