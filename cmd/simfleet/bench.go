// Benchmark-tolerance gate: re-run the headline benchmarks whose trajectory
// the BENCH_*.json files record and fail on large regressions. The gate
// compares quanta/s against the "after" column of the committed A/B pairs,
// with a deliberately generous tolerance: the measurement hosts are shared
// and noisy (BENCH_PR8.json records >2x run-to-run spread on one of them),
// so this catches "accidentally made the engine 3x slower", not 10% drifts.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"clustersim/internal/cluster"
	"clustersim/internal/guest"
	"clustersim/internal/host"
	"clustersim/internal/netmodel"
	"clustersim/internal/quantum"
	"clustersim/internal/simtime"
	"clustersim/internal/workloads"
)

// benchFile is the subset of the BENCH_*.json schema the gate reads; the
// prose fields (notes, speedups, allocation counts) are ignored.
type benchFile struct {
	PR        int `json:"pr"`
	Scenarios map[string]struct {
		Pairs [][2]float64 `json:"pairs_base_vs_new_quanta_per_s"`
	} `json:"scenarios"`
}

// headlineBenches maps trajectory scenario keys onto in-process
// re-measurements replicating the geometry of the go test benchmarks they
// were recorded from (fastpath_bench_test.go, parallel_bench_test.go).
// Returns total quanta simulated in one measurement unit.
var headlineBenches = map[string]func() (int, error){
	// BenchmarkGroundTruthQuanta/workers=0: 4 nodes, Phases(3, 150µs, 32KB),
	// fixed Q=1µs, classic event-queue engine.
	"ground_truth_classic_walk_workers0": func() (int, error) { return groundTruthOnce(0) },
	// BenchmarkGroundTruthQuanta/workers=1: same geometry on the
	// single-worker intra-quantum fast path.
	"ground_truth_fast_path_workers1": func() (int, error) { return groundTruthOnce(1) },
	// BenchmarkParallelBarrier: 8-node real-goroutine runner,
	// Phases(6, 200µs, 16KB), fixed Q=20µs.
	"parallel_barrier": parallelBarrierOnce,
}

func groundTruthOnce(workers int) (int, error) {
	w := workloads.Phases(3, 150*simtime.Microsecond, 32<<10)
	res, err := cluster.Run(cluster.Config{
		Nodes:    4,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Host:     host.DefaultParams(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: simtime.Microsecond} },
		Program:  w.New,
		MaxGuest: simtime.Guest(100 * simtime.Second),
		Workers:  workers,
	})
	if err != nil {
		return 0, err
	}
	return res.Stats.Quanta, nil
}

func parallelBarrierOnce() (int, error) {
	w := workloads.Phases(6, 200*simtime.Microsecond, 16<<10)
	res, err := cluster.RunParallel(cluster.ParallelConfig{
		Nodes:    8,
		Guest:    guest.DefaultConfig(),
		Net:      netmodel.Paper(),
		Policy:   func() quantum.Policy { return quantum.Fixed{Q: 20 * simtime.Microsecond} },
		Program:  w.New,
		MaxGuest: simtime.Guest(simtime.Second),
	})
	if err != nil {
		return 0, err
	}
	return res.Stats.Quanta, nil
}

// measure runs bench repeatedly for at least minTime and returns quanta/s.
func measure(bench func() (int, error), minTime time.Duration) (float64, error) {
	var quanta int
	start := time.Now()
	for time.Since(start) < minTime {
		q, err := bench()
		if err != nil {
			return 0, err
		}
		quanta += q
	}
	return float64(quanta) / time.Since(start).Seconds(), nil
}

// runBenchGate loads the trajectory file, re-measures every headline
// benchmark it records, and fails when any falls below
// baseline × (1 - tolerance). The baseline is the mean of the trajectory's
// "after" column; the measurement is the best of reps repetitions (best-of
// discards scheduler noise, which only ever slows a run down).
func runBenchGate(path string, tolerance float64, reps int) error {
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("-bench-tolerance wants a fraction in [0, 1), got %v", tolerance)
	}
	if reps < 1 {
		reps = 1
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("bench trajectory %s: %v", path, err)
	}

	names := make([]string, 0, len(bf.Scenarios))
	//simlint:maporder names are collected then sorted before use
	for name := range bf.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	matched := 0
	for _, name := range names {
		bench, ok := headlineBenches[name]
		if !ok {
			fmt.Printf("bench %-36s skipped (no in-process replication)\n", name)
			continue
		}
		pairs := bf.Scenarios[name].Pairs
		if len(pairs) == 0 {
			fmt.Printf("bench %-36s skipped (no pairs recorded)\n", name)
			continue
		}
		matched++
		var baseline float64
		for _, p := range pairs {
			baseline += p[1]
		}
		baseline /= float64(len(pairs))

		best := 0.0
		for r := 0; r < reps; r++ {
			got, err := measure(bench, 300*time.Millisecond)
			if err != nil {
				return fmt.Errorf("bench %s: %v", name, err)
			}
			if got > best {
				best = got
			}
		}
		floor := baseline * (1 - tolerance)
		status := "ok"
		if best < floor {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f quanta/s < floor %.0f (baseline %.0f, tolerance %.0f%%)",
				name, best, floor, baseline, tolerance*100))
		}
		fmt.Printf("bench %-36s %8.0f quanta/s  baseline %8.0f  ratio %.2f  %s\n",
			name, best, baseline, best/baseline, status)
	}
	if matched == 0 {
		return fmt.Errorf("bench trajectory %s: no replicable headline scenarios found", path)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "simfleet: bench regression:", f)
		}
		return fmt.Errorf("bench: %d of %d headline benchmarks regressed beyond tolerance", len(failures), matched)
	}
	fmt.Printf("bench ok: %d headline benchmarks within %.0f%% of PR %d trajectory\n", matched, tolerance*100, bf.PR)
	return nil
}
