package clustersim_test

import (
	"fmt"

	"clustersim"
	"clustersim/internal/mpi"
)

// ExampleRun simulates a two-node ping over the paper's network at ground
// truth; the engine is deterministic, so the printed numbers are exact.
func ExampleRun() {
	program := func(rank, size int) clustersim.Program {
		return func(p *clustersim.Proc) error {
			comm := mpi.New(p)
			if rank == 0 {
				comm.Send(1, 1, 1000)
				m := comm.Recv(1, 2)
				p.Report("reply_us", clustersim.Duration(m.Arrival).Microseconds())
			} else {
				comm.Recv(0, 1)
				comm.Send(0, 2, 1000)
			}
			return nil
		}
	}
	res, err := clustersim.Run(clustersim.NewConfig(2, program))
	if err != nil {
		fmt.Println(err)
		return
	}
	reply, _ := res.Metric("reply_us")
	fmt.Printf("reply at %.3fµs, stragglers: %d\n", reply, res.Stats.Stragglers)
	// Output: reply at 4.316µs, stragglers: 0
}

// ExampleAdaptiveQuantum shows Algorithm 1 growing the quantum through a
// silent compute phase.
func ExampleAdaptiveQuantum() {
	program := func(rank, size int) clustersim.Program {
		return func(p *clustersim.Proc) error {
			p.Compute(2 * clustersim.Millisecond) // silence: the quantum grows
			return nil
		}
	}
	cfg := clustersim.NewConfig(4, program)
	cfg.Policy = clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.05, 0.02)
	res, err := clustersim.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("quanta: %d (a fixed 1µs quantum would need 2000), max Q: %v\n",
		res.Stats.Quanta, res.Stats.MaxQ)
	// Output: quanta: 95 (a fixed 1µs quantum would need 2000), max Q: 98.128µs
}

// ExampleRecommendedDec reproduces the paper's rule of thumb for the
// quantum decrease factor.
func ExampleRecommendedDec() {
	dec := clustersim.RecommendedDec(1*clustersim.Microsecond, 1000*clustersim.Microsecond)
	fmt.Printf("dec ≈ %.4f (the paper uses 0.02 for this range)\n", dec)
	// Output: dec ≈ 0.0316 (the paper uses 0.02 for this range)
}
