# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go
SIMLINT := $(CURDIR)/bin/simlint

.PHONY: all build test race bench fleet fleet-update lint simlint vet-simlint fmt clean

all: build test simlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The three headline benchmarks whose numbers are recorded in BENCH_*.json:
# the engine core across worker counts (GroundTruthQuanta), the parallel
# runner's barrier + routing path (ParallelBarrier), and the partitioned
# fast path (FastPathRack). -benchmem because the arena engine's allocation
# counts are load-bearing (see the alloc gates in internal/cluster).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkGroundTruthQuanta|BenchmarkParallelBarrier|BenchmarkFastPathRack' -benchtime=2s -benchmem ./internal/cluster/

# Scenario regression fleet: run the committed manifest and check every
# canonical fingerprint against testdata/fleet/golden.json (what CI's
# fleet-smoke job gates on). After an intentional behaviour change, re-record
# with fleet-update and commit the golden diff for review.
fleet:
	$(GO) run ./cmd/simfleet -manifest testdata/fleet/manifest.json -v

fleet-update:
	$(GO) run ./cmd/simfleet -manifest testdata/fleet/manifest.json -update -v

# simlint smoke: the determinism analyzer suite over the whole module.
# Exits non-zero on any finding that is not covered by a justified
# //simlint:<category> directive.
simlint:
	$(GO) run ./cmd/simlint ./...

# The same analyzers driven through go vet's unitchecker protocol — what
# editors and `go vet -vettool` users exercise.
vet-simlint: $(SIMLINT)
	$(GO) vet -vettool=$(SIMLINT) ./...

$(SIMLINT): FORCE
	$(GO) build -o $(SIMLINT) ./cmd/simlint

FORCE:

# lint = everything static that CI gates on and that runs offline.
lint: simlint
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

fmt:
	gofmt -w .

clean:
	rm -rf bin
