// Quickstart: build a tiny two-phase distributed application with the guest
// process API, then simulate the same 8-node cluster three ways — ground
// truth (Q = 1µs), a coarse fixed quantum, and the paper's adaptive quantum —
// and compare accuracy and simulation cost.
package main

import (
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/mpi"
)

// program is one rank of a bulk-synchronous application: compute 2ms, then
// exchange vectors with every other rank, five times over.
func program(rank, size int) clustersim.Program {
	return func(p *clustersim.Proc) error {
		comm := mpi.New(p)
		start := p.Now()
		for phase := 0; phase < 5; phase++ {
			p.Compute(2 * clustersim.Millisecond) // the "interesting" work
			comm.Alltoall(32 << 10)               // 32 KiB to every peer
			comm.Allreduce(8)                     // convergence check
		}
		if rank == 0 {
			p.Report("time_s", clustersim.Duration(p.Now()-start).Seconds())
		}
		return nil
	}
}

func run(label string, policy func() clustersim.QuantumPolicy) *clustersim.Result {
	cfg := clustersim.NewConfig(8, program)
	cfg.Policy = policy
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	truth := run("ground truth", clustersim.FixedQuantum(1*clustersim.Microsecond))
	coarse := run("fixed 1ms", clustersim.FixedQuantum(1*clustersim.Millisecond))
	dyn := run("adaptive", clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02))

	tTruth, _ := truth.Metric("time_s")
	fmt.Printf("%-14s %-12s %-14s %-10s %s\n", "config", "app time", "host time", "speedup", "stragglers")
	for _, r := range []struct {
		name string
		res  *clustersim.Result
	}{
		{"Q=1µs (truth)", truth},
		{"Q=1ms", coarse},
		{"adaptive", dyn},
	} {
		t, _ := r.res.Metric("time_s")
		fmt.Printf("%-14s %-12.6f %-14v %8.1fx  %d\n",
			r.name, t, r.res.HostTime,
			float64(truth.HostTime)/float64(r.res.HostTime),
			r.res.Stats.Stragglers)
		if r.name == "Q=1ms" {
			fmt.Printf("%-14s ^ app time off by %.1f%% — the cost of coarse synchronization\n",
				"", 100*(t-tTruth)/tTruth)
		}
	}
	fmt.Printf("\nadaptive quantum ranged %v..%v (mean %v) over %d quanta\n",
		dyn.Stats.MinQ, dyn.Stats.MaxQ, dyn.Stats.MeanQ, dyn.Stats.Quanta)
}
