// Adaptive-quantum visualization: run a compute/communicate phase workload
// under Algorithm 1 and chart the quantum "driving over speed bumps" — it
// climbs during silent compute phases and collapses the moment packets
// appear.
package main

import (
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/netmodel"
	"clustersim/internal/trace"
	"clustersim/internal/workloads"
)

func main() {
	w := workloads.Phases(6, 3*clustersim.Millisecond, 128<<10)

	cfg := clustersim.NewConfig(4, w.New)
	cfg.Policy = clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.05, 0.02)
	cfg.TraceQuanta = true
	cfg.TracePackets = true
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 compute phases of 3ms, each followed by a 128 KiB all-to-all burst (4 nodes)\n\n")
	fmt.Print(trace.TrafficChart(res.Packets, 4, res.GuestTime, 100))
	fmt.Println()
	series := trace.QuantumSeries(res.Quanta, 100, res.GuestTime)
	fmt.Print(trace.LogChart(series, 1, 1100, 10, "synchronization quantum (µs)"))
	fmt.Printf("\nquanta: %d (%d silent), packets: %d, stragglers: %d, straggler delay: %v\n",
		res.Stats.Quanta, res.Stats.SilentQuanta, res.Stats.Packets,
		res.Stats.Stragglers, res.Stats.StragglerDelay)

	// The same run under ground truth, for the cost comparison.
	cfg2 := clustersim.NewConfig(4, w.New)
	truth, err := clustersim.Run(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host time: %v adaptive vs %v ground truth → %.1fx faster\n",
		res.HostTime, truth.HostTime, float64(truth.HostTime)/float64(res.HostTime))

	// The same adaptive policy on a mixed topology — a tight 500ns rack of
	// four plus four 50µs WAN nodes — shows the graded fast path: as the
	// quantum climbs past the intra-rack latency the engine no longer
	// switches the fast path off wholesale, it keeps fast-walking the loose
	// WAN nodes while only the rack falls back to the event queue.
	lat := make([][]clustersim.Duration, 8)
	for s := range lat {
		lat[s] = make([]clustersim.Duration, 8)
		for d := range lat[s] {
			switch {
			case s == d:
			case s < 4 && d < 4:
				lat[s][d] = 500 * clustersim.Nanosecond
			default:
				lat[s][d] = 50 * clustersim.Microsecond
			}
		}
	}
	cfg3 := clustersim.NewConfig(8, w.New)
	cfg3.Policy = clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.05, 0.02)
	cfg3.Net.Switch = &netmodel.MatrixSwitch{Lat: lat}
	cfg3.Workers = 2
	mixed, err := clustersim.Run(cfg3)
	if err != nil {
		log.Fatal(err)
	}
	s := mixed.Stats
	fmt.Printf("\nmixed rack+WAN topology (8 nodes, adaptive quantum):\n")
	fmt.Printf("fast path: %d/%d quanta fully engaged, %d partially engaged",
		s.FastFullQuanta, s.Quanta, s.FastPartialQuanta)
	if s.FastPartialQuanta > 0 {
		fmt.Printf(" (avg %.1f of %.1f partitions fast)",
			float64(s.FastNodeQuanta-8*s.FastFullQuanta)/float64(s.FastPartialQuanta),
			float64(s.PartialPartitions)/float64(s.FastPartialQuanta))
	}
	fmt.Println()
}
