// Adaptive-quantum visualization: run a compute/communicate phase workload
// under Algorithm 1 and chart the quantum "driving over speed bumps" — it
// climbs during silent compute phases and collapses the moment packets
// appear.
package main

import (
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/trace"
	"clustersim/internal/workloads"
)

func main() {
	w := workloads.Phases(6, 3*clustersim.Millisecond, 128<<10)

	cfg := clustersim.NewConfig(4, w.New)
	cfg.Policy = clustersim.AdaptiveQuantum(
		1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.05, 0.02)
	cfg.TraceQuanta = true
	cfg.TracePackets = true
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 compute phases of 3ms, each followed by a 128 KiB all-to-all burst (4 nodes)\n\n")
	fmt.Print(trace.TrafficChart(res.Packets, 4, res.GuestTime, 100))
	fmt.Println()
	series := trace.QuantumSeries(res.Quanta, 100, res.GuestTime)
	fmt.Print(trace.LogChart(series, 1, 1100, 10, "synchronization quantum (µs)"))
	fmt.Printf("\nquanta: %d (%d silent), packets: %d, stragglers: %d, straggler delay: %v\n",
		res.Stats.Quanta, res.Stats.SilentQuanta, res.Stats.Packets,
		res.Stats.Stragglers, res.Stats.StragglerDelay)

	// The same run under ground truth, for the cost comparison.
	cfg2 := clustersim.NewConfig(4, w.New)
	truth, err := clustersim.Run(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host time: %v adaptive vs %v ground truth → %.1fx faster\n",
		res.HostTime, truth.HostTime, float64(truth.HostTime)/float64(res.HostTime))
}
