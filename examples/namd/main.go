// NAMD scaling study: run the molecular-dynamics skeleton at 2, 4 and 8
// nodes under ground-truth, fixed and adaptive synchronization, reporting
// the wall-clock accuracy and speedup of Figure 7 plus the quantum the
// adaptive algorithm settles on as traffic densifies with scale.
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersim/internal/experiments"
	"clustersim/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload compute scale factor")
	flag.Parse()

	env := experiments.DefaultEnv()
	w := experiments.NAMDWorkload(*scale)

	fmt.Printf("NAMD skeleton (apoa1-like), scale %.2f — accuracy is wall-clock deviation vs Q=1µs\n\n", *scale)
	fmt.Printf("%-6s %-20s %14s %10s %14s\n", "nodes", "config", "accuracy err", "speedup", "adaptive meanQ")
	for _, nodes := range []int{2, 4, 8} {
		cells, err := experiments.Grid(env, []workloads.Workload{w}, []int{nodes}, experiments.StandardSpecs())
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cells {
			meanQ := ""
			if c.Stats.MaxQ != c.Stats.MinQ {
				meanQ = c.Stats.MeanQ.String()
			}
			fmt.Printf("%-6d %-20s %13.2f%% %9.1fx %14s\n", nodes, c.Config, c.AccErr*100, c.Speedup, meanQ)
		}
		fmt.Println()
	}
}
