// Real parallel execution: run the same cluster simulation with one OS
// goroutine per simulated node, synchronized by a real barrier — the shape
// of the paper's actual deployment. Wall-clock time is real; straggler races
// come from the Go scheduler, so repeated runs differ slightly, exactly as
// the paper's physical testbed did.
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/cluster"
	"clustersim/internal/workloads"
)

func main() {
	nodes := flag.Int("nodes", 8, "simulated nodes (each a goroutine)")
	spin := flag.Float64("spin", 0.05, "real ns of host CPU burned per guest busy ns")
	flag.Parse()

	w := workloads.Phases(5, 2*clustersim.Millisecond, 64<<10)

	fmt.Printf("running %d node goroutines, spin factor %.2f\n\n", *nodes, *spin)
	fmt.Printf("%-22s %12s %12s %10s %12s\n", "policy", "guest time", "wall clock", "quanta", "stragglers")
	for _, p := range []struct {
		name   string
		policy func() clustersim.QuantumPolicy
	}{
		{"Q=10µs", clustersim.FixedQuantum(10 * clustersim.Microsecond)},
		{"Q=1000µs", clustersim.FixedQuantum(1000 * clustersim.Microsecond)},
		{"adaptive 1:1000", clustersim.AdaptiveQuantum(1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02)},
	} {
		res, err := cluster.RunParallel(cluster.ParallelConfig{
			Nodes:            *nodes,
			Guest:            clustersim.DefaultGuest(),
			Net:              clustersim.PaperNetwork(),
			Policy:           p.policy,
			Program:          w.New,
			SpinPerGuestBusy: *spin,
			MaxGuest:         clustersim.GuestTime(60 * clustersim.Second),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12v %12v %10d %12d\n",
			p.name, res.GuestTime, res.Wall.Round(1000), res.Stats.Quanta, res.Stats.Stragglers)
	}
	fmt.Println("\nnote: wall clock and straggler counts vary run to run — that nondeterminism")
	fmt.Println("is the physical phenomenon the deterministic engine models with its host seed.")
}
