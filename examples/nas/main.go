// NAS sweep: run the five NAS kernel skeletons on a simulated 8-node
// cluster under the paper's standard configurations and print the
// per-benchmark accuracy/speedup table behind Figure 6.
//
// Pass -scale to shrink the workloads (e.g. -scale 0.1 runs in seconds).
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersim/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload compute scale factor")
	nodes := flag.Int("nodes", 8, "cluster size")
	flag.Parse()

	env := experiments.DefaultEnv()
	cells, err := experiments.Grid(env, experiments.NASSuite(*scale),
		[]int{*nodes}, experiments.StandardSpecs())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NAS kernels on %d simulated nodes (scale %.2f), versus Q=1µs ground truth\n\n", *nodes, *scale)
	fmt.Printf("%-8s %-20s %10s %14s %10s %12s\n",
		"kernel", "config", "MOPS", "accuracy err", "speedup", "stragglers")
	last := ""
	for _, c := range cells {
		if c.Workload != last {
			last = c.Workload
			fmt.Println()
		}
		fmt.Printf("%-8s %-20s %10.0f %13.2f%% %9.1fx %12d\n",
			c.Workload, c.Config, c.Metric, c.AccErr*100, c.Speedup, c.Stats.Stragglers)
	}
}
