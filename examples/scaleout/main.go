// Scale-out case study: the Section 6 experiment on a simulated 64-node
// cluster — packet-traffic chart, the acceleration/accuracy table, and the
// speedup-over-time chart for the adaptive configuration.
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersim"
	"clustersim/internal/experiments"
	"clustersim/internal/workloads"
)

func main() {
	bench := flag.String("bench", "nas.ep", "benchmark: nas.ep, nas.is, namd")
	nodes := flag.Int("nodes", 64, "cluster size")
	scale := flag.Float64("scale", 1.0, "workload compute scale factor")
	width := flag.Int("width", 100, "chart width")
	flag.Parse()

	env := experiments.DefaultEnv()
	var w workloads.Workload
	switch *bench {
	case "nas.ep":
		w = experiments.NASSuite(*scale)[0]
	case "nas.is":
		w = experiments.NASSuite(*scale)[1]
	case "namd":
		w = experiments.NAMDWorkload(*scale)
	default:
		log.Fatalf("unknown benchmark %q", *bench)
	}

	dyn := experiments.DynSpec("dyn 1:100",
		1*clustersim.Microsecond, 100*clustersim.Microsecond, 1.03, 0.1)
	fixed := []experiments.Spec{
		experiments.FixedSpec("100", 100*clustersim.Microsecond),
		experiments.FixedSpec("10", 10*clustersim.Microsecond),
	}
	out, err := experiments.Fig9Case(env, w, *nodes, dyn, fixed, *width)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d simulated nodes\n\n", w.Name, *nodes)
	fmt.Print(out.TrafficChart)
	fmt.Println()
	fmt.Printf("%-14s %20s %16s %18s\n", "quantum", "acceleration vs 1µs", "accuracy error", "sim. exec. ratio")
	for _, r := range out.Rows {
		fmt.Printf("%-14s %19.1fx %15.2f%% %17.2fx\n", r.Config, r.Accel, r.AccErr*100, r.ExecRatio)
	}
	fmt.Printf("\nadaptive settled at mean quantum %v\n\n", out.AdaptiveMeanQ)
	fmt.Print(out.SpeedupCharts["dyn 1:100"])
}
