// Trace replay: run a recorded communication trace (JSON, one op list per
// rank — the schema of workloads.TraceFile) through the cluster simulator
// under ground-truth and adaptive synchronization. The same file works with
// the CLI: clustersim -tracefile ring.json -nodes 4.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clustersim"
	"clustersim/internal/workloads"
)

func main() {
	path := filepath.Join("examples", "tracefile", "ring.json")
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tf, err := workloads.ParseTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	w := tf.Workload()

	fmt.Printf("replaying %q (%d ranks)\n\n", w.Name, tf.Ranks)
	for _, cfg := range []struct {
		name   string
		policy func() clustersim.QuantumPolicy
	}{
		{"ground truth (Q=1µs)", clustersim.FixedQuantum(1 * clustersim.Microsecond)},
		{"adaptive 1µs:1ms", clustersim.AdaptiveQuantum(1*clustersim.Microsecond, 1000*clustersim.Microsecond, 1.03, 0.02)},
	} {
		c := clustersim.NewConfig(tf.Ranks, w.New)
		c.Policy = cfg.policy
		res, err := clustersim.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		tApp, _ := res.Metric("time_s")
		fmt.Printf("%-22s app %.6fs  host %-12v  %d quanta, %d stragglers\n",
			cfg.name, tApp, res.HostTime, res.Stats.Quanta, res.Stats.Stragglers)
	}
}
